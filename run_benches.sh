#!/bin/bash
# Runs every bench binary, teeing combined output.
set -u
out="${1:-/root/repo/bench_output.txt}"
: > "$out"
for b in build/bench/bench_*; do
  echo "### $b" | tee -a "$out"
  timeout 1200 "$b" 2>&1 | tee -a "$out"
  echo | tee -a "$out"
done
echo "ALL BENCHES DONE" | tee -a "$out"
