// Figure 3.7 — Trade-offs between LOUDS-Dense and LOUDS-Sparse: point-query
// performance and memory as the number of LOUDS-Dense levels grows.
#include <cstdio>

#include "bench/bench_util.h"
#include "fst/fst.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

void Run(const char* name, const std::vector<std::string>& keys) {
  size_t q = 1000000;
  auto queries = GenYcsbRequests(keys.size(), q, YcsbSpec::WorkloadC());
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;

  for (int dense = 0; dense <= 8; ++dense) {
    FstConfig cfg;
    cfg.max_dense_levels = dense;
    Fst t;
    t.Build(keys, values, cfg);
    double mops = bench::Mops(q, [&](size_t i) {
      uint64_t v = 0;
      t.Lookup(keys[queries[i].key_index], &v);
             met::bench::Consume(v);
    });
    std::printf("%-7s %12d %12zu %10.2f %12.2f\n", name, dense,
                t.dense_levels(), mops, bench::Mb(t.FilterMemoryBytes()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunStandardBench(
      &argc, argv, "Figure 3.7: LOUDS-Dense level sweep",
      [] {
        std::printf("%-7s %12s %12s %10s %12s\n", "Keys", "MaxDense",
                    "ActualDense", "Mops/s", "TrieMB");
      },
      [](const char* name, const std::vector<std::string>& keys) {
        Run(name, keys);
      },
      "paper: performance improves up to ~3x with more dense levels; memory grows for emails but shrinks for random ints (fanout > 51)");
  return 0;
}
