// Figure 5.5 — Hybrid Skip List vs Original Skip List across key types.
#include "bench/hybrid_bench.h"
#include "hybrid/hybrid.h"
#include "skiplist/skiplist.h"

using namespace met;
using namespace met::bench;

int main() {
  Title("Figure 5.5: Hybrid Skip List vs original Skip List");
  size_t n = 1000000 * Scale();
  for (bool mono : {false, true}) {
    const char* kn = mono ? "mono-inc" : "rand";
    auto keys = IntDataset(mono, n);
    RunYcsbSuite<SkipList<uint64_t>>("SkipList", kn, keys);
    RunYcsbSuite<HybridSkipList<uint64_t>>("Hybrid", kn, keys);
  }
  {
    auto keys = GenEmails(n / 2);
    RunYcsbSuite<SkipList<std::string>>("SkipList", "email", keys);
    RunYcsbSuite<HybridSkipList<std::string>>("Hybrid", "email", keys);
  }
  Note("paper: results track the B+tree closely (paged skip list shares its node structure)");
  return 0;
}
