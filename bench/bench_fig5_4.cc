// Figure 5.4 — Hybrid Masstree vs Original Masstree across key types.
#include "bench/hybrid_bench.h"
#include "hybrid/hybrid.h"
#include "masstree/masstree.h"

using namespace met;
using namespace met::bench;

int main() {
  Title("Figure 5.4: Hybrid Masstree vs original Masstree");
  size_t n = 1000000 * Scale();
  for (bool mono : {false, true}) {
    const char* kn = mono ? "mono-inc" : "rand";
    auto keys = ToStringKeys(IntDataset(mono, n));
    RunYcsbSuite<Masstree>("Masstree", kn, keys);
    RunYcsbSuite<HybridMasstree>("Hybrid", kn, keys);
  }
  {
    auto keys = GenEmails(n / 2);
    RunYcsbSuite<Masstree>("Masstree", "email", keys);
    RunYcsbSuite<HybridMasstree>("Hybrid", "email", keys);
  }
  Note("paper: hybrid Masstree shows the largest memory savings (flattened trie nodes + keybag consolidation)");
  return 0;
}
