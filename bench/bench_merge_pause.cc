// Merge-pause benchmark for the concurrent hybrid index (thesis Section 5.2
// merge strategies, extended to concurrent serving): measures how much a
// static-stage merge stalls concurrent readers and writers.
//
// Two serving modes are compared across growing static-stage sizes:
//   blocking    — the single-threaded HybridIndex behind a shared_mutex;
//                 a merge holds the write lock for its full duration, so
//                 reader stalls grow with static size.
//   concurrent  — ConcurrentHybridIndex: merge freezes the dynamic stage
//                 under the lock in O(1), drains and rebuilds off-lock, and
//                 publishes by epoch-swapped pointer, so reader/writer p99
//                 must stay bounded as the static stage grows (the headline
//                 claim this benchmark exists to check).
//
// Latencies are recorded into obs::StallSplit, split by whether the merge
// was in flight when the operation started; rows report idle vs during-merge
// p50/p99/max per mode. A second section runs the sharded multi-threaded
// YCSB-A driver against the concurrent index. `--json <path>` or
// MET_BENCH_JSON emit everything as met.bench.v1.
#include <atomic>
#include <cstdio>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "hybrid/concurrent_hybrid.h"
#include "hybrid/hybrid.h"
#include "obs/stall.h"
#include "ycsb/driver.h"

namespace met {
namespace {

// The blocking baseline: the single-threaded hybrid index made thread-safe
// the simplest way. Merge() raises the in-flight flag before taking the
// write lock so operations arriving during the merge are attributed to it.
class BlockingHybrid {
 public:
  using Value = uint64_t;

  explicit BlockingHybrid(const HybridConfig& config) : index_(config) {}

  bool Insert(uint64_t key, Value value) {
    std::unique_lock<std::shared_mutex> l(mu_);
    return index_.Insert(key, value);
  }
  bool Lookup(uint64_t key, Value* value = nullptr) const {
    std::shared_lock<std::shared_mutex> l(mu_);
    return index_.Lookup(key, value);
  }
  void Merge() {
    merging_.store(true, std::memory_order_seq_cst);
    {
      std::unique_lock<std::shared_mutex> l(mu_);
      index_.Merge();
    }
    merging_.store(false, std::memory_order_seq_cst);
  }
  bool MergeInFlight() const {
    return merging_.load(std::memory_order_relaxed);
  }
  size_t StaticEntries() const {
    std::shared_lock<std::shared_mutex> l(mu_);
    return index_.StaticEntries();
  }

 private:
  mutable std::shared_mutex mu_;
  std::atomic<bool> merging_{false};
  HybridBTree<uint64_t> index_;
};

// One worker hammers the index (90% reads over the preloaded keys, 10%
// inserts of fresh keys) while the main thread triggers one manual merge;
// every op latency lands in `stalls` under the phase seen at op start.
template <typename Index>
double RunPausePhase(Index* index, size_t num_keys, obs::StallSplit* stalls) {
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    Random rng(7);
    uint64_t next_key = num_keys * 2;  // fresh keys, disjoint from preload
    uint64_t found = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      bool is_read = rng.Uniform(10) != 0;
      bool merging = index->MergeInFlight();
      met::Timer t;
      if (is_read) {
        uint64_t v;
        found += index->Lookup(rng.Uniform(num_keys) * 2, &v) ? 1 : 0;
      } else {
        index->Insert(next_key++, 1);
      }
      stalls->Record(is_read, merging, t.ElapsedNanos());
    }
    bench::Consume(found);
  });

  // Let the worker accumulate an idle baseline, then merge.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  met::Timer merge_timer;
  index->Merge();
  double merge_seconds = merge_timer.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true, std::memory_order_relaxed);
  worker.join();
  return merge_seconds;
}

template <typename Index>
void RunPauseRow(const char* mode, size_t num_keys) {
  HybridConfig config;
  config.min_merge_entries = ~size_t{0};  // manual merges only
  Index index([&] {
    if constexpr (std::is_same_v<Index, BlockingHybrid>) {
      return config;
    } else {
      ConcurrentHybridConfig c;
      static_cast<HybridConfig&>(c) = config;
      return c;
    }
  }());

  for (uint64_t i = 0; i < num_keys; ++i) index.Insert(i * 2, i + 1);
  index.Merge();  // static stage now holds the full preload
  if constexpr (!std::is_same_v<Index, BlockingHybrid>)
    index.WaitForMergeIdle();
  // Stage fresh dynamic entries so the measured merge has work to drain.
  for (uint64_t i = 0; i < num_keys / 10; ++i)
    index.Insert(num_keys * 4 + i * 2, 1);

  obs::StallSplit stalls;
  double merge_seconds = RunPausePhase(&index, num_keys, &stalls);
  if constexpr (!std::is_same_v<Index, BlockingHybrid>)
    index.WaitForMergeIdle();

  const auto& ri = stalls.Reads(false);
  const auto& rm = stalls.Reads(true);
  const auto& wi = stalls.Writes(false);
  const auto& wm = stalls.Writes(true);
  std::printf(
      "  %-10s static=%8zu merge=%6.1fms | read idle p50/p99 %6llu/%8llu ns"
      " | read merge p99/max %8llu/%10llu ns | write merge p99/max "
      "%8llu/%10llu ns\n",
      mode, index.StaticEntries(), merge_seconds * 1e3,
      (unsigned long long)ri.Quantile(0.5), (unsigned long long)ri.Quantile(0.99),
      (unsigned long long)rm.Quantile(0.99), (unsigned long long)rm.Max(),
      (unsigned long long)wm.Quantile(0.99), (unsigned long long)wm.Max());
  bench::Row({{"mode", mode},
              {"static_entries", index.StaticEntries()},
              {"merge_ms", merge_seconds * 1e3},
              {"read_idle_p50_ns", ri.Quantile(0.5)},
              {"read_idle_p99_ns", ri.Quantile(0.99)},
              {"read_merge_p50_ns", rm.Quantile(0.5)},
              {"read_merge_p99_ns", rm.Quantile(0.99)},
              {"read_merge_max_ns", rm.Max()},
              {"read_merge_count", rm.Count()},
              {"write_idle_p99_ns", wi.Quantile(0.99)},
              {"write_merge_p99_ns", wm.Quantile(0.99)},
              {"write_merge_max_ns", wm.Max()}});
}

/// met::batch through the serving stack: the driver's `read_batch` knob
/// buffers consecutive reads per thread and retires them through
/// ShardedIndex::LookupBatch (counting-sort by shard, then the unified
/// batched lookup per shard). WorkloadC isolates the read path.
void RunBatchedShardedYcsb() {
  bench::Title("Sharded YCSB-C read batching (met::batch read_batch knob)");
  size_t num_keys = 200000 * bench::Scale();
  size_t ops_per_thread = 200000 * bench::Scale();
  for (size_t threads : {size_t{1}, size_t{2}}) {
    double base = 0;
    for (size_t read_batch : {size_t{1}, size_t{16}, size_t{64}}) {
      ConcurrentHybridConfig config;
      config.min_merge_entries = 4096;
      ycsb::ShardedIndex<ConcurrentHybridBTree<uint64_t>, uint64_t> index(
          /*num_shards=*/2, config);
      for (uint64_t i = 0; i < num_keys; ++i) index.Insert(i, i + 1);
      index.WaitForMergeIdle();
      auto res = ycsb::RunYcsb(&index, YcsbSpec::WorkloadC(), num_keys,
                               ops_per_thread, threads,
                               [](uint64_t i) { return i; },
                               /*stalls=*/nullptr, read_batch);
      if (read_batch == 1) base = res.Mops();
      std::printf("  threads=%zu read_batch=%-3zu %6.2f Mops (%.2fx)\n",
                  threads, read_batch, res.Mops(),
                  base > 0 ? res.Mops() / base : 1.0);
      bench::Row({{"threads", threads},
                  {"read_batch", read_batch},
                  {"mops", res.Mops()},
                  {"speedup", base > 0 ? res.Mops() / base : 1.0}});
    }
  }
}

void RunShardedYcsb() {
  bench::Title("Sharded YCSB-A on concurrent hybrid B+tree");
  bench::Note(
      "hash-sharded ConcurrentHybridBTree; background merges enabled; "
      "latencies split by merge-in-flight at op start");
  size_t num_keys = 200000 * bench::Scale();
  size_t ops_per_thread = 100000 * bench::Scale();
  for (size_t threads : {1, 2}) {
    ConcurrentHybridConfig config;
    config.min_merge_entries = 4096;
    ycsb::ShardedIndex<ConcurrentHybridBTree<uint64_t>, uint64_t> index(
        /*num_shards=*/2, config);
    for (uint64_t i = 0; i < num_keys; ++i) index.Insert(i, i + 1);
    index.WaitForMergeIdle();

    obs::StallSplit stalls;
    auto res = ycsb::RunYcsb(&index, YcsbSpec::WorkloadA(), num_keys,
                             ops_per_thread, threads,
                             [](uint64_t i) { return i; }, &stalls);
    index.WaitForMergeIdle();
    const auto& rm = stalls.Reads(true);
    const auto& wm = stalls.Writes(true);
    std::printf(
        "  threads=%zu  %6.2f Mops | read merge p99 %8llu ns (n=%llu) | "
        "write merge p99 %8llu ns (n=%llu)\n",
        threads, res.Mops(), (unsigned long long)rm.Quantile(0.99),
        (unsigned long long)rm.Count(), (unsigned long long)wm.Quantile(0.99),
        (unsigned long long)wm.Count());
    bench::Row({{"threads", threads},
                {"mops", res.Mops()},
                {"ops", res.TotalOps()},
                {"read_merge_p99_ns", rm.Quantile(0.99)},
                {"read_merge_count", rm.Count()},
                {"write_merge_p99_ns", wm.Quantile(0.99)},
                {"write_merge_count", wm.Count()}});
  }
}

}  // namespace
}  // namespace met

int main(int argc, char** argv) {
  met::bench::Reporter::Get().ParseArgs(&argc, argv);
  met::bench::Title("Merge pause: reader/writer stalls during a merge");
  met::bench::Note(
      "blocking = HybridIndex behind a shared_mutex (merge holds the write "
      "lock); concurrent = epoch-swapped background merge. The claim under "
      "test: concurrent read/write p99 stays bounded as static size grows");
  for (size_t num_keys : {100000, 300000, 900000}) {
    size_t n = num_keys * met::bench::Scale();
    met::RunPauseRow<met::BlockingHybrid>("blocking", n);
    met::RunPauseRow<met::ConcurrentHybridBTree<uint64_t>>("concurrent", n);
  }
  met::RunShardedYcsb();
  met::RunBatchedShardedYcsb();
  met::bench::Reporter::Get().WriteIfEnabled();
  return 0;
}
