// Figure 6.12 — Dictionary Build Time breakdown (symbol select / code
// assignment / dictionary build) on a 1% email sample.
#include <cstdio>

#include "bench/bench_util.h"
#include "hope/hope.h"
#include "keys/keygen.h"

using namespace met;

int main() {
  bench::Title("Figure 6.12: HOPE dictionary build-time breakdown (1% email sample)");
  size_t n = 1000000 * bench::Scale();
  auto keys = GenEmails(n / 2);
  std::vector<std::string> sample(keys.begin(), keys.begin() + keys.size() / 100);

  std::printf("%-13s %14s %14s %14s %10s\n", "Scheme", "symbols(ms)",
              "codes(ms)", "dict(ms)", "total(ms)");
  HopeScheme schemes[] = {HopeScheme::kSingleChar, HopeScheme::kDoubleChar,
                          HopeScheme::k3Grams,     HopeScheme::k4Grams,
                          HopeScheme::kAlm,        HopeScheme::kAlmImproved};
  for (HopeScheme s : schemes) {
    HopeEncoder enc;
    enc.Build(sample, s, 1 << 16);
    const auto& st = enc.build_stats();
    std::printf("%-13s %14.1f %14.1f %14.1f %10.1f\n", HopeSchemeName(s),
                st.symbol_select_seconds * 1e3, st.code_assign_seconds * 1e3,
                st.dict_build_seconds * 1e3,
                (st.symbol_select_seconds + st.code_assign_seconds +
                 st.dict_build_seconds) * 1e3);
  }
  bench::Note("paper: code assignment (Hu-Tucker) dominates for the large dictionaries; here large dictionaries use the balanced-split substitute (see DESIGN.md)");
  return 0;
}
