// Core-operation microbenchmarks on the google-benchmark harness:
// per-operation costs of the headline structures (FST, SuRF, HOPE, hybrid
// index) independent of the paper-figure harnesses.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "fst/fst.h"
#include "hope/hope.h"
#include "hybrid/hybrid.h"
#include "keys/keygen.h"
#include "surf/surf.h"

namespace met {
namespace {

const std::vector<std::string>& EmailKeys() {
  static const auto* keys = [] {
    auto* k = new std::vector<std::string>(GenEmails(200000));
    SortUnique(k);
    return k;
  }();
  return *keys;
}

void BM_FstPointQuery(benchmark::State& state) {
  const auto& keys = EmailKeys();
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;
  Fst fst;
  FstConfig cfg;
  cfg.max_dense_levels = static_cast<int>(state.range(0));
  fst.Build(keys, values, cfg);
  Random rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fst.Find(keys[rng.Uniform(keys.size())], &v));
  }
}
BENCHMARK(BM_FstPointQuery)->Arg(-1)->Arg(0);

void BM_FstLowerBound(benchmark::State& state) {
  const auto& keys = EmailKeys();
  std::vector<uint64_t> values(keys.size(), 0);
  Fst fst;
  fst.Build(keys, values);
  Random rng(2);
  for (auto _ : state) {
    auto it = fst.LowerBound(keys[rng.Uniform(keys.size())]);
    benchmark::DoNotOptimize(it.Valid());
  }
}
BENCHMARK(BM_FstLowerBound);

void BM_SurfMayContain(benchmark::State& state) {
  const auto& keys = EmailKeys();
  Surf surf;
  surf.Build(keys, SurfConfig::Mixed(4, 4));
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(surf.MayContain(keys[rng.Uniform(keys.size())]));
  }
}
BENCHMARK(BM_SurfMayContain);

void BM_SurfCount(benchmark::State& state) {
  const auto& keys = EmailKeys();
  Surf surf;
  surf.Build(keys, SurfConfig::Real(8));
  Random rng(4);
  for (auto _ : state) {
    size_t i = rng.Uniform(keys.size() - 1000);
    benchmark::DoNotOptimize(surf.Count(keys[i], keys[i + 999]));
  }
}
BENCHMARK(BM_SurfCount);

void BM_HopeEncode(benchmark::State& state) {
  const auto& keys = EmailKeys();
  std::vector<std::string> sample(keys.begin(), keys.begin() + 2000);
  HopeEncoder enc;
  enc.Build(sample, static_cast<HopeScheme>(state.range(0)), 1 << 14);
  Random rng(5);
  std::string scratch;
  for (auto _ : state) {
    scratch.clear();
    benchmark::DoNotOptimize(
        enc.EncodeBits(keys[rng.Uniform(keys.size())], &scratch));
  }
}
BENCHMARK(BM_HopeEncode)
    ->Arg(static_cast<int>(HopeScheme::kSingleChar))
    ->Arg(static_cast<int>(HopeScheme::k3Grams))
    ->Arg(static_cast<int>(HopeScheme::kAlmImproved));

void BM_HybridInsert(benchmark::State& state) {
  HybridBTree<uint64_t> index;
  Random rng(6);
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Insert(MixHash64(++k), k));
  }
}
BENCHMARK(BM_HybridInsert);

void BM_HybridFind(benchmark::State& state) {
  HybridBTree<uint64_t> index;
  auto keys = GenRandomInts(500000);
  for (size_t i = 0; i < keys.size(); ++i) index.Insert(keys[i], i);
  Random rng(7);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Find(keys[rng.Uniform(keys.size())], &v));
  }
}
BENCHMARK(BM_HybridFind);

}  // namespace
}  // namespace met

BENCHMARK_MAIN();
