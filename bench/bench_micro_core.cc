// Core-operation microbenchmarks on the google-benchmark harness:
// per-operation costs of the headline structures (FST, SuRF, HOPE, hybrid
// index, LSM point reads) independent of the paper-figure harnesses.
//
// Run with `--json <path>` (or MET_BENCH_JSON=<path>) to also dump the
// met::obs metric registry — per-op latency histograms recorded below plus
// the live LSM Bloom/SuRF true/false-positive counters — as JSON.
#include <cstdlib>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/random.h"
#include "fst/fst.h"
#include "hope/hope.h"
#include "hybrid/hybrid.h"
#include "keys/keygen.h"
#include "lsm/lsm.h"
#include "obs/obs.h"
#include "surf/surf.h"

namespace met {
namespace {

const std::vector<std::string>& EmailKeys() {
  static const auto* keys = [] {
    auto* k = new std::vector<std::string>(GenEmails(200000));
    SortUnique(k);
    return k;
  }();
  return *keys;
}

void BM_FstPointQuery(benchmark::State& state) {
  const auto& keys = EmailKeys();
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;
  Fst fst;
  FstConfig cfg;
  cfg.max_dense_levels = static_cast<int>(state.range(0));
  fst.Build(keys, values, cfg);
  Random rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fst.Lookup(keys[rng.Uniform(keys.size())], &v));
  }
}
BENCHMARK(BM_FstPointQuery)->Arg(-1)->Arg(0);

void BM_FstLowerBound(benchmark::State& state) {
  const auto& keys = EmailKeys();
  std::vector<uint64_t> values(keys.size(), 0);
  Fst fst;
  fst.Build(keys, values);
  Random rng(2);
  for (auto _ : state) {
    auto it = fst.LowerBound(keys[rng.Uniform(keys.size())]);
    benchmark::DoNotOptimize(it.Valid());
  }
}
BENCHMARK(BM_FstLowerBound);

void BM_SurfMayContain(benchmark::State& state) {
  const auto& keys = EmailKeys();
  Surf surf;
  surf.Build(keys, SurfConfig::Mixed(4, 4));
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(surf.MayContain(keys[rng.Uniform(keys.size())]));
  }
}
BENCHMARK(BM_SurfMayContain);

void BM_SurfCount(benchmark::State& state) {
  const auto& keys = EmailKeys();
  Surf surf;
  surf.Build(keys, SurfConfig::Real(8));
  Random rng(4);
  for (auto _ : state) {
    size_t i = rng.Uniform(keys.size() - 1000);
    benchmark::DoNotOptimize(surf.Count(keys[i], keys[i + 999]));
  }
}
BENCHMARK(BM_SurfCount);

void BM_HopeEncode(benchmark::State& state) {
  const auto& keys = EmailKeys();
  std::vector<std::string> sample(keys.begin(), keys.begin() + 2000);
  HopeEncoder enc;
  enc.Build(sample, static_cast<HopeScheme>(state.range(0)), 1 << 14);
  Random rng(5);
  std::string scratch;
  for (auto _ : state) {
    scratch.clear();
    benchmark::DoNotOptimize(
        enc.EncodeBits(keys[rng.Uniform(keys.size())], &scratch));
  }
}
BENCHMARK(BM_HopeEncode)
    ->Arg(static_cast<int>(HopeScheme::kSingleChar))
    ->Arg(static_cast<int>(HopeScheme::k3Grams))
    ->Arg(static_cast<int>(HopeScheme::kAlmImproved));

void BM_HybridInsert(benchmark::State& state) {
  HybridBTree<uint64_t> index;
  Random rng(6);
  uint64_t k = 0;
  for (auto _ : state) {
    ++k;
    benchmark::DoNotOptimize(index.Insert(MixHash64(k), k));
  }
}
BENCHMARK(BM_HybridInsert);

void BM_HybridFind(benchmark::State& state) {
  HybridBTree<uint64_t> index;
  auto keys = GenRandomInts(500000);
  for (size_t i = 0; i < keys.size(); ++i) index.Insert(keys[i], i);
  Random rng(7);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(keys[rng.Uniform(keys.size())], &v));
  }
}
BENCHMARK(BM_HybridFind);

// ---------------------------------------------------------------------------
// LSM point reads through a filter: half the probed keys exist, half do not,
// so the instrumented read path keeps live Bloom/SuRF true/false-positive
// counters ("lsm.filter.*.{true,false}_positives") flowing. Per-op latency
// is sampled (1 op in 8) into an obs histogram: dense enough for p50/p99,
// cheap enough that the clock reads stay invisible next to the read itself.
// ---------------------------------------------------------------------------

LsmTree* BuildLsm(LsmFilterType filter, const char* dir) {
  LsmOptions opts;
  opts.dir = dir;
  opts.filter = filter;
  opts.memtable_bytes = 512u << 10;  // several tables -> several filters
  auto* tree = new LsmTree(opts);
  // Even ints are stored; odd ints are guaranteed absent.
  for (uint64_t i = 0; i < 100000; ++i) {
    std::string key = Uint64ToKey(i * 2);
    if (!tree->Put(key, key).ok()) std::abort();  // bench setup must succeed
  }
  if (!tree->Finish().ok()) std::abort();  // bench setup must succeed
  return tree;
}

void LsmGetLoop(benchmark::State& state, LsmTree* tree, const char* hist_name) {
  // Per-op latency is sampled (1-in-8) only when someone will consume the
  // histogram — a --json/MET_BENCH_JSON report or MET_METRICS=1 — so plain
  // throughput runs pay no clock-read overhead.
  const bool sampling =
      bench::Reporter::Get().enabled() || obs::MetricsEnabled();
  auto* hist = obs::MetricsRegistry::Global().GetHistogram(hist_name);
  Random rng(8);
  std::string value;
  uint64_t tick = 0;
  for (auto _ : state) {
    // rng yields even (present) and odd (absent) keys with equal odds.
    std::string key = Uint64ToKey(rng.Uniform(200000));
    const bool sample = sampling && (tick++ & 7) == 0;
    uint64_t t0 = sample ? obs::NowNanos() : 0;
    benchmark::DoNotOptimize(tree->Lookup(key, &value));
    if (sample) hist->RecordNanos(obs::NowNanos() - t0);
  }
}

void BM_LsmGetBloom(benchmark::State& state) {
  static LsmTree* tree = BuildLsm(LsmFilterType::kBloom, "/tmp/met_bench_lsm_bloom");
  LsmGetLoop(state, tree, "bench.lsm.get_bloom.latency_ns");
}
BENCHMARK(BM_LsmGetBloom);

void BM_LsmGetSurf(benchmark::State& state) {
  static LsmTree* tree = BuildLsm(LsmFilterType::kSurfReal, "/tmp/met_bench_lsm_surf");
  LsmGetLoop(state, tree, "bench.lsm.get_surf.latency_ns");
}
BENCHMARK(BM_LsmGetSurf);

}  // namespace
}  // namespace met

int main(int argc, char** argv) {
  met::bench::Reporter::Get().ParseArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  met::bench::Reporter::Get().WriteIfEnabled();
  return 0;
}
