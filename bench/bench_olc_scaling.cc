// OLC writer-scaling benchmark: the PR-9 headline numbers.
//
// Two dynamic-stage concurrency designs over the same hybrid index:
//   locked — ConcurrentHybridBTree: reads are lock-free via the epoch
//            snapshot, but every mutation serializes on the writer-side
//            SharedMutex, so insert throughput is flat in the writer count.
//   olc    — OlcConcurrentHybridBTree: optimistic lock coupling in the
//            dynamic stage; writers only conflict on the nodes they touch,
//            so aggregate insert throughput scales with the writer count.
//
// Section 1 sweeps 1→16 writer threads doing disjoint-range inserts into a
// preloaded index and reports aggregate Mops per mode (the acceptance bar:
// olc ≥ 3× locked at 8 writers). Section 2 measures read p99 on a quiet
// index vs read p99 while 8 writers hammer it (the bar: within 2× for olc).
// `--json <path>` or MET_BENCH_JSON emit everything as met.bench.v1.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/index_api.h"
#include "common/random.h"
#include "common/timer.h"
#include "hybrid/concurrent_hybrid.h"
#include "hybrid/olc_hybrid.h"

namespace met {
namespace {

ConcurrentHybridConfig BenchConfig() {
  ConcurrentHybridConfig cfg;
  cfg.background_merge = true;
  cfg.min_merge_entries = 1 << 16;
  return cfg;
}

/// `writers` threads insert disjoint fresh-key ranges; returns aggregate
/// Mops over the wall-clock of the whole phase.
template <typename Index>
double InsertSweep(int writers, size_t preload, size_t per_writer) {
  Index index(BenchConfig());
  for (uint64_t i = 0; i < preload; ++i) IndexInsert(index, i, i + 1);
  index.WaitForMergeIdle();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers));
  met::Timer timer;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&index, t, preload, per_writer] {
      uint64_t base = preload + static_cast<uint64_t>(t) * per_writer;
      for (uint64_t i = 0; i < per_writer; ++i)
        IndexInsert(index, base + i, i + 1);
    });
  }
  for (auto& th : threads) th.join();
  double secs = timer.ElapsedSeconds();
  index.WaitForMergeIdle();
  return static_cast<double>(per_writer) * writers / secs / 1e6;
}

uint64_t P99(std::vector<uint64_t>* ns) {
  if (ns->empty()) return 0;
  std::sort(ns->begin(), ns->end());
  return (*ns)[(ns->size() - 1) * 99 / 100];
}

/// Read p99 over the preloaded keys, optionally while `writers` threads
/// insert fresh keys for the whole read phase.
template <typename Index>
uint64_t ReadP99(Index* index, size_t preload, size_t reads, int writers) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> writer_threads;
  for (int t = 0; t < writers; ++t) {
    writer_threads.emplace_back([index, t, preload, &stop] {
      // Fresh keys far above both the preload and the sweep ranges.
      uint64_t k = (1ull << 40) + (static_cast<uint64_t>(t) << 32);
      while (!stop.load(std::memory_order_relaxed))
        IndexInsert(*index, k++, 1);
    });
  }

  std::vector<uint64_t> lat;
  lat.reserve(reads);
  Random rng(42);
  for (size_t i = 0; i < reads; ++i) {
    uint64_t key = rng.Uniform(preload);
    met::Timer t;
    uint64_t v = 0;
    bool found = index->Lookup(key, &v);
    lat.push_back(t.ElapsedNanos());
    if (!found) std::abort();  // preloaded key lost: a correctness bug
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writer_threads) th.join();
  index->WaitForMergeIdle();
  return P99(&lat);
}

template <typename Index>
void RunMode(const char* mode, size_t preload, size_t per_writer,
             size_t reads) {
  double base = 0;
  for (int writers : {1, 2, 4, 8, 16}) {
    double mops = InsertSweep<Index>(writers, preload, per_writer);
    if (writers == 1) base = mops;
    std::printf("  %-7s writers=%-2d %7.2f Mops aggregate (%.2fx vs 1)\n",
                mode, writers, mops, base > 0 ? mops / base : 1.0);
    bench::Row({{"section", "insert_scaling"},
                {"mode", mode},
                {"writers", writers},
                {"insert_mops", mops},
                {"scaling_vs_1", base > 0 ? mops / base : 1.0}});
  }

  Index index(BenchConfig());
  for (uint64_t i = 0; i < preload; ++i) IndexInsert(index, i, i + 1);
  index.WaitForMergeIdle();
  uint64_t quiet = ReadP99(&index, preload, reads, /*writers=*/0);
  uint64_t busy = ReadP99(&index, preload, reads, /*writers=*/8);
  double ratio = quiet > 0 ? static_cast<double>(busy) / quiet : 0.0;
  std::printf(
      "  %-7s read p99 quiet %6llu ns | during 8 writers %6llu ns (%.2fx)\n",
      mode, (unsigned long long)quiet, (unsigned long long)busy, ratio);
  bench::Row({{"section", "read_p99"},
              {"mode", mode},
              {"read_only_p99_ns", quiet},
              {"read_during_8w_p99_ns", busy},
              {"p99_ratio", ratio}});
}

}  // namespace
}  // namespace met

int main(int argc, char** argv) {
  met::bench::Reporter::Get().ParseArgs(&argc, argv);
  met::bench::Title("OLC writer scaling: dynamic-stage mutation concurrency");
  met::bench::Note(
      "locked = ConcurrentHybridBTree (SharedMutex-serialized mutations); "
      "olc = OlcConcurrentHybridBTree (optimistic lock coupling). Disjoint "
      "fresh-key inserts, background merges enabled");
  size_t preload = 100000 * met::bench::Scale();
  size_t per_writer = 150000 * met::bench::Scale();
  size_t reads = 200000 * met::bench::Scale();
  met::RunMode<met::ConcurrentHybridBTree<uint64_t>>("locked", preload,
                                                     per_writer, reads);
  met::RunMode<met::OlcConcurrentHybridBTree<uint64_t>>("olc", preload,
                                                        per_writer, reads);
  met::bench::Reporter::Get().WriteIfEnabled();
  return 0;
}
