// Figures 5.11-5.13 + Table 5.1 — In-Memory Workloads: mini-DBMS throughput,
// index memory and total memory for TPC-C / Voter / Articles under the three
// index configurations, plus transaction latency percentiles for TPC-C.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "minidb/minidb.h"
#include "minidb/workloads.h"

using namespace met;

int main() {
  bench::Title("Figures 5.11-5.13 / Table 5.1: in-memory DBMS evaluation");
  size_t txns = 200000 * bench::Scale();

  struct Make {
    const char* name;
    std::unique_ptr<WorkloadDriver> (*make)();
  } workloads[] = {
      {"TPC-C", +[] { return MakeTpccDriver(2, 10, 300, 10000); }},
      {"Voter", +[] { return MakeVoterDriver(6, 1000000); }},
      {"Articles", +[] { return MakeArticlesDriver(20000, 10000); }},
  };

  for (const auto& w : workloads) {
    for (IndexKind kind : {IndexKind::kBTree, IndexKind::kHybrid,
                           IndexKind::kHybridCompressed}) {
      MiniDb db(kind);
      auto driver = w.make();
      driver->Load(&db);
      Random rng(42);
      std::vector<double> latencies_us;
      latencies_us.reserve(txns);
      Timer total;
      for (size_t i = 0; i < txns; ++i) {
        Timer t;
        driver->RunTransaction(&db, &rng);
        latencies_us.push_back(t.ElapsedNanos() / 1e3);
      }
      double secs = total.ElapsedSeconds();
      std::sort(latencies_us.begin(), latencies_us.end());
      auto pct = [&](double p) {
        return latencies_us[static_cast<size_t>(p * (latencies_us.size() - 1))];
      };
      std::printf(
          "%-9s %-18s %8.0f ktxn/s | index %7.1f MB  total %7.1f MB | "
          "lat us p50 %6.1f  p99 %8.1f  max %10.1f\n",
          w.name, IndexKindName(kind), txns / secs / 1e3,
          bench::Mb(db.PrimaryIndexBytes() + db.SecondaryIndexBytes()),
          bench::Mb(db.TotalMemoryBytes()), pct(0.5), pct(0.99),
          latencies_us.back());
    }
  }
  bench::Note("paper: hybrid cuts index memory 40-55% (compressed 50-65%) for a 1-10% throughput drop; p50/p99 unchanged, MAX grows (blocking merges)");
  return 0;
}
