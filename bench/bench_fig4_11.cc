// Figures 4.10/4.11 — Worst-case Dataset: SuRF point-query throughput and
// memory on the Section 4.5 adversarial keys (64-byte keys, pairwise-shared
// 63-byte prefixes) vs the integer and email datasets.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "keys/keygen.h"
#include "surf/surf.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

void Run(const char* name, std::vector<std::string> keys, bool store_all) {
  std::vector<std::string> stored;
  if (store_all) {
    stored = keys;
  } else {
    Random rng(77);
    for (auto& k : keys)
      if (rng.Uniform(2)) stored.push_back(k);
  }
  SortUnique(&stored);
  size_t raw = 0;
  for (const auto& k : stored) raw += k.size();

  Surf surf;
  surf.Build(stored, SurfConfig::Base());
  size_t q = 1000000;
  auto reqs = GenYcsbRequests(keys.size(), q, YcsbSpec::WorkloadC());
  double mops = bench::Mops(q, [&](size_t i) {
    bench::Consume(surf.MayContain(keys[reqs[i].key_index]));
  });
  std::printf("%-11s %10.2f %12.1f %10.1f %14.1f%%\n", name, mops,
              bench::Mb(surf.MemoryBytes()), surf.BitsPerKey(),
              100.0 * surf.MemoryBytes() / raw);
}

}  // namespace

int main() {
  bench::Title("Figure 4.11: SuRF worst-case dataset (throughput, memory, size vs raw keys)");
  std::printf("%-11s %10s %12s %10s %15s\n", "Dataset", "Mops/s", "Memory(MB)",
              "bits/key", "of raw keys");
  size_t n = 1000000 * bench::Scale();
  Run("int", ToStringKeys(GenRandomInts(n)), false);
  Run("email", GenEmails(n / 2), false);
  Run("worst-case", GenWorstCaseKeys(n / 2), true);
  bench::Note("paper: worst-case keys defeat truncation — ~328 bits/key (64% of raw) and much lower throughput from 64-level traversals");
  return 0;
}
