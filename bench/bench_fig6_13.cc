// Figure 6.13 — Batch Encoding: latency per key when encoding a pre-sorted
// batch, reusing shared-prefix work, as batch size grows.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "hope/hope.h"
#include "keys/keygen.h"

using namespace met;

int main() {
  bench::Title("Figure 6.13: batch encoding (sorted email keys, ns/key)");
  size_t n = 500000 * bench::Scale();
  auto keys = GenEmails(n);
  SortUnique(&keys);
  std::vector<std::string> sample(keys.begin(), keys.begin() + keys.size() / 100);

  std::printf("%-13s %10s", "Scheme", "single");
  for (size_t b : {2, 8, 32, 128}) std::printf(" batch%-5zu", b);
  std::printf("\n");

  for (HopeScheme s : {HopeScheme::k3Grams, HopeScheme::k4Grams}) {
    HopeEncoder enc;
    enc.Build(sample, s, 1 << 16);
    std::printf("%-13s", HopeSchemeName(s));
    {
      Timer t;
      std::string scratch;
      for (const auto& k : keys) {
        scratch.clear();
        enc.EncodeBits(k, &scratch);
      }
      std::printf(" %9.0f", t.ElapsedNanos() / static_cast<double>(keys.size()));
    }
    for (size_t batch : {2, 8, 32, 128}) {
      Timer t;
      std::vector<std::string> out;
      for (size_t i = 0; i + batch <= keys.size(); i += batch) {
        std::vector<std::string> chunk(keys.begin() + i, keys.begin() + i + batch);
        enc.EncodeBatch(chunk, &out);
      }
      std::printf(" %9.0f", t.ElapsedNanos() / static_cast<double>(keys.size()));
    }
    std::printf("\n");
  }
  bench::Note("paper: batching amortizes common-prefix work; gains grow with batch size");
  return 0;
}
