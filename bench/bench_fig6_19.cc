// Figure 6.19 — HOPE-optimized HOT: YCSB point queries and memory on three
// string datasets with and without HOPE key compression (static HOT; see
// DESIGN.md).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "hope/hope.h"
#include "hot/hot.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

void Run(const char* name, std::vector<std::string> keys) {
  SortUnique(&keys);
  std::vector<std::string> sample(keys.begin(),
                                  keys.begin() + keys.size() / 100 + 1);
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;
  size_t q = 500000;
  auto reqs = GenYcsbRequests(keys.size(), q, YcsbSpec::WorkloadC());

  struct Cfg {
    const char* label;
    bool hope;
    HopeScheme scheme;
  } cfgs[] = {{"HOT", false, HopeScheme::kSingleChar},
              {"HOT+Single", true, HopeScheme::kSingleChar},
              {"HOT+Double", true, HopeScheme::kDoubleChar},
              {"HOT+3Grams", true, HopeScheme::k3Grams},
              {"HOT+ALM-Imp", true, HopeScheme::kAlmImproved}};

  for (const auto& c : cfgs) {
    HopeEncoder enc;
    std::vector<std::string> ekeys = keys;
    if (c.hope) {
      enc.Build(sample, c.scheme, 1 << 14);
      for (auto& k : ekeys) k = enc.Encode(k);
      SortUnique(&ekeys);
    }
    Hot hot;
    hot.Build(ekeys, values);
    std::string scratch;
    double mops = bench::Mops(q, [&](size_t i) {
      const std::string& k = keys[reqs[i].key_index];
      uint64_t v = 0;
      if (c.hope) {
        scratch.clear();
        enc.EncodeBits(k, &scratch);
        hot.Lookup(scratch, &v);
      } else {
        hot.Lookup(k, &v);
      }
      bench::Consume(v);
    });
    std::printf("%-12s %-7s %8.2f Mops/s %10.1f MB  height %zu\n", c.label,
                name, mops, bench::Mb(hot.MemoryBytes()), hot.Height());
  }
}

}  // namespace

int main() {
  bench::Title("Figure 6.19: HOPE-optimized HOT (point Mops/s, memory)");
  size_t n = 500000 * bench::Scale();
  Run("email", GenEmails(n));
  Run("wiki", GenWords(n));
  Run("url", GenUrls(n));
  bench::Note("paper: HOT gains less memory from HOPE than full-key trees (discriminative-bit storage) but still benefits; lightweight schemes win latency");
  return 0;
}
