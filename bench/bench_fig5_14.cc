// Figures 5.14-5.16 — Larger-than-Memory Workloads: with anti-caching
// enabled and a fixed memory budget, the index memory saved by hybrid
// indexes lets the DBMS keep more tuples resident and sustain higher
// throughput; the x-axis is transactions executed (as in the thesis).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "minidb/minidb.h"
#include "minidb/workloads.h"

using namespace met;

int main() {
  bench::Title("Figures 5.14-5.16: larger-than-memory (anti-caching) evaluation");
  size_t txns = 300000 * bench::Scale();
  size_t windows = 6;

  struct Make {
    const char* name;
    std::unique_ptr<WorkloadDriver> (*make)();
    size_t budget_mb;
  } workloads[] = {
      {"TPC-C", +[] { return MakeTpccDriver(2, 10, 300, 10000); }, 60},
      {"Voter", +[] { return MakeVoterDriver(6, 1000000); }, 24},
      {"Articles", +[] { return MakeArticlesDriver(20000, 10000); }, 26},
  };

  for (const auto& w : workloads) {
    for (IndexKind kind : {IndexKind::kBTree, IndexKind::kHybrid,
                           IndexKind::kHybridCompressed}) {
      MiniDb db(kind);
      auto driver = w.make();
      driver->Load(&db);
      db.EnableAntiCaching(w.budget_mb * 1000000);
      Random rng(42);
      std::printf("%-9s %-18s budget %3zu MB |", w.name, IndexKindName(kind),
                  w.budget_mb);
      size_t per_window = txns / windows;
      for (size_t win = 0; win < windows; ++win) {
        Timer t;
        for (size_t i = 0; i < per_window; ++i)
          driver->RunTransaction(&db, &rng);
        std::printf(" %6.0f", per_window / t.ElapsedSeconds() / 1e3);
      }
      std::printf(" ktxn/s | evict %7zu fetch %7zu | mem %6.1f MB\n",
                  static_cast<size_t>(db.stats().evictions),
                  static_cast<size_t>(db.stats().anticache_fetches),
                  bench::Mb(db.TotalMemoryBytes()));
    }
  }
  bench::Note("paper: hybrid indexes delay the first eviction and keep more tuples in memory, sustaining more transactions in the same window");
  return 0;
}
