// Figure 4.4 — SuRF False Positive Rate vs Bloom filter, sweeping suffix
// bits per key, for point / range / mixed queries on integer and email keys.
// Half the dataset is stored; queries draw from the full dataset (so ~50%
// are true negatives), as in Section 4.3.
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "bloom/bloom.h"
#include "common/random.h"
#include "keys/keygen.h"
#include "surf/surf.h"

using namespace met;

namespace {

struct Split {
  std::vector<std::string> stored;
  std::vector<std::string> probes;  // full dataset (≈50% stored)
};

Split MakeSplit(std::vector<std::string> all) {
  Split s;
  Random rng(77);
  for (auto& k : all) {
    if (rng.Uniform(2)) s.stored.push_back(k);
    s.probes.push_back(std::move(k));
  }
  SortUnique(&s.stored);
  return s;
}

std::string RangeHigh(const std::string& k, bool integer) {
  if (integer) return Uint64ToKey(KeyToUint64(k) + (uint64_t{1} << 38));
  std::string hi = k;
  hi.back() = static_cast<char>(hi.back() + 1);
  return hi;
}

void Run(const char* name, bool integer, const Split& s) {
  std::set<std::string> stored_set(s.stored.begin(), s.stored.end());
  for (uint32_t bits : {0u, 2u, 4u, 6u, 8u}) {
    Surf hash, real;
    hash.Build(s.stored, SurfConfig::Hash(bits));
    real.Build(s.stored, SurfConfig::Real(bits));
    double bpk = real.BitsPerKey();
    BloomFilter bloom(s.stored.size(), bpk);
    for (const auto& k : s.stored) bloom.Add(k);

    size_t pt_neg = 0, pt_fp_h = 0, pt_fp_r = 0, pt_fp_b = 0;
    size_t rg_neg = 0, rg_fp_h = 0, rg_fp_r = 0;
    for (const auto& k : s.probes) {
      if (!stored_set.count(k)) {
        ++pt_neg;
        pt_fp_h += hash.MayContain(k);
        pt_fp_r += real.MayContain(k);
        pt_fp_b += bloom.MayContain(k);
      }
      std::string hi = RangeHigh(k, integer);
      auto it = stored_set.lower_bound(k);
      bool truth = it != stored_set.end() && *it <= hi;
      if (!truth) {
        ++rg_neg;
        rg_fp_h += hash.MayContainRange(k, hi);
        rg_fp_r += real.MayContainRange(k, hi);
      }
    }
    auto pct = [](size_t fp, size_t neg) {
      return neg == 0 ? 0.0 : 100.0 * fp / neg;
    };
    std::printf(
        "%-7s %5u %7.1f | point FPR%%: Bloom %5.2f  SuRF-Hash %5.2f  "
        "SuRF-Real %5.2f | range FPR%%: SuRF-Hash %5.2f  SuRF-Real %5.2f\n",
        name, bits, bpk, pct(pt_fp_b, pt_neg), pct(pt_fp_h, pt_neg),
        pct(pt_fp_r, pt_neg), pct(rg_fp_h, rg_neg), pct(rg_fp_r, rg_neg));
  }
}

}  // namespace

int main() {
  bench::Title("Figure 4.4: SuRF false positive rate vs Bloom (suffix-bit sweep)");
  std::printf("%-7s %5s %7s\n", "Keys", "bits", "bpk");
  size_t n = 1000000 * bench::Scale();
  {
    auto ints = GenRandomInts(n);
    Run("int", true, MakeSplit(ToStringKeys(ints)));
  }
  {
    auto emails = GenEmails(n / 2);
    Run("email", false, MakeSplit(std::move(emails)));
  }
  bench::Note("paper: Bloom wins point FPR at equal size; only SuRF answers ranges; hash bits halve point FPR per bit, real bits help both");
  return 0;
}
