// Figure 5.3 — Hybrid B+tree vs Original B+tree (plus Hybrid-Compressed):
// YCSB workloads and memory across three key types, used as primary indexes.
#include "bench/hybrid_bench.h"
#include "btree/btree.h"
#include "hybrid/hybrid.h"

using namespace met;
using namespace met::bench;

int main() {
  Title("Figure 5.3: Hybrid B+tree vs original B+tree");
  size_t n = 1000000 * Scale();
  for (bool mono : {false, true}) {
    const char* kn = mono ? "mono-inc" : "rand";
    auto keys = IntDataset(mono, n);
    RunYcsbSuite<BTree<uint64_t>>("B+tree", kn, keys);
    RunYcsbSuite<HybridBTree<uint64_t>>("Hybrid", kn, keys);
    RunYcsbSuite<HybridCompressedBTree<uint64_t>>("Hybrid-Compressed", kn, keys);
  }
  {
    auto keys = GenEmails(n / 2);
    RunYcsbSuite<BTree<std::string>>("B+tree", "email", keys);
    RunYcsbSuite<HybridBTree<std::string>>("Hybrid", "email", keys);
  }
  Note("paper: hybrid ~30% slower inserts (uniqueness check), faster updates, 40-60% less memory; compressed saves more but is much slower");
  return 0;
}
