// Figure 5.10 — Secondary (non-unique) indexes: Hybrid B+tree vs B+tree
// with 10 values per key (modeled as composite key||value-id entries with
// the uniqueness check disabled; see DESIGN.md).
#include <cstdio>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "hybrid/hybrid.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

int main() {
  bench::Title("Figure 5.10: secondary-index mode (10 values/key, rand int)");
  size_t unique_keys = 100000 * bench::Scale();
  auto base = GenRandomInts(unique_keys);
  std::vector<uint64_t> keys;  // composite (key, value-id)
  keys.reserve(unique_keys * 10);
  for (auto k : base)
    for (uint64_t v = 0; v < 10; ++v) keys.push_back((k << 4) | v);

  size_t q = 1000000;
  auto reads = GenYcsbRequests(unique_keys, q, YcsbSpec::WorkloadC());

  {
    BTree<uint64_t> t;
    double ins = bench::Mops(keys.size(), [&](size_t i) {
      t.Insert(keys[i], i);
    });
    std::vector<uint64_t> out;
    double rd = bench::Mops(q, [&](size_t i) {
      out.clear();
      t.Scan(base[reads[i].key_index] << 4, 10, &out);
    });
    std::printf("%-10s ins %7.2f  read10 %7.2f Mops/s  %8.1f MB\n", "B+tree",
                ins, rd, bench::Mb(t.MemoryBytes()));
  }
  {
    HybridConfig cfg;
    cfg.unique = false;  // no two-stage uniqueness check
    HybridBTree<uint64_t> t(cfg);
    double ins = bench::Mops(keys.size(), [&](size_t i) {
      t.Insert(keys[i], i);
    });
    std::vector<uint64_t> out;
    double rd = bench::Mops(q, [&](size_t i) {
      out.clear();
      t.Scan(base[reads[i].key_index] << 4, 10, &out);
    });
    std::printf("%-10s ins %7.2f  read10 %7.2f Mops/s  %8.1f MB\n", "Hybrid",
                ins, rd, bench::Mb(t.MemoryBytes()));
  }
  bench::Note("paper: without the uniqueness check the hybrid insert gap shrinks; memory savings grow with key duplication");
  return 0;
}
