// Table 4.1 — SuRF vs ARF: range-query throughput, FPR, build time and
// build memory at equal bits per key (14), on a 10x-scaled-down dataset as
// in Section 4.3.5 (ARF's perfect-tree build is the memory bottleneck).
#include <cstdio>
#include <set>

#include "arf/arf.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "keys/keygen.h"
#include "surf/surf.h"

using namespace met;

int main() {
  bench::Title("Table 4.1: ARF vs SuRF (range filtering, 14 bits/key)");
  size_t n = 500000 * bench::Scale();
  auto all = GenRandomInts(n);
  std::vector<uint64_t> stored;
  Random rng(7);
  for (auto k : all)
    if (rng.Uniform(2)) stored.push_back(k);
  SortUnique(&stored);
  std::set<uint64_t> stored_set(stored.begin(), stored.end());

  // The paper pairs 5M stored keys with 2^40 ranges so that ~50% of queries
  // return false; scale the range with the stored count to preserve that
  // design point (expected keys per range ~ 0.7).
  const uint64_t range = static_cast<uint64_t>(
      0.7 * static_cast<double>(~0ull) / static_cast<double>(stored.size()));
  size_t q = 200000;

  // ---- SuRF-Real4 (≈14 bpk on random ints); timed before ARF so its
  // build is not distorted by the ARF tree's memory footprint. ----
  Timer surf_timer;
  std::vector<std::string> skeys = ToStringKeys(stored);
  Surf surf;
  surf.Build(skeys, SurfConfig::Real(4));
  double surf_build_s = surf_timer.ElapsedSeconds();

  // ---- ARF: build perfect tree, train on 20% of queries, trim. ----
  Timer arf_build_timer;
  Arf arf;
  arf.Build(stored);
  double arf_build_s = arf_build_timer.ElapsedSeconds();
  size_t arf_peak_mb = arf.BuildMemoryBytes() / 1000000;
  Timer arf_train_timer;
  ZipfGenerator zipf(all.size(), 0.99, 5);
  for (size_t i = 0; i < q / 5; ++i) {
    uint64_t a = all[zipf.NextScrambled()] + range;  // offset past the key
    arf.Train(a, a + range);
  }
  arf.TrimToBits(stored.size() * 14);
  double arf_train_s = arf_train_timer.ElapsedSeconds();

  // ---- Evaluation queries (zipf, ~50% empty ranges). ----
  size_t neg = 0, fp_arf = 0, fp_surf = 0;
  std::vector<std::pair<uint64_t, uint64_t>> queries;
  for (size_t i = 0; i < q; ++i) {
    // Start each range one range-width past a drawn key (the Section 4.3
    // convention [K + 2^37, K + 2^38]): starting at key+1 would measure
    // unavoidable truncation false positives instead of filter quality.
    uint64_t a = all[zipf.NextScrambled()] + range;
    queries.push_back({a, a + range});
  }
  double arf_mops = bench::Mops(queries.size(), [&](size_t i) {
    arf.MayContainRange(queries[i].first, queries[i].second);
  });
  double surf_mops = bench::Mops(queries.size(), [&](size_t i) {
    surf.MayContainRange(Uint64ToKey(queries[i].first),
                         Uint64ToKey(queries[i].second));
  });
  for (const auto& [a, b] : queries) {
    auto it = stored_set.lower_bound(a);
    bool truth = it != stored_set.end() && *it <= b;
    if (truth) continue;
    ++neg;
    fp_arf += arf.MayContainRange(a, b);
    fp_surf += surf.MayContainRange(Uint64ToKey(a), Uint64ToKey(b));
  }

  std::printf("%-32s %12s %12s\n", "", "ARF", "SuRF");
  std::printf("%-32s %12.1f %12.1f\n", "Bits per key",
              static_cast<double>(arf.EncodedBits()) / stored.size(),
              surf.BitsPerKey());
  std::printf("%-32s %12.2f %12.2f\n", "Range query throughput (Mops/s)",
              arf_mops, surf_mops);
  std::printf("%-32s %12.2f %12.2f\n", "False positive rate (%)",
              100.0 * fp_arf / neg, 100.0 * fp_surf / neg);
  std::printf("%-32s %12.2f %12.2f\n", "Build time (s)", arf_build_s,
              surf_build_s);
  std::printf("%-32s %12.1f %12.1f\n", "Build memory (MB)",
              static_cast<double>(arf_peak_mb),
              surf.MemoryBytes() / 1e6);
  std::printf("%-32s %12.2f %12s\n", "Training time (s)", arf_train_s, "n/a");
  bench::Note("paper: SuRF is ~20x faster, ~12x more accurate, ~98x faster to build, ~1300x less build memory");
  return 0;
}
