// Figure 6.18 — HOPE-optimized ART: YCSB point queries and memory on three
// string datasets with and without HOPE key compression.
#include <cstdio>

#include "art/art.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "hope/hope.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

void Run(const char* name, const std::vector<std::string>& keys) {
  std::vector<std::string> sample(keys.begin(),
                                  keys.begin() + keys.size() / 100 + 1);
  size_t q = 500000;
  auto reqs = GenYcsbRequests(keys.size(), q, YcsbSpec::WorkloadC());

  struct Cfg {
    const char* label;
    bool hope;
    HopeScheme scheme;
  } cfgs[] = {{"ART", false, HopeScheme::kSingleChar},
              {"ART+Single", true, HopeScheme::kSingleChar},
              {"ART+Double", true, HopeScheme::kDoubleChar},
              {"ART+3Grams", true, HopeScheme::k3Grams},
              {"ART+ALM-Imp", true, HopeScheme::kAlmImproved}};

  for (const auto& c : cfgs) {
    HopeEncoder enc;
    if (c.hope) enc.Build(sample, c.scheme, 1 << 14);
    Art art;
    for (size_t i = 0; i < keys.size(); ++i)
      art.Insert(c.hope ? enc.Encode(keys[i]) : keys[i], i);
    std::string scratch;
    double mops = bench::Mops(q, [&](size_t i) {
      const std::string& k = keys[reqs[i].key_index];
      uint64_t v = 0;
      if (c.hope) {
        scratch.clear();
        enc.EncodeBits(k, &scratch);  // no allocation on the query path
        art.Lookup(scratch, &v);
      } else {
        art.Lookup(k, &v);
      }
      bench::Consume(v);
    });
    std::printf("%-12s %-7s %8.2f Mops/s %10.1f MB\n", c.label, name, mops,
                bench::Mb(art.MemoryBytes()));
  }
}

}  // namespace

int main() {
  bench::Title("Figure 6.18: HOPE-optimized ART (point Mops/s, memory)");
  size_t n = 500000 * bench::Scale();
  Run("email", GenEmails(n));
  Run("wiki", GenWords(n));
  Run("url", GenUrls(n));
  bench::Note("paper: lightweight schemes (Single/Double) often win overall — encoding cost is on the query path; memory drops for all schemes");
  return 0;
}
