// Figure 4.7 — SuRF Scalability: aggregate point-query throughput with 1-4
// threads (SuRF is read-only and lock-free). NOTE: this container exposes a
// single CPU core, so near-flat scaling here reflects the hardware, not the
// data structure; the paper shows near-perfect scaling on 10 physical cores.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "keys/keygen.h"
#include "surf/surf.h"
#include "ycsb/workload.h"

using namespace met;

int main() {
  bench::Title("Figure 4.7: SuRF thread scalability (point queries)");
  size_t n = 1000000 * bench::Scale();
  auto keys = ToStringKeys(GenRandomInts(n));
  std::vector<std::string> stored(keys.begin(), keys.begin() + n / 2);
  SortUnique(&stored);
  Surf surf;
  surf.Build(stored, SurfConfig::Hash(4));

  size_t q = 1000000;
  auto reqs = GenYcsbRequests(keys.size(), q, YcsbSpec::WorkloadC());

  std::printf("%8s %14s\n", "Threads", "Mops/s (agg)");
  for (int threads = 1; threads <= 4; ++threads) {
    Timer timer;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        uint64_t acc = 0;
        for (size_t i = t; i < reqs.size(); i += threads)
          acc += surf.MayContain(keys[reqs[i].key_index]);
        met::bench::Consume(acc);
      });
    }
    for (auto& th : pool) th.join();
    double mops = q / timer.ElapsedSeconds() / 1e6;
    std::printf("%8d %14.2f\n", threads, mops);
  }
  std::printf("  (hardware: %u core(s) visible — scaling is capped by the container)\n",
              std::thread::hardware_concurrency());
  return 0;
}
