// met::batch — batch-size sweep for the group-prefetching lookup pipeline.
//
// Executes the same uniform-random point-query stream at batch sizes 1
// through 256 against each structure: the native interleaved kernels (FST
// point lookups, SuRF filter probes, Bloom probes) and the scalar
// met::LookupBatch fallback (B+tree, ART), whose flat speedup curve is the
// control. batch=1 runs the ordinary scalar call path — the baseline every
// speedup column is relative to. Defaults to 10M random 64-bit integer keys
// (the acceptance configuration: FST and SuRF should clear 1.5x at batch 64)
// plus half as many emails; `--keys N` / `--ops N` shrink it for CI smoke.
//
// Batched results are bit-identical to scalar by construction; checked
// builds (MET_CHECK=1 / Debug) re-verify every batch against the scalar
// path inline, so this bench doubles as a stress test there.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "art/art.h"
#include "bench/bench_util.h"
#include "bloom/bloom.h"
#include "btree/btree.h"
#include "common/index_api.h"
#include "common/prefetch.h"
#include "common/timer.h"
#include "fst/fst.h"
#include "keys/keygen.h"
#include "obs/obs.h"
#include "prof/perf_counters.h"
#include "surf/surf.h"

using namespace met;

namespace {

constexpr size_t kBatches[] = {1, 4, 16, 64, 256};
constexpr size_t kMaxBatch = 256;

const char* only_structure = nullptr;  // --only <substr>: skip other series
size_t reps = 5;                       // --reps N: max-of-N per cell

bool Selected(const char* structure) {
  return only_structure == nullptr ||
         std::strstr(structure, only_structure) != nullptr;
}

/// Uniform query indices from a SplitMix64 stream (deliberately not Zipfian:
/// skew keeps hot nodes cache-resident and understates what prefetching
/// recovers on a cold working set).
std::vector<uint32_t> UniformIndices(size_t n, size_t ops, uint64_t seed) {
  std::vector<uint32_t> idx(ops);
  uint64_t x = seed;
  for (size_t i = 0; i < ops; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    idx[i] = static_cast<uint32_t>((z ^ (z >> 31)) % n);
  }
  return idx;
}

/// One perf_event group shared by every sweep cell (open once, reset per
/// measured pass). Unavailable counters (containers, MET_NO_PERF) simply
/// drop the hardware columns; rows then carry perf_available=0.
prof::PerfCounterSet& PerfSet() {
  static prof::PerfCounterSet set;
  return set;
}

void Report(const char* structure, const char* keyset, size_t batch,
            double mops, double speedup, const prof::PerfReading& perf,
            size_t ops) {
  std::printf("%-14s %-7s %6zu %10.2f %9.2fx", structure, keyset, batch, mops,
              speedup);
  if (perf.has(prof::PerfReading::kLlcMisses) && ops > 0)
    std::printf(" %10.2f", static_cast<double>(perf.llc_misses) /
                               static_cast<double>(ops));
  else
    std::printf(" %10s", "n/a");
  std::printf("\n");
  std::vector<bench::Reporter::Field> fields = {{"structure", structure},
                                                {"keyset", keyset},
                                                {"batch", batch},
                                                {"mops", mops},
                                                {"speedup", speedup}};
  bench::AppendPerfFields(perf, ops, &fields);
  bench::Row(std::move(fields));
}

/// Sweeps kBatches: `scalar(i)` answers query i through the ordinary call
/// path; `batched(i0, cnt)` answers queries [i0, i0+cnt) in one batch call.
template <typename ScalarFn, typename BatchFn>
void Sweep(const char* structure, const char* keyset, size_t ops,
           ScalarFn&& scalar, BatchFn&& batched) {
  if (!Selected(structure)) return;
  double base = 0;
  for (size_t b : kBatches) {
    // Max of `reps` repetitions: each cell is latency-bound and seconds
    // long, so the max is the least-interfered sample on a shared machine
    // (same treatment for the scalar baseline keeps the ratio fair).
    double mops = 0;
    for (size_t r = 0; r < reps; ++r) {
      double m;
      if (b == 1) {
        m = bench::Mops(ops, scalar);
      } else {
        met::Timer timer;
        for (size_t i = 0; i < ops; i += b) batched(i, std::min(b, ops - i));
        double s = timer.ElapsedSeconds();
        m = s <= 0 ? 0 : static_cast<double>(ops) / s / 1e6;
      }
      mops = std::max(mops, m);
    }
    // One extra untimed pass under the hardware-counter group so misses/op
    // rides along with the throughput columns (skipped entirely when the
    // counters never opened).
    prof::PerfReading perf;
    if (PerfSet().available()) {
      prof::PerfScope scope(&PerfSet());
      if (b == 1) {
        for (size_t i = 0; i < ops; ++i) scalar(i);
      } else {
        for (size_t i = 0; i < ops; i += b) batched(i, std::min(b, ops - i));
      }
      perf = scope.Stop();
    }
    if (b == 1) base = mops;
    Report(structure, keyset, b, mops, base > 0 ? mops / base : 1.0, perf,
           ops);
  }
}

void RunStringDataset(const char* keyset, const std::vector<std::string>& keys,
                      size_t ops) {
  size_t n = keys.size();
  auto qidx = UniformIndices(n, ops, 0x5eedull + n);
  std::vector<std::string_view> qkeys(ops);
  for (size_t i = 0; i < ops; ++i) qkeys[i] = keys[qidx[i]];
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = i + 1;

  std::vector<LookupResult> out(kMaxBatch);
  std::unique_ptr<bool[]> bout(new bool[kMaxBatch]);

  if (Selected("FST")) {
    Fst fst;
    fst.Build(keys, values);
    Sweep(
        "FST", keyset, ops,
        [&](size_t i) {
          uint64_t v = 0;
          fst.Lookup(qkeys[i], &v);
          bench::Consume(v);
        },
        [&](size_t i0, size_t cnt) {
          fst.LookupBatch(&qkeys[i0], cnt, out.data());
          bench::Consume(out[cnt - 1].value);
        });
  }
  if (Selected("SuRF-Hash4")) {
    Surf surf;
    surf.Build(keys, SurfConfig::Hash(4));
    Sweep(
        "SuRF-Hash4", keyset, ops,
        [&](size_t i) { bench::Consume(surf.MayContain(qkeys[i])); },
        [&](size_t i0, size_t cnt) {
          surf.MayContainBatch(&qkeys[i0], cnt, bout.get());
          bench::Consume(bout[cnt - 1]);
        });
  }
  if (Selected("Bloom")) {
    BloomFilter bloom(n, 14);
    for (const auto& k : keys) bloom.Add(k);
    Sweep(
        "Bloom", keyset, ops,
        [&](size_t i) { bench::Consume(bloom.MayContain(qkeys[i])); },
        [&](size_t i0, size_t cnt) {
          bloom.MayContainBatch(&qkeys[i0], cnt, bout.get());
          bench::Consume(bout[cnt - 1]);
        });
  }
  if (Selected("ART(scalar)")) {
    Art art;
    for (size_t i = 0; i < n; ++i) art.Insert(keys[i], values[i]);
    Sweep(
        "ART(scalar)", keyset, ops,
        [&](size_t i) {
          uint64_t v = 0;
          art.Lookup(qkeys[i], &v);
          bench::Consume(v);
        },
        [&](size_t i0, size_t cnt) {
          met::LookupBatch(art, &qkeys[i0], cnt, out.data());
          bench::Consume(out[cnt - 1].value);
        });
  }
}

void RunIntTreeDataset(const std::vector<uint64_t>& ints, size_t ops) {
  size_t n = ints.size();
  auto qidx = UniformIndices(n, ops, 0xb7eeull + n);
  std::vector<uint64_t> qkeys(ops);
  for (size_t i = 0; i < ops; ++i) qkeys[i] = ints[qidx[i]];
  std::vector<LookupResult> out(kMaxBatch);

  if (!Selected("B+tree(scalar)")) return;
  BTree<uint64_t> btree;
  for (size_t i = 0; i < n; ++i) btree.Insert(ints[i], i + 1);
  Sweep(
      "B+tree(scalar)", "int", ops,
      [&](size_t i) {
        uint64_t v = 0;
        btree.Lookup(qkeys[i], &v);
        bench::Consume(v);
      },
      [&](size_t i0, size_t cnt) {
        met::LookupBatch(btree, &qkeys[i0], cnt, out.data());
        bench::Consume(out[cnt - 1].value);
      });
}

/// Pipeline-occupancy counters from the FST kernel (populated only in
/// builds with -DMET_OBS_DEBUG_COUNTERS=1; silent otherwise).
void MaybePrintOccupancy() {
  auto& reg = obs::MetricsRegistry::Global();
  uint64_t rounds = reg.GetCounter("fst.batch.rounds")->Value();
  if (rounds == 0) return;
  uint64_t slots = reg.GetCounter("fst.batch.round_slots")->Value();
  uint64_t probes = reg.GetCounter("fst.batch.probes")->Value();
  double occupancy = static_cast<double>(slots) / (rounds * 16.0);
  std::printf("  fst.batch occupancy: %.1f%% (%llu probes, %llu rounds)\n",
              occupancy * 100.0, static_cast<unsigned long long>(probes),
              static_cast<unsigned long long>(rounds));
  bench::Row({{"structure", "FST"},
              {"metric", "occupancy"},
              {"value", occupancy},
              {"probes", probes},
              {"rounds", rounds}});
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter::Get().ParseArgs(&argc, argv);
  size_t num_keys = 10000000;
  size_t ops = 2000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--keys") == 0 && i + 1 < argc) {
      num_keys = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      num_keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only_structure = argv[++i];
    } else if (std::strncmp(argv[i], "--only=", 7) == 0) {
      only_structure = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }
  if (num_keys < kMaxBatch) num_keys = kMaxBatch;
  if (ops < kMaxBatch) ops = kMaxBatch;
  if (reps == 0) reps = 1;

  bench::Title("met::batch: point-lookup throughput vs batch size");
  std::printf("  %zu int keys / %zu emails, %zu uniform queries, prefetch %s\n",
              num_keys, num_keys / 2, ops, kPrefetchEnabled ? "on" : "off");
  std::printf("%-14s %-7s %6s %10s %10s %10s\n", "Structure", "Keys", "Batch",
              "Mops/s", "Speedup", "LLCmiss/op");
  if (!PerfSet().available())
    std::printf("  (hardware counters unavailable: perf_event_open rejected "
                "or MET_NO_PERF set)\n");

  {
    auto ints = GenRandomInts(num_keys);
    SortUnique(&ints);
    RunStringDataset("int", ToStringKeys(ints), ops);
    RunIntTreeDataset(ints, ops);
  }
  {
    auto emails = GenEmails(num_keys / 2);
    SortUnique(&emails);
    RunStringDataset("email", emails, ops);
  }
  MaybePrintOccupancy();
  bench::Note("group prefetching overlaps the DRAM misses of ~16 in-flight descents; wins scale with tree depth x miss cost, so FST/SuRF gain most and the scalar-fallback trees stay flat");
  return 0;
}
