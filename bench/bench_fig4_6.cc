// Figure 4.6 — Build Time: constructing SuRF variants vs Bloom filters from
// sorted keys.
#include <cstdio>

#include "bench/bench_util.h"
#include "bloom/bloom.h"
#include "common/timer.h"
#include "keys/keygen.h"
#include "surf/surf.h"

using namespace met;

namespace {

void Run(const char* name, const std::vector<std::string>& keys) {
  {
    Timer t;
    BloomFilter bloom(keys.size(), 14);
    for (const auto& k : keys) bloom.Add(k);
    std::printf("%-11s %-7s %8.2f s\n", "Bloom", name, t.ElapsedSeconds());
  }
  struct Case {
    const char* label;
    SurfConfig cfg;
  } cases[] = {{"SuRF-Base", SurfConfig::Base()},
               {"SuRF-Hash4", SurfConfig::Hash(4)},
               {"SuRF-Real4", SurfConfig::Real(4)}};
  for (const auto& c : cases) {
    Timer t;
    Surf surf;
    surf.Build(keys, c.cfg);
    std::printf("%-11s %-7s %8.2f s\n", c.label, name, t.ElapsedSeconds());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunStandardBench(
      &argc, argv, "Figure 4.6: filter build time (sorted input)", [] {},
      [](const char* name, const std::vector<std::string>& keys) {
        Run(name, keys);
      },
      "paper: SuRF builds faster than Bloom (single sequential scan vs k random writes per key)",
      /*base_keys=*/2000000);
  return 0;
}
