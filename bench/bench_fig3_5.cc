// Figure 3.5 — FST vs Other Succinct Tries: point-query throughput and
// memory for FST against a baseline succinct trie (our stand-in for
// tx-trie/PDT: the same LOUDS-Sparse encoding with generic Poppy-style
// rank/select, no LOUDS-Dense, no SIMD/prefetch — see DESIGN.md). All tries
// store complete keys.
#include <cstdio>

#include "bench/bench_util.h"
#include "fst/fst.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

void Run(const char* name, const std::vector<std::string>& keys) {
  size_t q = 1000000;
  auto queries = GenYcsbRequests(keys.size(), q, YcsbSpec::WorkloadC());
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;

  FstConfig baseline;  // "earlier succinct trie" design point
  baseline.max_dense_levels = 0;
  baseline.fast_rank = false;
  baseline.fast_select = false;
  baseline.simd_label_search = false;
  baseline.prefetch = false;

  struct Case {
    const char* label;
    FstConfig cfg;
  } cases[] = {{"baseline-succinct", baseline}, {"FST", FstConfig{}}};

  for (const auto& c : cases) {
    Fst t;
    t.Build(keys, values, c.cfg);
    double mops = bench::Mops(q, [&](size_t i) {
      uint64_t v = 0;
      t.Lookup(keys[queries[i].key_index], &v);
             met::bench::Consume(v);
    });
    std::printf("%-20s %-7s %10.2f %12.1f\n", c.label, name, mops,
                bench::Mb(t.MemoryBytes()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunStandardBench(
      &argc, argv, "Figure 3.5: FST vs other succinct tries (full keys)",
      [] {
        std::printf("%-20s %-7s %10s %12s\n", "Trie", "Keys", "Mops/s",
                    "Memory(MB)");
      },
      [](const char* name, const std::vector<std::string>& keys) {
        Run(name, keys);
      },
      "paper: FST is 4-15x faster than tx-trie/PDT while smaller");
  return 0;
}
