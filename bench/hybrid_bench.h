// Shared runner for Figures 5.3-5.6: YCSB insert-only / read-only /
// read-write / scan-insert workloads over an original dynamic tree and its
// hybrid counterpart, across key types.
#ifndef MET_BENCH_HYBRID_BENCH_H_
#define MET_BENCH_HYBRID_BENCH_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

namespace met::bench {

/// Runs the four Section 5.3.1 workloads on `Index` and prints one line per
/// workload. Index must expose Insert/Lookup/Update/Scan/MemoryBytes.
template <typename Index, typename Key>
void RunYcsbSuite(const char* index_name, const char* key_name,
                  const std::vector<Key>& keys) {
  size_t n_load = keys.size() * 9 / 10;  // reserve 10% for insert phases
  size_t q = 1000000;

  Index index;
  // Insert-only (the load phase is the measurement).
  double insert_mops = Mops(n_load, [&](size_t i) {
    index.Insert(keys[i], static_cast<uint64_t>(i));
  });
  size_t mem_after_load = index.MemoryBytes();

  auto reads = GenYcsbRequests(n_load, q, YcsbSpec::WorkloadC());
  double read_mops = Mops(q, [&](size_t i) {
    uint64_t v = 0;
    index.Lookup(keys[reads[i].key_index], &v);
    Consume(v);
  });

  auto rw = GenYcsbRequests(n_load, q, YcsbSpec::WorkloadA());
  double rw_mops = Mops(q, [&](size_t i) {
    uint64_t v = 0;
    if (rw[i].op == YcsbOp::kRead) {
      index.Lookup(keys[rw[i].key_index], &v);
      Consume(v);
    } else {
      index.Update(keys[rw[i].key_index], i);
    }
  });

  auto scans = GenYcsbRequests(n_load, q / 10, YcsbSpec::WorkloadE());
  size_t next_insert = n_load;
  std::vector<uint64_t> out;
  double scan_mops = Mops(scans.size(), [&](size_t i) {
    if (scans[i].op == YcsbOp::kScan) {
      out.clear();
      index.Scan(keys[scans[i].key_index], scans[i].scan_length, &out);
    } else if (next_insert < keys.size()) {
      index.Insert(keys[next_insert++], next_insert);
    }
  });

  std::printf(
      "%-18s %-9s | ins %7.2f  read %7.2f  rw %7.2f  scan %7.3f Mops/s | "
      "%8.1f MB\n",
      index_name, key_name, insert_mops, read_mops, rw_mops, scan_mops,
      Mb(mem_after_load));
}

inline std::vector<uint64_t> IntDataset(bool mono, size_t n) {
  return mono ? GenMonoIncInts(n) : GenRandomInts(n);
}

}  // namespace met::bench

#endif  // MET_BENCH_HYBRID_BENCH_H_
