// Table 2.2 — Point Query Profiling: point-query cost of the four dynamic
// search trees on random 64-bit integer keys. Hardware counters (PAPI) are
// unavailable in this environment, so we report throughput, per-query
// latency and memory instead (see DESIGN.md substitutions); the ordering —
// ART fastest by a wide margin — is the paper's takeaway.
#include <cstdio>

#include "art/art.h"
#include "bench/bench_util.h"
#include "btree/btree.h"
#include "common/random.h"
#include "keys/keygen.h"
#include "masstree/masstree.h"
#include "skiplist/skiplist.h"
#include "ycsb/workload.h"

using namespace met;

int main() {
  bench::Title("Table 2.2: Point Query Profiling (PAPI unavailable: reporting throughput/latency/memory)");
  size_t n = 1000000 * bench::Scale();
  size_t q = 1000000 * bench::Scale();
  auto ints = GenRandomInts(n);
  auto queries = GenYcsbRequests(n, q, YcsbSpec::WorkloadC());

  std::printf("%-10s %14s %14s %12s\n", "Structure", "Mops/s", "ns/query",
              "Memory (MB)");

  auto report = [&](const char* name, double mops, size_t mem) {
    std::printf("%-10s %14.2f %14.0f %12.1f\n", name, mops, 1000.0 / mops,
                bench::Mb(mem));
  };

  {
    BTree<uint64_t> t;
    for (auto k : ints) t.Insert(k, k);
    report("B+tree", bench::Mops(queries.size(), [&](size_t i) {
             uint64_t v = 0;
             t.Lookup(ints[queries[i].key_index], &v);
             met::bench::Consume(v);
           }),
           t.MemoryBytes());
  }
  {
    Masstree t;
    for (auto k : ints) t.Insert(Uint64ToKey(k), k);
    std::vector<std::string> keys = ToStringKeys(ints);
    report("Masstree", bench::Mops(queries.size(), [&](size_t i) {
             uint64_t v = 0;
             t.Lookup(keys[queries[i].key_index], &v);
             met::bench::Consume(v);
           }),
           t.MemoryBytes());
  }
  {
    SkipList<uint64_t> t;
    for (auto k : ints) t.Insert(k, k);
    report("Skip List", bench::Mops(queries.size(), [&](size_t i) {
             uint64_t v = 0;
             t.Lookup(ints[queries[i].key_index], &v);
             met::bench::Consume(v);
           }),
           t.MemoryBytes());
  }
  {
    Art t;
    std::vector<std::string> keys = ToStringKeys(ints);
    for (size_t i = 0; i < keys.size(); ++i) t.Insert(keys[i], ints[i]);
    report("ART", bench::Mops(queries.size(), [&](size_t i) {
             uint64_t v = 0;
             t.Lookup(keys[queries[i].key_index], &v);
             met::bench::Consume(v);
           }),
           t.MemoryBytes());
  }
  bench::Note("paper: ART needs ~2.3x fewer instructions and ~5x fewer cache misses than the B-tree family");
  return 0;
}
