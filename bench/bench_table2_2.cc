// Table 2.2 — Point Query Profiling: point-query cost of the four dynamic
// search trees on random 64-bit integer keys. Hardware counters come from
// perf_event_open via met::prof (cycles, instructions, LLC misses, branch
// mispredicts per query); on machines that reject the syscall (containers,
// perf_event_paranoid >= 3) the bench degrades to throughput/latency/memory
// only, as the pre-prof versions did. The ordering — ART fastest with the
// fewest misses by a wide margin — is the paper's takeaway.
#include <cstdio>
#include <vector>

#include "art/art.h"
#include "bench/bench_util.h"
#include "btree/btree.h"
#include "common/random.h"
#include "keys/keygen.h"
#include "masstree/masstree.h"
#include "prof/perf_counters.h"
#include "skiplist/skiplist.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

prof::PerfCounterSet& PerfSet() {
  static prof::PerfCounterSet set;
  return set;
}

/// Runs the query loop once more under the hardware-counter group (untimed;
/// zero reading when the counters never opened).
template <typename Fn>
prof::PerfReading MeasurePerf(size_t ops, Fn&& fn) {
  prof::PerfReading r;
  if (PerfSet().available()) {
    prof::PerfScope scope(&PerfSet());
    for (size_t i = 0; i < ops; ++i) fn(i);
    r = scope.Stop();
  }
  return r;
}

void Report(const char* name, double mops, const MemoryBreakdown& b,
            const prof::PerfReading& perf, size_t ops) {
  size_t mem = b.TotalBytes();
  std::printf("%-10s %10.2f %10.0f %12.1f", name, mops, 1000.0 / mops,
              bench::Mb(mem));
  using E = prof::PerfReading;
  double n = static_cast<double>(ops);
  if (perf.has(E::kInstructions))
    std::printf(" %10.0f", static_cast<double>(perf.instructions) / n);
  else
    std::printf(" %10s", "n/a");
  if (perf.has(E::kLlcMisses))
    std::printf(" %10.2f", static_cast<double>(perf.llc_misses) / n);
  else
    std::printf(" %10s", "n/a");
  if (perf.has(E::kBranchMisses))
    std::printf(" %10.2f", static_cast<double>(perf.branch_misses) / n);
  else
    std::printf(" %10s", "n/a");
  std::printf("\n");
  std::vector<bench::Reporter::Field> fields = {
      {"structure", name}, {"mops", mops}, {"bytes", mem}};
  for (const auto& c : b.children())
    fields.push_back({("mem." + c.name()).c_str(), c.TotalBytes()});
  bench::AppendPerfFields(perf, ops, &fields);
  bench::Row(std::move(fields));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter::Get().ParseArgs(&argc, argv);
  bench::Title("Table 2.2: Point Query Profiling (perf_event_open hardware counters)");
  size_t n = 1000000 * bench::Scale();
  size_t q = 1000000 * bench::Scale();
  auto ints = GenRandomInts(n);
  auto queries = GenYcsbRequests(n, q, YcsbSpec::WorkloadC());

  std::printf("%-10s %10s %10s %12s %10s %10s %10s\n", "Structure", "Mops/s",
              "ns/query", "Memory(MB)", "instr/q", "LLCmiss/q", "brmiss/q");
  if (!PerfSet().available())
    std::printf("  (hardware counters unavailable: perf_event_open rejected "
                "or MET_NO_PERF set)\n");

  {
    BTree<uint64_t> t;
    for (auto k : ints) t.Insert(k, k);
    auto query = [&](size_t i) {
      uint64_t v = 0;
      t.Lookup(ints[queries[i].key_index], &v);
      met::bench::Consume(v);
    };
    Report("B+tree", bench::Mops(queries.size(), query), t.Breakdown(),
           MeasurePerf(queries.size(), query), queries.size());
  }
  {
    Masstree t;
    for (auto k : ints) t.Insert(Uint64ToKey(k), k);
    std::vector<std::string> keys = ToStringKeys(ints);
    auto query = [&](size_t i) {
      uint64_t v = 0;
      t.Lookup(keys[queries[i].key_index], &v);
      met::bench::Consume(v);
    };
    Report("Masstree", bench::Mops(queries.size(), query), t.Breakdown(),
           MeasurePerf(queries.size(), query), queries.size());
  }
  {
    SkipList<uint64_t> t;
    for (auto k : ints) t.Insert(k, k);
    auto query = [&](size_t i) {
      uint64_t v = 0;
      t.Lookup(ints[queries[i].key_index], &v);
      met::bench::Consume(v);
    };
    Report("Skip List", bench::Mops(queries.size(), query), t.Breakdown(),
           MeasurePerf(queries.size(), query), queries.size());
  }
  {
    Art t;
    std::vector<std::string> keys = ToStringKeys(ints);
    for (size_t i = 0; i < keys.size(); ++i) t.Insert(keys[i], ints[i]);
    auto query = [&](size_t i) {
      uint64_t v = 0;
      t.Lookup(keys[queries[i].key_index], &v);
      met::bench::Consume(v);
    };
    Report("ART", bench::Mops(queries.size(), query), t.Breakdown(),
           MeasurePerf(queries.size(), query), queries.size());
  }
  bench::Note("paper: ART needs ~2.3x fewer instructions and ~5x fewer cache misses than the B-tree family");
  return 0;
}
