// Figure 2.5 — Compaction, Reduction, and Compression Evaluation: read
// throughput and memory for each dynamic structure vs its compact (D-to-S
// rules #1+#2) variant, plus the Compressed B+tree (rule #3), across three
// key types (random int, mono-inc int, email).
#include <cstdio>

#include "art/art.h"
#include "art/compact_art.h"
#include "bench/bench_util.h"
#include "btree/btree.h"
#include "btree/compact_btree.h"
#include "btree/compressed_btree.h"
#include "common/random.h"
#include "keys/keygen.h"
#include "masstree/compact_masstree.h"
#include "masstree/masstree.h"
#include "skiplist/compact_skiplist.h"
#include "skiplist/skiplist.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

struct Dataset {
  const char* name;
  std::vector<uint64_t> ints;        // empty for email
  std::vector<std::string> strings;  // always populated (big-endian for ints)
};

// Memory column comes from the structure's own MemoryBreakdown (equal to
// MemoryBytes() by construction, asserted in tests/prof_test.cc); the
// trailing split shows where those bytes live.
void Report(const char* structure, const char* variant, const char* dataset,
            double mops, const MemoryBreakdown& b) {
  size_t mem = b.TotalBytes();
  std::printf("%-10s %-12s %-10s %10.2f %12.1f   ", structure, variant,
              dataset, mops, bench::Mb(mem));
  for (size_t i = 0; i < b.children().size(); ++i) {
    const auto& c = b.children()[i];
    std::printf("%s%s %.0f%%", i == 0 ? "" : ", ", c.name().c_str(),
                mem == 0 ? 0.0
                         : 100.0 * static_cast<double>(c.TotalBytes()) /
                               static_cast<double>(mem));
  }
  std::printf("\n");
  std::vector<bench::Reporter::Field> fields = {{"structure", structure},
                                                {"variant", variant},
                                                {"keyset", dataset},
                                                {"mops", mops},
                                                {"bytes", mem}};
  for (const auto& c : b.children())
    fields.push_back({("mem." + c.name()).c_str(), c.TotalBytes()});
  bench::Row(std::move(fields));
}

template <typename Entries>
Entries SortedEntries(const std::vector<uint64_t>& ints) {
  Entries entries;
  auto sorted = ints;
  SortUnique(&sorted);
  for (auto k : sorted) entries.push_back({k, k, false});
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter::Get().ParseArgs(&argc, argv);
  bench::Title("Figure 2.5: D-to-S Rules (read throughput Mops/s, memory MB)");
  size_t n = 1000000 * bench::Scale();
  size_t q = 1000000;

  std::vector<Dataset> datasets;
  datasets.push_back({"rand", GenRandomInts(n), {}});
  datasets.push_back({"mono-inc", GenMonoIncInts(n), {}});
  datasets.push_back({"email", {}, GenEmails(n / 2)});
  for (auto& d : datasets)
    if (d.strings.empty()) d.strings = ToStringKeys(d.ints);

  auto queries = GenYcsbRequests(n / 2, q, YcsbSpec::WorkloadC());
  std::printf("%-10s %-12s %-10s %10s %12s\n", "Structure", "Variant",
              "Keys", "Mops/s", "Memory(MB)");

  for (const auto& d : datasets) {
    size_t nk = d.strings.size();
    auto qidx = [&](size_t i) { return queries[i].key_index % nk; };

    // ---- B+tree family (integer keys only, as in the thesis) ----
    if (!d.ints.empty()) {
      BTree<uint64_t> bt;
      for (auto k : d.ints) bt.Insert(k, k);
      Report("B+tree", "original", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               bt.Lookup(d.ints[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             bt.Breakdown());

      CompactBTree<uint64_t> cbt;
      cbt.Build(SortedEntries<std::vector<MergeEntry<uint64_t, uint64_t>>>(d.ints));
      Report("B+tree", "compact", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               cbt.Lookup(d.ints[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             cbt.Breakdown());

      CompressedBTree<uint64_t> zbt;
      zbt.Build(SortedEntries<std::vector<MergeEntry<uint64_t, uint64_t>>>(d.ints));
      Report("B+tree", "compressed", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               zbt.Lookup(d.ints[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             zbt.Breakdown());

      SkipList<uint64_t> sl;
      for (auto k : d.ints) sl.Insert(k, k);
      Report("SkipList", "original", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               sl.Lookup(d.ints[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             sl.Breakdown());

      CompactSkipList<uint64_t> csl;
      csl.Build(SortedEntries<std::vector<MergeEntry<uint64_t, uint64_t>>>(d.ints));
      Report("SkipList", "compact", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               csl.Lookup(d.ints[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             csl.Breakdown());
    } else {
      // String keys: B+tree/SkipList over std::string.
      BTree<std::string> bt;
      for (size_t i = 0; i < d.strings.size(); ++i) bt.Insert(d.strings[i], i);
      Report("B+tree", "original", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               bt.Lookup(d.strings[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             bt.Breakdown());

      std::vector<MergeEntry<std::string, uint64_t>> entries;
      auto sorted = d.strings;
      SortUnique(&sorted);
      for (size_t i = 0; i < sorted.size(); ++i) entries.push_back({sorted[i], i, false});
      CompactBTree<std::string> cbt;
      cbt.Build(std::move(entries));
      Report("B+tree", "compact", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               cbt.Lookup(d.strings[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             cbt.Breakdown());

      SkipList<std::string> sl;
      for (size_t i = 0; i < d.strings.size(); ++i) sl.Insert(d.strings[i], i);
      Report("SkipList", "original", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               sl.Lookup(d.strings[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             sl.Breakdown());
    }

    // ---- Masstree & ART (string interface) ----
    {
      Masstree mt;
      for (size_t i = 0; i < d.strings.size(); ++i) mt.Insert(d.strings[i], i);
      Report("Masstree", "original", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               mt.Lookup(d.strings[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             mt.Breakdown());

      auto sorted = d.strings;
      SortUnique(&sorted);
      std::vector<uint64_t> vals(sorted.size());
      for (size_t i = 0; i < vals.size(); ++i) vals[i] = i;
      CompactMasstree cmt;
      cmt.Build(sorted, vals);
      Report("Masstree", "compact", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               cmt.Lookup(d.strings[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             cmt.Breakdown());

      Art art;
      for (size_t i = 0; i < d.strings.size(); ++i) art.Insert(d.strings[i], i);
      Report("ART", "original", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               art.Lookup(d.strings[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             art.Breakdown());

      CompactArt cart;
      cart.Build(sorted, vals);
      Report("ART", "compact", d.name, bench::Mops(q, [&](size_t i) {
               uint64_t v = 0;
               cart.Lookup(d.strings[qidx(i)], &v);
             met::bench::Consume(v);
             }),
             cart.Breakdown());
    }
  }
  bench::Note("paper: compact variants are up to 20% faster and 30-71% smaller; block compression saves a bit more space but costs 18-34% throughput");
  return 0;
}
