// Figure 4.9 — Closed-Seek Queries: LSM range queries whose empty-result
// percentage is controlled by the range size (Poisson inter-arrival math of
// Section 4.4: P(empty) = exp(-R/lambda) => R = lambda * ln(1/P)).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "keys/keygen.h"
#include "lsm/lsm.h"

using namespace met;

int main() {
  bench::Title("Figure 4.9: LSM closed-seek queries vs % empty ranges");
  size_t sensors = 200 * bench::Scale();
  size_t events = 2500;

  // Time-series load identical to Figure 4.8 (sensor-major insertion order,
  // so SSTables overlap in time and filters gate the block reads).
  Random gen(11);
  std::vector<std::pair<uint64_t, uint64_t>> ev;
  for (size_t s = 0; s < sensors; ++s) {
    uint64_t ts = gen.Uniform(200000000);
    for (size_t e = 0; e < events; ++e) {
      ts += static_cast<uint64_t>(-std::log(1 - gen.NextDouble()) * 2e8);
      ev.push_back({ts, s});
    }
  }
  std::string value(128, 'v');
  uint64_t max_ts = 0;
  for (auto& [ts, s] : ev) max_ts = std::max(max_ts, ts);
  // Aggregate event rate: sensors/0.2s => lambda (ns between events).
  double lambda = 2e8 / sensors;

  std::printf("%-10s %8s %14s %9s %9s\n", "Filter", "%empty", "range(ns)",
              "Kops/s", "IO/op");
  for (LsmFilterType filter :
       {LsmFilterType::kNone, LsmFilterType::kBloom, LsmFilterType::kSurfReal}) {
    LsmOptions opt;
    opt.dir = "/tmp/met_bench_fig4_9";
    opt.filter = filter;
    opt.bloom_bits_per_key = 14;
    opt.memtable_bytes = 4u << 20;
    opt.level1_bytes = 8u << 20;   // several populated levels, like the paper
    opt.level_multiplier = 4;
    opt.sstable_target_bytes = 4u << 20;
    opt.surf_suffix_bits = 4;
    opt.block_cache_blocks = 2048;
    LsmTree lsm(opt);
    for (auto& [ts, s] : ev)
      lsm.Put(Uint64ToKey(ts) + Uint64ToKey(s), value);
    lsm.Finish();

    for (double pct_empty : {10, 50, 90, 99}) {
      uint64_t range =
          static_cast<uint64_t>(lambda * std::log(100.0 / pct_empty));
      if (range == 0) range = 1;
      Random rng(5);
      size_t q = 10000;
      // Warm up.
      for (size_t i = 0; i < 2000; ++i) {
        uint64_t a = rng.Uniform(max_ts);
        lsm.ClosedSeek(Uint64ToKey(a), Uint64ToKey(a + range));
      }
      lsm.ResetStats();
      Timer t;
      size_t found = 0;
      for (size_t i = 0; i < q; ++i) {
        uint64_t a = rng.Uniform(max_ts);
        found += lsm.ClosedSeek(Uint64ToKey(a) + Uint64ToKey(0),
                                Uint64ToKey(a + range))
                     .has_value();
      }
      double kops = q / t.ElapsedSeconds() / 1e3;
      double io = static_cast<double>(lsm.stats().block_reads) / q;
      std::printf("%-10s %7.0f%% %14llu %9.1f %9.3f   (measured %4.0f%% empty)\n",
                  LsmFilterTypeName(filter), pct_empty,
                  static_cast<unsigned long long>(range), kops, io,
                  100.0 * (q - found) / q);
    }
  }
  bench::Note("paper: SuRF-Real speeds closed-seeks up to ~5x at 99% empty; Bloom is equivalent to no filter for ranges");
  return 0;
}
