// Figure 5.9 — Auxiliary Structures: the effect of the dynamic-stage Bloom
// filter (and the compressed static stage's node cache) on the Hybrid
// B+tree, extending the (B+tree, 64-bit random int) experiment.
#include <cstdio>

#include "bench/bench_util.h"
#include "hybrid/hybrid.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

template <typename Index>
void Run(const char* label, const HybridConfig& cfg,
         const std::vector<uint64_t>& keys, size_t cache_pages = ~0ull) {
  Index index(cfg);
  if constexpr (std::is_same_v<Index, HybridCompressedBTree<uint64_t>>) {
    if (cache_pages != ~0ull) index.static_stage().set_cache_pages(cache_pages);
  }
  double ins = bench::Mops(keys.size(), [&](size_t i) {
    index.Insert(keys[i], i);
  });
  size_t q = 1000000;
  auto reads = GenYcsbRequests(keys.size(), q, YcsbSpec::WorkloadC());
  double rd = bench::Mops(q, [&](size_t i) {
    uint64_t v = 0;
    index.Lookup(keys[reads[i].key_index], &v);
             met::bench::Consume(v);
  });
  std::printf("%-34s ins %7.2f  read %7.2f Mops/s  %8.1f MB\n", label, ins, rd,
              bench::Mb(index.MemoryBytes()));
}

}  // namespace

int main() {
  bench::Title("Figure 5.9: Bloom filter & node cache ablation (rand int keys)");
  size_t n = 1000000 * bench::Scale();
  auto keys = GenRandomInts(n);

  HybridConfig with_bloom, no_bloom;
  no_bloom.use_bloom = false;
  Run<HybridBTree<uint64_t>>("Hybrid (bloom)", with_bloom, keys);
  Run<HybridBTree<uint64_t>>("Hybrid (no bloom)", no_bloom, keys);
  Run<HybridCompressedBTree<uint64_t>>("Hybrid-Compressed (bloom+cache)",
                                       with_bloom, keys, 8192);
  Run<HybridCompressedBTree<uint64_t>>("Hybrid-Compressed (no cache)",
                                       with_bloom, keys, 0);
  Run<HybridCompressedBTree<uint64_t>>("Hybrid-Compressed (no bloom/cache)",
                                       no_bloom, keys, 0);
  bench::Note("paper: the Bloom filter restores read-only throughput; the node cache does the same for the compressed variant");
  return 0;
}
