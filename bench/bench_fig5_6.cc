// Figure 5.6 — Hybrid ART vs Original ART across key types.
#include "bench/hybrid_bench.h"
#include "art/art.h"
#include "hybrid/hybrid.h"

using namespace met;
using namespace met::bench;

int main() {
  Title("Figure 5.6: Hybrid ART vs original ART");
  size_t n = 1000000 * Scale();
  for (bool mono : {false, true}) {
    const char* kn = mono ? "mono-inc" : "rand";
    auto keys = ToStringKeys(IntDataset(mono, n));
    RunYcsbSuite<Art>("ART", kn, keys);
    RunYcsbSuite<HybridArt>("Hybrid", kn, keys);
  }
  {
    auto keys = GenEmails(n / 2);
    RunYcsbSuite<Art>("ART", "email", keys);
    RunYcsbSuite<HybridArt>("Hybrid", "email", keys);
  }
  Note("paper: hybrid ART halves memory for random-int and email keys; scans are slower (two-stage merge)");
  return 0;
}
