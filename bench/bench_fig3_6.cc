// Figure 3.6 — FST Performance Breakdown: point-query speedup from
// LOUDS-Dense and each Section 3.6 optimization, applied cumulatively on
// top of the LOUDS-Sparse + Poppy baseline.
#include <cstdio>

#include "bench/bench_util.h"
#include "fst/fst.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

void Run(const char* name, const std::vector<std::string>& keys) {
  size_t q = 1000000;
  auto queries = GenYcsbRequests(keys.size(), q, YcsbSpec::WorkloadC());
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;

  auto cfg = [](int dense, bool rank, bool select, bool simd, bool prefetch) {
    FstConfig c;
    c.max_dense_levels = dense;
    c.fast_rank = rank;
    c.fast_select = select;
    c.simd_label_search = simd;
    c.prefetch = prefetch;
    return c;
  };

  struct Step {
    const char* label;
    FstConfig config;
  } steps[] = {
      {"LOUDS-Sparse (baseline)", cfg(0, false, false, false, false)},
      {"+LOUDS-Dense", cfg(-1, false, false, false, false)},
      {"+rank-opt", cfg(-1, true, false, false, false)},
      {"+select-opt", cfg(-1, true, true, false, false)},
      {"+SIMD-search", cfg(-1, true, true, true, false)},
      {"+prefetching", cfg(-1, true, true, true, true)},
  };

  for (const auto& s : steps) {
    Fst t;
    t.Build(keys, values, s.config);
    double mops = bench::Mops(q, [&](size_t i) {
      uint64_t v = 0;
      t.Lookup(keys[queries[i].key_index], &v);
             met::bench::Consume(v);
    });
    std::printf("%-26s %-7s %10.2f\n", s.label, name, mops);
    bench::Row({{"config", s.label}, {"keys", name}, {"mops", mops}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunStandardBench(
      &argc, argv,
      "Figure 3.6: FST optimization breakdown (point query Mops/s)",
      [] { std::printf("%-26s %-7s %10s\n", "Configuration", "Keys", "Mops/s"); },
      [](const char* name, const std::vector<std::string>& keys) {
        Run(name, keys);
      },
      "paper: LOUDS-Dense gives the large jump; the remaining optimizations add 3-12%");
  return 0;
}
