// Figure 5.7 — Merge Ratio sensitivity: insert and read throughput of the
// Hybrid B+tree as the ratio-based merge threshold sweeps 1..100.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "hybrid/hybrid.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

int main() {
  bench::Title("Figure 5.7: merge-ratio sensitivity (Hybrid B+tree)");
  std::printf("%8s %14s %14s %10s\n", "Ratio", "Insert Mops/s", "Read Mops/s",
              "Merges");
  size_t n = 1000000 * bench::Scale();
  auto keys = GenRandomInts(n);
  size_t q = 1000000;
  auto reads = GenYcsbRequests(n, q, YcsbSpec::WorkloadC());

  for (double ratio : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    HybridConfig cfg;
    cfg.merge_ratio = ratio;
    HybridBTree<uint64_t> index(cfg);
    double ins = bench::Mops(n, [&](size_t i) { index.Insert(keys[i], i); });
    double rd = bench::Mops(q, [&](size_t i) {
      uint64_t v = 0;
      index.Lookup(keys[reads[i].key_index], &v);
             met::bench::Consume(v);
    });
    std::printf("%8.0f %14.2f %14.2f %10zu\n", ratio, ins, rd,
                index.merge_stats().merge_count);
  }
  bench::Note("paper: larger ratios trade write throughput for slightly faster reads; ratio 10 balances OLTP mixes");
  return 0;
}
