// Figure 4.5 — SuRF Performance: point, range and count query throughput of
// SuRF variants against the Bloom filter (point only).
#include <cstdio>

#include "bench/bench_util.h"
#include "bloom/bloom.h"
#include "common/random.h"
#include "keys/keygen.h"
#include "surf/surf.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

void Run(const char* name, bool integer, std::vector<std::string> all) {
  std::vector<std::string> stored;
  Random rng(77);
  for (auto& k : all)
    if (rng.Uniform(2)) stored.push_back(k);
  SortUnique(&stored);

  size_t q = 1000000;
  auto reqs = GenYcsbRequests(all.size(), q, YcsbSpec::WorkloadC());
  auto range_hi = [&](const std::string& k) {
    if (integer) return Uint64ToKey(KeyToUint64(k) + (uint64_t{1} << 38));
    std::string hi = k;
    hi.back() = static_cast<char>(hi.back() + 1);
    return hi;
  };

  struct Case {
    const char* label;
    SurfConfig cfg;
  } cases[] = {{"SuRF-Base", SurfConfig::Base()},
               {"SuRF-Hash4", SurfConfig::Hash(4)},
               {"SuRF-Real4", SurfConfig::Real(4)},
               {"SuRF-Mixed", SurfConfig::Mixed(2, 2)}};

  {
    BloomFilter bloom(stored.size(), 14);
    for (const auto& k : stored) bloom.Add(k);
    double pt = bench::Mops(q, [&](size_t i) {
      bench::Consume(bloom.MayContain(all[reqs[i].key_index]));
    });
    std::printf("%-11s %-7s point %8.2f Mops/s  range      n/a  count      n/a  (%4.1f bpk)\n",
                "Bloom", name, pt,
                8.0 * bloom.MemoryBytes() / stored.size());
  }
  for (const auto& c : cases) {
    Surf surf;
    surf.Build(stored, c.cfg);
    double pt = bench::Mops(q, [&](size_t i) {
      bench::Consume(surf.MayContain(all[reqs[i].key_index]));
    });
    double rg = bench::Mops(q / 4, [&](size_t i) {
      const std::string& k = all[reqs[i].key_index];
      bench::Consume(surf.MayContainRange(k, range_hi(k)));
    });
    double ct = bench::Mops(q / 4, [&](size_t i) {
      const std::string& k = all[reqs[i].key_index];
      bench::Consume(surf.Count(k, range_hi(k)));
    });
    std::printf("%-11s %-7s point %8.2f Mops/s  range %8.2f  count %8.2f  (%4.1f bpk)\n",
                c.label, name, pt, rg, ct, surf.BitsPerKey());
  }
}

}  // namespace

int main() {
  bench::Title("Figure 4.5: SuRF performance vs Bloom");
  size_t n = 1000000 * bench::Scale();
  {
    auto ints = GenRandomInts(n);
    Run("int", true, ToStringKeys(ints));
  }
  {
    Run("email", false, GenEmails(n / 2));
  }
  bench::Note("paper: SuRF is comparable to Bloom on int keys, slower on emails (longer trie paths); range < point; counts slower still");
  return 0;
}
