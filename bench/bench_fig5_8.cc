// Figure 5.8 — Merge Overhead: absolute merge time as the static stage
// grows (dynamic stage = 1/10 of static at each merge), for Hybrid B+tree
// (random and mono-inc int, email) and Hybrid ART (mono-inc).
#include <cstdio>

#include "bench/bench_util.h"
#include "hybrid/hybrid.h"
#include "keys/keygen.h"

using namespace met;

namespace {

template <typename Index, typename Key>
void Run(const char* label, const std::vector<Key>& keys) {
  HybridConfig cfg;
  cfg.merge_ratio = 10;
  cfg.min_merge_entries = 64 << 10;
  Index index(cfg);
  size_t last_reported = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    index.Insert(keys[i], i);
    const auto& st = index.merge_stats();
    if (st.merge_count > last_reported) {
      last_reported = st.merge_count;
      std::printf("%-22s merge #%2zu: static=%9zu entries  time=%8.1f ms\n",
                  label, st.merge_count, st.last_merge_static_entries,
                  st.last_merge_seconds * 1e3);
    }
  }
}

}  // namespace

int main() {
  bench::Title("Figure 5.8: merge time vs static-stage size (ratio 10)");
  size_t n = 2000000 * bench::Scale();
  Run<HybridBTree<uint64_t>>("B+tree/rand-int", GenRandomInts(n));
  Run<HybridBTree<uint64_t>>("B+tree/mono-inc", GenMonoIncInts(n));
  Run<HybridBTree<std::string>>("B+tree/email", GenEmails(n / 2));
  Run<HybridArt>("ART/mono-inc", ToStringKeys(GenMonoIncInts(n)));
  bench::Note("paper: merge time grows linearly with index size; amortized cost stays constant");
  return 0;
}
