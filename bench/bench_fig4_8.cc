// Figure 4.8 — RocksDB (mini-LSM) Point and Open-Seek queries under four
// filter configurations: none, Bloom, SuRF-Hash, SuRF-Real. The synthetic
// time-series dataset follows Section 4.4: keys are 128-bit
// (timestamp | sensor-id), values are fixed-size blobs, events arrive
// Poisson-spaced. Throughput is inversely proportional to block I/O.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "keys/keygen.h"
#include "lsm/lsm.h"

using namespace met;

namespace {

struct Workload {
  std::vector<std::string> keys;  // all event keys, time order
  std::string value;
};

Workload MakeTimeSeries(size_t sensors, size_t events_per_sensor) {
  // Event inter-arrival ~ Exp(lambda), lambda = 1 / 0.2s in ns.
  // Insertion is sensor-major (each sensor's full Poisson stream in turn),
  // so every SSTable spans a wide timestamp range and the levels overlap —
  // the regime where per-table filters decide which tables to read.
  Workload w;
  Random rng(11);
  for (size_t s = 0; s < sensors; ++s) {
    uint64_t ts = rng.Uniform(200000000);  // random start within 0.2s
    for (size_t e = 0; e < events_per_sensor; ++e) {
      double u = rng.NextDouble();
      ts += static_cast<uint64_t>(-std::log(1 - u) * 2e8);  // mean 0.2s (ns)
      w.keys.push_back(Uint64ToKey(ts) + Uint64ToKey(s));
    }
  }
  w.value.assign(128, 'v');
  return w;
}

}  // namespace

int main() {
  bench::Title("Figure 4.8: LSM point & open-seek queries by filter type");
  size_t sensors = 200 * bench::Scale();
  size_t events = 2500;
  Workload w = MakeTimeSeries(sensors, events);
  std::printf("dataset: %zu events, ~%.0f MB raw\n", w.keys.size(),
              bench::Mb(w.keys.size() * (16 + w.value.size())));
  std::printf("%-10s | %-10s %9s %9s | %-9s %9s %9s | %9s\n", "Filter",
              "Point", "Kops/s", "IO/op", "OpenSeek", "Kops/s", "IO/op",
              "FilterMB");

  for (LsmFilterType filter :
       {LsmFilterType::kNone, LsmFilterType::kBloom, LsmFilterType::kSurfHash,
        LsmFilterType::kSurfReal}) {
    LsmOptions opt;
    opt.dir = "/tmp/met_bench_fig4_8";
    opt.filter = filter;
    opt.bloom_bits_per_key = 14;
    opt.memtable_bytes = 4u << 20;
    opt.level1_bytes = 8u << 20;   // several populated levels, like the paper
    opt.level_multiplier = 4;
    opt.sstable_target_bytes = 4u << 20;
    opt.surf_suffix_bits = 4;
    opt.block_cache_blocks = 2048;  // ~8 MB: dataset >> cache
    LsmTree lsm(opt);
    for (const auto& k : w.keys) lsm.Put(k, w.value);
    lsm.Finish();

    Random rng(3);
    uint64_t max_ts = KeyToUint64(w.keys.back());
    size_t q = 10000;

    // Warm the cache with existing-key point reads (Section 4.4 warms every
    // SSTable ~1000 times).
    for (size_t i = 0; i < q; ++i)
      lsm.Lookup(w.keys[rng.Uniform(w.keys.size())]);

    lsm.ResetStats();
    Timer t1;
    for (size_t i = 0; i < q; ++i) {
      std::string key = Uint64ToKey(rng.Uniform(max_ts)) +
                        Uint64ToKey(rng.Uniform(sensors));
      lsm.Lookup(key);  // random keys: almost always absent
    }
    double point_kops = q / t1.ElapsedSeconds() / 1e3;
    double point_io = static_cast<double>(lsm.stats().block_reads) / q;

    lsm.ResetStats();
    Timer t2;
    for (size_t i = 0; i < q; ++i) {
      std::string key = Uint64ToKey(rng.Uniform(max_ts)) +
                        Uint64ToKey(rng.Uniform(sensors));
      lsm.Seek(key);
    }
    double seek_kops = q / t2.ElapsedSeconds() / 1e3;
    double seek_io = static_cast<double>(lsm.stats().block_reads) / q;

    std::printf("%-10s | %-10s %9.1f %9.3f | %-9s %9.1f %9.3f | %9.1f\n",
                LsmFilterTypeName(filter), "", point_kops, point_io, "",
                seek_kops, seek_io, bench::Mb(lsm.FilterMemoryBytes()));
  }
  bench::Note("paper: filters cut point-query I/O; SuRF-Real reduces open-seek I/O to ~1.02/op (~1.5x speedup), Bloom does not help seeks");
  return 0;
}
