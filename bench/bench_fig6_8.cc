// Figure 6.8 — Sample Size Sensitivity: compression rate of each HOPE scheme
// as the dictionary-build sample shrinks (dictionary limit 2^16).
#include <cstdio>

#include "bench/bench_util.h"
#include "hope/hope.h"
#include "keys/keygen.h"

using namespace met;

int main() {
  bench::Title("Figure 6.8: HOPE sample-size sensitivity (email keys, CPR)");
  size_t n = 1000000 * bench::Scale();
  auto keys = GenEmails(n / 2);
  std::printf("%-13s", "Scheme");
  for (size_t s : {100, 1000, 10000, 100000})
    std::printf(" %9zu", s);
  std::printf("\n");

  HopeScheme schemes[] = {HopeScheme::kSingleChar, HopeScheme::kDoubleChar,
                          HopeScheme::k3Grams,     HopeScheme::k4Grams,
                          HopeScheme::kAlm,        HopeScheme::kAlmImproved};
  for (HopeScheme s : schemes) {
    std::printf("%-13s", HopeSchemeName(s));
    for (size_t sample_size : {100, 1000, 10000, 100000}) {
      std::vector<std::string> sample(
          keys.begin(), keys.begin() + std::min(sample_size, keys.size()));
      HopeEncoder enc;
      enc.Build(sample, s, 1 << 16);
      std::printf(" %9.2f", enc.Cpr(keys));
    }
    std::printf("\n");
  }
  bench::Note("paper: CPR is stable down to ~1% samples; only the gram/ALM schemes lose a little at tiny samples");
  return 0;
}
