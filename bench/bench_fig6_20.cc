// Figures 6.20-6.21 — HOPE-optimized B+tree and Prefix B+tree: point/range
// performance and memory with and without HOPE key compression; the Prefix
// B+tree gains less because it already truncates shared prefixes (Fig 6.7).
#include <cstdio>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "btree/prefix_btree.h"
#include "common/random.h"
#include "hope/hope.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

void Run(const char* name, std::vector<std::string> keys) {
  SortUnique(&keys);
  std::vector<std::string> sample(keys.begin(),
                                  keys.begin() + keys.size() / 100 + 1);
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;
  size_t q = 500000;
  auto reqs = GenYcsbRequests(keys.size(), q, YcsbSpec::WorkloadC());

  struct Cfg {
    const char* label;
    bool hope;
    HopeScheme scheme;
  } cfgs[] = {{"plain", false, HopeScheme::kSingleChar},
              {"+Single", true, HopeScheme::kSingleChar},
              {"+Double", true, HopeScheme::kDoubleChar},
              {"+3Grams", true, HopeScheme::k3Grams}};

  for (const auto& c : cfgs) {
    HopeEncoder enc;
    std::vector<std::string> ekeys = keys;
    if (c.hope) {
      enc.Build(sample, c.scheme, 1 << 14);
      for (auto& k : ekeys) k = enc.Encode(k);
    }
    {
      BTree<std::string> t;
      for (size_t i = 0; i < ekeys.size(); ++i) t.Insert(ekeys[i], i);
      std::string scratch;
      double mops = bench::Mops(q, [&](size_t i) {
        const std::string& k = keys[reqs[i].key_index];
        uint64_t v = 0;
        if (c.hope) {
          scratch.clear();
          enc.EncodeBits(k, &scratch);
          t.Lookup(scratch, &v);
        } else {
          t.Lookup(k, &v);
        }
        bench::Consume(v);
      });
      std::printf("B+tree       %-8s %-7s %8.2f Mops/s %10.1f MB\n", c.label,
                  name, mops, bench::Mb(t.MemoryBytes()));
    }
    {
      auto sorted = ekeys;
      SortUnique(&sorted);
      PrefixBTree<> t;
      t.Build(sorted, values);
      std::string scratch;
      double mops = bench::Mops(q, [&](size_t i) {
        const std::string& k = keys[reqs[i].key_index];
        uint64_t v = 0;
        if (c.hope) {
          scratch.clear();
          enc.EncodeBits(k, &scratch);
          t.Lookup(scratch, &v);
        } else {
          t.Lookup(k, &v);
        }
        bench::Consume(v);
      });
      std::printf("PrefixB+tree %-8s %-7s %8.2f Mops/s %10.1f MB\n", c.label,
                  name, mops, bench::Mb(t.MemoryBytes()));
    }
  }
}

}  // namespace

int main() {
  bench::Title("Figures 6.20-6.21: HOPE-optimized B+tree / Prefix B+tree");
  size_t n = 500000 * bench::Scale();
  Run("email", GenEmails(n));
  Run("wiki", GenWords(n));
  Run("url", GenUrls(n));
  bench::Note("paper: full-key B+trees gain the most from HOPE; prefix B+trees less (keys already partially truncated)");
  return 0;
}
