// Durability-cost benchmark for the LSM tree (robustness PR follow-up to
// the Chapter 4 write-path numbers): what the WAL + MANIFEST machinery
// charges per Put, and what recovery buys back after a crash.
//
// Four write modes over the same seeded upsert stream:
//   ephemeral   — historical in-process tree (no WAL, no MANIFEST); the
//                 pre-durability baseline.
//   group-64k   — durable, WAL fsync every 64 KiB of appends (default).
//   group-4k    — durable, aggressive 4 KiB group sync.
//   sync-each   — durable, SyncWal() after every Put (ack-per-write floor).
//
// After each durable load the tree is crashed with SimulateCrash() and
// reopened; the row reports recovery wall time and the recovered key count,
// so the table shows both sides of the trade: per-Put overhead vs. what a
// restart recovers. `--json <path>` or MET_BENCH_JSON emit met.bench.v1.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "io/io.h"
#include "lsm/lsm.h"

namespace met {
namespace {

struct ModeResult {
  double put_mops = 0;
  double sync_per_put = 0;
  double recover_seconds = 0;
  uint64_t recovered_keys = 0;
};

LsmOptions BenchOptions(const std::string& dir, bool durable,
                        size_t group_sync_bytes) {
  LsmOptions opt;
  opt.dir = dir;
  opt.memtable_bytes = 256 << 10;
  opt.block_bytes = 4096;
  opt.filter = LsmFilterType::kBloom;
  opt.durable = durable;
  opt.wal_group_sync_bytes = group_sync_bytes;
  return opt;
}

ModeResult RunMode(const std::string& name, size_t n_ops, bool durable,
                   size_t group_sync_bytes, bool sync_each) {
  const std::string dir = "/tmp/met_bench_durability_" + name;
  io::Env& posix = io::Env::Posix();
  (void)posix.MkDir(dir);  // EEXIST on reruns is fine
  io::RemoveAllFiles(posix, dir);

  ModeResult res;
  Random rng(42);
  {
    LsmOptions opt = BenchOptions(dir, durable, group_sync_bytes);
    std::unique_ptr<LsmTree> tree;
    if (durable) {
      tree = LsmTree::Open(opt);
    } else {
      tree = std::make_unique<LsmTree>(opt);
    }
    uint64_t syncs_before = tree->stats().wal_syncs;
    Timer t;
    char key[24];
    for (size_t i = 0; i < n_ops; ++i) {
      std::snprintf(key, sizeof(key), "key%010llu",
                    static_cast<unsigned long long>(rng.Uniform(n_ops)));
      std::string value = "value" + std::to_string(i);
      (void)tree->Put(key, value);
      if (sync_each) (void)tree->SyncWal();
    }
    if (durable) (void)tree->SyncWal();
    res.put_mops = static_cast<double>(n_ops) / t.ElapsedSeconds() / 1e6;
    res.sync_per_put =
        static_cast<double>(tree->stats().wal_syncs - syncs_before) /
        static_cast<double>(n_ops);
    if (durable) {
      tree->SimulateCrash();  // leave the dir for recovery below
    }
  }

  if (durable) {
    Timer t;
    std::unique_ptr<LsmTree> tree =
        LsmTree::Open(BenchOptions(dir, true, group_sync_bytes));
    res.recover_seconds = t.ElapsedSeconds();
    std::string cursor;
    while (auto k = tree->Seek(cursor)) {
      ++res.recovered_keys;
      cursor = *k + '\0';
      bench::Consume(res.recovered_keys);
    }
    tree->SimulateCrash();
  }
  io::RemoveAllFiles(posix, dir);
  return res;
}

void Run() {
  const size_t n_ops = 100000 * bench::Scale();
  // fsync-per-Put is orders of magnitude slower; trim so the row finishes.
  const size_t n_sync_each = n_ops / 20 > 0 ? n_ops / 20 : 1;

  bench::Reporter& rep = bench::Reporter::Get();
  rep.Section("LSM durability cost (upserts, uniform keys)");
  std::printf("%-12s %10s %12s %12s %12s %14s\n", "mode", "ops", "put Mops/s",
              "syncs/put", "recover s", "recovered keys");

  struct Mode {
    const char* name;
    bool durable;
    size_t group_sync;
    bool sync_each;
    size_t ops;
  } modes[] = {
      {"ephemeral", false, 64 << 10, false, n_ops},
      {"group-64k", true, 64 << 10, false, n_ops},
      {"group-4k", true, 4 << 10, false, n_ops},
      {"sync-each", true, 64 << 10, true, n_sync_each},
  };

  for (const Mode& m : modes) {
    ModeResult r = RunMode(m.name, m.ops, m.durable, m.group_sync,
                           m.sync_each);
    std::printf("%-12s %10zu %12.3f %12.4f %12.4f %14llu\n", m.name, m.ops,
                r.put_mops, r.sync_per_put, r.recover_seconds,
                static_cast<unsigned long long>(r.recovered_keys));
    rep.Row({{"mode", m.name},
             {"ops", m.ops},
             {"put_mops", r.put_mops},
             {"syncs_per_put", r.sync_per_put},
             {"recover_seconds", r.recover_seconds},
             {"recovered_keys", static_cast<size_t>(r.recovered_keys)}});
  }
}

}  // namespace
}  // namespace met

int main(int argc, char** argv) {
  met::bench::Reporter::Get().ParseArgs(&argc, argv);
  met::Run();
  met::bench::Reporter::Get().WriteIfEnabled();
  return 0;
}
