// Figures 6.15-6.17 — HOPE-optimized SuRF: YCSB point-query latency, memory,
// trie height, and false positive rate with and without HOPE encoding
// (email / wiki / url datasets).
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "common/random.h"
#include "hope/hope.h"
#include "keys/keygen.h"
#include "surf/surf.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

void Run(const char* name, const std::vector<std::string>& all) {
  std::vector<std::string> stored;
  Random rng(77);
  for (const auto& k : all)
    if (rng.Uniform(2)) stored.push_back(k);
  SortUnique(&stored);
  std::set<std::string> stored_set(stored.begin(), stored.end());

  std::vector<std::string> sample(stored.begin(),
                                  stored.begin() + stored.size() / 100 + 1);
  size_t q = 500000;
  auto reqs = GenYcsbRequests(all.size(), q, YcsbSpec::WorkloadC());

  struct Cfg {
    const char* label;
    bool hope;
    HopeScheme scheme;
  } cfgs[] = {{"SuRF", false, HopeScheme::kSingleChar},
              {"SuRF+Single", true, HopeScheme::kSingleChar},
              {"SuRF+Double", true, HopeScheme::kDoubleChar},
              {"SuRF+3Grams", true, HopeScheme::k3Grams},
              {"SuRF+ALM-Imp", true, HopeScheme::kAlmImproved}};

  for (const auto& c : cfgs) {
    HopeEncoder enc;
    std::vector<std::string> keys = stored;
    if (c.hope) {
      enc.Build(sample, c.scheme, 1 << 14);
      for (auto& k : keys) k = enc.Encode(k);
      SortUnique(&keys);  // encoding is order-preserving: stays sorted
    }
    Surf surf;
    surf.Build(keys, SurfConfig::Real(8));

    std::string scratch;
    double mops = bench::Mops(q, [&](size_t i) {
      const std::string& k = all[reqs[i].key_index];
      if (c.hope) {
        scratch.clear();
        enc.EncodeBits(k, &scratch);  // no allocation on the query path
        bench::Consume(surf.MayContain(scratch));
      } else {
        bench::Consume(surf.MayContain(k));
      }
    });

    size_t fp = 0, neg = 0;
    for (size_t i = 0; i < q; ++i) {
      const std::string& k = all[reqs[i].key_index];
      if (stored_set.count(k)) continue;
      ++neg;
      fp += c.hope ? surf.MayContain(enc.Encode(k)) : surf.MayContain(k);
    }
    std::printf("%-13s %-7s %8.2f Mops/s %8.1f bpk  height %5.1f  FPR %6.3f%%\n",
                c.label, name, mops, surf.BitsPerKey(), surf.AvgLeafDepth(),
                neg ? 100.0 * fp / neg : 0.0);
  }
}

}  // namespace

int main() {
  bench::Title("Figures 6.15-6.17: HOPE-optimized SuRF (latency, memory, height, FPR)");
  size_t n = 500000 * bench::Scale();
  Run("email", GenEmails(n));
  Run("wiki", GenWords(n));
  Run("url", GenUrls(n));
  bench::Note("paper: HOPE shrinks SuRF tries (lower height), improving latency and FPR simultaneously for most schemes");
  return 0;
}
