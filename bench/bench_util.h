// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench binary prints the rows/series of one table or figure from the
// thesis. Dataset sizes default to laptop scale; set MET_SCALE=<n> to
// multiply them.
#ifndef MET_BENCH_BENCH_UTIL_H_
#define MET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/timer.h"

namespace met::bench {

/// Optimization sink: accumulate query results here so the compiler cannot
/// eliminate inlined lookup loops as dead code.
inline volatile uint64_t sink = 0;

template <typename T>
inline void Consume(const T& x) {
  sink = sink + static_cast<uint64_t>(x);
}

inline size_t Scale() {
  const char* s = std::getenv("MET_SCALE");
  if (s == nullptr) return 1;
  long v = std::atol(s);
  return v < 1 ? 1 : static_cast<size_t>(v);
}

inline void Title(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void Note(const char* note) { std::printf("  (%s)\n", note); }

/// Runs `fn(i)` for i in [0, ops) and returns million ops per second.
template <typename Fn>
double Mops(size_t ops, Fn&& fn) {
  met::Timer timer;
  for (size_t i = 0; i < ops; ++i) fn(i);
  double s = timer.ElapsedSeconds();
  return s <= 0 ? 0 : static_cast<double>(ops) / s / 1e6;
}

inline double Mb(size_t bytes) { return static_cast<double>(bytes) / 1e6; }

}  // namespace met::bench

#endif  // MET_BENCH_BENCH_UTIL_H_
