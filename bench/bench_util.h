// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench binary prints the rows/series of one table or figure from the
// thesis. Dataset sizes default to laptop scale; set MET_SCALE=<n> to
// multiply them.
//
// Machine-readable output: every bench can additionally emit its sections,
// rows, and the full met::obs metric registry as JSON. Enable it with the
// MET_BENCH_JSON=<path> environment variable (works for all binaries with no
// code change) or, in binaries that call Reporter::ParseArgs from main, with
// a `--json <path>` flag. CI archives these files as BENCH_*.json so perf
// trajectories can be diffed across commits.
#ifndef MET_BENCH_BENCH_UTIL_H_
#define MET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.h"
#include "keys/keygen.h"
#include "obs/obs.h"
#include "prof/prof.h"  // arms MET_TRACE_OUT export for every bench binary

namespace met::bench {

namespace internal {
// Any bench TU pulls in the met.mem.* gauges (RSS/heap-live/logical bytes
// refresh on every obs dump, including the met.bench.v1 "obs" section).
struct MemCollectorInstaller {
  MemCollectorInstaller() { prof::InstallMemCollector(); }
};
inline MemCollectorInstaller g_mem_collector_installer;
}  // namespace internal

/// Optimization sink: accumulate query results here so the compiler cannot
/// eliminate inlined lookup loops as dead code.
inline volatile uint64_t sink = 0;

template <typename T>
inline void Consume(const T& x) {
  sink = sink + static_cast<uint64_t>(x);
}

inline size_t Scale() {
  const char* s = std::getenv("MET_SCALE");
  if (s == nullptr) return 1;
  long v = std::atol(s);
  return v < 1 ? 1 : static_cast<size_t>(v);
}

/// Collects bench output as structured sections/rows and writes one JSON
/// document (plus the obs metric registry and trace log) at process exit.
/// Inert unless --json/MET_BENCH_JSON selects an output path.
class Reporter {
 public:
  struct Field {
    Field(const char* k, double v) : key(k), is_number(true), number(v) {}
    Field(const char* k, int v) : Field(k, static_cast<double>(v)) {}
    Field(const char* k, size_t v) : Field(k, static_cast<double>(v)) {}
    Field(const char* k, const char* v) : key(k), text(v) {}
    Field(const char* k, const std::string& v) : key(k), text(v) {}

    std::string key;
    bool is_number = false;
    double number = 0;
    std::string text;
  };

  // Leaked (never destroyed): the at-exit hook registered in the
  // constructor must still find a live object after static destructors run.
  static Reporter& Get() {
    static Reporter* reporter = new Reporter();
    return *reporter;
  }

  /// Consumes a `--json <path>` / `--json=<path>` flag from argv (so later
  /// argument parsers never see it).
  void ParseArgs(int* argc, char** argv) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
        SetPath(argv[++i]);
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        SetPath(argv[i] + 7);
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
  }

  void SetPath(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  void Section(const std::string& title) {
    if (!enabled()) return;
    sections_.push_back({title, {}, {}});
  }

  void AddNote(const std::string& note) {
    if (!enabled()) return;
    EnsureSection();
    sections_.back().notes.push_back(note);
  }

  void Row(std::initializer_list<Field> fields) {
    if (!enabled()) return;
    EnsureSection();
    sections_.back().rows.emplace_back(fields);
  }

  void Row(std::vector<Field> fields) {
    if (!enabled()) return;
    EnsureSection();
    sections_.back().rows.push_back(std::move(fields));
  }

  /// Writes the JSON document. Safe to call explicitly from main(); the
  /// at-exit hook then becomes a no-op.
  void WriteIfEnabled() {
    if (!enabled() || written_) return;
    written_ = true;
    std::string json;
    json.append("{\"schema\":\"met.bench.v1\",\"sections\":[");
    for (size_t s = 0; s < sections_.size(); ++s) {
      if (s != 0) json.push_back(',');
      json.append("{\"title\":\"");
      obs::MetricsRegistry::AppendJsonEscaped(&json, sections_[s].title);
      json.append("\",\"notes\":[");
      for (size_t n = 0; n < sections_[s].notes.size(); ++n) {
        if (n != 0) json.push_back(',');
        json.push_back('"');
        obs::MetricsRegistry::AppendJsonEscaped(&json, sections_[s].notes[n]);
        json.push_back('"');
      }
      json.append("],\"rows\":[");
      for (size_t r = 0; r < sections_[s].rows.size(); ++r) {
        if (r != 0) json.push_back(',');
        json.push_back('{');
        const auto& row = sections_[s].rows[r];
        for (size_t f = 0; f < row.size(); ++f) {
          if (f != 0) json.push_back(',');
          json.push_back('"');
          obs::MetricsRegistry::AppendJsonEscaped(&json, row[f].key);
          json.append("\":");
          if (row[f].is_number) {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.6g", row[f].number);
            json.append(buf);
          } else {
            json.push_back('"');
            obs::MetricsRegistry::AppendJsonEscaped(&json, row[f].text);
            json.push_back('"');
          }
        }
        json.push_back('}');
      }
      json.append("]}");
    }
    json.append("],\"obs\":");
    obs::DumpAllJson(&json);
    json.append("}\n");

    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write JSON to %s\n", path_.c_str());
      return;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }

 private:
  struct SectionData {
    std::string title;
    std::vector<std::string> notes;
    std::vector<std::vector<Field>> rows;
  };

  Reporter() {
    const char* p = std::getenv("MET_BENCH_JSON");
    if (p != nullptr && p[0] != '\0') path_ = p;
    std::atexit([] { Reporter::Get().WriteIfEnabled(); });
  }

  void EnsureSection() {
    if (sections_.empty()) sections_.push_back({"(default)", {}, {}});
  }

  std::string path_;
  bool written_ = false;
  std::vector<SectionData> sections_;
};

inline void Title(const char* title) {
  std::printf("\n=== %s ===\n", title);
  Reporter::Get().Section(title);
}

inline void Note(const char* note) {
  std::printf("  (%s)\n", note);
  Reporter::Get().AddNote(note);
}

/// Adds one figure/table row to the JSON report (no-op unless JSON output is
/// enabled). Callers still printf their human-readable line as before.
inline void Row(std::initializer_list<Reporter::Field> fields) {
  Reporter::Get().Row(fields);
}

inline void Row(std::vector<Reporter::Field> fields) {
  Reporter::Get().Row(std::move(fields));
}

/// Runs `fn(i)` for i in [0, ops) and returns million ops per second.
/// When runtime metrics are on (MET_METRICS=1), each op is timed
/// individually into the `latency_hist` obs histogram, so every bench gets
/// p50/p99 per-op latency reporting for free (at the cost of two clock
/// reads per op — throughput numbers from such runs are not comparable to
/// default runs).
template <typename Fn>
double Mops(size_t ops, Fn&& fn,
            const char* latency_hist = "bench.op_latency_ns") {
  if (obs::MetricsEnabled() && latency_hist != nullptr) {
    auto* hist = obs::MetricsRegistry::Global().GetHistogram(latency_hist);
    met::Timer timer;
    for (size_t i = 0; i < ops; ++i) {
      uint64_t t0 = obs::NowNanos();
      fn(i);
      hist->RecordNanos(obs::NowNanos() - t0);
    }
    double s = timer.ElapsedSeconds();
    return s <= 0 ? 0 : static_cast<double>(ops) / s / 1e6;
  }
  met::Timer timer;
  for (size_t i = 0; i < ops; ++i) fn(i);
  double s = timer.ElapsedSeconds();
  return s <= 0 ? 0 : static_cast<double>(ops) / s / 1e6;
}

inline double Mb(size_t bytes) { return static_cast<double>(bytes) / 1e6; }

/// Standard space-accounting report for one built structure: prints total
/// MB and bytes/key plus the top-level component split from the structure's
/// MemoryBreakdown, emits matching JSON rows (one "space" row, one
/// "space.component" row per component), and accumulates the total into the
/// met.mem.logical_index_bytes gauge so RSS can be compared against what the
/// indexes think they use. Returns TotalBytes() for callers that also want
/// the flat number.
inline size_t ReportBreakdown(const char* structure, const MemoryBreakdown& b,
                              size_t num_keys) {
  size_t total = b.TotalBytes();
  double per_key =
      num_keys == 0 ? 0 : static_cast<double>(total) / static_cast<double>(num_keys);
  std::printf("  %-20s %8.2f MB  %6.2f B/key\n", structure, Mb(total), per_key);
  Row({{"kind", "space"},
       {"structure", structure},
       {"bytes", total},
       {"bytes_per_key", per_key}});
  for (const auto& c : b.children()) {
    std::printf("    %-20s %8.2f MB  %5.1f%%\n", c.name().c_str(),
                Mb(c.TotalBytes()),
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(c.TotalBytes()) /
                                 static_cast<double>(total));
    Row({{"kind", "space.component"},
         {"structure", structure},
         {"component", c.name()},
         {"bytes", c.TotalBytes()}});
  }
  prof::AddLogicalIndexBytes(static_cast<int64_t>(total));
  return total;
}

/// Appends per-op hardware-counter fields from a stopped PerfScope reading
/// to `fields` (for a Reporter row). With no counters available (containers,
/// MET_NO_PERF) appends perf_available=0 only, so JSON consumers can tell
/// "zero misses" from "not measured".
inline void AppendPerfFields(const prof::PerfReading& r, size_t ops,
                             std::vector<Reporter::Field>* fields) {
  if (!r.any() || ops == 0) {
    fields->push_back({"perf_available", 0});
    return;
  }
  double n = static_cast<double>(ops);
  fields->push_back({"perf_available", 1});
  using E = prof::PerfReading;
  if (r.has(E::kCycles))
    fields->push_back({"cycles_per_op", static_cast<double>(r.cycles) / n});
  if (r.has(E::kInstructions))
    fields->push_back({"instr_per_op", static_cast<double>(r.instructions) / n});
  if (r.has(E::kCycles) && r.has(E::kInstructions) && r.cycles > 0)
    fields->push_back({"ipc", static_cast<double>(r.instructions) /
                                  static_cast<double>(r.cycles)});
  if (r.has(E::kLlcMisses))
    fields->push_back({"llc_miss_per_op", static_cast<double>(r.llc_misses) / n});
  if (r.has(E::kDtlbMisses))
    fields->push_back(
        {"dtlb_miss_per_op", static_cast<double>(r.dtlb_misses) / n});
  if (r.has(E::kBranchMisses))
    fields->push_back(
        {"branch_miss_per_op", static_cast<double>(r.branch_misses) / n});
}

/// Shared main() scaffolding for the figure benches that sweep the standard
/// two datasets: `base_keys * MET_SCALE` sorted-unique random 64-bit integer
/// keys (as 8-byte big-endian strings) and half that many sorted-unique
/// synthetic emails. Consumes the Reporter's `--json` flag, prints the
/// section title, runs `header()` once for the column line (pass a no-op
/// lambda if the bench has none), invokes `run(name, keys)` per dataset, and
/// closes with `note`. Hoisted here because a dozen bench_fig*.cc mains were
/// byte-identical copies of this sequence.
template <typename HeaderFn, typename RunFn>
void RunStandardBench(int* argc, char** argv, const char* title,
                      HeaderFn&& header, RunFn&& run, const char* note,
                      size_t base_keys = 1000000) {
  if (argc != nullptr) Reporter::Get().ParseArgs(argc, argv);
  Title(title);
  header();
  size_t n = base_keys * Scale();
  {
    auto ints = GenRandomInts(n);
    SortUnique(&ints);
    run("int", ToStringKeys(ints));
  }
  {
    auto emails = GenEmails(n / 2);
    SortUnique(&emails);
    run("email", emails);
  }
  Note(note);
}

}  // namespace met::bench

#endif  // MET_BENCH_BENCH_UTIL_H_
