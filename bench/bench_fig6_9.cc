// Figures 6.9-6.11 — HOPE Microbenchmarks: compression rate, encoding
// latency (ns/char) and dictionary memory for all six schemes on the email,
// wiki-word and URL datasets (dictionary limit 2^16).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "hope/hope.h"
#include "keys/keygen.h"

using namespace met;

int main() {
  bench::Title("Figures 6.9-6.11: HOPE CPR / latency / dictionary memory");
  size_t n = 500000 * bench::Scale();
  struct Data {
    const char* name;
    std::vector<std::string> keys;
  } datasets[] = {{"email", GenEmails(n)},
                  {"wiki", GenWords(n)},
                  {"url", GenUrls(n)}};

  std::printf("%-13s %-7s %8s %14s %10s %10s\n", "Scheme", "Data", "CPR",
              "ns/char", "dict(KB)", "intervals");
  HopeScheme schemes[] = {HopeScheme::kSingleChar, HopeScheme::kDoubleChar,
                          HopeScheme::k3Grams,     HopeScheme::k4Grams,
                          HopeScheme::kAlm,        HopeScheme::kAlmImproved};
  for (auto& d : datasets) {
    std::vector<std::string> sample(d.keys.begin(),
                                    d.keys.begin() + d.keys.size() / 100);
    for (HopeScheme s : schemes) {
      HopeEncoder enc;
      enc.Build(sample, s, 1 << 16);
      double cpr = enc.Cpr(d.keys);
      size_t chars = 0;
      for (const auto& k : d.keys) chars += k.size();
      Timer t;
      std::string scratch;
      for (const auto& k : d.keys) {
        scratch.clear();
        enc.EncodeBits(k, &scratch);
      }
      double ns_per_char = t.ElapsedNanos() / static_cast<double>(chars);
      std::printf("%-13s %-7s %8.2f %14.2f %10.1f %10zu\n", HopeSchemeName(s),
                  d.name, cpr, ns_per_char, enc.DictMemoryBytes() / 1e3,
                  enc.num_intervals());
    }
  }
  bench::Note("paper: CPR rises Single<Double<3G<4G(~ALM-Improved); latency rises with it; dictionaries grow from bytes to MBs");
  return 0;
}
