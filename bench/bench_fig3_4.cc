// Figure 3.4 — FST vs Pointer-based Indexes: point and range query
// performance and memory for B+tree, ART, C-ART (compact ART) and FST on
// 64-bit integer and email keys. The trie indexes store minimum unique
// prefixes, as in the thesis.
#include <cstdio>

#include "art/art.h"
#include "art/compact_art.h"
#include "bench/bench_util.h"
#include "btree/btree.h"
#include "common/random.h"
#include "fst/fst.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

namespace {

// Memory column from the index's MemoryBreakdown (== MemoryBytes(), asserted
// in tests/prof_test.cc); the trailing split attributes the bytes.
void Report(const char* index, const char* kind, const char* keys, double mops,
            const MemoryBreakdown& b) {
  size_t mem = b.TotalBytes();
  std::printf("%-8s %-7s %-7s %10.2f %12.1f   ", index, kind, keys, mops,
              bench::Mb(mem));
  for (size_t i = 0; i < b.children().size(); ++i) {
    const auto& c = b.children()[i];
    std::printf("%s%s %.0f%%", i == 0 ? "" : ", ", c.name().c_str(),
                mem == 0 ? 0.0
                         : 100.0 * static_cast<double>(c.TotalBytes()) /
                               static_cast<double>(mem));
  }
  std::printf("\n");
  std::vector<bench::Reporter::Field> fields = {{"structure", index},
                                                {"query", kind},
                                                {"keyset", keys},
                                                {"mops", mops},
                                                {"bytes", mem}};
  for (const auto& c : b.children())
    fields.push_back({("mem." + c.name()).c_str(), c.TotalBytes()});
  bench::Row(std::move(fields));
}

void RunDataset(const char* name, const std::vector<std::string>& keys) {
  std::fprintf(stderr, "[fig3_4] dataset %s: %zu keys\n", name, keys.size());
  size_t n = keys.size();
  size_t q = 1000000;
  auto point = GenYcsbRequests(n, q, YcsbSpec::WorkloadC());
  // Pure scans: these are static/bulk-loaded indexes, so the E-mix's insert
  // requests (key_index past the loaded range) do not apply.
  YcsbSpec scan_spec = YcsbSpec::WorkloadE();
  scan_spec.scan_fraction = 1.0;
  auto range = GenYcsbRequests(n, q / 10, scan_spec);

  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = i;

  // B+tree (strings; for integer datasets the thesis uses the int B+tree —
  // the string form is conservative for it).
  {
    std::fprintf(stderr, "[fig3_4] btree\n");
    BTree<std::string> t;
    for (size_t i = 0; i < n; ++i) t.Insert(keys[i], i);
    Report("B+tree", "point", name, bench::Mops(q, [&](size_t i) {
             uint64_t v = 0;
             t.Lookup(keys[point[i].key_index], &v);
             met::bench::Consume(v);
           }),
           t.Breakdown());
    std::vector<uint64_t> out;
    Report("B+tree", "range", name, bench::Mops(range.size(), [&](size_t i) {
             out.clear();
             t.Scan(keys[range[i].key_index], range[i].scan_length, &out);
           }),
           t.Breakdown());
  }
  {
    std::fprintf(stderr, "[fig3_4] art\n");
    Art t;
    for (size_t i = 0; i < n; ++i) t.Insert(keys[i], i);
    Report("ART", "point", name, bench::Mops(q, [&](size_t i) {
             uint64_t v = 0;
             t.Lookup(keys[point[i].key_index], &v);
             met::bench::Consume(v);
           }),
           t.Breakdown());
    std::vector<uint64_t> out;
    Report("ART", "range", name, bench::Mops(range.size(), [&](size_t i) {
             out.clear();
             t.Scan(keys[range[i].key_index], range[i].scan_length, &out);
           }),
           t.Breakdown());
  }
  {
    std::fprintf(stderr, "[fig3_4] c-art\n");
    CompactArt t;
    t.Build(keys, values);
    Report("C-ART", "point", name, bench::Mops(q, [&](size_t i) {
             uint64_t v = 0;
             t.Lookup(keys[point[i].key_index], &v);
             met::bench::Consume(v);
           }),
           t.Breakdown());
    std::vector<uint64_t> out;
    Report("C-ART", "range", name, bench::Mops(range.size(), [&](size_t i) {
             out.clear();
             t.Scan(keys[range[i].key_index], range[i].scan_length, &out);
           }),
           t.Breakdown());
  }
  {
    std::fprintf(stderr, "[fig3_4] fst\n");
    Fst t;
    t.Build(keys, values);
    Report("FST", "point", name, bench::Mops(q, [&](size_t i) {
             uint64_t v = 0;
             t.Lookup(keys[point[i].key_index], &v);
             met::bench::Consume(v);
           }),
           t.Breakdown());
    std::vector<uint64_t> out;
    Report("FST", "range", name, bench::Mops(range.size(), [&](size_t i) {
             out.clear();
             auto it = t.LowerBound(keys[range[i].key_index]);
             for (uint16_t j = 0; j < range[i].scan_length && it.Valid();
                  ++j, it.Next())
               out.push_back(it.value());
           }),
           t.Breakdown());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunStandardBench(
      &argc, argv,
      "Figure 3.4: FST vs pointer-based indexes (Mops/s, memory MB)",
      [] {
        std::printf("%-8s %-7s %-7s %10s %12s\n", "Index", "Query", "Keys",
                    "Mops/s", "Memory(MB)");
      },
      [](const char* name, const std::vector<std::string>& keys) {
        RunDataset(name, keys);
      },
      "paper: FST matches the pointer-based indexes' performance while using ~10x less memory (lowest P*S cost)");
  return 0;
}
