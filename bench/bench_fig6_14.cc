// Figure 6.14 — Key Distribution Changes: compression rate when the key
// distribution shifts after the dictionary was built (emails -> urls),
// versus a stable distribution.
#include <cstdio>

#include "bench/bench_util.h"
#include "hope/hope.h"
#include "keys/keygen.h"

using namespace met;

int main() {
  bench::Title("Figure 6.14: key-distribution change (dictionary built on emails)");
  size_t n = 500000 * bench::Scale();
  auto emails = GenEmails(n);
  auto urls = GenUrls(n);
  std::vector<std::string> sample(emails.begin(), emails.begin() + n / 100);

  std::printf("%-13s %14s %14s %14s\n", "Scheme", "stable CPR",
              "shifted CPR", "retained");
  for (HopeScheme s : {HopeScheme::kSingleChar, HopeScheme::kDoubleChar,
                       HopeScheme::k3Grams, HopeScheme::k4Grams,
                       HopeScheme::kAlm, HopeScheme::kAlmImproved}) {
    HopeEncoder enc;
    enc.Build(sample, s, 1 << 16);
    double stable = enc.Cpr(emails);
    double shifted = enc.Cpr(urls);
    std::printf("%-13s %14.2f %14.2f %13.0f%%\n", HopeSchemeName(s), stable,
                shifted, 100.0 * shifted / stable);
  }
  bench::Note("paper: order preservation survives any shift; compression degrades gracefully until the dictionary is rebuilt");
  return 0;
}
