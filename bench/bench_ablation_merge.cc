// Ablation — merge-all vs merge-cold (Section 5.2.2): under a skewed
// read/write mix, merge-cold keeps the hot set in the fast dynamic stage at
// the cost of more frequent (smaller) merges.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "hybrid/hybrid.h"
#include "keys/keygen.h"
#include "ycsb/workload.h"

using namespace met;

int main() {
  bench::Title("Ablation: merge-all vs merge-cold (zipf read/write mix)");
  size_t n = 1000000 * bench::Scale();
  auto keys = GenRandomInts(n);
  size_t q = 2000000;
  auto ops = GenYcsbRequests(n, q, YcsbSpec::WorkloadA());

  for (auto strategy : {HybridConfig::MergeStrategy::kMergeAll,
                        HybridConfig::MergeStrategy::kMergeCold}) {
    HybridConfig cfg;
    cfg.strategy = strategy;
    HybridBTree<uint64_t> index(cfg);
    for (size_t i = 0; i < keys.size(); ++i) index.Insert(keys[i], i);
    double mops = bench::Mops(q, [&](size_t i) {
      uint64_t v = 0;
      if (ops[i].op == YcsbOp::kRead) {
        index.Lookup(keys[ops[i].key_index], &v);
        bench::Consume(v);
      } else {
        index.Update(keys[ops[i].key_index], i);
      }
    });
    std::printf("%-11s  %7.2f Mops/s  %8.1f MB  merges %4zu  dyn %7zu entries\n",
                strategy == HybridConfig::MergeStrategy::kMergeAll
                    ? "merge-all"
                    : "merge-cold",
                mops, bench::Mb(index.MemoryBytes()),
                index.merge_stats().merge_count, index.DynamicEntries());
  }
  bench::Note("thesis (qualitative): merge-cold shortcuts hot entries but merges more often and tracks accesses; merge-all suits insert-heavy OLTP");
  return 0;
}
