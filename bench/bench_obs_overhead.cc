// Overhead guard for the met::obs kill switch. This TU is compiled with
// -DMET_OBS_DISABLED (see bench/CMakeLists.txt), so every obs call below
// resolves to the inline no-op stubs and must fold out of the lookup kernel
// entirely. The bench runs the scalar batch-lookup kernel bare and then
// fully metered (per-op counter + latency histogram + per-chunk span — more
// instrumentation than any real hot path carries) and fails with a nonzero
// exit when the metered loop is measurably slower.
//
// Threshold: 1% by default (MET_OBS_OVERHEAD_TOL=<percent> overrides, e.g.
// for very noisy shared runners). Both loops compile to identical machine
// code, so a real failure here means a stub stopped being a no-op.
#ifndef MET_OBS_DISABLED
#error "this bench must be compiled with -DMET_OBS_DISABLED"
#endif

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "common/random.h"
#include "keys/keygen.h"
#include "obs/obs.h"

using namespace met;

namespace {

double Tolerance() {
  const char* s = std::getenv("MET_OBS_OVERHEAD_TOL");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v <= 0 ? 1.0 : v;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter::Get().ParseArgs(&argc, argv);
  bench::Title("obs kill-switch overhead guard (compiled MET_OBS_DISABLED)");

  size_t n = 1000000 * bench::Scale();
  size_t ops = 4000000 * bench::Scale();
  auto keys = GenRandomInts(n);
  BTree<uint64_t> t;
  for (auto k : keys) t.Insert(k, k);
  std::vector<uint32_t> probe(ops);
  Random rng(7);
  for (auto& p : probe) p = static_cast<uint32_t>(rng.Next() % n);

  auto bare = [&](size_t i) {
    uint64_t v = 0;
    t.Lookup(keys[probe[i]], &v);
    bench::Consume(v);
  };

  auto* lookups = obs::MetricsRegistry::Global().GetCounter("guard.lookups");
  auto* lat = obs::MetricsRegistry::Global().GetHistogram("guard.latency");
  auto metered = [&](size_t i) {
    obs::ScopedTimer span(lat, "guard.chunk");
    uint64_t t0 = obs::NowNanos();
    uint64_t v = 0;
    t.Lookup(keys[probe[i]], &v);
    bench::Consume(v);
    lookups->Increment();
    lat->RecordNanos(obs::NowNanos() - t0);
  };

  // Interleave reps and keep the best of each so scheduler noise cancels
  // instead of landing on whichever variant ran second.
  double bare_mops = 0, metered_mops = 0;
  for (int rep = 0; rep < 5; ++rep) {
    bare_mops = std::max(bare_mops, bench::Mops(ops, bare, nullptr));
    metered_mops = std::max(metered_mops, bench::Mops(ops, metered, nullptr));
  }

  double overhead_pct =
      bare_mops <= 0 ? 0.0 : (bare_mops - metered_mops) / bare_mops * 100.0;
  double tol = Tolerance();
  bool pass = overhead_pct < tol;
  std::printf("%-14s %10.2f Mops/s\n", "bare", bare_mops);
  std::printf("%-14s %10.2f Mops/s\n", "metered", metered_mops);
  std::printf("overhead %.3f%% (tolerance %.2f%%) -> %s\n", overhead_pct, tol,
              pass ? "OK" : "FAIL");
  bench::Row({{"kind", "obs_overhead"},
              {"bare_mops", bare_mops},
              {"metered_mops", metered_mops},
              {"overhead_pct", overhead_pct},
              {"tolerance_pct", tol},
              {"pass", pass ? 1 : 0}});
  if (!pass) {
    std::fprintf(stderr,
                 "obs stubs are not free: metered kernel %.3f%% slower than "
                 "bare with MET_OBS_DISABLED\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}
