// Table 1.1 — Index Memory Overhead: share of DBMS memory used by tuples,
// primary indexes, and secondary indexes for TPC-C / Voter / Articles loaded
// into the mini OLTP engine with its default B+tree indexes.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "minidb/minidb.h"
#include "minidb/workloads.h"

using namespace met;

int main() {
  bench::Title("Table 1.1: Index Memory Overhead (B+tree indexes)");
  std::printf("%-10s %10s %10s %16s %18s\n", "Workload", "DB (MB)", "Tuples",
              "Primary Indexes", "Secondary Indexes");

  size_t scale = bench::Scale();
  size_t txns = 150000 * scale;

  struct Case {
    const char* name;
    std::unique_ptr<WorkloadDriver> driver;
  };
  Case cases[3] = {
      {"TPC-C", MakeTpccDriver(2, 10, 300, 10000)},
      {"Voter", MakeVoterDriver(6, 1000000)},
      {"Articles", MakeArticlesDriver(20000, 10000)},
  };

  for (auto& c : cases) {
    MiniDb db(IndexKind::kBTree);
    c.driver->Load(&db);
    Random rng(42);
    for (size_t i = 0; i < txns; ++i) c.driver->RunTransaction(&db, &rng);
    double total = bench::Mb(db.TotalMemoryBytes());
    double tuples = bench::Mb(db.TupleBytes());
    double prim = bench::Mb(db.PrimaryIndexBytes());
    double sec = bench::Mb(db.SecondaryIndexBytes());
    std::printf("%-10s %10.1f %9.1f%% %15.1f%% %17.1f%%\n", c.name, total,
                100 * tuples / total, 100 * prim / total, 100 * sec / total);
  }
  bench::Note("paper: indexes consume 35-58% of total database memory");
  return 0;
}
