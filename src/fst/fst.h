// Fast Succinct Trie (Chapter 3): a static trie encoded with LOUDS-DS —
// LOUDS-Dense (bitmap-per-node) for the hot upper levels and LOUDS-Sparse
// (10 bits/node) for the lower levels — with FST's customized rank & select
// structures, SIMD label search and prefetching.
//
// The encoding follows the thesis exactly:
//  * LOUDS-Dense per node: 256-bit D-Labels, 256-bit D-HasChild, 1-bit
//    D-IsPrefixKey; values for terminating branches in level order.
//  * LOUDS-Sparse per label: S-Labels byte, S-HasChild bit, S-LOUDS bit
//    (set at node starts). A key that is a proper prefix of another key is
//    represented by the special 0xFF label at the start of its node.
//  * Navigation:  D-ChildNodePos(pos)  = 256 * rank1(D-HasChild, pos)
//                 S-ChildNodePos(pos)  = select1(S-LOUDS,
//                                          rank1(S-HasChild, pos) + 1)
//    with rank1 counting bits in [0, pos] and select1 1-based, plus the
//    dense->sparse adjustment via DenseNodeCount/DenseChildCount.
//
// Every optimization of Section 3.6 can be disabled through FstConfig so the
// Figure 3.6 breakdown is reproducible; with everything off the structure
// behaves like an earlier-generation LOUDS-Sparse trie.
#ifndef MET_FST_FST_H_
#define MET_FST_FST_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bitvec/bitvector.h"
#include "bitvec/rank.h"
#include "bitvec/select.h"
#include "check/fwd.h"
#include "common/assert.h"
#include "common/index_api.h"

namespace met {

struct FstConfig {
  /// kFullKey stores every byte of every key (a 100%-accurate index).
  /// kMinUniquePrefix truncates each key one byte past its distinguishing
  /// prefix (the SuRF-Base representation, Section 4.1.1).
  enum class Mode { kFullKey, kMinUniquePrefix };

  Mode mode = Mode::kFullKey;

  /// Size ratio R between LOUDS-Sparse and LOUDS-Dense (Section 3.4): the
  /// cutoff is the largest level l with DenseSize(l) * R <= SparseSize(l).
  double size_ratio = 64.0;

  /// -1: choose dense levels automatically via size_ratio. 0: sparse-only.
  /// k>0: force exactly min(k, height) dense levels.
  int max_dense_levels = -1;

  /// Section 3.6 optimizations, individually toggleable (Figure 3.6).
  bool fast_rank = true;    // single-level LUT rank vs Poppy-style baseline
  bool fast_select = true;  // sampled select LUT vs binary search over rank
  bool simd_label_search = true;
  bool prefetch = true;

  /// Store a 64-bit value per key. SuRF disables this and keeps its own
  /// per-leaf suffix arrays addressed by leaf id.
  bool store_values = true;
};

class Fst {
 public:
  Fst() = default;

  Fst(const Fst&) = delete;
  Fst& operator=(const Fst&) = delete;
  Fst(Fst&&) = default;
  Fst& operator=(Fst&&) = default;

  /// Builds from sorted, unique keys. `values[i]` is stored for keys[i] when
  /// config.store_values is true. If `leaf_key_index` is non-null it
  /// receives, for every leaf id, the index of the key that produced it
  /// (used by SuRF to extract suffix bits).
  void Build(const std::vector<std::string>& keys,
             const std::vector<uint64_t>& values, const FstConfig& config = {},
             std::vector<uint32_t>* leaf_key_index = nullptr,
             std::vector<uint32_t>* leaf_depth = nullptr);

  /// Result of a point lookup at trie granularity.
  struct PathResult {
    bool found = false;
    uint32_t leaf_id = 0;   // index into values / suffix arrays
    uint32_t depth = 0;     // number of key bytes consumed by the path
    bool is_prefix_leaf = false;  // terminated at a prefix-key marker
  };

  /// Exact search down the trie. In kFullKey mode `found` implies the key is
  /// stored. In kMinUniquePrefix mode `found` means the key's path reached a
  /// stored (possibly truncated) leaf — SuRF layers suffix checks on top.
  PathResult LookupPath(std::string_view key) const;

  /// Unified point lookup (met::ReadOnlyPointIndex): true iff the key is
  /// stored (full-key mode rejects longer keys that merely pass through a
  /// terminal); writes the stored value.
  bool Lookup(std::string_view key, uint64_t* value = nullptr) const;

  [[deprecated("use Lookup()")]] bool Find(std::string_view key,
                                           uint64_t* value = nullptr) const {
    return Lookup(key, value);
  }

  /// Batched LookupPath (the met::batch pipeline, impl in fst_batch.cc):
  /// runs up to 16 keys at a time as interleaved state machines, issuing a
  /// software prefetch for the lines each probe's *next* descent step will
  /// touch (dense bitmap words + rank LUT entries, the S-LOUDS select LUT
  /// and scan window, sparse label/has-child lines). out[i] is identical to
  /// LookupPath(keys[i]) — asserted in checked builds.
  void LookupPathBatch(const std::string_view* keys, size_t n,
                       PathResult* out) const;

  /// Batched unified lookup (dispatched by met::LookupBatch): LookupPathBatch
  /// plus the full-key depth filter and a prefetched value-array gather.
  void LookupBatch(const std::string_view* keys, size_t n,
                   LookupResult* out) const;

  uint64_t ValueAt(uint32_t leaf_id) const { return values_[leaf_id]; }

  /// Iterator with per-level cursors (Section 3.4). Traverses leaves in key
  /// order; key() returns the stored path (truncated key in SuRF mode).
  class Iterator {
   public:
    Iterator() = default;

    bool Valid() const { return valid_; }
    /// The stored path of the current leaf.
    const std::string& key() const { return key_; }
    uint32_t leaf_id() const { return leaf_id_; }
    uint64_t value() const { return fst_->ValueAt(leaf_id_); }
    /// True if this leaf is a prefix-key (its path is a stored key that is a
    /// proper prefix of other stored keys).
    bool IsPrefixLeaf() const { return at_prefix_; }

    void Next();

   private:
    friend class Fst;

    struct LevelCursor {
      uint32_t pos;    // dense: absolute bit pos (node*256+byte); sparse: label index
      bool dense;
    };

    const Fst* fst_ = nullptr;
    bool valid_ = false;
    bool at_prefix_ = false;  // leaf is a prefix-key (dense bit or 0xFF marker)
    uint32_t leaf_id_ = 0;
    std::vector<LevelCursor> stack_;
    std::string key_;

    void ComputeLeafId();
  };

  /// Iterator at the first leaf whose path is >= `key` under the convention
  /// that a stored path which is a strict prefix of `key` compares as a
  /// match candidate: the iterator stops there and sets *fp_flag (SuRF's
  /// moveToNext semantics, Section 4.1.5). Pass fp_flag = nullptr for strict
  /// index semantics (such a leaf is skipped).
  Iterator LowerBound(std::string_view key, bool* fp_flag = nullptr) const;

  /// Iterator at the smallest leaf.
  Iterator Begin() const;

  /// Number of leaves whose path lies in [low_key, high_key), computed with
  /// per-level rank differences (may over-count by at most 2 at the
  /// boundaries in truncated mode, matching SuRF's count()).
  uint64_t CountRange(std::string_view low_key, std::string_view high_key) const;

  size_t num_keys() const { return num_keys_; }
  /// Alias of num_keys() (met::ReadOnlyPointIndex surface).
  size_t size() const { return num_keys_; }
  size_t num_leaves() const { return num_leaves_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t height() const { return height_; }
  size_t dense_levels() const { return dense_levels_; }

  /// Total encoded size (bit/byte sequences + rank/select LUTs + values).
  size_t MemoryBytes() const;
  size_t MemoryUse() const { return MemoryBytes(); }

  /// Appends a self-contained binary image of the trie to `*out`. Rank and
  /// select supports are rebuilt on load, so the format stays small and
  /// version-stable.
  void Serialize(std::string* out) const;

  /// Restores a trie from `Serialize` output. Returns false (leaving the
  /// object empty) on a malformed image.
  bool Deserialize(std::string_view in);

  /// Memory excluding the value array (the filter footprint).
  size_t FilterMemoryBytes() const;

  /// Component attribution (dense/sparse encodings, rank & select supports,
  /// values); TotalBytes() == MemoryBytes() (same terms).
  MemoryBreakdown Breakdown() const;

  /// Breakdown of FilterMemoryBytes() only (no value array); SuRF embeds
  /// this subtree in its own breakdown.
  MemoryBreakdown FilterBreakdown() const;

  /// Cross-checks the LOUDS-Dense/Sparse encodings: bit-sequence sizes,
  /// D-HasChild ⊆ D-Labels, child-pointer bijection (#has-child bits ==
  /// #nodes - 1), rank/select inverses over S-LOUDS, 0xFF-marker placement,
  /// leaf/value accounting, and a full ordered iterator/Lookup round trip.
  /// No-op unless MET_CHECK_ENABLED (impl in check/fst_check.cc).
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return CheckValidate(os);
#else
    (void)os;
    return true;
#endif
  }

  // Test-only access to the raw encoding (validated against the thesis's
  // Figure 3.2 worked example).
  std::vector<uint8_t> SparseLabelsForTest() const {
    return std::vector<uint8_t>(s_labels_.begin(),
                                s_labels_.begin() + num_s_labels_);
  }
  const BitVector& SparseHasChildForTest() const { return s_has_child_; }
  const BitVector& SparseLoudsForTest() const { return s_louds_; }
  const BitVector& DenseLabelsForTest() const { return d_labels_; }
  const BitVector& DenseIsPrefixForTest() const { return d_is_prefix_; }

 private:
  friend class Iterator;
  friend struct check::TestAccess;
  bool CheckValidate(std::ostream& os) const;  // check/fst_check.cc

  // ----- rank/select wrappers honouring the config toggles -----
  size_t RankD(const RankSupport& fast, const PoppyRank& slow, size_t pos) const {
    return config_.fast_rank ? fast.Rank1(pos) : slow.Rank1(pos);
  }
  size_t SelectLouds(size_t rank) const;  // 1-based over S-LOUDS

  // ----- dense helpers -----
  bool DenseLabel(size_t pos) const { return d_labels_.Get(pos); }
  size_t DenseRankLabels(size_t pos) const {
    return RankD(d_labels_rank_, d_labels_poppy_, pos);
  }
  size_t DenseRankHasChild(size_t pos) const {
    return RankD(d_has_child_rank_, d_has_child_poppy_, pos);
  }
  /// Value index for a terminating dense branch at `pos`.
  size_t DenseValuePos(size_t pos) const;
  /// Value index for the prefix-key of dense node `m`.
  size_t DensePrefixValuePos(size_t m) const;

  // ----- sparse helpers -----
  /// [start, end) label range of the sparse node beginning at `start`.
  size_t SparseNodeEnd(size_t start) const;
  /// Position of sparse node number `n` (0-based among sparse nodes).
  size_t SparseNodePos(size_t n) const { return SelectLouds(n + 1); }
  size_t SparseRankHasChild(size_t pos) const {
    return RankD(s_has_child_rank_, s_has_child_poppy_, pos);
  }
  size_t SparseValuePos(size_t pos) const {
    return pos - SparseRankHasChild(pos);
  }
  /// Searches labels [start+skip, end) for `byte`; returns end if absent.
  size_t SearchLabel(size_t start, size_t end, uint8_t byte) const;
  /// True if the node starting at `start` begins with a 0xFF prefix marker.
  bool SparseHasMarker(size_t start, size_t end) const {
    return end - start >= 2 && s_labels_[start] == 0xFF;
  }

  /// Child node number (global, level-ordered) for a branch position.
  size_t DenseChildNodeNum(size_t pos) const { return DenseRankHasChild(pos); }
  size_t SparseChildNodeNum(size_t pos) const {
    return dense_child_count_ + SparseRankHasChild(pos);
  }

  // Iterator helpers.
  void DescendToMin(Iterator* it, size_t node_num) const;
  bool AdvanceCursor(Iterator* it) const;  // advance deepest cursor in-node
  void CursorDescendOrLeaf(Iterator* it) const;
  void AdvanceUp(Iterator* it) const;

  // ----- CountRange helpers -----
  /// Number of leaf values at dense level `l` whose path sorts strictly
  /// before the bound, given the frontier bit position within that level.
  uint64_t CountDenseLevelBefore(size_t l, uint64_t pos, bool include_marker,
                                 bool include_pos_value) const;
  uint64_t CountSparseLevelBefore(size_t l, uint64_t pos,
                                  bool include_pos_value) const;
  /// Start position of global node `node` (clamped: one-past-last maps to
  /// the end of the label space). Sets *dense accordingly.
  uint64_t NodeStartPos(uint64_t node, bool* dense) const;

  /// Per-level counts of leaves sorting strictly before a key.
  void ComputeFrontier(std::string_view key, std::vector<uint64_t>* counts) const;

  FstConfig config_;

  // Dense encoding.
  BitVector d_labels_, d_has_child_, d_is_prefix_;
  RankSupport d_labels_rank_, d_has_child_rank_, d_is_prefix_rank_;
  PoppyRank d_labels_poppy_, d_has_child_poppy_, d_is_prefix_poppy_;
  size_t dense_levels_ = 0;
  size_t dense_node_count_ = 0;
  size_t dense_child_count_ = 0;  // set bits in D-HasChild
  size_t dense_value_count_ = 0;

  // Sparse encoding. The label vector is padded with 16 slack bytes so the
  // SIMD label search can always issue one unaligned 16-byte load;
  // num_s_labels_ is the logical size.
  std::vector<uint8_t> s_labels_;
  size_t num_s_labels_ = 0;
  BitVector s_has_child_, s_louds_;
  RankSupport s_has_child_rank_, s_louds_rank_;
  PoppyRank s_has_child_poppy_, s_louds_poppy_;
  SelectSupport s_louds_select_;

  // Values, [dense leaves..., sparse leaves...] by leaf id.
  std::vector<uint64_t> values_;

  // Global node number of the first node at each level, with two sentinel
  // entries past the last level (for CountRange frontier extension).
  std::vector<uint64_t> level_node_start_;

  size_t num_keys_ = 0;
  size_t num_leaves_ = 0;
  size_t num_nodes_ = 0;
  size_t height_ = 0;
};

}  // namespace met

#endif  // MET_FST_FST_H_
