// Batched FST lookup (the met::batch pipeline).
//
// A point lookup is a chain of dependent cache misses: each descent step
// reads bitmap words and rank/select table entries whose addresses are only
// known after the previous step resolves. One probe therefore spends most of
// its time stalled. LookupPathBatch runs a group of 16 probes as interleaved
// state machines: each round advances every live probe by one stage, and a
// probe issues the software prefetches for its *next* stage before yielding,
// so its lines stream in while the other 15 probes execute (AMAC-style group
// prefetching; see DESIGN.md "Batched execution").
//
// Stages per probe:
//   kDense      one LOUDS-Dense level: D-Labels/D-HasChild bit tests plus
//               the child rank. Next-stage prefetch: the bitmap words and
//               rank-LUT entries for the child position (dense), or the
//               S-LOUDS select LUT entry (dense->sparse handoff).
//   kSelect     reads the select LUT sample and prefetches the S-LOUDS scan
//               window (skipped when fast_select is off — the binary-search
//               fallback has no prefetchable shape).
//   kSelectScan resolves select1(S-LOUDS, rank) + the node's [pos, end)
//               range; prefetches the node's S-Labels lines, S-HasChild word
//               and rank-LUT entry.
//   kSparse     one LOUDS-Sparse level: marker check, label search,
//               S-HasChild test, child rank.
//
// The compute steps are verbatim copies of the scalar LookupPath loop bodies
// and the terminal paths call the same helpers, so batched results are
// bit-identical to scalar ones; checked builds assert that per key.
#include <algorithm>

#include "common/prefetch.h"
#include "fst/fst.h"
#include "obs/metrics.h"

namespace met {

namespace {

enum class Stage : uint8_t { kDense, kSelect, kSelectScan, kSparse, kDone };

struct Probe {
  std::string_view key;
  Fst::PathResult* out;
  size_t node;   // kDense: global node number
  size_t level;  // key bytes consumed
  size_t pos;    // kSparse: node start label index
  size_t end;    // kSparse: node end (one past last label)
  size_t rank;   // kSelect/kSelectScan: pending 1-based S-LOUDS select rank
  Stage stage;
};

}  // namespace

void Fst::LookupPathBatch(const std::string_view* keys, size_t n,
                          PathResult* out) const {
  for (size_t i = 0; i < n; ++i) out[i] = PathResult{};
  if (n == 0 || num_leaves_ == 0) return;

  // Prefetches for the lines a probe's next stage will touch. Issued when a
  // probe transitions into that stage, consumed one round later.
  auto prefetch_dense = [&](const Probe& pr) {
    size_t m = pr.node;
    if (pr.level == pr.key.size()) {
      PrefetchRead(d_is_prefix_.data() + m / 64);
      return;
    }
    size_t pos = m * 256 + static_cast<uint8_t>(pr.key[pr.level]);
    PrefetchRead(d_labels_.data() + pos / 64);
    PrefetchRead(d_has_child_.data() + pos / 64);
    if (config_.fast_rank) {
      d_labels_rank_.PrefetchRank1(pos);
      d_has_child_rank_.PrefetchRank1(pos);
    } else {
      d_labels_poppy_.PrefetchRank1(pos);
      d_has_child_poppy_.PrefetchRank1(pos);
    }
  };
  auto prefetch_select = [&](size_t rank) {
    if (config_.fast_select) s_louds_select_.PrefetchLut(rank);
  };
  auto prefetch_sparse_node = [&](const Probe& pr) {
    // Nodes are short (>90% under 8 labels): the first and last label lines
    // cover the search range; wider nodes stream behind the SIMD scan.
    PrefetchRead(&s_labels_[pr.pos]);
    PrefetchRead(&s_labels_[pr.end - 1]);
    PrefetchRead(s_has_child_.data() + pr.pos / 64);
    if (config_.fast_rank) {
      s_has_child_rank_.PrefetchRank1(pr.pos);
    } else {
      s_has_child_poppy_.PrefetchRank1(pr.pos);
    }
  };

  // kSelectScan's work, also run directly from kSelect when fast_select is
  // off (nothing to prefetch between the two in that configuration).
  auto select_scan = [&](Probe& pr) {
    pr.pos = SelectLouds(pr.rank);
    pr.end = SparseNodeEnd(pr.pos);
    pr.stage = Stage::kSparse;
    prefetch_sparse_node(pr);
  };

  auto step = [&](Probe& pr) {
    switch (pr.stage) {
      case Stage::kDense: {
        size_t m = pr.node;
        if (pr.level == pr.key.size()) {
          if (d_is_prefix_.Get(m)) {
            pr.out->found = true;
            pr.out->leaf_id = static_cast<uint32_t>(DensePrefixValuePos(m));
            pr.out->depth = static_cast<uint32_t>(pr.level);
            pr.out->is_prefix_leaf = true;
          }
          pr.stage = Stage::kDone;
          return;
        }
        size_t pos = m * 256 + static_cast<uint8_t>(pr.key[pr.level]);
        if (!d_labels_.Get(pos)) {
          pr.stage = Stage::kDone;
          return;
        }
        if (!d_has_child_.Get(pos)) {
          pr.out->found = true;
          pr.out->leaf_id = static_cast<uint32_t>(DenseValuePos(pos));
          pr.out->depth = static_cast<uint32_t>(pr.level + 1);
          pr.stage = Stage::kDone;
          return;
        }
        pr.node = DenseChildNodeNum(pos);
        ++pr.level;
        if (pr.level < dense_levels_ && pr.node < dense_node_count_) {
          prefetch_dense(pr);
        } else {
          pr.rank = pr.node - dense_node_count_ + 1;
          pr.stage = Stage::kSelect;
          prefetch_select(pr.rank);
        }
        return;
      }
      case Stage::kSelect: {
        if (!config_.fast_select) {
          select_scan(pr);
          return;
        }
        size_t w = s_louds_select_.ScanStartWord(pr.rank);
        PrefetchRead(s_louds_.data() + w);
        if (w + 1 < s_louds_.num_words()) PrefetchRead(s_louds_.data() + w + 1);
        pr.stage = Stage::kSelectScan;
        return;
      }
      case Stage::kSelectScan: {
        select_scan(pr);
        return;
      }
      case Stage::kSparse: {
        bool marker = SparseHasMarker(pr.pos, pr.end);
        if (pr.level == pr.key.size()) {
          if (marker) {
            pr.out->found = true;
            pr.out->leaf_id = static_cast<uint32_t>(dense_value_count_ +
                                                    SparseValuePos(pr.pos));
            pr.out->depth = static_cast<uint32_t>(pr.level);
            pr.out->is_prefix_leaf = true;
          }
          pr.stage = Stage::kDone;
          return;
        }
        uint8_t b = static_cast<uint8_t>(pr.key[pr.level]);
        size_t p = SearchLabel(pr.pos + (marker ? 1 : 0), pr.end, b);
        if (p == pr.end) {
          pr.stage = Stage::kDone;
          return;
        }
        if (!s_has_child_.Get(p)) {
          pr.out->found = true;
          pr.out->leaf_id =
              static_cast<uint32_t>(dense_value_count_ + SparseValuePos(p));
          pr.out->depth = static_cast<uint32_t>(pr.level + 1);
          pr.stage = Stage::kDone;
          return;
        }
        pr.rank = SparseChildNodeNum(p) - dense_node_count_ + 1;
        ++pr.level;
        pr.stage = Stage::kSelect;
        prefetch_select(pr.rank);
        return;
      }
      case Stage::kDone:
        return;
    }
  };

  // Group scheduler: 16 probes run as interleaved state machines and the
  // group drains fully before the next is admitted. (A slot-refill variant —
  // re-arming a finished probe's slot immediately — measured *slower* at
  // batch >= 64 here: steady-state admission keeps extra first-stage
  // prefetches in flight alongside mid-descent probes, oversubscribing the
  // core's fill buffers. The drain tail costs less than that contention.)
  constexpr size_t kGroup = 16;
  Probe probes[kGroup];
  for (size_t base = 0; base < n; base += kGroup) {
    const size_t g = std::min(kGroup, n - base);
    for (size_t i = 0; i < g; ++i) {
      Probe& pr = probes[i];
      pr.key = keys[base + i];
      pr.out = &out[base + i];
      pr.node = 0;
      pr.level = 0;
      if (dense_levels_ > 0) {
        pr.stage = Stage::kDense;
        prefetch_dense(pr);
      } else {
        // Sparse-only trie: the root is sparse node 0 (rank 1).
        pr.rank = pr.node - dense_node_count_ + 1;
        pr.stage = Stage::kSelect;
        prefetch_select(pr.rank);
      }
    }
    size_t active = g;
    while (active > 0) {
      size_t stepped = 0;
      for (size_t i = 0; i < g; ++i) {
        Probe& pr = probes[i];
        if (pr.stage == Stage::kDone) continue;
        step(pr);
        ++stepped;
        if (pr.stage == Stage::kDone) --active;
      }
      // Occupancy: round_slots / (rounds * 16) = average pipeline fill.
      MET_OBS_DEBUG_COUNT("fst.batch.rounds");
      MET_OBS_DEBUG_ADD("fst.batch.round_slots", stepped);
    }
    MET_OBS_DEBUG_ADD("fst.batch.probes", g);
  }

#if MET_CHECK_ENABLED
  for (size_t i = 0; i < n; ++i) {
    PathResult ref = LookupPath(keys[i]);
    MET_DCHECK(out[i].found == ref.found && out[i].leaf_id == ref.leaf_id &&
                   out[i].depth == ref.depth &&
                   out[i].is_prefix_leaf == ref.is_prefix_leaf,
               "batched LookupPath diverged from scalar");
  }
#endif
}

void Fst::LookupBatch(const std::string_view* keys, size_t n,
                      LookupResult* out) const {
  MET_OBS_DEBUG_ADD("fst.batch.lookups", n);
  constexpr size_t kChunk = 64;
  PathResult paths[kChunk];
  const bool full_key = config_.mode == FstConfig::Mode::kFullKey;
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t g = std::min(kChunk, n - base);
    LookupPathBatch(keys + base, g, paths);
    if (!values_.empty()) {
      for (size_t i = 0; i < g; ++i)
        if (paths[i].found) PrefetchRead(&values_[paths[i].leaf_id]);
    }
    for (size_t i = 0; i < g; ++i) {
      // Same acceptance rule as scalar Lookup: full-key mode rejects longer
      // keys that merely pass through a terminal.
      bool hit = paths[i].found &&
                 (!full_key || paths[i].depth == keys[base + i].size());
      out[base + i].found = hit;
      out[base + i].value =
          hit && !values_.empty() ? values_[paths[i].leaf_id] : 0;
    }
  }
}

}  // namespace met
