// Binary serialization for Fst and Surf. Format: a small header of sizes
// and config, followed by the raw bit/byte sequences. Rank and select
// supports are derived structures and are rebuilt on load.
#include <cstring>

#include "fst/fst.h"
#include "surf/surf.h"

namespace met {

namespace {

constexpr uint32_t kFstMagic = 0x4D465354;  // "MFST"
constexpr uint32_t kSurfMagic = 0x4D535246;  // "MSRF"

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}

  bool U64(uint64_t* v) {
    if (in_.size() - pos_ < sizeof(*v)) return false;
    std::memcpy(v, in_.data() + pos_, sizeof(*v));
    pos_ += sizeof(*v);
    return true;
  }

  bool Bytes(void* data, size_t n) {
    if (in_.size() - pos_ < n) return false;
    std::memcpy(data, in_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }
  std::string_view rest() const { return in_.substr(pos_); }
  void Skip(size_t n) { pos_ += n; }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

void PutBitVector(std::string* out, const BitVector& bv) {
  PutU64(out, bv.size());
  PutU64(out, bv.words().size());
  PutBytes(out, bv.words().data(), bv.words().size() * sizeof(uint64_t));
}

bool GetBitVector(Reader* r, BitVector* bv) {
  uint64_t bits, words;
  if (!r->U64(&bits) || !r->U64(&words)) return false;
  if (words != (bits + 63) / 64) return false;
  std::vector<uint64_t> data(words);
  if (!r->Bytes(data.data(), words * sizeof(uint64_t))) return false;
  bv->SetRaw(bits, std::move(data));
  return true;
}

}  // namespace

void Fst::Serialize(std::string* out) const {
  PutU64(out, kFstMagic);
  PutU64(out, static_cast<uint64_t>(config_.mode));
  PutU64(out, config_.max_dense_levels >= 0
                  ? static_cast<uint64_t>(config_.max_dense_levels) + 1
                  : 0);
  PutU64(out, num_keys_);
  PutU64(out, num_leaves_);
  PutU64(out, num_nodes_);
  PutU64(out, height_);
  PutU64(out, dense_levels_);
  PutU64(out, dense_node_count_);
  PutU64(out, dense_child_count_);
  PutU64(out, dense_value_count_);
  PutBitVector(out, d_labels_);
  PutBitVector(out, d_has_child_);
  PutBitVector(out, d_is_prefix_);
  PutU64(out, num_s_labels_);
  PutBytes(out, s_labels_.data(), num_s_labels_);
  PutBitVector(out, s_has_child_);
  PutBitVector(out, s_louds_);
  PutU64(out, values_.size());
  PutBytes(out, values_.data(), values_.size() * sizeof(uint64_t));
  PutU64(out, level_node_start_.size());
  PutBytes(out, level_node_start_.data(),
           level_node_start_.size() * sizeof(uint64_t));
}

bool Fst::Deserialize(std::string_view in) {
  Reader r(in);
  uint64_t magic, mode, dense_plus1;
  if (!r.U64(&magic) || magic != kFstMagic) return false;
  if (!r.U64(&mode) || !r.U64(&dense_plus1)) return false;
  config_ = FstConfig{};
  config_.mode = static_cast<FstConfig::Mode>(mode);
  config_.max_dense_levels =
      dense_plus1 == 0 ? -1 : static_cast<int>(dense_plus1 - 1);

  uint64_t nkeys, nleaves, nnodes, height, dlevels, dnodes, dchildren, dvalues;
  if (!r.U64(&nkeys) || !r.U64(&nleaves) || !r.U64(&nnodes) ||
      !r.U64(&height) || !r.U64(&dlevels) || !r.U64(&dnodes) ||
      !r.U64(&dchildren) || !r.U64(&dvalues))
    return false;
  num_keys_ = nkeys;
  num_leaves_ = nleaves;
  num_nodes_ = nnodes;
  height_ = height;
  dense_levels_ = dlevels;
  dense_node_count_ = dnodes;
  dense_child_count_ = dchildren;
  dense_value_count_ = dvalues;

  if (!GetBitVector(&r, &d_labels_) || !GetBitVector(&r, &d_has_child_) ||
      !GetBitVector(&r, &d_is_prefix_))
    return false;
  uint64_t nlabels;
  if (!r.U64(&nlabels)) return false;
  num_s_labels_ = nlabels;
  s_labels_.assign(nlabels + 16, 0);
  if (!r.Bytes(s_labels_.data(), nlabels)) return false;
  if (!GetBitVector(&r, &s_has_child_) || !GetBitVector(&r, &s_louds_))
    return false;
  uint64_t nvalues;
  if (!r.U64(&nvalues)) return false;
  values_.resize(nvalues);
  if (!r.Bytes(values_.data(), nvalues * sizeof(uint64_t))) return false;
  uint64_t nlevels;
  if (!r.U64(&nlevels)) return false;
  level_node_start_.resize(nlevels);
  if (!r.Bytes(level_node_start_.data(), nlevels * sizeof(uint64_t)))
    return false;

  // Rebuild the derived rank/select supports.
  d_labels_rank_.Build(&d_labels_, 64);
  d_has_child_rank_.Build(&d_has_child_, 64);
  d_is_prefix_rank_.Build(&d_is_prefix_, 512);
  s_has_child_rank_.Build(&s_has_child_, 512);
  s_louds_rank_.Build(&s_louds_, 512);
  if (s_louds_.size() > 0) s_louds_select_.Build(&s_louds_, 64);
  return true;
}

void Surf::Serialize(std::string* out) const {
  PutU64(out, kSurfMagic);
  PutU64(out, config_.hash_suffix_bits);
  PutU64(out, config_.real_suffix_bits);
  uint64_t depth_fixed =
      static_cast<uint64_t>(avg_leaf_depth_ * 1024.0);  // 1/1024 precision
  PutU64(out, depth_fixed);
  PutU64(out, suffix_words_.size());
  PutBytes(out, suffix_words_.data(), suffix_words_.size() * sizeof(uint64_t));
  fst_.Serialize(out);
}

bool Surf::Deserialize(std::string_view in) {
  Reader r(in);
  uint64_t magic, hash_bits, real_bits, depth_fixed, nwords;
  if (!r.U64(&magic) || magic != kSurfMagic) return false;
  if (!r.U64(&hash_bits) || !r.U64(&real_bits) || !r.U64(&depth_fixed) ||
      !r.U64(&nwords))
    return false;
  config_ = SurfConfig{};
  config_.hash_suffix_bits = static_cast<uint32_t>(hash_bits);
  config_.real_suffix_bits = static_cast<uint32_t>(real_bits);
  avg_leaf_depth_ = static_cast<double>(depth_fixed) / 1024.0;
  suffix_words_.resize(nwords);
  if (!r.Bytes(suffix_words_.data(), nwords * sizeof(uint64_t))) return false;
  return fst_.Deserialize(r.rest());
}

}  // namespace met
