#include "fst/fst.h"

#include <algorithm>

#include "common/assert.h"
#include "obs/metrics.h"

#ifdef MET_USE_SSE2
#include <emmintrin.h>
#endif

namespace met {

namespace {

/// Per-level raw trie produced by the single-scan builder, before the
/// dense/sparse split is chosen.
struct LevelData {
  std::vector<uint8_t> labels;
  std::vector<bool> has_child;
  std::vector<bool> louds;      // set at first label of each node
  std::vector<bool> is_marker;  // label is the 0xFF prefix-key marker
  std::vector<uint32_t> value_key_index;  // key index per terminating label
  size_t node_count = 0;
};

struct Range {
  uint32_t lo, hi;
};

}  // namespace

void Fst::Build(const std::vector<std::string>& keys,
                const std::vector<uint64_t>& values, const FstConfig& config,
                std::vector<uint32_t>* leaf_key_index,
                std::vector<uint32_t>* leaf_depth) {
  config_ = config;
  num_keys_ = keys.size();
  MET_ASSERT(values.empty() || values.size() == keys.size(),
             "one value per key (or none)");
  MET_DCHECK(std::is_sorted(keys.begin(), keys.end()));

  // ---- Phase 1: build per-level label sequences breadth-first. ----
  std::vector<LevelData> levels;
  std::vector<Range> current;
  if (!keys.empty()) current.push_back({0, static_cast<uint32_t>(keys.size())});
  size_t depth = 0;
  const bool truncate = config.mode == FstConfig::Mode::kMinUniquePrefix;
  while (!current.empty()) {
    levels.emplace_back();
    LevelData& ld = levels.back();
    std::vector<Range> next;
    for (const Range& r : current) {
      ++ld.node_count;
      bool first = true;
      uint32_t lo = r.lo;
      MET_DCHECK(keys[lo].size() >= depth);
      if (keys[lo].size() == depth) {
        // The path to this node is itself a stored key: 0xFF marker.
        ld.labels.push_back(0xFF);
        ld.has_child.push_back(false);
        ld.louds.push_back(true);
        ld.is_marker.push_back(true);
        ld.value_key_index.push_back(lo);
        first = false;
        ++lo;
      }
      uint32_t i = lo;
      while (i < r.hi) {
        uint8_t b = static_cast<uint8_t>(keys[i][depth]);
        uint32_t j = i + 1;
        while (j < r.hi && static_cast<uint8_t>(keys[j][depth]) == b) ++j;
        bool terminal =
            (j - i == 1) && (truncate || keys[i].size() == depth + 1);
        ld.labels.push_back(b);
        ld.has_child.push_back(!terminal);
        ld.louds.push_back(first);
        ld.is_marker.push_back(false);
        first = false;
        if (terminal) {
          ld.value_key_index.push_back(i);
        } else {
          next.push_back({i, j});
        }
        i = j;
      }
    }
    current.swap(next);
    ++depth;
  }
  height_ = levels.size();

  // ---- Phase 2: choose the dense/sparse cutoff (Section 3.4). ----
  std::vector<uint64_t> dense_up_to(height_ + 1, 0), sparse_from(height_ + 1, 0);
  for (size_t l = 1; l <= height_; ++l)
    dense_up_to[l] = dense_up_to[l - 1] + levels[l - 1].node_count * 513;
  for (size_t l = height_; l-- > 0;)
    sparse_from[l] = sparse_from[l + 1] + levels[l].labels.size() * 10;

  size_t cutoff = 0;
  if (config.max_dense_levels >= 0) {
    cutoff = std::min<size_t>(config.max_dense_levels, height_);
  } else {
    for (size_t l = 0; l <= height_; ++l)
      if (dense_up_to[l] * config.size_ratio <= sparse_from[l]) cutoff = l;
  }
  dense_levels_ = cutoff;

  // ---- Phase 3: emit the LOUDS-DS encoding. ----
  d_labels_ = BitVector();
  d_has_child_ = BitVector();
  d_is_prefix_ = BitVector();
  s_labels_.clear();
  s_has_child_ = BitVector();
  s_louds_ = BitVector();
  values_.clear();
  level_node_start_.clear();

  num_nodes_ = 0;
  dense_node_count_ = 0;
  dense_child_count_ = 0;

  level_node_start_.reserve(height_ + 2);
  for (size_t l = 0; l < height_; ++l) {
    level_node_start_.push_back(num_nodes_);
    num_nodes_ += levels[l].node_count;
  }
  level_node_start_.push_back(num_nodes_);
  level_node_start_.push_back(num_nodes_);  // sentinel for one level past H

  std::vector<uint32_t> leaf_keys;    // key index per leaf id, level order
  std::vector<uint32_t> leaf_depths;  // stored-prefix length per leaf id

  // Dense levels: one 256-bit D-Labels/D-HasChild pair + one D-IsPrefixKey
  // bit per node. Prefix markers become IsPrefixKey bits, not labels.
  for (size_t l = 0; l < cutoff; ++l) {
    const LevelData& ld = levels[l];
    dense_node_count_ += ld.node_count;
    size_t vi = 0;  // cursor into value_key_index
    size_t li = 0;
    while (li < ld.labels.size()) {
      MET_DCHECK(ld.louds[li]);
      size_t bm_base = d_labels_.size();
      d_labels_.Extend(256);
      d_has_child_.Extend(256);
      bool prefix_key = false;
      do {
        if (ld.is_marker[li]) {
          prefix_key = true;
          leaf_keys.push_back(ld.value_key_index[vi++]);
          leaf_depths.push_back(static_cast<uint32_t>(l));
        } else {
          d_labels_.Set(bm_base + ld.labels[li]);
          if (ld.has_child[li]) {
            d_has_child_.Set(bm_base + ld.labels[li]);
            ++dense_child_count_;
          } else {
            leaf_keys.push_back(ld.value_key_index[vi++]);
            leaf_depths.push_back(static_cast<uint32_t>(l + 1));
          }
        }
        ++li;
      } while (li < ld.labels.size() && !ld.louds[li]);
      d_is_prefix_.PushBack(prefix_key);
    }
    MET_DCHECK(vi == ld.value_key_index.size());
  }
  dense_value_count_ = leaf_keys.size();

  // Sparse levels: byte/bit sequences in level order; markers stay as 0xFF.
  for (size_t l = cutoff; l < height_; ++l) {
    const LevelData& ld = levels[l];
    size_t vi = 0;
    for (size_t li = 0; li < ld.labels.size(); ++li) {
      s_labels_.push_back(ld.labels[li]);
      s_has_child_.PushBack(ld.has_child[li]);
      s_louds_.PushBack(ld.louds[li]);
      if (!ld.has_child[li]) {
        leaf_keys.push_back(ld.value_key_index[vi++]);
        leaf_depths.push_back(
            static_cast<uint32_t>(ld.is_marker[li] ? l : l + 1));
      }
    }
    MET_DCHECK(vi == ld.value_key_index.size());
  }
  num_s_labels_ = s_labels_.size();
  s_labels_.resize(num_s_labels_ + 16, 0);  // SIMD slack
  s_labels_.shrink_to_fit();

  if (config.store_values && !values.empty()) {
    values_.resize(leaf_keys.size());
    for (size_t i = 0; i < leaf_keys.size(); ++i)
      values_[i] = values[leaf_keys[i]];
  }
  if (leaf_key_index != nullptr) *leaf_key_index = leaf_keys;
  if (leaf_depth != nullptr) *leaf_depth = std::move(leaf_depths);
  num_leaves_ = leaf_keys.size();

  // ---- Phase 4: rank & select supports. ----
  if (config.fast_rank) {
    d_labels_rank_.Build(&d_labels_, 64);
    d_has_child_rank_.Build(&d_has_child_, 64);
    d_is_prefix_rank_.Build(&d_is_prefix_, 512);
    s_has_child_rank_.Build(&s_has_child_, 512);
    s_louds_rank_.Build(&s_louds_, 512);
  } else {
    d_labels_poppy_.Build(&d_labels_);
    d_has_child_poppy_.Build(&d_has_child_);
    d_is_prefix_poppy_.Build(&d_is_prefix_);
    s_has_child_poppy_.Build(&s_has_child_);
    s_louds_poppy_.Build(&s_louds_);
  }
  if (config.fast_select && s_louds_.size() > 0) s_louds_select_.Build(&s_louds_, 64);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

size_t Fst::SelectLouds(size_t rank) const {
  if (config_.fast_select) return s_louds_select_.Select1(rank);
  // Baseline: binary search over rank (what generic succinct libraries do
  // when no select index is built).
  size_t lo = 0, hi = s_louds_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    size_t r = config_.fast_rank ? s_louds_rank_.Rank1(mid)
                                 : s_louds_poppy_.Rank1(mid);
    if (r < rank)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

size_t Fst::SparseNodeEnd(size_t start) const {
  return s_louds_.NextSetBit(start + 1);
}

size_t Fst::DenseValuePos(size_t pos) const {
  return DenseRankLabels(pos) - DenseRankHasChild(pos) +
         (config_.fast_rank ? d_is_prefix_rank_.Rank1(pos / 256)
                            : d_is_prefix_poppy_.Rank1(pos / 256)) -
         1;
}

size_t Fst::DensePrefixValuePos(size_t m) const {
  size_t labels_before = m > 0 ? DenseRankLabels(m * 256 - 1) : 0;
  size_t children_before = m > 0 ? DenseRankHasChild(m * 256 - 1) : 0;
  size_t prefixes = config_.fast_rank ? d_is_prefix_rank_.Rank1(m)
                                      : d_is_prefix_poppy_.Rank1(m);
  return labels_before - children_before + prefixes - 1;
}

size_t Fst::SearchLabel(size_t start, size_t end, uint8_t byte) const {
#ifdef MET_USE_SSE2
  // SIMD pays off on wide nodes; >90% of nodes are tiny (Section 3.6) and a
  // short byte loop wins there, so the vector path engages above 8 labels.
  if (config_.simd_label_search && end - start > 8) {
    // The label vector has 16 bytes of slack, so an unaligned 16-byte load
    // at any logical position is safe; mask off bytes past `end`.
    const __m128i needle = _mm_set1_epi8(static_cast<char>(byte));
    for (size_t i = start; i < end; i += 16) {
      __m128i hay =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(&s_labels_[i]));
      int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(hay, needle));
      size_t chunk = end - i;
      if (chunk < 16) mask &= (1 << chunk) - 1;
      if (mask != 0) return i + __builtin_ctz(mask);
    }
    return end;
  }
#endif
  for (size_t i = start; i < end; ++i)
    if (s_labels_[i] == byte) return i;
  return end;
}

// ---------------------------------------------------------------------------
// Point lookup (Algorithm 1)
// ---------------------------------------------------------------------------

Fst::PathResult Fst::LookupPath(std::string_view key) const {
  PathResult res;
  if (num_leaves_ == 0) return res;
  size_t node = 0;  // global node number
  size_t level = 0;

  while (level < dense_levels_) {
    size_t m = node;
    if (level == key.size()) {
      if (d_is_prefix_.Get(m)) {
        res.found = true;
        res.leaf_id = static_cast<uint32_t>(DensePrefixValuePos(m));
        res.depth = static_cast<uint32_t>(level);
        res.is_prefix_leaf = true;
      }
      return res;
    }
    size_t pos = m * 256 + static_cast<uint8_t>(key[level]);
    if (config_.prefetch)
      __builtin_prefetch(d_has_child_.data() + pos / 64);
    if (!d_labels_.Get(pos)) return res;
    if (!d_has_child_.Get(pos)) {
      res.found = true;
      res.leaf_id = static_cast<uint32_t>(DenseValuePos(pos));
      res.depth = static_cast<uint32_t>(level + 1);
      return res;
    }
    node = DenseChildNodeNum(pos);
    ++level;
    if (node >= dense_node_count_) break;
  }

  // Sparse levels.
  size_t local = node - dense_node_count_;
  size_t pos = SparseNodePos(local);
  size_t end = SparseNodeEnd(pos);
  while (true) {
    bool marker = SparseHasMarker(pos, end);
    if (level == key.size()) {
      if (marker) {
        res.found = true;
        res.leaf_id =
            static_cast<uint32_t>(dense_value_count_ + SparseValuePos(pos));
        res.depth = static_cast<uint32_t>(level);
        res.is_prefix_leaf = true;
      }
      return res;
    }
    uint8_t b = static_cast<uint8_t>(key[level]);
    size_t p = SearchLabel(pos + (marker ? 1 : 0), end, b);
    if (p == end) return res;
    if (config_.prefetch)
      __builtin_prefetch(s_has_child_.data() + p / 64);
    if (!s_has_child_.Get(p)) {
      res.found = true;
      res.leaf_id =
          static_cast<uint32_t>(dense_value_count_ + SparseValuePos(p));
      res.depth = static_cast<uint32_t>(level + 1);
      return res;
    }
    local = SparseChildNodeNum(p) - dense_node_count_;
    pos = SparseNodePos(local);
    end = SparseNodeEnd(pos);
    ++level;
  }
}

bool Fst::Lookup(std::string_view key, uint64_t* value) const {
  MET_OBS_DEBUG_COUNT("fst.find.calls");
  PathResult res = LookupPath(key);
  if (!res.found) return false;
  // In full-key mode a terminal at depth d means the stored key has exactly
  // d bytes; reject lookups of longer keys that merely pass through.
  if (config_.mode == FstConfig::Mode::kFullKey && res.depth != key.size())
    return false;
  if (value != nullptr && !values_.empty()) *value = values_[res.leaf_id];
  return true;
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

void Fst::Iterator::ComputeLeafId() {
  const LevelCursor& top = stack_.back();
  if (top.dense) {
    leaf_id_ = at_prefix_
                   ? static_cast<uint32_t>(fst_->DensePrefixValuePos(top.pos / 256))
                   : static_cast<uint32_t>(fst_->DenseValuePos(top.pos));
  } else {
    leaf_id_ = static_cast<uint32_t>(fst_->dense_value_count_ +
                                     fst_->SparseValuePos(top.pos));
  }
}

void Fst::DescendToMin(Iterator* it, size_t node_num) const {
  size_t node = node_num;
  while (true) {
    if (node < dense_node_count_) {
      size_t m = node;
      if (d_is_prefix_.Get(m)) {
        it->stack_.push_back({static_cast<uint32_t>(m * 256), true});
        it->at_prefix_ = true;
        it->ComputeLeafId();
        return;
      }
      size_t pos = d_labels_.NextSetBit(m * 256);
      MET_DCHECK(pos < (m + 1) * 256);
      it->stack_.push_back({static_cast<uint32_t>(pos), true});
      it->key_.push_back(static_cast<char>(pos % 256));
      if (!d_has_child_.Get(pos)) {
        it->at_prefix_ = false;
        it->ComputeLeafId();
        return;
      }
      node = DenseChildNodeNum(pos);
    } else {
      size_t local = node - dense_node_count_;
      size_t pos = SparseNodePos(local);
      size_t end = SparseNodeEnd(pos);
      it->stack_.push_back({static_cast<uint32_t>(pos), false});
      if (SparseHasMarker(pos, end)) {
        it->at_prefix_ = true;
        it->ComputeLeafId();
        return;
      }
      it->key_.push_back(static_cast<char>(s_labels_[pos]));
      if (!s_has_child_.Get(pos)) {
        it->at_prefix_ = false;
        it->ComputeLeafId();
        return;
      }
      node = SparseChildNodeNum(pos);
    }
  }
}

/// Advances the top cursor to the next label within its node. Returns false
/// if the node is exhausted. Fixes the trailing key byte.
bool Fst::AdvanceCursor(Iterator* it) const {
  Iterator::LevelCursor& top = it->stack_.back();
  if (top.dense) {
    size_t node_end = (top.pos / 256 + 1) * 256;
    size_t next = d_labels_.NextSetBit(top.pos + 1);
    if (next >= node_end) return false;
    top.pos = static_cast<uint32_t>(next);
    it->key_.back() = static_cast<char>(next % 256);
    return true;
  }
  size_t next = top.pos + 1;
  if (next >= num_s_labels_ || s_louds_.Get(next)) return false;
  top.pos = static_cast<uint32_t>(next);
  it->key_.back() = static_cast<char>(s_labels_[next]);
  return true;
}

/// After the top cursor moved onto a (possibly new) label: descend if it has
/// a child, otherwise it is the new leaf.
void Fst::CursorDescendOrLeaf(Iterator* it) const {
  const Iterator::LevelCursor& top = it->stack_.back();
  bool has_child =
      top.dense ? d_has_child_.Get(top.pos) : s_has_child_.Get(top.pos);
  if (!has_child) {
    it->at_prefix_ = false;
    it->ComputeLeafId();
    return;
  }
  size_t child = top.dense ? DenseChildNodeNum(top.pos)
                           : SparseChildNodeNum(top.pos);
  DescendToMin(it, child);
}

void Fst::Iterator::Next() {
  if (!valid_) return;
  const Fst* f = fst_;
  if (at_prefix_) {
    // Move from the node's prefix-key to its first real label.
    LevelCursor& top = stack_.back();
    at_prefix_ = false;
    if (top.dense) {
      size_t m = top.pos / 256;
      size_t pos = f->d_labels_.NextSetBit(m * 256);
      MET_DCHECK(pos < (m + 1) * 256);
      top.pos = static_cast<uint32_t>(pos);
      key_.push_back(static_cast<char>(pos % 256));
    } else {
      top.pos += 1;  // marker is at node start; a real label follows
      key_.push_back(static_cast<char>(f->s_labels_[top.pos]));
    }
    f->CursorDescendOrLeaf(this);
    return;
  }
  while (!stack_.empty()) {
    if (f->AdvanceCursor(this)) {
      f->CursorDescendOrLeaf(this);
      return;
    }
    stack_.pop_back();
    key_.pop_back();
  }
  valid_ = false;
}

Fst::Iterator Fst::Begin() const {
  Iterator it;
  it.fst_ = this;
  if (num_leaves_ == 0) return it;
  it.valid_ = true;
  DescendToMin(&it, 0);
  return it;
}

Fst::Iterator Fst::LowerBound(std::string_view key, bool* fp_flag) const {
  MET_OBS_DEBUG_COUNT("fst.lower_bound.calls");
  if (fp_flag != nullptr) *fp_flag = false;
  Iterator it;
  it.fst_ = this;
  if (num_leaves_ == 0) return it;
  it.valid_ = true;

  size_t node = 0;
  size_t level = 0;
  while (true) {
    if (node < dense_node_count_) {
      size_t m = node;
      if (level == key.size()) {
        DescendToMin(&it, m);
        return it;
      }
      uint8_t b = static_cast<uint8_t>(key[level]);
      size_t pos = m * 256 + b;
      if (d_labels_.Get(pos)) {
        it.stack_.push_back({static_cast<uint32_t>(pos), true});
        it.key_.push_back(static_cast<char>(b));
        if (d_has_child_.Get(pos)) {
          node = DenseChildNodeNum(pos);
          ++level;
          continue;
        }
        // Terminal: stored path == key[0..level+1).
        it.at_prefix_ = false;
        it.ComputeLeafId();
        bool strict_prefix = level + 1 < key.size();
        if (strict_prefix) {
          if (fp_flag != nullptr)
            *fp_flag = true;
          else
            it.Next();  // index semantics: path < key, skip
        }
        return it;
      }
      // Smallest label greater than b within the node.
      size_t next = d_labels_.NextSetBit(pos + 1);
      if (next < (m + 1) * 256) {
        it.stack_.push_back({static_cast<uint32_t>(next), true});
        it.key_.push_back(static_cast<char>(next % 256));
        CursorDescendOrLeaf(&it);
        return it;
      }
      AdvanceUp(&it);
      return it;
    }

    size_t local = node - dense_node_count_;
    size_t pos = SparseNodePos(local);
    size_t end = SparseNodeEnd(pos);
    bool marker = SparseHasMarker(pos, end);
    if (level == key.size()) {
      DescendToMin(&it, node);
      return it;
    }
    uint8_t b = static_cast<uint8_t>(key[level]);
    // Real labels are sorted ascending in [pos + marker, end).
    size_t p = pos + (marker ? 1 : 0);
    while (p < end && s_labels_[p] < b) ++p;
    if (p < end && s_labels_[p] == b) {
      it.stack_.push_back({static_cast<uint32_t>(p), false});
      it.key_.push_back(static_cast<char>(b));
      if (s_has_child_.Get(p)) {
        node = SparseChildNodeNum(p);
        ++level;
        continue;
      }
      it.at_prefix_ = false;
      it.ComputeLeafId();
      bool strict_prefix = level + 1 < key.size();
      if (strict_prefix) {
        if (fp_flag != nullptr)
          *fp_flag = true;
        else
          it.Next();
      }
      return it;
    }
    if (p < end) {  // label > b: everything below is > key
      it.stack_.push_back({static_cast<uint32_t>(p), false});
      it.key_.push_back(static_cast<char>(s_labels_[p]));
      CursorDescendOrLeaf(&it);
      return it;
    }
    AdvanceUp(&it);
    return it;
  }
}

void Fst::AdvanceUp(Iterator* it) const {
  while (!it->stack_.empty()) {
    if (AdvanceCursor(it)) {
      CursorDescendOrLeaf(it);
      return;
    }
    it->stack_.pop_back();
    it->key_.pop_back();
  }
  it->valid_ = false;
}

// ---------------------------------------------------------------------------
// CountRange
// ---------------------------------------------------------------------------
//
// Counts are computed per the thesis: extend per-level frontiers for both
// boundary keys and take rank differences of the value sequences, so a count
// costs O(height) rank operations rather than an O(result) scan.

uint64_t Fst::CountDenseLevelBefore(size_t l, uint64_t pos, bool include_marker,
                                    bool include_pos_value) const {
  uint64_t level_start = level_node_start_[l] * 256;
  uint64_t m = pos / 256;
  // Rank-based label/child counts within [level_start, pos).
  auto rank_labels = [&](uint64_t p) -> uint64_t {
    return p == 0 ? 0 : DenseRankLabels(p - 1);
  };
  auto rank_children = [&](uint64_t p) -> uint64_t {
    return p == 0 ? 0 : DenseRankHasChild(p - 1);
  };
  uint64_t labels_before = rank_labels(pos) - rank_labels(level_start);
  uint64_t children_before = rank_children(pos) - rank_children(level_start);
  // Markers among nodes < node_count.
  auto rank_prefix = [&](uint64_t node_count) -> uint64_t {
    return node_count == 0
               ? 0
               : (config_.fast_rank ? d_is_prefix_rank_.Rank1(node_count - 1)
                                    : d_is_prefix_poppy_.Rank1(node_count - 1));
  };
  uint64_t markers = rank_prefix(m) - rank_prefix(level_node_start_[l]);
  if (include_marker && m < dense_node_count_ && d_is_prefix_.Get(m)) ++markers;
  return labels_before - children_before + markers +
         (include_pos_value ? 1 : 0);
}

uint64_t Fst::CountSparseLevelBefore(size_t l, uint64_t pos,
                                     bool include_pos_value) const {
  bool dummy;
  uint64_t level_start = NodeStartPos(level_node_start_[l], &dummy);
  auto rank_children = [&](uint64_t p) {
    return p == 0 ? 0 : SparseRankHasChild(p - 1);
  };
  uint64_t labels_before = pos - level_start;
  uint64_t children_before = rank_children(pos) - rank_children(level_start);
  return labels_before - children_before + (include_pos_value ? 1 : 0);
}

uint64_t Fst::NodeStartPos(uint64_t node, bool* dense) const {
  if (node < dense_node_count_) {
    *dense = true;
    return node * 256;
  }
  *dense = false;
  uint64_t local = node - dense_node_count_;
  uint64_t sparse_nodes = num_nodes_ - dense_node_count_;
  if (local >= sparse_nodes) return num_s_labels_;
  return SparseNodePos(local);
}

void Fst::ComputeFrontier(std::string_view key,
                          std::vector<uint64_t>* counts) const {
  counts->assign(height_, 0);
  if (num_leaves_ == 0) return;

  size_t node = 0;
  size_t level = 0;
  uint64_t stop_pos = 0;
  size_t stop_level = 0;

  while (true) {
    bool is_dense = node < dense_node_count_;
    if (is_dense) {
      size_t m = node;
      if (level == key.size()) {
        // Everything in this subtree (marker included) sorts >= key.
        (*counts)[level] = CountDenseLevelBefore(level, m * 256, false, false);
        stop_pos = m * 256;
        stop_level = level;
        break;
      }
      uint8_t b = static_cast<uint8_t>(key[level]);
      uint64_t pos = m * 256 + b;
      if (!d_labels_.Get(pos)) {
        (*counts)[level] = CountDenseLevelBefore(level, pos, true, false);
        stop_pos = pos;
        stop_level = level;
        break;
      }
      if (!d_has_child_.Get(pos)) {
        bool strict_prefix = level + 1 < key.size();
        (*counts)[level] =
            CountDenseLevelBefore(level, pos, true, strict_prefix);
        stop_pos = pos;
        stop_level = level;
        break;
      }
      (*counts)[level] = CountDenseLevelBefore(level, pos, true, false);
      node = DenseChildNodeNum(pos);
      ++level;
    } else {
      size_t local = node - dense_node_count_;
      uint64_t pos = SparseNodePos(local);
      uint64_t end = SparseNodeEnd(pos);
      bool marker = SparseHasMarker(pos, end);
      if (level == key.size()) {
        (*counts)[level] = CountSparseLevelBefore(level, pos, false);
        stop_pos = pos;
        stop_level = level;
        break;
      }
      uint8_t b = static_cast<uint8_t>(key[level]);
      uint64_t p = pos + (marker ? 1 : 0);
      while (p < end && s_labels_[p] < b) ++p;
      if (p == end || s_labels_[p] != b) {
        (*counts)[level] = CountSparseLevelBefore(level, p, false);
        stop_pos = p;
        stop_level = level;
        break;
      }
      if (!s_has_child_.Get(p)) {
        bool strict_prefix = level + 1 < key.size();
        (*counts)[level] = CountSparseLevelBefore(level, p, strict_prefix);
        stop_pos = p;
        stop_level = level;
        break;
      }
      (*counts)[level] = CountSparseLevelBefore(level, p, false);
      node = SparseChildNodeNum(p);
      ++level;
    }
  }

  // Extend the frontier to deeper levels: the next subtree boundary is the
  // child of the first has-child branch at-or-after the stop position,
  // clamped to the level bounds.
  uint64_t q = stop_pos;
  for (size_t l = stop_level; l + 1 < height_; ++l) {
    bool is_dense_level = l < dense_levels_;
    uint64_t children_before;
    if (is_dense_level) {
      children_before = q == 0 ? 0 : DenseRankHasChild(q - 1);
    } else {
      children_before =
          dense_child_count_ + (q == 0 ? 0 : SparseRankHasChild(q - 1));
    }
    uint64_t child_node = children_before + 1;
    uint64_t clamp = level_node_start_[l + 2];
    if (child_node > clamp) child_node = clamp;
    // Express the child-node boundary in level l+1's own coordinate space
    // (a clamped boundary node may itself live past the dense/sparse split).
    if (l + 1 < dense_levels_) {
      q = child_node * 256;
      (*counts)[l + 1] = CountDenseLevelBefore(l + 1, q, false, false);
    } else {
      uint64_t local = child_node - dense_node_count_;
      uint64_t sparse_nodes = num_nodes_ - dense_node_count_;
      q = local >= sparse_nodes ? num_s_labels_ : SparseNodePos(local);
      (*counts)[l + 1] = CountSparseLevelBefore(l + 1, q, false);
    }
  }
}

uint64_t Fst::CountRange(std::string_view low_key,
                         std::string_view high_key) const {
  if (num_leaves_ == 0 || high_key <= low_key) return 0;
  std::vector<uint64_t> clo, chi;
  ComputeFrontier(low_key, &clo);
  ComputeFrontier(high_key, &chi);
  uint64_t lo = 0, hi = 0;
  for (size_t l = 0; l < height_; ++l) {
    lo += clo[l];
    hi += chi[l];
  }
  return hi > lo ? hi - lo : 0;
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

size_t Fst::FilterMemoryBytes() const {
  size_t bytes = d_labels_.MemoryBytes() + d_has_child_.MemoryBytes() +
                 d_is_prefix_.MemoryBytes() + s_labels_.capacity() +
                 s_has_child_.MemoryBytes() + s_louds_.MemoryBytes();
  if (config_.fast_rank) {
    bytes += d_labels_rank_.MemoryBytes() + d_has_child_rank_.MemoryBytes() +
             d_is_prefix_rank_.MemoryBytes() + s_has_child_rank_.MemoryBytes() +
             s_louds_rank_.MemoryBytes();
  } else {
    bytes += d_labels_poppy_.MemoryBytes() + d_has_child_poppy_.MemoryBytes() +
             d_is_prefix_poppy_.MemoryBytes() +
             s_has_child_poppy_.MemoryBytes() + s_louds_poppy_.MemoryBytes();
  }
  if (config_.fast_select) bytes += s_louds_select_.MemoryBytes();
  return bytes;
}

size_t Fst::MemoryBytes() const {
  return FilterMemoryBytes() + values_.capacity() * sizeof(uint64_t);
}

// Same terms as FilterMemoryBytes(), attributed per encoding component.
MemoryBreakdown Fst::FilterBreakdown() const {
  MemoryBreakdown b("fst_filter");
  MemoryBreakdown& dense = b.Add("louds_dense");
  dense.Add("labels", d_labels_.MemoryBytes());
  dense.Add("has_child", d_has_child_.MemoryBytes());
  dense.Add("is_prefix", d_is_prefix_.MemoryBytes());
  MemoryBreakdown& sparse = b.Add("louds_sparse");
  sparse.Add("labels", s_labels_.capacity());
  sparse.Add("has_child", s_has_child_.MemoryBytes());
  sparse.Add("louds", s_louds_.MemoryBytes());
  MemoryBreakdown& rank = b.Add("rank_support");
  if (config_.fast_rank) {
    rank.Add("d_labels", d_labels_rank_.MemoryBytes());
    rank.Add("d_has_child", d_has_child_rank_.MemoryBytes());
    rank.Add("d_is_prefix", d_is_prefix_rank_.MemoryBytes());
    rank.Add("s_has_child", s_has_child_rank_.MemoryBytes());
    rank.Add("s_louds", s_louds_rank_.MemoryBytes());
  } else {
    rank.Add("d_labels", d_labels_poppy_.MemoryBytes());
    rank.Add("d_has_child", d_has_child_poppy_.MemoryBytes());
    rank.Add("d_is_prefix", d_is_prefix_poppy_.MemoryBytes());
    rank.Add("s_has_child", s_has_child_poppy_.MemoryBytes());
    rank.Add("s_louds", s_louds_poppy_.MemoryBytes());
  }
  if (config_.fast_select)
    b.Add("select_support", s_louds_select_.MemoryBytes());
  return b;
}

MemoryBreakdown Fst::Breakdown() const {
  MemoryBreakdown b = FilterBreakdown();
  b.set_name("fst");
  b.Add("values", values_.capacity() * sizeof(uint64_t));
  return b;
}

}  // namespace met
