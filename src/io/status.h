// met::io::Status — error propagation for the fault-tolerant storage layer.
//
// Every I/O entry point returns a Status instead of asserting: callers decide
// whether to retry (transient() errors: interrupted syscalls, momentary
// resource exhaustion), degrade (Corruption: checksum mismatch, truncated
// file), or surface the failure. MET_ASSERT on I/O results is reserved for
// programming errors only (see DESIGN.md, "Durability & fault injection").
#ifndef MET_IO_STATUS_H_
#define MET_IO_STATUS_H_

#include <cerrno>
#include <string>
#include <string_view>
#include <utility>

namespace met::io {

enum class StatusCode : unsigned char {
  kOk = 0,
  kNotFound,         // file or key absent (not an error for optional state)
  kCorruption,       // checksum mismatch, truncated record, bad magic
  kIoError,          // syscall failure; errno_value() classifies it
  kInvalidArgument,  // bad fault spec, bad open mode, ...
};

/// [[nodiscard]] at class scope: a dropped Status return is a compile
/// warning (build break under -Werror) at every call site. Intentional
/// drops must say so with `(void)` and a comment.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg), 0);
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg), 0);
  }
  static Status IoError(std::string msg, int errno_value = 0) {
    return Status(StatusCode::kIoError, std::move(msg), errno_value);
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg), 0);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }

  StatusCode code() const { return code_; }
  int errno_value() const { return errno_; }
  const std::string& message() const { return message_; }

  /// True when retrying the same operation may succeed: the syscall was
  /// interrupted or a resource was momentarily exhausted. Everything else
  /// (corruption, EIO, EBADF, ...) is permanent for this operation.
  bool transient() const {
    if (code_ != StatusCode::kIoError) return false;
    switch (errno_) {
      case EINTR:
      case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
      case EWOULDBLOCK:
#endif
      case ENOSPC:  // space is routinely reclaimed (log rotation, GC)
      case EDQUOT:
      case EBUSY:
        return true;
      default:
        return false;
    }
  }

  /// True for transient errors that should be retried with no backoff at
  /// all (the syscall was merely interrupted; nothing needs time to clear).
  bool retry_immediately() const {
    return code_ == StatusCode::kIoError && errno_ == EINTR;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out;
    switch (code_) {
      case StatusCode::kNotFound: out = "NotFound"; break;
      case StatusCode::kCorruption: out = "Corruption"; break;
      case StatusCode::kIoError: out = "IoError"; break;
      case StatusCode::kInvalidArgument: out = "InvalidArgument"; break;
      default: out = "Unknown"; break;
    }
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    if (errno_ != 0) {
      out += " (errno ";
      out += std::to_string(errno_);
      out += ")";
    }
    return out;
  }

 private:
  Status(StatusCode code, std::string msg, int errno_value)
      : code_(code), errno_(errno_value), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  int errno_ = 0;
  std::string message_;
};

}  // namespace met::io

#endif  // MET_IO_STATUS_H_
