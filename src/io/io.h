// met::io — fault-tolerant file/environment abstraction for the storage layer.
//
// All LSM and anti-cache I/O goes through an io::Env so that (a) EINTR and
// short reads/writes are handled in exactly one place, (b) transient errors
// (EINTR/EAGAIN/ENOSPC/...) are retried with capped exponential backoff, and
// (c) tests and the crash-torture harness can substitute a deterministic
// fault-injecting environment (fault_env.h) for the real filesystem.
//
// Layering:
//   - File::*Once / Env virtuals are the raw, single-syscall-shaped surface a
//     backend implements. A "Once" op may legitimately transfer fewer bytes
//     than asked (short read/write) or fail transiently.
//   - File::ReadFull / WriteFull / AppendFull / SyncWithRetry are the
//     non-virtual policy layer every caller uses: they loop over short
//     transfers and retry transient errors per a RetryPolicy, bumping the
//     met.io.retries / met.io.errors counters.
//
// Retry semantics worth knowing: a partial transfer counts as progress and
// resets the backoff clock; EINTR retries immediately (no sleep); the *Full
// helpers always report how many bytes actually landed, even on error, so an
// append-mode caller never re-sends bytes that already hit the file.
#ifndef MET_IO_IO_H_
#define MET_IO_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "io/status.h"
#include "obs/metrics.h"

namespace met::io {

/// Capped exponential backoff for transient errors. Attempt k (zero-based)
/// sleeps min(base_delay_us << k, max_delay_us) before retrying; EINTR skips
/// the sleep entirely. A partial transfer resets the attempt counter — only
/// consecutive zero-progress failures count against max_attempts.
struct RetryPolicy {
  int max_attempts = 5;
  uint64_t base_delay_us = 100;
  uint64_t max_delay_us = 100'000;

  uint64_t DelayForAttempt(int attempt) const {
    uint64_t d = base_delay_us;
    for (int i = 0; i < attempt && d < max_delay_us; ++i) d <<= 1;
    return d < max_delay_us ? d : max_delay_us;
  }
};

enum class OpenMode {
  kRead,       // O_RDONLY
  kWrite,      // O_WRONLY | O_CREAT | O_TRUNC
  kAppend,     // O_WRONLY | O_CREAT | O_APPEND
  kReadWrite,  // O_RDWR   | O_CREAT | O_TRUNC
};

/// Registry-backed counters for the I/O layer. Fetch once via Get(); the
/// pointers are stable for the process lifetime.
struct IoObsMetrics {
  obs::Counter* retries;          // met.io.retries
  obs::Counter* errors;           // met.io.errors
  obs::Counter* injected_faults;  // met.io.injected_faults (FaultyEnv only)
  obs::Gauge* open_fds;           // met.io.open_fds (PosixEnv fd budget)

  static const IoObsMetrics& Get();
};

class Env;  // forward

class File {
 public:
  virtual ~File() = default;

  // ---- raw surface (implemented by backends; may short-transfer) ----

  /// Reads up to n bytes at offset; *got is the byte count actually read
  /// (0 at EOF). A short read is success, not an error.
  virtual Status PreadOnce(uint64_t offset, void* buf, size_t n,
                           size_t* got) = 0;

  /// Writes up to n bytes at offset; *put is the byte count actually
  /// written — meaningful even when the returned Status is an error
  /// (a backend may land a prefix and then fail).
  virtual Status PwriteOnce(uint64_t offset, const void* buf, size_t n,
                            size_t* put) = 0;

  /// Appends up to n bytes at the end of the file; *put as for PwriteOnce.
  virtual Status AppendOnce(const void* buf, size_t n, size_t* put) = 0;

  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual Status Size(uint64_t* size) = 0;

  // ---- policy layer (what callers use) ----

  /// Reads exactly n bytes at offset, looping over short reads and retrying
  /// transient errors. EOF before n bytes is Corruption ("short read").
  Status ReadFull(uint64_t offset, void* buf, size_t n,
                  const RetryPolicy& policy = RetryPolicy());

  /// Writes all of data at offset, looping + retrying as above.
  Status WriteFull(uint64_t offset, std::string_view data,
                   const RetryPolicy& policy = RetryPolicy());

  /// Appends all of data, looping + retrying. On error, *appended (if
  /// non-null) reports how many leading bytes reached the file, so callers
  /// keeping a logical offset (WAL, anti-cache log) stay in sync with disk.
  Status AppendFull(std::string_view data,
                    const RetryPolicy& policy = RetryPolicy(),
                    size_t* appended = nullptr);

  /// Sync with transient-error retry.
  Status SyncWithRetry(const RetryPolicy& policy = RetryPolicy());

 protected:
  /// Set by backend constructors so the policy layer can honour the owning
  /// environment's sleep hook (fault/test envs do not really sleep).
  Env* env_ = nullptr;
};

class Env {
 public:
  virtual ~Env() = default;

  /// The real filesystem. Process-wide singleton; never destroyed.
  static Env& Posix();

  virtual Status NewFile(const std::string& path, OpenMode mode,
                         std::unique_ptr<File>* out) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Remove(const std::string& path) = 0;
  /// Creates the directory; an already-existing directory is OK.
  virtual Status MkDir(const std::string& path) = 0;
  /// Plain entry names (no "."/".."), unsorted.
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* entries) = 0;
  /// fsync the directory itself (makes renames/creates in it durable).
  virtual Status SyncDir(const std::string& path) = 0;
  virtual Status FileSize(const std::string& path, uint64_t* size) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// Backoff sleep hook; fault/test envs override this to a no-op so
  /// retry-heavy tests stay fast and deterministic.
  virtual void SleepMicros(uint64_t micros);

  // ---- convenience (non-virtual, built on the above) ----

  Status ReadFileToString(const std::string& path, std::string* out);
  Status WriteStringToFile(const std::string& path, std::string_view data,
                           bool sync);
  /// Durable atomic replace: write `path.tmp`, fsync, rename over `path`,
  /// fsync the containing directory.
  Status AtomicWriteFile(const std::string& path, std::string_view data);
};

/// Removes every regular file in dir (ignores errors per entry); used by
/// tests and the torture tool to reset scratch directories.
void RemoveAllFiles(Env& env, const std::string& dir);

}  // namespace met::io

#endif  // MET_IO_IO_H_
