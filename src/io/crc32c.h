// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Used as the per-block SSTable trailer checksum and for WAL/MANIFEST record
// integrity. Software slicing-by-4 with constexpr-generated tables — the
// build only enables -msse2, so the SSE4.2 crc32 instruction is not assumed.
// Known-answer vector: Crc32c("123456789") == 0xE3069283.
#ifndef MET_IO_CRC32C_H_
#define MET_IO_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace met::io {

namespace crc32c_detail {

inline constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

constexpr std::array<std::array<uint32_t, 256>, 4> MakeTables() {
  std::array<std::array<uint32_t, 256>, 4> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
    t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
    t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
  }
  return t;
}

inline constexpr auto kTables = MakeTables();

}  // namespace crc32c_detail

/// Incremental CRC32C: pass the previous return value as `init` to extend a
/// running checksum across multiple buffers. `init = 0` starts a fresh sum.
inline uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0) {
  const auto& t = crc32c_detail::kTables;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~init;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

inline uint32_t Crc32c(std::string_view s, uint32_t init = 0) {
  return Crc32c(s.data(), s.size(), init);
}

}  // namespace met::io

#endif  // MET_IO_CRC32C_H_
