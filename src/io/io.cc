// met::io implementation: the retry/short-transfer policy layer shared by all
// backends, plus the PosixEnv/PosixFile backend over real syscalls.

#include "io/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

namespace met::io {

const IoObsMetrics& IoObsMetrics::Get() {
  static const IoObsMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    IoObsMetrics r;
    r.retries = reg.GetCounter("met.io.retries");
    r.errors = reg.GetCounter("met.io.errors");
    r.injected_faults = reg.GetCounter("met.io.injected_faults");
    r.open_fds = reg.GetGauge("met.io.open_fds");
    return r;
  }();
  return m;
}

namespace {

/// Shared retry loop. `op(got_or_put)` performs one raw transfer attempt and
/// reports progress; the loop retries transient failures with backoff and
/// treats any progress as a reset of the consecutive-failure budget.
/// Returns the first non-transient (or budget-exhausting) error.
template <typename OnceOp>
Status RetryLoop(Env* env, const RetryPolicy& policy, size_t total,
                 bool eof_is_corruption, OnceOp&& op) {
  const IoObsMetrics& obs = IoObsMetrics::Get();
  size_t done = 0;
  int attempts = 0;
  while (done < total) {
    size_t moved = 0;
    Status s = op(done, &moved);
    done += moved;  // progress counts even when s is an error (append safety)
    if (s.ok()) {
      if (moved == 0) {
        if (eof_is_corruption) {
          obs.errors->Increment();
          return Status::Corruption("short read: unexpected end of file");
        }
        // A zero-byte successful write would spin forever; treat as error.
        obs.errors->Increment();
        return Status::IoError("write made no progress");
      }
      attempts = 0;
      continue;
    }
    if (moved > 0) attempts = 0;
    if (!s.transient() || ++attempts >= policy.max_attempts) {
      obs.errors->Increment();
      return s;
    }
    obs.retries->Increment();
    if (!s.retry_immediately() && env != nullptr) {
      env->SleepMicros(policy.DelayForAttempt(attempts - 1));
    }
  }
  return Status::OK();
}

}  // namespace

Status File::ReadFull(uint64_t offset, void* buf, size_t n,
                      const RetryPolicy& policy) {
  auto* p = static_cast<char*>(buf);
  return RetryLoop(env_, policy, n, /*eof_is_corruption=*/true,
                   [&](size_t done, size_t* moved) {
                     return PreadOnce(offset + done, p + done, n - done, moved);
                   });
}

Status File::WriteFull(uint64_t offset, std::string_view data,
                       const RetryPolicy& policy) {
  return RetryLoop(env_, policy, data.size(), /*eof_is_corruption=*/false,
                   [&](size_t done, size_t* moved) {
                     return PwriteOnce(offset + done, data.data() + done,
                                       data.size() - done, moved);
                   });
}

Status File::AppendFull(std::string_view data, const RetryPolicy& policy,
                        size_t* appended) {
  size_t landed = 0;
  Status s = RetryLoop(env_, policy, data.size(), /*eof_is_corruption=*/false,
                       [&](size_t done, size_t* moved) {
                         Status r = AppendOnce(data.data() + done,
                                               data.size() - done, moved);
                         landed = done + *moved;
                         return r;
                       });
  if (appended != nullptr) *appended = s.ok() ? data.size() : landed;
  return s;
}

Status File::SyncWithRetry(const RetryPolicy& policy) {
  const IoObsMetrics& obs = IoObsMetrics::Get();
  int attempts = 0;
  while (true) {
    Status s = Sync();
    if (s.ok()) return s;
    if (!s.transient() || ++attempts >= policy.max_attempts) {
      obs.errors->Increment();
      return s;
    }
    obs.retries->Increment();
    if (!s.retry_immediately() && env_ != nullptr) {
      env_->SleepMicros(policy.DelayForAttempt(attempts - 1));
    }
  }
}

void Env::SleepMicros(uint64_t micros) {
  if (micros == 0) return;
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(micros / 1'000'000);
  ts.tv_nsec = static_cast<long>((micros % 1'000'000) * 1'000);
  ::nanosleep(&ts, nullptr);
}

// ---------------------------------------------------------------------------
// Posix backend
// ---------------------------------------------------------------------------

namespace {

class PosixFile final : public File {
 public:
  PosixFile(Env* env, int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {
    env_ = env;
    IoObsMetrics::Get().open_fds->Add(1);
  }

  ~PosixFile() override { (void)Close(); }

  Status PreadOnce(uint64_t offset, void* buf, size_t n,
                   size_t* got) override {
    *got = 0;
    ssize_t r;
    do {
      r = ::pread(fd_, buf, n, static_cast<off_t>(offset));
    } while (r < 0 && errno == EINTR);
    if (r < 0) return Status::IoError("pread " + path_, errno);
    *got = static_cast<size_t>(r);
    return Status::OK();
  }

  Status PwriteOnce(uint64_t offset, const void* buf, size_t n,
                    size_t* put) override {
    *put = 0;
    ssize_t r;
    do {
      r = ::pwrite(fd_, buf, n, static_cast<off_t>(offset));
    } while (r < 0 && errno == EINTR);
    if (r < 0) return Status::IoError("pwrite " + path_, errno);
    *put = static_cast<size_t>(r);
    return Status::OK();
  }

  Status AppendOnce(const void* buf, size_t n, size_t* put) override {
    // Append = pwrite at the current end of file, not at the fd's seek
    // position: WriteFull goes through pwrite and never moves the seek
    // pointer, so a positional ::write here would clobber earlier random
    // writes on the same handle. (Under O_APPEND, pwrite appends anyway.)
    *put = 0;
    struct stat st;
    if (::fstat(fd_, &st) != 0) return Status::IoError("fstat " + path_, errno);
    ssize_t r;
    do {
      r = ::pwrite(fd_, buf, n, st.st_size);
    } while (r < 0 && errno == EINTR);
    if (r < 0) return Status::IoError("write " + path_, errno);
    *put = static_cast<size_t>(r);
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Status::IoError("fsync " + path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    IoObsMetrics::Get().open_fds->Sub(1);
    if (::close(fd) != 0) return Status::IoError("close " + path_, errno);
    return Status::OK();
  }

  Status Size(uint64_t* size) override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return Status::IoError("fstat " + path_, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

int OpenFlags(OpenMode mode) {
  switch (mode) {
    case OpenMode::kRead:
      return O_RDONLY | O_CLOEXEC;
    case OpenMode::kWrite:
      return O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC;
    case OpenMode::kAppend:
      return O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    case OpenMode::kReadWrite:
      return O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC;
  }
  return O_RDONLY | O_CLOEXEC;
}

class PosixEnv final : public Env {
 public:
  Status NewFile(const std::string& path, OpenMode mode,
                 std::unique_ptr<File>* out) override {
    int fd;
    do {
      fd = ::open(path.c_str(), OpenFlags(mode), 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("open " + path);
      return Status::IoError("open " + path, errno);
    }
    out->reset(new PosixFile(this, fd, path));
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("unlink " + path);
      return Status::IoError("unlink " + path, errno);
    }
    return Status::OK();
  }

  Status MkDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir " + path, errno);
    }
    return Status::OK();
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* entries) override {
    entries->clear();
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return Status::NotFound("opendir " + path);
      return Status::IoError("opendir " + path, errno);
    }
    while (struct dirent* e = ::readdir(d)) {
      std::string_view name = e->d_name;
      if (name == "." || name == "..") continue;
      entries->emplace_back(name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd;
    do {
      fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return Status::IoError("open dir " + path, errno);
    Status s;
    if (::fsync(fd) != 0) s = Status::IoError("fsync dir " + path, errno);
    ::close(fd);
    return s;
  }

  Status FileSize(const std::string& path, uint64_t* size) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("stat " + path);
      return Status::IoError("stat " + path, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

Env& Env::Posix() {
  static PosixEnv* env = new PosixEnv();  // leaked: usable during exit
  return *env;
}

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  std::unique_ptr<File> f;
  Status s = NewFile(path, OpenMode::kRead, &f);
  if (!s.ok()) return s;
  uint64_t size = 0;
  s = f->Size(&size);
  if (!s.ok()) return s;
  out->resize(size);
  if (size > 0) {
    s = f->ReadFull(0, out->data(), size);
    if (!s.ok()) return s;
  }
  return f->Close();
}

Status Env::WriteStringToFile(const std::string& path, std::string_view data,
                              bool sync) {
  std::unique_ptr<File> f;
  Status s = NewFile(path, OpenMode::kWrite, &f);
  if (!s.ok()) return s;
  s = f->WriteFull(0, data);
  if (s.ok() && sync) s = f->SyncWithRetry();
  Status close_s = f->Close();
  return s.ok() ? close_s : s;
}

Status Env::AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  Status s = WriteStringToFile(tmp, data, /*sync=*/true);
  if (!s.ok()) return s;
  s = Rename(tmp, path);
  if (!s.ok()) {
    (void)Remove(tmp);  // best-effort cleanup; the rename error is reported
    return s;
  }
  size_t slash = path.find_last_of('/');
  return SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

void RemoveAllFiles(Env& env, const std::string& dir) {
  std::vector<std::string> entries;
  if (!env.ListDir(dir, &entries).ok()) return;
  for (const std::string& e : entries) {
    (void)env.Remove(dir + "/" + e);  // best-effort sweep; helper is advisory
  }
}

}  // namespace met::io
