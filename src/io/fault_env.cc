// FaultyEnv implementation: spec parsing and the injection shim itself.

#include "io/fault_env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace met::io {

// ---------------------------------------------------------------------------
// FaultSpec
// ---------------------------------------------------------------------------

namespace {

bool ParseU64(std::string_view v, uint64_t* out) {
  if (v.empty()) return false;
  std::string buf(v);
  char* end = nullptr;
  errno = 0;
  unsigned long long x = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = x;
  return true;
}

bool ParseProb(std::string_view v, double* out) {
  if (v.empty()) return false;
  std::string buf(v);
  char* end = nullptr;
  errno = 0;
  double x = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (x < 0.0 || x > 1.0) return false;
  *out = x;
  return true;
}

}  // namespace

Status FaultSpec::Parse(std::string_view spec, FaultSpec* out) {
  *out = FaultSpec();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string_view pair = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault spec pair missing '=': " +
                                     std::string(pair));
    }
    std::string_view key = pair.substr(0, eq);
    std::string_view value = pair.substr(eq + 1);
    bool ok;
    if (key == "seed") {
      ok = ParseU64(value, &out->seed);
    } else if (key == "kill_after") {
      ok = ParseU64(value, &out->kill_after);
    } else if (key == "eintr") {
      ok = ParseProb(value, &out->eintr);
    } else if (key == "short") {
      ok = ParseProb(value, &out->short_rw);
    } else if (key == "enospc") {
      ok = ParseProb(value, &out->enospc);
    } else if (key == "fsync") {
      ok = ParseProb(value, &out->fsync_fail);
    } else if (key == "torn") {
      ok = ParseProb(value, &out->torn);
    } else if (key == "bitflip") {
      ok = ParseProb(value, &out->bitflip);
    } else {
      return Status::InvalidArgument("unknown fault spec key: " +
                                     std::string(key));
    }
    if (!ok) {
      return Status::InvalidArgument("bad fault spec value for '" +
                                     std::string(key) +
                                     "': " + std::string(value));
    }
  }
  return Status::OK();
}

FaultSpec FaultSpec::FromEnv() {
  FaultSpec spec;
  const char* s = std::getenv("MET_FAULT");
  if (s == nullptr || *s == '\0') return spec;
  Status st = Parse(s, &spec);
  if (!st.ok()) {
    std::fprintf(stderr, "met::io: ignoring MET_FAULT: %s\n",
                 st.ToString().c_str());
    return FaultSpec();
  }
  return spec;
}

std::string FaultSpec::ToString() const {
  char buf[256];
  std::string out = "seed=" + std::to_string(seed);
  auto add = [&](const char* key, double p) {
    if (p <= 0) return;
    std::snprintf(buf, sizeof(buf), ",%s=%g", key, p);
    out += buf;
  };
  add("eintr", eintr);
  add("short", short_rw);
  add("enospc", enospc);
  add("fsync", fsync_fail);
  add("torn", torn);
  add("bitflip", bitflip);
  if (kill_after > 0) out += ",kill_after=" + std::to_string(kill_after);
  return out;
}

// ---------------------------------------------------------------------------
// FaultyEnv / FaultyFile
// ---------------------------------------------------------------------------

namespace {

Status Dead(const char* what) {
  return Status::IoError(std::string("faulty env dead after torn write (") +
                             what + ")",
                         EIO);
}

}  // namespace

bool FaultyEnv::RollKill() {
  ++write_ops_;
  if (spec_.kill_after > 0 && write_ops_ >= spec_.kill_after) return true;
  return Roll(spec_.torn);
}

class FaultyFile final : public File {
 public:
  FaultyFile(FaultyEnv* owner, std::unique_ptr<File> base)
      : owner_(owner), base_(std::move(base)) {
    env_ = owner;
  }

  Status PreadOnce(uint64_t offset, void* buf, size_t n,
                   size_t* got) override {
    *got = 0;
    if (owner_->Roll(owner_->spec_.eintr)) {
      Injected(&owner_->counts_.eintr);
      return Status::IoError("injected EINTR (pread)", EINTR);
    }
    size_t ask = n;
    if (n > 1 && owner_->Roll(owner_->spec_.short_rw)) {
      Injected(&owner_->counts_.short_rw);
      ask = n / 2;
    }
    Status s = base_->PreadOnce(offset, buf, ask, got);
    if (s.ok() && *got > 0 && owner_->Roll(owner_->spec_.bitflip)) {
      Injected(&owner_->counts_.bitflip);
      auto* p = static_cast<unsigned char*>(buf);
      uint64_t bit = owner_->rng_.Uniform(*got * 8);
      p[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    }
    return s;
  }

  Status PwriteOnce(uint64_t offset, const void* buf, size_t n,
                    size_t* put) override {
    return WriteImpl(buf, n, put, /*offset=*/&offset);
  }

  Status AppendOnce(const void* buf, size_t n, size_t* put) override {
    return WriteImpl(buf, n, put, /*offset=*/nullptr);
  }

  Status Sync() override {
    if (owner_->dead_) return Dead("fsync");
    if (owner_->RollKill()) {
      Injected(&owner_->counts_.torn);
      owner_->dead_ = true;
      return Dead("fsync at kill point");
    }
    if (owner_->Roll(owner_->spec_.fsync_fail)) {
      Injected(&owner_->counts_.fsync_fail);
      return Status::IoError("injected fsync failure", EIO);
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }
  Status Size(uint64_t* size) override { return base_->Size(size); }

 private:
  void Injected(uint64_t* count) {
    ++*count;
    IoObsMetrics::Get().injected_faults->Increment();
  }

  // Shared pwrite/append path; offset == nullptr means append.
  Status WriteImpl(const void* buf, size_t n, size_t* put,
                   const uint64_t* offset) {
    *put = 0;
    if (owner_->dead_) return Dead("write");
    if (owner_->RollKill()) {
      // Torn write: land a random prefix, then the environment dies. The
      // prefix goes through the base file in full so the on-disk state is
      // exactly "first k bytes of the payload", like a mid-write kill.
      Injected(&owner_->counts_.torn);
      owner_->dead_ = true;
      size_t prefix = static_cast<size_t>(owner_->rng_.Uniform(n + 1));
      if (prefix > 0) {
        std::string_view data(static_cast<const char*>(buf), prefix);
        if (offset != nullptr) {
          // Torn-write injection: the partial landing IS the fault being
          // modeled, so the base result is irrelevant by design.
          (void)base_->WriteFull(*offset, data);
        } else {
          (void)base_->AppendFull(data, RetryPolicy(), put);  // ditto
        }
        if (offset != nullptr) *put = prefix;
      }
      return Dead("torn write");
    }
    if (owner_->Roll(owner_->spec_.eintr)) {
      Injected(&owner_->counts_.eintr);
      return Status::IoError("injected EINTR (write)", EINTR);
    }
    if (owner_->Roll(owner_->spec_.enospc)) {
      Injected(&owner_->counts_.enospc);
      return Status::IoError("injected ENOSPC", ENOSPC);
    }
    size_t ask = n;
    if (n > 1 && owner_->Roll(owner_->spec_.short_rw)) {
      // Short write: only a prefix reaches the backend, so the caller's
      // retry loop must resume from the right offset.
      Injected(&owner_->counts_.short_rw);
      ask = n / 2;
    }
    if (offset != nullptr) {
      return base_->PwriteOnce(*offset, buf, ask, put);
    }
    return base_->AppendOnce(buf, ask, put);
  }

  FaultyEnv* owner_;
  std::unique_ptr<File> base_;
};

Status FaultyEnv::NewFile(const std::string& path, OpenMode mode,
                          std::unique_ptr<File>* out) {
  if (mode != OpenMode::kRead) {
    if (dead_) return Dead("open for write");
    if (RollKill()) {
      ++counts_.torn;
      IoObsMetrics::Get().injected_faults->Increment();
      dead_ = true;
      return Dead("open at kill point");
    }
  }
  std::unique_ptr<File> base;
  Status s = base_.NewFile(path, mode, &base);
  if (!s.ok()) return s;
  out->reset(new FaultyFile(this, std::move(base)));
  return Status::OK();
}

Status FaultyEnv::Rename(const std::string& from, const std::string& to) {
  if (dead_) return Dead("rename");
  if (RollKill()) {
    ++counts_.torn;
    IoObsMetrics::Get().injected_faults->Increment();
    dead_ = true;
    return Dead("rename at kill point");
  }
  return base_.Rename(from, to);
}

Status FaultyEnv::Remove(const std::string& path) {
  if (dead_) return Dead("remove");
  if (RollKill()) {
    ++counts_.torn;
    IoObsMetrics::Get().injected_faults->Increment();
    dead_ = true;
    return Dead("remove at kill point");
  }
  return base_.Remove(path);
}

Status FaultyEnv::MkDir(const std::string& path) { return base_.MkDir(path); }

Status FaultyEnv::ListDir(const std::string& path,
                          std::vector<std::string>* entries) {
  return base_.ListDir(path, entries);
}

Status FaultyEnv::SyncDir(const std::string& path) {
  if (dead_) return Dead("syncdir");
  if (Roll(spec_.fsync_fail)) {
    ++counts_.fsync_fail;
    IoObsMetrics::Get().injected_faults->Increment();
    return Status::IoError("injected fsync failure (dir)", EIO);
  }
  return base_.SyncDir(path);
}

Status FaultyEnv::FileSize(const std::string& path, uint64_t* size) {
  return base_.FileSize(path, size);
}

bool FaultyEnv::FileExists(const std::string& path) {
  return base_.FileExists(path);
}

}  // namespace met::io
