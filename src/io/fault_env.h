// Deterministic fault-injection environment for crash/recovery testing.
//
// FaultyEnv wraps a base Env (usually Env::Posix()) and injects failures per
// a FaultSpec: transient EINTR/ENOSPC, short reads and writes, fsync
// failures, bit flips on read, and torn writes at a "kill point". All
// randomness comes from a met::Random seeded by the spec, so a (seed, op
// sequence) pair replays the exact same fault pattern — failing torture
// seeds are reproducible by rerunning with the same MET_FAULT string.
//
// Kill-point model: `kill_after=N` counts write-side operations (writes,
// appends, syncs, renames, removes); the N-th write lands only a random
// prefix of its payload (a torn write) and the environment goes dead —
// every later write-side op fails with a permanent EIO, mimicking a process
// that was killed mid-write. Reads keep working so a caller can observe the
// torn state. Recovery tests then reopen the directory with a clean env.
//
// Spec grammar (MET_FAULT env var or FaultSpec::Parse):
//   spec     := pair (',' pair)*
//   pair     := key '=' value
//   key      := seed | eintr | short | enospc | fsync | torn | bitflip
//             | kill_after
//   seed, kill_after take integers; the rest take probabilities in [0, 1].
// Example: MET_FAULT="seed=7,eintr=0.05,short=0.1,torn=0.01"
//
// Not thread-safe: the shim serialises nothing; use one FaultyEnv per
// single-threaded test or torture cycle.
#ifndef MET_IO_FAULT_ENV_H_
#define MET_IO_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "io/io.h"
#include "io/status.h"

namespace met::io {

struct FaultSpec {
  uint64_t seed = 1;
  double eintr = 0;       // P(inject EINTR) per read/write/append attempt
  double short_rw = 0;    // P(short transfer) per read/write/append attempt
  double enospc = 0;      // P(inject ENOSPC) per write/append attempt
  double fsync_fail = 0;  // P(permanent EIO) per fsync
  double torn = 0;        // P(torn write + env death) per write-side op
  double bitflip = 0;     // P(flip one random bit) per successful read
  uint64_t kill_after = 0;  // tear the N-th write-side op (0 = disabled)

  /// Parses the comma-separated key=value grammar above. Unknown keys,
  /// malformed numbers, and out-of-range probabilities are InvalidArgument.
  static Status Parse(std::string_view spec, FaultSpec* out);

  /// Parses $MET_FAULT; returns an all-zero (fault-free) spec when unset.
  static FaultSpec FromEnv();

  /// True when any read-side fault (short read, EINTR on read, bit flip)
  /// can fire — callers that verify read results must skip verification
  /// under such specs, since a flipped bit legitimately changes data.
  bool HasReadFaults() const {
    return eintr > 0 || short_rw > 0 || bitflip > 0;
  }

  std::string ToString() const;
};

/// Per-kind injection tallies, for tests asserting determinism.
struct FaultCounts {
  uint64_t eintr = 0;
  uint64_t short_rw = 0;
  uint64_t enospc = 0;
  uint64_t fsync_fail = 0;
  uint64_t torn = 0;
  uint64_t bitflip = 0;

  uint64_t Total() const {
    return eintr + short_rw + enospc + fsync_fail + torn + bitflip;
  }
};

class FaultyEnv final : public Env {
 public:
  FaultyEnv(Env& base, const FaultSpec& spec)
      : base_(base), spec_(spec), rng_(spec.seed) {}

  Status NewFile(const std::string& path, OpenMode mode,
                 std::unique_ptr<File>* out) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status MkDir(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* entries) override;
  Status SyncDir(const std::string& path) override;
  Status FileSize(const std::string& path, uint64_t* size) override;
  bool FileExists(const std::string& path) override;
  /// Backoff sleeps are no-ops so retry-heavy tests run at full speed.
  void SleepMicros(uint64_t) override {}

  /// True once a torn write (probabilistic or kill_after) has fired; all
  /// later write-side operations fail with permanent EIO.
  bool dead() const { return dead_; }
  const FaultCounts& counts() const { return counts_; }
  const FaultSpec& spec() const { return spec_; }

 private:
  friend class FaultyFile;

  // Rolls the write-side kill/torn dice; returns true when this op must
  // tear (caller lands a prefix, then the env dies).
  bool RollKill();
  bool Roll(double p) { return p > 0 && rng_.NextDouble() < p; }

  Env& base_;
  FaultSpec spec_;
  Random rng_;
  FaultCounts counts_;
  uint64_t write_ops_ = 0;
  bool dead_ = false;
};

}  // namespace met::io

#endif  // MET_IO_FAULT_ENV_H_
