#include "lsm/wal.h"

#include <cstring>

#include "io/crc32c.h"
#include "obs/trace.h"

namespace met {

namespace {

constexpr size_t kRecordHeaderBytes = 12;  // crc u32 + klen u32 + vlen u32

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

io::Status LsmWal::Open() {
  // kWrite truncates: a WAL is only ever opened empty-or-garbage (recovery
  // flushes replayed records into a table before reusing a slot), and torn
  // bytes at the tail are by definition unacked — appending after them would
  // make every later record unreachable at replay.
  return env_.NewFile(path_, io::OpenMode::kWrite, &file_);
}

io::Status LsmWal::Append(std::string_view key, std::string_view value) {
  if (file_ == nullptr) return io::Status::IoError("wal not open");
  if (tail_torn_) {
    return io::Status::IoError("wal tail torn; rotation required");
  }
  std::string record;
  record.reserve(kRecordHeaderBytes + key.size() + value.size());
  AppendU32(&record, 0);  // crc placeholder
  AppendU32(&record, static_cast<uint32_t>(key.size()));
  AppendU32(&record, static_cast<uint32_t>(value.size()));
  record.append(key);
  record.append(value);
  uint32_t crc = io::Crc32c(record.data() + 4, record.size() - 4);
  std::memcpy(record.data(), &crc, sizeof(crc));

  size_t appended = 0;
  io::Status s = file_->AppendFull(record, io::RetryPolicy(), &appended);
  appended_bytes_ += appended;
  unsynced_bytes_ += appended;
  if (!s.ok() && appended > 0) tail_torn_ = true;  // partial record on disk
  return s;
}

io::Status LsmWal::Sync() {
  if (file_ == nullptr) return io::Status::IoError("wal not open");
  // Group-commit fsync: every Put since the last sync is acked by this one
  // call, so its span is the durability pause writers actually see.
  obs::ScopedTimer trace(nullptr, "wal.group_sync");
  io::Status s = file_->SyncWithRetry();
  if (s.ok()) unsynced_bytes_ = 0;
  return s;
}

io::Status LsmWal::Close() {
  if (file_ == nullptr) return io::Status::OK();
  io::Status s = file_->Close();
  file_.reset();
  return s;
}

void LsmWal::AbandonForCrash() {
  if (file_ == nullptr) return;
  (void)file_->Close();  // modeling a crash: losing unsynced bytes is the point
  file_.reset();
}

io::Status LsmWal::Replay(
    io::Env& env, const std::string& path,
    const std::function<void(std::string_view, std::string_view)>& fn,
    uint64_t* replayed_records, bool* torn_tail) {
  if (replayed_records != nullptr) *replayed_records = 0;
  if (torn_tail != nullptr) *torn_tail = false;
  std::string log;
  io::Status s = env.ReadFileToString(path, &log);
  if (s.IsNotFound()) return io::Status::OK();  // missing log == empty log
  if (!s.ok()) return s;

  size_t off = 0;
  while (off < log.size()) {
    if (log.size() - off < kRecordHeaderBytes) break;  // torn header
    uint32_t crc = ReadU32(log.data() + off);
    uint64_t klen = ReadU32(log.data() + off + 4);
    uint64_t vlen = ReadU32(log.data() + off + 8);
    uint64_t body = 8 + klen + vlen;  // klen/vlen fields + payloads
    if (log.size() - off - 4 < body) break;  // torn payload
    if (io::Crc32c(log.data() + off + 4, body) != crc) break;  // corrupt
    fn(std::string_view(log.data() + off + kRecordHeaderBytes, klen),
       std::string_view(log.data() + off + kRecordHeaderBytes + klen, vlen));
    off += 4 + body;
    if (replayed_records != nullptr) ++*replayed_records;
  }
  if (off < log.size() && torn_tail != nullptr) *torn_tail = true;
  return io::Status::OK();
}

}  // namespace met
