// Mini log-structured merge engine — the RocksDB stand-in for the Chapter 4
// system evaluation (see DESIGN.md, "Documented substitutions").
//
// Architecture mirrors Figure 4.2: an in-memory MemTable absorbs writes and
// flushes to sorted, block-structured SSTable files in level 0; leveled
// compaction keeps levels >= 1 sorted and non-overlapping. Each SSTable has
// an in-memory fence (block) index and an optional filter (Bloom or SuRF)
// that is consulted before any block I/O, exactly like Figure 4.3's Get /
// Seek / Count execution paths. "I/O" is counted as block-cache misses that
// hit the data file.
#ifndef MET_LSM_LSM_H_
#define MET_LSM_LSM_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom.h"
#include "check/fwd.h"
#include "common/assert.h"
#include "obs/obs.h"
#include "surf/surf.h"

namespace met {

enum class LsmFilterType { kNone, kBloom, kSurfHash, kSurfReal };

const char* LsmFilterTypeName(LsmFilterType t);

struct LsmOptions {
  std::string dir = "/tmp/met_lsm";
  size_t memtable_bytes = 4u << 20;
  size_t block_bytes = 4096;
  size_t sstable_target_bytes = 8u << 20;
  size_t level0_table_limit = 4;
  size_t level1_bytes = 32u << 20;
  size_t level_multiplier = 10;
  size_t block_cache_blocks = 4096;  // ~16 MB with 4 KB blocks

  LsmFilterType filter = LsmFilterType::kNone;
  double bloom_bits_per_key = 14.0;
  uint32_t surf_suffix_bits = 4;  // hash or real, by filter type
};

/// Per-instance statistics — a thin view kept for API compatibility (tests
/// and benches reset/read these per tree). Process-wide aggregates,
/// including filter true/false-positive counters for live FPR, live in the
/// obs::MetricsRegistry under "lsm.*" (see LsmObsMetrics).
struct LsmStats {
  uint64_t block_reads = 0;       // disk block fetches (cache misses)
  uint64_t block_cache_hits = 0;
  uint64_t filter_probes = 0;
  uint64_t filter_negatives = 0;  // I/Os saved by a filter
  uint64_t flushes = 0;
  uint64_t compactions = 0;
};

/// Process-wide LSM metrics, shared by every LsmTree. Filter probes with a
/// positive answer are classified after the block search resolves them:
/// key present => true positive, absent => false positive, giving a live
/// false-positive rate fp / (tp + fp) per filter family.
///
/// The per-probe counters (block reads/hits, filter probes/negatives) are
/// not updated atomically on the Get path — each tree counts into its plain
/// LsmStats and publishes the delta through a registry collector whenever a
/// dump runs, so instrumentation adds no atomic traffic per lookup.
struct LsmObsMetrics {
  obs::Counter* block_reads;
  obs::Counter* block_cache_hits;
  obs::Counter* flushes;
  obs::Counter* compactions;
  obs::Counter* filter_probes;
  obs::Counter* filter_negatives;
  obs::Counter* bloom_true_positives;
  obs::Counter* bloom_false_positives;
  obs::Counter* surf_true_positives;
  obs::Counter* surf_false_positives;
  obs::Histogram* flush_ns;
  obs::Histogram* compaction_ns;
  obs::Histogram* compaction_entries;

  static const LsmObsMetrics& Get();
};

class LsmTree {
 public:
  explicit LsmTree(const LsmOptions& options);
  ~LsmTree();

  LsmTree(const LsmTree&) = delete;
  LsmTree& operator=(const LsmTree&) = delete;

  void Put(std::string_view key, std::string_view value);

  /// Unified point lookup (Figure 4.3, Get execution path).
  bool Lookup(std::string_view key, std::string* value = nullptr);

  [[deprecated("use Lookup()")]] bool Get(std::string_view key,
                                          std::string* value = nullptr) {
    return Lookup(key, value);
  }

  /// Open seek: smallest key >= `lk` across all levels; nullopt at end.
  std::optional<std::string> Seek(std::string_view lk);

  /// Closed seek: smallest key in [lk, hk]; nullopt if the range is empty.
  std::optional<std::string> ClosedSeek(std::string_view lk,
                                        std::string_view hk);

  /// Count of distinct keys in [lk, hk]: exact without SuRF (scans blocks
  /// and dedupes stale versions across components); filter-accelerated and
  /// approximate with SuRF.
  uint64_t Count(std::string_view lk, std::string_view hk);

  /// Flushes the memtable and compacts until all level limits hold.
  void Finish();

  const LsmStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LsmStats{}; }

  size_t FilterMemoryBytes() const;
  size_t NumTables() const;
  size_t NumLevels() const { return levels_.size(); }
  uint64_t DiskBytes() const;

  /// Verifies level ordering rules (L0 keys per-table sorted; levels >= 1
  /// sorted and non-overlapping), per-table fence-index monotonicity, and
  /// min/max-key bounds. No-op unless MET_CHECK_ENABLED (impl in
  /// check/lsm_check.cc).
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return CheckValidate(os);
#else
    (void)os;
    return true;
#endif
  }

 private:
  bool CheckValidate(std::ostream& os) const;  // check/lsm_check.cc
  friend struct check::TestAccess;

  struct SsTable {
    uint64_t id;
    std::string path;
    std::string min_key, max_key;
    uint64_t file_bytes = 0;
    uint64_t num_entries = 0;
    // Fence index: first key of each block + offset/length.
    std::vector<std::string> block_first_key;
    std::vector<uint64_t> block_offset;
    std::vector<uint32_t> block_length;
    std::unique_ptr<BloomFilter> bloom;
    std::unique_ptr<Surf> surf;
    int fd = -1;
  };

  using Block = std::vector<std::pair<std::string, std::string>>;

  void FlushMemTable();
  void MaybeCompact();
  void CompactLevel0();
  void CompactLevel(size_t level);
  std::unique_ptr<SsTable> WriteTable(
      const std::vector<std::pair<std::string, std::string>>& entries);
  /// Splits a sorted entry stream into tables of at most target size.
  std::vector<std::unique_ptr<SsTable>> WriteTables(
      std::vector<std::pair<std::string, std::string>>&& entries);
  std::vector<std::pair<std::string, std::string>> ReadAll(const SsTable& t);

  const Block& GetBlock(const SsTable& t, size_t block_idx);
  /// `filter_hint`, when non-null, is this table's precomputed filter answer
  /// from the batched fan-out in Lookup; the probe is then accounted here
  /// (scalar order) instead of re-executed.
  bool TableGet(const SsTable& t, std::string_view key, std::string* value,
                const bool* filter_hint = nullptr);
  /// Smallest key >= lk stored in `t` (reads one block unless absent).
  std::optional<std::string> TableSeek(const SsTable& t, std::string_view lk);

  /// Filter checks: true = must read, false = certainly absent.
  bool FilterMayContain(const SsTable& t, std::string_view key);
  bool FilterMayContainRange(const SsTable& t, std::string_view lk,
                             std::string_view hk);

  LsmOptions options_;
  std::map<std::string, std::string, std::less<>> memtable_;
  size_t memtable_bytes_ = 0;
  // levels_[0] may overlap (newest last); levels_[>=1] sorted, disjoint.
  std::vector<std::vector<std::unique_ptr<SsTable>>> levels_;
  uint64_t next_table_id_ = 0;
  std::vector<size_t> compact_cursor_;  // per-level rotating victim cursor
  LsmStats stats_;

  // Lookup scratch (reused across calls to avoid per-read allocation):
  // candidate tables in probe order, their speculative filter answers
  // (0/1; 2 = not probed by the fan-out), and the Bloom fan-out arrays.
  std::vector<const SsTable*> probe_tables_;
  std::vector<uint8_t> probe_may_;
  std::vector<const BloomFilter*> probe_blooms_;
  std::vector<uint32_t> probe_bloom_slot_;

  // Publishes stats_ / outcome deltas to the global registry (runs on every
  // obs dump via a registry collector).
  void SyncObsCounters();
  struct FilterOutcomes {
    uint64_t bloom_tp = 0, bloom_fp = 0, surf_tp = 0, surf_fp = 0;
  };
  FilterOutcomes outcomes_;
  LsmStats obs_synced_;            // portion of stats_ already published
  FilterOutcomes outcomes_synced_;  // portion of outcomes_ already published
  obs::MetricsRegistry::CollectorId obs_collector_ = 0;

  // Block cache: CLOCK over (table_id, block) -> decoded entries.
  struct CacheSlot {
    uint64_t table_id = ~0ull;
    size_t block = 0;
    Block entries;
    bool referenced = false;
  };
  std::vector<CacheSlot> cache_;
  std::map<std::pair<uint64_t, size_t>, size_t> cache_index_;
  size_t cache_hand_ = 0;
};

}  // namespace met

#endif  // MET_LSM_LSM_H_
