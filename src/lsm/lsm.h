// Mini log-structured merge engine — the RocksDB stand-in for the Chapter 4
// system evaluation (see DESIGN.md, "Documented substitutions").
//
// Architecture mirrors Figure 4.2: an in-memory MemTable absorbs writes and
// flushes to sorted, block-structured SSTable files in level 0; leveled
// compaction keeps levels >= 1 sorted and non-overlapping. Each SSTable has
// an in-memory fence (block) index and an optional filter (Bloom or SuRF)
// that is consulted before any block I/O, exactly like Figure 4.3's Get /
// Seek / Count execution paths. "I/O" is counted as block-cache misses that
// hit the data file.
//
// Storage robustness (DESIGN.md, "Durability & fault injection"): all file
// access goes through met::io (EINTR/short-transfer loops, transient-error
// retry, fault injection); every block carries a CRC32C trailer and a
// checksum-failing block is quarantined — the read falls through to older
// levels instead of aborting. In durable mode (LsmOptions::durable or
// LsmTree::Open) a write-ahead log covers the memtable and a versioned
// MANIFEST records the live tables, so reopening the directory recovers to
// the last durable state after a crash. The default remains the historical
// ephemeral behavior: files are private to the instance and removed on
// destruction, with no WAL/MANIFEST overhead.
#ifndef MET_LSM_LSM_H_
#define MET_LSM_LSM_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom.h"
#include "check/fwd.h"
#include "common/assert.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "io/io.h"
#include "io/status.h"
#include "obs/obs.h"
#include "prof/memory_breakdown.h"
#include "surf/surf.h"

namespace met {

class LsmWal;

enum class LsmFilterType { kNone, kBloom, kSurfHash, kSurfReal };

const char* LsmFilterTypeName(LsmFilterType t);

struct LsmOptions {
  std::string dir = "/tmp/met_lsm";
  size_t memtable_bytes = 4u << 20;
  size_t block_bytes = 4096;
  size_t sstable_target_bytes = 8u << 20;
  size_t level0_table_limit = 4;
  size_t level1_bytes = 32u << 20;
  size_t level_multiplier = 10;
  size_t block_cache_blocks = 4096;  // ~16 MB with 4 KB blocks

  LsmFilterType filter = LsmFilterType::kNone;
  double bloom_bits_per_key = 14.0;
  uint32_t surf_suffix_bits = 4;  // hash or real, by filter type

  /// Environment all file I/O goes through; nullptr = io::Env::Posix().
  /// Tests and the crash-torture harness plug in an io::FaultyEnv here.
  io::Env* env = nullptr;

  /// Durable mode: WAL + MANIFEST + fsync'd tables; the directory survives
  /// the instance and is recovered on the next open. When false (default)
  /// the tree is ephemeral: no logging, files removed on destruction.
  bool durable = false;

  /// Group-fsync threshold: the WAL is synced once at least this many bytes
  /// have been appended since the last sync (plus on demand via SyncWal()).
  size_t wal_group_sync_bytes = 64u << 10;

  /// Soft cap checked by Validate(): total open table files per tree.
  size_t max_open_files = 4096;
};

/// Per-instance statistics — a thin view kept for API compatibility (tests
/// and benches reset/read these per tree). Process-wide aggregates,
/// including filter true/false-positive counters for live FPR, live in the
/// obs::MetricsRegistry under "lsm.*" (see LsmObsMetrics).
/// Counter fields are sync::RelaxedCounter, not uint64_t: the owning thread
/// is the only writer, but SyncObsCounters() reads them from whatever thread
/// runs an obs dump (registry collector), so reads must not tear.
struct LsmStats {
  sync::RelaxedCounter block_reads;       // disk block fetches (cache misses)
  sync::RelaxedCounter block_cache_hits;
  sync::RelaxedCounter filter_probes;
  sync::RelaxedCounter filter_negatives;  // I/Os saved by a filter
  sync::RelaxedCounter flushes;
  sync::RelaxedCounter compactions;
  sync::RelaxedCounter wal_appends;
  sync::RelaxedCounter wal_syncs;
  sync::RelaxedCounter block_corruptions;  // checksum failures => quarantined
};

/// Process-wide LSM metrics, shared by every LsmTree. Filter probes with a
/// positive answer are classified after the block search resolves them:
/// key present => true positive, absent => false positive, giving a live
/// false-positive rate fp / (tp + fp) per filter family.
///
/// The per-probe counters (block reads/hits, filter probes/negatives, WAL
/// appends/syncs, corruptions) are not updated atomically on the hot path —
/// each tree counts into its plain LsmStats and publishes the delta through
/// a registry collector whenever a dump runs. Rare events (manifest writes,
/// recovery actions) update their counters directly.
struct LsmObsMetrics {
  obs::Counter* block_reads;
  obs::Counter* block_cache_hits;
  obs::Counter* flushes;
  obs::Counter* compactions;
  obs::Counter* filter_probes;
  obs::Counter* filter_negatives;
  obs::Counter* bloom_true_positives;
  obs::Counter* bloom_false_positives;
  obs::Counter* surf_true_positives;
  obs::Counter* surf_false_positives;
  obs::Counter* wal_appends;
  obs::Counter* wal_syncs;
  obs::Counter* wal_replayed_records;
  obs::Counter* wal_torn_tails;
  obs::Counter* manifest_writes;
  obs::Counter* block_corruptions;
  obs::Counter* recovery_orphans_removed;
  obs::Counter* recovery_bad_tables;
  obs::Histogram* flush_ns;
  obs::Histogram* compaction_ns;
  obs::Histogram* compaction_entries;

  static const LsmObsMetrics& Get();
};

class LsmTree {
 public:
  explicit LsmTree(const LsmOptions& options);
  ~LsmTree();

  LsmTree(const LsmTree&) = delete;
  LsmTree& operator=(const LsmTree&) = delete;

  /// Opens (or creates) a durable tree in options.dir, recovering the last
  /// durable state: live tables from the MANIFEST, then WAL replay into the
  /// memtable. Forces options.durable = true. A failed recovery still
  /// returns a tree (possibly degraded — see last_io_error()); `status`
  /// reports the outcome when non-null.
  static std::unique_ptr<LsmTree> Open(LsmOptions options,
                                       io::Status* status = nullptr);

  /// Applies the write. OK means the write is applied in memory (and, in
  /// durable mode, appended to the WAL — durable after the next sync); an
  /// error means it was not applied at all. Background work this Put
  /// triggered (group sync, flush, compaction) reports failures through
  /// last_io_error() instead, keeping the tree readable and retryable.
  io::Status Put(std::string_view key, std::string_view value);

  /// Unified point lookup (Figure 4.3, Get execution path).
  bool Lookup(std::string_view key, std::string* value = nullptr);

  [[deprecated("use Lookup()")]] bool Get(std::string_view key,
                                          std::string* value = nullptr) {
    return Lookup(key, value);
  }

  /// Open seek: smallest key >= `lk` across all levels; nullopt at end.
  std::optional<std::string> Seek(std::string_view lk);

  /// Closed seek: smallest key in [lk, hk]; nullopt if the range is empty.
  std::optional<std::string> ClosedSeek(std::string_view lk,
                                        std::string_view hk);

  /// Count of distinct keys in [lk, hk]: exact without SuRF (scans blocks
  /// and dedupes stale versions across components); filter-accelerated and
  /// approximate with SuRF.
  uint64_t Count(std::string_view lk, std::string_view hk);

  /// Flushes the memtable and compacts until all level limits hold.
  io::Status Finish();

  /// Durable mode: fsyncs the WAL now, acking every Put so far. No-op
  /// (OK) when not durable.
  io::Status SyncWal();

  /// Simulates `kill -9`: drops all file handles without syncing, flushing,
  /// or cleaning up, and marks the tree crashed (writes fail, destructor
  /// leaves the directory untouched). Reopen with LsmTree::Open to recover.
  void SimulateCrash();

  /// Most recent I/O failure from background work (flush, compaction, group
  /// sync, recovery) — sticky until cleared.
  const io::Status& last_io_error() const { return last_io_error_; }
  void ClearLastIoError() { last_io_error_ = io::Status::OK(); }

  bool durable() const { return options_.durable; }

  const LsmStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LsmStats{}; }

  size_t FilterMemoryBytes() const;
  size_t NumTables() const;
  size_t NumLevels() const { return levels_.size(); }
  uint64_t DiskBytes() const;

  /// Total resident (in-memory) footprint: memtable, per-table metadata and
  /// fence indexes, filters, and the block cache. Excludes DiskBytes().
  size_t MemoryBytes() const;
  size_t MemoryUse() const { return MemoryBytes(); }

  /// Component attribution; TotalBytes() == MemoryBytes() (same terms).
  MemoryBreakdown Breakdown() const;

  /// Verifies level ordering rules (L0 keys per-table sorted; levels >= 1
  /// sorted and non-overlapping), per-table fence-index monotonicity, and
  /// min/max-key bounds. No-op unless MET_CHECK_ENABLED (impl in
  /// check/lsm_check.cc).
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return CheckValidate(os);
#else
    (void)os;
    return true;
#endif
  }

 private:
  bool CheckValidate(std::ostream& os) const;  // check/lsm_check.cc
  friend struct check::TestAccess;

  struct SsTable {
    uint64_t id;
    std::string path;
    std::string min_key, max_key;
    uint64_t file_bytes = 0;  // total file size (blocks + footer + trailer)
    uint64_t data_bytes = 0;  // end of the block region (footer offset)
    uint64_t num_entries = 0;
    // Fence index: first key of each block + payload offset/length. The
    // on-disk block is payload followed by a 4-byte CRC32C trailer.
    std::vector<std::string> block_first_key;
    std::vector<uint64_t> block_offset;
    std::vector<uint32_t> block_length;
    std::unique_ptr<BloomFilter> bloom;
    std::unique_ptr<Surf> surf;
    std::unique_ptr<io::File> file;
    // Blocks that failed their checksum: never re-read, reads fall through
    // to older levels (graceful degradation).
    mutable std::set<size_t> quarantined;
  };

  using Block = std::vector<std::pair<std::string, std::string>>;

  io::Status FlushMemTable();
  io::Status MaybeCompact();
  io::Status CompactLevel0();
  io::Status CompactLevel(size_t level);
  io::Status WriteTable(
      const std::vector<std::pair<std::string, std::string>>& entries,
      std::unique_ptr<SsTable>* out);
  /// Splits a sorted entry stream into tables of at most target size. On
  /// error, already-written table files are removed before returning.
  io::Status WriteTables(
      std::vector<std::pair<std::string, std::string>>&& entries,
      std::vector<std::unique_ptr<SsTable>>* out);
  /// Reads and checksum-verifies every block; corrupt blocks are skipped
  /// (counted in *corrupt_blocks) rather than failing the call, so a
  /// compaction salvages everything still intact. Returns an error only for
  /// unrecoverable file-level I/O failures.
  io::Status ReadAll(const SsTable& t,
                     std::vector<std::pair<std::string, std::string>>* entries,
                     size_t* corrupt_blocks);

  /// nullptr when the block is quarantined (checksum failure or unreadable)
  /// — callers treat that as "no entries here" and fall through.
  const Block* GetBlock(const SsTable& t, size_t block_idx);
  /// `filter_hint`, when non-null, is this table's precomputed filter answer
  /// from the batched fan-out in Lookup; the probe is then accounted here
  /// (scalar order) instead of re-executed.
  bool TableGet(const SsTable& t, std::string_view key, std::string* value,
                const bool* filter_hint = nullptr);
  /// Smallest key >= lk stored in `t` (reads one block unless absent).
  std::optional<std::string> TableSeek(const SsTable& t, std::string_view lk);

  /// Filter checks: true = must read, false = certainly absent.
  bool FilterMayContain(const SsTable& t, std::string_view key);
  bool FilterMayContainRange(const SsTable& t, std::string_view lk,
                             std::string_view hk);

  // --- durability internals ---
  /// Serializes entries into the on-disk v2 format and creates the file
  /// (fsync'd in durable mode); fills everything but the filter.
  io::Status WriteTableFile(
      SsTable* t, const std::vector<std::pair<std::string, std::string>>& entries);
  void BuildFilter(SsTable* t,
                   const std::vector<std::pair<std::string, std::string>>& entries);
  /// Opens an existing table by id: reads trailer + footer (both
  /// checksummed), reconstructs the fence index, and rebuilds the filter
  /// from block data. A table with corrupt blocks keeps filter = null (a
  /// partial filter would return false negatives).
  io::Status OpenTable(uint64_t id, std::unique_ptr<SsTable>* out);
  /// Manifest write reflecting the current in-memory levels; bumps the
  /// manifest generation. Durable mode only.
  io::Status WriteManifest();
  /// Full recovery: manifest -> tables -> orphan GC -> WAL replay. Durable
  /// mode only; called from the constructor.
  io::Status Recover();
  void ApplyToMemtable(std::string_view key, std::string_view value);
  void CloseAndRemoveFile(SsTable& t);
  std::string TablePath(uint64_t id) const {
    return options_.dir + "/sst_" + std::to_string(id);
  }
  std::string WalPath(uint64_t gen) const {
    return options_.dir + "/wal_" + std::to_string(gen);
  }

  LsmOptions options_;
  io::Env* env_ = nullptr;
  std::map<std::string, std::string, std::less<>> memtable_;
  size_t memtable_bytes_ = 0;
  // levels_[0] may overlap (newest last); levels_[>=1] sorted, disjoint.
  std::vector<std::vector<std::unique_ptr<SsTable>>> levels_;
  uint64_t next_table_id_ = 0;
  std::vector<size_t> compact_cursor_;  // per-level rotating victim cursor
  LsmStats stats_;

  std::unique_ptr<LsmWal> wal_;
  uint64_t wal_gen_ = 0;
  uint64_t manifest_gen_ = 0;
  bool crashed_ = false;
  io::Status last_io_error_;

  // Lookup scratch (reused across calls to avoid per-read allocation):
  // candidate tables in probe order, their speculative filter answers
  // (0/1; 2 = not probed by the fan-out), and the Bloom fan-out arrays.
  std::vector<const SsTable*> probe_tables_;
  std::vector<uint8_t> probe_may_;
  std::vector<const BloomFilter*> probe_blooms_;
  std::vector<uint32_t> probe_bloom_slot_;

  // Publishes stats_ / outcome deltas to the global registry. Runs on every
  // obs dump via a registry collector — i.e. on arbitrary dump threads while
  // the owner thread keeps counting — so the counters it reads are
  // RelaxedCounters and the synced-watermark state is guarded by obs_mu_
  // (two concurrent dumps must not double-publish a delta).
  void SyncObsCounters() MET_EXCLUDES(obs_mu_);
  struct FilterOutcomes {
    sync::RelaxedCounter bloom_tp, bloom_fp, surf_tp, surf_fp;
  };
  FilterOutcomes outcomes_;
  mutable sync::Mutex obs_mu_;
  LsmStats obs_synced_ MET_GUARDED_BY(obs_mu_);  // already-published portion
  FilterOutcomes outcomes_synced_ MET_GUARDED_BY(obs_mu_);
  obs::MetricsRegistry::CollectorId obs_collector_ = 0;

  // Block cache: CLOCK over (table_id, block) -> decoded entries.
  struct CacheSlot {
    uint64_t table_id = ~0ull;
    size_t block = 0;
    Block entries;
    bool referenced = false;
  };
  std::vector<CacheSlot> cache_;
  std::map<std::pair<uint64_t, size_t>, size_t> cache_index_;
  size_t cache_hand_ = 0;
};

}  // namespace met

#endif  // MET_LSM_LSM_H_
