#include "lsm/lsm.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/assert.h"
#include "io/crc32c.h"
#include "lsm/manifest.h"
#include "lsm/wal.h"

namespace met {

namespace {

// SSTable v2 layout:
//   [block payload][crc32c(payload) u32]  ... repeated per block ...
//   [footer]                              (fence index + table metadata)
//   [footer_offset u64][footer_crc u32][magic u32]   (16-byte trailer)
// The in-memory fence index (block_offset/block_length) addresses payloads;
// the 4-byte checksum trails each payload on disk.
constexpr uint32_t kSstMagic = 0x4D455453u;  // 'METS' (LE)
constexpr size_t kSstTrailerBytes = 16;
constexpr size_t kBlockCrcBytes = 4;

void AppendEntry(std::string* out, std::string_view key, std::string_view value) {
  uint32_t klen = static_cast<uint32_t>(key.size());
  uint32_t vlen = static_cast<uint32_t>(value.size());
  out->append(reinterpret_cast<const char*>(&klen), sizeof(klen));
  out->append(key);
  out->append(reinterpret_cast<const char*>(&vlen), sizeof(vlen));
  out->append(value);
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked cursor over an on-disk buffer; every getter returns false
/// instead of reading past the end, so torn or bit-flipped metadata parses
/// as corruption rather than undefined behavior.
class BufReader {
 public:
  explicit BufReader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v); }

  bool ReadString(size_t n, std::string* out) {
    if (data_.size() - off_ < n) return false;
    out->assign(data_.data() + off_, n);
    off_ += n;
    return true;
  }

  bool AtEnd() const { return off_ == data_.size(); }

 private:
  template <typename T>
  bool ReadRaw(T* v) {
    if (data_.size() - off_ < sizeof(T)) return false;
    std::memcpy(v, data_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  std::string_view data_;
  size_t off_ = 0;
};

/// Decodes one block payload; false on any structural inconsistency (only
/// reachable via corruption that collides with the block checksum).
bool ParseBlock(std::string_view raw,
                std::vector<std::pair<std::string, std::string>>* out) {
  BufReader r(raw);
  while (!r.AtEnd()) {
    uint32_t klen, vlen;
    std::string k, v;
    if (!r.ReadU32(&klen) || !r.ReadString(klen, &k)) return false;
    if (!r.ReadU32(&vlen) || !r.ReadString(vlen, &v)) return false;
    out->emplace_back(std::move(k), std::move(v));
  }
  return true;
}

/// Parses the decimal id following `prefix` in a directory entry name;
/// false if the name has any non-digit suffix (e.g. editor leftovers).
bool ParseTrailingId(const std::string& name, const char* prefix,
                     uint64_t* id) {
  const size_t plen = std::strlen(prefix);
  if (name.size() <= plen) return false;
  uint64_t v = 0;
  for (size_t i = plen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *id = v;
  return true;
}

}  // namespace

const LsmObsMetrics& LsmObsMetrics::Get() {
  static const LsmObsMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return LsmObsMetrics{
        reg.GetCounter("lsm.block.reads"),
        reg.GetCounter("lsm.block.cache_hits"),
        reg.GetCounter("lsm.flush.count"),
        reg.GetCounter("lsm.compaction.count"),
        reg.GetCounter("lsm.filter.probes"),
        reg.GetCounter("lsm.filter.negatives"),
        reg.GetCounter("lsm.filter.bloom.true_positives"),
        reg.GetCounter("lsm.filter.bloom.false_positives"),
        reg.GetCounter("lsm.filter.surf.true_positives"),
        reg.GetCounter("lsm.filter.surf.false_positives"),
        reg.GetCounter("lsm.wal.appends"),
        reg.GetCounter("lsm.wal.syncs"),
        reg.GetCounter("lsm.wal.replayed_records"),
        reg.GetCounter("lsm.wal.torn_tails"),
        reg.GetCounter("lsm.manifest.writes"),
        reg.GetCounter("lsm.block.corruptions"),
        reg.GetCounter("lsm.recovery.orphans_removed"),
        reg.GetCounter("lsm.recovery.bad_tables"),
        reg.GetHistogram("lsm.flush.duration_ns"),
        reg.GetHistogram("lsm.compaction.duration_ns"),
        reg.GetHistogram("lsm.compaction.merged_entries"),
    };
  }();
  return m;
}

const char* LsmFilterTypeName(LsmFilterType t) {
  switch (t) {
    case LsmFilterType::kNone:
      return "no-filter";
    case LsmFilterType::kBloom:
      return "Bloom";
    case LsmFilterType::kSurfHash:
      return "SuRF-Hash";
    case LsmFilterType::kSurfReal:
      return "SuRF-Real";
  }
  return "?";
}

LsmTree::LsmTree(const LsmOptions& options) : options_(options) {
  env_ = options_.env != nullptr ? options_.env : &io::Env::Posix();
  levels_.resize(1);
  cache_.resize(options_.block_cache_blocks);
  obs_collector_ =
      obs::MetricsRegistry::Global().AddCollector([this] { SyncObsCounters(); });
  if (options_.durable) {
    io::Status s = Recover();
    if (!s.ok()) last_io_error_ = s;
  } else {
    (void)env_->MkDir(options_.dir);  // pre-existing dir is fine (EEXIST)
  }
}

LsmTree::~LsmTree() {
  obs::MetricsRegistry::Global().RemoveCollector(obs_collector_);
  SyncObsCounters();
  if (crashed_) return;  // leave the directory exactly as the "kill" did
  if (options_.durable) {
    // Clean close: ack everything in the WAL; the directory stays behind
    // for the next Open to recover.
    if (wal_ != nullptr) {
      (void)wal_->Sync();   // destructor: nowhere to report; recovery replays
      (void)wal_->Close();  // ditto
    }
    for (auto& level : levels_)
      for (auto& t : level)
        if (t->file != nullptr) (void)t->file->Close();
    return;
  }
  // Ephemeral (historical) behavior: the files are private to this instance.
  for (auto& level : levels_)
    for (auto& t : level) CloseAndRemoveFile(*t);
}

std::unique_ptr<LsmTree> LsmTree::Open(LsmOptions options, io::Status* status) {
  options.durable = true;
  auto tree = std::make_unique<LsmTree>(options);
  if (status != nullptr) *status = tree->last_io_error_;
  return tree;
}

void LsmTree::SimulateCrash() {
  if (wal_ != nullptr) wal_->AbandonForCrash();
  for (auto& level : levels_)
    for (auto& t : level) t->file.reset();  // close without sync
  crashed_ = true;
}

void LsmTree::CloseAndRemoveFile(SsTable& t) {
  if (t.file != nullptr) {
    (void)t.file->Close();  // dropping the table; close errors change nothing
    t.file.reset();
  }
  (void)env_->Remove(t.path);  // orphan files are swept at next recovery
}

void LsmTree::SyncObsCounters() {
  const LsmObsMetrics& m = LsmObsMetrics::Get();
  sync::MutexLock lock(obs_mu_);
  m.block_reads->Add(stats_.block_reads - obs_synced_.block_reads);
  m.block_cache_hits->Add(stats_.block_cache_hits -
                          obs_synced_.block_cache_hits);
  m.filter_probes->Add(stats_.filter_probes - obs_synced_.filter_probes);
  m.filter_negatives->Add(stats_.filter_negatives -
                          obs_synced_.filter_negatives);
  m.wal_appends->Add(stats_.wal_appends - obs_synced_.wal_appends);
  m.wal_syncs->Add(stats_.wal_syncs - obs_synced_.wal_syncs);
  m.block_corruptions->Add(stats_.block_corruptions -
                           obs_synced_.block_corruptions);
  obs_synced_.block_reads = stats_.block_reads;
  obs_synced_.block_cache_hits = stats_.block_cache_hits;
  obs_synced_.filter_probes = stats_.filter_probes;
  obs_synced_.filter_negatives = stats_.filter_negatives;
  obs_synced_.wal_appends = stats_.wal_appends;
  obs_synced_.wal_syncs = stats_.wal_syncs;
  obs_synced_.block_corruptions = stats_.block_corruptions;
  m.bloom_true_positives->Add(outcomes_.bloom_tp - outcomes_synced_.bloom_tp);
  m.bloom_false_positives->Add(outcomes_.bloom_fp - outcomes_synced_.bloom_fp);
  m.surf_true_positives->Add(outcomes_.surf_tp - outcomes_synced_.surf_tp);
  m.surf_false_positives->Add(outcomes_.surf_fp - outcomes_synced_.surf_fp);
  outcomes_synced_ = outcomes_;
}

void LsmTree::ApplyToMemtable(std::string_view key, std::string_view value) {
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    memtable_bytes_ += value.size() - it->second.size();
    it->second = std::string(value);
  } else {
    memtable_bytes_ += key.size() + value.size() + 32;
    memtable_.emplace(std::string(key), std::string(value));
  }
}

io::Status LsmTree::Put(std::string_view key, std::string_view value) {
  if (crashed_) return io::Status::IoError("tree crashed");
  if (options_.durable) {
    if (wal_ == nullptr) {
      return io::Status::IoError("wal unavailable (degraded open)");
    }
    io::Status s = wal_->Append(key, value);
    if (!s.ok()) {
      last_io_error_ = s;
      return s;  // not applied: the record never fully reached the log
    }
    ++stats_.wal_appends;
  }
  ApplyToMemtable(key, value);
  // From here on the write is applied; background failures (group sync,
  // flush, compaction) are reported via last_io_error() only.
  if (options_.durable &&
      wal_->unsynced_bytes() >= options_.wal_group_sync_bytes) {
    (void)SyncWal();  // group sync is opportunistic; failure surfaces via
                      // last_io_error_ and the next forced sync
  }
  if (memtable_bytes_ >= options_.memtable_bytes) {
    io::Status s = FlushMemTable();
    if (s.ok()) s = MaybeCompact();
    if (!s.ok()) last_io_error_ = s;
  }
  return io::Status::OK();
}

io::Status LsmTree::SyncWal() {
  if (!options_.durable) return io::Status::OK();
  if (crashed_) return io::Status::IoError("tree crashed");
  if (wal_ == nullptr) return io::Status::IoError("wal unavailable");
  io::Status s = wal_->Sync();
  if (s.ok()) {
    ++stats_.wal_syncs;
  } else {
    last_io_error_ = s;
  }
  return s;
}

io::Status LsmTree::Finish() {
  if (crashed_) return io::Status::IoError("tree crashed");
  io::Status s = FlushMemTable();
  if (s.ok()) s = MaybeCompact();
  if (!s.ok()) last_io_error_ = s;
  return s;
}

io::Status LsmTree::FlushMemTable() {
  if (memtable_.empty()) return io::Status::OK();
  const LsmObsMetrics& m = LsmObsMetrics::Get();
  obs::ScopedTimer span(m.flush_ns, "lsm.flush");
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(memtable_.size());
  for (auto& [k, v] : memtable_) entries.emplace_back(k, v);

  std::unique_ptr<SsTable> t;
  io::Status s = WriteTable(entries, &t);
  if (!s.ok()) return s;  // memtable intact; retried on the next trigger

  if (options_.durable) {
    // Commit protocol: new table is durable on disk; create the next WAL,
    // then publish {levels + new wal_gen} in the manifest. Only after the
    // manifest commits is the memtable cleared and the old WAL removed — a
    // crash at any step recovers either the old state (old WAL replays the
    // memtable) or the new one.
    const uint64_t old_gen = wal_gen_;
    const uint64_t new_gen = wal_gen_ + 1;
    auto new_wal = std::make_unique<LsmWal>(*env_, WalPath(new_gen));
    s = new_wal->Open();
    if (!s.ok()) {
      CloseAndRemoveFile(*t);
      return s;
    }
    levels_[0].push_back(std::move(t));
    wal_gen_ = new_gen;
    s = WriteManifest();
    if (!s.ok()) {
      wal_gen_ = old_gen;
      auto dropped = std::move(levels_[0].back());
      levels_[0].pop_back();
      CloseAndRemoveFile(*dropped);
      (void)new_wal->Close();              // error path: report s, not these
      (void)env_->Remove(WalPath(new_gen));  // ditto
      return s;
    }
    // Old WAL's records are in the flushed table now; drop best-effort.
    if (wal_ != nullptr) (void)wal_->Close();
    (void)env_->Remove(WalPath(old_gen));  // see above: superseded by flush
    wal_ = std::move(new_wal);
  } else {
    levels_[0].push_back(std::move(t));
  }

  memtable_.clear();
  memtable_bytes_ = 0;
  ++stats_.flushes;
  m.flushes->Increment();
  return io::Status::OK();
}

io::Status LsmTree::WriteTable(
    const std::vector<std::pair<std::string, std::string>>& entries,
    std::unique_ptr<SsTable>* out) {
  auto t = std::make_unique<SsTable>();
  t->id = next_table_id_++;
  t->path = TablePath(t->id);
  t->min_key = entries.front().first;
  t->max_key = entries.back().first;
  t->num_entries = entries.size();
  io::Status s = WriteTableFile(t.get(), entries);
  if (!s.ok()) return s;
  BuildFilter(t.get(), entries);
  *out = std::move(t);
  return io::Status::OK();
}

io::Status LsmTree::WriteTableFile(
    SsTable* t, const std::vector<std::pair<std::string, std::string>>& entries) {
  std::string file;
  std::string block;
  std::string block_first = entries.front().first;
  auto flush_block = [&]() {
    if (block.empty()) return;
    t->block_first_key.push_back(block_first);
    t->block_offset.push_back(file.size());
    t->block_length.push_back(static_cast<uint32_t>(block.size()));
    file.append(block);
    AppendU32(&file, io::Crc32c(block.data(), block.size()));
    block.clear();
  };
  for (const auto& [k, v] : entries) {
    if (block.empty()) block_first = k;
    AppendEntry(&block, k, v);
    if (block.size() >= options_.block_bytes) flush_block();
  }
  flush_block();
  t->data_bytes = file.size();

  std::string footer;
  AppendU32(&footer, static_cast<uint32_t>(t->block_first_key.size()));
  for (size_t b = 0; b < t->block_first_key.size(); ++b) {
    AppendU32(&footer, static_cast<uint32_t>(t->block_first_key[b].size()));
    footer.append(t->block_first_key[b]);
    AppendU64(&footer, t->block_offset[b]);
    AppendU32(&footer, t->block_length[b]);
  }
  AppendU64(&footer, t->num_entries);
  AppendU32(&footer, static_cast<uint32_t>(t->max_key.size()));
  footer.append(t->max_key);
  const uint32_t footer_crc = io::Crc32c(footer.data(), footer.size());
  file.append(footer);
  AppendU64(&file, t->data_bytes);
  AppendU32(&file, footer_crc);
  AppendU32(&file, kSstMagic);
  t->file_bytes = file.size();

  std::unique_ptr<io::File> f;
  io::Status s = env_->NewFile(t->path, io::OpenMode::kWrite, &f);
  if (s.ok()) s = f->WriteFull(0, file);
  if (s.ok() && options_.durable) s = f->SyncWithRetry();
  if (f != nullptr) {
    io::Status cs = f->Close();
    if (s.ok()) s = cs;
  }
  if (s.ok()) s = env_->NewFile(t->path, io::OpenMode::kRead, &t->file);
  if (!s.ok()) {
    (void)env_->Remove(t->path);  // cleanup; the flush error is what matters
    return s;
  }
  return io::Status::OK();
}

void LsmTree::BuildFilter(
    SsTable* t, const std::vector<std::pair<std::string, std::string>>& entries) {
  switch (options_.filter) {
    case LsmFilterType::kNone:
      break;
    case LsmFilterType::kBloom: {
      t->bloom = std::make_unique<BloomFilter>(entries.size(),
                                               options_.bloom_bits_per_key);
      for (const auto& [k, v] : entries) t->bloom->Add(k);
      break;
    }
    case LsmFilterType::kSurfHash:
    case LsmFilterType::kSurfReal: {
      std::vector<std::string> keys;
      keys.reserve(entries.size());
      for (const auto& [k, v] : entries) keys.push_back(k);
      SurfConfig cfg = options_.filter == LsmFilterType::kSurfHash
                           ? SurfConfig::Hash(options_.surf_suffix_bits)
                           : SurfConfig::Real(options_.surf_suffix_bits);
      t->surf = std::make_unique<Surf>();
      t->surf->Build(keys, cfg);
      break;
    }
  }
}

io::Status LsmTree::WriteTables(
    std::vector<std::pair<std::string, std::string>>&& entries,
    std::vector<std::unique_ptr<SsTable>>* out) {
  out->clear();
  std::vector<std::pair<std::string, std::string>> chunk;
  size_t bytes = 0;
  io::Status s;
  auto emit = [&]() {
    if (chunk.empty() || !s.ok()) return;
    std::unique_ptr<SsTable> t;
    s = WriteTable(chunk, &t);
    if (s.ok()) out->push_back(std::move(t));
    chunk.clear();
    bytes = 0;
  };
  for (auto& e : entries) {
    bytes += e.first.size() + e.second.size() + 8;
    chunk.push_back(std::move(e));
    if (bytes >= options_.sstable_target_bytes) emit();
  }
  emit();
  if (!s.ok()) {
    for (auto& t : *out) CloseAndRemoveFile(*t);
    out->clear();
  }
  return s;
}

io::Status LsmTree::ReadAll(
    const SsTable& t, std::vector<std::pair<std::string, std::string>>* entries,
    size_t* corrupt_blocks) {
  entries->clear();
  entries->reserve(t.num_entries);
  if (corrupt_blocks != nullptr) *corrupt_blocks = 0;
  if (t.file == nullptr) return io::Status::IoError("table file not open");
  std::string file(t.data_bytes, '\0');
  if (t.data_bytes > 0) {
    io::Status s = t.file->ReadFull(0, file.data(), file.size());
    if (!s.ok()) return s;
  }
  for (size_t b = 0; b < t.block_first_key.size(); ++b) {
    const uint64_t off = t.block_offset[b];
    const uint32_t len = t.block_length[b];
    bool ok = off + len + kBlockCrcBytes <= file.size();
    if (ok) {
      uint32_t stored;
      std::memcpy(&stored, file.data() + off + len, sizeof(stored));
      ok = io::Crc32c(file.data() + off, static_cast<size_t>(len)) == stored;
    }
    size_t before = entries->size();
    if (ok) {
      ok = ParseBlock(std::string_view(file.data() + off, len), entries);
      if (!ok) entries->resize(before);  // drop the partial decode
    }
    if (!ok) {
      ++stats_.block_corruptions;
      t.quarantined.insert(b);
      obs::TraceEvent("lsm.block.quarantine");
      if (corrupt_blocks != nullptr) ++*corrupt_blocks;
    }
  }
  return io::Status::OK();
}

io::Status LsmTree::MaybeCompact() {
  while (true) {
    if (levels_[0].size() > options_.level0_table_limit) {
      io::Status s = CompactLevel0();
      if (!s.ok()) return s;
      continue;
    }
    bool did = false;
    for (size_t l = 1; l < levels_.size(); ++l) {
      uint64_t limit = options_.level1_bytes;
      for (size_t i = 1; i < l; ++i) limit *= options_.level_multiplier;
      uint64_t bytes = 0;
      for (const auto& t : levels_[l]) bytes += t->file_bytes;
      if (bytes > limit) {
        io::Status s = CompactLevel(l);
        if (!s.ok()) return s;
        did = true;
        break;
      }
    }
    if (!did) break;
  }
  return io::Status::OK();
}

io::Status LsmTree::CompactLevel0() {
  // Merge all L0 tables plus every overlapping L1 table into new L1 tables.
  // Inputs are only removed after the new tables (and, in durable mode, the
  // manifest) are safely on disk — a failure leaves the old state intact.
  const LsmObsMetrics& m = LsmObsMetrics::Get();
  obs::ScopedTimer span(m.compaction_ns, "lsm.compaction.l0");
  if (levels_.size() < 2) levels_.resize(2);

  std::string min_key = levels_[0].front()->min_key;
  std::string max_key = levels_[0].front()->max_key;
  for (auto& t : levels_[0]) {
    min_key = std::min(min_key, t->min_key);
    max_key = std::max(max_key, t->max_key);
  }

  // Oldest first: L1 (disjoint, all older), then L0 tables in creation
  // order, so later inserts into the map shadow earlier ones correctly.
  std::map<std::string, std::string> merged;
  std::vector<size_t> merge_l1;  // indexes of overlapping L1 inputs
  std::vector<std::pair<std::string, std::string>> input;
  for (size_t i = 0; i < levels_[1].size(); ++i) {
    const SsTable& t = *levels_[1][i];
    if (t.max_key < min_key || t.min_key > max_key) continue;
    io::Status s = ReadAll(t, &input, nullptr);
    if (!s.ok()) return s;
    for (auto& e : input) merged[std::move(e.first)] = std::move(e.second);
    merge_l1.push_back(i);
  }
  for (auto& t : levels_[0]) {
    io::Status s = ReadAll(*t, &input, nullptr);
    if (!s.ok()) return s;
    for (auto& e : input) merged[std::move(e.first)] = std::move(e.second);
  }

  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(merged.size());
  for (auto& [k, v] : merged) entries.emplace_back(k, v);
  std::vector<std::unique_ptr<SsTable>> tables;
  io::Status s = WriteTables(std::move(entries), &tables);
  if (!s.ok()) return s;

  // Commit in memory.
  std::vector<std::unique_ptr<SsTable>> removed;
  std::vector<std::unique_ptr<SsTable>> keep;
  std::set<size_t> merged_idx(merge_l1.begin(), merge_l1.end());
  for (size_t i = 0; i < levels_[1].size(); ++i) {
    (merged_idx.count(i) ? removed : keep).push_back(std::move(levels_[1][i]));
  }
  for (auto& t : levels_[0]) removed.push_back(std::move(t));
  levels_[0].clear();
  for (auto& t : tables) keep.push_back(std::move(t));
  std::sort(keep.begin(), keep.end(),
            [](const auto& a, const auto& b) { return a->min_key < b->min_key; });
  levels_[1] = std::move(keep);
  ++stats_.compactions;
  m.compactions->Increment();
  m.compaction_entries->Record(merged.size());

  // Publish, then drop the inputs. If the manifest write fails the input
  // files stay on disk: the stale manifest still names a complete,
  // content-equivalent state (compaction preserves content), and the next
  // successful manifest write supersedes it.
  io::Status ms = options_.durable ? WriteManifest() : io::Status::OK();
  if (ms.ok()) {
    for (auto& t : removed) CloseAndRemoveFile(*t);
  } else {
    for (auto& t : removed)
      if (t->file != nullptr) (void)t->file->Close();
  }
  return ms;
}

io::Status LsmTree::CompactLevel(size_t level) {
  // Move one table of `level` down, merging with overlapping tables. The
  // victim is chosen by a rotating cursor (as in RocksDB), so over time
  // every level spans the whole key range instead of partitioning it.
  const LsmObsMetrics& m = LsmObsMetrics::Get();
  obs::ScopedTimer span(m.compaction_ns, "lsm.compaction");
  if (levels_.size() < level + 2) levels_.resize(level + 2);
  if (compact_cursor_.size() < levels_.size()) compact_cursor_.resize(levels_.size(), 0);
  size_t idx = compact_cursor_[level] % levels_[level].size();
  compact_cursor_[level] = idx + 1;
  const SsTable& victim = *levels_[level][idx];

  std::vector<std::pair<std::string, std::string>> newer;
  io::Status s = ReadAll(victim, &newer, nullptr);
  if (!s.ok()) return s;
  std::vector<std::pair<std::string, std::string>> older;
  std::vector<size_t> merge_next;  // overlapping inputs in level+1
  std::vector<std::pair<std::string, std::string>> input;
  for (size_t i = 0; i < levels_[level + 1].size(); ++i) {
    const SsTable& t = *levels_[level + 1][i];
    if (t.max_key < victim.min_key || t.min_key > victim.max_key) continue;
    s = ReadAll(t, &input, nullptr);
    if (!s.ok()) return s;
    for (auto& e : input) older.push_back(std::move(e));
    merge_next.push_back(i);
  }

  std::vector<std::pair<std::string, std::string>> merged;
  merged.reserve(newer.size() + older.size());
  size_t i = 0, j = 0;
  while (i < newer.size() || j < older.size()) {
    if (j >= older.size())
      merged.push_back(std::move(newer[i++]));
    else if (i >= newer.size())
      merged.push_back(std::move(older[j++]));
    else if (newer[i].first < older[j].first)
      merged.push_back(std::move(newer[i++]));
    else if (older[j].first < newer[i].first)
      merged.push_back(std::move(older[j++]));
    else {  // duplicate: newer wins
      merged.push_back(std::move(newer[i++]));
      ++j;
    }
  }
  m.compaction_entries->Record(merged.size());
  std::vector<std::unique_ptr<SsTable>> tables;
  s = WriteTables(std::move(merged), &tables);
  if (!s.ok()) return s;

  std::vector<std::unique_ptr<SsTable>> removed;
  std::vector<std::unique_ptr<SsTable>> keep;
  std::set<size_t> merged_idx(merge_next.begin(), merge_next.end());
  for (size_t k = 0; k < levels_[level + 1].size(); ++k) {
    (merged_idx.count(k) ? removed : keep)
        .push_back(std::move(levels_[level + 1][k]));
  }
  removed.push_back(std::move(levels_[level][idx]));
  levels_[level].erase(levels_[level].begin() + idx);
  for (auto& t : tables) keep.push_back(std::move(t));
  std::sort(keep.begin(), keep.end(),
            [](const auto& a, const auto& b) { return a->min_key < b->min_key; });
  levels_[level + 1] = std::move(keep);
  ++stats_.compactions;
  m.compactions->Increment();

  io::Status ms = options_.durable ? WriteManifest() : io::Status::OK();
  if (ms.ok()) {
    for (auto& t : removed) CloseAndRemoveFile(*t);
  } else {
    for (auto& t : removed)
      if (t->file != nullptr) (void)t->file->Close();
  }
  return ms;
}

// ---------------------------------------------------------------------------
// Durability: manifest + recovery
// ---------------------------------------------------------------------------

io::Status LsmTree::WriteManifest() {
  LsmManifestData data;
  data.wal_gen = wal_gen_;
  data.next_table_id = next_table_id_;
  data.levels.resize(levels_.size());
  for (size_t l = 0; l < levels_.size(); ++l)
    for (const auto& t : levels_[l]) data.levels[l].push_back(t->id);
  io::Status s = LsmManifest::Write(*env_, options_.dir, ++manifest_gen_, data);
  if (s.ok()) LsmObsMetrics::Get().manifest_writes->Increment();
  return s;
}

io::Status LsmTree::OpenTable(uint64_t id, std::unique_ptr<SsTable>* out) {
  auto t = std::make_unique<SsTable>();
  t->id = id;
  t->path = TablePath(id);
  io::Status s = env_->NewFile(t->path, io::OpenMode::kRead, &t->file);
  if (!s.ok()) return s;
  uint64_t size = 0;
  s = t->file->Size(&size);
  if (!s.ok()) return s;
  if (size < kSstTrailerBytes) {
    return io::Status::Corruption("table smaller than its trailer: " + t->path);
  }
  char trailer[kSstTrailerBytes];
  s = t->file->ReadFull(size - kSstTrailerBytes, trailer, kSstTrailerBytes);
  if (!s.ok()) return s;
  uint64_t footer_offset;
  uint32_t footer_crc, magic;
  std::memcpy(&footer_offset, trailer, 8);
  std::memcpy(&footer_crc, trailer + 8, 4);
  std::memcpy(&magic, trailer + 12, 4);
  if (magic != kSstMagic) {
    return io::Status::Corruption("bad table magic: " + t->path);
  }
  if (footer_offset > size - kSstTrailerBytes) {
    return io::Status::Corruption("table footer offset out of range: " +
                                  t->path);
  }
  const size_t footer_len =
      static_cast<size_t>(size - kSstTrailerBytes - footer_offset);
  std::string footer(footer_len, '\0');
  if (footer_len > 0) {
    s = t->file->ReadFull(footer_offset, footer.data(), footer_len);
    if (!s.ok()) return s;
  }
  if (io::Crc32c(footer.data(), footer.size()) != footer_crc) {
    return io::Status::Corruption("table footer checksum mismatch: " + t->path);
  }

  BufReader r(footer);
  uint32_t nblocks = 0;
  if (!r.ReadU32(&nblocks) || nblocks == 0) {
    return io::Status::Corruption("table footer unparsable: " + t->path);
  }
  t->block_first_key.reserve(nblocks);
  t->block_offset.reserve(nblocks);
  t->block_length.reserve(nblocks);
  for (uint32_t b = 0; b < nblocks; ++b) {
    uint32_t klen = 0, len = 0;
    uint64_t off = 0;
    std::string key;
    if (!r.ReadU32(&klen) || !r.ReadString(klen, &key) || !r.ReadU64(&off) ||
        !r.ReadU32(&len)) {
      return io::Status::Corruption("table footer unparsable: " + t->path);
    }
    t->block_first_key.push_back(std::move(key));
    t->block_offset.push_back(off);
    t->block_length.push_back(len);
  }
  uint32_t maxklen = 0;
  if (!r.ReadU64(&t->num_entries) || !r.ReadU32(&maxklen) ||
      !r.ReadString(maxklen, &t->max_key) || !r.AtEnd()) {
    return io::Status::Corruption("table footer unparsable: " + t->path);
  }
  t->min_key = t->block_first_key.front();
  t->data_bytes = footer_offset;
  t->file_bytes = size;

  // Rebuild the filter from block data. A corrupt block means the filter
  // would miss its keys — a false negative — so such a table serves reads
  // unfiltered instead.
  if (options_.filter != LsmFilterType::kNone) {
    std::vector<std::pair<std::string, std::string>> entries;
    size_t corrupt = 0;
    s = ReadAll(*t, &entries, &corrupt);
    if (s.ok() && corrupt == 0 && !entries.empty()) {
      BuildFilter(t.get(), entries);
    }
  }
  *out = std::move(t);
  return io::Status::OK();
}

io::Status LsmTree::Recover() {
  const LsmObsMetrics& m = LsmObsMetrics::Get();
  io::Status s = env_->MkDir(options_.dir);
  if (!s.ok()) return s;

  LsmManifestData data;
  uint64_t gen = 0;
  s = LsmManifest::Load(*env_, options_.dir, &data, &gen);
  if (s.IsNotFound()) {
    // Fresh directory: establish the initial manifest + WAL.
    wal_gen_ = 1;
    s = WriteManifest();
    if (!s.ok()) return s;
    wal_ = std::make_unique<LsmWal>(*env_, WalPath(wal_gen_));
    s = wal_->Open();
    if (!s.ok()) wal_.reset();
    return s;
  }
  // A corrupt manifest is not silently reinitialized — that would orphan
  // (and later GC) every table of the previous incarnation. The tree opens
  // empty and degraded (writes rejected), with the error surfaced.
  if (!s.ok()) return s;

  manifest_gen_ = gen;
  wal_gen_ = data.wal_gen;
  next_table_id_ = data.next_table_id;
  if (data.levels.size() > levels_.size()) levels_.resize(data.levels.size());
  std::set<uint64_t> live;
  for (size_t l = 0; l < data.levels.size(); ++l) {
    for (uint64_t id : data.levels[l]) {
      std::unique_ptr<SsTable> t;
      io::Status ts = OpenTable(id, &t);
      if (ts.ok()) {
        live.insert(id);
        levels_[l].push_back(std::move(t));
      } else {
        // Serve what remains (degraded): newer versions of these keys may
        // exist in other tables; readers fall through as with quarantines.
        m.recovery_bad_tables->Increment();
        obs::TraceEvent("lsm.recovery.bad_table");
        last_io_error_ = ts;
        live.insert(id);  // do not GC a file we failed to open
      }
    }
  }
  for (size_t l = 1; l < levels_.size(); ++l) {
    std::sort(levels_[l].begin(), levels_[l].end(),
              [](const auto& a, const auto& b) { return a->min_key < b->min_key; });
  }

  // Sweep orphans: tables no manifest references (written but never
  // committed), superseded manifests, stale WALs, and half-renamed temps.
  std::vector<std::string> dir_entries;
  if (env_->ListDir(options_.dir, &dir_entries).ok()) {
    const std::string current_manifest = LsmManifest::FileName(manifest_gen_);
    const std::string current_wal = "wal_" + std::to_string(wal_gen_);
    for (const std::string& e : dir_entries) {
      bool orphan = false;
      if (e.rfind("sst_", 0) == 0) {
        uint64_t id = ~0ull;
        if (!ParseTrailingId(e, "sst_", &id) || !live.count(id)) orphan = true;
      } else if (e.rfind("MANIFEST-", 0) == 0) {
        orphan = e != current_manifest;
      } else if (e.rfind("wal_", 0) == 0) {
        orphan = e != current_wal;
      } else if (e.size() > 4 && e.compare(e.size() - 4, 4, ".tmp") == 0) {
        orphan = true;
      }
      if (orphan && env_->Remove(options_.dir + "/" + e).ok()) {
        m.recovery_orphans_removed->Increment();
      }
    }
  }

  // Replay the WAL into the memtable; everything acked before the crash is
  // in here or in a manifest-committed table.
  uint64_t replayed = 0;
  bool torn = false;
  s = LsmWal::Replay(
      *env_, WalPath(wal_gen_),
      [this](std::string_view k, std::string_view v) { ApplyToMemtable(k, v); },
      &replayed, &torn);
  if (!s.ok()) {
    last_io_error_ = s;  // degraded: acked writes in the log may be lost
    obs::TraceEvent("lsm.recovery.wal_unreadable");
  }
  m.wal_replayed_records->Add(replayed);
  if (torn) {
    m.wal_torn_tails->Increment();
    obs::TraceEvent("lsm.recovery.wal_torn_tail");
  }

  if (!memtable_.empty()) {
    // Persist the replayed writes into a table and rotate to a fresh WAL in
    // one committed step. On failure the old WAL stays authoritative and
    // the tree opens degraded for writes (wal_ == nullptr).
    s = FlushMemTable();
    if (!s.ok()) return s;
    return MaybeCompact();
  }
  // Empty log: reuse the slot, truncating any torn garbage at its tail
  // (torn bytes are by definition unacked).
  wal_ = std::make_unique<LsmWal>(*env_, WalPath(wal_gen_));
  s = wal_->Open();
  if (!s.ok()) wal_.reset();
  return s;
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

const LsmTree::Block* LsmTree::GetBlock(const SsTable& t, size_t block_idx) {
  if (t.quarantined.count(block_idx) != 0) return nullptr;
  auto key = std::make_pair(t.id, block_idx);
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    CacheSlot& slot = cache_[it->second];
    slot.referenced = true;
    ++stats_.block_cache_hits;  // published lazily by SyncObsCounters()
    return &slot.entries;
  }
  auto quarantine = [&]() -> const Block* {
    ++stats_.block_corruptions;
    t.quarantined.insert(block_idx);
    obs::TraceEvent("lsm.block.quarantine");
    return nullptr;
  };
  if (t.file == nullptr) return quarantine();
  ++stats_.block_reads;
  std::string raw(t.block_length[block_idx] + kBlockCrcBytes, '\0');
  io::Status s =
      t.file->ReadFull(t.block_offset[block_idx], raw.data(), raw.size());
  if (!s.ok()) {
    last_io_error_ = s;
    return quarantine();
  }
  uint32_t stored;
  std::memcpy(&stored, raw.data() + raw.size() - kBlockCrcBytes,
              sizeof(stored));
  if (io::Crc32c(raw.data(), raw.size() - kBlockCrcBytes) != stored) {
    return quarantine();
  }
  Block entries;
  if (!ParseBlock(
          std::string_view(raw.data(), raw.size() - kBlockCrcBytes),
          &entries)) {
    return quarantine();
  }
  // CLOCK insert.
  while (true) {
    CacheSlot& slot = cache_[cache_hand_];
    if (!slot.referenced) {
      if (slot.table_id != ~0ull)
        cache_index_.erase({slot.table_id, slot.block});
      slot.table_id = t.id;
      slot.block = block_idx;
      slot.entries = std::move(entries);
      slot.referenced = true;
      cache_index_[key] = cache_hand_;
      cache_hand_ = (cache_hand_ + 1) % cache_.size();
      return &slot.entries;
    }
    slot.referenced = false;
    cache_hand_ = (cache_hand_ + 1) % cache_.size();
  }
}

bool LsmTree::FilterMayContain(const SsTable& t, std::string_view key) {
  if (t.bloom == nullptr && t.surf == nullptr) return true;
  ++stats_.filter_probes;  // published lazily by SyncObsCounters()
  bool may = t.bloom != nullptr ? t.bloom->MayContain(key)
                                : t.surf->MayContain(key);
  if (!may) ++stats_.filter_negatives;
  return may;
}

bool LsmTree::FilterMayContainRange(const SsTable& t, std::string_view lk,
                                    std::string_view hk) {
  if (t.surf == nullptr) return true;  // Bloom cannot answer ranges
  ++stats_.filter_probes;
  bool may = t.surf->MayContainRange(lk, hk);
  if (!may) ++stats_.filter_negatives;
  return may;
}

bool LsmTree::TableGet(const SsTable& t, std::string_view key,
                       std::string* value, const bool* filter_hint) {
  if (key < t.min_key || key > t.max_key) return false;
  const bool filtered = t.bloom != nullptr || t.surf != nullptr;
  if (filter_hint != nullptr && filtered) {
    // Speculative answer from the batched fan-out: account the probe here,
    // in scalar order, so the stats match the unbatched path exactly.
    MET_DCHECK(*filter_hint == (t.bloom != nullptr ? t.bloom->MayContain(key)
                                                   : t.surf->MayContain(key)),
               "fan-out filter answer diverged from scalar");
    ++stats_.filter_probes;
    if (!*filter_hint) {
      ++stats_.filter_negatives;
      return false;
    }
  } else if (!FilterMayContain(t, key)) {
    return false;
  }
  // Fence index: last block whose first key <= key.
  auto it = std::upper_bound(t.block_first_key.begin(), t.block_first_key.end(),
                             std::string(key));
  size_t block = it == t.block_first_key.begin()
                     ? 0
                     : (it - t.block_first_key.begin()) - 1;
  const Block* entries = GetBlock(t, block);
  if (entries == nullptr) return false;  // quarantined: fall through to older
  auto eit = std::lower_bound(
      entries->begin(), entries->end(), key,
      [](const auto& e, std::string_view k) { return e.first < k; });
  const bool found = eit != entries->end() && eit->first == key;
  if (filtered) {
    // Resolve the filter's positive answer against the block: present keys
    // are true positives, absent ones false positives (live FPR). Published
    // lazily by SyncObsCounters().
    if (t.bloom != nullptr)
      ++(found ? outcomes_.bloom_tp : outcomes_.bloom_fp);
    else
      ++(found ? outcomes_.surf_tp : outcomes_.surf_fp);
  }
  if (!found) return false;
  if (value != nullptr) *value = eit->second;
  return true;
}

bool LsmTree::Lookup(std::string_view key, std::string* value) {
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (value != nullptr) *value = it->second;
    return true;
  }
  // Candidate tables in probe order: L0 newest-first (components may
  // overlap), then the single range-covering table of each deeper level.
  // The key-range test here is the same one TableGet applies first, so
  // excluded tables contribute nothing to stats on either path.
  probe_tables_.clear();
  for (auto t = levels_[0].rbegin(); t != levels_[0].rend(); ++t)
    if (key >= (*t)->min_key && key <= (*t)->max_key)
      probe_tables_.push_back(t->get());
  for (size_t l = 1; l < levels_.size(); ++l) {
    // Levels >= 1 are disjoint: binary search for the candidate table.
    const auto& level = levels_[l];
    auto lit = std::upper_bound(
        level.begin(), level.end(), key,
        [](std::string_view k, const auto& t) { return k < t->min_key; });
    if (lit == level.begin()) continue;
    --lit;
    if (key <= (*lit)->max_key) probe_tables_.push_back(lit->get());
  }

  // Filter fan-out (met::batch): probe every candidate's Bloom filter for
  // this key as one interleaved batch before any block I/O — the dominant
  // read-path misses across levels overlap instead of serializing. The
  // speculative answers are handed to TableGet, which accounts them in
  // scalar probe order (tables past the first hit stay uncounted).
  probe_may_.assign(probe_tables_.size(), 2);
  probe_blooms_.clear();
  probe_bloom_slot_.clear();
  for (size_t i = 0; i < probe_tables_.size(); ++i) {
    if (probe_tables_[i]->bloom != nullptr) {
      probe_blooms_.push_back(probe_tables_[i]->bloom.get());
      probe_bloom_slot_.push_back(static_cast<uint32_t>(i));
    }
  }
  if (probe_blooms_.size() > 1) {
    const uint64_t h = MurmurHash64(key);
    constexpr size_t kFanOut = 64;
    bool spec[kFanOut];
    for (size_t base = 0; base < probe_blooms_.size(); base += kFanOut) {
      size_t g = std::min(kFanOut, probe_blooms_.size() - base);
      BloomFilter::MayContainHashFanOut(probe_blooms_.data() + base, g, h,
                                        spec);
      for (size_t i = 0; i < g; ++i)
        probe_may_[probe_bloom_slot_[base + i]] = spec[i] ? 1 : 0;
    }
  }

  for (size_t i = 0; i < probe_tables_.size(); ++i) {
    const bool hint = probe_may_[i] == 1;
    if (TableGet(*probe_tables_[i], key, value,
                 probe_may_[i] != 2 ? &hint : nullptr))
      return true;
  }
  return false;
}

std::optional<std::string> LsmTree::TableSeek(const SsTable& t,
                                              std::string_view lk) {
  if (lk > t.max_key) return std::nullopt;
  auto it = std::upper_bound(t.block_first_key.begin(), t.block_first_key.end(),
                             std::string(lk));
  size_t block = it == t.block_first_key.begin()
                     ? 0
                     : (it - t.block_first_key.begin()) - 1;
  while (block < t.block_first_key.size()) {
    const Block* entries = GetBlock(t, block);
    if (entries == nullptr) {  // quarantined: skip to the next block
      ++block;
      continue;
    }
    auto eit = std::lower_bound(
        entries->begin(), entries->end(), lk,
        [](const auto& e, std::string_view k) { return e.first < k; });
    if (eit != entries->end()) return eit->first;
    ++block;
  }
  return std::nullopt;
}

std::optional<std::string> LsmTree::Seek(std::string_view lk) {
  return ClosedSeek(lk, std::string_view());
}

std::optional<std::string> LsmTree::ClosedSeek(std::string_view lk,
                                               std::string_view hk) {
  // hk empty => open seek.
  std::optional<std::string> best;
  auto consider = [&](std::optional<std::string> cand) {
    if (!cand) return;
    if (!best || *cand < *best) best = std::move(cand);
  };

  // MemTable candidate (no I/O).
  auto mit = memtable_.lower_bound(lk);
  if (mit != memtable_.end()) consider(mit->first);

  // Gather the candidate table per level (plus L0 overlaps).
  std::vector<const SsTable*> tables;
  for (auto t = levels_[0].rbegin(); t != levels_[0].rend(); ++t)
    if (lk <= (*t)->max_key) tables.push_back(t->get());
  for (size_t l = 1; l < levels_.size(); ++l) {
    const auto& level = levels_[l];
    auto lit = std::upper_bound(
        level.begin(), level.end(), lk,
        [](std::string_view k, const auto& t) { return k < t->min_key; });
    if (lit != level.begin()) {
      auto prev = lit - 1;
      if (lk <= (*prev)->max_key) tables.push_back(prev->get());
    }
    if (lit != level.end()) tables.push_back(lit->get());
  }

  if (!hk.empty()) {
    // Closed seek: the range filter proves most tables empty with no I/O.
    for (const SsTable* t : tables) {
      if (t->surf != nullptr) {
        ++stats_.filter_probes;
        if (!t->surf->MayContainRange(lk, hk)) {
          ++stats_.filter_negatives;
          continue;
        }
      }
      consider(TableSeek(*t, lk));
    }
    if (!best) return std::nullopt;
    if (*best > std::string(hk)) return std::nullopt;
    return best;
  }

  // Open seek (Section 4.2): obtain each table's candidate from its SuRF
  // without I/O, then fetch blocks only where the truncated candidate could
  // still be the global minimum. A table whose candidate prefix sorts after
  // an already-resolved full key cannot win (its real key >= its prefix).
  std::vector<std::pair<std::string, const SsTable*>> surf_cands;
  for (const SsTable* t : tables) {
    if (t->surf == nullptr) {
      consider(TableSeek(*t, lk));  // no filter: must fetch
      continue;
    }
    ++stats_.filter_probes;
    Surf::SeekResult r = t->surf->MoveToNext(lk);
    if (!r.found) {
      ++stats_.filter_negatives;
      continue;
    }
    surf_cands.emplace_back(std::move(r.key), t);
  }
  std::sort(surf_cands.begin(), surf_cands.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [prefix, t] : surf_cands) {
    if (best && prefix > *best) {
      ++stats_.filter_negatives;  // I/O avoided by the filter candidate
      continue;
    }
    consider(TableSeek(*t, lk));
  }
  return best;
}

uint64_t LsmTree::Count(std::string_view lk, std::string_view hk) {
  // A key overwritten after a flush has stale versions in older components
  // (memtable vs L0 vs deeper levels), so the exact path must count distinct
  // keys across everything it scans. SuRF-filtered tables instead report an
  // in-memory approximate count with no I/O — and no dedup.
  uint64_t approx = 0;
  std::set<std::string, std::less<>> scanned;
  for (auto it = memtable_.lower_bound(lk);
       it != memtable_.end() && it->first <= hk; ++it)
    scanned.insert(it->first);

  auto count_table = [&](const SsTable& t) {
    if (lk > t.max_key || hk < t.min_key) return;
    if (t.surf != nullptr) {
      ++stats_.filter_probes;
      approx += t.surf->Count(lk, hk);  // in-memory, no I/O
      return;
    }
    // Scan blocks.
    auto it = std::upper_bound(t.block_first_key.begin(),
                               t.block_first_key.end(), std::string(lk));
    size_t block = it == t.block_first_key.begin()
                       ? 0
                       : (it - t.block_first_key.begin()) - 1;
    for (; block < t.block_first_key.size(); ++block) {
      if (t.block_first_key[block] > std::string(hk)) break;
      const Block* entries = GetBlock(t, block);
      if (entries == nullptr) continue;  // quarantined
      for (const auto& [k, v] : *entries)
        if (k >= lk && k <= hk) scanned.insert(k);
    }
  };

  for (const auto& t : levels_[0]) count_table(*t);
  for (size_t l = 1; l < levels_.size(); ++l)
    for (const auto& t : levels_[l]) count_table(*t);
  return approx + scanned.size();
}

size_t LsmTree::FilterMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& level : levels_)
    for (const auto& t : level) {
      if (t->bloom != nullptr) bytes += t->bloom->MemoryBytes();
      if (t->surf != nullptr) bytes += t->surf->MemoryBytes();
    }
  return bytes;
}

namespace {

// Heap allocation behind a std::string (libstdc++ SSO threshold is 15).
size_t StrHeapBytes(const std::string& s) {
  return s.capacity() > 15 ? s.capacity() + 1 : 0;
}

}  // namespace

size_t LsmTree::MemoryBytes() const { return Breakdown().TotalBytes(); }

MemoryBreakdown LsmTree::Breakdown() const {
  MemoryBreakdown b("lsm");

  // Memtable: red-black tree node per entry (payload pair + ~3 pointers and
  // color word of the _Rb_tree node header) plus string heap.
  size_t memtable = 0;
  constexpr size_t kMapNodeOverhead = 4 * sizeof(void*);
  for (const auto& [k, v] : memtable_) {
    memtable += sizeof(std::pair<const std::string, std::string>) +
                kMapNodeOverhead + StrHeapBytes(k) + StrHeapBytes(v);
  }
  b.Add("memtable", memtable);

  // Per-table resident state, filters split out from fence/metadata.
  size_t metadata = 0, fences = 0, filters = 0;
  for (const auto& level : levels_) {
    for (const auto& t : level) {
      metadata += sizeof(SsTable) + StrHeapBytes(t->path) +
                  StrHeapBytes(t->min_key) + StrHeapBytes(t->max_key);
      fences += t->block_first_key.capacity() * sizeof(std::string) +
                t->block_offset.capacity() * sizeof(uint64_t) +
                t->block_length.capacity() * sizeof(uint32_t);
      for (const auto& fk : t->block_first_key) fences += StrHeapBytes(fk);
      if (t->bloom != nullptr) filters += t->bloom->MemoryBytes();
      if (t->surf != nullptr) filters += t->surf->MemoryBytes();
    }
  }
  b.Add("table_metadata", metadata);
  b.Add("fence_indexes", fences);
  b.Add("filters", filters);

  // Block cache: slot array plus decoded entries (and the CLOCK index map).
  size_t cache = cache_.capacity() * sizeof(CacheSlot);
  for (const auto& slot : cache_) {
    cache += slot.entries.capacity() *
             sizeof(std::pair<std::string, std::string>);
    for (const auto& [k, v] : slot.entries)
      cache += StrHeapBytes(k) + StrHeapBytes(v);
  }
  cache += cache_index_.size() *
           (sizeof(std::pair<const std::pair<uint64_t, size_t>, size_t>) +
            kMapNodeOverhead);
  b.Add("block_cache", cache);
  return b;
}

size_t LsmTree::NumTables() const {
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

uint64_t LsmTree::DiskBytes() const {
  uint64_t bytes = 0;
  for (const auto& level : levels_)
    for (const auto& t : level) bytes += t->file_bytes;
  return bytes;
}

}  // namespace met
