#include "lsm/lsm.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "common/assert.h"

namespace met {

namespace {

void AppendEntry(std::string* out, std::string_view key, std::string_view value) {
  uint32_t klen = static_cast<uint32_t>(key.size());
  uint32_t vlen = static_cast<uint32_t>(value.size());
  out->append(reinterpret_cast<const char*>(&klen), sizeof(klen));
  out->append(key);
  out->append(reinterpret_cast<const char*>(&vlen), sizeof(vlen));
  out->append(value);
}

}  // namespace

const LsmObsMetrics& LsmObsMetrics::Get() {
  static const LsmObsMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return LsmObsMetrics{
        reg.GetCounter("lsm.block.reads"),
        reg.GetCounter("lsm.block.cache_hits"),
        reg.GetCounter("lsm.flush.count"),
        reg.GetCounter("lsm.compaction.count"),
        reg.GetCounter("lsm.filter.probes"),
        reg.GetCounter("lsm.filter.negatives"),
        reg.GetCounter("lsm.filter.bloom.true_positives"),
        reg.GetCounter("lsm.filter.bloom.false_positives"),
        reg.GetCounter("lsm.filter.surf.true_positives"),
        reg.GetCounter("lsm.filter.surf.false_positives"),
        reg.GetHistogram("lsm.flush.duration_ns"),
        reg.GetHistogram("lsm.compaction.duration_ns"),
        reg.GetHistogram("lsm.compaction.merged_entries"),
    };
  }();
  return m;
}

const char* LsmFilterTypeName(LsmFilterType t) {
  switch (t) {
    case LsmFilterType::kNone:
      return "no-filter";
    case LsmFilterType::kBloom:
      return "Bloom";
    case LsmFilterType::kSurfHash:
      return "SuRF-Hash";
    case LsmFilterType::kSurfReal:
      return "SuRF-Real";
  }
  return "?";
}

LsmTree::LsmTree(const LsmOptions& options) : options_(options) {
  ::mkdir(options_.dir.c_str(), 0755);
  levels_.resize(1);
  cache_.resize(options_.block_cache_blocks);
  obs_collector_ =
      obs::MetricsRegistry::Global().AddCollector([this] { SyncObsCounters(); });
}

LsmTree::~LsmTree() {
  obs::MetricsRegistry::Global().RemoveCollector(obs_collector_);
  SyncObsCounters();
  for (auto& level : levels_)
    for (auto& t : level) {
      if (t->fd >= 0) ::close(t->fd);
      ::unlink(t->path.c_str());
    }
}

void LsmTree::SyncObsCounters() {
  const LsmObsMetrics& m = LsmObsMetrics::Get();
  m.block_reads->Add(stats_.block_reads - obs_synced_.block_reads);
  m.block_cache_hits->Add(stats_.block_cache_hits -
                          obs_synced_.block_cache_hits);
  m.filter_probes->Add(stats_.filter_probes - obs_synced_.filter_probes);
  m.filter_negatives->Add(stats_.filter_negatives -
                          obs_synced_.filter_negatives);
  obs_synced_.block_reads = stats_.block_reads;
  obs_synced_.block_cache_hits = stats_.block_cache_hits;
  obs_synced_.filter_probes = stats_.filter_probes;
  obs_synced_.filter_negatives = stats_.filter_negatives;
  m.bloom_true_positives->Add(outcomes_.bloom_tp - outcomes_synced_.bloom_tp);
  m.bloom_false_positives->Add(outcomes_.bloom_fp - outcomes_synced_.bloom_fp);
  m.surf_true_positives->Add(outcomes_.surf_tp - outcomes_synced_.surf_tp);
  m.surf_false_positives->Add(outcomes_.surf_fp - outcomes_synced_.surf_fp);
  outcomes_synced_ = outcomes_;
}

void LsmTree::Put(std::string_view key, std::string_view value) {
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    memtable_bytes_ += value.size() - it->second.size();
    it->second = std::string(value);
  } else {
    memtable_bytes_ += key.size() + value.size() + 32;
    memtable_.emplace(std::string(key), std::string(value));
  }
  if (memtable_bytes_ >= options_.memtable_bytes) {
    FlushMemTable();
    MaybeCompact();
  }
}

void LsmTree::FlushMemTable() {
  if (memtable_.empty()) return;
  const LsmObsMetrics& m = LsmObsMetrics::Get();
  obs::ScopedTimer span(m.flush_ns, "lsm.flush");
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(memtable_.size());
  for (auto& [k, v] : memtable_) entries.emplace_back(k, v);
  memtable_.clear();
  memtable_bytes_ = 0;
  levels_[0].push_back(WriteTable(entries));
  ++stats_.flushes;
  m.flushes->Increment();
}

std::unique_ptr<LsmTree::SsTable> LsmTree::WriteTable(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  auto t = std::make_unique<SsTable>();
  t->id = next_table_id_++;
  t->path = options_.dir + "/sst_" + std::to_string(t->id);
  t->min_key = entries.front().first;
  t->max_key = entries.back().first;
  t->num_entries = entries.size();

  std::string file;
  std::string block;
  std::string block_first = entries.front().first;
  auto flush_block = [&]() {
    if (block.empty()) return;
    t->block_first_key.push_back(block_first);
    t->block_offset.push_back(file.size());
    t->block_length.push_back(static_cast<uint32_t>(block.size()));
    file.append(block);
    block.clear();
  };
  for (const auto& [k, v] : entries) {
    if (block.empty()) block_first = k;
    AppendEntry(&block, k, v);
    if (block.size() >= options_.block_bytes) flush_block();
  }
  flush_block();

  int fd = ::open(t->path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  MET_ASSERT(fd >= 0, "SSTable create failed");
  ssize_t written = ::write(fd, file.data(), file.size());
  MET_ASSERT(written == static_cast<ssize_t>(file.size()),
             "short SSTable write");
  (void)written;
  ::close(fd);
  t->file_bytes = file.size();
  t->fd = ::open(t->path.c_str(), O_RDONLY);
  MET_ASSERT(t->fd >= 0, "SSTable reopen failed");

  // Build the table's filter.
  switch (options_.filter) {
    case LsmFilterType::kNone:
      break;
    case LsmFilterType::kBloom: {
      t->bloom = std::make_unique<BloomFilter>(entries.size(),
                                               options_.bloom_bits_per_key);
      for (const auto& [k, v] : entries) t->bloom->Add(k);
      break;
    }
    case LsmFilterType::kSurfHash:
    case LsmFilterType::kSurfReal: {
      std::vector<std::string> keys;
      keys.reserve(entries.size());
      for (const auto& [k, v] : entries) keys.push_back(k);
      SurfConfig cfg = options_.filter == LsmFilterType::kSurfHash
                           ? SurfConfig::Hash(options_.surf_suffix_bits)
                           : SurfConfig::Real(options_.surf_suffix_bits);
      t->surf = std::make_unique<Surf>();
      t->surf->Build(keys, cfg);
      break;
    }
  }
  return t;
}

std::vector<std::unique_ptr<LsmTree::SsTable>> LsmTree::WriteTables(
    std::vector<std::pair<std::string, std::string>>&& entries) {
  std::vector<std::unique_ptr<SsTable>> out;
  std::vector<std::pair<std::string, std::string>> chunk;
  size_t bytes = 0;
  for (auto& e : entries) {
    bytes += e.first.size() + e.second.size() + 8;
    chunk.push_back(std::move(e));
    if (bytes >= options_.sstable_target_bytes) {
      out.push_back(WriteTable(chunk));
      chunk.clear();
      bytes = 0;
    }
  }
  if (!chunk.empty()) out.push_back(WriteTable(chunk));
  return out;
}

std::vector<std::pair<std::string, std::string>> LsmTree::ReadAll(
    const SsTable& t) {
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(t.num_entries);
  std::string file(t.file_bytes, '\0');
  ssize_t got = ::pread(t.fd, file.data(), file.size(), 0);
  MET_ASSERT(got == static_cast<ssize_t>(file.size()),
             "short SSTable read");
  (void)got;
  size_t off = 0;
  while (off < file.size()) {
    uint32_t klen, vlen;
    std::memcpy(&klen, file.data() + off, sizeof(klen));
    off += sizeof(klen);
    std::string k(file.data() + off, klen);
    off += klen;
    std::memcpy(&vlen, file.data() + off, sizeof(vlen));
    off += sizeof(vlen);
    std::string v(file.data() + off, vlen);
    off += vlen;
    entries.emplace_back(std::move(k), std::move(v));
  }
  return entries;
}

void LsmTree::MaybeCompact() {
  while (true) {
    if (levels_[0].size() > options_.level0_table_limit) {
      CompactLevel0();
      continue;
    }
    bool did = false;
    for (size_t l = 1; l < levels_.size(); ++l) {
      uint64_t limit = options_.level1_bytes;
      for (size_t i = 1; i < l; ++i) limit *= options_.level_multiplier;
      uint64_t bytes = 0;
      for (const auto& t : levels_[l]) bytes += t->file_bytes;
      if (bytes > limit) {
        CompactLevel(l);
        did = true;
        break;
      }
    }
    if (!did) break;
  }
}

void LsmTree::CompactLevel0() {
  // Merge all L0 tables plus every overlapping L1 table into new L1 tables.
  const LsmObsMetrics& m = LsmObsMetrics::Get();
  obs::ScopedTimer span(m.compaction_ns, "lsm.compaction.l0");
  if (levels_.size() < 2) levels_.resize(2);
  const size_t l0_count = levels_[0].size();

  std::string min_key = levels_[0].front()->min_key;
  std::string max_key = levels_[0].front()->max_key;
  for (auto& t : levels_[0]) {
    min_key = std::min(min_key, t->min_key);
    max_key = std::max(max_key, t->max_key);
  }

  // Oldest first: L1 (disjoint, all older), then L0 tables in creation
  // order, so later inserts into the map shadow earlier ones correctly.
  std::map<std::string, std::string> merged;
  std::vector<std::unique_ptr<SsTable>> keep;
  for (auto& t : levels_[1]) {
    if (t->max_key < min_key || t->min_key > max_key) {
      keep.push_back(std::move(t));
    } else {
      for (auto& e : ReadAll(*t)) merged[std::move(e.first)] = std::move(e.second);
      ::close(t->fd);
      ::unlink(t->path.c_str());
    }
  }
  for (size_t r = 0; r < l0_count; ++r) {
    SsTable& t = *levels_[0][r];
    for (auto& e : ReadAll(t)) merged[std::move(e.first)] = std::move(e.second);
    ::close(t.fd);
    ::unlink(t.path.c_str());
  }
  levels_[0].clear();

  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(merged.size());
  for (auto& [k, v] : merged) entries.emplace_back(k, v);
  auto tables = WriteTables(std::move(entries));
  for (auto& t : tables) keep.push_back(std::move(t));
  std::sort(keep.begin(), keep.end(),
            [](const auto& a, const auto& b) { return a->min_key < b->min_key; });
  levels_[1] = std::move(keep);
  ++stats_.compactions;
  m.compactions->Increment();
  m.compaction_entries->Record(merged.size());
}

void LsmTree::CompactLevel(size_t level) {
  // Move one table of `level` down, merging with overlapping tables. The
  // victim is chosen by a rotating cursor (as in RocksDB), so over time
  // every level spans the whole key range instead of partitioning it.
  const LsmObsMetrics& m = LsmObsMetrics::Get();
  obs::ScopedTimer span(m.compaction_ns, "lsm.compaction");
  if (levels_.size() < level + 2) levels_.resize(level + 2);
  if (compact_cursor_.size() < levels_.size()) compact_cursor_.resize(levels_.size(), 0);
  size_t idx = compact_cursor_[level] % levels_[level].size();
  compact_cursor_[level] = idx + 1;
  std::unique_ptr<SsTable> victim = std::move(levels_[level][idx]);
  levels_[level].erase(levels_[level].begin() + idx);

  std::vector<std::pair<std::string, std::string>> newer = ReadAll(*victim);
  std::vector<std::pair<std::string, std::string>> older;
  std::vector<std::unique_ptr<SsTable>> keep;
  for (auto& t : levels_[level + 1]) {
    if (t->max_key < victim->min_key || t->min_key > victim->max_key) {
      keep.push_back(std::move(t));
    } else {
      auto entries = ReadAll(*t);
      for (auto& e : entries) older.push_back(std::move(e));
      ::close(t->fd);
      ::unlink(t->path.c_str());
    }
  }
  ::close(victim->fd);
  ::unlink(victim->path.c_str());

  std::vector<std::pair<std::string, std::string>> merged;
  merged.reserve(newer.size() + older.size());
  size_t i = 0, j = 0;
  while (i < newer.size() || j < older.size()) {
    if (j >= older.size())
      merged.push_back(std::move(newer[i++]));
    else if (i >= newer.size())
      merged.push_back(std::move(older[j++]));
    else if (newer[i].first < older[j].first)
      merged.push_back(std::move(newer[i++]));
    else if (older[j].first < newer[i].first)
      merged.push_back(std::move(older[j++]));
    else {  // duplicate: newer wins
      merged.push_back(std::move(newer[i++]));
      ++j;
    }
  }
  m.compaction_entries->Record(merged.size());
  auto tables = WriteTables(std::move(merged));
  for (auto& t : tables) keep.push_back(std::move(t));
  std::sort(keep.begin(), keep.end(),
            [](const auto& a, const auto& b) { return a->min_key < b->min_key; });
  levels_[level + 1] = std::move(keep);
  ++stats_.compactions;
  m.compactions->Increment();
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

const LsmTree::Block& LsmTree::GetBlock(const SsTable& t, size_t block_idx) {
  auto key = std::make_pair(t.id, block_idx);
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    CacheSlot& slot = cache_[it->second];
    slot.referenced = true;
    ++stats_.block_cache_hits;  // published lazily by SyncObsCounters()
    return slot.entries;
  }
  ++stats_.block_reads;
  std::string raw(t.block_length[block_idx], '\0');
  ssize_t got =
      ::pread(t.fd, raw.data(), raw.size(), t.block_offset[block_idx]);
  MET_ASSERT(got == static_cast<ssize_t>(raw.size()),
             "short block read");
  (void)got;
  Block entries;
  size_t off = 0;
  while (off < raw.size()) {
    uint32_t klen, vlen;
    std::memcpy(&klen, raw.data() + off, sizeof(klen));
    off += sizeof(klen);
    std::string k(raw.data() + off, klen);
    off += klen;
    std::memcpy(&vlen, raw.data() + off, sizeof(vlen));
    off += sizeof(vlen);
    std::string v(raw.data() + off, vlen);
    off += vlen;
    entries.emplace_back(std::move(k), std::move(v));
  }
  // CLOCK insert.
  while (true) {
    CacheSlot& slot = cache_[cache_hand_];
    if (!slot.referenced) {
      if (slot.table_id != ~0ull)
        cache_index_.erase({slot.table_id, slot.block});
      slot.table_id = t.id;
      slot.block = block_idx;
      slot.entries = std::move(entries);
      slot.referenced = true;
      cache_index_[key] = cache_hand_;
      cache_hand_ = (cache_hand_ + 1) % cache_.size();
      return slot.entries;
    }
    slot.referenced = false;
    cache_hand_ = (cache_hand_ + 1) % cache_.size();
  }
}

bool LsmTree::FilterMayContain(const SsTable& t, std::string_view key) {
  if (t.bloom == nullptr && t.surf == nullptr) return true;
  ++stats_.filter_probes;  // published lazily by SyncObsCounters()
  bool may = t.bloom != nullptr ? t.bloom->MayContain(key)
                                : t.surf->MayContain(key);
  if (!may) ++stats_.filter_negatives;
  return may;
}

bool LsmTree::FilterMayContainRange(const SsTable& t, std::string_view lk,
                                    std::string_view hk) {
  if (t.surf == nullptr) return true;  // Bloom cannot answer ranges
  ++stats_.filter_probes;
  bool may = t.surf->MayContainRange(lk, hk);
  if (!may) ++stats_.filter_negatives;
  return may;
}

bool LsmTree::TableGet(const SsTable& t, std::string_view key,
                       std::string* value, const bool* filter_hint) {
  if (key < t.min_key || key > t.max_key) return false;
  const bool filtered = t.bloom != nullptr || t.surf != nullptr;
  if (filter_hint != nullptr && filtered) {
    // Speculative answer from the batched fan-out: account the probe here,
    // in scalar order, so the stats match the unbatched path exactly.
    MET_DCHECK(*filter_hint == (t.bloom != nullptr ? t.bloom->MayContain(key)
                                                   : t.surf->MayContain(key)),
               "fan-out filter answer diverged from scalar");
    ++stats_.filter_probes;
    if (!*filter_hint) {
      ++stats_.filter_negatives;
      return false;
    }
  } else if (!FilterMayContain(t, key)) {
    return false;
  }
  // Fence index: last block whose first key <= key.
  auto it = std::upper_bound(t.block_first_key.begin(), t.block_first_key.end(),
                             std::string(key));
  size_t block = it == t.block_first_key.begin()
                     ? 0
                     : (it - t.block_first_key.begin()) - 1;
  const Block& entries = GetBlock(t, block);
  auto eit = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& e, std::string_view k) { return e.first < k; });
  const bool found = eit != entries.end() && eit->first == key;
  if (filtered) {
    // Resolve the filter's positive answer against the block: present keys
    // are true positives, absent ones false positives (live FPR). Published
    // lazily by SyncObsCounters().
    if (t.bloom != nullptr)
      ++(found ? outcomes_.bloom_tp : outcomes_.bloom_fp);
    else
      ++(found ? outcomes_.surf_tp : outcomes_.surf_fp);
  }
  if (!found) return false;
  if (value != nullptr) *value = eit->second;
  return true;
}

bool LsmTree::Lookup(std::string_view key, std::string* value) {
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (value != nullptr) *value = it->second;
    return true;
  }
  // Candidate tables in probe order: L0 newest-first (components may
  // overlap), then the single range-covering table of each deeper level.
  // The key-range test here is the same one TableGet applies first, so
  // excluded tables contribute nothing to stats on either path.
  probe_tables_.clear();
  for (auto t = levels_[0].rbegin(); t != levels_[0].rend(); ++t)
    if (key >= (*t)->min_key && key <= (*t)->max_key)
      probe_tables_.push_back(t->get());
  for (size_t l = 1; l < levels_.size(); ++l) {
    // Levels >= 1 are disjoint: binary search for the candidate table.
    const auto& level = levels_[l];
    auto lit = std::upper_bound(
        level.begin(), level.end(), key,
        [](std::string_view k, const auto& t) { return k < t->min_key; });
    if (lit == level.begin()) continue;
    --lit;
    if (key <= (*lit)->max_key) probe_tables_.push_back(lit->get());
  }

  // Filter fan-out (met::batch): probe every candidate's Bloom filter for
  // this key as one interleaved batch before any block I/O — the dominant
  // read-path misses across levels overlap instead of serializing. The
  // speculative answers are handed to TableGet, which accounts them in
  // scalar probe order (tables past the first hit stay uncounted).
  probe_may_.assign(probe_tables_.size(), 2);
  probe_blooms_.clear();
  probe_bloom_slot_.clear();
  for (size_t i = 0; i < probe_tables_.size(); ++i) {
    if (probe_tables_[i]->bloom != nullptr) {
      probe_blooms_.push_back(probe_tables_[i]->bloom.get());
      probe_bloom_slot_.push_back(static_cast<uint32_t>(i));
    }
  }
  if (probe_blooms_.size() > 1) {
    const uint64_t h = MurmurHash64(key);
    constexpr size_t kFanOut = 64;
    bool spec[kFanOut];
    for (size_t base = 0; base < probe_blooms_.size(); base += kFanOut) {
      size_t g = std::min(kFanOut, probe_blooms_.size() - base);
      BloomFilter::MayContainHashFanOut(probe_blooms_.data() + base, g, h,
                                        spec);
      for (size_t i = 0; i < g; ++i)
        probe_may_[probe_bloom_slot_[base + i]] = spec[i] ? 1 : 0;
    }
  }

  for (size_t i = 0; i < probe_tables_.size(); ++i) {
    const bool hint = probe_may_[i] == 1;
    if (TableGet(*probe_tables_[i], key, value,
                 probe_may_[i] != 2 ? &hint : nullptr))
      return true;
  }
  return false;
}

std::optional<std::string> LsmTree::TableSeek(const SsTable& t,
                                              std::string_view lk) {
  if (lk > t.max_key) return std::nullopt;
  auto it = std::upper_bound(t.block_first_key.begin(), t.block_first_key.end(),
                             std::string(lk));
  size_t block = it == t.block_first_key.begin()
                     ? 0
                     : (it - t.block_first_key.begin()) - 1;
  while (block < t.block_first_key.size()) {
    const Block& entries = GetBlock(t, block);
    auto eit = std::lower_bound(
        entries.begin(), entries.end(), lk,
        [](const auto& e, std::string_view k) { return e.first < k; });
    if (eit != entries.end()) return eit->first;
    ++block;
  }
  return std::nullopt;
}

std::optional<std::string> LsmTree::Seek(std::string_view lk) {
  return ClosedSeek(lk, std::string_view());
}

std::optional<std::string> LsmTree::ClosedSeek(std::string_view lk,
                                               std::string_view hk) {
  // hk empty => open seek.
  std::optional<std::string> best;
  auto consider = [&](std::optional<std::string> cand) {
    if (!cand) return;
    if (!best || *cand < *best) best = std::move(cand);
  };

  // MemTable candidate (no I/O).
  auto mit = memtable_.lower_bound(lk);
  if (mit != memtable_.end()) consider(mit->first);

  // Gather the candidate table per level (plus L0 overlaps).
  std::vector<const SsTable*> tables;
  for (auto t = levels_[0].rbegin(); t != levels_[0].rend(); ++t)
    if (lk <= (*t)->max_key) tables.push_back(t->get());
  for (size_t l = 1; l < levels_.size(); ++l) {
    const auto& level = levels_[l];
    auto lit = std::upper_bound(
        level.begin(), level.end(), lk,
        [](std::string_view k, const auto& t) { return k < t->min_key; });
    if (lit != level.begin()) {
      auto prev = lit - 1;
      if (lk <= (*prev)->max_key) tables.push_back(prev->get());
    }
    if (lit != level.end()) tables.push_back(lit->get());
  }

  if (!hk.empty()) {
    // Closed seek: the range filter proves most tables empty with no I/O.
    for (const SsTable* t : tables) {
      if (t->surf != nullptr) {
        ++stats_.filter_probes;
        if (!t->surf->MayContainRange(lk, hk)) {
          ++stats_.filter_negatives;
          continue;
        }
      }
      consider(TableSeek(*t, lk));
    }
    if (!best) return std::nullopt;
    if (*best > std::string(hk)) return std::nullopt;
    return best;
  }

  // Open seek (Section 4.2): obtain each table's candidate from its SuRF
  // without I/O, then fetch blocks only where the truncated candidate could
  // still be the global minimum. A table whose candidate prefix sorts after
  // an already-resolved full key cannot win (its real key >= its prefix).
  std::vector<std::pair<std::string, const SsTable*>> surf_cands;
  for (const SsTable* t : tables) {
    if (t->surf == nullptr) {
      consider(TableSeek(*t, lk));  // no filter: must fetch
      continue;
    }
    ++stats_.filter_probes;
    Surf::SeekResult r = t->surf->MoveToNext(lk);
    if (!r.found) {
      ++stats_.filter_negatives;
      continue;
    }
    surf_cands.emplace_back(std::move(r.key), t);
  }
  std::sort(surf_cands.begin(), surf_cands.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [prefix, t] : surf_cands) {
    if (best && prefix > *best) {
      ++stats_.filter_negatives;  // I/O avoided by the filter candidate
      continue;
    }
    consider(TableSeek(*t, lk));
  }
  return best;
}

uint64_t LsmTree::Count(std::string_view lk, std::string_view hk) {
  // A key overwritten after a flush has stale versions in older components
  // (memtable vs L0 vs deeper levels), so the exact path must count distinct
  // keys across everything it scans. SuRF-filtered tables instead report an
  // in-memory approximate count with no I/O — and no dedup.
  uint64_t approx = 0;
  std::set<std::string, std::less<>> scanned;
  for (auto it = memtable_.lower_bound(lk);
       it != memtable_.end() && it->first <= hk; ++it)
    scanned.insert(it->first);

  auto count_table = [&](const SsTable& t) {
    if (lk > t.max_key || hk < t.min_key) return;
    if (t.surf != nullptr) {
      ++stats_.filter_probes;
      approx += t.surf->Count(lk, hk);  // in-memory, no I/O
      return;
    }
    // Scan blocks.
    auto it = std::upper_bound(t.block_first_key.begin(),
                               t.block_first_key.end(), std::string(lk));
    size_t block = it == t.block_first_key.begin()
                       ? 0
                       : (it - t.block_first_key.begin()) - 1;
    for (; block < t.block_first_key.size(); ++block) {
      if (t.block_first_key[block] > std::string(hk)) break;
      const Block& entries = GetBlock(t, block);
      for (const auto& [k, v] : entries)
        if (k >= lk && k <= hk) scanned.insert(k);
    }
  };

  for (const auto& t : levels_[0]) count_table(*t);
  for (size_t l = 1; l < levels_.size(); ++l)
    for (const auto& t : levels_[l]) count_table(*t);
  return approx + scanned.size();
}

void LsmTree::Finish() {
  FlushMemTable();
  MaybeCompact();
}

size_t LsmTree::FilterMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& level : levels_)
    for (const auto& t : level) {
      if (t->bloom != nullptr) bytes += t->bloom->MemoryBytes();
      if (t->surf != nullptr) bytes += t->surf->MemoryBytes();
    }
  return bytes;
}

size_t LsmTree::NumTables() const {
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

uint64_t LsmTree::DiskBytes() const {
  uint64_t bytes = 0;
  for (const auto& level : levels_)
    for (const auto& t : level) bytes += t->file_bytes;
  return bytes;
}

}  // namespace met
