// Versioned MANIFEST for the LSM tree (durable mode).
//
// The manifest is the durable root of the tree: it records which SSTable ids
// are live on each level, the id counter, and the generation of the active
// write-ahead log. Each write produces a fresh `MANIFEST-<gen>` file
// (write + fsync), then atomically repoints the `CURRENT` file at it
// (tmp + rename + directory fsync), so a crash at any instant leaves CURRENT
// naming a complete, checksummed manifest — either the old one or the new
// one, never a torn mix.
//
// File format (little-endian, whole blob checksummed):
//   [magic u32 = 'METM'][version u32 = 1][wal_gen u64][next_table_id u64]
//   [num_levels u32] ([table_count u32] [table_id u64]*)* [crc u32]
// where crc = CRC32C over all preceding bytes.
#ifndef MET_LSM_MANIFEST_H_
#define MET_LSM_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/io.h"
#include "io/status.h"

namespace met {

struct LsmManifestData {
  uint64_t wal_gen = 0;
  uint64_t next_table_id = 0;
  // levels[l] holds live table ids in level order (L0: oldest first).
  std::vector<std::vector<uint64_t>> levels;
};

class LsmManifest {
 public:
  /// Writes MANIFEST-<gen>, repoints CURRENT, and garbage-collects older
  /// MANIFEST files (best-effort). Fails without touching CURRENT if the new
  /// manifest cannot be made durable.
  static io::Status Write(io::Env& env, const std::string& dir, uint64_t gen,
                          const LsmManifestData& data);

  /// Loads the manifest CURRENT points at. NotFound when the directory holds
  /// no CURRENT (fresh tree); Corruption on a bad magic/crc.
  static io::Status Load(io::Env& env, const std::string& dir,
                         LsmManifestData* data, uint64_t* gen);

  static std::string FileName(uint64_t gen) {
    return "MANIFEST-" + std::to_string(gen);
  }
};

}  // namespace met

#endif  // MET_LSM_MANIFEST_H_
