// Write-ahead log for the LSM memtable (durable mode).
//
// Every Put appends one record before touching the memtable; records become
// durable ("acked") at the next fsync — LsmTree batches those with group
// sync. On open, Replay() feeds every intact record back into the memtable.
//
// Record format (little-endian):
//   [crc u32][klen u32][vlen u32][key bytes][value bytes]
// where crc = CRC32C over everything after the crc field. Replay stops at
// the first truncated or checksum-failing record: a crash can tear the tail
// of the log, and everything before the tear is still recovered (torn-tail
// tolerance). A record that failed to append completely poisons the tail
// (`tail_torn()`): further appends would land after garbage and be
// unreachable at replay, so the log refuses them until the tree rotates to
// a fresh WAL at the next flush.
//
// Threading: single-owner. LsmWal has no internal locking; LsmTree calls it
// with the tree's external synchronization (one writer at a time — the
// model-checked `model_check --workload=wal` group-commit harness mirrors
// this contract with its own mutex).
#ifndef MET_LSM_WAL_H_
#define MET_LSM_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "io/io.h"
#include "io/status.h"

namespace met {

class LsmWal {
 public:
  LsmWal(io::Env& env, std::string path) : env_(env), path_(std::move(path)) {}

  /// Creates (truncating) the log for appending. Callers must Replay() any
  /// existing content first — LsmTree only reuses a WAL slot after flushing
  /// its replayed records, so truncation discards only unacked torn bytes.
  io::Status Open();

  /// Appends one record. On a partial append the tail is poisoned and every
  /// later Append fails until the log is rotated.
  io::Status Append(std::string_view key, std::string_view value);

  /// fsync with retry; on success all previously appended records are acked.
  io::Status Sync();

  io::Status Close();

  /// Closes the underlying file WITHOUT a final sync — models a crash
  /// (SimulateCrash): appended-but-unsynced bytes may or may not survive.
  void AbandonForCrash();

  const std::string& path() const { return path_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t unsynced_bytes() const { return unsynced_bytes_; }
  bool tail_torn() const { return tail_torn_; }

  /// Replays every intact record of the log at `path` through `fn` in append
  /// order. A missing file is an empty log (OK). `*torn_tail` reports whether
  /// trailing bytes were discarded (truncated/corrupt final record).
  static io::Status Replay(
      io::Env& env, const std::string& path,
      const std::function<void(std::string_view key, std::string_view value)>&
          fn,
      uint64_t* replayed_records, bool* torn_tail);

 private:
  io::Env& env_;
  std::string path_;
  std::unique_ptr<io::File> file_;
  uint64_t appended_bytes_ = 0;
  uint64_t unsynced_bytes_ = 0;
  bool tail_torn_ = false;
};

}  // namespace met

#endif  // MET_LSM_WAL_H_
