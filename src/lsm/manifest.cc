#include "lsm/manifest.h"

#include <cstring>

#include "io/crc32c.h"

namespace met {

namespace {

constexpr uint32_t kMagic = 0x4D54454Du;  // 'METM' (LE)
constexpr uint32_t kVersion = 1;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked little-endian reader over the manifest blob.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU32(uint32_t* v) { return Read(v); }
  bool ReadU64(uint64_t* v) { return Read(v); }
  size_t remaining() const { return data_.size() - off_; }

 private:
  template <typename T>
  bool Read(T* v) {
    if (data_.size() - off_ < sizeof(T)) return false;
    std::memcpy(v, data_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  std::string_view data_;
  size_t off_ = 0;
};

}  // namespace

io::Status LsmManifest::Write(io::Env& env, const std::string& dir,
                              uint64_t gen, const LsmManifestData& data) {
  std::string blob;
  AppendU32(&blob, kMagic);
  AppendU32(&blob, kVersion);
  AppendU64(&blob, data.wal_gen);
  AppendU64(&blob, data.next_table_id);
  AppendU32(&blob, static_cast<uint32_t>(data.levels.size()));
  for (const auto& level : data.levels) {
    AppendU32(&blob, static_cast<uint32_t>(level.size()));
    for (uint64_t id : level) AppendU64(&blob, id);
  }
  AppendU32(&blob, io::Crc32c(blob.data(), blob.size()));

  const std::string name = FileName(gen);
  io::Status s = env.WriteStringToFile(dir + "/" + name, blob, /*sync=*/true);
  if (!s.ok()) {
    (void)env.Remove(dir + "/" + name);  // cleanup; the write error is king
    return s;
  }
  s = env.AtomicWriteFile(dir + "/CURRENT", name + "\n");
  if (!s.ok()) return s;

  // Best-effort GC of superseded manifests; stale ones are harmless (the
  // recovery path also sweeps them).
  std::vector<std::string> entries;
  if (env.ListDir(dir, &entries).ok()) {
    for (const std::string& e : entries) {
      if (e.rfind("MANIFEST-", 0) == 0 && e != name) {
        (void)env.Remove(dir + "/" + e);  // stale manifests: best-effort GC
      }
    }
  }
  return io::Status::OK();
}

io::Status LsmManifest::Load(io::Env& env, const std::string& dir,
                             LsmManifestData* data, uint64_t* gen) {
  std::string current;
  io::Status s = env.ReadFileToString(dir + "/CURRENT", &current);
  if (!s.ok()) return s;  // NotFound => fresh tree
  while (!current.empty() &&
         (current.back() == '\n' || current.back() == '\r')) {
    current.pop_back();
  }
  if (current.rfind("MANIFEST-", 0) != 0) {
    return io::Status::Corruption("CURRENT names no manifest: " + current);
  }
  uint64_t g = 0;
  for (size_t i = std::strlen("MANIFEST-"); i < current.size(); ++i) {
    if (current[i] < '0' || current[i] > '9') {
      return io::Status::Corruption("bad manifest generation: " + current);
    }
    g = g * 10 + static_cast<uint64_t>(current[i] - '0');
  }

  std::string blob;
  s = env.ReadFileToString(dir + "/" + current, &blob);
  if (s.IsNotFound()) {
    return io::Status::Corruption("CURRENT points at missing " + current);
  }
  if (!s.ok()) return s;
  if (blob.size() < 4) return io::Status::Corruption("manifest truncated");
  uint32_t stored_crc;
  std::memcpy(&stored_crc, blob.data() + blob.size() - 4, 4);
  if (io::Crc32c(blob.data(), blob.size() - 4) != stored_crc) {
    return io::Status::Corruption("manifest checksum mismatch");
  }

  Reader r(std::string_view(blob.data(), blob.size() - 4));
  uint32_t magic = 0, version = 0, num_levels = 0;
  *data = LsmManifestData();
  if (!r.ReadU32(&magic) || magic != kMagic) {
    return io::Status::Corruption("bad manifest magic");
  }
  if (!r.ReadU32(&version) || version != kVersion) {
    return io::Status::Corruption("unsupported manifest version");
  }
  if (!r.ReadU64(&data->wal_gen) || !r.ReadU64(&data->next_table_id) ||
      !r.ReadU32(&num_levels)) {
    return io::Status::Corruption("manifest truncated");
  }
  data->levels.resize(num_levels);
  for (uint32_t l = 0; l < num_levels; ++l) {
    uint32_t count = 0;
    if (!r.ReadU32(&count) || r.remaining() < count * 8ull) {
      return io::Status::Corruption("manifest truncated (level table list)");
    }
    data->levels[l].resize(count);
    for (uint32_t i = 0; i < count; ++i) r.ReadU64(&data->levels[l][i]);
  }
  if (gen != nullptr) *gen = g;
  return io::Status::OK();
}

}  // namespace met
