// Standard Bloom filter (RocksDB-style double hashing over a 64-bit Murmur
// hash), the point-query baseline for SuRF in Chapter 4.
#ifndef MET_BLOOM_BLOOM_H_
#define MET_BLOOM_BLOOM_H_

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "obs/metrics.h"

namespace met {

class BloomFilter {
 public:
  /// `bits_per_key` sizes the filter; the number of probes is chosen as
  /// k = bits_per_key * ln2 (the optimum), clamped to [1, 30].
  explicit BloomFilter(size_t num_keys, double bits_per_key = 10.0) {
    num_probes_ = static_cast<int>(bits_per_key * 0.69314718056 + 0.5);
    if (num_probes_ < 1) num_probes_ = 1;
    if (num_probes_ > 30) num_probes_ = 30;
    size_t bits = static_cast<size_t>(num_keys * bits_per_key);
    if (bits < 64) bits = 64;
    words_.assign((bits + 63) / 64, 0);
    num_bits_ = words_.size() * 64;
  }

  void Add(std::string_view key) { AddHash(MurmurHash64(key)); }
  void Add(uint64_t key) { AddHash(MixHash64(key)); }

  bool MayContain(std::string_view key) const {
    return MayContainHash(MurmurHash64(key));
  }
  bool MayContain(uint64_t key) const { return MayContainHash(MixHash64(key)); }

  void AddHash(uint64_t h) {
    uint64_t delta = (h >> 17) | (h << 47);
    for (int i = 0; i < num_probes_; ++i) {
      size_t bit = h % num_bits_;
      words_[bit / 64] |= uint64_t{1} << (bit % 64);
      h += delta;
    }
  }

  bool MayContainHash(uint64_t h) const {
    MET_OBS_DEBUG_COUNT("bloom.probe.calls");
    uint64_t delta = (h >> 17) | (h << 47);
    for (int i = 0; i < num_probes_; ++i) {
      size_t bit = h % num_bits_;
      if (!((words_[bit / 64] >> (bit % 64)) & 1)) return false;
      h += delta;
    }
    return true;
  }

  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  int num_probes_;
  size_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace met

#endif  // MET_BLOOM_BLOOM_H_
