// Standard Bloom filter (RocksDB-style double hashing over a 64-bit Murmur
// hash), the point-query baseline for SuRF in Chapter 4.
#ifndef MET_BLOOM_BLOOM_H_
#define MET_BLOOM_BLOOM_H_

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/assert.h"
#include "common/hash.h"
#include "common/prefetch.h"
#include "obs/metrics.h"
#include "prof/memory_breakdown.h"

namespace met {

class BloomFilter {
 public:
  /// `bits_per_key` sizes the filter; the number of probes is chosen as
  /// k = bits_per_key * ln2 (the optimum), clamped to [1, 30].
  explicit BloomFilter(size_t num_keys, double bits_per_key = 10.0) {
    num_probes_ = static_cast<int>(bits_per_key * 0.69314718056 + 0.5);
    if (num_probes_ < 1) num_probes_ = 1;
    if (num_probes_ > 30) num_probes_ = 30;
    size_t bits = static_cast<size_t>(num_keys * bits_per_key);
    if (bits < 64) bits = 64;
    words_.assign((bits + 63) / 64, 0);
    num_bits_ = words_.size() * 64;
  }

  void Add(std::string_view key) { AddHash(MurmurHash64(key)); }
  void Add(uint64_t key) { AddHash(MixHash64(key)); }

  bool MayContain(std::string_view key) const {
    return MayContainHash(MurmurHash64(key));
  }
  bool MayContain(uint64_t key) const { return MayContainHash(MixHash64(key)); }

  void AddHash(uint64_t h) {
    uint64_t delta = (h >> 17) | (h << 47);
    for (int i = 0; i < num_probes_; ++i) {
      size_t bit = h % num_bits_;
      words_[bit / 64] |= uint64_t{1} << (bit % 64);
      h += delta;
    }
  }

  bool MayContainHash(uint64_t h) const {
    MET_OBS_DEBUG_COUNT("bloom.probe.calls");
    uint64_t delta = (h >> 17) | (h << 47);
    for (int i = 0; i < num_probes_; ++i) {
      size_t bit = h % num_bits_;
      if (!((words_[bit / 64] >> (bit % 64)) & 1)) return false;
      h += delta;
    }
    return true;
  }

  /// Batched membership probes (met::batch). Each filter probe is an
  /// independent random word access, so the batch runs all keys in lockstep:
  /// round j tests probe-word j of every still-live key, and each key issues
  /// the prefetch for its round-j+1 word before any round-j+1 word is read —
  /// 32 misses in flight instead of one. out[i] == MayContain(keys[i])
  /// exactly (asserted in checked builds).
  void MayContainBatch(const std::string_view* keys, size_t n,
                       bool* out) const {
    constexpr size_t kGroup = 32;
    uint64_t h[kGroup];
    for (size_t base = 0; base < n; base += kGroup) {
      size_t g = n - base < kGroup ? n - base : kGroup;
      for (size_t i = 0; i < g; ++i) h[i] = MurmurHash64(keys[base + i]);
      MayContainHashBatch(h, g, out + base);
    }
#if MET_CHECK_ENABLED
    for (size_t i = 0; i < n; ++i)
      MET_DCHECK(out[i] == MayContain(keys[i]),
                 "batched Bloom probe diverged from scalar");
#endif
  }

  void MayContainBatch(const uint64_t* keys, size_t n, bool* out) const {
    constexpr size_t kGroup = 32;
    uint64_t h[kGroup];
    for (size_t base = 0; base < n; base += kGroup) {
      size_t g = n - base < kGroup ? n - base : kGroup;
      for (size_t i = 0; i < g; ++i) h[i] = MixHash64(keys[base + i]);
      MayContainHashBatch(h, g, out + base);
    }
#if MET_CHECK_ENABLED
    for (size_t i = 0; i < n; ++i)
      MET_DCHECK(out[i] == MayContain(keys[i]),
                 "batched Bloom probe diverged from scalar");
#endif
  }

  /// Cross-filter fan-out (met::batch): probes ONE key, by its hash, against
  /// many filters as a single interleaved batch — the LSM read path checks
  /// every candidate SSTable's filter this way before any block I/O. The
  /// double-hash probe schedule depends only on the hash, so round j of
  /// every filter is computable up front: each round tests probe-word j of
  /// all live filters and prefetches their round-j+1 words first.
  /// out[i] == filters[i]->MayContainHash(h) exactly.
  static void MayContainHashFanOut(const BloomFilter* const* filters,
                                   size_t n, uint64_t h, bool* out) {
    constexpr size_t kGroup = 32;
    const uint64_t delta = (h >> 17) | (h << 47);
    bool alive[kGroup];
    for (size_t base = 0; base < n; base += kGroup) {
      size_t g = n - base < kGroup ? n - base : kGroup;
      int max_probes = 0;
      for (size_t i = 0; i < g; ++i) {
        const BloomFilter& f = *filters[base + i];
        alive[i] = true;
        PrefetchRead(&f.words_[(h % f.num_bits_) / 64]);
        if (f.num_probes_ > max_probes) max_probes = f.num_probes_;
      }
      uint64_t hj = h;
      for (int j = 0; j < max_probes; ++j) {
        uint64_t next = hj + delta;
        for (size_t i = 0; i < g; ++i) {
          const BloomFilter& f = *filters[base + i];
          if (!alive[i] || j >= f.num_probes_) continue;
          size_t bit = hj % f.num_bits_;
          if (j + 1 < f.num_probes_)
            PrefetchRead(&f.words_[(next % f.num_bits_) / 64]);
          if (!((f.words_[bit / 64] >> (bit % 64)) & 1)) alive[i] = false;
        }
        hj = next;
      }
      for (size_t i = 0; i < g; ++i) out[base + i] = alive[i];
    }
  }

  /// Interleaved core over precomputed hashes (n <= 32 per call from the
  /// wrappers; larger n is chunked here too).
  void MayContainHashBatch(const uint64_t* hashes, size_t n,
                           bool* out) const {
    MET_OBS_DEBUG_ADD("bloom.batch.probes", n);
    constexpr size_t kGroup = 32;
    uint64_t h[kGroup];
    uint64_t delta[kGroup];
    bool alive[kGroup];
    for (size_t base = 0; base < n; base += kGroup) {
      size_t g = n - base < kGroup ? n - base : kGroup;
      for (size_t i = 0; i < g; ++i) {
        h[i] = hashes[base + i];
        delta[i] = (h[i] >> 17) | (h[i] << 47);
        alive[i] = true;
        PrefetchRead(&words_[(h[i] % num_bits_) / 64]);
      }
      for (int j = 0; j < num_probes_; ++j) {
        for (size_t i = 0; i < g; ++i) {
          if (!alive[i]) continue;
          size_t bit = h[i] % num_bits_;
          uint64_t next = h[i] + delta[i];
          if (j + 1 < num_probes_)
            PrefetchRead(&words_[(next % num_bits_) / 64]);
          if (!((words_[bit / 64] >> (bit % 64)) & 1)) alive[i] = false;
          h[i] = next;
        }
      }
      for (size_t i = 0; i < g; ++i) out[base + i] = alive[i];
    }
  }

  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }
  size_t MemoryUse() const { return MemoryBytes(); }

  /// Single-component attribution; TotalBytes() == MemoryBytes().
  MemoryBreakdown Breakdown() const {
    MemoryBreakdown b("bloom");
    b.Add("bit_array", words_.size() * sizeof(uint64_t));
    return b;
  }

 private:
  int num_probes_;
  size_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace met

#endif  // MET_BLOOM_BLOOM_H_
