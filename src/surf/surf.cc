#include "surf/surf.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/prefetch.h"
#include "obs/metrics.h"

namespace met {

namespace {

/// Reads `nbits` (<= 56) key bits starting at byte offset `start` (MSB
/// first), zero padded past the end of the key.
uint64_t ExtractKeyBits(std::string_view key, uint32_t start, uint32_t nbits) {
  uint64_t v = 0;
  uint32_t got = 0;
  uint32_t byte = start;
  while (got < nbits) {
    uint32_t take = std::min<uint32_t>(8, nbits - got);
    uint8_t b = byte < key.size() ? static_cast<uint8_t>(key[byte]) : 0;
    v = (v << take) | (b >> (8 - take));
    got += take;
    ++byte;
  }
  return v;
}

void WritePacked(std::vector<uint64_t>* words, size_t bit_pos, uint64_t value,
                 uint32_t nbits) {
  for (uint32_t i = 0; i < nbits; ++i) {
    size_t p = bit_pos + i;
    if (p / 64 >= words->size()) words->resize(p / 64 + 1, 0);
    if ((value >> (nbits - 1 - i)) & 1) (*words)[p / 64] |= uint64_t{1} << (p % 64);
  }
}

uint64_t ReadPacked(const std::vector<uint64_t>& words, size_t bit_pos,
                    uint32_t nbits) {
  uint64_t v = 0;
  for (uint32_t i = 0; i < nbits; ++i) {
    size_t p = bit_pos + i;
    v = (v << 1) | ((words[p / 64] >> (p % 64)) & 1);
  }
  return v;
}

}  // namespace

void Surf::Build(const std::vector<std::string>& keys, const SurfConfig& config) {
  config_ = config;
  FstConfig fcfg;
  fcfg.mode = FstConfig::Mode::kMinUniquePrefix;
  fcfg.size_ratio = config.size_ratio;
  fcfg.max_dense_levels = config.max_dense_levels;
  fcfg.store_values = false;

  std::vector<uint32_t> leaf_key, leaf_depth;
  fst_.Build(keys, {}, fcfg, &leaf_key, &leaf_depth);

  suffix_words_.clear();
  uint32_t bits = SuffixBitsTotal();
  double depth_sum = 0;
  for (size_t i = 0; i < leaf_key.size(); ++i) depth_sum += leaf_depth[i];
  avg_leaf_depth_ =
      leaf_key.empty() ? 0 : depth_sum / static_cast<double>(leaf_key.size());
  if (bits == 0) return;

  suffix_words_.assign((leaf_key.size() * bits + 63) / 64, 0);
  for (size_t i = 0; i < leaf_key.size(); ++i) {
    const std::string& k = keys[leaf_key[i]];
    uint64_t suffix = 0;
    if (config.hash_suffix_bits > 0) {
      uint64_t h = MurmurHash64(k) &
                   ((uint64_t{1} << config.hash_suffix_bits) - 1);
      suffix = h;
    }
    if (config.real_suffix_bits > 0) {
      uint64_t real = ExtractKeyBits(k, leaf_depth[i], config.real_suffix_bits);
      suffix = (suffix << config.real_suffix_bits) | real;
    }
    WritePacked(&suffix_words_, i * bits, suffix, bits);
  }
}

uint64_t Surf::StoredSuffix(uint32_t leaf_id) const {
  return ReadPacked(suffix_words_, static_cast<size_t>(leaf_id) * SuffixBitsTotal(),
                    SuffixBitsTotal());
}

uint64_t Surf::QuerySuffix(std::string_view key, uint32_t depth) const {
  uint64_t suffix = 0;
  if (config_.hash_suffix_bits > 0) {
    suffix = MurmurHash64(key) & ((uint64_t{1} << config_.hash_suffix_bits) - 1);
  }
  if (config_.real_suffix_bits > 0) {
    suffix = (suffix << config_.real_suffix_bits) |
             ExtractKeyBits(key, depth, config_.real_suffix_bits);
  }
  return suffix;
}

uint64_t Surf::StoredRealSuffix(uint32_t leaf_id) const {
  uint64_t s = StoredSuffix(leaf_id);
  return s & ((uint64_t{1} << config_.real_suffix_bits) - 1);
}

uint64_t Surf::QueryRealSuffix(std::string_view key, uint32_t depth) const {
  return ExtractKeyBits(key, depth, config_.real_suffix_bits);
}

bool Surf::MayContain(std::string_view key) const {
  MET_OBS_DEBUG_COUNT("surf.probe.calls");
  Fst::PathResult res = fst_.LookupPath(key);
  if (!res.found) return false;
  if (SuffixBitsTotal() == 0) return true;
  return StoredSuffix(res.leaf_id) == QuerySuffix(key, res.depth);
}

void Surf::MayContainBatch(const std::string_view* keys, size_t n,
                           bool* out) const {
  MET_OBS_DEBUG_ADD("surf.batch.probes", n);
  constexpr size_t kChunk = 64;
  Fst::PathResult paths[kChunk];
  const uint32_t bits = SuffixBitsTotal();
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t g = std::min(kChunk, n - base);
    fst_.LookupPathBatch(keys + base, g, paths);
    if (bits > 0) {
      for (size_t i = 0; i < g; ++i) {
        if (paths[i].found)
          PrefetchRead(
              &suffix_words_[size_t{paths[i].leaf_id} * bits / 64]);
      }
    }
    for (size_t i = 0; i < g; ++i) {
      out[base + i] =
          paths[i].found &&
          (bits == 0 || StoredSuffix(paths[i].leaf_id) ==
                            QuerySuffix(keys[base + i], paths[i].depth));
    }
  }
#if MET_CHECK_ENABLED
  for (size_t i = 0; i < n; ++i)
    MET_DCHECK(out[i] == MayContain(keys[i]),
               "batched MayContain diverged from scalar");
#endif
}

Surf::SeekResult Surf::MoveToNext(std::string_view key) const {
  SeekResult out;
  bool fp = false;
  Fst::Iterator it = fst_.LowerBound(key, &fp);
  if (!it.Valid()) return out;
  if (fp && config_.real_suffix_bits > 0) {
    // The stored path is a strict prefix of `key`: use the real suffix bits
    // to decide whether the truncated key may still be >= key.
    uint64_t stored = StoredRealSuffix(it.leaf_id());
    uint64_t query = QueryRealSuffix(key, static_cast<uint32_t>(it.key().size()));
    if (stored < query) {
      it.Next();
      fp = false;
      if (!it.Valid()) return out;
    }
    // stored == query keeps the fp flag; stored > query means the stored key
    // is certainly greater.
    if (fp && stored > query) fp = false;
  }
  out.found = true;
  out.fp_flag = fp;
  out.key = it.key();
  return out;
}

bool Surf::MayContainRange(std::string_view low_key,
                           std::string_view high_key) const {
  MET_OBS_DEBUG_COUNT("surf.range_probe.calls");
  if (high_key < low_key) return false;
  SeekResult s = MoveToNext(low_key);
  if (!s.found) return false;
  if (s.fp_flag) return true;  // candidate needs verification: may exist
  // s.key is a truncated stored key >= low_key. The range may contain a key
  // iff s.key <= high_key or s.key is a prefix of high_key (possible fp).
  if (s.key <= high_key) return true;
  if (s.key.size() > high_key.size() &&
      std::string_view(s.key).substr(0, high_key.size()) == high_key)
    return false;  // s.key strictly greater and diverges
  // Prefix relation check: s.key prefix of high_key already covered by
  // s.key <= high_key; otherwise it's greater.
  return false;
}

uint64_t Surf::Count(std::string_view low_key, std::string_view high_key) const {
  if (high_key < low_key) return 0;
  // Anchor the low side at moveToNext(low) so a truncated leaf whose path is
  // a strict prefix of low_key (and whose full key may be in range) is
  // included — the count never under-counts.
  SeekResult lo = MoveToNext(low_key);
  if (!lo.found) return 0;
  bool fp_hi = false;
  Fst::Iterator hi = fst_.LowerBound(high_key, &fp_hi);
  uint64_t base;
  if (!hi.Valid()) {
    // Count everything from lo.key to the end: the synthetic bound exceeds
    // every stored path (paths are at most height() bytes).
    std::string end(fst_.height() + 1, '\xff');
    return fst_.CountRange(lo.key, end);
  }
  base = fst_.CountRange(lo.key, hi.key());
  // Include the hi-side boundary leaf when it may fall inside the range:
  // exact match (inclusive bound) or a truncated prefix of high_key.
  if (hi.key() == high_key || fp_hi) ++base;
  return base;
}

size_t Surf::MemoryBytes() const {
  return fst_.FilterMemoryBytes() + suffix_words_.capacity() * sizeof(uint64_t);
}

MemoryBreakdown Surf::Breakdown() const {
  MemoryBreakdown b("surf");
  b.AddChild("trie", fst_.FilterBreakdown());
  b.Add("suffixes", suffix_words_.capacity() * sizeof(uint64_t));
  return b;
}

}  // namespace met
