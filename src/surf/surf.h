// Succinct Range Filter (Chapter 4): an approximate membership filter for
// point and range queries built on a truncated FST.
//
// Variants (Section 4.1): SuRF-Base stores minimum distinguishing prefixes;
// SuRF-Hash appends n hash bits per key (point-query FPR < 2^-n); SuRF-Real
// appends the n key bits following the stored prefix (helps both point and
// range queries); SuRF-Mixed stores both. All variants guarantee one-sided
// errors: a negative answer is always correct.
#ifndef MET_SURF_SURF_H_
#define MET_SURF_SURF_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "check/fwd.h"
#include "common/assert.h"
#include "fst/fst.h"

namespace met {

struct SurfConfig {
  uint32_t hash_suffix_bits = 0;
  uint32_t real_suffix_bits = 0;

  /// FST tuning passthrough.
  double size_ratio = 64.0;
  int max_dense_levels = -1;

  static SurfConfig Base() { return {0, 0}; }
  static SurfConfig Hash(uint32_t bits) { return {bits, 0}; }
  static SurfConfig Real(uint32_t bits) { return {0, bits}; }
  static SurfConfig Mixed(uint32_t hash_bits, uint32_t real_bits) {
    return {hash_bits, real_bits};
  }
};

class Surf {
 public:
  Surf() = default;

  Surf(const Surf&) = delete;
  Surf& operator=(const Surf&) = delete;
  Surf(Surf&&) = default;
  Surf& operator=(Surf&&) = default;

  /// Builds the filter from sorted, unique keys (single scan).
  void Build(const std::vector<std::string>& keys, const SurfConfig& config = {});

  /// Point membership test: false guarantees the key is absent.
  bool MayContain(std::string_view key) const;

  /// Batched point membership (met::batch): trie descents run through
  /// Fst::LookupPathBatch's interleaved pipeline, each hit's packed suffix
  /// word is prefetched, then the suffix compares execute. out[i] equals
  /// MayContain(keys[i]) exactly (asserted in checked builds).
  void MayContainBatch(const std::string_view* keys, size_t n, bool* out) const;

  /// Range membership test on [low_key, high_key] (inclusive bounds):
  /// false guarantees no stored key falls in the range.
  bool MayContainRange(std::string_view low_key, std::string_view high_key) const;

  /// Approximate number of keys in [low_key, high_key]; may over-count by at
  /// most 2 at the boundaries, never under-counts (Section 4.1.5).
  uint64_t Count(std::string_view low_key, std::string_view high_key) const;

  /// moveToNext(k): the smallest stored (truncated) key >= k. `fp_flag` is
  /// set when the returned key is a strict prefix of k, meaning the caller
  /// must fetch the real key to decide (Section 4.1.5). Used by the LSM
  /// engine's Seek path.
  struct SeekResult {
    bool found = false;
    bool fp_flag = false;
    std::string key;  // stored truncated key
  };
  SeekResult MoveToNext(std::string_view key) const;

  size_t num_keys() const { return fst_.num_keys(); }
  size_t MemoryBytes() const;
  size_t MemoryUse() const { return MemoryBytes(); }

  /// Component attribution (truncated-FST filter + suffix words);
  /// TotalBytes() == MemoryBytes() (same terms).
  MemoryBreakdown Breakdown() const;
  double BitsPerKey() const {
    return num_keys() == 0 ? 0.0
                           : 8.0 * MemoryBytes() / static_cast<double>(num_keys());
  }
  size_t height() const { return fst_.height(); }

  /// Average leaf depth (Figure 6.16).
  double AvgLeafDepth() const { return avg_leaf_depth_; }

  /// Binary round trip (e.g. to persist the filter beside an SSTable).
  void Serialize(std::string* out) const;
  bool Deserialize(std::string_view in);

  /// Validates the underlying FST encoding plus the suffix-array sizing and,
  /// for every stored (truncated) key, the no-false-negative guarantee.
  /// No-op unless MET_CHECK_ENABLED (impl in check/surf_check.cc).
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return CheckValidate(os);
#else
    (void)os;
    return true;
#endif
  }

 private:
  bool CheckValidate(std::ostream& os) const;  // check/surf_check.cc
  friend struct check::TestAccess;

  uint32_t SuffixBitsTotal() const {
    return config_.hash_suffix_bits + config_.real_suffix_bits;
  }
  uint64_t StoredSuffix(uint32_t leaf_id) const;
  uint64_t QuerySuffix(std::string_view key, uint32_t depth) const;
  /// The real-suffix part of a query key at `depth` (low bits of the result).
  uint64_t QueryRealSuffix(std::string_view key, uint32_t depth) const;
  uint64_t StoredRealSuffix(uint32_t leaf_id) const;

  SurfConfig config_;
  Fst fst_;
  // Packed per-leaf suffixes, SuffixBitsTotal() bits each: the hash part in
  // the high bits, the real part in the low bits (fetched together).
  std::vector<uint64_t> suffix_words_;
  double avg_leaf_depth_ = 0;
};

}  // namespace met

#endif  // MET_SURF_SURF_H_
