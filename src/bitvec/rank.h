// Rank-support structures over BitVector.
//
// RankSupport is the FST-customized single-level lookup table (Fig 3.3 of the
// thesis): a 32-bit precomputed rank per fixed-size basic block, plus popcount
// within the block. Block size 64 is used for LOUDS-Dense (one popcount per
// query), 512 for LOUDS-Sparse (one cacheline per block, 6.25% overhead).
//
// PoppyRank is a generic two-level baseline approximating Zhou et al.'s
// "Poppy" used by the Fig 3.6 optimization-breakdown experiment.
#ifndef MET_BITVEC_RANK_H_
#define MET_BITVEC_RANK_H_

#include <cstdint>
#include <vector>

#include "bitvec/bitvector.h"
#include "common/bits.h"
#include "common/prefetch.h"
#include "obs/metrics.h"

namespace met {

/// Single-level-LUT rank over an externally owned BitVector.
/// Rank1(pos) counts set bits in positions [0, pos] (inclusive), matching the
/// navigation formulas in Chapter 3.
class RankSupport {
 public:
  RankSupport() = default;

  RankSupport(const BitVector* bv, uint32_t block_bits) { Build(bv, block_bits); }

  void Build(const BitVector* bv, uint32_t block_bits) {
    bv_ = bv;
    block_bits_ = block_bits;
    size_t num_blocks = bv->size() / block_bits + 1;
    lut_.assign(num_blocks, 0);
    uint32_t running = 0;
    const uint64_t* words = bv->data();
    size_t num_words = bv->num_words();
    for (size_t b = 0; b < num_blocks; ++b) {
      lut_[b] = running;
      size_t word_begin = b * (block_bits / 64);
      size_t word_end = word_begin + block_bits / 64;
      for (size_t w = word_begin; w < word_end && w < num_words; ++w)
        running += PopCount(words[w]);
    }
  }

  /// Number of set bits in [0, pos] (pos inclusive).
  size_t Rank1(size_t pos) const {
    MET_OBS_DEBUG_COUNT("bitvec.rank.calls");
    size_t block = pos / block_bits_;
    size_t n = lut_[block];
    size_t word_begin = block * (block_bits_ / 64);
    size_t last_word = pos / 64;
    const uint64_t* words = bv_->data();
    for (size_t w = word_begin; w < last_word; ++w) n += PopCount(words[w]);
    // Partial final word: include bits [0, pos%64].
    uint64_t mask = ~uint64_t{0} >> (63 - pos % 64);
    n += PopCount(words[last_word] & mask);
    return n;
  }

  /// Number of zero bits in [0, pos].
  size_t Rank0(size_t pos) const { return pos + 1 - Rank1(pos); }

  /// Prefetches everything Rank1(pos) will touch: the LUT entry and the
  /// block's first bit-vector word (a basic block is at most 512 bits, so
  /// the popcount loop spans at most two lines from there). Used by the
  /// met::batch kernels to hide the miss one pipeline stage ahead.
  void PrefetchRank1(size_t pos) const {
    size_t block = pos / block_bits_;
    PrefetchRead(&lut_[block]);
    PrefetchRead(bv_->data() + block * (block_bits_ / 64));
  }

  /// Batched Rank1 (met::batch): issues the prefetches for every query up
  /// front, then computes. Results are identical to n scalar Rank1 calls by
  /// construction — the compute pass *is* the scalar path.
  void Rank1Batch(const size_t* pos, size_t n, size_t* out) const {
    for (size_t i = 0; i < n; ++i) PrefetchRank1(pos[i]);
    for (size_t i = 0; i < n; ++i) out[i] = Rank1(pos[i]);
  }

  size_t MemoryBytes() const { return lut_.size() * sizeof(uint32_t); }

 private:
  const BitVector* bv_ = nullptr;
  uint32_t block_bits_ = 512;
  std::vector<uint32_t> lut_;
};

/// Two-level rank baseline in the style of Poppy: 32-bit superblock counts
/// every 2048 bits plus packed 16-bit sub-block offsets every 512 bits.
/// Slower than RankSupport for FST's access pattern because it needs two
/// table lookups; used only as the un-optimized baseline in Fig 3.6.
class PoppyRank {
 public:
  PoppyRank() = default;

  explicit PoppyRank(const BitVector* bv) { Build(bv); }

  void Build(const BitVector* bv) {
    bv_ = bv;
    size_t num_super = bv->size() / kSuperBits + 1;
    super_.assign(num_super, 0);
    sub_.assign(num_super * kSubPerSuper, 0);
    const uint64_t* words = bv->data();
    size_t num_words = bv->num_words();
    uint64_t running = 0;
    for (size_t s = 0; s < num_super; ++s) {
      super_[s] = running;
      uint64_t within = 0;
      for (size_t j = 0; j < kSubPerSuper; ++j) {
        sub_[s * kSubPerSuper + j] = static_cast<uint16_t>(within);
        size_t word_begin = (s * kSuperBits + j * kSubBits) / 64;
        for (size_t w = word_begin; w < word_begin + kSubBits / 64; ++w)
          if (w < num_words) within += PopCount(words[w]);
      }
      running += within;
    }
  }

  size_t Rank1(size_t pos) const {
    MET_OBS_DEBUG_COUNT("bitvec.rank_poppy.calls");
    size_t s = pos / kSuperBits;
    size_t j = (pos % kSuperBits) / kSubBits;
    size_t n = super_[s] + sub_[s * kSubPerSuper + j];
    size_t word_begin = (s * kSuperBits + j * kSubBits) / 64;
    size_t last_word = pos / 64;
    const uint64_t* words = bv_->data();
    for (size_t w = word_begin; w < last_word; ++w) n += PopCount(words[w]);
    uint64_t mask = ~uint64_t{0} >> (63 - pos % 64);
    n += PopCount(words[last_word] & mask);
    return n;
  }

  /// Prefetches the two table entries plus the sub-block's first word
  /// (met::batch; mirrors RankSupport::PrefetchRank1).
  void PrefetchRank1(size_t pos) const {
    size_t s = pos / kSuperBits;
    size_t j = (pos % kSuperBits) / kSubBits;
    PrefetchRead(&super_[s]);
    PrefetchRead(&sub_[s * kSubPerSuper + j]);
    PrefetchRead(bv_->data() + (s * kSuperBits + j * kSubBits) / 64);
  }

  /// Batched Rank1: prefetch pass followed by the scalar compute pass.
  void Rank1Batch(const size_t* pos, size_t n, size_t* out) const {
    for (size_t i = 0; i < n; ++i) PrefetchRank1(pos[i]);
    for (size_t i = 0; i < n; ++i) out[i] = Rank1(pos[i]);
  }

  size_t MemoryBytes() const {
    return super_.size() * sizeof(uint64_t) + sub_.size() * sizeof(uint16_t);
  }

 private:
  static constexpr size_t kSuperBits = 2048;
  static constexpr size_t kSubBits = 512;
  static constexpr size_t kSubPerSuper = kSuperBits / kSubBits;

  const BitVector* bv_ = nullptr;
  std::vector<uint64_t> super_;
  std::vector<uint16_t> sub_;
};

}  // namespace met

#endif  // MET_BITVEC_RANK_H_
