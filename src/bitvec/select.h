// Sampled select support (Fig 3.3, right half): a lookup table storing the
// position of every S-th set bit; queries scan forward from the nearest
// sample using word popcounts. Works well on S-LOUDS, which is dense
// (17-34% ones) with an even distribution of set bits.
#ifndef MET_BITVEC_SELECT_H_
#define MET_BITVEC_SELECT_H_

#include <cstdint>
#include <vector>

#include "bitvec/bitvector.h"
#include "common/bits.h"
#include "common/prefetch.h"
#include "obs/metrics.h"

namespace met {

class SelectSupport {
 public:
  SelectSupport() = default;

  SelectSupport(const BitVector* bv, uint32_t sample_rate = 64) {
    Build(bv, sample_rate);
  }

  void Build(const BitVector* bv, uint32_t sample_rate = 64) {
    bv_ = bv;
    sample_rate_ = sample_rate;
    lut_.clear();
    lut_.push_back(0);  // slot 0 unused; ranks are 1-based
    size_t ones = 0;
    const uint64_t* words = bv->data();
    for (size_t w = 0; w < bv->num_words(); ++w) {
      uint64_t word = words[w];
      size_t cnt = PopCount(word);
      size_t next_sample = (ones / sample_rate_ + 1) * sample_rate_;
      while (next_sample <= ones + cnt) {
        // The next_sample-th set bit lies inside this word.
        int within = static_cast<int>(next_sample - ones) - 1;
        lut_.push_back(static_cast<uint32_t>(w * 64 + SelectInWord(word, within)));
        next_sample += sample_rate_;
      }
      ones += cnt;
    }
  }

  /// Position of the `rank`-th set bit (rank >= 1). Precondition: the vector
  /// contains at least `rank` set bits.
  size_t Select1(size_t rank) const {
    MET_OBS_DEBUG_COUNT("bitvec.select.calls");
    size_t sample_idx = rank / sample_rate_;
    size_t pos = 0;
    size_t remaining = rank;
    if (sample_idx > 0) {
      if (rank % sample_rate_ == 0) return lut_[sample_idx];
      pos = lut_[sample_idx] + 1;
      remaining = rank - sample_idx * sample_rate_;
    }
    const uint64_t* words = bv_->data();
    size_t w = pos / 64;
    uint64_t word = words[w] & (~uint64_t{0} << (pos % 64));
    while (true) {
      size_t cnt = PopCount(word);
      if (cnt >= remaining)
        return w * 64 + SelectInWord(word, static_cast<int>(remaining) - 1);
      remaining -= cnt;
      word = words[++w];
    }
  }

  /// Prefetches the sample-LUT entry Select1(rank) starts from. The scan
  /// window itself depends on the entry's value — callers that can afford a
  /// second stage follow up with ScanStartWord() (met::batch).
  void PrefetchLut(size_t rank) const {
    PrefetchRead(&lut_[rank / sample_rate_]);
  }

  /// Word index where Select1(rank)'s forward scan begins. Reads the LUT
  /// entry, so call it one stage after PrefetchLut and prefetch the returned
  /// word of the bit vector before the Select1 itself.
  size_t ScanStartWord(size_t rank) const {
    size_t sample_idx = rank / sample_rate_;
    size_t pos = sample_idx > 0 ? lut_[sample_idx] : 0;
    return pos / 64;
  }

  /// Batched Select1 (met::batch), three passes: prefetch LUT entries,
  /// prefetch each query's scan-start word, compute. The compute pass is the
  /// scalar path, so results match n scalar Select1 calls exactly.
  void Select1Batch(const size_t* rank, size_t n, size_t* out) const {
    for (size_t i = 0; i < n; ++i) PrefetchLut(rank[i]);
    const uint64_t* words = bv_->data();
    for (size_t i = 0; i < n; ++i) PrefetchRead(&words[ScanStartWord(rank[i])]);
    for (size_t i = 0; i < n; ++i) out[i] = Select1(rank[i]);
  }

  size_t MemoryBytes() const { return lut_.size() * sizeof(uint32_t); }

 private:
  const BitVector* bv_ = nullptr;
  uint32_t sample_rate_ = 64;
  std::vector<uint32_t> lut_;
};

}  // namespace met

#endif  // MET_BITVEC_SELECT_H_
