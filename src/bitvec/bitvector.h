// Append-only bit vector backing the LOUDS-Dense/Sparse encodings.
#ifndef MET_BITVEC_BITVECTOR_H_
#define MET_BITVEC_BITVECTOR_H_

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/bits.h"

namespace met {

/// A growable, packed vector of bits. Bit positions are absolute (0-based);
/// bit i lives in word i/64 at offset i%64 (LSB first).
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `n` zero bits.
  explicit BitVector(size_t n) : num_bits_(n), words_((n + 63) / 64, 0) {}

  /// Appends `n` zero bits.
  void Extend(size_t n) {
    num_bits_ += n;
    words_.resize((num_bits_ + 63) / 64, 0);
  }

  void PushBack(bool bit) {
    if (num_bits_ % 64 == 0) words_.push_back(0);
    if (bit) words_.back() |= uint64_t{1} << (num_bits_ % 64);
    ++num_bits_;
  }

  /// Appends the low `n` bits (n <= 64) of `bits`, LSB first.
  void PushBits(uint64_t bits, int n) {
    for (int i = 0; i < n; ++i) PushBack((bits >> i) & 1);
  }

  void Set(size_t pos) {
    MET_DCHECK(pos < num_bits_);
    words_[pos / 64] |= uint64_t{1} << (pos % 64);
  }

  void Clear(size_t pos) {
    MET_DCHECK(pos < num_bits_);
    words_[pos / 64] &= ~(uint64_t{1} << (pos % 64));
  }

  bool Get(size_t pos) const {
    MET_DCHECK(pos < num_bits_);
    return (words_[pos / 64] >> (pos % 64)) & 1;
  }

  bool operator[](size_t pos) const { return Get(pos); }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  const uint64_t* data() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  /// Number of set bits in [0, size).
  size_t CountOnes() const {
    size_t n = 0;
    for (uint64_t w : words_) n += PopCount(w);
    return n;
  }

  /// Position of the next set bit at or after `pos`, or size() if none.
  size_t NextSetBit(size_t pos) const {
    if (pos >= num_bits_) return num_bits_;
    size_t w = pos / 64;
    uint64_t word = words_[w] & (~uint64_t{0} << (pos % 64));
    while (true) {
      if (word != 0) {
        size_t found = w * 64 + CountTrailingZeros(word);
        return found < num_bits_ ? found : num_bits_;
      }
      if (++w >= words_.size()) return num_bits_;
      word = words_[w];
    }
  }

  /// Number of zero bits starting at `pos` before the next set bit
  /// (capped at size()).
  size_t DistanceToNextSetBit(size_t pos) const {
    return NextSetBit(pos + 1) - pos;
  }

  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Serialization hooks (rank/select supports are rebuilt after load).
  void SetRaw(size_t num_bits, std::vector<uint64_t>&& words) {
    num_bits_ = num_bits;
    words_ = std::move(words);
  }
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace met

#endif  // MET_BITVEC_BITVECTOR_H_
