// Order-preserving (alphabetic) prefix-code construction for HOPE's
// variable-length code schemes (Section 6.1.3).
//
// Small dictionaries get the exact optimum via the Garsia-Wachs algorithm
// (equivalent to Hu-Tucker trees); large dictionaries (e.g. Double-Char's
// 64Ki symbols) use a weight-balanced recursive split, which is provably
// within 2 bits of entropy and orders of magnitude faster to build — see
// DESIGN.md for this documented substitution.
#ifndef MET_HOPE_ALPHABETIC_CODE_H_
#define MET_HOPE_ALPHABETIC_CODE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace met {

struct Code {
  uint64_t bits = 0;  // left-aligned at bit `len-1` .. 0 (value form)
  uint8_t len = 0;
};

/// Optimal alphabetic-tree leaf depths (Garsia-Wachs). O(n^2) worst case;
/// intended for n <= a few thousand.
std::vector<int> GarsiaWachsDepths(const std::vector<uint64_t>& weights);

/// Canonical alphabetic codes from leaf depths (codes are monotonically
/// increasing when compared as left-aligned bit strings).
std::vector<Code> CodesFromDepths(const std::vector<int>& depths);

/// Weight-balanced recursive-split alphabetic codes (near-optimal).
std::vector<Code> BalancedAlphabeticCodes(const std::vector<uint64_t>& weights);

/// Dispatcher: exact below `exact_limit` symbols, balanced split above.
std::vector<Code> BuildAlphabeticCodes(const std::vector<uint64_t>& weights,
                                       size_t exact_limit = 4096);

/// Fixed-length codes (ceil(log2(n)) bits, the VIFC column of Fig 6.3).
std::vector<Code> FixedLengthCodes(size_t n);

/// True iff the codes are strictly increasing as left-aligned bit strings
/// and form a prefix-free set (used by tests).
bool CodesAreOrderPreservingPrefixFree(const std::vector<Code>& codes);

}  // namespace met

#endif  // MET_HOPE_ALPHABETIC_CODE_H_
