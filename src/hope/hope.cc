#include "hope/hope.h"

#include <algorithm>
#include <unordered_map>

#include "common/assert.h"
#include "common/timer.h"

namespace met {

namespace {

/// Smallest string greater than every string starting with `s`: increment
/// the last byte with carry. Empty result means "+infinity".
std::string NextKey(std::string_view s) {
  std::string out(s);
  while (!out.empty()) {
    if (static_cast<unsigned char>(out.back()) != 0xFF) {
      out.back() = static_cast<char>(static_cast<unsigned char>(out.back()) + 1);
      return out;
    }
    out.pop_back();
  }
  return out;  // +inf
}

/// Appends `code` to `out` at bit position `*bit_len` (MSB-first packing).
void AppendCode(const Code& code, std::string* out, size_t* bit_len) {
  for (int i = code.len - 1; i >= 0; --i) {
    size_t bit = *bit_len;
    if (bit / 8 >= out->size()) out->push_back('\0');
    if ((code.bits >> i) & 1)
      (*out)[bit / 8] |= static_cast<char>(0x80 >> (bit % 8));
    ++(*bit_len);
  }
}

}  // namespace

const char* HopeSchemeName(HopeScheme scheme) {
  switch (scheme) {
    case HopeScheme::kSingleChar:
      return "Single-Char";
    case HopeScheme::kDoubleChar:
      return "Double-Char";
    case HopeScheme::k3Grams:
      return "3-Grams";
    case HopeScheme::k4Grams:
      return "4-Grams";
    case HopeScheme::kAlm:
      return "ALM";
    case HopeScheme::kAlmImproved:
      return "ALM-Improved";
  }
  return "?";
}

void HopeEncoder::BuildIntervalsFromSymbols(
    const std::vector<std::string>& symbols) {
  // Boundary set: every single byte c and its extension c+'\0' (so one-byte
  // tails form singleton intervals and every interval stays within one
  // first byte, guaranteeing non-empty interval symbols), plus [g, g+) for
  // every selected multi-byte symbol g.
  std::vector<std::string> bounds;
  bounds.reserve(symbols.size() * 2 + 512);
  for (int c = 0; c < 256; ++c) {
    std::string b(1, static_cast<char>(c));
    bounds.push_back(b);
    b.push_back('\0');
    bounds.push_back(std::move(b));
  }
  for (const std::string& g : symbols) {
    if (g.size() < 2) continue;  // singles already covered
    bounds.push_back(g);
    std::string nk = NextKey(g);
    if (!nk.empty()) bounds.push_back(std::move(nk));
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  boundaries_ = std::move(bounds);
  // First-byte dispatch table: boundaries_[bucket[c]] == the 1-byte string c.
  first_byte_bucket_.assign(257, 0);
  {
    size_t i = 0;
    for (int c = 0; c < 256; ++c) {
      std::string probe(1, static_cast<char>(c));
      while (i < boundaries_.size() && boundaries_[i] < probe) ++i;
      first_byte_bucket_[c] = static_cast<uint32_t>(i);
    }
    first_byte_bucket_[256] = static_cast<uint32_t>(boundaries_.size());
  }
  max_boundary_len_ = 1;
  for (const auto& b : boundaries_)
    max_boundary_len_ = std::max(max_boundary_len_, b.size());
  symbol_lens_.assign(boundaries_.size(), 1);
  for (size_t i = 0; i < boundaries_.size(); ++i) {
    const std::string& lo = boundaries_[i];
    std::string hi =
        i + 1 < boundaries_.size() ? boundaries_[i + 1] : std::string();
    // Longest prefix p of `lo` with NextKey(p) >= hi, so that the whole
    // interval lies inside [p, p+) and p is a prefix of every string in it
    // (hi empty == +inf requires p+ == +inf, i.e. p all-0xFF).
    size_t best = 0;
    for (size_t len = lo.size(); len >= 1; --len) {
      std::string pn = NextKey(std::string_view(lo).substr(0, len));
      if (pn.empty() || (!hi.empty() && pn >= hi)) {
        best = len;
        break;
      }
    }
    MET_ASSERT(best >= 1, "interval with empty symbol");
    symbol_lens_[i] = static_cast<uint8_t>(best);
  }
}

void HopeEncoder::CountIntervalHits(const std::vector<std::string>& sample,
                                    std::vector<uint64_t>* weights) const {
  weights->assign(symbol_lens_.size(), 1);  // Laplace smoothing
  for (const std::string& key : sample) {
    size_t pos = 0;
    while (pos < key.size()) {
      size_t i = IntervalFor(std::string_view(key).substr(pos));
      (*weights)[i] += 1;
      pos += symbol_lens_[i];
    }
  }
}

void HopeEncoder::Build(const std::vector<std::string>& sample,
                        HopeScheme scheme, size_t dict_size_limit) {
  scheme_ = scheme;
  direct_single_ = false;
  direct_double_ = false;
  build_stats_ = {};
  Timer timer;

  // ---- Symbol selection ----
  std::vector<std::string> symbols;
  switch (scheme) {
    case HopeScheme::kSingleChar:
      break;  // singles only
    case HopeScheme::kDoubleChar: {
      for (int a = 0; a < 256; ++a)
        for (int b = 0; b < 256; ++b) {
          std::string s(2, '\0');
          s[0] = static_cast<char>(a);
          s[1] = static_cast<char>(b);
          symbols.push_back(std::move(s));
        }
      break;
    }
    case HopeScheme::k3Grams:
    case HopeScheme::k4Grams: {
      size_t n = scheme == HopeScheme::k3Grams ? 3 : 4;
      std::unordered_map<std::string, uint64_t> counts;
      for (const std::string& key : sample)
        for (size_t i = 0; i + n <= key.size(); ++i)
          ++counts[key.substr(i, n)];
      std::vector<std::pair<uint64_t, std::string>> ranked;
      ranked.reserve(counts.size());
      for (auto& [g, c] : counts) ranked.emplace_back(c, g);
      size_t budget = dict_size_limit > 600 ? (dict_size_limit - 512) / 2 : 64;
      if (ranked.size() > budget) {
        std::nth_element(ranked.begin(), ranked.begin() + budget, ranked.end(),
                         [](const auto& a, const auto& b) { return a.first > b.first; });
        ranked.resize(budget);
      }
      for (auto& [c, g] : ranked) symbols.push_back(std::move(g));
      break;
    }
    case HopeScheme::kAlm:
    case HopeScheme::kAlmImproved: {
      // Variable-length substrings weighted by len * freq (the ALM
      // "equalizing" objective); ALM-Improved considers a wider window.
      size_t max_len = scheme == HopeScheme::kAlm ? 8 : 16;
      std::unordered_map<std::string, uint64_t> counts;
      for (const std::string& key : sample)
        for (size_t len = 2; len <= max_len; ++len)
          for (size_t i = 0; i + len <= key.size(); ++i)
            ++counts[key.substr(i, len)];
      std::vector<std::pair<uint64_t, std::string>> ranked;
      ranked.reserve(counts.size());
      for (auto& [g, c] : counts)
        if (c >= 2) ranked.emplace_back(c * g.size(), g);
      size_t budget = dict_size_limit > 600 ? (dict_size_limit - 512) / 2 : 64;
      if (ranked.size() > budget) {
        std::nth_element(ranked.begin(), ranked.begin() + budget, ranked.end(),
                         [](const auto& a, const auto& b) { return a.first > b.first; });
        ranked.resize(budget);
      }
      for (auto& [c, g] : ranked) symbols.push_back(std::move(g));
      break;
    }
  }
  build_stats_.symbol_select_seconds = timer.ElapsedSeconds();

  // ---- Interval construction ----
  timer.Reset();
  BuildIntervalsFromSymbols(symbols);
  build_stats_.dict_build_seconds = timer.ElapsedSeconds();

  // ---- Code assignment ----
  timer.Reset();
  std::vector<uint64_t> weights;
  CountIntervalHits(sample, &weights);
  if (scheme == HopeScheme::kAlm) {
    codes_ = FixedLengthCodes(weights.size());
  } else {
    codes_ = BuildAlphabeticCodes(weights);
  }
  build_stats_.code_assign_seconds = timer.ElapsedSeconds();

  // Fast paths.
  if (scheme == HopeScheme::kSingleChar) direct_single_ = true;
  if (scheme == HopeScheme::kDoubleChar &&
      boundaries_.size() == 256 * 257)
    direct_double_ = true;
}

size_t HopeEncoder::IntervalFor(std::string_view remaining) const {
  if (direct_single_) {
    // Boundaries are c, c+'\0' for every byte: index = 2c (singleton {c}) if
    // the remaining is exactly one byte, else 2c+1.
    unsigned char c = static_cast<unsigned char>(remaining[0]);
    return remaining.size() == 1 ? 2 * c : 2 * c + 1u;
  }
  if (direct_double_) {
    unsigned char c = static_cast<unsigned char>(remaining[0]);
    if (remaining.size() == 1) return static_cast<size_t>(c) * 257;
    unsigned char d = static_cast<unsigned char>(remaining[1]);
    return static_cast<size_t>(c) * 257 + 1 + d;
  }
  // Last boundary <= remaining, searched only among the intervals sharing
  // the first byte (single-dispatch analogue of the Fig 6.6 bitmap-trie).
  unsigned char first = static_cast<unsigned char>(remaining[0]);
  size_t lo = first_byte_bucket_[first];
  size_t hi = std::min<size_t>(first_byte_bucket_[first + 1] + 1,
                               boundaries_.size());
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (boundaries_[mid] <= remaining)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

size_t HopeEncoder::EncodeBits(std::string_view key, std::string* out) const {
  size_t bit_len = 0;
  size_t pos = 0;
  while (pos < key.size()) {
    size_t i = IntervalFor(key.substr(pos));
    AppendCode(codes_[i], out, &bit_len);
    pos += symbol_lens_[i];
  }
  return bit_len;
}

std::string HopeEncoder::Encode(std::string_view key) const {
  std::string out;
  out.reserve(key.size() / 2 + 1);
  EncodeBits(key, &out);
  return out;
}

void HopeEncoder::EncodeBatch(const std::vector<std::string>& sorted_keys,
                              std::vector<std::string>* out) const {
  out->clear();
  out->reserve(sorted_keys.size());
  // Checkpoints from the previous key: after consuming `bytes` source bytes,
  // the encoding was `bits` bits long.
  std::vector<std::pair<uint32_t, uint32_t>> checkpoints, prev_checkpoints;
  std::string prev_encoded;
  std::string_view prev_key;

  for (const std::string& key : sorted_keys) {
    // Longest shared prefix with the previous key.
    size_t common = 0;
    size_t max_common = std::min(prev_key.size(), key.size());
    while (common < max_common && prev_key[common] == key[common]) ++common;

    // Find the deepest checkpoint whose interval decisions are fully
    // determined inside the shared prefix: every dictionary lookup compares
    // at most max_boundary_len_ bytes of the remaining string, so decisions
    // up to `common - max_boundary_len_` are identical for both keys.
    size_t start_byte = 0, start_bits = 0;
    size_t safe = common > max_boundary_len_ ? common - max_boundary_len_ : 0;
    for (const auto& [bytes, bits] : prev_checkpoints) {
      if (bytes <= safe) {
        start_byte = bytes;
        start_bits = bits;
      } else {
        break;
      }
    }

    std::string enc;
    // Copy the shared encoded bits (whole bytes + the partial tail).
    enc.assign(prev_encoded, 0, (start_bits + 7) / 8);
    if (start_bits % 8 != 0) {
      // Clear bits past start_bits in the last byte.
      enc.back() &= static_cast<char>(0xFF << (8 - start_bits % 8));
    }
    size_t bit_len = start_bits;
    checkpoints.clear();
    checkpoints.emplace_back(0, 0);
    size_t pos = start_byte;
    // Re-record checkpoints up to start_byte from the previous key.
    for (const auto& cp : prev_checkpoints)
      if (cp.first <= start_byte && cp.first != 0) checkpoints.push_back(cp);
    while (pos < key.size()) {
      size_t i = IntervalFor(std::string_view(key).substr(pos));
      AppendCode(codes_[i], &enc, &bit_len);
      pos += symbol_lens_[i];
      checkpoints.emplace_back(static_cast<uint32_t>(pos),
                               static_cast<uint32_t>(bit_len));
    }
    prev_checkpoints = checkpoints;
    prev_encoded = enc;
    prev_key = key;
    out->push_back(std::move(enc));
  }
}

double HopeEncoder::Cpr(const std::vector<std::string>& keys) const {
  size_t raw = 0, enc_bits = 0;
  std::string scratch;
  for (const auto& k : keys) {
    raw += k.size();
    scratch.clear();
    enc_bits += EncodeBits(k, &scratch);
  }
  if (enc_bits == 0) return 0;
  return static_cast<double>(raw * 8) / static_cast<double>(enc_bits);
}

size_t HopeEncoder::DictMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& b : boundaries_) bytes += b.size() + sizeof(uint32_t);
  bytes += symbol_lens_.size();
  bytes += codes_.size() * sizeof(Code);
  return bytes;
}

}  // namespace met
