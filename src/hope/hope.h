// HOPE — High-speed Order-Preserving Encoder (Chapter 6).
//
// A dictionary-based string compressor whose encodings preserve key order,
// so search trees can index compressed keys and still answer range queries.
// Built on the string-axis model (Section 6.1): the key space is divided
// into intervals, each with a common-prefix symbol and a monotonically
// increasing prefix code; encoding repeatedly looks up the interval holding
// the remaining key bytes, consumes the symbol, and emits the code.
//
// Six schemes (Table 6.1) trading compression rate for encoding speed:
//   Single-Char    FIVC  256 one-byte symbols, optimal alphabetic codes
//   Double-Char    FIVC  64Ki two-byte symbols (+ one-byte tails)
//   3-Grams        VIVC  frequent 3-byte substrings as interval anchors
//   4-Grams        VIVC  frequent 4-byte substrings
//   ALM            VIFC  variable-length symbols (len*freq equalized),
//                        fixed-length codes
//   ALM-Improved   VIVC  ALM symbols + optimal alphabetic codes
#ifndef MET_HOPE_HOPE_H_
#define MET_HOPE_HOPE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hope/alphabetic_code.h"

namespace met {

enum class HopeScheme {
  kSingleChar,
  kDoubleChar,
  k3Grams,
  k4Grams,
  kAlm,
  kAlmImproved,
};

const char* HopeSchemeName(HopeScheme scheme);

struct HopeBuildStats {
  double symbol_select_seconds = 0;  // counting + interval selection
  double code_assign_seconds = 0;    // Hu-Tucker / balanced code build
  double dict_build_seconds = 0;     // boundary array construction
};

class HopeEncoder {
 public:
  HopeEncoder() = default;

  /// Builds the dictionary from a key sample (typically 1% of the load set).
  /// `dict_size_limit` caps the number of intervals for the gram/ALM schemes
  /// (the paper's default is 2^16).
  void Build(const std::vector<std::string>& sample, HopeScheme scheme,
             size_t dict_size_limit = 1 << 16);

  /// Order-preserving encoding, zero-padded to whole bytes.
  std::string Encode(std::string_view key) const;

  /// Appends the encoding of `key` to `*out` starting at `bit_offset` bits;
  /// returns the encoded length in bits.
  size_t EncodeBits(std::string_view key, std::string* out) const;

  /// Batch encoding of sorted keys, reusing shared-prefix work between
  /// consecutive keys (Section 6.4.4).
  void EncodeBatch(const std::vector<std::string>& sorted_keys,
                   std::vector<std::string>* out) const;

  /// Compression rate = total uncompressed bytes / total encoded bytes.
  double Cpr(const std::vector<std::string>& keys) const;

  size_t num_intervals() const { return symbol_lens_.size(); }
  size_t DictMemoryBytes() const;
  const HopeBuildStats& build_stats() const { return build_stats_; }
  HopeScheme scheme() const { return scheme_; }

 private:
  /// Interval index containing the (non-empty) remaining key bytes.
  size_t IntervalFor(std::string_view remaining) const;

  void BuildIntervalsFromSymbols(const std::vector<std::string>& symbols);
  void CountIntervalHits(const std::vector<std::string>& sample,
                         std::vector<uint64_t>* weights) const;

  HopeScheme scheme_ = HopeScheme::kSingleChar;
  // Interval i = [boundaries_[i], boundaries_[i+1]); the last interval is
  // unbounded above. Boundaries are stored concatenated for cache locality.
  std::vector<std::string> boundaries_;
  std::vector<uint8_t> symbol_lens_;  // bytes consumed by interval i
  std::vector<Code> codes_;
  bool direct_single_ = false;  // Single-Char fast path (no binary search)
  bool direct_double_ = false;  // Double-Char fast path
  // First-byte dispatch (the role of Fig 6.6's bitmap-trie dictionary):
  // every single byte is a boundary, so bucket[c]..bucket[c+1] brackets the
  // binary search to the intervals sharing the first byte.
  std::vector<uint32_t> first_byte_bucket_;  // size 257
  size_t max_boundary_len_ = 1;  // longest boundary string (batch-reuse bound)
  HopeBuildStats build_stats_;
};

}  // namespace met

#endif  // MET_HOPE_HOPE_H_
