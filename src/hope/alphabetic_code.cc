#include "hope/alphabetic_code.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace met {

namespace {

/// Compares two codes as left-aligned bit strings (the order encoded keys
/// sort in).
bool CodeLess(const Code& a, const Code& b) {
  int n = std::min(a.len, b.len);
  uint64_t ah = a.bits >> (a.len - n);
  uint64_t bh = b.bits >> (b.len - n);
  if (ah != bh) return ah < bh;
  return a.len < b.len;
}

}  // namespace

std::vector<int> GarsiaWachsDepths(const std::vector<uint64_t>& weights) {
  size_t n = weights.size();
  std::vector<int> depths(n, 0);
  if (n <= 1) return depths;

  // Phase 1: Garsia-Wachs merging. Work items carry a tree-node id; the
  // merge order gives optimal leaf *levels* even though the working list's
  // order is shuffled by the re-insertion step.
  struct TreeNode {
    int left = -1, right = -1;
    int leaf = -1;  // original index if leaf
  };
  std::vector<TreeNode> nodes;
  nodes.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) nodes.push_back({-1, -1, static_cast<int>(i)});

  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> w;  // with sentinels
  std::vector<int> id;
  w.reserve(n + 2);
  id.reserve(n + 2);
  w.push_back(kInf);
  id.push_back(-1);
  for (size_t i = 0; i < n; ++i) {
    w.push_back(weights[i]);
    id.push_back(static_cast<int>(i));
  }
  w.push_back(kInf);
  id.push_back(-1);

  size_t remaining = n;
  while (remaining > 1) {
    // Find the leftmost i (1-based inside sentinels) with w[i-1] <= w[i+1]:
    // (i-1, i) is a locally minimal compatible pair.
    size_t i = 1;
    while (!(w[i] <= w[i + 2])) ++i;
    ++i;  // merge (i-1, i)
    uint64_t t = w[i - 1] + w[i];
    nodes.push_back({id[i - 1], id[i], -1});
    int tid = static_cast<int>(nodes.size()) - 1;
    // Remove positions i-1, i.
    w.erase(w.begin() + i - 1, w.begin() + i + 1);
    id.erase(id.begin() + i - 1, id.begin() + i + 1);
    // Insert t after the nearest element to the left that is >= t.
    size_t j = i - 1;
    while (w[j - 1] < t) --j;
    w.insert(w.begin() + j, t);
    id.insert(id.begin() + j, tid);
    --remaining;
  }

  // Phase 2: leaf depths from the phase-1 tree.
  struct Frame {
    int node;
    int depth;
  };
  std::vector<Frame> stack{{id[1], 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const TreeNode& nd = nodes[f.node];
    if (nd.leaf >= 0) {
      depths[nd.leaf] = f.depth;
      continue;
    }
    stack.push_back({nd.left, f.depth + 1});
    stack.push_back({nd.right, f.depth + 1});
  }
  return depths;
}

std::vector<Code> CodesFromDepths(const std::vector<int>& depths) {
  std::vector<Code> codes(depths.size());
  if (depths.empty()) return codes;
  codes[0] = {0, static_cast<uint8_t>(depths[0])};
  for (size_t i = 1; i < depths.size(); ++i) {
    uint64_t v = codes[i - 1].bits + 1;
    int prev = depths[i - 1], cur = depths[i];
    if (cur > prev)
      v <<= (cur - prev);
    else
      v >>= (prev - cur);
    codes[i] = {v, static_cast<uint8_t>(cur)};
  }
  return codes;
}

namespace {

void BalancedSplit(const std::vector<uint64_t>& prefix, size_t lo, size_t hi,
                   uint64_t code, int depth, std::vector<Code>* out) {
  if (hi - lo == 1) {
    (*out)[lo] = {code, static_cast<uint8_t>(depth)};
    return;
  }
  size_t mid;
  if (depth >= 56) {
    // Safety: force count-balanced splits so code length stays <= 64.
    mid = (lo + hi) / 2;
  } else {
    // Split point minimizing |left weight - right weight|.
    uint64_t total = prefix[hi] - prefix[lo];
    uint64_t half = prefix[lo] + total / 2;
    mid = std::upper_bound(prefix.begin() + lo + 1, prefix.begin() + hi, half) -
          prefix.begin();
    if (mid >= hi) mid = hi - 1;
    if (mid <= lo) mid = lo + 1;
  }
  BalancedSplit(prefix, lo, mid, code << 1, depth + 1, out);
  BalancedSplit(prefix, mid, hi, (code << 1) | 1, depth + 1, out);
}

}  // namespace

std::vector<Code> BalancedAlphabeticCodes(const std::vector<uint64_t>& weights) {
  std::vector<Code> codes(weights.size());
  if (weights.empty()) return codes;
  if (weights.size() == 1) {
    codes[0] = {0, 1};
    return codes;
  }
  std::vector<uint64_t> prefix(weights.size() + 1, 0);
  for (size_t i = 0; i < weights.size(); ++i)
    prefix[i + 1] = prefix[i] + weights[i];
  BalancedSplit(prefix, 0, weights.size(), 0, 0, &codes);
  return codes;
}

std::vector<Code> BuildAlphabeticCodes(const std::vector<uint64_t>& weights,
                                       size_t exact_limit) {
  if (weights.size() <= 1) return BalancedAlphabeticCodes(weights);
  if (weights.size() <= exact_limit)
    return CodesFromDepths(GarsiaWachsDepths(weights));
  return BalancedAlphabeticCodes(weights);
}

std::vector<Code> FixedLengthCodes(size_t n) {
  int bits = 1;
  while ((size_t{1} << bits) < n) ++bits;
  std::vector<Code> codes(n);
  for (size_t i = 0; i < n; ++i)
    codes[i] = {static_cast<uint64_t>(i), static_cast<uint8_t>(bits)};
  return codes;
}

bool CodesAreOrderPreservingPrefixFree(const std::vector<Code>& codes) {
  for (size_t i = 1; i < codes.size(); ++i) {
    if (!CodeLess(codes[i - 1], codes[i])) return false;
    // Prefix-free: the shared high bits must differ somewhere within
    // min(len) bits.
    const Code& a = codes[i - 1];
    const Code& b = codes[i];
    int n = std::min(a.len, b.len);
    if ((a.bits >> (a.len - n)) == (b.bits >> (b.len - n))) return false;
  }
  return true;
}

}  // namespace met
