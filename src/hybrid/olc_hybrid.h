// OLC dual-stage hybrid index: ConcurrentHybridIndex with the writer-
// exclusive SharedMutex replaced by optimistically lock-coupled dynamic
// stages (btree/olc_btree.h, art/olc_art.h). Concurrent inserts, updates
// and deletes proceed in parallel with each other, with readers, and with
// the freeze/drain/publish merge.
//
// The freeze step is an epoch-coordinated handoff instead of an exclusive-
// lock barrier:
//
//   freeze  — the merge claimant (merge_inflight_ CAS) swaps in a snapshot
//             whose frozen stage is the old active and whose active stage is
//             fresh, then retires the old snapshot, obtaining a tag.
//   drain   — before reading the frozen stage, the drainer calls
//             EpochDomain::WaitQuiescentSince(tag). Every mutation runs
//             under an epoch pin taken *before* loading the snapshot, so a
//             writer still mutating the now-frozen stage is pinned at an
//             epoch <= tag (pins ordered after the retire observe the new
//             snapshot; see epoch.h). Once those pins drain the frozen
//             stage is quiescent and includes every routed write.
//   publish — the drainer (still the sole snapshot swapper while
//             merge_inflight_) swaps in a snapshot with the merged static
//             stage and no frozen stage.
//
// Mutations return MutateOutcome (common/index_api.h) and never block on a
// merge; kRetry surfaces a stage's exhausted restart budget with no state
// change. Outcomes and the size counter are exact under per-key
// serialization (no two threads racing the *same* key), the discipline all
// in-tree callers follow; under same-key races both are last-writer-wins
// approximations, as documented on the OLC stages.
//
// No Bloom filters in front of the active stage: filter maintenance would
// reintroduce a writer ordering point, and the OLC stages make negative
// probes cheap (a descent with no lock traffic).
#ifndef MET_HYBRID_OLC_HYBRID_H_
#define MET_HYBRID_OLC_HYBRID_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "art/olc_art.h"
#include "btree/olc_btree.h"
#include "common/assert.h"
#include "common/index_api.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "hybrid/adapters.h"
#include "hybrid/concurrent_hybrid.h"
#include "hybrid/epoch.h"
#include "hybrid/hybrid_index.h"
#include "hybrid/merge_core.h"
#include "obs/obs.h"

namespace met {

/// Merge-phase metrics for the OLC hybrid, separate from the locked
/// hybrid's so bench_olc_scaling can attribute pauses per engine.
struct OlcHybridObsMetrics {
  obs::Counter* merges;
  obs::Histogram* freeze_ns;
  obs::Histogram* handoff_ns;  // WaitQuiescentSince: the drain's wait
  obs::Histogram* drain_ns;
  obs::Histogram* publish_ns;
  obs::Histogram* merge_entries;

  static const OlcHybridObsMetrics& Get() {
    static const OlcHybridObsMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return OlcHybridObsMetrics{
          reg.GetCounter("hybrid.olc.merge.count"),
          reg.GetHistogram("hybrid.olc.merge.freeze_ns"),
          reg.GetHistogram("hybrid.olc.merge.handoff_ns"),
          reg.GetHistogram("hybrid.olc.merge.drain_ns"),
          reg.GetHistogram("hybrid.olc.merge.publish_ns"),
          reg.GetHistogram("hybrid.olc.merge.dynamic_entries"),
      };
    }();
    return m;
  }
};

/// DynamicStage is an OLC structure used directly (no adapter): it must
/// speak the native outcome surface (Upsert/UpdateIfPresent/Remove with a
/// previous-value out param), concurrent-safe Lookup/ScanPairs/size, and
/// ideally share this index's epoch domain (a constructor taking
/// hybrid::EpochDomain* is detected and used, so one guard pin covers both
/// snapshot and node reclamation).
template <typename Key, typename DynamicStage, typename StaticStage>
class OlcConcurrentHybridIndex {
 public:
  using Value = uint64_t;
  static constexpr Value kTombstone = ~Value{0};

  explicit OlcConcurrentHybridIndex(const ConcurrentHybridConfig& config = {})
      : config_(Normalize(config)) {
    snapshot_.store(new Snapshot{MakeStage(), nullptr,
                                 std::make_shared<const StaticStage>(), 0},
                    std::memory_order_seq_cst);
  }

  ~OlcConcurrentHybridIndex() {
    WaitForMergeIdle();
    delete snapshot_.load(std::memory_order_seq_cst);
    // epoch_'s destructor runs any still-retired deleters (old snapshots
    // and any nodes the stages retired into the shared domain).
  }

  OlcConcurrentHybridIndex(const OlcConcurrentHybridIndex&) = delete;
  OlcConcurrentHybridIndex& operator=(const OlcConcurrentHybridIndex&) =
      delete;

  /// Unique-mode insert: kExists if the key is live anywhere. Non-unique
  /// mode upserts: kInserted if the key was dead, else kUpdated.
  MutateOutcome Insert(const Key& key, Value value) {
    bool froze = false;
    uint64_t tag = 0;
    MutateOutcome result;
    {
      hybrid::EpochGuard g(epoch_);
      const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
      Value av = 0;
      bool in_active = s->active->Lookup(key, &av);
      bool was_live =
          in_active ? av != kTombstone : FindBelow(*s, key, nullptr);
      if (config_.unique && was_live) return MutateOutcome::kExists;
      Value prev = 0;
      MutateOutcome o = s->active->Upsert(key, value, &prev);
      if (o == MutateOutcome::kRetry) return o;
      if (!was_live) size_.fetch_add(1, std::memory_order_relaxed);
      result = was_live ? MutateOutcome::kUpdated : MutateOutcome::kInserted;
      froze = MaybeStartMerge(*s, &tag);
    }
    FinishMergeStart(froze, tag);
    return result;
  }

  /// Overwrite of a live key; new values land in the active stage so
  /// recently modified entries stay hot. kNotFound if dead or absent.
  MutateOutcome Update(const Key& key, Value value) {
    bool froze = false;
    uint64_t tag = 0;
    {
      hybrid::EpochGuard g(epoch_);
      const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
      Value av = 0;
      if (s->active->Lookup(key, &av)) {
        if (av == kTombstone) return MutateOutcome::kNotFound;
        Value prev = 0;
        MutateOutcome o = s->active->UpdateIfPresent(key, value, &prev);
        if (o != MutateOutcome::kNotFound) return o;  // kUpdated or kRetry
        // The entry vanished between probe and update (a racing physical
        // remove); fall through to the below-stage path.
      }
      if (!FindBelow(*s, key, nullptr)) return MutateOutcome::kNotFound;
      Value prev = 0;
      MutateOutcome o = s->active->Upsert(key, value, &prev);
      if (o == MutateOutcome::kRetry) return o;
      froze = MaybeStartMerge(*s, &tag);
    }
    FinishMergeStart(froze, tag);
    return MutateOutcome::kUpdated;
  }

  /// Removes a live key. Leaves a tombstone in the active stage iff the key
  /// is still live below it (frozen or static stage) — physically dropped
  /// at the next merge; otherwise removes physically.
  MutateOutcome Remove(const Key& key) {
    bool froze = false;
    uint64_t tag = 0;
    {
      hybrid::EpochGuard g(epoch_);
      const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
      Value av = 0;
      if (s->active->Lookup(key, &av)) {
        if (av == kTombstone) return MutateOutcome::kNotFound;
        Value prev = 0;
        MutateOutcome o;
        if (FindBelow(*s, key, nullptr))
          o = s->active->UpdateIfPresent(key, kTombstone, &prev);
        else
          o = s->active->Remove(key, &prev);
        if (o == MutateOutcome::kRetry) return o;
        if (o == MutateOutcome::kNotFound) return o;  // racing remove won
        size_.fetch_sub(1, std::memory_order_relaxed);
        return MutateOutcome::kRemoved;
      }
      if (!FindBelow(*s, key, nullptr)) return MutateOutcome::kNotFound;
      Value prev = 0;
      MutateOutcome o = s->active->Upsert(key, kTombstone, &prev);
      if (o == MutateOutcome::kRetry) return o;
      size_.fetch_sub(1, std::memory_order_relaxed);
      froze = MaybeStartMerge(*s, &tag);
    }
    FinishMergeStart(froze, tag);
    return MutateOutcome::kRemoved;
  }

  /// Unified point lookup; never blocks (active stage probes are OLC reads,
  /// lower stages are reached through the epoch-pinned snapshot).
  bool Lookup(const Key& key, Value* value = nullptr) const {
    hybrid::EpochGuard g(epoch_);
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    Value v = 0;
    if (s->active->Lookup(key, &v)) {
      if (v == kTombstone) return false;
      if (value != nullptr) *value = v;
      return true;
    }
    return FindBelow(*s, key, value);
  }

  /// Ordered scan across the three stages (active shadows frozen shadows
  /// static). Same per-key atomicity caveat as ConcurrentHybridIndex: the
  /// (frozen, static) pair is fixed for the whole scan, the active stage is
  /// consulted per batch.
  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    hybrid::EpochGuard g(epoch_);
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    std::shared_ptr<DynamicStage> active = s->active;
    std::array<hybrid::StageFetcher<Key, Value>, 3> fetch;
    fetch[0] = [active](const Key& from, size_t batch,
                        std::vector<std::pair<Key, Value>>* pairs) {
      active->ScanPairs(from, batch, pairs);
    };
    if (s->frozen != nullptr) {
      fetch[1] = [s](const Key& from, size_t batch,
                     std::vector<std::pair<Key, Value>>* pairs) {
        s->frozen->ScanPairs(from, batch, pairs);
      };
    }
    fetch[2] = [s](const Key& from, size_t batch,
                   std::vector<std::pair<Key, Value>>* pairs) {
      s->stat->ScanPairs(from, batch, pairs);
    };
    return hybrid::MergedScan<Key, Value, 3>(key, n, kTombstone, out, fetch);
  }

  /// Forces a merge of everything buffered so far and waits for it to
  /// publish (drains synchronously on the calling thread).
  void Merge() {
    for (;;) {
      WaitForMergeIdle();
      bool won = false, empty = false;
      uint64_t tag = 0;
      {
        hybrid::EpochGuard g(epoch_);
        const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
        if (!merge_inflight_.load(std::memory_order_seq_cst)) {
          if (s->active->size() == 0) {
            empty = true;
          } else if (!merge_inflight_.exchange(true,
                                               std::memory_order_seq_cst)) {
            tag = Freeze();
            won = true;
          }
        }
      }
      if (empty) return;
      if (won) {
        DrainAndPublish(tag);
        return;
      }
      // Another writer claimed the merge between the wait and the exchange;
      // wait it out and retry so post-Merge() state is fully drained.
    }
  }

  /// Blocks until no merge is in flight and the drain thread has exited.
  void WaitForMergeIdle() const {
    sync::MutexLock l(merge_mu_);
    merge_cv_.Wait(merge_mu_, [&] {
      return !merge_inflight_.load(std::memory_order_relaxed);
    });
    if (merge_thread_.joinable()) merge_thread_.join();
  }

  bool MergeInFlight() const {
    return merge_inflight_.load(std::memory_order_relaxed);
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    hybrid::EpochGuard g(epoch_);
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    size_t bytes = s->active->MemoryBytes() + s->stat->MemoryBytes();
    if (s->frozen != nullptr) bytes += s->frozen->MemoryBytes();
    return bytes;
  }

  /// Per-stage attribution; compare against MemoryBytes() only under
  /// quiesced merges (a merge between the accessors moves bytes).
  MemoryBreakdown Breakdown() const {
    hybrid::EpochGuard g(epoch_);
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    MemoryBreakdown b("olc_hybrid");
    b.AddChild("active_stage", s->active->Breakdown());
    if (s->frozen != nullptr)
      b.AddChild("frozen_stage", s->frozen->Breakdown());
    b.AddChild("static_stage", s->stat->Breakdown());
    return b;
  }

  size_t ActiveEntries() const {
    hybrid::EpochGuard g(epoch_);
    return snapshot_.load(std::memory_order_seq_cst)->active->size();
  }

  size_t DynamicEntries() const {
    hybrid::EpochGuard g(epoch_);
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    size_t n = s->active->size();
    if (s->frozen != nullptr) n += s->frozen->size();
    return n;
  }

  size_t StaticEntries() const {
    hybrid::EpochGuard g(epoch_);
    return snapshot_.load(std::memory_order_seq_cst)->stat->size();
  }

  HybridMergeStats merge_stats() const {
    sync::MutexLock l(merge_mu_);
    return stats_;
  }

  /// Incremented at each freeze and each publish (+2 per completed merge).
  uint64_t SnapshotVersion() const {
    hybrid::EpochGuard g(epoch_);
    return snapshot_.load(std::memory_order_seq_cst)->version;
  }

  std::shared_ptr<const StaticStage> StaticStageSnapshot() const {
    hybrid::EpochGuard g(epoch_);
    return snapshot_.load(std::memory_order_seq_cst)->stat;
  }

  const hybrid::EpochDomain& epoch_domain() const { return epoch_; }

  /// Quiescent-only (WaitForMergeIdle() first, no concurrent writers):
  /// checks the size counter against a full merged scan, the dynamic
  /// stage's own structural invariants, and the epoch domain.
  bool Validate(std::ostream& os) const {
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    if (s->frozen != nullptr) {
      os << "olc_hybrid: frozen stage present while idle\n";
      return false;
    }
    if constexpr (requires(const DynamicStage& d, std::ostream& o) {
                    { d.Validate(o) } -> std::convertible_to<bool>;
                  }) {
      if (!s->active->Validate(os)) return false;
    }
    std::vector<Value> values;
    size_t live = Scan(hybrid::MinKey<Key>(), size() + 16, &values);
    if (live != size()) {
      os << "olc_hybrid: size " << size() << " != scanned live entries "
         << live << "\n";
      return false;
    }
    return epoch_.Validate(os);
  }

 private:
  struct Snapshot {
    // `active` is mutable through the const snapshot (shared_ptr does not
    // propagate const): the stage is internally synchronized, so the
    // published pointer itself is the only thing the epoch protocol guards.
    std::shared_ptr<DynamicStage> active;        // never null
    std::shared_ptr<const DynamicStage> frozen;  // null unless merging
    std::shared_ptr<const StaticStage> stat;     // never null
    uint64_t version;
  };

  static ConcurrentHybridConfig Normalize(ConcurrentHybridConfig c) {
    c.strategy = HybridConfig::MergeStrategy::kMergeAll;  // see header note
    c.use_bloom = false;  // see header note
    return c;
  }

  /// Fresh dynamic stage; an OLC stage constructible from an EpochDomain*
  /// shares this index's domain (one pin covers snapshot + node safety).
  std::shared_ptr<DynamicStage> MakeStage() {
    if constexpr (std::is_constructible_v<DynamicStage,
                                          hybrid::EpochDomain*>) {
      return std::make_shared<DynamicStage>(&epoch_);
    } else {
      return std::make_shared<DynamicStage>();
    }
  }

  /// Point probe below the active stage: frozen (tombstones delete), then
  /// static. Caller holds an epoch pin.
  static bool FindBelow(const Snapshot& s, const Key& key, Value* value) {
    Value v = 0;
    if (s.frozen != nullptr && s.frozen->Lookup(key, &v)) {
      if (v == kTombstone) return false;
      if (value != nullptr) *value = v;
      return true;
    }
    if (s.stat->Lookup(key, &v)) {
      if (value != nullptr) *value = v;
      return true;
    }
    return false;
  }

  /// Checks the merge trigger against the snapshot the caller just wrote
  /// through and, on winning the claim CAS, freezes. Caller holds an epoch
  /// pin; on true, it must call FinishMergeStart(froze, tag) after
  /// releasing it.
  bool MaybeStartMerge(const Snapshot& s, uint64_t* tag) {
    if (merge_inflight_.load(std::memory_order_seq_cst)) return false;
    size_t dyn = s.active->size();
    if (dyn == 0) return false;
    if (config_.constant_trigger) {
      if (dyn < config_.constant_threshold) return false;
    } else {
      if (dyn < config_.min_merge_entries) return false;
      if (static_cast<double>(dyn) * config_.merge_ratio <
          static_cast<double>(s.stat->size()))
        return false;
    }
    if (merge_inflight_.exchange(true, std::memory_order_seq_cst))
      return false;  // another writer claimed it first
    *tag = Freeze();
    return true;
  }

  /// Swaps in the frozen-stage snapshot. Caller holds the merge claim and
  /// an epoch pin; while merge_inflight_ is set this thread (then the
  /// drainer) is the only snapshot swapper.
  uint64_t Freeze() {
    obs::ScopedTimer trace(nullptr, "hybrid.olc.freeze");
    Timer timer;
    const Snapshot* old = snapshot_.load(std::memory_order_seq_cst);
    MET_DCHECK(old->frozen == nullptr,
               "freeze with a merge already in flight");
    size_t frozen_entries = old->active->size();
    auto* next = new Snapshot{MakeStage(), old->active, old->stat,
                              old->version + 1};
    snapshot_.store(next, std::memory_order_seq_cst);
    uint64_t tag = epoch_.Retire([old] { delete old; });
    {
      sync::MutexLock l(merge_mu_);
      stats_.last_merge_dynamic_entries = frozen_entries;
      stats_.last_merge_static_entries = next->stat->size();
    }
    OlcHybridObsMetrics::Get().freeze_ns->RecordNanos(timer.ElapsedNanos());
    return tag;
  }

  /// Launches the drain for a completed freeze. The caller must have
  /// released its epoch pin (the drain waits on pins <= tag).
  void FinishMergeStart(bool froze, uint64_t tag) {
    if (!froze) return;
    if (config_.background_merge) {
      sync::MutexLock l(merge_mu_);
      // The previous drain fully finished before this freeze could claim
      // merge_inflight_, so the join returns immediately.
      if (merge_thread_.joinable()) merge_thread_.join();
      merge_thread_ = std::thread([this, tag] { DrainAndPublish(tag); });
    } else {
      DrainAndPublish(tag);
    }
  }

  /// Epoch handoff + off-pin drain + publish. Runs with no pin held at
  /// entry (WaitQuiescentSince would deadlock on the caller's own pin).
  void DrainAndPublish(uint64_t tag) {
    Timer handoff_timer;
    {
      obs::ScopedTimer trace(nullptr, "hybrid.olc.handoff");
      // After this, every writer that loaded the pre-freeze snapshot has
      // unpinned: the frozen stage is quiescent and complete.
      epoch_.WaitQuiescentSince(tag);
    }
    uint64_t handoff_ns = handoff_timer.ElapsedNanos();

    Timer drain_timer;
    std::shared_ptr<StaticStage> next_stat;
    size_t drained = 0;
    {
      obs::ScopedTimer trace(nullptr, "hybrid.olc.drain");
      hybrid::EpochGuard g(epoch_);
      const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
      MET_DCHECK(s->frozen != nullptr, "drain without a frozen stage");
      std::vector<MergeEntry<Key, Value>> entries;
      entries.reserve(s->frozen->size());
      hybrid::CollectSortedEntries<Key, Value>(*s->frozen, kTombstone,
                                               &entries);
      drained = entries.size();
      next_stat = hybrid::BuildMergedStatic<StaticStage>(*s->stat, entries);
    }
    uint64_t drain_ns = drain_timer.ElapsedNanos();

    Timer publish_timer;
    {
      obs::ScopedTimer trace(nullptr, "hybrid.olc.publish");
      // Sole swapper while merge_inflight_: load-swap-retire needs no pin.
      const Snapshot* cur = snapshot_.load(std::memory_order_seq_cst);
      auto* next = new Snapshot{
          cur->active, nullptr,
          std::shared_ptr<const StaticStage>(std::move(next_stat)),
          cur->version + 1};
      snapshot_.store(next, std::memory_order_seq_cst);
      epoch_.Retire([cur] { delete cur; });
    }
    epoch_.TryReclaim();  // old frozen/static/snapshots free here, off-path

    const OlcHybridObsMetrics& obs = OlcHybridObsMetrics::Get();
    obs.merges->Increment();
    obs.handoff_ns->RecordNanos(handoff_ns);
    obs.drain_ns->RecordNanos(drain_ns);
    obs.publish_ns->RecordNanos(publish_timer.ElapsedNanos());
    obs.merge_entries->Record(drained);
    {
      sync::MutexLock l(merge_mu_);
      ++stats_.merge_count;
      stats_.last_merge_seconds = static_cast<double>(drain_ns) / 1e9;
      stats_.total_merge_seconds += stats_.last_merge_seconds;
      merge_inflight_.store(false, std::memory_order_relaxed);
      merge_cv_.NotifyAll();
    }
  }

  ConcurrentHybridConfig config_;

  /// Published pointer: readers and writers reach it through an epoch pin,
  /// never a lock; the merge claimant swaps it and retires the old value.
  sync::Atomic<const Snapshot*> snapshot_{nullptr};
  mutable hybrid::EpochDomain epoch_;

  sync::Atomic<size_t> size_{0};

  sync::Atomic<bool> merge_inflight_{false};
  mutable sync::Mutex merge_mu_;
  mutable sync::CondVar merge_cv_;
  mutable std::thread merge_thread_ MET_GUARDED_BY(merge_mu_);
  HybridMergeStats stats_ MET_GUARDED_BY(merge_mu_);
};

// ---------------------------------------------------------------------------
// Aliases: OLC counterparts of the concurrent_hybrid.h aliases. The OLC
// stages are used directly (no adapter shim) so the hybrid reaches their
// native outcome ops and shares its epoch domain with OlcArt.
// ---------------------------------------------------------------------------

template <typename Key>
using OlcConcurrentHybridBTree =
    OlcConcurrentHybridIndex<Key, OlcBTree<Key>, StatCompactBTreeStage<Key>>;

using OlcConcurrentHybridArt =
    OlcConcurrentHybridIndex<std::string, OlcArt, StatCompactArtStage>;

static_assert(HasOutcomeMutations<OlcConcurrentHybridBTree<uint64_t>,
                                  uint64_t>);
static_assert(MutablePointIndex<OlcConcurrentHybridBTree<uint64_t>,
                                uint64_t>);
static_assert(HasOutcomeMutations<OlcConcurrentHybridArt, std::string>);
static_assert(MutablePointIndex<OlcConcurrentHybridArt, std::string>);

}  // namespace met

#endif  // MET_HYBRID_OLC_HYBRID_H_
