// Concurrent dual-stage Hybrid Index: the Chapter 5 architecture made safe
// for many readers and a non-blocking background merge.
//
// Layout: writes land in a mutable *active* dynamic stage guarded by a
// shared_mutex; behind it sit an immutable *frozen* dynamic stage (the
// previous active, being drained by the in-flight merge) and an immutable
// static stage, both published through an epoch-protected snapshot pointer
// (hybrid/epoch.h).
//
// Merge lifecycle (see DESIGN.md, "Concurrent hybrid index"):
//   freeze   — under the writer lock, O(1): the active stage becomes the
//              snapshot's frozen stage; a fresh active (and Bloom filter)
//              takes its place.
//   drain    — off-lock: frozen + old static are merged into a brand-new
//              static stage (hybrid::BuildMergedStatic); readers and
//              writers proceed untouched.
//   publish  — under the writer lock, O(1): a snapshot without the frozen
//              stage but with the new static stage is swapped in; the old
//              snapshot is retired to the epoch domain and reclaimed
//              off-lock.
//
// Readers never block on a merge; writers block only for freeze/publish.
// Point reads and scans are per-key atomic (each key reflects some state
// between the operation's invocation and return) but a multi-key scan is
// not a point-in-time snapshot of the whole index: it sees a fixed
// (frozen, static) pair plus the active stage as of each batch fetch.
//
// kMergeCold is normalized to kMergeAll: re-inserting the hot set would put
// O(hot) work back under the writer lock and hot-tracking from the read
// path would race, both defeating the bounded-pause goal. Use the blocking
// HybridIndex when hot-entry retention matters more than pause bounds.
//
// Static stages must be safe for concurrent const reads. CompactBTree,
// CompactSkipList, CompactArt and CompactMasstree qualify (pure const
// probes); CompressedBTree does not (mutable decompression cache), so there
// is no concurrent hybrid-compressed alias.
#ifndef MET_HYBRID_CONCURRENT_HYBRID_H_
#define MET_HYBRID_CONCURRENT_HYBRID_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bloom/bloom.h"
#include "common/assert.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "hybrid/adapters.h"
#include "hybrid/epoch.h"
#include "hybrid/hybrid_index.h"
#include "hybrid/merge_core.h"
#include "obs/obs.h"

namespace met {

/// Process-wide metrics for the concurrent merge path, split by phase so
/// the bounded-pause claim is observable: freeze_ns and publish_ns are the
/// only spans writers can block on; drain_ns is the off-lock rebuild.
struct ConcurrentHybridObsMetrics {
  obs::Counter* merges;
  obs::Histogram* freeze_ns;
  obs::Histogram* drain_ns;
  obs::Histogram* publish_ns;
  obs::Histogram* merge_entries;

  static const ConcurrentHybridObsMetrics& Get() {
    static const ConcurrentHybridObsMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return ConcurrentHybridObsMetrics{
          reg.GetCounter("hybrid.concurrent.merge.count"),
          reg.GetHistogram("hybrid.concurrent.merge.freeze_ns"),
          reg.GetHistogram("hybrid.concurrent.merge.drain_ns"),
          reg.GetHistogram("hybrid.concurrent.merge.publish_ns"),
          reg.GetHistogram("hybrid.concurrent.merge.dynamic_entries"),
      };
    }();
    return m;
  }
};

struct ConcurrentHybridConfig : HybridConfig {
  /// Drain merges on a background thread (production mode). When false the
  /// triggering writer drains synchronously after releasing the writer lock
  /// — fully deterministic, used by the differential fuzz harness.
  bool background_merge = true;
};

template <typename Key, typename DynamicStage, typename StaticStage>
class ConcurrentHybridIndex {
 public:
  using Value = uint64_t;
  static constexpr Value kTombstone = ~Value{0};

  explicit ConcurrentHybridIndex(const ConcurrentHybridConfig& config = {})
      : config_(Normalize(config)),
        active_(std::make_shared<DynamicStage>()),
        bloom_capacity_(std::min<size_t>(config.min_merge_entries, 4096)) {
    if (config_.use_bloom)
      active_bloom_ = std::make_shared<BloomFilter>(
          bloom_capacity_, config_.bloom_bits_per_key);
    snapshot_.store(new Snapshot{nullptr, nullptr,
                                 std::make_shared<const StaticStage>(), 0},
                    std::memory_order_seq_cst);
  }

  ~ConcurrentHybridIndex() {
    WaitForMergeIdle();
    delete snapshot_.load(std::memory_order_seq_cst);
    // epoch_'s destructor runs any still-retired snapshot deleters.
  }

  ConcurrentHybridIndex(const ConcurrentHybridIndex&) = delete;
  ConcurrentHybridIndex& operator=(const ConcurrentHybridIndex&) = delete;

  /// Inserts a new key; false if the key is live (unique mode). Non-unique
  /// inserts always succeed, replacing the value of a live key.
  bool Insert(const Key& key, Value value) {
    bool froze = false;
    {
      sync::WriterMutexLock l(mu_);
      bool live = FindLocked(key, nullptr);
      if (config_.unique && live) return false;
      active_->InsertOrAssign(key, value);
      BloomAdd(key);
      if (!live) size_.fetch_add(1, std::memory_order_relaxed);
      froze = MaybeStartMergeLocked();
    }
    FinishMergeStart(froze);
    return true;
  }

  /// Unified point lookup (met::RangeIndex surface).
  bool Lookup(const Key& key, Value* value = nullptr) const {
    {
      sync::ReaderMutexLock l(mu_);
      Value v;
      if (ActiveMayContain(key) && active_->Lookup(key, &v)) {
        if (v == kTombstone) return false;
        if (value != nullptr) *value = v;
        return true;
      }
    }
    hybrid::EpochGuard g(epoch_);
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    return FindBelow(*s, key, value);
  }

  [[deprecated("use Lookup()")]] bool Find(const Key& key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }

  /// Updates the value of an existing (live) key; new values go to the
  /// active stage so recently modified entries stay hot.
  bool Update(const Key& key, Value value) {
    bool froze = false, ok = false;
    {
      sync::WriterMutexLock l(mu_);
      Value v;
      if (ActiveMayContain(key) && active_->Lookup(key, &v)) {
        if (v == kTombstone) return false;
        active_->Update(key, value);
        return true;
      }
      const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
      if (FindBelow(*s, key, nullptr)) {
        active_->InsertOrAssign(key, value);
        BloomAdd(key);
        ok = true;
        froze = MaybeStartMergeLocked();
      }
    }
    FinishMergeStart(froze);
    return ok;
  }

  /// Erases a live key. Leaves a tombstone in the active stage iff the key
  /// is still live below it (in the frozen or static stage) — the physical
  /// removal then happens at the next merge; otherwise removes physically.
  bool Erase(const Key& key) {
    bool froze = false, ok = false;
    {
      sync::WriterMutexLock l(mu_);
      const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
      Value v;
      if (ActiveMayContain(key) && active_->Lookup(key, &v)) {
        if (v == kTombstone) return false;
        if (FindBelow(*s, key, nullptr)) {
          active_->Update(key, kTombstone);
        } else {
          active_->Erase(key);
        }
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      if (FindBelow(*s, key, nullptr)) {
        active_->InsertOrAssign(key, kTombstone);
        BloomAdd(key);
        size_.fetch_sub(1, std::memory_order_relaxed);
        ok = true;
        froze = MaybeStartMergeLocked();
      }
    }
    FinishMergeStart(froze);
    return ok;
  }

  /// Collects up to `n` values from keys >= `key` in key order across the
  /// three stages (active shadows frozen shadows static). The (frozen,
  /// static) pair is fixed for the whole scan via an epoch pin; the active
  /// stage captured at the start is consulted under the shared lock per
  /// batch, so concurrent writes may or may not be reflected (per-key
  /// atomic, not a point-in-time snapshot).
  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    hybrid::EpochGuard g(epoch_);
    std::shared_ptr<DynamicStage> active;
    const Snapshot* s;
    {
      sync::ReaderMutexLock l(mu_);
      active = active_;
      s = snapshot_.load(std::memory_order_seq_cst);
    }
    // `active` stays valid past a concurrent freeze (the shared_ptr keeps
    // the now-frozen stage alive and it is immutable from then on); until a
    // freeze, writers mutate it only under the exclusive lock the fetcher
    // excludes. `s` outlives the scan via the epoch pin.
    std::array<hybrid::StageFetcher<Key, Value>, 3> fetch;
    fetch[0] = [this, &active](const Key& from, size_t batch,
                               std::vector<std::pair<Key, Value>>* pairs) {
      sync::ReaderMutexLock l(mu_);
      active->ScanPairs(from, batch, pairs);
    };
    if (s->frozen != nullptr) {
      fetch[1] = [s](const Key& from, size_t batch,
                     std::vector<std::pair<Key, Value>>* pairs) {
        s->frozen->ScanPairs(from, batch, pairs);
      };
    }
    fetch[2] = [s](const Key& from, size_t batch,
                   std::vector<std::pair<Key, Value>>* pairs) {
      s->stat->ScanPairs(from, batch, pairs);
    };
    return hybrid::MergedScan<Key, Value, 3>(key, n, kTombstone, out, fetch);
  }

  /// Forces a merge of everything buffered so far and waits for it to
  /// publish (drains synchronously on the calling thread).
  void Merge() {
    for (;;) {
      WaitForMergeIdle();
      bool froze = false, empty = false;
      {
        sync::WriterMutexLock l(mu_);
        if (!merge_inflight_.load(std::memory_order_relaxed)) {
          if (active_->size() == 0) {
            empty = true;
          } else {
            merge_inflight_.store(true, std::memory_order_relaxed);
            FreezeLocked();
            froze = true;
          }
        }
      }
      if (empty) return;
      if (froze) {
        DrainAndPublish();
        return;
      }
      // Another writer started a merge between the wait and the lock; wait
      // for it and retry so post-Merge() state is always fully drained.
    }
  }

  /// Blocks until no merge is in flight and the drain thread has exited.
  void WaitForMergeIdle() const {
    sync::MutexLock l(merge_mu_);
    merge_cv_.Wait(merge_mu_, [&] {
      return !merge_inflight_.load(std::memory_order_relaxed);
    });
    if (merge_thread_.joinable()) merge_thread_.join();
  }

  bool MergeInFlight() const {
    return merge_inflight_.load(std::memory_order_relaxed);
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    size_t bytes = 0;
    {
      sync::ReaderMutexLock l(mu_);
      bytes += active_->MemoryBytes();
      if (active_bloom_ != nullptr) bytes += active_bloom_->MemoryBytes();
    }
    hybrid::EpochGuard g(epoch_);
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    if (s->frozen != nullptr) bytes += s->frozen->MemoryBytes();
    if (s->frozen_bloom != nullptr) bytes += s->frozen_bloom->MemoryBytes();
    bytes += s->stat->MemoryBytes();
    return bytes;
  }

  /// Per-stage attribution; TotalBytes() == MemoryBytes() (same terms, but
  /// a concurrent merge between the two accessors can move bytes between
  /// stages — compare under quiesced merges).
  MemoryBreakdown Breakdown() const {
    MemoryBreakdown b("concurrent_hybrid");
    {
      sync::ReaderMutexLock l(mu_);
      b.AddChild("active_stage", active_->Breakdown());
      if (active_bloom_ != nullptr)
        b.AddChild("active_bloom", active_bloom_->Breakdown());
    }
    hybrid::EpochGuard g(epoch_);
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    if (s->frozen != nullptr) b.AddChild("frozen_stage", s->frozen->Breakdown());
    if (s->frozen_bloom != nullptr)
      b.AddChild("frozen_bloom", s->frozen_bloom->Breakdown());
    b.AddChild("static_stage", s->stat->Breakdown());
    return b;
  }

  size_t ActiveEntries() const {
    sync::ReaderMutexLock l(mu_);
    return active_->size();
  }

  /// Dynamic entries = active + frozen (mirrors the blocking index, where
  /// the whole dynamic stage is one tree).
  size_t DynamicEntries() const {
    size_t n = ActiveEntries();
    hybrid::EpochGuard g(epoch_);
    const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
    if (s->frozen != nullptr) n += s->frozen->size();
    return n;
  }

  size_t StaticEntries() const {
    hybrid::EpochGuard g(epoch_);
    return snapshot_.load(std::memory_order_seq_cst)->stat->size();
  }

  HybridMergeStats merge_stats() const {
    sync::MutexLock l(merge_mu_);
    return stats_;
  }

  /// Version of the published snapshot: incremented at each freeze and each
  /// publish, so it advances by 2 per completed merge.
  uint64_t SnapshotVersion() const {
    hybrid::EpochGuard g(epoch_);
    return snapshot_.load(std::memory_order_seq_cst)->version;
  }

  /// Stable reference to the current static stage (safe to read after the
  /// guard is gone: the shared_ptr keeps it alive past any publish).
  std::shared_ptr<const StaticStage> StaticStageSnapshot() const {
    hybrid::EpochGuard g(epoch_);
    return snapshot_.load(std::memory_order_seq_cst)->stat;
  }

  /// Quiescent-only accessor (no internal locking): for validators and
  /// tests running with no concurrent writers. The annotation opt-out is the
  /// documented contract, not a gap: taking mu_ here would let validators
  /// deadlock against themselves.
  DynamicStage& active_stage() MET_NO_THREAD_SAFETY_ANALYSIS {
    return *active_;
  }

  const hybrid::EpochDomain& epoch_domain() const { return epoch_; }

  /// Verifies the snapshot/merge state machine, the size accounting and the
  /// epoch domain. Requires external quiescence (call WaitForMergeIdle()
  /// first; no concurrent writers). No-op unless MET_CHECK_ENABLED; see
  /// check/concurrent_hybrid_check.h.
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return ValidateImpl(os);
#else
    (void)os;
    return true;
#endif
  }

  /// Reads every guarded member without locks — legal only under the
  /// quiescence contract above, so the static analysis is opted out.
  bool ValidateImpl(std::ostream& os) const MET_NO_THREAD_SAFETY_ANALYSIS;

 private:
  struct Snapshot {
    std::shared_ptr<const DynamicStage> frozen;  // null unless merge in flight
    std::shared_ptr<const BloomFilter> frozen_bloom;  // may be null
    std::shared_ptr<const StaticStage> stat;          // never null
    uint64_t version;
  };

  static ConcurrentHybridConfig Normalize(ConcurrentHybridConfig c) {
    c.strategy = HybridConfig::MergeStrategy::kMergeAll;  // see header note
    return c;
  }

  /// Point probe below the active stage: frozen (tombstones delete), then
  /// static. Callers hold either an epoch pin or the writer lock (the
  /// published snapshot is only swapped under the writer lock, and is never
  /// retired while still published).
  static bool FindBelow(const Snapshot& s, const Key& key, Value* value) {
    Value v;
    if (s.frozen != nullptr &&
        (s.frozen_bloom == nullptr ||
         s.frozen_bloom->MayContain(hybrid::BloomKeyOf(key))) &&
        s.frozen->Lookup(key, &v)) {
      if (v == kTombstone) return false;
      if (value != nullptr) *value = v;
      return true;
    }
    if (s.stat->Lookup(key, &v)) {
      if (value != nullptr) *value = v;
      return true;
    }
    return false;
  }

  /// Full liveness probe under the writer lock.
  bool FindLocked(const Key& key, Value* value) const
      MET_REQUIRES_SHARED(mu_) {
    Value v;
    if (ActiveMayContain(key) && active_->Lookup(key, &v)) {
      if (v == kTombstone) return false;
      if (value != nullptr) *value = v;
      return true;
    }
    return FindBelow(*snapshot_.load(std::memory_order_seq_cst), key, value);
  }

  bool ActiveMayContain(const Key& key) const MET_REQUIRES_SHARED(mu_) {
    return active_bloom_ == nullptr ||
           active_bloom_->MayContain(hybrid::BloomKeyOf(key));
  }

  // ---- Bloom management for the active stage (writer lock held). ----
  void BloomAdd(const Key& key) MET_REQUIRES(mu_) {
    if (active_bloom_ == nullptr) return;
    ++bloom_entries_;
    if (bloom_entries_ > bloom_capacity_) {
      bloom_capacity_ *= 2;
      RebuildBloom();
      return;
    }
    active_bloom_->Add(hybrid::BloomKeyOf(key));
  }

  void RebuildBloom() MET_REQUIRES(mu_) {
    active_bloom_ = std::make_shared<BloomFilter>(bloom_capacity_,
                                                  config_.bloom_bits_per_key);
    bloom_entries_ = active_->size();
    std::vector<MergeEntry<Key, Value>> entries;
    hybrid::CollectSortedEntries<Key, Value>(*active_, kTombstone, &entries);
    for (const auto& e : entries) active_bloom_->Add(hybrid::BloomKeyOf(e.key));
  }

  void FreshBloom(size_t expected) MET_REQUIRES(mu_) {
    if (!config_.use_bloom) return;
    bloom_capacity_ = std::max<size_t>(
        std::min<size_t>(config_.min_merge_entries, 4096), expected);
    active_bloom_ = std::make_shared<BloomFilter>(bloom_capacity_,
                                                  config_.bloom_bits_per_key);
    bloom_entries_ = 0;
  }

  // ---- Merge machinery. ----

  /// Under the writer lock: decides whether a merge is due and, if so,
  /// freezes the active stage. Returns whether a freeze happened (the
  /// caller must then invoke FinishMergeStart() after releasing the lock).
  bool MaybeStartMergeLocked() MET_REQUIRES(mu_) {
    if (merge_inflight_.load(std::memory_order_relaxed)) return false;
    size_t dyn = active_->size();
    if (dyn == 0) return false;
    if (config_.constant_trigger) {
      if (dyn < config_.constant_threshold) return false;
    } else {
      if (dyn < config_.min_merge_entries) return false;
      size_t stat =
          snapshot_.load(std::memory_order_seq_cst)->stat->size();
      if (static_cast<double>(dyn) * config_.merge_ratio <
          static_cast<double>(stat))
        return false;
    }
    merge_inflight_.store(true, std::memory_order_relaxed);
    FreezeLocked();
    return true;
  }

  /// O(1) under the writer lock: the active stage (and its Bloom filter)
  /// become the snapshot's frozen stage; a fresh active takes their place.
  /// The superseded snapshot is retired only after the swap (the epoch
  /// ordering contract) and reclaimed later, off-lock.
  void FreezeLocked() MET_REQUIRES(mu_) {
    obs::ScopedTimer trace(nullptr, "hybrid.concurrent.freeze");
    Timer timer;
    const Snapshot* old = snapshot_.load(std::memory_order_seq_cst);
    MET_DCHECK(old->frozen == nullptr, "freeze with a merge already in flight");
    size_t frozen_entries = active_->size();
    auto* next =
        new Snapshot{std::shared_ptr<const DynamicStage>(std::move(active_)),
                     std::shared_ptr<const BloomFilter>(active_bloom_),
                     old->stat, old->version + 1};
    snapshot_.store(next, std::memory_order_seq_cst);
    epoch_.Retire([old] { delete old; });
    active_ = std::make_shared<DynamicStage>();
    active_bloom_ = nullptr;
    FreshBloom(frozen_entries);
    {
      sync::MutexLock l(merge_mu_);
      stats_.last_merge_dynamic_entries = frozen_entries;
      stats_.last_merge_static_entries = next->stat->size();
    }
    ConcurrentHybridObsMetrics::Get().freeze_ns->RecordNanos(
        timer.ElapsedNanos());
  }

  /// Launches the drain for a freeze performed under the lock. Runs on a
  /// background thread in production; inline (deterministic) otherwise.
  void FinishMergeStart(bool froze) {
    if (!froze) return;
    if (config_.background_merge) {
      sync::MutexLock l(merge_mu_);
      // A previous drain thread has fully finished (merge_inflight_ was
      // false when this freeze won), so the join returns immediately.
      if (merge_thread_.joinable()) merge_thread_.join();
      merge_thread_ = std::thread([this] { DrainAndPublish(); });
    } else {
      DrainAndPublish();
    }
  }

  /// Off-lock: merges frozen + static into a fresh static stage, then
  /// publishes it with an O(1) swap under the writer lock.
  void DrainAndPublish() {
    Timer drain_timer;
    std::shared_ptr<StaticStage> next_stat;
    size_t drained = 0;
    {
      obs::ScopedTimer trace(nullptr, "hybrid.concurrent.drain");
      hybrid::EpochGuard g(epoch_);
      const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
      MET_DCHECK(s->frozen != nullptr, "drain without a frozen stage");
      std::vector<MergeEntry<Key, Value>> entries;
      entries.reserve(s->frozen->size());
      hybrid::CollectSortedEntries<Key, Value>(*s->frozen, kTombstone,
                                               &entries);
      drained = entries.size();
      next_stat = hybrid::BuildMergedStatic<StaticStage>(*s->stat, entries);
    }
    uint64_t drain_ns = drain_timer.ElapsedNanos();

    Timer publish_timer;
    {
      obs::ScopedTimer trace(nullptr, "hybrid.concurrent.publish");
      sync::WriterMutexLock l(mu_);
      const Snapshot* cur = snapshot_.load(std::memory_order_seq_cst);
      auto* next = new Snapshot{
          nullptr, nullptr,
          std::shared_ptr<const StaticStage>(std::move(next_stat)),
          cur->version + 1};
      snapshot_.store(next, std::memory_order_seq_cst);
      epoch_.Retire([cur] { delete cur; });
    }
    epoch_.TryReclaim();  // off-lock: the old frozen/static free here

    const ConcurrentHybridObsMetrics& obs = ConcurrentHybridObsMetrics::Get();
    obs.merges->Increment();
    obs.drain_ns->RecordNanos(drain_ns);
    obs.publish_ns->RecordNanos(publish_timer.ElapsedNanos());
    obs.merge_entries->Record(drained);
    {
      sync::MutexLock l(merge_mu_);
      ++stats_.merge_count;
      stats_.last_merge_seconds =
          static_cast<double>(drain_ns) / 1e9;
      stats_.total_merge_seconds += stats_.last_merge_seconds;
      merge_inflight_.store(false, std::memory_order_relaxed);
      merge_cv_.NotifyAll();
    }
  }

  ConcurrentHybridConfig config_;

  mutable sync::SharedMutex mu_;
  std::shared_ptr<DynamicStage> active_ MET_GUARDED_BY(mu_);
  std::shared_ptr<BloomFilter> active_bloom_ MET_GUARDED_BY(mu_);
  size_t bloom_entries_ MET_GUARDED_BY(mu_) = 0;
  size_t bloom_capacity_ MET_GUARDED_BY(mu_);

  /// Published pointer: readers reach it through an epoch pin (EpochGuard),
  /// never a lock; writers swap it under mu_ and retire the old value. The
  /// pointee is const — the lint pass enforces that shape.
  sync::Atomic<const Snapshot*> snapshot_{nullptr};
  mutable hybrid::EpochDomain epoch_;

  sync::Atomic<size_t> size_{0};

  sync::Atomic<bool> merge_inflight_{false};
  mutable sync::Mutex merge_mu_;
  mutable sync::CondVar merge_cv_;
  mutable std::thread merge_thread_ MET_GUARDED_BY(merge_mu_);
  HybridMergeStats stats_ MET_GUARDED_BY(merge_mu_);
};

// ---------------------------------------------------------------------------
// Aliases: the concurrent counterparts of hybrid.h. No compressed variant —
// CompressedBTree's mutable page cache is unsafe for concurrent readers.
// ---------------------------------------------------------------------------

template <typename Key>
using ConcurrentHybridBTree =
    ConcurrentHybridIndex<Key, DynBTreeStage<Key>, StatCompactBTreeStage<Key>>;

template <typename Key>
using ConcurrentHybridSkipList =
    ConcurrentHybridIndex<Key, DynSkipListStage<Key>,
                          StatCompactSkipListStage<Key>>;

using ConcurrentHybridArt =
    ConcurrentHybridIndex<std::string, DynArtStage, StatCompactArtStage>;

using ConcurrentHybridMasstree =
    ConcurrentHybridIndex<std::string, DynMasstreeStage,
                          StatCompactMasstreeStage>;

}  // namespace met

#endif  // MET_HYBRID_CONCURRENT_HYBRID_H_
