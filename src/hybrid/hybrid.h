// Convenience aliases: the five hybrid indexes evaluated in Chapter 5.
#ifndef MET_HYBRID_HYBRID_H_
#define MET_HYBRID_HYBRID_H_

#include <string>

#include "hybrid/adapters.h"
#include "hybrid/hybrid_index.h"

namespace met {

/// Hybrid B+tree: dynamic B+tree in front of a Compact B+tree.
template <typename Key>
using HybridBTree =
    HybridIndex<Key, DynBTreeStage<Key>, StatCompactBTreeStage<Key>>;

/// Hybrid-Compressed B+tree: static stage also block-compressed (rule #3).
template <typename Key>
using HybridCompressedBTree =
    HybridIndex<Key, DynBTreeStage<Key>, StatCompressedBTreeStage<Key>>;

/// Hybrid Skip List.
template <typename Key>
using HybridSkipList =
    HybridIndex<Key, DynSkipListStage<Key>, StatCompactSkipListStage<Key>>;

/// Hybrid ART (string keys; integers via Uint64ToKey).
using HybridArt = HybridIndex<std::string, DynArtStage, StatCompactArtStage>;

/// Hybrid Masstree.
using HybridMasstree =
    HybridIndex<std::string, DynMasstreeStage, StatCompactMasstreeStage>;

}  // namespace met

#endif  // MET_HYBRID_HYBRID_H_
