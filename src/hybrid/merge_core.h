// Merge and scan machinery shared by the blocking HybridIndex and the
// concurrent epoch-swapped variant (concurrent_hybrid.h): key helpers,
// sorted-entry collection, a k-way merged scan with shadow/tombstone
// resolution and refetching, and off-critical-path static-stage rebuilds.
#ifndef MET_HYBRID_MERGE_CORE_H_
#define MET_HYBRID_MERGE_CORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "btree/compact_btree.h"  // MergeEntry

namespace met {
namespace hybrid {

template <typename Key>
Key MinKey() {
  if constexpr (std::is_same_v<Key, std::string>) {
    return std::string();
  } else {
    return Key{0};
  }
}

/// The representation Bloom filters hash a key through.
template <typename Key>
auto BloomKeyOf(const Key& key) {
  if constexpr (std::is_same_v<Key, std::string>) {
    return std::string_view(key);
  } else {
    return static_cast<uint64_t>(key);
  }
}

/// Streams a stage's full sorted contents into MergeEntry records;
/// `tombstone` values become deleted entries.
template <typename Key, typename Value, typename Stage>
void CollectSortedEntries(const Stage& stage, Value tombstone,
                          std::vector<MergeEntry<Key, Value>>* out) {
  std::vector<std::pair<Key, Value>> pairs;
  pairs.reserve(stage.size());
  stage.ScanPairs(MinKey<Key>(), stage.size(), &pairs);
  out->reserve(out->size() + pairs.size());
  for (auto& p : pairs)
    out->push_back({std::move(p.first), p.second, p.second == tombstone});
}

/// Partitions drained entries for the kMergeCold strategy: live entries
/// whose key is in `hot_keys` move to `hot` (they stay dynamic); everything
/// else — cold entries and all tombstones — remains in `entries`.
template <typename Key, typename Value, typename HotSet>
void SplitHotCold(std::vector<MergeEntry<Key, Value>>* entries,
                  const HotSet& hot_keys,
                  std::vector<std::pair<Key, Value>>* hot) {
  std::vector<MergeEntry<Key, Value>> cold;
  cold.reserve(entries->size());
  for (auto& e : *entries) {
    if (!e.deleted && hot_keys.count(e.key) > 0)
      hot->emplace_back(e.key, e.value);
    else
      cold.push_back(std::move(e));
  }
  entries->swap(cold);
}

/// Per-stage fetcher for MergedScan: appends up to `n` sorted pairs with
/// key >= `from` to `out`. std::function costs one indirect call per batch,
/// not per entry.
template <typename Key, typename Value>
using StageFetcher = std::function<void(
    const Key& from, size_t n, std::vector<std::pair<Key, Value>>* out)>;

/// Collects up to `n` values from keys >= `key` in key order across up to
/// `kStages` sorted sources, where earlier stages shadow later ones and
/// `tombstone` values delete. Starts by fetching `n` entries per stage; when
/// tombstones or shadows consume the quota, refetches with a doubled batch.
/// A capped stage may have more entries past its last fetched key, so merged
/// output beyond that key cannot be trusted — results are always a correct
/// prefix of the logical scan, never emitted from a partial merge.
template <typename Key, typename Value, size_t kStages>
size_t MergedScan(const Key& key, size_t n, Value tombstone,
                  std::vector<Value>* out,
                  const std::array<StageFetcher<Key, Value>, kStages>& fetch) {
  std::array<std::vector<std::pair<Key, Value>>, kStages> got;
  std::vector<Value> tmp;
  size_t batch = n;
  for (;;) {
    std::array<bool, kStages> capped{};
    for (size_t s = 0; s < kStages; ++s) {
      got[s].clear();
      if (fetch[s]) fetch[s](key, batch, &got[s]);
      capped[s] = got[s].size() == batch;
    }
    auto trusted = [&](const Key& k) {
      for (size_t s = 0; s < kStages; ++s)
        if (capped[s] && got[s].back().first < k) return false;
      return true;
    };
    tmp.clear();
    std::array<size_t, kStages> idx{};
    size_t cnt = 0;
    bool incomplete = false;
    while (cnt < n) {
      size_t win = kStages;  // stage holding the smallest next key
      for (size_t s = 0; s < kStages; ++s) {
        if (idx[s] >= got[s].size()) continue;
        if (win == kStages || got[s][idx[s]].first < got[win][idx[win]].first)
          win = s;
      }
      if (win == kStages) break;  // every stage exhausted
      const auto& e = got[win][idx[win]];
      // Later stages holding the same key are shadowed: skip their copy.
      for (size_t s = win + 1; s < kStages; ++s)
        if (idx[s] < got[s].size() && got[s][idx[s]].first == e.first)
          ++idx[s];
      if (!trusted(e.first)) {
        incomplete = true;
        break;
      }
      if (e.second != tombstone) {
        tmp.push_back(e.second);
        ++cnt;
      }
      ++idx[win];
    }
    // Falling short while a stage was capped means more entries may exist
    // past the fetched window even if every merged entry was trusted.
    if (cnt < n) {
      for (bool c : capped) incomplete = incomplete || c;
    }
    if (cnt >= n || !incomplete) {
      if (out != nullptr) out->insert(out->end(), tmp.begin(), tmp.end());
      return cnt;
    }
    batch *= 2;  // shadows/tombstones consumed the quota: refetch deeper
  }
}

/// Builds a brand-new static stage holding `base` overlaid with the sorted
/// `updates` (new entries shadow, tombstones delete). `base` is read only
/// through its const ScanPairs interface, so the rebuild can run while
/// concurrent readers keep using `base` — the heart of the non-blocking
/// merge. The merged live stream is applied to a default-constructed stage,
/// for which MergeApply degenerates to a bulk build; this sidesteps any need
/// for the stage to be copyable (CompactArt / CompactMasstree are not).
template <typename StaticStage, typename Key, typename Value>
std::shared_ptr<StaticStage> BuildMergedStatic(
    const StaticStage& base, const std::vector<MergeEntry<Key, Value>>& updates) {
  std::vector<std::pair<Key, Value>> base_pairs;
  base_pairs.reserve(base.size());
  base.ScanPairs(MinKey<Key>(), base.size(), &base_pairs);

  std::vector<MergeEntry<Key, Value>> merged;
  merged.reserve(base_pairs.size() + updates.size());
  size_t j = 0;
  for (auto& p : base_pairs) {
    while (j < updates.size() && updates[j].key < p.first) {
      if (!updates[j].deleted) merged.push_back(updates[j]);
      ++j;
    }
    if (j < updates.size() && updates[j].key == p.first) {
      if (!updates[j].deleted) merged.push_back(updates[j]);  // shadow
      ++j;
      continue;
    }
    merged.push_back({std::move(p.first), p.second, false});
  }
  for (; j < updates.size(); ++j)
    if (!updates[j].deleted) merged.push_back(updates[j]);

  auto fresh = std::make_shared<StaticStage>();
  fresh->MergeApply(merged);
  return fresh;
}

}  // namespace hybrid
}  // namespace met

#endif  // MET_HYBRID_MERGE_CORE_H_
