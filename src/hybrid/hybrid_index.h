// Dual-stage Hybrid Index (Chapter 5): a single logical index made of a
// small dynamic stage that absorbs all writes and a compact static stage
// holding the bulk of the entries. A Bloom filter in front of the dynamic
// stage lets most point reads touch only one stage. Entries migrate with a
// ratio-triggered merge (merge-all strategy, Section 5.2.2).
//
// Deletes of static-stage entries insert a tombstone into the dynamic stage
// (value == kTombstone); the key is physically removed at the next merge.
//
// Stage interfaces (duck-typed):
//   Dynamic: Insert/InsertOrAssign/Find/Update/Erase/Clear/size/MemoryBytes
//            + ScanPairs via adapter traits below.
//   Static:  Find/size/MemoryBytes/MergeApply(sorted MergeEntry vector)
//            + ScanPairs.
#ifndef MET_HYBRID_HYBRID_INDEX_H_
#define MET_HYBRID_HYBRID_INDEX_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "bloom/bloom.h"
#include "btree/compact_btree.h"
#include "common/timer.h"
#include "hybrid/merge_core.h"
#include "obs/obs.h"

namespace met {

/// Process-wide hybrid-index metrics, aggregated over every HybridIndex
/// instantiation (per-instance numbers stay available via merge_stats()).
struct HybridObsMetrics {
  obs::Counter* merges;
  obs::Histogram* merge_pause_ns;     // write-blocking merge duration
  obs::Histogram* merge_entries;      // dynamic entries drained per merge
  obs::Histogram* merge_static_entries;

  static const HybridObsMetrics& Get() {
    static const HybridObsMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return HybridObsMetrics{
          reg.GetCounter("hybrid.merge.count"),
          reg.GetHistogram("hybrid.merge.pause_ns"),
          reg.GetHistogram("hybrid.merge.dynamic_entries"),
          reg.GetHistogram("hybrid.merge.static_entries"),
      };
    }();
    return m;
  }
};

struct HybridConfig {
  /// Merge when dynamic_entries * merge_ratio >= static_entries (and the
  /// dynamic stage holds at least min_merge_entries). Ratio 10 is the
  /// default chosen by the Figure 5.7 sensitivity analysis.
  double merge_ratio = 10.0;
  size_t min_merge_entries = 4096;

  /// Constant trigger alternative (Section 5.2.2): merge whenever the
  /// dynamic stage reaches `constant_threshold` entries.
  bool constant_trigger = false;
  size_t constant_threshold = 65536;

  bool use_bloom = true;
  double bloom_bits_per_key = 10.0;

  /// Secondary (non-unique) index mode: inserts skip the two-stage
  /// key-uniqueness check (Section 5.3.5).
  bool unique = true;

  /// Merge strategy (Section 5.2.2). kMergeAll drains the whole dynamic
  /// stage (the thesis default: best for insert-heavy OLTP). kMergeCold
  /// keeps entries read or written since the previous merge in the dynamic
  /// stage, trading merge frequency for hot-entry locality.
  enum class MergeStrategy { kMergeAll, kMergeCold };
  MergeStrategy strategy = MergeStrategy::kMergeAll;
};

/// Per-instance merge statistics — a thin view kept for API compatibility.
/// The process-wide aggregates (counts, pause and entry histograms) live in
/// the obs::MetricsRegistry under "hybrid.merge.*" (see HybridObsMetrics).
struct HybridMergeStats {
  size_t merge_count = 0;
  double total_merge_seconds = 0;
  double last_merge_seconds = 0;
  size_t last_merge_static_entries = 0;
  size_t last_merge_dynamic_entries = 0;
};

template <typename Key, typename DynamicStage, typename StaticStage>
class HybridIndex {
 public:
  using Value = uint64_t;
  static constexpr Value kTombstone = ~Value{0};

  explicit HybridIndex(const HybridConfig& config = {})
      : config_(config),
        bloom_capacity_(std::min<size_t>(config.min_merge_entries, 4096)) {
    // Start small; the filter doubles (and is rebuilt) as the dynamic stage
    // grows, and is resized to the observed population at each merge.
    if (config.use_bloom)
      bloom_ = new BloomFilter(bloom_capacity_, config.bloom_bits_per_key);
  }

  ~HybridIndex() { delete bloom_; }

  HybridIndex(const HybridIndex&) = delete;
  HybridIndex& operator=(const HybridIndex&) = delete;

  /// Inserts a new key; false if the key exists (primary-index uniqueness
  /// check spans both stages, Section 5.3.2). In non-unique mode the insert
  /// always succeeds; over a live key it replaces the stored value (the
  /// stages hold one value per key), so the liveness probe is still needed
  /// to keep size() exact — a replacement must not grow the entry count,
  /// while an insert over a tombstoned or absent key must.
  bool Insert(const Key& key, Value value) {
    bool live = FindInternal(key, nullptr);
    if (config_.unique && live) return false;
    dynamic_.InsertOrAssign(key, value);  // may overwrite a tombstone
    BloomAdd(key);
    if (config_.strategy == HybridConfig::MergeStrategy::kMergeCold)
      MarkHot(key);
    if (!live) ++size_;
    ++ops_since_merge_;
    MaybeMerge();
    return true;
  }

  /// Unified point lookup (met::RangeIndex surface).
  bool Lookup(const Key& key, Value* value = nullptr) const {
    bool found = FindInternal(key, value);
    if (found && config_.strategy == HybridConfig::MergeStrategy::kMergeCold)
      MarkHot(key);
    return found;
  }

  [[deprecated("use Lookup()")]] bool Find(const Key& key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }

  /// Updates the value of an existing key. New values go to the dynamic
  /// stage so recently modified entries stay hot (Section 5.1).
  bool Update(const Key& key, Value value) {
    Value existing;
    if (dynamic_.Lookup(key, &existing)) {
      if (existing == kTombstone) return false;
      dynamic_.Update(key, value);
      return true;
    }
    if (static_.Lookup(key, &existing)) {
      dynamic_.InsertOrAssign(key, value);
      BloomAdd(key);
      MaybeMerge();
      return true;
    }
    return false;
  }

  bool Erase(const Key& key) {
    Value existing;
    if (dynamic_.Lookup(key, &existing)) {
      if (existing == kTombstone) return false;
      bool in_static = static_.Lookup(key, nullptr);
      if (in_static) {
        dynamic_.Update(key, kTombstone);
      } else {
        dynamic_.Erase(key);
      }
      --size_;
      return true;
    }
    if (static_.Lookup(key, nullptr)) {
      dynamic_.InsertOrAssign(key, kTombstone);
      BloomAdd(key);
      --size_;
      MaybeMerge();
      return true;
    }
    return false;
  }

  /// Collects up to `n` values from keys >= `key`, in key order, merging
  /// both stages and resolving shadows/tombstones. hybrid::MergedScan
  /// refetches with a doubled batch when tombstones or shadows consume the
  /// per-stage quota, and never emits from a partial merge, so results are
  /// always a correct prefix of the logical scan.
  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    std::array<hybrid::StageFetcher<Key, Value>, 2> fetch = {
        [this](const Key& from, size_t batch,
               std::vector<std::pair<Key, Value>>* pairs) {
          dynamic_.ScanPairs(from, batch, pairs);
        },
        [this](const Key& from, size_t batch,
               std::vector<std::pair<Key, Value>>* pairs) {
          static_.ScanPairs(from, batch, pairs);
        },
    };
    return hybrid::MergedScan<Key, Value, 2>(key, n, kTombstone, out, fetch);
  }

  /// Migrates dynamic-stage entries into the static stage. Under kMergeAll
  /// the dynamic stage is fully drained; under kMergeCold entries accessed
  /// since the previous merge stay behind (tombstones always migrate).
  void Merge() {
    Timer timer;
    obs::ScopedTimer span(nullptr, "hybrid.merge");
    stats_.last_merge_static_entries = static_.size();
    stats_.last_merge_dynamic_entries = dynamic_.size();
    std::vector<MergeEntry<Key, Value>> entries;
    entries.reserve(dynamic_.size());
    hybrid::CollectSortedEntries<Key, Value>(dynamic_, kTombstone, &entries);

    std::vector<std::pair<Key, Value>> hot;
    if (config_.strategy == HybridConfig::MergeStrategy::kMergeCold)
      hybrid::SplitHotCold(&entries, hot_keys_, &hot);

    static_.MergeApply(entries);
    dynamic_.Clear();
    BloomReset();
    for (auto& [k, v] : hot) {
      dynamic_.InsertOrAssign(k, v);
      BloomAdd(k);
    }
    hot_keys_.clear();
    ops_since_merge_ = 0;
    stats_.last_merge_seconds = timer.ElapsedSeconds();
    stats_.total_merge_seconds += stats_.last_merge_seconds;
    ++stats_.merge_count;
    const HybridObsMetrics& obs = HybridObsMetrics::Get();
    obs.merges->Increment();
    obs.merge_pause_ns->RecordNanos(timer.ElapsedNanos());
    obs.merge_entries->Record(stats_.last_merge_dynamic_entries);
    obs.merge_static_entries->Record(stats_.last_merge_static_entries);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    size_t bytes = dynamic_.MemoryBytes() + static_.MemoryBytes();
    if (bloom_ != nullptr) bytes += bloom_->MemoryBytes();
    return bytes;
  }

  /// Per-stage attribution; TotalBytes() == MemoryBytes() (same terms).
  MemoryBreakdown Breakdown() const {
    MemoryBreakdown b("hybrid_index");
    b.AddChild("dynamic_stage", dynamic_.Breakdown());
    b.AddChild("static_stage", static_.Breakdown());
    if (bloom_ != nullptr) b.AddChild("bloom", bloom_->Breakdown());
    return b;
  }

  size_t DynamicEntries() const { return dynamic_.size(); }
  size_t StaticEntries() const { return static_.size(); }
  const HybridMergeStats& merge_stats() const { return stats_; }

  DynamicStage& dynamic_stage() { return dynamic_; }
  StaticStage& static_stage() { return static_; }

 private:
  bool FindInternal(const Key& key, Value* value) const {
    if (bloom_ == nullptr || BloomMayContain(key)) {
      Value v;
      if (dynamic_.Lookup(key, &v)) {
        if (v == kTombstone) return false;
        if (value != nullptr) *value = v;
        return true;
      }
    }
    Value v;
    if (static_.Lookup(key, &v)) {
      if (value != nullptr) *value = v;
      return true;
    }
    return false;
  }

  void MaybeMerge() {
    // Under merge-cold the dynamic stage never fully drains; require fresh
    // insert volume before re-triggering so merges cannot thrash.
    if (config_.strategy == HybridConfig::MergeStrategy::kMergeCold &&
        ops_since_merge_ < config_.min_merge_entries / 2)
      return;
    size_t dyn = dynamic_.size();
    if (config_.constant_trigger) {
      if (dyn >= config_.constant_threshold) Merge();
      return;
    }
    if (dyn < config_.min_merge_entries) return;
    if (static_cast<double>(dyn) * config_.merge_ratio >=
        static_cast<double>(static_.size()))
      Merge();
  }

  // ---- Bloom management: sized to the expected dynamic-stage population,
  // rebuilt from scratch when it overflows or at merge time. ----
  void BloomAdd(const Key& key) {
    if (bloom_ == nullptr) return;
    ++bloom_entries_;
    if (bloom_entries_ > bloom_capacity_) {
      bloom_capacity_ *= 2;
      RebuildBloom();
      return;
    }
    bloom_->Add(hybrid::BloomKeyOf(key));
  }

  void BloomReset() {
    if (bloom_ == nullptr) return;
    bloom_capacity_ = std::max<size_t>(
        std::min<size_t>(config_.min_merge_entries, 4096),
        stats_.last_merge_dynamic_entries);
    delete bloom_;
    bloom_ = new BloomFilter(bloom_capacity_, config_.bloom_bits_per_key);
    bloom_entries_ = 0;
  }

  void RebuildBloom() {
    delete bloom_;
    bloom_ = new BloomFilter(bloom_capacity_, config_.bloom_bits_per_key);
    bloom_entries_ = dynamic_.size();
    std::vector<MergeEntry<Key, Value>> entries;
    hybrid::CollectSortedEntries<Key, Value>(dynamic_, kTombstone, &entries);
    for (const auto& e : entries) bloom_->Add(hybrid::BloomKeyOf(e.key));
  }

  bool BloomMayContain(const Key& key) const {
    return bloom_->MayContain(hybrid::BloomKeyOf(key));
  }

  void MarkHot(const Key& key) const { hot_keys_.insert(key); }

  HybridConfig config_;
  size_t ops_since_merge_ = 0;
  mutable std::unordered_set<Key> hot_keys_;  // accesses since last merge
  DynamicStage dynamic_;
  StaticStage static_;
  BloomFilter* bloom_ = nullptr;
  size_t bloom_entries_ = 0;
  size_t bloom_capacity_;
  size_t size_ = 0;
  HybridMergeStats stats_;
};

}  // namespace met

#endif  // MET_HYBRID_HYBRID_INDEX_H_
