// Stage adapters giving the four tree families the uniform interface
// HybridIndex expects (Section 5.1's Dual-Stage Transformation, step 4).
//
// Dynamic stages wrap BTree / SkipList / Art / Masstree.
// Static stages wrap CompactBTree / CompactSkipList / CompressedBTree
// (which implement MergeApply natively) and CompactArt / CompactMasstree
// (merged by streaming the sorted entries and rebuilding, the recursive
// trie-merge equivalent of Section 5.2.1 — same linear cost).
#ifndef MET_HYBRID_ADAPTERS_H_
#define MET_HYBRID_ADAPTERS_H_

#include <string>
#include <utility>
#include <vector>

#include "art/art.h"
#include "art/compact_art.h"
#include "btree/btree.h"
#include "btree/compact_btree.h"
#include "btree/compressed_btree.h"
#include "masstree/compact_masstree.h"
#include "masstree/masstree.h"
#include "skiplist/compact_skiplist.h"
#include "skiplist/skiplist.h"

namespace met {

// ---------------------------------------------------------------------------
// Dynamic stages
// ---------------------------------------------------------------------------

/// Shared shim for iterator-style trees (BTree, SkipList).
template <typename Tree, typename Key>
class IteratorDynStage {
 public:
  using Value = uint64_t;

  bool Insert(const Key& k, Value v) { return tree_.Insert(k, v); }
  void InsertOrAssign(const Key& k, Value v) { tree_.InsertOrAssign(k, v); }
  bool Lookup(const Key& k, Value* v) const { return tree_.Lookup(k, v); }
  bool Update(const Key& k, Value v) { return tree_.Update(k, v); }
  bool Erase(const Key& k) { return tree_.Erase(k); }
  size_t size() const { return tree_.size(); }
  size_t MemoryBytes() const { return tree_.MemoryBytes(); }
  MemoryBreakdown Breakdown() const { return tree_.Breakdown(); }
  void Clear() { tree_.Clear(); }

  size_t ScanPairs(const Key& key, size_t n,
                   std::vector<std::pair<Key, Value>>* out) const {
    size_t cnt = 0;
    for (auto it = tree_.LowerBound(key); it.Valid() && cnt < n;
         it.Next(), ++cnt)
      out->emplace_back(it.key(), it.value());
    return cnt;
  }

  Tree& tree() { return tree_; }

 private:
  Tree tree_;
};

template <typename Key>
using DynBTreeStage = IteratorDynStage<BTree<Key>, Key>;

template <typename Key>
class DynSkipListStage : public IteratorDynStage<SkipList<Key>, Key> {};

/// Shared shim for string-keyed trie trees (Art, Masstree).
template <typename Tree>
class TrieDynStage {
 public:
  using Value = uint64_t;

  bool Insert(const std::string& k, Value v) { return tree_.Insert(k, v); }
  void InsertOrAssign(const std::string& k, Value v) {
    tree_.InsertOrAssign(k, v);
  }
  bool Lookup(const std::string& k, Value* v) const { return tree_.Lookup(k, v); }
  bool Update(const std::string& k, Value v) { return tree_.Update(k, v); }
  bool Erase(const std::string& k) { return tree_.Erase(k); }
  size_t size() const { return tree_.size(); }
  size_t MemoryBytes() const { return tree_.MemoryBytes(); }
  MemoryBreakdown Breakdown() const { return tree_.Breakdown(); }
  void Clear() { tree_.Clear(); }

  size_t ScanPairs(const std::string& key, size_t n,
                   std::vector<std::pair<std::string, Value>>* out) const {
    std::vector<Value> vals;
    std::vector<std::string> keys;
    tree_.Scan(key, n, &vals, &keys);
    for (size_t i = 0; i < vals.size(); ++i)
      out->emplace_back(std::move(keys[i]), vals[i]);
    return vals.size();
  }

  Tree& tree() { return tree_; }

 private:
  Tree tree_;
};

using DynArtStage = TrieDynStage<Art>;
using DynMasstreeStage = TrieDynStage<Masstree>;

// ---------------------------------------------------------------------------
// Static stages
// ---------------------------------------------------------------------------

/// CompactBTree / CompactSkipList / CompressedBTree already expose the full
/// static-stage interface (Find / size / MemoryBytes / MergeApply /
/// ScanPairs), so they are used directly.
template <typename Key>
using StatCompactBTreeStage = CompactBTree<Key>;

template <typename Key>
using StatCompactSkipListStage = CompactSkipList<Key>;

template <typename Key>
using StatCompressedBTreeStage = CompressedBTree<Key>;

/// Rebuild-merging shim for the compact trie structures.
template <typename Tree>
class TrieStatStage {
 public:
  using Value = uint64_t;
  using Entry = MergeEntry<std::string, Value>;

  bool Lookup(const std::string& k, Value* v) const { return tree_.Lookup(k, v); }
  size_t size() const { return tree_.size(); }
  size_t MemoryBytes() const { return tree_.MemoryBytes(); }
  MemoryBreakdown Breakdown() const { return tree_.Breakdown(); }

  size_t ScanPairs(const std::string& key, size_t n,
                   std::vector<std::pair<std::string, Value>>* out) const {
    std::vector<Value> vals;
    std::vector<std::string> keys;
    tree_.Scan(key, n, &vals, &keys);
    for (size_t i = 0; i < vals.size(); ++i)
      out->emplace_back(std::move(keys[i]), vals[i]);
    return vals.size();
  }

  /// Streams the current sorted entries, merges in the updates (new entries
  /// shadow, tombstones delete) and rebuilds the trie.
  void MergeApply(const std::vector<Entry>& updates) {
    std::vector<std::string> keys;
    std::vector<Value> values;
    keys.reserve(tree_.size() + updates.size());
    values.reserve(tree_.size() + updates.size());
    size_t j = 0;
    tree_.VisitAll([&](std::string_view k, Value v) {
      // Emit pending updates with keys < k.
      while (j < updates.size() && updates[j].key < k) {
        if (!updates[j].deleted) {
          keys.emplace_back(updates[j].key);
          values.push_back(updates[j].value);
        }
        ++j;
      }
      if (j < updates.size() && updates[j].key == k) {
        if (!updates[j].deleted) {  // shadow
          keys.emplace_back(updates[j].key);
          values.push_back(updates[j].value);
        }
        ++j;
        return;
      }
      keys.emplace_back(k);
      values.push_back(v);
    });
    while (j < updates.size()) {
      if (!updates[j].deleted) {
        keys.emplace_back(updates[j].key);
        values.push_back(updates[j].value);
      }
      ++j;
    }
    tree_.Build(keys, values);
  }

  Tree& tree() { return tree_; }

 private:
  Tree tree_;
};

using StatCompactArtStage = TrieStatStage<CompactArt>;
using StatCompactMasstreeStage = TrieStatStage<CompactMasstree>;

}  // namespace met

#endif  // MET_HYBRID_ADAPTERS_H_
