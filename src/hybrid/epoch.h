// Minimal epoch-based reclamation (EBR) for read-mostly pointer swaps.
//
// Readers Pin() a slot with the current global epoch before loading the
// protected pointer and Unpin() it after the last dereference. Publishers
// first unpublish an object (swap the shared atomic pointer to its
// replacement) and only then Retire() it; Retire draws its tag from a
// fetch_add on the global epoch, so the tag is ordered after the swap.
//
// Safety argument (all operations seq_cst, so one total order exists):
// a reader pinned at epoch e read e from the global counter before loading
// the pointer. If e <= tag, reclamation of that object is blocked until the
// reader unpins. If e > tag, the reader's load of the global counter is
// ordered after the Retire's fetch_add, which is ordered after the swap —
// so the reader's subsequent pointer load can only observe the replacement,
// never the retired object. Either way no reader dereferences freed memory.
//
// A pin taken at a stale epoch (the CAS claiming the slot may complete after
// further epoch advances) is only ever conservative: a smaller epoch blocks
// strictly more reclamation.
#ifndef MET_HYBRID_EPOCH_H_
#define MET_HYBRID_EPOCH_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/index_api.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "guard/clock.h"
#include "guard/metrics.h"

namespace met {
namespace hybrid {

/// One reclamation domain: a fixed slot array for reader pins plus a
/// mutex-guarded list of retired deleters. Sized for tens of concurrent
/// readers; Pin() yields and retries if every slot is momentarily taken.
class EpochDomain {
 public:
  static constexpr size_t kSlots = 64;
  static constexpr uint64_t kFree = ~uint64_t{0};

  EpochDomain() {
    for (auto& s : slots_) s.epoch.store(kFree, std::memory_order_relaxed);
  }

  /// Runs every outstanding deleter. The owner must guarantee quiescence
  /// (no concurrent Pin/Retire) before destroying the domain.
  ~EpochDomain() {
    MET_DCHECK(PinnedSlots() == 0, "EpochDomain destroyed with active pins");
    for (auto& r : retired_) r.deleter();
  }

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Claims a slot stamped with the current global epoch; the caller may
  /// dereference epoch-published pointers until Unpin(slot).
  size_t Pin() {
    for (;;) {
      uint64_t e = epoch_.load(std::memory_order_seq_cst);
      for (size_t i = 0; i < kSlots; ++i) {
        uint64_t expected = kFree;
        if (slots_[i].epoch.compare_exchange_strong(
                expected, e, std::memory_order_seq_cst))
          return i;
      }
      std::this_thread::yield();  // > kSlots concurrent readers: rare, wait
    }
  }

  void Unpin(size_t slot) {
    slots_[slot].epoch.store(kFree, std::memory_order_seq_cst);
  }

  /// Takes ownership of an unpublished object via its deleter. The caller
  /// MUST have swapped the object out of every shared pointer before calling
  /// (the tag drawn here must be ordered after the unpublish; see the header
  /// comment). Reclamation is deferred to TryReclaim() so retirement stays
  /// O(1) — callers on a latency-critical path never free memory. Returns
  /// the retirement tag: once MinPinnedEpoch() > tag, no reader that could
  /// have observed the unpublished object is still pinned (the basis of
  /// WaitQuiescentSince handoffs).
  uint64_t Retire(std::function<void()> deleter) {
    uint64_t tag = epoch_.fetch_add(1, std::memory_order_seq_cst);
    sync::MutexLock l(mu_);
    retired_.push_back({tag, std::move(deleter)});
    return tag;
  }

  /// Blocks until every pin taken at an epoch <= `tag` has been released.
  /// After this returns, any object unpublished before the Retire() that
  /// produced `tag` is unreachable from every thread — the OLC hybrid's
  /// freeze handoff uses this to know the frozen stage has gone quiescent
  /// (late writers that loaded the pre-freeze snapshot have drained).
  /// The caller must not itself hold a pin taken at an epoch <= tag.
  void WaitQuiescentSince(uint64_t tag) const {
    while (MinPinnedEpoch() <= tag) std::this_thread::yield();
  }

  /// Frees every retired object no pinned reader can still observe
  /// (tag < minimum pinned epoch). Returns the number freed. Deleters run
  /// outside the internal lock.
  ///
  /// Also drives the stall watchdog: when the same oldest retired tag stays
  /// blocked by a pinned reader across calls, the blocked duration is
  /// published on the met.guard.epoch_stall_ms gauge (and, in debug builds,
  /// warned once per stall after 1s) — a reader that forgot to Unpin shows
  /// up as unbounded retired growth, and this points at it. `now_ns`
  /// overrides the watchdog's monotonic timestamp (tests); 0 reads the
  /// clock.
  size_t TryReclaim(uint64_t now_ns = 0) {
    uint64_t min_pinned = MinPinnedEpoch();
    std::vector<Retired> ready;
    {
      sync::MutexLock l(mu_);
      size_t kept = 0;
      for (auto& r : retired_) {
        if (r.tag < min_pinned)
          ready.push_back(std::move(r));
        else
          retired_[kept++] = std::move(r);
      }
      retired_.resize(kept);
      UpdateStallWatchdog(now_ns);
    }
    for (auto& r : ready) r.deleter();
    return ready.size();
  }

  uint64_t GlobalEpoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Smallest epoch any reader is pinned at; kFree when nothing is pinned
  /// (every retired object is then reclaimable).
  uint64_t MinPinnedEpoch() const {
    uint64_t min = kFree;
    for (const auto& s : slots_) {
      uint64_t v = s.epoch.load(std::memory_order_seq_cst);
      if (v < min) min = v;
    }
    return min;
  }

  size_t PinnedSlots() const {
    size_t n = 0;
    for (const auto& s : slots_)
      if (s.epoch.load(std::memory_order_seq_cst) != kFree) ++n;
    return n;
  }

  size_t RetiredCount() const {
    sync::MutexLock l(mu_);
    return retired_.size();
  }

  /// Verifies the domain's state-machine invariants; no-op unless
  /// MET_CHECK_ENABLED (see check/concurrent_hybrid_check.h).
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return ValidateImpl(os);
#else
    (void)os;
    return true;
#endif
  }

  /// Quiescent-only (reads retired_ without mu_ where noted in the check
  /// header), so the static analysis is opted out on the definition.
  bool ValidateImpl(std::ostream& os) const
      MET_NO_THREAD_SAFETY_ANALYSIS;  // check/concurrent_hybrid_check.h

 private:
  struct Retired {
    uint64_t tag;
    std::function<void()> deleter;
  };

  /// Debug-build warning threshold for a blocked reclamation anchor.
  static constexpr uint64_t kStallWarnNs = 1000ull * 1000 * 1000;

  /// Tracks how long the oldest retired tag has been blocked by a pin. Runs
  /// after the reclaim sweep, so a non-empty retired_ here means some pinned
  /// reader holds an epoch <= that tag (an unpinned backlog would have been
  /// swept). Progress — a different oldest tag, or an empty list — resets
  /// the timer.
  void UpdateStallWatchdog(uint64_t now_ns) MET_REQUIRES(mu_) {
    obs::Gauge* stall = guard::GuardObsMetrics::Get().epoch_stall_ms;
    if (retired_.empty()) {
      stall_anchor_tag_ = kFree;
      stall_warned_ = false;
      stall->Set(0);
      return;
    }
    uint64_t oldest = retired_.front().tag;
    for (const auto& r : retired_)
      if (r.tag < oldest) oldest = r.tag;
    if (now_ns == 0) now_ns = guard::MonotonicNanos();
    if (oldest != stall_anchor_tag_) {
      stall_anchor_tag_ = oldest;
      stall_since_ns_ = now_ns;
      stall_warned_ = false;
      stall->Set(0);
      return;
    }
    uint64_t blocked_ns =
        now_ns >= stall_since_ns_ ? now_ns - stall_since_ns_ : 0;
    stall->Set(static_cast<int64_t>(blocked_ns / guard::kNanosPerMilli));
#ifndef NDEBUG
    if (!stall_warned_ && blocked_ns >= kStallWarnNs) {
      stall_warned_ = true;
      std::fprintf(
          stderr,
          "met::hybrid: EBR reclamation stalled %llu ms: retired tag %llu "
          "blocked by pinned epoch %llu (reader holding a pin too long?)\n",
          static_cast<unsigned long long>(blocked_ns / guard::kNanosPerMilli),
          static_cast<unsigned long long>(oldest),
          static_cast<unsigned long long>(MinPinnedEpoch()));
    }
#endif
  }

  // Each slot on its own cache line: reader pins must not false-share.
  // sync::Atomic makes every pin/unpin a met::race scheduling decision.
  struct alignas(64) Slot {
    sync::Atomic<uint64_t> epoch;
  };

  sync::Atomic<uint64_t> epoch_{0};
  std::array<Slot, kSlots> slots_;
  mutable sync::Mutex mu_;
  std::vector<Retired> retired_ MET_GUARDED_BY(mu_);
  uint64_t stall_anchor_tag_ MET_GUARDED_BY(mu_) = kFree;
  uint64_t stall_since_ns_ MET_GUARDED_BY(mu_) = 0;
  bool stall_warned_ MET_GUARDED_BY(mu_) = false;
};

/// RAII pin on an EpochDomain.
class EpochGuard {
 public:
  explicit EpochGuard(EpochDomain& domain)
      : domain_(&domain), slot_(domain.Pin()) {}
  ~EpochGuard() { domain_->Unpin(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  /// Witness for the concurrent mutation API (common/index_api.h): proof the
  /// caller holds a live pin for the duration of the call it is passed to.
  EpochToken token() const { return EpochToken{}; }

 private:
  EpochDomain* domain_;
  size_t slot_;
};

}  // namespace hybrid
}  // namespace met

#endif  // MET_HYBRID_EPOCH_H_
