#include "serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "guard/net_fault.h"
#include "io/io.h"

namespace met::serve {

namespace {

io::Status Errno(const char* what) {
  int e = errno;
  return io::Status::IoError(std::string(what) + ": " + std::strerror(e), e);
}

io::Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return Errno("fcntl(O_NONBLOCK)");
  return io::Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best effort: latency tuning only, never correctness.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SleepNs(uint64_t ns) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ns / 1000000000ull);
  ts.tv_nsec = static_cast<long>(ns % 1000000000ull);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// Arms an abortive close: with SO_LINGER {on, 0}, the eventual close()
/// sends RST instead of FIN — the peer sees a hard connection reset, the
/// fault the injector is simulating.
void ArmAbortiveClose(int fd) {
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  // Best effort: if the option cannot be set, the close degrades to a
  // normal FIN — a weaker but still valid injected fault.
  (void)setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

/// Lands an injected write fault: for kTorn a best-effort prefix goes out
/// first (the peer sees a torn frame), then the fd is armed for RST-on-close
/// and the caller gets ECONNRESET — every write path treats that as a dead
/// connection and closes, completing the fault.
io::Status InjectWriteFault(int fd, std::string_view data,
                            guard::NetFaultInjector::WriteFault fault,
                            size_t clamp) {
  if (fault == guard::NetFaultInjector::WriteFault::kTorn && clamp > 0) {
    // Best effort: the connection is being torn down either way.
    (void)send(fd, data.data(), clamp, MSG_NOSIGNAL);
  }
  ArmAbortiveClose(fd);
  errno = ECONNRESET;
  return Errno("send(injected fault)");
}

}  // namespace

void TrackFd(int fd) {
  if (fd < 0) return;
  io::IoObsMetrics::Get().open_fds->Add(1);
}

io::Status OpenListener(uint16_t port, int* listen_fd, uint16_t* bound_port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  TrackFd(fd);
  int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    io::Status s = Errno("setsockopt(SO_REUSEADDR)");
    CloseFd(fd);
    return s;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    io::Status s = Errno("bind");
    CloseFd(fd);
    return s;
  }
  if (listen(fd, 1024) < 0) {
    io::Status s = Errno("listen");
    CloseFd(fd);
    return s;
  }
  if (io::Status s = SetNonBlocking(fd); !s.ok()) {
    CloseFd(fd);
    return s;
  }
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&got), &len) < 0) {
      io::Status s = Errno("getsockname");
      CloseFd(fd);
      return s;
    }
    *bound_port = ntohs(got.sin_port);
  }
  *listen_fd = fd;
  return io::Status::OK();
}

io::Status AcceptConn(int listen_fd, int* conn_fd) {
  *conn_fd = -1;
  for (;;) {
    int fd = accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      TrackFd(fd);
      if (io::Status s = SetNonBlocking(fd); !s.ok()) {
        CloseFd(fd);
        return s;
      }
      SetNoDelay(fd);
      *conn_fd = fd;
      return io::Status::OK();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return io::Status::OK();
    // A connection that died in the accept queue is not a listener failure.
    if (errno == ECONNABORTED) continue;
    return Errno("accept");
  }
}

io::Status ConnectTcp(const std::string& host, uint16_t port, int* fd) {
  int s = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (s < 0) return Errno("socket");
  TrackFd(s);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(s);
    return io::Status::InvalidArgument("bad IPv4 address: " + host);
  }
  for (;;) {
    if (connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      break;
    if (errno == EINTR) continue;
    io::Status st = Errno("connect");
    CloseFd(s);
    return st;
  }
  SetNoDelay(s);
  *fd = s;
  return io::Status::OK();
}

io::Status ReadSome(int fd, std::string* buf, bool* eof, bool* would_block) {
  *eof = false;
  *would_block = false;
  char chunk[64 * 1024];
  size_t want = sizeof(chunk);
  auto& inj = guard::NetFaultInjector::Global();
  if (inj.enabled()) {
    if (uint64_t stall = inj.RollStallNs(); stall > 0) SleepNs(stall);
    want = inj.ClampRead(want);
  }
  for (;;) {
    ssize_t n = recv(fd, chunk, want, 0);
    if (n > 0) {
      buf->append(chunk, static_cast<size_t>(n));
      return io::Status::OK();
    }
    if (n == 0) {
      *eof = true;
      return io::Status::OK();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return io::Status::OK();
    }
    return Errno("recv");
  }
}

io::Status WriteSome(int fd, std::string_view data, size_t* written,
                     bool* would_block) {
  *written = 0;
  *would_block = false;
  auto& inj = guard::NetFaultInjector::Global();
  if (inj.enabled()) {
    size_t clamp = 0;
    auto fault = inj.RollWrite(data.size(), &clamp);
    if (fault != guard::NetFaultInjector::WriteFault::kNone)
      return InjectWriteFault(fd, data, fault, clamp);
  }
  while (*written < data.size()) {
    ssize_t n = send(fd, data.data() + *written, data.size() - *written,
                     MSG_NOSIGNAL);
    if (n > 0) {
      *written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      *would_block = true;
      return io::Status::OK();
    }
    return Errno("send");
  }
  return io::Status::OK();
}

io::Status SendAll(int fd, std::string_view data) {
  auto& inj = guard::NetFaultInjector::Global();
  int rounds = 1;
  if (inj.enabled()) {
    size_t clamp = 0;
    auto fault = inj.RollWrite(data.size(), &clamp);
    if (fault != guard::NetFaultInjector::WriteFault::kNone)
      return InjectWriteFault(fd, data, fault, clamp);
    // SendAll callers send whole frames, so a duplicate here models the
    // network delivering an already-acked frame twice (dedup exercise).
    if (inj.RollDuplicate()) rounds = 2;
  }
  for (int round = 0; round < rounds; ++round) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n =
          send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return Errno("send");
    }
  }
  return io::Status::OK();
}

io::Status RecvSome(int fd, std::string* buf) {
  char chunk[64 * 1024];
  size_t want = sizeof(chunk);
  auto& inj = guard::NetFaultInjector::Global();
  if (inj.enabled()) {
    if (uint64_t stall = inj.RollStallNs(); stall > 0) SleepNs(stall);
    want = inj.ClampRead(want);
  }
  for (;;) {
    ssize_t n = recv(fd, chunk, want, 0);
    if (n > 0) {
      buf->append(chunk, static_cast<size_t>(n));
      return io::Status::OK();
    }
    if (n == 0) return io::Status::NotFound("peer closed");
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

void CloseFd(int fd) {
  if (fd < 0) return;
  io::IoObsMetrics::Get().open_fds->Sub(1);
  // Retrying close on EINTR is wrong on Linux (the fd is released either
  // way); a failed close is unactionable here.
  (void)close(fd);  // fd state is undefined after EINTR; never retried
}

}  // namespace met::serve
