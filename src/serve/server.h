// met::serve — shard-per-core network serving engine over the met index
// stack (ROADMAP item 1: the jump from "library + benches" to "system under
// load").
//
// Architecture
//   - One acceptor thread owns the listener and hands each new connection
//     to a shard thread round-robin.
//   - N shard threads, each running its own epoll loop. A shard thread has
//     two jobs: network I/O for the connections it owns (read, decode,
//     write back), and execution for the keyspace partition it owns
//     (hash(key) % N == shard id). The partition's storage engine is only
//     ever touched by its owning thread — shard-per-core, no data locks on
//     the request path.
//   - Requests decoded on connection-owner thread O for a key owned by
//     shard S are passed O -> S through S's bounded admission queue
//     (mutex-guarded vector + eventfd wakeup; batched hand-off so the lock
//     is taken once per read burst, not once per request). Responses travel
//     S -> O the same way and O serializes them onto the connection.
//
// Batch coalescing: each shard drains its admission queue in arrival order
// and gathers consecutive point reads — across *all* connections — into
// groups of ServerOptions::batch_width, executed through one
// ShardEngine::GetBatch call. This is what feeds the PR-4 AMAC prefetch
// kernels at network concurrency: a single client never has to batch its
// own requests to get batched execution. MULTIGET is decomposed into
// per-key reads that join the same groups and is reassembled by the
// connection owner. Any write flushes the pending read group first, so
// same-connection pipelined read-your-writes holds.
//
// Backpressure (met::guard): every shard owns a cost-aware
// guard::AdmissionController. Requests are charged an estimated cost
// (GET 1, PUT/DELETE 2, SCAN ~rows/16, MULTIGET keys); admission sheds —
// kShed with a retry-after hint, counted in met.serve.shed and
// met.guard.shed — when the shard's queued cost exceeds queue_capacity or
// when a CoDel-style standing queue-delay target escalates the overload
// level (higher levels refuse progressively cheaper request classes, so
// scans shed before gets). Requests carrying a deadline are refused at
// admission if the standing delay already exceeds their budget, dropped at
// batch-coalesce time if it expired while queued, and never reach durable
// group-commit dead (kDeadlineExceeded in all three cases). Tokened writes
// are deduplicated per shard (guard::DedupWindow), making client retries
// at-least-once safe. Connections whose write buffer backs up past a
// high-water mark stop being read until it drains. Queue depth is
// observable via met.serve.queue_depth; queue delay via
// met.guard.queue_delay_us.
//
// Shutdown drains gracefully: reads stop, every admitted request executes,
// responses flush, then sockets close and threads join. In durable mode a
// drained chunk's writes are group-committed (LsmTree::SyncWal) before any
// of the chunk's acks are released, so an acked PUT is always on disk —
// tests kill -9 the process and assert zero acked-but-lost writes.
#ifndef MET_SERVE_SERVER_H_
#define MET_SERVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/index_api.h"
#include "io/io.h"
#include "io/status.h"
#include "obs/metrics.h"

namespace met::serve {

/// Registry-backed counters for the serving engine. Fetch once via Get().
struct ServeObsMetrics {
  obs::Counter* accepted;      // met.serve.conns_accepted
  obs::Counter* closed;        // met.serve.conns_closed
  obs::Counter* requests;      // met.serve.requests
  obs::Counter* shed;          // met.serve.shed (kShed by admission control)
  obs::Counter* batches;       // met.serve.read_batches executed
  obs::Counter* batched_gets;  // met.serve.batched_gets (reads via GetBatch)
  obs::Counter* proto_errors;  // met.serve.proto_errors (conns killed)
  obs::Histogram* queue_depth;  // met.serve.queue_depth at drain time

  static const ServeObsMetrics& Get();
};

/// Storage behind one shard. Implementations are accessed only by the
/// owning shard thread (single-threaded use; the engine may still run its
/// own background work, e.g. the concurrent hybrid merge).
class ShardEngine {
 public:
  virtual ~ShardEngine() = default;

  virtual bool Get(uint64_t key, uint64_t* value) = 0;
  /// Batched point reads; out[i] must equal Get(keys[i]).
  virtual void GetBatch(const uint64_t* keys, size_t n, LookupResult* out) = 0;
  /// Upsert. False means the write could not be applied (durable failure).
  virtual bool Put(uint64_t key, uint64_t value) = 0;
  virtual bool Delete(uint64_t key) = 0;
  /// Up to `limit` values from keys >= start, in key order, within this
  /// shard's partition only (hash partitioning has no global order).
  virtual size_t Scan(uint64_t start, size_t limit,
                      std::vector<uint64_t>* out) = 0;
  /// Group-commit barrier: called once per drained chunk that contained a
  /// write, before that chunk's acks are released. False fails the acks.
  virtual bool SyncWrites() { return true; }
};

/// In-memory engine: OlcConcurrentHybridBTree<uint64_t> in non-unique
/// (upsert) mode with background merges. Mutations go through the outcome
/// API (common/index_api.h) and never serialize behind a writer lock, so
/// the engine's own merge thread and any helper threads a deployment adds
/// behind a shard proceed in parallel with the shard's request stream.
std::unique_ptr<ShardEngine> NewMemoryEngine();

/// Pre-OLC in-memory engine: ConcurrentHybridBTree<uint64_t>, whose
/// SharedMutex serializes PUT/DELETE against each other and against the
/// merge. Kept selectable (--engine=locked) as the bench baseline.
std::unique_ptr<ShardEngine> NewLockedMemoryEngine();

/// Durable engine: LsmTree::Open on `dir` (WAL + MANIFEST, group-fsync via
/// SyncWrites). Keys are 8-byte big-endian so lexicographic order matches
/// numeric order. On open failure returns null and reports through
/// *status.
std::unique_ptr<ShardEngine> NewDurableEngine(const std::string& dir,
                                              io::Env* env,
                                              io::Status* status);

struct ServerOptions {
  uint16_t port = 0;       // 0 = ephemeral; Server::port() has the real one
  size_t num_shards = 0;   // 0 = hardware_concurrency
  /// Per-shard admission bound in guard cost units (a plain GET costs 1,
  /// so for GET-only traffic this is the old per-request bound).
  size_t queue_capacity = 4096;
  size_t batch_width = 16;     // read-coalescing group size
  bool coalesce_reads = true;  // false = execute reads one by one
  /// CoDel-style standing queue-delay target and measurement interval for
  /// the per-shard admission controller (guard/admission.h).
  uint64_t delay_target_us = 5000;
  uint64_t delay_interval_us = 100 * 1000;
  /// Per-shard idempotency window: how many tokened writes each shard
  /// remembers for retry dedup. 0 disables dedup.
  size_t dedup_window = 4096;
  /// Pause reading a connection whose pending response bytes exceed this.
  size_t conn_write_buffer_limit = 4u << 20;

  /// Memory mode only: use the legacy SharedMutex hybrid engine instead of
  /// the OLC default (writer-lock baseline for A/B runs).
  bool locked_memory_engine = false;

  bool durable = false;
  std::string dir = "/tmp/met_serve";  // durable partitions: dir/shard-<i>
  io::Env* env = nullptr;              // durable mode; nullptr = Posix

  /// Test hook: when set, overrides the durable/memory engine choice.
  std::function<std::unique_ptr<ShardEngine>(size_t shard)> engine_factory;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, builds the shard engines, and starts the acceptor + shard
  /// threads. Returns without blocking; the server runs until Shutdown().
  io::Status Start();

  /// Graceful drain: stop accepting and reading, execute everything
  /// admitted, flush responses, close, join. Idempotent.
  void Shutdown();

  uint16_t port() const;
  size_t num_shards() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace met::serve

#endif  // MET_SERVE_SERVER_H_
