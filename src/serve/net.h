// met::serve socket layer — io::Status-returning TCP primitives for the
// serving engine, hardened the same way met::io hardens file I/O:
//
//   - every syscall loops on EINTR (never surfaces it to callers);
//   - short transfers are the caller-visible unit (ReadSome/WriteSome report
//     progress; SendAll/RecvFrame loop to completion for blocking clients);
//   - SIGPIPE can never kill the process: all sends use MSG_NOSIGNAL, so a
//     peer that vanished mid-write is an EPIPE Status, not a signal;
//   - would-block is not an error: nonblocking paths report it through a
//     bool out-param so the event loop can re-arm epoll instead of
//     propagating EAGAIN as a failure.
//
// Server sockets are nonblocking (event loop); client helpers are blocking
// (load generator and tests want simple sequential control flow).
//
// Two guard-era responsibilities also live here:
//
//   - every fd this layer creates is counted in the met.io.open_fds gauge
//     (and every CloseFd decrements it), so fd-leak checks cover sockets as
//     well as files. Callers that create fds outside this layer (epoll,
//     eventfd) register them with TrackFd so the books balance.
//   - every read and write consults guard::NetFaultInjector::Global(): under
//     MET_NET_FAULT the layer tears writes (short prefix + abortive RST on
//     close), resets connections, stalls and clamps reads, and duplicates
//     frame-aligned sends. Disabled (the default) this is one relaxed load.
#ifndef MET_SERVE_NET_H_
#define MET_SERVE_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "io/status.h"

namespace met::serve {

/// Opens a loopback-or-any TCP listener. port 0 binds an ephemeral port;
/// *bound_port always reports the actual port. The socket is nonblocking
/// with SO_REUSEADDR.
io::Status OpenListener(uint16_t port, int* listen_fd, uint16_t* bound_port);

/// Accepts one connection if available: on success *conn_fd is the new
/// nonblocking TCP_NODELAY socket, or -1 if the accept queue was empty
/// (would-block — not an error). Transient failures the kernel reports
/// through accept (ECONNABORTED, EMFILE pressure) are returned as Status.
io::Status AcceptConn(int listen_fd, int* conn_fd);

/// Blocking connect to host:port with TCP_NODELAY (client side).
io::Status ConnectTcp(const std::string& host, uint16_t port, int* fd);

/// Nonblocking read: appends whatever is available (up to an internal chunk
/// size) to *buf. *eof true on orderly shutdown; *would_block true when the
/// socket had nothing (neither is an error).
io::Status ReadSome(int fd, std::string* buf, bool* eof, bool* would_block);

/// Nonblocking write of data; *written is the byte count that left (may be
/// short). *would_block true when the socket buffer filled first.
io::Status WriteSome(int fd, std::string_view data, size_t* written,
                     bool* would_block);

/// Blocking write of all of data (client side); loops over short writes.
io::Status SendAll(int fd, std::string_view data);

/// Blocking read of at least one byte appended to *buf; Status NotFound on
/// orderly EOF (peer closed). Used by the client to accumulate frames.
io::Status RecvSome(int fd, std::string* buf);

/// Closes fd (if >= 0) and decrements met.io.open_fds.
void CloseFd(int fd);

/// Counts an externally-created fd (epoll, eventfd) in met.io.open_fds so a
/// later CloseFd balances. No-op for fd < 0.
void TrackFd(int fd);

}  // namespace met::serve

#endif  // MET_SERVE_NET_H_
