// met::serve wire protocol — pipelined, length-prefixed binary frames.
//
// Every frame (both directions) is:
//
//   [u32 body_len][u8 tag][u32 request_id][payload ...]
//                  `---------- body_len bytes ---------'
//
// All integers are little-endian. body_len counts everything after the
// length word (tag + id + payload) and is bounded by kMaxFrameBytes, so a
// garbage length can never commit the peer to an unbounded read. The
// request_id is chosen by the client and echoed verbatim in the response:
// requests on one connection may be answered out of order (the server
// coalesces point reads across connections into batch groups), so the id —
// not arrival order — is the correlation key. Per connection the server
// still *executes* same-shard requests in arrival order, which is what
// makes pipelined read-your-writes hold (PUT k, GET k without waiting for
// the PUT ack sees the PUT).
//
// The request tag byte is versioned: the low 6 bits are the opcode, the
// high 2 bits are feature flags that extend the fixed header. A v1 client
// never sets flags, so its frames decode unchanged; a v2 server reads the
// flags it knows and rejects the rest (strict decoding, below):
//
//   0x80 kReqFlagDeadline  u32 deadline_ms follows the request id — the
//                          client's remaining latency budget. The server
//                          sheds the request with kDeadlineExceeded instead
//                          of doing work whose answer nobody will read:
//                          checked at admission (against the shard's
//                          standing queue delay), at batch-coalesce time,
//                          and before a write reaches durable group-commit.
//   0x40 kReqFlagIdem      u64 idempotency token follows (after the
//                          deadline if both flags are set); kPut/kDelete
//                          only. Retried writes that carry the same token
//                          are acked from the shard's dedup window instead
//                          of re-applying (at-least-once retry semantics).
//
// Request payloads by opcode (after the optional flag fields):
//   kGet      u64 key
//   kPut      u64 key, u64 value          (value 0xFFFF..FF is reserved)
//   kDelete   u64 key
//   kScan     u64 start_key, u32 limit    (limit <= kMaxScanLimit)
//   kMultiGet u16 count, count * u64 key  (count <= kMaxMultiGetKeys)
//
// Response payloads by status:
//   kOk for kGet          u64 value
//   kOk for kPut/kDelete  empty
//   kOk for kScan         u32 n, n * u64 value
//   kOk for kMultiGet     u16 count, count * (u8 found, u64 value)
//   kShed                 empty, or u32 retry_after_ms (the server's shed
//                         backoff hint; sent only to requests that carried
//                         any v2 flag, so v1 clients never see it)
//   kDeadlineExceeded     empty (only ever answers deadline-carrying
//                         requests, so v1 clients never see the status)
//   kNotFound/kError      empty
//
// kShed (wire value 2) was named kBusy before overload control grew
// cost-aware shedding; the wire value is unchanged.
//
// Decoding is strict: unknown tags or flags, payload sizes that do not
// match the opcode exactly, or limits above the caps are kError — the
// connection is expected to be closed, since framing can no longer be
// trusted.
#ifndef MET_SERVE_PROTOCOL_H_
#define MET_SERVE_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace met::serve {

enum class OpCode : uint8_t {
  kGet = 1,
  kPut = 2,
  kDelete = 3,
  kScan = 4,
  kMultiGet = 5,
};

enum class RespStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kShed = 2,  // shed by overload control; safe to retry (was kBusy)
  kError = 3,
  kDeadlineExceeded = 4,  // request's deadline_ms budget expired server-side
};

// Request tag-byte layout: low 6 bits opcode, high 2 bits flags.
inline constexpr uint8_t kReqOpMask = 0x3f;
inline constexpr uint8_t kReqFlagDeadline = 0x80;  // + u32 deadline_ms
inline constexpr uint8_t kReqFlagIdem = 0x40;      // + u64 idempotency token

inline constexpr size_t kFrameHeaderBytes = 4;   // the length word
inline constexpr size_t kFrameBodyMinBytes = 5;  // tag + request id
inline constexpr size_t kMaxScanLimit = 1024;
inline constexpr size_t kMaxMultiGetKeys = 256;
// Largest legal body: a max-width kOk scan response.
inline constexpr size_t kMaxFrameBytes =
    kFrameBodyMinBytes + 4 + kMaxScanLimit * 8;

/// PUT of this value is rejected (kError): it collides with the in-memory
/// engine's tombstone sentinel (ConcurrentHybridIndex::kTombstone).
inline constexpr uint64_t kReservedValue = ~uint64_t{0};

struct Request {
  OpCode op = OpCode::kGet;
  uint32_t id = 0;
  uint64_t key = 0;
  uint64_t value = 0;                // kPut only
  uint32_t scan_limit = 0;           // kScan only
  std::vector<uint64_t> multi_keys;  // kMultiGet only
  uint32_t deadline_ms = 0;  // 0 = none; encoded via kReqFlagDeadline
  uint64_t idem = 0;         // 0 = none; kPut/kDelete, via kReqFlagIdem
};

struct MultiGetEntry {
  bool found = false;
  uint64_t value = 0;
};

struct Response {
  RespStatus status = RespStatus::kOk;
  OpCode op = OpCode::kGet;  // which request shape the payload answers
  uint32_t id = 0;
  uint64_t value = 0;                 // kGet
  std::vector<uint64_t> scan_values;  // kScan
  std::vector<MultiGetEntry> multi;   // kMultiGet
  uint32_t retry_after_ms = 0;        // kShed backoff hint (0 = none)
};

enum class DecodeResult {
  kNeedMore,  // buffer holds no complete frame yet
  kFrame,     // one frame decoded; *consumed advanced past it
  kError,     // framing violated; close the connection
};

// ---- little-endian primitives ------------------------------------------

inline void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint8_t>(p[1]) << 8));
}

inline uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

inline uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

// ---- encoding -----------------------------------------------------------

/// Appends one encoded request frame to *out. Flag fields (deadline,
/// idempotency token) are emitted only when set, so a request without them
/// is byte-identical to the v1 encoding.
inline void AppendRequest(const Request& req, std::string* out) {
  uint8_t flags = 0;
  if (req.deadline_ms != 0) flags |= kReqFlagDeadline;
  if (req.idem != 0) flags |= kReqFlagIdem;
  size_t body = kFrameBodyMinBytes;
  if (flags & kReqFlagDeadline) body += 4;
  if (flags & kReqFlagIdem) body += 8;
  switch (req.op) {
    case OpCode::kGet:
    case OpCode::kDelete: body += 8; break;
    case OpCode::kPut: body += 16; break;
    case OpCode::kScan: body += 12; break;
    case OpCode::kMultiGet: body += 2 + req.multi_keys.size() * 8; break;
  }
  PutU32(out, static_cast<uint32_t>(body));
  out->push_back(static_cast<char>(static_cast<uint8_t>(req.op) | flags));
  PutU32(out, req.id);
  if (flags & kReqFlagDeadline) PutU32(out, req.deadline_ms);
  if (flags & kReqFlagIdem) PutU64(out, req.idem);
  switch (req.op) {
    case OpCode::kGet:
    case OpCode::kDelete:
      PutU64(out, req.key);
      break;
    case OpCode::kPut:
      PutU64(out, req.key);
      PutU64(out, req.value);
      break;
    case OpCode::kScan:
      PutU64(out, req.key);
      PutU32(out, req.scan_limit);
      break;
    case OpCode::kMultiGet:
      PutU16(out, static_cast<uint16_t>(req.multi_keys.size()));
      for (uint64_t k : req.multi_keys) PutU64(out, k);
      break;
  }
}

/// Appends one encoded response frame to *out.
inline void AppendResponse(const Response& resp, std::string* out) {
  size_t body = kFrameBodyMinBytes;
  if (resp.status == RespStatus::kOk) {
    switch (resp.op) {
      case OpCode::kGet: body += 8; break;
      case OpCode::kScan: body += 4 + resp.scan_values.size() * 8; break;
      case OpCode::kMultiGet: body += 2 + resp.multi.size() * 9; break;
      case OpCode::kPut:
      case OpCode::kDelete: break;
    }
  } else if (resp.status == RespStatus::kShed && resp.retry_after_ms != 0) {
    body += 4;
  }
  PutU32(out, static_cast<uint32_t>(body));
  out->push_back(static_cast<char>(resp.status));
  PutU32(out, resp.id);
  if (resp.status != RespStatus::kOk) {
    if (resp.status == RespStatus::kShed && resp.retry_after_ms != 0)
      PutU32(out, resp.retry_after_ms);
    return;
  }
  switch (resp.op) {
    case OpCode::kGet:
      PutU64(out, resp.value);
      break;
    case OpCode::kScan:
      PutU32(out, static_cast<uint32_t>(resp.scan_values.size()));
      for (uint64_t v : resp.scan_values) PutU64(out, v);
      break;
    case OpCode::kMultiGet:
      PutU16(out, static_cast<uint16_t>(resp.multi.size()));
      for (const MultiGetEntry& e : resp.multi) {
        out->push_back(e.found ? 1 : 0);
        PutU64(out, e.value);
      }
      break;
    case OpCode::kPut:
    case OpCode::kDelete:
      break;
  }
}

// ---- decoding -----------------------------------------------------------

namespace internal {

/// Frames the next body out of buf[*pos..): validates the length word and
/// bounds, leaves *pos on the body start. Shared by both decoders.
inline DecodeResult NextBody(std::string_view buf, size_t* pos,
                             const char** body, size_t* body_len) {
  size_t avail = buf.size() - *pos;
  if (avail < kFrameHeaderBytes) return DecodeResult::kNeedMore;
  size_t len = GetU32(buf.data() + *pos);
  if (len < kFrameBodyMinBytes || len > kMaxFrameBytes)
    return DecodeResult::kError;
  if (avail < kFrameHeaderBytes + len) return DecodeResult::kNeedMore;
  *body = buf.data() + *pos + kFrameHeaderBytes;
  *body_len = len;
  *pos += kFrameHeaderBytes + len;
  return DecodeResult::kFrame;
}

}  // namespace internal

/// Decodes the next request frame starting at buf[*consumed]. On kFrame,
/// *consumed is advanced past the frame; on kNeedMore/kError it is
/// unchanged.
inline DecodeResult DecodeRequest(std::string_view buf, size_t* consumed,
                                  Request* out) {
  size_t pos = *consumed;
  const char* body = nullptr;
  size_t len = 0;
  DecodeResult r = internal::NextBody(buf, &pos, &body, &len);
  if (r != DecodeResult::kFrame) return r;
  uint8_t tag = static_cast<uint8_t>(body[0]);
  out->op = static_cast<OpCode>(tag & kReqOpMask);
  out->id = GetU32(body + 1);
  const char* payload = body + kFrameBodyMinBytes;
  size_t payload_len = len - kFrameBodyMinBytes;
  out->multi_keys.clear();
  out->deadline_ms = 0;
  out->idem = 0;
  if (tag & kReqFlagDeadline) {
    if (payload_len < 4) return DecodeResult::kError;
    out->deadline_ms = GetU32(payload);
    payload += 4;
    payload_len -= 4;
  }
  if (tag & kReqFlagIdem) {
    if (payload_len < 8) return DecodeResult::kError;
    out->idem = GetU64(payload);
    payload += 8;
    payload_len -= 8;
  }
  switch (out->op) {
    case OpCode::kGet:
    case OpCode::kDelete:
      if (payload_len != 8) return DecodeResult::kError;
      out->key = GetU64(payload);
      break;
    case OpCode::kPut:
      if (payload_len != 16) return DecodeResult::kError;
      out->key = GetU64(payload);
      out->value = GetU64(payload + 8);
      break;
    case OpCode::kScan:
      if (payload_len != 12) return DecodeResult::kError;
      out->key = GetU64(payload);
      out->scan_limit = GetU32(payload + 8);
      if (out->scan_limit > kMaxScanLimit) return DecodeResult::kError;
      break;
    case OpCode::kMultiGet: {
      if (payload_len < 2) return DecodeResult::kError;
      size_t count = GetU16(payload);
      if (count > kMaxMultiGetKeys || payload_len != 2 + count * 8)
        return DecodeResult::kError;
      out->multi_keys.resize(count);
      for (size_t i = 0; i < count; ++i)
        out->multi_keys[i] = GetU64(payload + 2 + i * 8);
      break;
    }
    default:
      return DecodeResult::kError;
  }
  *consumed = pos;
  return DecodeResult::kFrame;
}

/// Decodes the next response frame; `op` must be the opcode of the request
/// the caller is correlating by id (the payload shape depends on it —
/// callers keep an id -> opcode map of in-flight requests).
inline DecodeResult DecodeResponse(std::string_view buf, size_t* consumed,
                                   OpCode op, Response* out) {
  size_t pos = *consumed;
  const char* body = nullptr;
  size_t len = 0;
  DecodeResult r = internal::NextBody(buf, &pos, &body, &len);
  if (r != DecodeResult::kFrame) return r;
  uint8_t raw_status = static_cast<uint8_t>(body[0]);
  if (raw_status > static_cast<uint8_t>(RespStatus::kDeadlineExceeded))
    return DecodeResult::kError;
  out->status = static_cast<RespStatus>(raw_status);
  out->op = op;
  out->id = GetU32(body + 1);
  out->scan_values.clear();
  out->multi.clear();
  out->retry_after_ms = 0;
  const char* payload = body + kFrameBodyMinBytes;
  size_t payload_len = len - kFrameBodyMinBytes;
  if (out->status != RespStatus::kOk) {
    if (out->status == RespStatus::kShed && payload_len == 4) {
      out->retry_after_ms = GetU32(payload);
    } else if (payload_len != 0) {
      return DecodeResult::kError;
    }
    *consumed = pos;
    return DecodeResult::kFrame;
  }
  switch (op) {
    case OpCode::kGet:
      if (payload_len != 8) return DecodeResult::kError;
      out->value = GetU64(payload);
      break;
    case OpCode::kPut:
    case OpCode::kDelete:
      if (payload_len != 0) return DecodeResult::kError;
      break;
    case OpCode::kScan: {
      if (payload_len < 4) return DecodeResult::kError;
      size_t n = GetU32(payload);
      if (n > kMaxScanLimit || payload_len != 4 + n * 8)
        return DecodeResult::kError;
      out->scan_values.resize(n);
      for (size_t i = 0; i < n; ++i)
        out->scan_values[i] = GetU64(payload + 4 + i * 8);
      break;
    }
    case OpCode::kMultiGet: {
      if (payload_len < 2) return DecodeResult::kError;
      size_t n = GetU16(payload);
      if (n > kMaxMultiGetKeys || payload_len != 2 + n * 9)
        return DecodeResult::kError;
      out->multi.resize(n);
      for (size_t i = 0; i < n; ++i) {
        out->multi[i].found = payload[2 + i * 9] != 0;
        out->multi[i].value = GetU64(payload + 2 + i * 9 + 1);
      }
      break;
    }
    default:
      return DecodeResult::kError;
  }
  *consumed = pos;
  return DecodeResult::kFrame;
}

}  // namespace met::serve

#endif  // MET_SERVE_PROTOCOL_H_
