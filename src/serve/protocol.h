// met::serve wire protocol — pipelined, length-prefixed binary frames.
//
// Every frame (both directions) is:
//
//   [u32 body_len][u8 tag][u32 request_id][payload ...]
//                  `---------- body_len bytes ---------'
//
// All integers are little-endian. body_len counts everything after the
// length word (tag + id + payload) and is bounded by kMaxFrameBytes, so a
// garbage length can never commit the peer to an unbounded read. The
// request_id is chosen by the client and echoed verbatim in the response:
// requests on one connection may be answered out of order (the server
// coalesces point reads across connections into batch groups), so the id —
// not arrival order — is the correlation key. Per connection the server
// still *executes* same-shard requests in arrival order, which is what
// makes pipelined read-your-writes hold (PUT k, GET k without waiting for
// the PUT ack sees the PUT).
//
// Request payloads by opcode:
//   kGet      u64 key
//   kPut      u64 key, u64 value          (value 0xFFFF..FF is reserved)
//   kDelete   u64 key
//   kScan     u64 start_key, u32 limit    (limit <= kMaxScanLimit)
//   kMultiGet u16 count, count * u64 key  (count <= kMaxMultiGetKeys)
//
// Response payloads by status:
//   kOk for kGet          u64 value
//   kOk for kPut/kDelete  empty
//   kOk for kScan         u32 n, n * u64 value
//   kOk for kMultiGet     u16 count, count * (u8 found, u64 value)
//   kNotFound/kBusy/kError  empty (kBusy = admission queue full, retry)
//
// Decoding is strict: unknown tags, payload sizes that do not match the
// opcode exactly, or limits above the caps are kError — the connection is
// expected to be closed, since framing can no longer be trusted.
#ifndef MET_SERVE_PROTOCOL_H_
#define MET_SERVE_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace met::serve {

enum class OpCode : uint8_t {
  kGet = 1,
  kPut = 2,
  kDelete = 3,
  kScan = 4,
  kMultiGet = 5,
};

enum class RespStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kBusy = 2,  // shed by admission control; safe to retry
  kError = 3,
};

inline constexpr size_t kFrameHeaderBytes = 4;   // the length word
inline constexpr size_t kFrameBodyMinBytes = 5;  // tag + request id
inline constexpr size_t kMaxScanLimit = 1024;
inline constexpr size_t kMaxMultiGetKeys = 256;
// Largest legal body: a max-width kOk scan response.
inline constexpr size_t kMaxFrameBytes =
    kFrameBodyMinBytes + 4 + kMaxScanLimit * 8;

/// PUT of this value is rejected (kError): it collides with the in-memory
/// engine's tombstone sentinel (ConcurrentHybridIndex::kTombstone).
inline constexpr uint64_t kReservedValue = ~uint64_t{0};

struct Request {
  OpCode op = OpCode::kGet;
  uint32_t id = 0;
  uint64_t key = 0;
  uint64_t value = 0;                // kPut only
  uint32_t scan_limit = 0;           // kScan only
  std::vector<uint64_t> multi_keys;  // kMultiGet only
};

struct MultiGetEntry {
  bool found = false;
  uint64_t value = 0;
};

struct Response {
  RespStatus status = RespStatus::kOk;
  OpCode op = OpCode::kGet;  // which request shape the payload answers
  uint32_t id = 0;
  uint64_t value = 0;                 // kGet
  std::vector<uint64_t> scan_values;  // kScan
  std::vector<MultiGetEntry> multi;   // kMultiGet
};

enum class DecodeResult {
  kNeedMore,  // buffer holds no complete frame yet
  kFrame,     // one frame decoded; *consumed advanced past it
  kError,     // framing violated; close the connection
};

// ---- little-endian primitives ------------------------------------------

inline void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint8_t>(p[1]) << 8));
}

inline uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

inline uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

// ---- encoding -----------------------------------------------------------

/// Appends one encoded request frame to *out.
inline void AppendRequest(const Request& req, std::string* out) {
  size_t body = kFrameBodyMinBytes;
  switch (req.op) {
    case OpCode::kGet:
    case OpCode::kDelete: body += 8; break;
    case OpCode::kPut: body += 16; break;
    case OpCode::kScan: body += 12; break;
    case OpCode::kMultiGet: body += 2 + req.multi_keys.size() * 8; break;
  }
  PutU32(out, static_cast<uint32_t>(body));
  out->push_back(static_cast<char>(req.op));
  PutU32(out, req.id);
  switch (req.op) {
    case OpCode::kGet:
    case OpCode::kDelete:
      PutU64(out, req.key);
      break;
    case OpCode::kPut:
      PutU64(out, req.key);
      PutU64(out, req.value);
      break;
    case OpCode::kScan:
      PutU64(out, req.key);
      PutU32(out, req.scan_limit);
      break;
    case OpCode::kMultiGet:
      PutU16(out, static_cast<uint16_t>(req.multi_keys.size()));
      for (uint64_t k : req.multi_keys) PutU64(out, k);
      break;
  }
}

/// Appends one encoded response frame to *out.
inline void AppendResponse(const Response& resp, std::string* out) {
  size_t body = kFrameBodyMinBytes;
  if (resp.status == RespStatus::kOk) {
    switch (resp.op) {
      case OpCode::kGet: body += 8; break;
      case OpCode::kScan: body += 4 + resp.scan_values.size() * 8; break;
      case OpCode::kMultiGet: body += 2 + resp.multi.size() * 9; break;
      case OpCode::kPut:
      case OpCode::kDelete: break;
    }
  }
  PutU32(out, static_cast<uint32_t>(body));
  out->push_back(static_cast<char>(resp.status));
  PutU32(out, resp.id);
  if (resp.status != RespStatus::kOk) return;
  switch (resp.op) {
    case OpCode::kGet:
      PutU64(out, resp.value);
      break;
    case OpCode::kScan:
      PutU32(out, static_cast<uint32_t>(resp.scan_values.size()));
      for (uint64_t v : resp.scan_values) PutU64(out, v);
      break;
    case OpCode::kMultiGet:
      PutU16(out, static_cast<uint16_t>(resp.multi.size()));
      for (const MultiGetEntry& e : resp.multi) {
        out->push_back(e.found ? 1 : 0);
        PutU64(out, e.value);
      }
      break;
    case OpCode::kPut:
    case OpCode::kDelete:
      break;
  }
}

// ---- decoding -----------------------------------------------------------

namespace internal {

/// Frames the next body out of buf[*pos..): validates the length word and
/// bounds, leaves *pos on the body start. Shared by both decoders.
inline DecodeResult NextBody(std::string_view buf, size_t* pos,
                             const char** body, size_t* body_len) {
  size_t avail = buf.size() - *pos;
  if (avail < kFrameHeaderBytes) return DecodeResult::kNeedMore;
  size_t len = GetU32(buf.data() + *pos);
  if (len < kFrameBodyMinBytes || len > kMaxFrameBytes)
    return DecodeResult::kError;
  if (avail < kFrameHeaderBytes + len) return DecodeResult::kNeedMore;
  *body = buf.data() + *pos + kFrameHeaderBytes;
  *body_len = len;
  *pos += kFrameHeaderBytes + len;
  return DecodeResult::kFrame;
}

}  // namespace internal

/// Decodes the next request frame starting at buf[*consumed]. On kFrame,
/// *consumed is advanced past the frame; on kNeedMore/kError it is
/// unchanged.
inline DecodeResult DecodeRequest(std::string_view buf, size_t* consumed,
                                  Request* out) {
  size_t pos = *consumed;
  const char* body = nullptr;
  size_t len = 0;
  DecodeResult r = internal::NextBody(buf, &pos, &body, &len);
  if (r != DecodeResult::kFrame) return r;
  out->op = static_cast<OpCode>(body[0]);
  out->id = GetU32(body + 1);
  const char* payload = body + kFrameBodyMinBytes;
  size_t payload_len = len - kFrameBodyMinBytes;
  out->multi_keys.clear();
  switch (out->op) {
    case OpCode::kGet:
    case OpCode::kDelete:
      if (payload_len != 8) return DecodeResult::kError;
      out->key = GetU64(payload);
      break;
    case OpCode::kPut:
      if (payload_len != 16) return DecodeResult::kError;
      out->key = GetU64(payload);
      out->value = GetU64(payload + 8);
      break;
    case OpCode::kScan:
      if (payload_len != 12) return DecodeResult::kError;
      out->key = GetU64(payload);
      out->scan_limit = GetU32(payload + 8);
      if (out->scan_limit > kMaxScanLimit) return DecodeResult::kError;
      break;
    case OpCode::kMultiGet: {
      if (payload_len < 2) return DecodeResult::kError;
      size_t count = GetU16(payload);
      if (count > kMaxMultiGetKeys || payload_len != 2 + count * 8)
        return DecodeResult::kError;
      out->multi_keys.resize(count);
      for (size_t i = 0; i < count; ++i)
        out->multi_keys[i] = GetU64(payload + 2 + i * 8);
      break;
    }
    default:
      return DecodeResult::kError;
  }
  *consumed = pos;
  return DecodeResult::kFrame;
}

/// Decodes the next response frame; `op` must be the opcode of the request
/// the caller is correlating by id (the payload shape depends on it —
/// callers keep an id -> opcode map of in-flight requests).
inline DecodeResult DecodeResponse(std::string_view buf, size_t* consumed,
                                   OpCode op, Response* out) {
  size_t pos = *consumed;
  const char* body = nullptr;
  size_t len = 0;
  DecodeResult r = internal::NextBody(buf, &pos, &body, &len);
  if (r != DecodeResult::kFrame) return r;
  uint8_t raw_status = static_cast<uint8_t>(body[0]);
  if (raw_status > static_cast<uint8_t>(RespStatus::kError))
    return DecodeResult::kError;
  out->status = static_cast<RespStatus>(raw_status);
  out->op = op;
  out->id = GetU32(body + 1);
  out->scan_values.clear();
  out->multi.clear();
  const char* payload = body + kFrameBodyMinBytes;
  size_t payload_len = len - kFrameBodyMinBytes;
  if (out->status != RespStatus::kOk) {
    if (payload_len != 0) return DecodeResult::kError;
    *consumed = pos;
    return DecodeResult::kFrame;
  }
  switch (op) {
    case OpCode::kGet:
      if (payload_len != 8) return DecodeResult::kError;
      out->value = GetU64(payload);
      break;
    case OpCode::kPut:
    case OpCode::kDelete:
      if (payload_len != 0) return DecodeResult::kError;
      break;
    case OpCode::kScan: {
      if (payload_len < 4) return DecodeResult::kError;
      size_t n = GetU32(payload);
      if (n > kMaxScanLimit || payload_len != 4 + n * 8)
        return DecodeResult::kError;
      out->scan_values.resize(n);
      for (size_t i = 0; i < n; ++i)
        out->scan_values[i] = GetU64(payload + 4 + i * 8);
      break;
    }
    case OpCode::kMultiGet: {
      if (payload_len < 2) return DecodeResult::kError;
      size_t n = GetU16(payload);
      if (n > kMaxMultiGetKeys || payload_len != 2 + n * 9)
        return DecodeResult::kError;
      out->multi.resize(n);
      for (size_t i = 0; i < n; ++i) {
        out->multi[i].found = payload[2 + i * 9] != 0;
        out->multi[i].value = GetU64(payload + 2 + i * 9 + 1);
      }
      break;
    }
    default:
      return DecodeResult::kError;
  }
  *consumed = pos;
  return DecodeResult::kFrame;
}

}  // namespace met::serve

#endif  // MET_SERVE_PROTOCOL_H_
