#include "serve/server.h"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/assert.h"
#include "common/hash.h"
#include "common/sync.h"
#include "common/timer.h"
#include "guard/admission.h"
#include "guard/clock.h"
#include "guard/dedup.h"
#include "guard/metrics.h"
#include "hybrid/concurrent_hybrid.h"
#include "hybrid/olc_hybrid.h"
#include "lsm/lsm.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace met::serve {

const ServeObsMetrics& ServeObsMetrics::Get() {
  static const ServeObsMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    ServeObsMetrics x;
    x.accepted = reg.GetCounter("met.serve.conns_accepted");
    x.closed = reg.GetCounter("met.serve.conns_closed");
    x.requests = reg.GetCounter("met.serve.requests");
    x.shed = reg.GetCounter("met.serve.shed");
    x.batches = reg.GetCounter("met.serve.read_batches");
    x.batched_gets = reg.GetCounter("met.serve.batched_gets");
    x.proto_errors = reg.GetCounter("met.serve.proto_errors");
    x.queue_depth = reg.GetHistogram("met.serve.queue_depth");
    return x;
  }();
  return m;
}

// ---- engines -------------------------------------------------------------

namespace {

/// PUT config shared by both memory engines: non-unique, so Insert is
/// insert-or-assign — exactly PUT's upsert.
ConcurrentHybridConfig MemoryEngineConfig() {
  ConcurrentHybridConfig c;
  c.unique = false;
  return c;
}

/// Default memory engine: OLC hybrid through the outcome mutation API.
/// PUT and DELETE take no writer lock — they optimistically descend the
/// active stage and run in parallel with reads, with each other (were the
/// shard ever driven from more than one thread), and with the
/// freeze/drain/publish merge. kRetry (an exhausted restart budget, which
/// takes pathological contention) is surfaced as a failed write rather
/// than blocking the shard loop.
class OlcMemoryEngine final : public ShardEngine {
 public:
  OlcMemoryEngine() : index_(MemoryEngineConfig()) {}

  bool Get(uint64_t key, uint64_t* value) override {
    return index_.Lookup(key, value);
  }
  void GetBatch(const uint64_t* keys, size_t n, LookupResult* out) override {
    met::LookupBatch(index_, keys, n, out);
  }
  bool Put(uint64_t key, uint64_t value) override {
    return MutateOk(IndexInsert(index_, key, value));
  }
  bool Delete(uint64_t key) override {
    return IndexRemove(index_, key) == MutateOutcome::kRemoved;
  }
  size_t Scan(uint64_t start, size_t limit,
              std::vector<uint64_t>* out) override {
    out->clear();
    return index_.Scan(start, limit, out);
  }

 private:
  OlcConcurrentHybridBTree<uint64_t> index_;
};

/// Legacy memory engine: the SharedMutex hybrid, where every PUT/DELETE
/// takes the writer-exclusive lock. Kept as the A/B baseline for
/// bench_olc_scaling and --engine=locked.
class LockedMemoryEngine final : public ShardEngine {
 public:
  LockedMemoryEngine() : index_(MemoryEngineConfig()) {}

  bool Get(uint64_t key, uint64_t* value) override {
    return index_.Lookup(key, value);
  }
  void GetBatch(const uint64_t* keys, size_t n, LookupResult* out) override {
    met::LookupBatch(index_, keys, n, out);
  }
  bool Put(uint64_t key, uint64_t value) override {
    index_.Insert(key, value);
    return true;
  }
  bool Delete(uint64_t key) override { return index_.Erase(key); }
  size_t Scan(uint64_t start, size_t limit,
              std::vector<uint64_t>* out) override {
    out->clear();
    return index_.Scan(start, limit, out);
  }

 private:
  ConcurrentHybridBTree<uint64_t> index_;
};

/// 8-byte big-endian key so LSM lexicographic order == numeric order.
std::string BeKey(uint64_t key) {
  std::string s(8, '\0');
  for (int i = 0; i < 8; ++i) s[i] = static_cast<char>(key >> (8 * (7 - i)));
  return s;
}

uint64_t BeKeyDecode(const std::string& s) {
  uint64_t v = 0;
  for (char c : s) v = (v << 8) | static_cast<uint8_t>(c);
  return v;
}

class DurableEngine final : public ShardEngine {
 public:
  explicit DurableEngine(std::unique_ptr<LsmTree> lsm) : lsm_(std::move(lsm)) {}

  bool Get(uint64_t key, uint64_t* value) override {
    std::string v;
    if (!lsm_->Lookup(BeKey(key), &v)) return false;
    // Empty value is this engine's tombstone (LsmTree has no native delete);
    // it shadows older versions in lower levels like any newer write.
    if (v.empty()) return false;
    if (value != nullptr) *value = GetU64(v.data());
    return true;
  }

  void GetBatch(const uint64_t* keys, size_t n, LookupResult* out) override {
    // The LSM has no interleaved kernel; batched reads fall back to scalar.
    for (size_t i = 0; i < n; ++i) {
      uint64_t v = 0;
      out[i].found = Get(keys[i], &v);
      out[i].value = v;
    }
  }

  bool Put(uint64_t key, uint64_t value) override {
    std::string v(8, '\0');
    for (int i = 0; i < 8; ++i) v[i] = static_cast<char>(value >> (8 * i));
    return lsm_->Put(BeKey(key), v).ok();
  }

  bool Delete(uint64_t key) override {
    if (!Get(key, nullptr)) return false;
    return lsm_->Put(BeKey(key), std::string()).ok();
  }

  size_t Scan(uint64_t start, size_t limit,
              std::vector<uint64_t>* out) override {
    out->clear();
    std::string lk = BeKey(start);
    while (out->size() < limit) {
      std::optional<std::string> k = lsm_->Seek(lk);
      if (!k.has_value() || k->size() != 8) break;
      std::string v;
      // Tombstones consume a seek step but produce no output.
      if (lsm_->Lookup(*k, &v) && !v.empty()) out->push_back(GetU64(v.data()));
      uint64_t next = BeKeyDecode(*k);
      if (next == ~uint64_t{0}) break;
      lk = BeKey(next + 1);
    }
    return out->size();
  }

  bool SyncWrites() override { return lsm_->SyncWal().ok(); }

 private:
  std::unique_ptr<LsmTree> lsm_;
};

}  // namespace

std::unique_ptr<ShardEngine> NewMemoryEngine() {
  return std::make_unique<OlcMemoryEngine>();
}

std::unique_ptr<ShardEngine> NewLockedMemoryEngine() {
  return std::make_unique<LockedMemoryEngine>();
}

std::unique_ptr<ShardEngine> NewDurableEngine(const std::string& dir,
                                              io::Env* env,
                                              io::Status* status) {
  LsmOptions o;
  o.dir = dir;
  o.env = env;
  o.durable = true;
  io::Status st;
  std::unique_ptr<LsmTree> lsm = LsmTree::Open(std::move(o), &st);
  if (status != nullptr) *status = st;
  // Open returns a (possibly degraded) tree even on failed recovery; a
  // serving shard refuses to start on one — degraded durability is silent
  // data loss under the zero-lost-acked-PUTs contract.
  if (!st.ok()) return nullptr;
  return std::make_unique<DurableEngine>(std::move(lsm));
}

// ---- server impl ---------------------------------------------------------

namespace {

/// epoll user-data tag for the shard's eventfd (connections use slot|gen).
constexpr uint64_t kEventFdTag = ~uint64_t{0};

uint64_t ConnTag(uint32_t slot, uint32_t gen) {
  return (static_cast<uint64_t>(gen) << 32) | slot;
}

/// One routed unit of shard work. MULTIGET is decomposed into one item per
/// key (op == kMultiGet, multi_index set) so its reads join the same
/// cross-connection coalescing groups as plain GETs.
struct WorkItem {
  uint32_t owner = 0;  // shard thread owning the connection
  uint32_t slot = 0;
  uint32_t gen = 0;
  OpCode op = OpCode::kGet;
  uint32_t id = 0;
  uint64_t key = 0;
  uint64_t value = 0;        // kPut
  uint32_t scan_limit = 0;   // kScan
  uint16_t multi_index = 0;  // kMultiGet: slot within the assembly
  uint32_t cost = 1;         // guard cost units charged to the target shard
  uint64_t enqueue_ns = 0;   // admission time (queue-delay sample)
  uint64_t deadline_ns = 0;  // absolute monotonic deadline; 0 = none
  uint64_t idem = 0;         // idempotency token; 0 = none
};

/// Execution result routed back to the connection owner. A multiget
/// sub-read fills one assembly slot; everything else is a pre-encoded
/// response frame.
struct Completion {
  uint32_t slot = 0;
  uint32_t gen = 0;
  bool multi_part = false;
  bool deadline = false;  // multi part expired server-side
  uint32_t id = 0;
  uint16_t multi_index = 0;
  bool found = false;
  uint64_t value = 0;
  std::string frame;
};

struct MultiAssembly {
  uint32_t remaining = 0;
  bool deadline_exceeded = false;  // any sub-read expired: whole op expired
  std::vector<MultiGetEntry> entries;
};

struct Conn {
  int fd = -1;
  std::string rbuf;
  size_t rpos = 0;
  std::string wbuf;
  size_t wpos = 0;
  bool want_write = false;   // EPOLLOUT armed
  bool paused = false;       // write backlog past high water: not reading
  bool read_closed = false;  // peer EOF; close once responses drain
  bool flush_pending = false;
  uint32_t inflight = 0;  // admitted items not yet answered
  std::unordered_map<uint32_t, MultiAssembly> assemblies;
};

/// A write whose ack is held until the chunk's group commit.
struct PendingAck {
  WorkItem item;
  bool applied = false;
  /// Replayed from the dedup window: the recorded outcome stands even if
  /// this chunk's sync fails — the original write already committed.
  bool dedup_hit = false;
};

struct Shard {
  size_t id = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::unique_ptr<ShardEngine> engine;
  std::thread thread;

  // ---- cross-thread mailboxes (one lock per hand-off batch) ----
  sync::Mutex mu;
  std::vector<int> pending_conns MET_GUARDED_BY(mu);
  std::vector<WorkItem> inbox MET_GUARDED_BY(mu);
  std::vector<Completion> done MET_GUARDED_BY(mu);
  /// Cost-aware admission control over inbox + run_queue. Admit/OnEnqueue
  /// are called lock-free by connection-owning threads; OnDequeue (the
  /// CoDel delay sampling) only by this shard's thread. The queued-cost
  /// bound is approximate by a hand-off batch at worst, same as the old
  /// request-count bound.
  std::unique_ptr<guard::AdmissionController> admission;
  /// Idempotency window for tokened writes; this shard's thread only.
  std::unique_ptr<guard::DedupWindow> dedup;

  // ---- owner-thread-only state ----
  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<uint32_t> slot_gen;
  std::vector<uint32_t> free_slots;
  std::deque<WorkItem> run_queue;
  std::vector<uint32_t> flush_list;   // conns with freshly appended bytes
  std::vector<uint32_t> resume_list;  // conns unpaused since last iteration
  bool reads_stopped = false;
  bool exec_drained = false;

  // ---- owner-thread scratch, reused across iterations ----
  std::vector<std::vector<WorkItem>> route_scratch;      // per target shard
  std::vector<std::vector<Completion>> out_completions;  // per owner shard
  std::vector<uint64_t> batch_keys;
  std::vector<WorkItem> batch_items;
  std::vector<LookupResult> batch_results;
  std::vector<PendingAck> write_acks;
  std::vector<uint64_t> scan_scratch;
};

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions o) : opts(std::move(o)) {}

  ServerOptions opts;
  const ServeObsMetrics& metrics = ServeObsMetrics::Get();
  const guard::GuardObsMetrics& gmetrics = guard::GuardObsMetrics::Get();
  int listen_fd = -1;
  uint16_t port = 0;
  std::vector<std::unique_ptr<Shard>> shards;
  std::thread acceptor;
  bool started = false;
  sync::Atomic<bool> stopping{false};
  sync::Atomic<bool> shut_down{false};
  sync::Atomic<size_t> reads_stopped_count{0};
  sync::Atomic<size_t> exec_drained_count{0};

  size_t ShardOf(uint64_t key) const { return MixHash64(key) % shards.size(); }

  void Wake(Shard* s) {
    uint64_t one = 1;
    ssize_t wrote = write(s->event_fd, &one, sizeof(one));
    (void)wrote;  // failure = counter overflow = a wakeup is already pending
  }

  // ---- connection lifecycle (owner thread) ----

  void UpdateEpollMask(Shard* s, uint32_t slot) {
    Conn* c = s->conns[slot].get();
    epoll_event ev{};
    ev.events = 0;
    if (!c->paused && !s->reads_stopped && !c->read_closed)
      ev.events |= EPOLLIN;
    if (c->want_write) ev.events |= EPOLLOUT;
    ev.data.u64 = ConnTag(slot, s->slot_gen[slot]);
    MET_ASSERT(epoll_ctl(s->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev) == 0);
  }

  void RegisterConn(Shard* s, int fd) {
    if (stopping.load(std::memory_order_acquire)) {
      CloseFd(fd);
      return;
    }
    uint32_t slot;
    if (!s->free_slots.empty()) {
      slot = s->free_slots.back();
      s->free_slots.pop_back();
      s->conns[slot] = std::make_unique<Conn>();
    } else {
      slot = static_cast<uint32_t>(s->conns.size());
      s->conns.push_back(std::make_unique<Conn>());
      s->slot_gen.push_back(1);
    }
    Conn* c = s->conns[slot].get();
    c->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = ConnTag(slot, s->slot_gen[slot]);
    if (epoll_ctl(s->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseFd(fd);
      s->conns[slot].reset();
      ++s->slot_gen[slot];
      s->free_slots.push_back(slot);
    }
  }

  void CloseConn(Shard* s, uint32_t slot) {
    Conn* c = s->conns[slot].get();
    if (c == nullptr) return;
    // Not registered anymore once the fd closes; kernel drops the epoll
    // entry with the last fd reference.
    CloseFd(c->fd);
    metrics.closed->Increment();
    ++s->slot_gen[slot];  // stale completions for this slot now drop
    s->conns[slot].reset();
    s->free_slots.push_back(slot);
  }

  /// A read-closed connection dies once every admitted request has been
  /// answered and the answer bytes have left.
  void MaybeFinishClose(Shard* s, uint32_t slot) {
    Conn* c = s->conns[slot].get();
    if (c == nullptr || !c->read_closed) return;
    if (c->inflight == 0 && c->wpos == c->wbuf.size()) CloseConn(s, slot);
  }

  void MarkFlush(Shard* s, uint32_t slot) {
    Conn* c = s->conns[slot].get();
    if (c == nullptr || c->flush_pending) return;
    c->flush_pending = true;
    s->flush_list.push_back(slot);
  }

  void FlushConn(Shard* s, uint32_t slot) {
    Conn* c = s->conns[slot].get();
    if (c == nullptr) return;
    if (c->wpos < c->wbuf.size()) {
      size_t written = 0;
      bool would_block = false;
      io::Status st =
          WriteSome(c->fd, std::string_view(c->wbuf).substr(c->wpos),
                    &written, &would_block);
      if (!st.ok()) {
        CloseConn(s, slot);
        return;
      }
      c->wpos += written;
    }
    size_t backlog = c->wbuf.size() - c->wpos;
    if (backlog == 0) {
      c->wbuf.clear();
      c->wpos = 0;
      bool mask_dirty = c->want_write;
      c->want_write = false;
      if (c->paused) {
        c->paused = false;
        mask_dirty = true;
        s->resume_list.push_back(slot);  // decode what buffered while paused
      }
      if (mask_dirty) UpdateEpollMask(s, slot);
      MaybeFinishClose(s, slot);
      return;
    }
    bool mask_dirty = !c->want_write;
    c->want_write = true;
    if (backlog > opts.conn_write_buffer_limit && !c->paused) {
      c->paused = true;  // stop reading until the peer drains us
      mask_dirty = true;
    }
    if (mask_dirty) UpdateEpollMask(s, slot);
  }

  void FlushPendingConns(Shard* s) {
    for (uint32_t slot : s->flush_list) {
      Conn* c = s->conns[slot].get();
      if (c != nullptr && c->flush_pending) {
        c->flush_pending = false;
        FlushConn(s, slot);
      }
    }
    s->flush_list.clear();
  }

  // ---- request routing (owner thread) ----

  void RespondNow(Shard* s, uint32_t slot, const Response& resp) {
    Conn* c = s->conns[slot].get();
    AppendResponse(resp, &c->wbuf);
    MarkFlush(s, slot);
  }

  static uint32_t CostOf(const Request& req) {
    switch (req.op) {
      case OpCode::kGet: return guard::kCostGet;
      case OpCode::kPut:
      case OpCode::kDelete: return guard::kCostWrite;
      case OpCode::kScan: return guard::CostScan(req.scan_limit);
      case OpCode::kMultiGet: return guard::CostMultiGet(req.multi_keys.size());
    }
    return guard::kCostGet;
  }

  void Enqueue(Shard* s, size_t target, const WorkItem& item) {
    shards[target]->admission->OnEnqueue(item.cost);
    s->route_scratch[target].push_back(item);
    ++s->conns[item.slot]->inflight;
  }

  /// Shed response: kShed, with the retry-after hint for guard-aware (v2)
  /// requests only — a v1 client's decoder expects empty non-OK payloads.
  void RespondShed(Shard* s, uint32_t slot, Response* err, bool v2,
                   uint32_t retry_after_ms, uint32_t request_cost) {
    metrics.shed->Increment();
    gmetrics.shed->Increment();
    gmetrics.shed_cost->Add(request_cost);
    err->status = RespStatus::kShed;
    if (v2) err->retry_after_ms = retry_after_ms == 0 ? 1 : retry_after_ms;
    RespondNow(s, slot, *err);
  }

  void RouteRequest(Shard* s, uint32_t slot, const Request& req) {
    metrics.requests->Increment();
    Response err;
    err.id = req.id;
    err.op = req.op;
    const bool v2 = req.deadline_ms != 0 || req.idem != 0;
    const uint32_t request_cost = CostOf(req);
    const uint64_t now_ns = guard::MonotonicNanos();
    const uint64_t budget_ns =
        uint64_t{req.deadline_ms} * guard::kNanosPerMilli;
    WorkItem item;
    item.owner = static_cast<uint32_t>(s->id);
    item.slot = slot;
    item.gen = s->slot_gen[slot];
    item.op = req.op;
    item.id = req.id;
    item.key = req.key;
    item.value = req.value;
    item.scan_limit = req.scan_limit;
    item.cost = request_cost;
    item.enqueue_ns = now_ns;
    item.deadline_ns = budget_ns == 0 ? 0 : now_ns + budget_ns;
    if (req.op == OpCode::kPut || req.op == OpCode::kDelete)
      item.idem = req.idem;

    if (req.op == OpCode::kMultiGet) {
      if (req.multi_keys.empty()) {
        err.status = RespStatus::kOk;
        RespondNow(s, slot, err);
        return;
      }
      // Admit all sub-reads or none: a partially-shed multiget could never
      // assemble a complete response. Each sub-read charges only its own
      // shard (kCostGet), but shedding classifies on the whole request's
      // cost — a 256-key multiget is heavy even though each piece is cheap.
      for (uint64_t k : req.multi_keys) {
        guard::AdmissionController* ctrl =
            shards[ShardOf(k)]->admission.get();
        uint32_t retry_after_ms = 0;
        if (ctrl->Admit(guard::kCostGet, request_cost, &retry_after_ms) !=
            guard::AdmissionController::Decision::kAdmit) {
          RespondShed(s, slot, &err, v2, retry_after_ms, request_cost);
          return;
        }
        if (budget_ns != 0 && ctrl->EstimatedDelayNs() > budget_ns) {
          gmetrics.deadline_admission->Increment();
          err.status = RespStatus::kDeadlineExceeded;
          RespondNow(s, slot, err);
          return;
        }
      }
      Conn* c = s->conns[slot].get();
      MultiAssembly& asmb = c->assemblies[req.id];  // client id reuse: clobber
      asmb.remaining = static_cast<uint32_t>(req.multi_keys.size());
      asmb.deadline_exceeded = false;
      asmb.entries.assign(req.multi_keys.size(), MultiGetEntry{});
      item.cost = guard::kCostGet;
      for (size_t i = 0; i < req.multi_keys.size(); ++i) {
        item.key = req.multi_keys[i];
        item.multi_index = static_cast<uint16_t>(i);
        Enqueue(s, ShardOf(item.key), item);
      }
      return;
    }

    if (req.op == OpCode::kPut && req.value == kReservedValue) {
      err.status = RespStatus::kError;
      RespondNow(s, slot, err);
      return;
    }
    Shard* target = shards[ShardOf(req.key)].get();
    uint32_t retry_after_ms = 0;
    if (target->admission->Admit(request_cost, request_cost,
                                 &retry_after_ms) !=
        guard::AdmissionController::Decision::kAdmit) {
      RespondShed(s, slot, &err, v2, retry_after_ms, request_cost);
      return;
    }
    // Deadline check at admission: if the target's standing queue delay
    // already exceeds the whole budget, queueing is dead work.
    if (budget_ns != 0 && target->admission->EstimatedDelayNs() > budget_ns) {
      gmetrics.deadline_admission->Increment();
      err.status = RespStatus::kDeadlineExceeded;
      RespondNow(s, slot, err);
      return;
    }
    Enqueue(s, target->id, item);
  }

  /// Hands this burst's routed items to their target shards: self-owned
  /// items go straight to the run queue, cross-shard batches take the
  /// target's lock once.
  void FlushRoutes(Shard* s) {
    for (size_t t = 0; t < shards.size(); ++t) {
      std::vector<WorkItem>& batch = s->route_scratch[t];
      if (batch.empty()) continue;
      if (t == s->id) {
        s->run_queue.insert(s->run_queue.end(), batch.begin(), batch.end());
      } else {
        Shard* dst = shards[t].get();
        {
          sync::MutexLock l(dst->mu);
          dst->inbox.insert(dst->inbox.end(), batch.begin(), batch.end());
        }
        Wake(dst);
      }
      batch.clear();
    }
  }

  void HandleReadable(Shard* s, uint32_t slot) {
    for (;;) {
      Conn* c = s->conns[slot].get();
      if (c == nullptr || c->paused || s->reads_stopped) break;
      bool eof = false;
      bool would_block = false;
      io::Status st = ReadSome(c->fd, &c->rbuf, &eof, &would_block);
      if (!st.ok()) {
        CloseConn(s, slot);
        break;
      }
      bool closed = false;
      while (!c->paused) {
        Request req;
        size_t consumed = c->rpos;
        DecodeResult r = DecodeRequest(c->rbuf, &consumed, &req);
        if (r == DecodeResult::kNeedMore) break;
        if (r == DecodeResult::kError) {
          metrics.proto_errors->Increment();
          CloseConn(s, slot);
          closed = true;
          break;
        }
        c->rpos = consumed;
        RouteRequest(s, slot, req);
      }
      if (closed) break;
      if (c->rpos == c->rbuf.size() || c->rpos >= 256 * 1024) {
        c->rbuf.erase(0, c->rpos);
        c->rpos = 0;
      }
      if (eof) {
        c->read_closed = true;
        UpdateEpollMask(s, slot);
        MaybeFinishClose(s, slot);
        break;
      }
      if (would_block || c->paused) break;
    }
    FlushRoutes(s);
  }

  // ---- execution (target-shard thread) ----

  void EmitCompletion(Shard* s, uint32_t owner, Completion&& c) {
    s->out_completions[owner].push_back(std::move(c));
  }

  void EmitFrame(Shard* s, const WorkItem& item, const Response& resp) {
    Completion c;
    c.slot = item.slot;
    c.gen = item.gen;
    AppendResponse(resp, &c.frame);
    EmitCompletion(s, item.owner, std::move(c));
  }

  void FlushReadGroup(Shard* s, size_t n) {
    if (n == 0) return;
    if (n == 1) {
      uint64_t v = 0;
      s->batch_results[0].found = s->engine->Get(s->batch_keys[0], &v);
      s->batch_results[0].value = v;
    } else {
      s->engine->GetBatch(s->batch_keys.data(), n, s->batch_results.data());
      metrics.batches->Increment();
      metrics.batched_gets->Add(n);
    }
    for (size_t i = 0; i < n; ++i) {
      const WorkItem& item = s->batch_items[i];
      const LookupResult& r = s->batch_results[i];
      if (item.op == OpCode::kMultiGet) {
        Completion c;
        c.slot = item.slot;
        c.gen = item.gen;
        c.multi_part = true;
        c.id = item.id;
        c.multi_index = item.multi_index;
        c.found = r.found;
        c.value = r.value;
        EmitCompletion(s, item.owner, std::move(c));
      } else {
        Response resp;
        resp.status = r.found ? RespStatus::kOk : RespStatus::kNotFound;
        resp.op = OpCode::kGet;
        resp.id = item.id;
        resp.value = r.value;
        EmitFrame(s, item, resp);
      }
    }
  }

  /// Answers an expired queued read with kDeadlineExceeded: a plain frame
  /// for GET/SCAN, a flagged assembly part for a MULTIGET sub-read.
  void ExpireItem(Shard* s, const WorkItem& item) {
    gmetrics.deadline_exec->Increment();
    if (item.op == OpCode::kMultiGet) {
      Completion c;
      c.slot = item.slot;
      c.gen = item.gen;
      c.multi_part = true;
      c.deadline = true;
      c.id = item.id;
      c.multi_index = item.multi_index;
      EmitCompletion(s, item.owner, std::move(c));
      return;
    }
    Response resp;
    resp.status = RespStatus::kDeadlineExceeded;
    resp.op = item.op;
    resp.id = item.id;
    EmitFrame(s, item, resp);
  }

  void ExecuteChunk(Shard* s) {
    const size_t chunk = s->run_queue.size();
    metrics.queue_depth->Record(chunk);
    const size_t width =
        opts.coalesce_reads ? std::max<size_t>(opts.batch_width, 1) : 1;
    size_t nb = 0;
    bool dirty = false;
    s->write_acks.clear();
    for (size_t i = 0; i < chunk; ++i) {
      WorkItem item = s->run_queue.front();
      s->run_queue.pop_front();
      // Dequeue accounting: release the item's cost and feed its queueing
      // delay to the CoDel state — expired items included, they queued too.
      const uint64_t now_ns = guard::MonotonicNanos();
      const uint64_t delay_ns =
          now_ns > item.enqueue_ns ? now_ns - item.enqueue_ns : 0;
      s->admission->OnDequeue(item.cost, delay_ns, now_ns);
      gmetrics.queue_delay_us->Record(delay_ns / 1000);
      // Deadline check at batch-coalesce time: an expired read never joins
      // a group, an expired write never reaches the engine or the group
      // commit below.
      const bool expired =
          item.deadline_ns != 0 && now_ns > item.deadline_ns;
      switch (item.op) {
        case OpCode::kGet:
        case OpCode::kMultiGet:
          if (expired) {
            ExpireItem(s, item);
            break;
          }
          s->batch_keys[nb] = item.key;
          s->batch_items[nb] = item;
          if (++nb == width) {
            FlushReadGroup(s, nb);
            nb = 0;
          }
          break;
        case OpCode::kPut:
        case OpCode::kDelete: {
          // Reads queued before a write retire first: pipelined
          // read-your-writes per connection.
          FlushReadGroup(s, nb);
          nb = 0;
          if (expired) {
            ExpireItem(s, item);
            break;
          }
          PendingAck ack;
          ack.item = item;
          if (const bool* prior = s->dedup->Find(item.idem);
              prior != nullptr) {
            // Retried tokened write: replay the recorded outcome, never
            // re-apply (at-least-once becomes effectively-once).
            gmetrics.dedup_hits->Increment();
            ack.applied = *prior;
            ack.dedup_hit = true;
          } else if (item.op == OpCode::kPut) {
            ack.applied = s->engine->Put(item.key, item.value);
            dirty = true;
          } else {
            ack.applied = s->engine->Delete(item.key);
            dirty = true;
          }
          s->write_acks.push_back(std::move(ack));
          break;
        }
        case OpCode::kScan: {
          FlushReadGroup(s, nb);
          nb = 0;
          if (expired) {
            ExpireItem(s, item);
            break;
          }
          s->engine->Scan(item.key, item.scan_limit, &s->scan_scratch);
          Response resp;
          resp.status = RespStatus::kOk;
          resp.op = OpCode::kScan;
          resp.id = item.id;
          resp.scan_values = s->scan_scratch;
          EmitFrame(s, item, resp);
          break;
        }
      }
    }
    FlushReadGroup(s, nb);
    gmetrics.overload_level->Set(s->admission->overload_level());
    gmetrics.queued_cost->Set(
        static_cast<int64_t>(s->admission->queued_cost()));

    // Group commit: one durability barrier covers every write in the chunk;
    // no ack is released before its bytes are on disk.
    bool sync_ok = true;
    if (dirty) sync_ok = s->engine->SyncWrites();
    for (const PendingAck& ack : s->write_acks) {
      Response resp;
      resp.op = ack.item.op;
      resp.id = ack.item.id;
      if (ack.dedup_hit) {
        // The original write already group-committed; its outcome stands
        // regardless of this chunk's sync.
        resp.status = ack.applied         ? RespStatus::kOk
                      : ack.item.op == OpCode::kPut ? RespStatus::kError
                                                    : RespStatus::kNotFound;
      } else if (!sync_ok) {
        resp.status = RespStatus::kError;
      } else if (ack.item.op == OpCode::kPut) {
        resp.status = ack.applied ? RespStatus::kOk : RespStatus::kError;
      } else {
        resp.status = ack.applied ? RespStatus::kOk : RespStatus::kNotFound;
      }
      // Record tokened outcomes only after a successful sync: a dedup hit
      // must never ack a write that is not actually durable.
      if (!ack.dedup_hit && sync_ok && ack.item.idem != 0)
        s->dedup->Insert(ack.item.idem, ack.applied);
      EmitFrame(s, ack.item, resp);
    }
    DispatchCompletions(s);
  }

  void DispatchCompletions(Shard* s) {
    for (size_t o = 0; o < shards.size(); ++o) {
      std::vector<Completion>& batch = s->out_completions[o];
      if (batch.empty()) continue;
      if (o == s->id) {
        for (Completion& c : batch) ApplyCompletion(s, std::move(c));
      } else {
        Shard* dst = shards[o].get();
        {
          sync::MutexLock l(dst->mu);
          for (Completion& c : batch) dst->done.push_back(std::move(c));
        }
        Wake(dst);
      }
      batch.clear();
    }
  }

  // ---- completion application (owner thread) ----

  void ApplyCompletion(Shard* s, Completion&& c) {
    if (c.slot >= s->conns.size()) return;
    Conn* conn = s->conns[c.slot].get();
    if (conn == nullptr || s->slot_gen[c.slot] != c.gen) return;  // conn died
    if (conn->inflight > 0) --conn->inflight;
    if (c.multi_part) {
      auto it = conn->assemblies.find(c.id);
      if (it == conn->assemblies.end()) return;
      MultiAssembly& asmb = it->second;
      if (c.deadline) asmb.deadline_exceeded = true;
      if (c.multi_index < asmb.entries.size()) {
        asmb.entries[c.multi_index].found = c.found;
        asmb.entries[c.multi_index].value = c.value;
      }
      if (--asmb.remaining == 0) {
        Response resp;
        // One expired sub-read expires the whole op: a partial multiget
        // result would be indistinguishable from a complete one.
        resp.status = asmb.deadline_exceeded ? RespStatus::kDeadlineExceeded
                                             : RespStatus::kOk;
        resp.op = OpCode::kMultiGet;
        resp.id = c.id;
        if (!asmb.deadline_exceeded) resp.multi = std::move(asmb.entries);
        conn->assemblies.erase(it);
        AppendResponse(resp, &conn->wbuf);
        MarkFlush(s, c.slot);
      }
    } else {
      conn->wbuf.append(c.frame);
      MarkFlush(s, c.slot);
    }
  }

  // ---- threads -------------------------------------------------------

  void AcceptorLoop() {
    size_t next = 0;
    while (!stopping.load(std::memory_order_acquire)) {
      pollfd p{};
      p.fd = listen_fd;
      p.events = POLLIN;
      int n = poll(&p, 1, /*timeout_ms=*/50);
      if (n < 0 && errno != EINTR) break;
      if (n <= 0) continue;
      for (;;) {
        int fd = -1;
        io::Status st = AcceptConn(listen_fd, &fd);
        if (!st.ok() || fd < 0) break;
        metrics.accepted->Increment();
        Shard* s = shards[next % shards.size()].get();
        ++next;
        {
          sync::MutexLock l(s->mu);
          s->pending_conns.push_back(fd);
        }
        Wake(s);
      }
    }
  }

  void PullMailboxes(Shard* s, std::vector<int>* new_conns,
                     std::vector<WorkItem>* pulled,
                     std::vector<Completion>* completions) {
    sync::MutexLock l(s->mu);
    new_conns->swap(s->pending_conns);
    if (!s->inbox.empty()) {
      pulled->insert(pulled->end(), s->inbox.begin(), s->inbox.end());
      s->inbox.clear();
    }
    completions->swap(s->done);
  }

  void ShardLoop(Shard* s) {
    std::vector<epoll_event> events(128);
    std::vector<int> new_conns;
    std::vector<WorkItem> pulled;
    std::vector<Completion> completions;
    met::Timer drain_timer;
    bool draining = false;
    for (;;) {
      bool stop = stopping.load(std::memory_order_acquire);
      if (stop && !s->reads_stopped) {
        s->reads_stopped = true;
        reads_stopped_count.fetch_add(1, std::memory_order_acq_rel);
        drain_timer.Reset();
        draining = true;
        for (uint32_t slot = 0; slot < s->conns.size(); ++slot)
          if (s->conns[slot] != nullptr) UpdateEpollMask(s, slot);
      }
      int timeout = -1;
      if (!s->run_queue.empty() || !s->resume_list.empty())
        timeout = 0;
      else if (stop)
        timeout = 10;
      int n = epoll_wait(s->epoll_fd, events.data(),
                         static_cast<int>(events.size()), timeout);
      if (n < 0) n = 0;  // EINTR: fall through, mailboxes still get pulled

      // Drain the eventfd BEFORE pulling the mailboxes. A producer pushes
      // then signals; draining after the pull could clear a signal whose
      // push we had already consumed while a second push slipped in between
      // — leaving work in the inbox with no pending wakeup (lost wakeup,
      // epoll_wait(-1) blocks forever).
      uint64_t drained = 0;
      ssize_t got = read(s->event_fd, &drained, sizeof(drained));
      (void)got;  // EAGAIN just means nothing was signaled

      new_conns.clear();
      pulled.clear();
      completions.clear();
      PullMailboxes(s, &new_conns, &pulled, &completions);
      for (int fd : new_conns) RegisterConn(s, fd);
      s->run_queue.insert(s->run_queue.end(), pulled.begin(), pulled.end());

      for (int i = 0; i < n; ++i) {
        uint64_t tag = events[i].data.u64;
        if (tag == kEventFdTag) continue;  // drained above, before the pull
        uint32_t slot = static_cast<uint32_t>(tag & 0xffffffffu);
        uint32_t gen = static_cast<uint32_t>(tag >> 32);
        if (slot >= s->conns.size() || s->conns[slot] == nullptr ||
            s->slot_gen[slot] != gen)
          continue;  // stale event for a closed/reused slot
        uint32_t ev = events[i].events;
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0 &&
            (ev & (EPOLLIN | EPOLLOUT)) == 0) {
          CloseConn(s, slot);
          continue;
        }
        if ((ev & EPOLLIN) != 0) HandleReadable(s, slot);
        if ((ev & EPOLLOUT) != 0 && s->conns[slot] != nullptr)
          FlushConn(s, slot);
      }

      if (!s->resume_list.empty()) {
        // Conns unpaused by a drained write buffer: decode what piled up.
        std::vector<uint32_t> resume;
        resume.swap(s->resume_list);
        for (uint32_t slot : resume)
          if (s->conns[slot] != nullptr) HandleReadable(s, slot);
      }

      for (Completion& c : completions) ApplyCompletion(s, std::move(c));
      if (!s->run_queue.empty()) ExecuteChunk(s);
      FlushPendingConns(s);

      if (!stop) continue;

      // ---- graceful drain ----
      // Phase 1: every shard stops reading (reads_stopped_count barrier), so
      // inboxes can only shrink from here. Phase 2: a shard with empty
      // queues is exec-drained — sticky, because no new work can appear.
      // Phase 3: once all shards are exec-drained, exit when the remaining
      // completions have been applied and every response byte has left.
      if (!s->exec_drained &&
          reads_stopped_count.load(std::memory_order_acquire) ==
              shards.size()) {
        bool inbox_empty;
        {
          sync::MutexLock l(s->mu);
          inbox_empty = s->inbox.empty();
        }
        if (inbox_empty && s->run_queue.empty()) {
          s->exec_drained = true;
          exec_drained_count.fetch_add(1, std::memory_order_acq_rel);
        }
      }
      bool force = draining && drain_timer.ElapsedSeconds() > 5.0;
      if (s->exec_drained &&
          exec_drained_count.load(std::memory_order_acquire) ==
              shards.size()) {
        bool done_empty;
        {
          sync::MutexLock l(s->mu);
          done_empty = s->done.empty();
        }
        bool flushed = true;
        for (const auto& c : s->conns)
          if (c != nullptr && c->wpos < c->wbuf.size()) flushed = false;
        if ((done_empty && flushed) || force) break;
      } else if (force) {
        break;  // a peer wedged mid-drain; don't hang Shutdown forever
      }
    }
    for (uint32_t slot = 0; slot < s->conns.size(); ++slot)
      if (s->conns[slot] != nullptr) CloseConn(s, slot);
  }

  io::Status Start() {
    MET_ASSERT(!started);
    size_t n = opts.num_shards;
    if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
    io::Status st = OpenListener(opts.port, &listen_fd, &port);
    if (!st.ok()) return st;

    io::Env* env = opts.env != nullptr ? opts.env : &io::Env::Posix();
    if (opts.durable && !opts.engine_factory) {
      if (io::Status mk = env->MkDir(opts.dir); !mk.ok()) {
        CloseFd(listen_fd);
        listen_fd = -1;
        return mk;
      }
    }
    shards.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto s = std::make_unique<Shard>();
      s->id = i;
      if (opts.engine_factory) {
        s->engine = opts.engine_factory(i);
      } else if (opts.durable) {
        io::Status open_st;
        s->engine = NewDurableEngine(opts.dir + "/shard-" + std::to_string(i),
                                     env, &open_st);
        if (s->engine == nullptr) {
          TearDownFds();
          return open_st;
        }
      } else if (opts.locked_memory_engine) {
        s->engine = NewLockedMemoryEngine();
      } else {
        s->engine = NewMemoryEngine();
      }
      MET_ASSERT(s->engine != nullptr);
      guard::AdmissionOptions ao;
      ao.cost_capacity = opts.queue_capacity;
      ao.delay_target_ns = opts.delay_target_us * 1000;
      ao.interval_ns = opts.delay_interval_us * 1000;
      s->admission = std::make_unique<guard::AdmissionController>(ao);
      s->dedup = std::make_unique<guard::DedupWindow>(opts.dedup_window);
      s->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
      s->event_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      TrackFd(s->epoll_fd);
      TrackFd(s->event_fd);
      if (s->epoll_fd < 0 || s->event_fd < 0) {
        TearDownFds();
        return io::Status::IoError("epoll/eventfd setup failed", errno);
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kEventFdTag;
      MET_ASSERT(epoll_ctl(s->epoll_fd, EPOLL_CTL_ADD, s->event_fd, &ev) == 0);
      s->route_scratch.resize(n);
      s->out_completions.resize(n);
      size_t width = std::max<size_t>(opts.batch_width, 1);
      s->batch_keys.resize(width);
      s->batch_items.resize(width);
      s->batch_results.resize(width);
      shards.push_back(std::move(s));
    }
    for (auto& s : shards)
      s->thread = std::thread([this, sp = s.get()] { ShardLoop(sp); });
    acceptor = std::thread([this] { AcceptorLoop(); });
    started = true;
    return io::Status::OK();
  }

  void TearDownFds() {
    if (listen_fd >= 0) {
      CloseFd(listen_fd);
      listen_fd = -1;
    }
    for (auto& s : shards) {
      if (s->epoll_fd >= 0) CloseFd(s->epoll_fd);
      if (s->event_fd >= 0) CloseFd(s->event_fd);
    }
    shards.clear();
  }

  void Shutdown() {
    if (!started) return;
    bool expected = false;
    if (!shut_down.compare_exchange_strong(expected, true)) return;
    stopping.store(true, std::memory_order_release);
    for (auto& s : shards) Wake(s.get());
    if (acceptor.joinable()) acceptor.join();
    CloseFd(listen_fd);
    listen_fd = -1;
    for (auto& s : shards)
      if (s->thread.joinable()) s->thread.join();
    for (auto& s : shards) {
      CloseFd(s->epoll_fd);
      CloseFd(s->event_fd);
    }
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { impl_->Shutdown(); }

io::Status Server::Start() { return impl_->Start(); }

void Server::Shutdown() { impl_->Shutdown(); }

uint16_t Server::port() const { return impl_->port; }

size_t Server::num_shards() const { return impl_->shards.size(); }

}  // namespace met::serve
