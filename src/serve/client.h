// Blocking pipelined client for the met::serve wire protocol. One instance
// drives one connection from one thread: Send* calls append encoded frames
// to an output buffer and record the id -> opcode mapping (responses can
// come back out of order — the server coalesces reads across connections —
// so the opcode needed to decode a response is looked up by the echoed id),
// Flush() pushes the buffered frames, Recv()/RecvFor() block for responses.
// The load generator keeps a deep pipeline with Send*/Flush/Recv; tests use
// the one-shot conveniences (Get/Put/...) that round-trip a single request.
#ifndef MET_SERVE_CLIENT_H_
#define MET_SERVE_CLIENT_H_

#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "io/status.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace met::serve {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  io::Status Connect(const std::string& host, uint16_t port) {
    Close();
    io::Status st = ConnectTcp(host, port, &fd_);
    if (st.ok() && recv_timeout_ms_ != 0) ApplyRecvTimeout();
    return st;
  }

  /// Caps every blocking receive (Recv/RecvFor/Fill) at `ms` milliseconds
  /// via SO_RCVTIMEO; an expired wait surfaces as an EAGAIN IoError — test
  /// with IsTimeout(). 0 restores fully blocking reads. Survives
  /// reconnects; may be called before or after Connect().
  void SetRecvTimeout(uint32_t ms) {
    recv_timeout_ms_ = ms;
    if (fd_ >= 0) ApplyRecvTimeout();
  }

  /// True when a receive Status is a SO_RCVTIMEO expiry rather than a dead
  /// connection: the op is unresolved (timeout), not failed.
  static bool IsTimeout(const io::Status& st) {
    return st.IsIoError() &&
           (st.errno_value() == EAGAIN || st.errno_value() == EWOULDBLOCK);
  }

  /// Deadline budget attached to every subsequently sent request (0 =
  /// none). The server refuses the request with kDeadlineExceeded instead
  /// of answering it late.
  void set_deadline_ms(uint32_t ms) { deadline_ms_ = ms; }

  void Close() {
    if (fd_ >= 0) {
      CloseFd(fd_);
      fd_ = -1;
    }
    rbuf_.clear();
    rpos_ = 0;
    out_.clear();
    inflight_.clear();
    stashed_.clear();
  }

  bool connected() const { return fd_ >= 0; }
  size_t inflight() const { return inflight_.size(); }
  /// The underlying socket, for callers that poll() readability themselves
  /// (the open-loop load generator) before calling Fill().
  int fd() const { return fd_; }

  // ---- pipelined interface ----

  uint32_t SendGet(uint64_t key) {
    Request r;
    r.op = OpCode::kGet;
    r.key = key;
    return Send(&r);
  }
  /// `idem` (non-zero) is an idempotency token: a retry carrying the same
  /// token is acked from the server's dedup window instead of re-applying.
  uint32_t SendPut(uint64_t key, uint64_t value, uint64_t idem = 0) {
    Request r;
    r.op = OpCode::kPut;
    r.key = key;
    r.value = value;
    r.idem = idem;
    return Send(&r);
  }
  uint32_t SendDelete(uint64_t key, uint64_t idem = 0) {
    Request r;
    r.op = OpCode::kDelete;
    r.key = key;
    r.idem = idem;
    return Send(&r);
  }
  uint32_t SendScan(uint64_t start, uint32_t limit) {
    Request r;
    r.op = OpCode::kScan;
    r.key = start;
    r.scan_limit = limit;
    return Send(&r);
  }
  uint32_t SendMultiGet(std::vector<uint64_t> keys) {
    Request r;
    r.op = OpCode::kMultiGet;
    r.multi_keys = std::move(keys);
    return Send(&r);
  }

  io::Status Flush() {
    if (out_.empty()) return io::Status::OK();
    io::Status st = SendAll(fd_, out_);
    out_.clear();
    return st;
  }

  /// Blocks for the next response in arrival order (not send order).
  io::Status Recv(Response* resp) {
    if (!stashed_.empty()) {
      auto it = stashed_.begin();
      *resp = std::move(it->second);
      stashed_.erase(it);
      return io::Status::OK();
    }
    return RecvFromWire(resp);
  }

  /// Decodes one buffered response without touching the socket; *have is
  /// false when the buffer holds no complete frame (call Fill() after
  /// poll() reports the socket readable). Checks stashed responses first.
  io::Status TryRecv(Response* resp, bool* have) {
    *have = false;
    if (!stashed_.empty()) {
      auto it = stashed_.begin();
      *resp = std::move(it->second);
      stashed_.erase(it);
      *have = true;
      return io::Status::OK();
    }
    return DecodeBuffered(resp, have);
  }

  /// Blocking read of at least one byte into the receive buffer.
  io::Status Fill() { return RecvSome(fd_, &rbuf_); }

  /// Blocks until the response for `id` arrives, stashing any other
  /// responses that land first (they come back via later Recv/RecvFor).
  io::Status RecvFor(uint32_t id, Response* resp) {
    auto stashed = stashed_.find(id);
    if (stashed != stashed_.end()) {
      *resp = std::move(stashed->second);
      stashed_.erase(stashed);
      return io::Status::OK();
    }
    for (;;) {
      Response r;
      if (io::Status st = RecvFromWire(&r); !st.ok()) return st;
      if (r.id == id) {
        *resp = std::move(r);
        return io::Status::OK();
      }
      stashed_[r.id] = std::move(r);
    }
  }

  // ---- one-shot conveniences (single round trip) ----

  io::Status Get(uint64_t key, Response* resp) {
    return Roundtrip(SendGet(key), resp);
  }
  io::Status Put(uint64_t key, uint64_t value, Response* resp) {
    return Roundtrip(SendPut(key, value), resp);
  }
  io::Status Delete(uint64_t key, Response* resp) {
    return Roundtrip(SendDelete(key), resp);
  }
  io::Status Scan(uint64_t start, uint32_t limit, Response* resp) {
    return Roundtrip(SendScan(start, limit), resp);
  }
  io::Status MultiGet(std::vector<uint64_t> keys, Response* resp) {
    return Roundtrip(SendMultiGet(std::move(keys)), resp);
  }

 private:
  uint32_t Send(Request* r) {
    r->id = next_id_++;
    r->deadline_ms = deadline_ms_;
    inflight_[r->id] = r->op;
    AppendRequest(*r, &out_);
    return r->id;
  }

  void ApplyRecvTimeout() {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms_ / 1000;
    tv.tv_usec = static_cast<suseconds_t>((recv_timeout_ms_ % 1000) * 1000);
    // Best effort: a socket that rejects SO_RCVTIMEO still works, it just
    // blocks; timeout-dependent callers notice via their own deadlines.
    (void)setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  io::Status Roundtrip(uint32_t id, Response* resp) {
    if (io::Status st = Flush(); !st.ok()) return st;
    return RecvFor(id, resp);
  }

  io::Status DecodeBuffered(Response* resp, bool* have) {
    *have = false;
    // A response's payload shape depends on the request opcode, so peek
    // the echoed id (fixed offset) to find it before decoding.
    if (rbuf_.size() - rpos_ < kFrameHeaderBytes + kFrameBodyMinBytes)
      return io::Status::OK();
    uint32_t id = GetU32(rbuf_.data() + rpos_ + kFrameHeaderBytes + 1);
    auto it = inflight_.find(id);
    if (it == inflight_.end())
      return io::Status::InvalidArgument("response for unknown id");
    size_t consumed = rpos_;
    DecodeResult r = DecodeResponse(rbuf_, &consumed, it->second, resp);
    if (r == DecodeResult::kError)
      return io::Status::InvalidArgument("malformed response frame");
    if (r == DecodeResult::kNeedMore) return io::Status::OK();
    rpos_ = consumed;
    if (rpos_ == rbuf_.size()) {
      rbuf_.clear();
      rpos_ = 0;
    }
    inflight_.erase(it);
    *have = true;
    return io::Status::OK();
  }

  io::Status RecvFromWire(Response* resp) {
    for (;;) {
      bool have = false;
      if (io::Status st = DecodeBuffered(resp, &have); !st.ok()) return st;
      if (have) return io::Status::OK();
      if (io::Status st = RecvSome(fd_, &rbuf_); !st.ok()) return st;
    }
  }

  int fd_ = -1;
  uint32_t next_id_ = 1;
  uint32_t recv_timeout_ms_ = 0;
  uint32_t deadline_ms_ = 0;
  std::string rbuf_;
  size_t rpos_ = 0;
  std::string out_;
  std::unordered_map<uint32_t, OpCode> inflight_;
  std::unordered_map<uint32_t, Response> stashed_;
};

}  // namespace met::serve

#endif  // MET_SERVE_CLIENT_H_
