// Height-Optimized Trie (Binna et al., SIGMOD'18) — static variant for the
// Figure 6.19 integration experiment.
//
// HOT collapses a binary patricia trie into nodes of fanout up to
// kMaxFanout (32): each node stores the set of discriminative bit positions
// of the patricia subtrees it absorbs and, per entry, the "partial key"
// formed by extracting those bits. Lookups extract the same bits from the
// search key, binary-search the partial keys, and descend; a final full-key
// compare at the leaf makes lookups exact (patricia skips non-discriminative
// bits). Keys store only what ART would store in leaves, so HOT's key
// storage "completeness" sits between ART and the B+tree on the Figure 6.7
// spectrum.
//
// This implementation is built statically from sorted keys with greedy
// top-down packing (split each patricia subtree into at most kMaxFanout
// frontier subtrees per node), which yields height within one of the
// optimum. The dynamic insertion algorithms of the original are out of
// scope (the Chapter 6 evaluation only needs lookups over a bulk-loaded
// tree).
#ifndef MET_HOT_HOT_H_
#define MET_HOT_HOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "prof/memory_breakdown.h"

namespace met {

class Hot {
 public:
  using Value = uint64_t;
  static constexpr size_t kMaxFanout = 32;

  Hot() = default;
  ~Hot() { DestroyNode(root_); }

  Hot(const Hot&) = delete;
  Hot& operator=(const Hot&) = delete;

  /// Builds from sorted, unique keys with parallel values.
  void Build(const std::vector<std::string>& keys,
             const std::vector<Value>& values);

  /// Unified point lookup (met::ReadOnlyPointIndex surface).
  bool Lookup(std::string_view key, Value* value = nullptr) const;

  [[deprecated("use Lookup()")]] bool Find(std::string_view key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }


  size_t size() const { return size_; }
  size_t MemoryBytes() const { return allocated_bytes_; }
  size_t MemoryUse() const { return MemoryBytes(); }
  /// Maximum number of HOT nodes on a root-to-leaf path.
  size_t Height() const;

  /// Component attribution; node_bytes_/leaf_bytes_ are accumulated at the
  /// same allocation sites as allocated_bytes_, so TotalBytes() ==
  /// MemoryBytes() by construction.
  MemoryBreakdown Breakdown() const {
    MemoryBreakdown b("hot");
    b.Add("nodes", node_bytes_);
    b.Add("leaves", leaf_bytes_);
    return b;
  }

 private:
  // Binary patricia trie node (build-time only).
  struct PatNode {
    uint32_t bit = 0;  // discriminative bit position (global, MSB-first)
    std::unique_ptr<PatNode> zero, one;
    int32_t leaf = -1;      // key index if leaf
    uint32_t num_leaves = 0;
  };

  struct Leaf {
    Value value;
    uint32_t key_len;
    char key_data[1];
  };

  // A HOT node: sorted discriminative bit positions + per-entry partial keys
  // (entries ordered by partial key; patricia order == key order).
  struct Node {
    std::vector<uint32_t> bits;         // <= kMaxFanout - 1 positions
    std::vector<uint32_t> partial;      // per entry, extracted bit pattern
    std::vector<void*> children;        // Node* or tagged Leaf*
  };

  static bool IsLeaf(const void* p) {
    return (reinterpret_cast<uintptr_t>(p) & 1) != 0;
  }
  static const Leaf* AsLeaf(const void* p) {
    return reinterpret_cast<const Leaf*>(reinterpret_cast<uintptr_t>(p) &
                                         ~uintptr_t{1});
  }
  static void* TagLeaf(Leaf* l) {
    return reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(l) | 1);
  }

  std::unique_ptr<PatNode> BuildPatricia(const std::vector<std::string>& keys,
                                         size_t lo, size_t hi);
  void* BuildHotNode(const PatNode* pat, const std::vector<std::string>& keys,
                     const std::vector<Value>& values);
  Leaf* MakeLeaf(const std::string& key, Value value);
  void DestroyNode(void* p);

  static int KeyBit(std::string_view key, uint32_t bit) {
    size_t byte = bit / 8;
    if (byte >= key.size()) return 0;  // keys are implicitly zero-padded
    return (static_cast<unsigned char>(key[byte]) >> (7 - bit % 8)) & 1;
  }
  static uint32_t ExtractBits(std::string_view key,
                              const std::vector<uint32_t>& bits);

  static size_t NodeHeight(const void* p);

  void* root_ = nullptr;
  size_t size_ = 0;
  size_t allocated_bytes_ = 0;
  size_t node_bytes_ = 0;
  size_t leaf_bytes_ = 0;
};

}  // namespace met

#endif  // MET_HOT_HOT_H_
