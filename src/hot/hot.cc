#include "hot/hot.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/assert.h"

namespace met {

// ---------------------------------------------------------------------------
// Patricia construction (build-time scaffolding)
// ---------------------------------------------------------------------------

namespace {

/// First bit position (MSB-first, zero-padded) where a and b differ.
/// Precondition: a != b under zero padding.
uint32_t FirstDiffBit(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  for (size_t i = 0; i < max_len; ++i) {
    unsigned char ca = i < a.size() ? static_cast<unsigned char>(a[i]) : 0;
    unsigned char cb = i < b.size() ? static_cast<unsigned char>(b[i]) : 0;
    if (ca != cb) {
      unsigned char x = ca ^ cb;
      int lead = 0;
      while (!(x & 0x80)) {
        x <<= 1;
        ++lead;
      }
      return static_cast<uint32_t>(i * 8 + lead);
    }
  }
  MET_ASSERT(false, "duplicate key under zero padding");
  return 0;
}

}  // namespace

std::unique_ptr<Hot::PatNode> Hot::BuildPatricia(
    const std::vector<std::string>& keys, size_t lo, size_t hi) {
  auto node = std::make_unique<PatNode>();
  node->num_leaves = static_cast<uint32_t>(hi - lo);
  if (hi - lo == 1) {
    node->leaf = static_cast<int32_t>(lo);
    return node;
  }
  node->bit = FirstDiffBit(keys[lo], keys[hi - 1]);
  // Sorted keys: the discriminative bit is monotone across the range.
  size_t split = lo + 1;
  {
    size_t a = lo, b = hi;  // first index with bit == 1
    while (a < b) {
      size_t mid = (a + b) / 2;
      if (KeyBit(keys[mid], node->bit) == 0)
        a = mid + 1;
      else
        b = mid;
    }
    split = a;
  }
  MET_DCHECK(split > lo && split < hi);
  node->zero = BuildPatricia(keys, lo, split);
  node->one = BuildPatricia(keys, split, hi);
  return node;
}

// ---------------------------------------------------------------------------
// HOT node packing
// ---------------------------------------------------------------------------

Hot::Leaf* Hot::MakeLeaf(const std::string& key, Value value) {
  size_t bytes = sizeof(Leaf) + key.size();
  void* mem = ::operator new(bytes);
  Leaf* l = static_cast<Leaf*>(mem);
  l->value = value;
  l->key_len = static_cast<uint32_t>(key.size());
  std::memcpy(l->key_data, key.data(), key.size());
  allocated_bytes_ += bytes;
  leaf_bytes_ += bytes;
  return l;
}

void* Hot::BuildHotNode(const PatNode* pat,
                        const std::vector<std::string>& keys,
                        const std::vector<Value>& values) {
  if (pat->leaf >= 0)
    return TagLeaf(MakeLeaf(keys[pat->leaf], values[pat->leaf]));

  // Greedy frontier expansion: repeatedly split the largest frontier
  // subtree until the node reaches kMaxFanout entries. Each frontier
  // element remembers the (bit, value) decisions on its path from `pat`.
  struct Frontier {
    const PatNode* node;
    std::vector<std::pair<uint32_t, int>> path;  // (bit position, 0/1)
  };
  std::vector<Frontier> frontier{{pat, {}}};
  while (frontier.size() < kMaxFanout) {
    size_t best = frontier.size();
    uint32_t best_leaves = 1;
    for (size_t i = 0; i < frontier.size(); ++i) {
      if (frontier[i].node->leaf >= 0) continue;
      if (frontier[i].node->num_leaves > best_leaves) {
        best_leaves = frontier[i].node->num_leaves;
        best = i;
      }
    }
    if (best == frontier.size()) break;  // all frontier elements are leaves
    Frontier f = std::move(frontier[best]);
    Frontier zero{f.node->zero.get(), f.path};
    zero.path.emplace_back(f.node->bit, 0);
    Frontier one{f.node->one.get(), std::move(f.path)};
    one.path.emplace_back(f.node->bit, 1);
    frontier[best] = std::move(zero);
    frontier.insert(frontier.begin() + best + 1, std::move(one));
  }

  // The node's bit set = union of all path bits, ascending.
  std::vector<uint32_t> bits;
  for (const auto& f : frontier)
    for (const auto& [bit, v] : f.path) bits.push_back(bit);
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  MET_ASSERT(bits.size() < kMaxFanout);

  Node* node = new Node();
  node->bits = std::move(bits);
  node->partial.reserve(frontier.size() * 2);
  node->children.reserve(frontier.size());
  // Per entry: mask/value over the node's bit set (sparse partial keys).
  for (const auto& f : frontier) {
    uint32_t mask = 0, value = 0;
    for (const auto& [bit, v] : f.path) {
      size_t j = std::lower_bound(node->bits.begin(), node->bits.end(), bit) -
                 node->bits.begin();
      mask |= 1u << j;
      if (v) value |= 1u << j;
    }
    node->partial.push_back(mask);
    node->partial.push_back(value);
    node->children.push_back(BuildHotNode(f.node, keys, values));
  }
  node->bits.shrink_to_fit();
  node->partial.shrink_to_fit();
  node->children.shrink_to_fit();
  size_t node_footprint = sizeof(Node) +
                          node->bits.capacity() * sizeof(uint32_t) +
                          node->partial.capacity() * sizeof(uint32_t) +
                          node->children.capacity() * sizeof(void*);
  allocated_bytes_ += node_footprint;
  node_bytes_ += node_footprint;
  return node;
}

void Hot::Build(const std::vector<std::string>& keys,
                const std::vector<Value>& values) {
  MET_ASSERT(keys.size() == values.size());
  MET_DCHECK(std::is_sorted(keys.begin(), keys.end()));
  DestroyNode(root_);
  root_ = nullptr;
  allocated_bytes_ = 0;
  node_bytes_ = 0;
  leaf_bytes_ = 0;
  size_ = keys.size();
  if (keys.empty()) return;
  std::unique_ptr<PatNode> pat = BuildPatricia(keys, 0, keys.size());
  root_ = BuildHotNode(pat.get(), keys, values);
}

void Hot::DestroyNode(void* p) {
  if (p == nullptr) return;
  if (IsLeaf(p)) {
    ::operator delete(const_cast<Leaf*>(AsLeaf(p)));
    return;
  }
  Node* n = static_cast<Node*>(p);
  for (void* c : n->children) DestroyNode(c);
  delete n;
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

uint32_t Hot::ExtractBits(std::string_view key,
                          const std::vector<uint32_t>& bits) {
  uint32_t v = 0;
  for (size_t j = 0; j < bits.size(); ++j)
    if (KeyBit(key, bits[j])) v |= 1u << j;
  return v;
}

bool Hot::Lookup(std::string_view key, Value* value) const {
  const void* p = root_;
  while (p != nullptr) {
    if (IsLeaf(p)) {
      const Leaf* l = AsLeaf(p);
      if (std::string_view(l->key_data, l->key_len) == key) {
        if (value != nullptr) *value = l->value;
        return true;
      }
      return false;
    }
    const Node* n = static_cast<const Node*>(p);
    uint32_t ex = ExtractBits(key, n->bits);
    // Exactly one entry's sparse partial key matches the extracted bits
    // (the search key follows exactly one patricia path).
    const void* next = nullptr;
    for (size_t i = 0; i < n->children.size(); ++i) {
      if ((ex & n->partial[2 * i]) == n->partial[2 * i + 1]) {
        next = n->children[i];
        break;
      }
    }
    p = next;
  }
  return false;
}

size_t Hot::NodeHeight(const void* p) {
  if (p == nullptr || IsLeaf(p)) return 0;
  const Node* n = static_cast<const Node*>(p);
  size_t h = 0;
  for (const void* c : n->children) h = std::max(h, NodeHeight(c));
  return h + 1;
}

size_t Hot::Height() const { return NodeHeight(root_); }

}  // namespace met
