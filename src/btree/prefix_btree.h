// Prefix B+tree (Bayer & Unterauer '77), the Chapter 6 integration target
// with partial key storage: each static leaf page stores its entries'
// common prefix once plus per-entry suffixes, so it benefits less from HOPE
// than a full-key B+tree but more than a trie (Figure 6.7's spectrum).
#ifndef MET_BTREE_PREFIX_BTREE_H_
#define MET_BTREE_PREFIX_BTREE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "prof/memory_breakdown.h"

namespace met {

template <typename Value = uint64_t, int PageEntries = 64>
class PrefixBTree {
 public:
  /// Builds from sorted, unique string keys.
  void Build(const std::vector<std::string>& keys,
             const std::vector<Value>& values) {
    pages_.clear();
    size_ = keys.size();
    for (size_t i = 0; i < keys.size(); i += PageEntries) {
      size_t n = std::min<size_t>(PageEntries, keys.size() - i);
      Page page;
      page.first_key = keys[i];
      // Common prefix of the page = common prefix of first and last keys.
      const std::string& first = keys[i];
      const std::string& last = keys[i + n - 1];
      size_t cp = 0;
      while (cp < std::min(first.size(), last.size()) && first[cp] == last[cp])
        ++cp;
      page.prefix = first.substr(0, cp);
      page.suffix_off.push_back(0);
      for (size_t j = 0; j < n; ++j) {
        page.suffixes.append(keys[i + j], cp, std::string::npos);
        page.suffix_off.push_back(static_cast<uint32_t>(page.suffixes.size()));
        page.values.push_back(values[i + j]);
      }
      page.suffixes.shrink_to_fit();
      pages_.push_back(std::move(page));
    }
  }

  /// Unified point lookup (met::ReadOnlyPointIndex surface).
  bool Lookup(std::string_view key, Value* value = nullptr) const {
    if (pages_.empty()) return false;
    size_t p = PageFor(key);
    const Page& page = pages_[p];
    if (key.size() < page.prefix.size() ||
        key.substr(0, page.prefix.size()) != page.prefix)
      return false;
    std::string_view suffix = key.substr(page.prefix.size());
    size_t idx = LowerBoundInPage(page, suffix);
    if (idx >= page.values.size() || page.SuffixAt(idx) != suffix) return false;
    if (value != nullptr) *value = page.values[idx];
    return true;
  }

  size_t Scan(std::string_view key, size_t n, std::vector<Value>* out) const {
    if (pages_.empty()) return 0;
    size_t cnt = 0;
    size_t p = PageFor(key);
    // First entry in the page whose full key is >= `key`.
    size_t idx = 0;
    const Page& page = pages_[p];
    std::string_view prefix(page.prefix);
    if (key.size() > prefix.size() && key.substr(0, prefix.size()) == prefix) {
      idx = LowerBoundInPage(page, key.substr(prefix.size()));
    } else if (key > prefix) {
      idx = page.values.size();  // key diverges above every prefixed entry
    }  // else key <= prefix: every entry qualifies
    for (size_t pi = p; pi < pages_.size() && cnt < n; ++pi, idx = 0) {
      const Page& pg = pages_[pi];
      for (size_t j = idx; j < pg.values.size() && cnt < n; ++j, ++cnt)
        if (out != nullptr) out->push_back(pg.values[j]);
    }
    return cnt;
  }

  size_t size() const { return size_; }

  [[deprecated("use Lookup()")]] bool Find(std::string_view key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const auto& p : pages_) {
      bytes += sizeof(Page) + p.first_key.capacity() + p.prefix.capacity() +
               p.suffixes.capacity() +
               p.suffix_off.capacity() * sizeof(uint32_t) +
               p.values.capacity() * sizeof(Value);
    }
    return bytes;
  }

  /// Component attribution; TotalBytes() == MemoryBytes() (same terms).
  MemoryBreakdown Breakdown() const {
    size_t headers = 0, fences = 0, prefixes = 0, suffixes = 0, offsets = 0,
           values = 0;
    for (const auto& p : pages_) {
      headers += sizeof(Page);
      fences += p.first_key.capacity();
      prefixes += p.prefix.capacity();
      suffixes += p.suffixes.capacity();
      offsets += p.suffix_off.capacity() * sizeof(uint32_t);
      values += p.values.capacity() * sizeof(Value);
    }
    MemoryBreakdown b("prefix_btree");
    b.Add("page_headers", headers);
    b.Add("fence_keys", fences);
    b.Add("shared_prefixes", prefixes);
    b.Add("suffix_blobs", suffixes);
    b.Add("suffix_offsets", offsets);
    b.Add("values", values);
    return b;
  }

 private:
  struct Page {
    std::string first_key;  // uncompressed fence key
    std::string prefix;
    std::string suffixes;
    std::vector<uint32_t> suffix_off;
    std::vector<Value> values;

    std::string_view SuffixAt(size_t i) const {
      return std::string_view(suffixes.data() + suffix_off[i],
                              suffix_off[i + 1] - suffix_off[i]);
    }
  };

  size_t PageFor(std::string_view key) const {
    auto it = std::upper_bound(
        pages_.begin(), pages_.end(), key,
        [](std::string_view k, const Page& p) { return k < p.first_key; });
    return it == pages_.begin() ? 0 : (it - pages_.begin()) - 1;
  }

  static size_t LowerBoundInPage(const Page& page, std::string_view suffix) {
    size_t lo = 0, hi = page.values.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (page.SuffixAt(mid) < suffix)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  std::vector<Page> pages_;
  size_t size_ = 0;
};

}  // namespace met

#endif  // MET_BTREE_PREFIX_BTREE_H_
