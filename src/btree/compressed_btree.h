// Compressed (static) B+tree: the Compression Rule (Section 2.4) applied on
// top of the Compact B+tree. Leaf pages are block-compressed with zlib
// (stand-in for Snappy, which is not available offline; see DESIGN.md) so a
// point query decompresses at most one page. A CLOCK-replacement node cache
// keeps recently decompressed pages to amortize the decompression cost.
#ifndef MET_BTREE_COMPRESSED_BTREE_H_
#define MET_BTREE_COMPRESSED_BTREE_H_

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "btree/compact_btree.h"
#include "check/fwd.h"
#include "common/assert.h"
#include "prof/memory_breakdown.h"

namespace met {

namespace compressed_internal {

/// zlib round-trip helpers (level 1: favour speed like Snappy).
std::string Deflate(const std::string& raw);
std::string Inflate(const std::string& compressed, size_t raw_size);

/// Non-aborting Inflate used by the met::check validator: returns false on a
/// corrupt stream or decoded-size mismatch instead of asserting.
bool TryInflate(const std::string& compressed, size_t raw_size,
                std::string* out);

}  // namespace compressed_internal

template <typename Key, typename Value = uint64_t, int PageEntries = 64>
class CompressedBTree {
 public:
  using Entry = MergeEntry<Key, Value>;

  explicit CompressedBTree(size_t cache_pages = 1024) : cache_(cache_pages) {}

  /// Builds from sorted, unique entries.
  void Build(std::vector<Entry>&& entries) {
    pages_.clear();
    first_keys_.clear();
    size_ = entries.size();
    for (size_t i = 0; i < entries.size(); i += PageEntries) {
      size_t n = std::min<size_t>(PageEntries, entries.size() - i);
      first_keys_.push_back(entries[i].key);
      std::string raw = SerializePage(&entries[i], n);
      pages_.push_back({compressed_internal::Deflate(raw), raw.size(),
                        static_cast<uint32_t>(n)});
    }
    cache_.Reset(pages_.size());
  }

  void MergeApply(const std::vector<Entry>& updates) {
    std::vector<Entry> all = DecodeAll();
    std::vector<Entry> merged;
    merged.reserve(all.size() + updates.size());
    size_t i = 0, j = 0;
    while (i < all.size() || j < updates.size()) {
      if (j >= updates.size() || (i < all.size() && all[i].key < updates[j].key)) {
        merged.push_back(std::move(all[i++]));
      } else if (i >= all.size() || updates[j].key < all[i].key) {
        if (!updates[j].deleted) merged.push_back(updates[j]);
        ++j;
      } else {
        if (!updates[j].deleted) merged.push_back(updates[j]);
        ++i;
        ++j;
      }
    }
    Build(std::move(merged));
  }

  /// Unified point lookup (met::ReadOnlyPointIndex surface).
  bool Lookup(const Key& key, Value* value = nullptr) const {
    if (pages_.empty()) return false;
    size_t p = PageFor(key);
    const std::vector<Entry>& entries = PageEntriesRef(p);
    auto it = std::lower_bound(
        entries.begin(), entries.end(), key,
        [](const Entry& e, const Key& k) { return e.key < k; });
    if (it == entries.end() || !(it->key == key)) return false;
    if (value != nullptr) *value = it->value;
    return true;
  }

  [[deprecated("use Lookup()")]] bool Find(const Key& key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }

  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    if (pages_.empty()) return 0;
    size_t cnt = 0;
    size_t p = PageFor(key);
    bool first = true;
    while (p < pages_.size() && cnt < n) {
      const std::vector<Entry>& entries = PageEntriesRef(p);
      size_t start = 0;
      if (first) {
        start = std::lower_bound(
                    entries.begin(), entries.end(), key,
                    [](const Entry& e, const Key& k) { return e.key < k; }) -
                entries.begin();
        first = false;
      }
      for (size_t i = start; i < entries.size() && cnt < n; ++i, ++cnt)
        if (out != nullptr) out->push_back(entries[i].value);
      ++p;
    }
    return cnt;
  }

  /// Scan that also materializes keys (hybrid-index stage interface).
  size_t ScanPairs(const Key& key, size_t n,
                   std::vector<std::pair<Key, Value>>* out) const {
    if (pages_.empty()) return 0;
    size_t cnt = 0;
    size_t p = PageFor(key);
    bool first = true;
    while (p < pages_.size() && cnt < n) {
      const std::vector<Entry>& entries = PageEntriesRef(p);
      size_t start = 0;
      if (first) {
        start = std::lower_bound(
                    entries.begin(), entries.end(), key,
                    [](const Entry& e, const Key& k) { return e.key < k; }) -
                entries.begin();
        first = false;
      }
      for (size_t i = start; i < entries.size() && cnt < n; ++i, ++cnt)
        out->emplace_back(entries[i].key, entries[i].value);
      ++p;
    }
    return cnt;
  }

  /// Streams all entries in order (decompressing page by page).
  std::vector<Entry> DecodeAll() const {
    std::vector<Entry> all;
    all.reserve(size_);
    for (size_t p = 0; p < pages_.size(); ++p) {
      std::vector<Entry> entries =
          DeserializePage(compressed_internal::Inflate(pages_[p].blob,
                                                       pages_[p].raw_size),
                          pages_[p].count);
      for (auto& e : entries) all.push_back(std::move(e));
    }
    return all;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const auto& p : pages_) bytes += p.blob.capacity();
    for (const auto& k : first_keys_) bytes += sizeof(Key) + btree_internal::KeyHeapBytes(k);
    bytes += cache_.MemoryBytes();
    return bytes;
  }

  /// Component attribution; TotalBytes() == MemoryBytes() (same terms).
  MemoryBreakdown Breakdown() const {
    size_t blob_bytes = 0, dir_bytes = 0;
    for (const auto& p : pages_) blob_bytes += p.blob.capacity();
    for (const auto& k : first_keys_)
      dir_bytes += sizeof(Key) + btree_internal::KeyHeapBytes(k);
    MemoryBreakdown b("compressed_btree");
    b.Add("compressed_pages", blob_bytes);
    b.Add("page_directory", dir_bytes);
    b.Add("decompressed_cache", cache_.MemoryBytes());
    return b;
  }

  /// Verifies page-directory order, per-page zlib round-trips, and entry
  /// ordering. No-op unless MET_CHECK_ENABLED; see
  /// check/compressed_btree_check.h.
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return ValidateImpl(os);
#else
    (void)os;
    return true;
#endif
  }

  /// Cache hit statistics (Figure 5.9 ablation).
  size_t cache_hits() const { return cache_.hits; }
  size_t cache_misses() const { return cache_.misses; }
  void set_cache_pages(size_t n) { cache_.capacity = n; cache_.Reset(pages_.size()); }

 private:
  struct Page {
    std::string blob;
    size_t raw_size;
    uint32_t count;
  };

  // CLOCK-replacement cache of decompressed pages.
  struct Cache {
    explicit Cache(size_t cap) : capacity(cap) {}

    void Reset(size_t num_pages) {
      slots.assign(capacity, {SIZE_MAX, {}, false});
      page_to_slot.assign(num_pages, SIZE_MAX);
      hand = 0;
      hits = misses = 0;
    }

    struct Slot {
      size_t page = SIZE_MAX;
      std::vector<Entry> entries;
      bool referenced = false;
    };

    size_t capacity;
    mutable std::vector<Slot> slots;
    mutable std::vector<size_t> page_to_slot;
    mutable size_t hand = 0;
    mutable size_t hits = 0, misses = 0;

    size_t MemoryBytes() const {
      size_t bytes = 0;
      for (const auto& s : slots) {
        bytes += s.entries.capacity() * sizeof(Entry);
        for (const auto& e : s.entries)
          bytes += btree_internal::KeyHeapBytes(e.key);
      }
      return bytes;
    }
  };

  static std::string SerializePage(const Entry* entries, size_t n) {
    std::string raw;
    for (size_t i = 0; i < n; ++i) {
      if constexpr (std::is_same_v<Key, std::string>) {
        uint32_t len = static_cast<uint32_t>(entries[i].key.size());
        raw.append(reinterpret_cast<const char*>(&len), sizeof(len));
        raw.append(entries[i].key);
      } else {
        raw.append(reinterpret_cast<const char*>(&entries[i].key), sizeof(Key));
      }
      raw.append(reinterpret_cast<const char*>(&entries[i].value), sizeof(Value));
    }
    return raw;
  }

  static std::vector<Entry> DeserializePage(const std::string& raw, uint32_t n) {
    std::vector<Entry> entries;
    entries.reserve(n);
    size_t off = 0;
    for (uint32_t i = 0; i < n; ++i) {
      Entry e;
      if constexpr (std::is_same_v<Key, std::string>) {
        uint32_t len;
        std::memcpy(&len, raw.data() + off, sizeof(len));
        off += sizeof(len);
        e.key.assign(raw.data() + off, len);
        off += len;
      } else {
        std::memcpy(&e.key, raw.data() + off, sizeof(Key));
        off += sizeof(Key);
      }
      std::memcpy(&e.value, raw.data() + off, sizeof(Value));
      off += sizeof(Value);
      entries.push_back(std::move(e));
    }
    return entries;
  }

  size_t PageFor(const Key& key) const {
    // Last page whose first key is <= key.
    auto it = std::upper_bound(first_keys_.begin(), first_keys_.end(), key);
    return it == first_keys_.begin() ? 0 : (it - first_keys_.begin()) - 1;
  }

  const std::vector<Entry>& PageEntriesRef(size_t p) const {
    if (cache_.capacity > 0 && cache_.page_to_slot[p] != SIZE_MAX) {
      auto& slot = cache_.slots[cache_.page_to_slot[p]];
      slot.referenced = true;
      ++cache_.hits;
      return slot.entries;
    }
    ++cache_.misses;
    std::vector<Entry> entries =
        DeserializePage(compressed_internal::Inflate(pages_[p].blob,
                                                     pages_[p].raw_size),
                        pages_[p].count);
    if (cache_.capacity == 0) {
      scratch_ = std::move(entries);
      return scratch_;
    }
    // CLOCK eviction.
    while (true) {
      auto& slot = cache_.slots[cache_.hand];
      if (!slot.referenced) {
        if (slot.page != SIZE_MAX) cache_.page_to_slot[slot.page] = SIZE_MAX;
        slot.page = p;
        slot.entries = std::move(entries);
        slot.referenced = true;
        cache_.page_to_slot[p] = cache_.hand;
        cache_.hand = (cache_.hand + 1) % cache_.capacity;
        return slot.entries;
      }
      slot.referenced = false;
      cache_.hand = (cache_.hand + 1) % cache_.capacity;
    }
  }

  bool ValidateImpl(std::ostream& os) const;  // check/compressed_btree_check.h
  friend struct check::TestAccess;

  std::vector<Page> pages_;
  std::vector<Key> first_keys_;
  size_t size_ = 0;
  mutable Cache cache_;
  mutable std::vector<Entry> scratch_;
};

}  // namespace met

#endif  // MET_BTREE_COMPRESSED_BTREE_H_
