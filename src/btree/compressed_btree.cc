#include "btree/compressed_btree.h"

#include <zlib.h>

#include <cassert>

namespace met {
namespace compressed_internal {

std::string Deflate(const std::string& raw) {
  uLongf bound = compressBound(raw.size());
  std::string out(bound, '\0');
  int rc = compress2(reinterpret_cast<Bytef*>(out.data()), &bound,
                     reinterpret_cast<const Bytef*>(raw.data()), raw.size(),
                     /*level=*/1);
  assert(rc == Z_OK);
  (void)rc;
  out.resize(bound);
  out.shrink_to_fit();
  return out;
}

std::string Inflate(const std::string& compressed, size_t raw_size) {
  std::string out(raw_size, '\0');
  uLongf len = raw_size;
  int rc = uncompress(reinterpret_cast<Bytef*>(out.data()), &len,
                      reinterpret_cast<const Bytef*>(compressed.data()),
                      compressed.size());
  assert(rc == Z_OK && len == raw_size);
  (void)rc;
  return out;
}

}  // namespace compressed_internal
}  // namespace met
