#include "btree/compressed_btree.h"

#include <zlib.h>

#include "common/assert.h"

namespace met {
namespace compressed_internal {

std::string Deflate(const std::string& raw) {
  uLongf bound = compressBound(raw.size());
  std::string out(bound, '\0');
  int rc = compress2(reinterpret_cast<Bytef*>(out.data()), &bound,
                     reinterpret_cast<const Bytef*>(raw.data()), raw.size(),
                     /*level=*/1);
  MET_ASSERT(rc == Z_OK, "zlib compress2 failed");
  out.resize(bound);
  out.shrink_to_fit();
  return out;
}

bool TryInflate(const std::string& compressed, size_t raw_size,
                std::string* out) {
  out->assign(raw_size, '\0');
  uLongf len = raw_size;
  int rc = uncompress(reinterpret_cast<Bytef*>(out->data()), &len,
                      reinterpret_cast<const Bytef*>(compressed.data()),
                      compressed.size());
  return rc == Z_OK && len == raw_size;
}

std::string Inflate(const std::string& compressed, size_t raw_size) {
  std::string out;
  bool ok = TryInflate(compressed, raw_size, &out);
  MET_ASSERT(ok, "zlib uncompress failed or size mismatch");
  return out;
}

}  // namespace compressed_internal
}  // namespace met
