// Compact (static) B+tree: the result of applying the Compaction and
// Structural-Reduction rules of Chapter 2 to the B+tree.
//
//  * Compaction: every "node" (entry group) is 100% full; no slack slots.
//  * Structural reduction: no child pointers. The leaf level is one
//    contiguous sorted array; the internal levels are implicit — each level
//    stores the leaf index of the first entry of every Fanout-sized group of
//    the level below, so a child's location is computed, not stored.
//
// For std::string keys the leaf keys live in a single concatenated byte blob
// addressed by 32-bit offsets (removing per-string allocation overhead), and
// the internal levels reference leaf indices, so they cost 4 bytes per
// separator regardless of key size.
//
// Merge support (Section 5.2.1): MergeApply() appends a sorted run of new
// entries after the existing sorted entries and restores order with an
// in-place merge, then rebuilds the implicit internal levels bottom-up.
#ifndef MET_BTREE_COMPACT_BTREE_H_
#define MET_BTREE_COMPACT_BTREE_H_

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "check/fwd.h"
#include "common/assert.h"
#include "prof/memory_breakdown.h"

namespace met {

/// An entry fed into Build/MergeApply. `deleted` marks a tombstone that
/// removes the matching key from the static stage during merge.
template <typename Key, typename Value>
struct MergeEntry {
  Key key;
  Value value;
  bool deleted = false;
};

namespace compact_internal {

/// Storage policy for fixed-size keys: one struct-of-arrays pair.
template <typename Key, typename Value>
class FlatStore {
 public:
  using KeyView = const Key&;

  void Clear() {
    keys_.clear();
    values_.clear();
  }

  size_t size() const { return keys_.size(); }
  KeyView KeyAt(size_t i) const { return keys_[i]; }
  const Value& ValueAt(size_t i) const { return values_[i]; }
  Value& MutableValueAt(size_t i) { return values_[i]; }

  void Append(const Key& k, const Value& v) {
    keys_.push_back(k);
    values_.push_back(v);
  }

  /// Replaces contents with `entries` (sorted, unique, no tombstones).
  void Assign(std::vector<MergeEntry<Key, Value>>&& entries) {
    Clear();
    keys_.reserve(entries.size());
    values_.reserve(entries.size());
    for (auto& e : entries) Append(e.key, e.value);
  }

  size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(Key) + values_.capacity() * sizeof(Value);
  }

  /// Same terms as MemoryBytes(), attributed per column.
  void AppendBreakdown(MemoryBreakdown* b) const {
    b->Add("keys", keys_.capacity() * sizeof(Key));
    b->Add("values", values_.capacity() * sizeof(Value));
  }

  void ShrinkToFit() {
    keys_.shrink_to_fit();
    values_.shrink_to_fit();
  }

  /// met::check hook: store-level consistency.
  bool StoreConsistent(std::string* detail) const {
    if (keys_.size() != values_.size()) {
      *detail = "key/value column size mismatch";
      return false;
    }
    return true;
  }

 private:
  friend struct check::TestAccess;

  std::vector<Key> keys_;
  std::vector<Value> values_;
};

/// Storage policy for string keys: concatenated blob + offsets.
template <typename Value>
class BlobStore {
 public:
  using KeyView = std::string_view;

  void Clear() {
    blob_.clear();
    offsets_.assign(1, 0);
    values_.clear();
  }

  BlobStore() { offsets_.push_back(0); }

  size_t size() const { return values_.size(); }

  std::string_view KeyAt(size_t i) const {
    return std::string_view(blob_.data() + offsets_[i],
                            offsets_[i + 1] - offsets_[i]);
  }

  const Value& ValueAt(size_t i) const { return values_[i]; }
  Value& MutableValueAt(size_t i) { return values_[i]; }

  void Append(std::string_view k, const Value& v) {
    blob_.append(k);
    offsets_.push_back(static_cast<uint32_t>(blob_.size()));
    values_.push_back(v);
  }

  void Assign(std::vector<MergeEntry<std::string, Value>>&& entries) {
    Clear();
    values_.reserve(entries.size());
    offsets_.reserve(entries.size() + 1);
    for (auto& e : entries) Append(e.key, e.value);
  }

  size_t MemoryBytes() const {
    return blob_.capacity() + offsets_.capacity() * sizeof(uint32_t) +
           values_.capacity() * sizeof(Value);
  }

  /// Same terms as MemoryBytes(), attributed per column.
  void AppendBreakdown(MemoryBreakdown* b) const {
    b->Add("key_blob", blob_.capacity());
    b->Add("key_offsets", offsets_.capacity() * sizeof(uint32_t));
    b->Add("values", values_.capacity() * sizeof(Value));
  }

  void ShrinkToFit() {
    blob_.shrink_to_fit();
    offsets_.shrink_to_fit();
    values_.shrink_to_fit();
  }

  /// met::check hook: offset-table consistency (monotone, bounded by blob).
  bool StoreConsistent(std::string* detail) const {
    if (offsets_.size() != values_.size() + 1 || offsets_[0] != 0) {
      *detail = "offset table size mismatch";
      return false;
    }
    for (size_t i = 1; i < offsets_.size(); ++i) {
      if (offsets_[i] < offsets_[i - 1]) {
        *detail = "offsets not monotone at " + std::to_string(i);
        return false;
      }
    }
    if (offsets_.back() != blob_.size()) {
      *detail = "last offset does not match blob size";
      return false;
    }
    return true;
  }

 private:
  friend struct check::TestAccess;

  std::string blob_;
  std::vector<uint32_t> offsets_;
  std::vector<Value> values_;
};

template <typename Key, typename Value>
struct StorePolicy {
  using type = FlatStore<Key, Value>;
};

template <typename Value>
struct StorePolicy<std::string, Value> {
  using type = BlobStore<Value>;
};

}  // namespace compact_internal

template <typename Key, typename Value = uint64_t, int Fanout = 32>
class CompactBTree {
 public:
  using Store = typename compact_internal::StorePolicy<Key, Value>::type;
  using KeyView = typename Store::KeyView;
  using Entry = MergeEntry<Key, Value>;

  CompactBTree() = default;

  /// Builds from sorted, unique (key, value) pairs.
  void Build(std::vector<Entry>&& entries) {
    MET_DCHECK(std::is_sorted(entries.begin(), entries.end(),
                          [](const Entry& a, const Entry& b) { return a.key < b.key; }));
    store_.Assign(std::move(entries));
    store_.ShrinkToFit();
    BuildLevels();
  }

  /// Merges a sorted run of new entries (which may shadow or tombstone
  /// existing keys) into this tree and rebuilds the internal levels.
  /// New entries win over existing entries with equal keys.
  void MergeApply(const std::vector<Entry>& updates) {
    std::vector<Entry> merged;
    merged.reserve(store_.size() + updates.size());
    size_t i = 0, j = 0;
    while (i < store_.size() || j < updates.size()) {
      if (j >= updates.size()) {
        merged.push_back(Entry{Key(store_.KeyAt(i)), store_.ValueAt(i), false});
        ++i;
      } else if (i >= store_.size()) {
        if (!updates[j].deleted) merged.push_back(updates[j]);
        ++j;
      } else {
        KeyView sk = store_.KeyAt(i);
        const Key& uk = updates[j].key;
        if (sk < uk) {
          merged.push_back(Entry{Key(sk), store_.ValueAt(i), false});
          ++i;
        } else if (uk < sk) {
          if (!updates[j].deleted) merged.push_back(updates[j]);
          ++j;
        } else {  // equal: update shadows (or deletes) the static entry
          if (!updates[j].deleted) merged.push_back(updates[j]);
          ++i;
          ++j;
        }
      }
    }
    store_.Assign(std::move(merged));
    store_.ShrinkToFit();
    BuildLevels();
  }

  /// Unified point lookup (met::ReadOnlyPointIndex surface).
  bool Lookup(const Key& key, Value* value = nullptr) const {
    size_t idx = LowerBoundIndex(key);
    if (idx >= store_.size() || !(KeyEquals(store_.KeyAt(idx), key))) return false;
    if (value != nullptr) *value = store_.ValueAt(idx);
    return true;
  }

  /// Overwrites the value of an existing key in place (used by hybrid
  /// secondary indexes). Returns false if absent.
  bool UpdateInPlace(const Key& key, const Value& value) {
    size_t idx = LowerBoundIndex(key);
    if (idx >= store_.size() || !(KeyEquals(store_.KeyAt(idx), key))) return false;
    store_.MutableValueAt(idx) = value;
    return true;
  }

  [[deprecated("use Lookup()")]] bool Find(const Key& key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }

  /// Index of the first entry with key >= `key` (== size() if none).
  /// Descends the implicit separator levels top-down: at each level the
  /// candidate separators for the current search range are contiguous, so a
  /// group's children are located by index arithmetic, not pointers.
  size_t LowerBoundIndex(const Key& key) const {
    size_t lo = 0, hi = store_.size();
    if (!levels_.empty()) {
      size_t idx_lo = 0, idx_hi = levels_.back().size();
      for (size_t l = levels_.size(); l-- > 0;) {
        const std::vector<uint32_t>& level = levels_[l];
        // First separator in [idx_lo, idx_hi) whose key is >= `key`.
        size_t a = idx_lo, b = idx_hi;
        while (a < b) {
          size_t mid = (a + b) / 2;
          if (KeyLess(store_.KeyAt(level[mid]), key))
            a = mid + 1;
          else
            b = mid;
        }
        // Descend into the group whose first key precedes `key`.
        size_t group = (a == idx_lo) ? idx_lo : a - 1;
        if (l > 0) {
          idx_lo = group * Fanout;
          idx_hi = std::min(idx_lo + Fanout, levels_[l - 1].size());
        } else {
          lo = group * Fanout;
          hi = std::min(lo + Fanout, store_.size());
        }
      }
    }
    // Final binary search within the leaf group.
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (KeyLess(store_.KeyAt(mid), key))
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  class Iterator {
   public:
    Iterator() = default;
    Iterator(const CompactBTree* tree, size_t idx) : tree_(tree), idx_(idx) {}

    bool Valid() const { return tree_ != nullptr && idx_ < tree_->size(); }
    KeyView key() const { return tree_->store_.KeyAt(idx_); }
    const Value& value() const { return tree_->store_.ValueAt(idx_); }
    void Next() { ++idx_; }
    size_t index() const { return idx_; }

   private:
    const CompactBTree* tree_ = nullptr;
    size_t idx_ = 0;
  };

  Iterator Begin() const { return Iterator(this, 0); }
  Iterator LowerBound(const Key& key) const {
    return Iterator(this, LowerBoundIndex(key));
  }

  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    size_t cnt = 0;
    for (Iterator it = LowerBound(key); it.Valid() && cnt < n; it.Next(), ++cnt)
      if (out != nullptr) out->push_back(it.value());
    return cnt;
  }

  /// Scan that also materializes keys (hybrid-index stage interface).
  size_t ScanPairs(const Key& key, size_t n,
                   std::vector<std::pair<Key, Value>>* out) const {
    size_t cnt = 0;
    for (Iterator it = LowerBound(key); it.Valid() && cnt < n; it.Next(), ++cnt)
      out->emplace_back(Key(it.key()), it.value());
    return cnt;
  }

  size_t size() const { return store_.size(); }
  bool empty() const { return store_.size() == 0; }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    size_t bytes = store_.MemoryBytes();
    for (const auto& level : levels_) bytes += level.capacity() * sizeof(uint32_t);
    return bytes;
  }

  /// Component attribution; TotalBytes() == MemoryBytes() (same terms).
  MemoryBreakdown Breakdown() const {
    MemoryBreakdown b("compact_btree");
    MemoryBreakdown leaves("leaf_store");
    store_.AppendBreakdown(&leaves);
    b.AddChild("leaf_store", std::move(leaves));
    size_t sep = 0;
    for (const auto& level : levels_) sep += level.capacity() * sizeof(uint32_t);
    b.Add("separator_levels", sep);
    return b;
  }

  /// Read access for merges into other structures.
  KeyView KeyAt(size_t i) const { return store_.KeyAt(i); }
  const Value& ValueAt(size_t i) const { return store_.ValueAt(i); }

  /// Verifies sorted-unique leaf order and the implicit separator levels.
  /// No-op unless MET_CHECK_ENABLED; see check/compact_btree_check.h.
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return ValidateImpl(os);
#else
    (void)os;
    return true;
#endif
  }

 private:
  bool ValidateImpl(std::ostream& os) const;  // check/compact_btree_check.h
  friend struct check::TestAccess;

  static bool KeyLess(KeyView a, const Key& b) { return a < b; }
  static bool KeyEquals(KeyView a, const Key& b) { return a == b; }

  void BuildLevels() {
    levels_.clear();
    size_t prev_size = store_.size();
    // Every separator stores the *entry* index of its group's first key, so
    // comparisons at any level read straight from the leaf store.
    while (prev_size > Fanout) {
      std::vector<uint32_t> level;
      size_t groups = (prev_size + Fanout - 1) / Fanout;
      level.reserve(groups);
      for (size_t g = 0; g < groups; ++g) {
        size_t child = g * Fanout;
        uint32_t entry_idx = levels_.empty()
                                 ? static_cast<uint32_t>(child)
                                 : levels_.back()[child];
        level.push_back(entry_idx);
      }
      levels_.push_back(std::move(level));
      prev_size = groups;
    }
  }

  Store store_;
  std::vector<std::vector<uint32_t>> levels_;
};

}  // namespace met

#endif  // MET_BTREE_COMPACT_BTREE_H_
