// Concurrent B+tree synchronized with optimistic lock coupling (common/olc.h;
// Leis et al., DaMoN'16). Readers descend lock-free, validating each node's
// version after reading from it and restarting from the root on conflict;
// writers descend the same way and take per-node write locks only at the
// node(s) they mutate. Splits are *eager*: a writer that passes a full node
// splits it (locking parent then child) and restarts, so a child split never
// has to propagate upward through unlocked ancestors.
//
// Structural choices that keep the concurrent paths simple:
//   - Nodes are never freed or merged while the tree is live: underflowing
//     leaves simply stay (the hybrid index drains the dynamic stage into the
//     static stage long before slack matters), so no epoch reclamation is
//     needed here — a traversal can never reach freed memory. The epoch
//     token on the concurrent API is accepted for interface uniformity with
//     OlcArt, which does retire nodes.
//   - Leaves are chained (B-link style next pointers) for ordered scans;
//     the chain only ever gains nodes, in place.
//   - All optimistically-read payload fields (counts, keys, children,
//     values) are std::atomic accessed relaxed/acquire; the version word
//     (sync::Atomic) carries the synchronization and the model-checker
//     yield points.
//
// Every mutation runs a bounded restart loop (olc::RestartBudget) and
// reports MutateOutcome::kRetry on exhaustion instead of spinning — see
// common/olc.h for why unbounded restart loops are banned.
#ifndef MET_BTREE_OLC_BTREE_H_
#define MET_BTREE_OLC_BTREE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <ostream>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/index_api.h"
#include "common/olc.h"
#include "prof/memory_breakdown.h"

namespace met {

template <typename KeyT, size_t NodeBytes = 512>
class OlcBTree {
 public:
  using Key = KeyT;
  using Value = uint64_t;
  static_assert(std::is_trivially_copyable_v<Key>,
                "OlcBTree keys live in std::atomic slots");

  explicit OlcBTree(int restart_budget = olc::kDefaultRestartBudget)
      : restart_budget_(restart_budget) {
    root_.store(NewLeaf(), std::memory_order_release);
  }
  ~OlcBTree() { Destroy(root_.load(std::memory_order_acquire)); }

  OlcBTree(const OlcBTree&) = delete;
  OlcBTree& operator=(const OlcBTree&) = delete;

  // --- concurrent mutation surface (met::ConcurrentPointIndex) ---
  // The token witnesses an epoch pin; OlcBTree itself never reclaims nodes
  // (see header comment), so these simply forward to the native ops.

  MutateOutcome Insert(const Key& key, Value value, EpochToken) {
    return InsertUnique(key, value);
  }
  MutateOutcome Update(const Key& key, Value value, EpochToken) {
    return UpdateIfPresent(key, value);
  }
  MutateOutcome Remove(const Key& key, EpochToken) { return Remove(key); }
  bool Lookup(const Key& key, Value* value, EpochToken) const {
    return Lookup(key, value);
  }

  // --- native outcome-returning operations ---

  /// Inserts or overwrites; kInserted when the key was absent, kUpdated when
  /// it was present (old value in *prev).
  MutateOutcome Upsert(const Key& key, Value value, Value* prev = nullptr) {
    olc::RestartBudget budget(restart_budget_);
    while (budget.Next()) {
      bool restart = false;
      LeafNode* leaf = DescendToLockedLeaf(key, restart);
      if (restart) continue;
      uint16_t c = leaf->count.load(std::memory_order_relaxed);
      int pos = LeafPos(leaf, key, c);
      if (FoundAt(leaf, key, pos, c)) {
        Value old = leaf->values[pos].load(std::memory_order_relaxed);
        leaf->values[pos].store(value, std::memory_order_relaxed);
        leaf->lock.WriteUnlock();
        if (prev != nullptr) *prev = old;
        return MutateOutcome::kUpdated;
      }
      LeafInsertAt(leaf, pos, key, value, c);
      leaf->lock.WriteUnlock();
      size_.fetch_add(1, std::memory_order_relaxed);
      return MutateOutcome::kInserted;
    }
    return MutateOutcome::kRetry;
  }

  /// Unique insert: kExists (tree unchanged) when the key is present.
  MutateOutcome InsertUnique(const Key& key, Value value) {
    olc::RestartBudget budget(restart_budget_);
    while (budget.Next()) {
      bool restart = false;
      LeafNode* leaf = DescendToLockedLeaf(key, restart);
      if (restart) continue;
      uint16_t c = leaf->count.load(std::memory_order_relaxed);
      int pos = LeafPos(leaf, key, c);
      if (FoundAt(leaf, key, pos, c)) {
        leaf->lock.WriteUnlock();
        return MutateOutcome::kExists;
      }
      LeafInsertAt(leaf, pos, key, value, c);
      leaf->lock.WriteUnlock();
      size_.fetch_add(1, std::memory_order_relaxed);
      return MutateOutcome::kInserted;
    }
    return MutateOutcome::kRetry;
  }

  /// Overwrites an existing key's value; kNotFound if absent.
  MutateOutcome UpdateIfPresent(const Key& key, Value value,
                                Value* prev = nullptr) {
    olc::RestartBudget budget(restart_budget_);
    while (budget.Next()) {
      bool restart = false;
      LeafNode* leaf = DescendToLockedLeaf(key, restart);
      if (restart) continue;
      uint16_t c = leaf->count.load(std::memory_order_relaxed);
      int pos = LeafPos(leaf, key, c);
      if (!FoundAt(leaf, key, pos, c)) {
        leaf->lock.WriteUnlock();
        return MutateOutcome::kNotFound;
      }
      Value old = leaf->values[pos].load(std::memory_order_relaxed);
      leaf->values[pos].store(value, std::memory_order_relaxed);
      leaf->lock.WriteUnlock();
      if (prev != nullptr) *prev = old;
      return MutateOutcome::kUpdated;
    }
    return MutateOutcome::kRetry;
  }

  /// Removes a key; kNotFound if absent. Leaves are never merged or freed.
  MutateOutcome Remove(const Key& key, Value* prev = nullptr) {
    olc::RestartBudget budget(restart_budget_);
    while (budget.Next()) {
      bool restart = false;
      LeafNode* leaf = DescendToLockedLeaf(key, restart);
      if (restart) continue;
      uint16_t c = leaf->count.load(std::memory_order_relaxed);
      int pos = LeafPos(leaf, key, c);
      if (!FoundAt(leaf, key, pos, c)) {
        leaf->lock.WriteUnlock();
        return MutateOutcome::kNotFound;
      }
      Value old = leaf->values[pos].load(std::memory_order_relaxed);
      for (int i = pos; i + 1 < c; ++i) {
        leaf->keys[i].store(leaf->keys[i + 1].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        leaf->values[i].store(
            leaf->values[i + 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      leaf->count.store(static_cast<uint16_t>(c - 1),
                        std::memory_order_relaxed);
      leaf->lock.WriteUnlock();
      size_.fetch_sub(1, std::memory_order_relaxed);
      if (prev != nullptr) *prev = old;
      return MutateOutcome::kRemoved;
    }
    return MutateOutcome::kRetry;
  }

  // --- reads ---

  /// Unified point lookup. Readers always make progress in finitely many
  /// retries outside of sustained writer interference, so this loops without
  /// a budget; TryLookup is the budgeted flavor for bounded explorations.
  bool Lookup(const Key& key, Value* value = nullptr) const {
    for (;;) {
      bool restart = false;
      std::optional<bool> r = LookupAttempt(key, value, restart);
      if (!restart) return *r;
    }
  }

  /// Budget-bounded lookup: nullopt when the restart budget was exhausted.
  std::optional<bool> TryLookup(const Key& key, Value* value = nullptr) const {
    olc::RestartBudget budget(restart_budget_);
    while (budget.Next()) {
      bool restart = false;
      std::optional<bool> r = LookupAttempt(key, value, restart);
      if (!restart) return r;
    }
    return std::nullopt;
  }

  /// Collects up to `n` (key, value) pairs from lower_bound(from) in key
  /// order, appending to *out. Committed per validated leaf: a concurrent
  /// writer can make the snapshot fuzzy across leaves but never within one.
  size_t ScanPairs(const Key& from, size_t n,
                   std::vector<std::pair<Key, Value>>* out) const {
    size_t added = 0;
    Key cursor = from;
    bool have_last = false;
    Key last{};
    while (added < n) {
      bool restart = false;
      LeafNode* leaf = nullptr;
      uint64_t v = 0;
      DescendToLeafRead(cursor, &leaf, &v, restart);
      if (restart) continue;
      bool chain_broken = false;
      while (leaf != nullptr && added < n) {
        std::pair<Key, Value> batch[kLeafSlots];
        int got = 0;
        uint16_t c = leaf->count.load(std::memory_order_relaxed);
        if (c > kLeafSlots) c = kLeafSlots;  // torn read; validation catches
        for (uint16_t i = 0; i < c; ++i) {
          Key k = leaf->keys[i].load(std::memory_order_relaxed);
          bool wanted = have_last ? (last < k) : !(k < cursor);
          if (wanted)
            batch[got++] = {k, leaf->values[i].load(std::memory_order_relaxed)};
        }
        LeafNode* next = leaf->next.load(std::memory_order_acquire);
        restart = false;
        leaf->lock.ReadUnlockOrRestart(v, restart);
        if (restart) {
          chain_broken = true;
          break;
        }
        for (int i = 0; i < got && added < n; ++i) {
          if (out != nullptr) out->push_back(batch[i]);
          last = batch[i].first;
          have_last = true;
          ++added;
        }
        if (added >= n) return added;
        leaf = next;
        if (leaf != nullptr) {
          v = leaf->lock.ReadLockOrRestart(restart);
          if (restart) {
            chain_broken = true;
            break;
          }
        }
      }
      if (!chain_broken) break;  // reached the end of the chain
      if (have_last) cursor = last;
    }
    return added;
  }

  /// met::RangeIndex scan surface (values only).
  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    std::vector<std::pair<Key, Value>> pairs;
    size_t got = ScanPairs(key, n, &pairs);
    if (out != nullptr)
      for (const auto& [k, v] : pairs) out->push_back(v);
    return got;
  }

  // --- legacy bool surface (met::PointIndex); retries internally ---

  /// Unique insert; false (tree unchanged) if the key exists.
  bool Insert(const Key& key, Value value) {
    return LoopUntilSettled([&] { return InsertUnique(key, value); }) ==
           MutateOutcome::kInserted;
  }

  void InsertOrAssign(const Key& key, Value value) {
    LoopUntilSettled([&] { return Upsert(key, value); });
  }

  /// Overwrites an existing key's value; false if absent.
  bool Update(const Key& key, Value value) {
    return LoopUntilSettled([&] { return UpdateIfPresent(key, value); }) ==
           MutateOutcome::kUpdated;
  }

  /// Removes a key; false if absent.
  bool Erase(const Key& key) {
    return LoopUntilSettled([&] { return Remove(key); }) ==
           MutateOutcome::kRemoved;
  }

  [[deprecated("use Lookup()")]] bool Find(const Key& key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }

  // --- stats / maintenance ---

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    return inner_nodes_.load(std::memory_order_relaxed) * sizeof(Inner) +
           leaf_nodes_.load(std::memory_order_relaxed) * sizeof(LeafNode);
  }

  MemoryBreakdown Breakdown() const {
    MemoryBreakdown b("olc_btree");
    b.Add("inner", inner_nodes_.load(std::memory_order_relaxed) * sizeof(Inner));
    b.Add("leaves",
          leaf_nodes_.load(std::memory_order_relaxed) * sizeof(LeafNode));
    return b;
  }

  /// Not thread-safe: callers must quiesce all other threads first.
  void Clear() {
    Destroy(root_.load(std::memory_order_acquire));
    inner_nodes_.store(0, std::memory_order_relaxed);
    leaf_nodes_.store(0, std::memory_order_relaxed);
    size_.store(0, std::memory_order_relaxed);
    root_.store(NewLeaf(), std::memory_order_release);
  }

  /// Structural invariants (quiescent callers only): per-node sort order,
  /// separator bounds, leaf-chain order, version words unlocked, size match.
  bool Validate(std::ostream& os) const {
    Node* root = root_.load(std::memory_order_acquire);
    size_t leaves_seen = 0;
    bool have_prev = false;
    Key prev{};
    LeafNode* first_leaf = nullptr;
    if (!ValidateNode(root, nullptr, nullptr, os, &leaves_seen, &have_prev,
                      &prev, &first_leaf))
      return false;
    if (leaves_seen != size()) {
      os << "olc_btree: leaf entries " << leaves_seen << " != size() "
         << size() << "\n";
      return false;
    }
    // The leaf chain must enumerate the same keys in the same order.
    size_t chained = 0;
    for (LeafNode* l = first_leaf; l != nullptr;
         l = l->next.load(std::memory_order_acquire))
      chained += l->count.load(std::memory_order_relaxed);
    if (chained != leaves_seen) {
      os << "olc_btree: leaf chain enumerates " << chained
         << " entries, tree has " << leaves_seen << "\n";
      return false;
    }
    return true;
  }

 private:
  static constexpr size_t kHeaderBytes = 64;  // lock + count + type + padding
  static constexpr size_t kEntryBytes = sizeof(Key) + sizeof(Value);
  static constexpr size_t kLeafSlots = std::max<size_t>(
      4, (NodeBytes > kHeaderBytes ? NodeBytes - kHeaderBytes : 0) /
             kEntryBytes);
  static constexpr size_t kInnerSlots = std::max<size_t>(4, kLeafSlots - 1);
  static_assert(kLeafSlots < 65535 && kInnerSlots < 65535);

  struct Node {
    olc::VersionLock lock;
    std::atomic<uint16_t> count{0};
    const bool leaf;
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
  };

  struct Inner : Node {
    std::atomic<Key> keys[kInnerSlots];
    std::atomic<Node*> children[kInnerSlots + 1] = {};
    Inner() : Node(false) {}
  };

  struct LeafNode : Node {
    std::atomic<Key> keys[kLeafSlots];
    std::atomic<Value> values[kLeafSlots];
    std::atomic<LeafNode*> next{nullptr};
    LeafNode() : Node(true) {}
  };

  LeafNode* NewLeaf() {
    leaf_nodes_.fetch_add(1, std::memory_order_relaxed);
    return new LeafNode();
  }
  Inner* NewInner() {
    inner_nodes_.fetch_add(1, std::memory_order_relaxed);
    return new Inner();
  }

  void Destroy(Node* n) {
    if (n == nullptr) return;
    if (n->leaf) {
      delete static_cast<LeafNode*>(n);
      return;
    }
    Inner* in = static_cast<Inner*>(n);
    uint16_t c = in->count.load(std::memory_order_relaxed);
    for (uint16_t i = 0; i <= c; ++i)
      Destroy(in->children[i].load(std::memory_order_relaxed));
    delete in;
  }

  /// First i in [0, c) with key < keys[i]; c if none. children[i] holds keys
  /// strictly below keys[i]; keys[i] is the minimum of children[i+1].
  static int ChildIndex(const Inner* in, const Key& key, uint16_t c) {
    int i = 0;
    while (i < c && !(key < in->keys[i].load(std::memory_order_relaxed))) ++i;
    return i;
  }

  /// First i in [0, c) with keys[i] >= key (lower bound).
  static int LeafPos(const LeafNode* leaf, const Key& key, uint16_t c) {
    int i = 0;
    while (i < c && leaf->keys[i].load(std::memory_order_relaxed) < key) ++i;
    return i;
  }

  static bool FoundAt(const LeafNode* leaf, const Key& key, int pos,
                      uint16_t c) {
    return pos < c &&
           !(key < leaf->keys[pos].load(std::memory_order_relaxed));
  }

  static void LeafInsertAt(LeafNode* leaf, int pos, const Key& key,
                           Value value, uint16_t c) {
    MET_DCHECK(c < kLeafSlots);
    for (int i = c; i > pos; --i) {
      leaf->keys[i].store(leaf->keys[i - 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      leaf->values[i].store(
          leaf->values[i - 1].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    leaf->keys[pos].store(key, std::memory_order_relaxed);
    leaf->values[pos].store(value, std::memory_order_relaxed);
    leaf->count.store(static_cast<uint16_t>(c + 1), std::memory_order_relaxed);
  }

  /// Inserts (sep, right) into a write-locked, non-full inner node.
  static void InnerInsertAt(Inner* in, const Key& sep, Node* right) {
    uint16_t c = in->count.load(std::memory_order_relaxed);
    MET_DCHECK(c < kInnerSlots);
    int pos = ChildIndex(in, sep, c);
    for (int i = c; i > pos; --i)
      in->keys[i].store(in->keys[i - 1].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    for (int i = c + 1; i > pos + 1; --i)
      in->children[i].store(
          in->children[i - 1].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    in->keys[pos].store(sep, std::memory_order_relaxed);
    in->children[pos + 1].store(right, std::memory_order_release);
    in->count.store(static_cast<uint16_t>(c + 1), std::memory_order_relaxed);
  }

  /// Installs a new root above a just-split old root. Caller holds the old
  /// root's write lock, so concurrent descents either still see the old root
  /// (and fail validation against its bumped version) or see the new one.
  void PromoteRoot(Node* left, const Key& sep, Node* right) {
    Inner* nr = NewInner();
    nr->keys[0].store(sep, std::memory_order_relaxed);
    nr->children[0].store(left, std::memory_order_relaxed);
    nr->children[1].store(right, std::memory_order_relaxed);
    nr->count.store(1, std::memory_order_relaxed);
    root_.store(nr, std::memory_order_release);
  }

  /// Splits a write-locked full inner node; `parent` (if any) is also
  /// write-locked and guaranteed non-full by the eager-split descent.
  void SplitInner(Inner* in, Inner* parent) {
    uint16_t c = in->count.load(std::memory_order_relaxed);
    uint16_t m = c / 2;
    Key sep = in->keys[m].load(std::memory_order_relaxed);
    Inner* right = NewInner();
    uint16_t rc = static_cast<uint16_t>(c - m - 1);
    for (uint16_t i = 0; i < rc; ++i)
      right->keys[i].store(in->keys[m + 1 + i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    for (uint16_t i = 0; i <= rc; ++i)
      right->children[i].store(
          in->children[m + 1 + i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    right->count.store(rc, std::memory_order_relaxed);
    in->count.store(m, std::memory_order_relaxed);
    if (parent != nullptr)
      InnerInsertAt(parent, sep, right);
    else
      PromoteRoot(in, sep, right);
  }

  /// Splits a write-locked full leaf, linking the new right leaf into the
  /// chain; same parent contract as SplitInner.
  void SplitLeaf(LeafNode* leaf, Inner* parent) {
    uint16_t c = leaf->count.load(std::memory_order_relaxed);
    uint16_t m = c / 2;
    LeafNode* right = NewLeaf();
    uint16_t rc = static_cast<uint16_t>(c - m);
    for (uint16_t i = 0; i < rc; ++i) {
      right->keys[i].store(leaf->keys[m + i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      right->values[i].store(
          leaf->values[m + i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    right->count.store(rc, std::memory_order_relaxed);
    right->next.store(leaf->next.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    leaf->count.store(m, std::memory_order_relaxed);
    leaf->next.store(right, std::memory_order_release);
    Key sep = right->keys[0].load(std::memory_order_relaxed);
    if (parent != nullptr)
      InnerInsertAt(parent, sep, right);
    else
      PromoteRoot(leaf, sep, right);
  }

  /// Write-locks parent (if any) then the full node, splits it, unlocks, and
  /// always requests a restart: the split may have moved the key's route.
  template <typename NodeT>
  void SplitAndRestart(NodeT* node, uint64_t v, Inner* parent, uint64_t pv,
                       bool& restart) {
    if (parent != nullptr) {
      parent->lock.UpgradeToWriteLockOrRestart(pv, restart);
      if (restart) return;
    }
    node->lock.UpgradeToWriteLockOrRestart(v, restart);
    if (restart) {
      if (parent != nullptr) parent->lock.WriteUnlock();
      return;
    }
    // A parentless node must still be the root (another thread may have
    // promoted a new root above it since our descent began).
    if (parent == nullptr &&
        static_cast<Node*>(node) != root_.load(std::memory_order_acquire)) {
      node->lock.WriteUnlock();
      restart = true;
      return;
    }
    if constexpr (std::is_same_v<NodeT, Inner>)
      SplitInner(node, parent);
    else
      SplitLeaf(node, parent);
    node->lock.WriteUnlock();
    if (parent != nullptr) parent->lock.WriteUnlock();
    restart = true;
  }

  /// One optimistic descent to the leaf owning `key`, returning it
  /// write-locked; splits full nodes on the way (then restarts). On any
  /// conflict sets `restart` and returns nullptr.
  LeafNode* DescendToLockedLeaf(const Key& key, bool& restart) {
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t v = node->lock.ReadLockOrRestart(restart);
    if (restart) return nullptr;
    if (node != root_.load(std::memory_order_acquire)) {
      restart = true;
      return nullptr;
    }
    Inner* parent = nullptr;
    uint64_t pv = 0;
    while (!node->leaf) {
      Inner* in = static_cast<Inner*>(node);
      if (in->count.load(std::memory_order_relaxed) == kInnerSlots) {
        SplitAndRestart(in, v, parent, pv, restart);
        MET_DCHECK(restart);
        return nullptr;
      }
      uint16_t c = in->count.load(std::memory_order_relaxed);
      int pos = ChildIndex(in, key, c);
      Node* next = in->children[pos].load(std::memory_order_acquire);
      in->lock.CheckOrRestart(v, restart);
      if (restart) return nullptr;
      if (next == nullptr) {
        restart = true;
        return nullptr;
      }
      uint64_t nv = next->lock.ReadLockOrRestart(restart);
      if (restart) return nullptr;
      in->lock.ReadUnlockOrRestart(v, restart);
      if (restart) return nullptr;
      parent = in;
      pv = v;
      node = next;
      v = nv;
    }
    LeafNode* leaf = static_cast<LeafNode*>(node);
    if (leaf->count.load(std::memory_order_relaxed) == kLeafSlots) {
      SplitAndRestart(leaf, v, parent, pv, restart);
      MET_DCHECK(restart);
      return nullptr;
    }
    leaf->lock.UpgradeToWriteLockOrRestart(v, restart);
    if (restart) return nullptr;
    return leaf;
  }

  /// Read-only descent: leaves *leaf read-locked at version *v (still to be
  /// validated by the caller after it reads the leaf).
  void DescendToLeafRead(const Key& key, LeafNode** leaf, uint64_t* v,
                         bool& restart) const {
    Node* node = root_.load(std::memory_order_acquire);
    uint64_t ver = node->lock.ReadLockOrRestart(restart);
    if (restart) return;
    if (node != root_.load(std::memory_order_acquire)) {
      restart = true;
      return;
    }
    while (!node->leaf) {
      const Inner* in = static_cast<const Inner*>(node);
      uint16_t c = in->count.load(std::memory_order_relaxed);
      int pos = ChildIndex(in, key, c);
      Node* next = in->children[pos].load(std::memory_order_acquire);
      in->lock.CheckOrRestart(ver, restart);
      if (restart) return;
      if (next == nullptr) {
        restart = true;
        return;
      }
      uint64_t nv = next->lock.ReadLockOrRestart(restart);
      if (restart) return;
      in->lock.ReadUnlockOrRestart(ver, restart);
      if (restart) return;
      node = next;
      ver = nv;
    }
    *leaf = static_cast<LeafNode*>(node);
    *v = ver;
  }

  std::optional<bool> LookupAttempt(const Key& key, Value* value,
                                    bool& restart) const {
    LeafNode* leaf = nullptr;
    uint64_t v = 0;
    DescendToLeafRead(key, &leaf, &v, restart);
    if (restart) return std::nullopt;
    uint16_t c = leaf->count.load(std::memory_order_relaxed);
    if (c > kLeafSlots) c = kLeafSlots;  // torn read; validation catches
    int pos = LeafPos(leaf, key, c);
    bool found = FoundAt(leaf, key, pos, c);
    Value out = found ? leaf->values[pos].load(std::memory_order_relaxed) : 0;
    leaf->lock.ReadUnlockOrRestart(v, restart);
    if (restart) return std::nullopt;
    if (found && value != nullptr) *value = out;
    return found;
  }

  template <typename Op>
  MutateOutcome LoopUntilSettled(Op op) {
    for (;;) {
      MutateOutcome o = op();
      if (o != MutateOutcome::kRetry) return o;
    }
  }

  bool ValidateNode(Node* n, const Key* lo, const Key* hi, std::ostream& os,
                    size_t* leaves_seen, bool* have_prev, Key* prev,
                    LeafNode** first_leaf) const {
    uint64_t w = n->lock.Peek();
    if (olc::VersionLock::IsLocked(w) || olc::VersionLock::IsObsolete(w)) {
      os << "olc_btree: node version locked/obsolete at quiescence\n";
      return false;
    }
    uint16_t c = n->count.load(std::memory_order_relaxed);
    if (n->leaf) {
      LeafNode* leaf = static_cast<LeafNode*>(n);
      if (c > kLeafSlots) {
        os << "olc_btree: leaf count " << c << " > " << kLeafSlots << "\n";
        return false;
      }
      if (*first_leaf == nullptr) *first_leaf = leaf;
      for (uint16_t i = 0; i < c; ++i) {
        Key k = leaf->keys[i].load(std::memory_order_relaxed);
        if ((lo != nullptr && k < *lo) || (hi != nullptr && !(k < *hi))) {
          os << "olc_btree: leaf key outside separator bounds\n";
          return false;
        }
        if (*have_prev && !(*prev < k)) {
          os << "olc_btree: keys not strictly increasing\n";
          return false;
        }
        *prev = k;
        *have_prev = true;
      }
      *leaves_seen += c;
      return true;
    }
    Inner* in = static_cast<Inner*>(n);
    if (c == 0 || c > kInnerSlots) {
      os << "olc_btree: inner count " << c << " out of range\n";
      return false;
    }
    for (uint16_t i = 0; i + 1 < c; ++i) {
      if (!(in->keys[i].load(std::memory_order_relaxed) <
            in->keys[i + 1].load(std::memory_order_relaxed))) {
        os << "olc_btree: inner separators not strictly increasing\n";
        return false;
      }
    }
    for (uint16_t i = 0; i <= c; ++i) {
      Node* child = in->children[i].load(std::memory_order_relaxed);
      if (child == nullptr) {
        os << "olc_btree: null child pointer\n";
        return false;
      }
      Key lo_k{};
      Key hi_k{};
      const Key* clo = lo;
      const Key* chi = hi;
      if (i > 0) {
        lo_k = in->keys[i - 1].load(std::memory_order_relaxed);
        clo = &lo_k;
      }
      if (i < c) {
        hi_k = in->keys[i].load(std::memory_order_relaxed);
        chi = &hi_k;
      }
      if (!ValidateNode(child, clo, chi, os, leaves_seen, have_prev, prev,
                        first_leaf))
        return false;
    }
    return true;
  }

  std::atomic<Node*> root_{nullptr};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> inner_nodes_{0};
  std::atomic<size_t> leaf_nodes_{0};
  const int restart_budget_;
};

}  // namespace met

#endif  // MET_BTREE_OLC_BTREE_H_
