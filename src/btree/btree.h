// In-memory B+tree in the style of the STX B+tree (the thesis's dynamic
// baseline; Section 2.1). Node byte budget defaults to 512, the size the
// thesis found best for in-memory operation.
//
// Deletions remove entries from leaves without rebalancing (lazy deletion),
// which is sufficient for the hybrid-index dynamic stage where the structure
// is periodically drained by merges.
#ifndef MET_BTREE_BTREE_H_
#define MET_BTREE_BTREE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/fwd.h"
#include "common/assert.h"
#include "prof/memory_breakdown.h"

namespace met {

namespace btree_internal {

template <typename K>
inline size_t KeyHeapBytes(const K&) {
  return 0;
}

inline size_t KeyHeapBytes(const std::string& s) {
  // std::string SSO threshold on libstdc++ is 15 chars.
  return s.capacity() > 15 ? s.capacity() + 1 : 0;
}

}  // namespace btree_internal

template <typename Key, typename Value = uint64_t, int NodeBytes = 512>
class BTree {
 private:
  static constexpr int ComputeLeafSlots() {
    int s = static_cast<int>((NodeBytes - 32) / (sizeof(Key) + sizeof(Value)));
    return s < 4 ? 4 : s;
  }
  static constexpr int ComputeInnerSlots() {
    int s = static_cast<int>((NodeBytes - 32) / (sizeof(Key) + sizeof(void*)));
    return s < 4 ? 4 : s;
  }

  struct Node;
  struct LeafNode;
  struct InnerNode;

 public:
  static constexpr int kLeafSlots = ComputeLeafSlots();
  static constexpr int kInnerSlots = ComputeInnerSlots();

  BTree() = default;
  ~BTree() { Destroy(); }

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, value). If the key already exists, returns false and does
  /// not modify the tree.
  bool Insert(const Key& key, const Value& value) {
    return InsertImpl(key, value, /*overwrite=*/false);
  }

  /// Inserts or overwrites.
  void InsertOrAssign(const Key& key, const Value& value) {
    InsertImpl(key, value, /*overwrite=*/true);
  }

  /// Unified point lookup (met::RangeIndex surface).
  bool Lookup(const Key& key, Value* value = nullptr) const {
    const LeafNode* leaf;
    int slot;
    if (!FindLeafSlot(key, &leaf, &slot)) return false;
    if (value != nullptr) *value = leaf->values[slot];
    return true;
  }

  [[deprecated("use Lookup()")]] bool Find(const Key& key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }

  /// Overwrites the value of an existing key; returns false if absent.
  bool Update(const Key& key, const Value& value) {
    const LeafNode* cleaf;
    int slot;
    if (!FindLeafSlot(key, &cleaf, &slot)) return false;
    const_cast<LeafNode*>(cleaf)->values[slot] = value;
    return true;
  }

  /// Removes a key (lazy: no rebalancing). Returns false if absent.
  bool Erase(const Key& key) {
    const LeafNode* cleaf;
    int slot;
    if (!FindLeafSlot(key, &cleaf, &slot)) return false;
    LeafNode* leaf = const_cast<LeafNode*>(cleaf);
    for (int i = slot; i + 1 < leaf->count; ++i) {
      leaf->keys[i] = leaf->keys[i + 1];
      leaf->values[i] = leaf->values[i + 1];
    }
    --leaf->count;
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Iterator over leaf entries in key order.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const LeafNode* leaf, int slot) : leaf_(leaf), slot_(slot) {}

    bool Valid() const { return leaf_ != nullptr && slot_ < leaf_->count; }
    const Key& key() const { return leaf_->keys[slot_]; }
    const Value& value() const { return leaf_->values[slot_]; }

    void Next() {
      if (!Valid()) return;
      ++slot_;
      if (slot_ >= leaf_->count) {
        leaf_ = leaf_->next;
        slot_ = 0;
      }
    }

   private:
    const LeafNode* leaf_ = nullptr;
    int slot_ = 0;
  };

  Iterator Begin() const {
    return Iterator(first_leaf_, 0);
  }

  /// Iterator at the first entry with key >= `key`.
  Iterator LowerBound(const Key& key) const {
    if (root_ == nullptr) return Iterator();
    const Node* n = root_;
    while (!n->is_leaf) {
      const InnerNode* inner = static_cast<const InnerNode*>(n);
      int slot = FindUpper(inner->keys, inner->count, key);
      n = inner->children[slot];
    }
    const LeafNode* leaf = static_cast<const LeafNode*>(n);
    int slot = FindLower(leaf->keys, leaf->count, key);
    Iterator it(leaf, slot);
    if (slot >= leaf->count) it = Iterator(leaf->next, 0);
    return it;
  }

  /// Scans up to `n` entries starting at the first key >= `key`.
  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    size_t cnt = 0;
    for (Iterator it = LowerBound(key); it.Valid() && cnt < n; it.Next(), ++cnt)
      if (out != nullptr) out->push_back(it.value());
    return cnt;
  }

  /// Total memory (nodes + string heap), computed by walking the tree.
  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    size_t bytes = 0;
    WalkMemory(root_, &bytes);
    return bytes;
  }

  /// Component attribution; TotalBytes() == MemoryBytes() (same walk).
  MemoryBreakdown Breakdown() const {
    size_t leaf_bytes = 0, inner_bytes = 0, key_heap = 0;
    WalkBreakdown(root_, &leaf_bytes, &inner_bytes, &key_heap);
    MemoryBreakdown b("btree");
    b.Add("leaf_nodes", leaf_bytes);
    b.Add("inner_nodes", inner_bytes);
    b.Add("key_heap", key_heap);
    return b;
  }

  void Clear() {
    Destroy();
    root_ = nullptr;
    first_leaf_ = nullptr;
    size_ = 0;
  }

  /// Walks the whole tree verifying its structural invariants (node key
  /// ordering, separator bounds, leaf-chain linkage, slot counts, size).
  /// Writes one line per violation to `os`; returns true if consistent.
  /// Compiles to a no-op unless MET_CHECK_ENABLED (Debug or -DMET_CHECK=1);
  /// callers with checks enabled must include check/btree_check.h.
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return ValidateImpl(os);
#else
    (void)os;
    return true;
#endif
  }

  /// Average leaf occupancy in [0,1] (Section 2.2 reports ~69% for B+trees).
  double LeafOccupancy() const {
    size_t slots = 0, used = 0;
    for (const LeafNode* l = first_leaf_; l != nullptr; l = l->next) {
      slots += kLeafSlots;
      used += l->count;
    }
    return slots == 0 ? 0.0 : static_cast<double>(used) / slots;
  }

 private:
  struct Node {
    bool is_leaf;
    int16_t count;
  };

  struct LeafNode : Node {
    LeafNode* next = nullptr;
    Key keys[kLeafSlots];
    Value values[kLeafSlots];
  };

  struct InnerNode : Node {
    Key keys[kInnerSlots];
    Node* children[kInnerSlots + 1];
  };

  // First index i with keys[i] >= key.
  static int FindLower(const Key* keys, int count, const Key& key) {
    return static_cast<int>(std::lower_bound(keys, keys + count, key) - keys);
  }

  // First index i with keys[i] > key.
  static int FindUpper(const Key* keys, int count, const Key& key) {
    return static_cast<int>(std::upper_bound(keys, keys + count, key) - keys);
  }

  bool FindLeafSlot(const Key& key, const LeafNode** leaf_out, int* slot_out) const {
    if (root_ == nullptr) return false;
    const Node* n = root_;
    while (!n->is_leaf) {
      const InnerNode* inner = static_cast<const InnerNode*>(n);
      int slot = FindUpper(inner->keys, inner->count, key);
      n = inner->children[slot];
    }
    const LeafNode* leaf = static_cast<const LeafNode*>(n);
    int slot = FindLower(leaf->keys, leaf->count, key);
    if (slot >= leaf->count || leaf->keys[slot] != key) return false;
    *leaf_out = leaf;
    *slot_out = slot;
    return true;
  }

  bool InsertImpl(const Key& key, const Value& value, bool overwrite) {
    if (root_ == nullptr) {
      LeafNode* leaf = new LeafNode();
      leaf->is_leaf = true;
      leaf->count = 0;
      root_ = leaf;
      first_leaf_ = leaf;
    }
    Key split_key;
    Node* split_node = nullptr;
    bool inserted = InsertRecurse(root_, key, value, overwrite, &split_key, &split_node);
    if (split_node != nullptr) {
      InnerNode* new_root = new InnerNode();
      new_root->is_leaf = false;
      new_root->count = 1;
      new_root->keys[0] = split_key;
      new_root->children[0] = root_;
      new_root->children[1] = split_node;
      root_ = new_root;
    }
    if (inserted) ++size_;
    return inserted;
  }

  bool InsertRecurse(Node* n, const Key& key, const Value& value, bool overwrite,
                     Key* split_key, Node** split_node) {
    *split_node = nullptr;
    if (n->is_leaf) {
      LeafNode* leaf = static_cast<LeafNode*>(n);
      int slot = FindLower(leaf->keys, leaf->count, key);
      if (slot < leaf->count && leaf->keys[slot] == key) {
        if (overwrite) leaf->values[slot] = value;
        return false;
      }
      if (leaf->count == kLeafSlots) {
        // Split the leaf, then insert into the proper half.
        LeafNode* right = new LeafNode();
        right->is_leaf = true;
        int mid = kLeafSlots / 2;
        right->count = static_cast<int16_t>(kLeafSlots - mid);
        for (int i = 0; i < right->count; ++i) {
          right->keys[i] = std::move(leaf->keys[mid + i]);
          right->values[i] = leaf->values[mid + i];
        }
        leaf->count = static_cast<int16_t>(mid);
        right->next = leaf->next;
        leaf->next = right;
        *split_key = right->keys[0];
        *split_node = right;
        LeafNode* target = (key < *split_key) ? leaf : right;
        int s = FindLower(target->keys, target->count, key);
        InsertAt(target, s, key, value);
        return true;
      }
      InsertAt(leaf, slot, key, value);
      return true;
    }

    InnerNode* inner = static_cast<InnerNode*>(n);
    int slot = FindUpper(inner->keys, inner->count, key);
    Key child_split_key;
    Node* child_split = nullptr;
    bool inserted = InsertRecurse(inner->children[slot], key, value, overwrite,
                                  &child_split_key, &child_split);
    if (child_split != nullptr) {
      if (inner->count == kInnerSlots) {
        // Split this inner node. Middle key moves up.
        InnerNode* right = new InnerNode();
        right->is_leaf = false;
        int mid = kInnerSlots / 2;
        Key up_key = inner->keys[mid];
        right->count = static_cast<int16_t>(kInnerSlots - mid - 1);
        for (int i = 0; i < right->count; ++i)
          right->keys[i] = std::move(inner->keys[mid + 1 + i]);
        for (int i = 0; i <= right->count; ++i)
          right->children[i] = inner->children[mid + 1 + i];
        inner->count = static_cast<int16_t>(mid);
        // Now insert (child_split_key, child_split) into the proper half.
        if (child_split_key < up_key) {
          InsertInner(inner, child_split_key, child_split);
        } else {
          InsertInner(right, child_split_key, child_split);
        }
        *split_key = up_key;
        *split_node = right;
      } else {
        InsertInner(inner, child_split_key, child_split);
      }
    }
    return inserted;
  }

  static void InsertAt(LeafNode* leaf, int slot, const Key& key, const Value& value) {
    for (int i = leaf->count; i > slot; --i) {
      leaf->keys[i] = std::move(leaf->keys[i - 1]);
      leaf->values[i] = leaf->values[i - 1];
    }
    leaf->keys[slot] = key;
    leaf->values[slot] = value;
    ++leaf->count;
  }

  static void InsertInner(InnerNode* inner, const Key& key, Node* child) {
    int slot = FindUpper(inner->keys, inner->count, key);
    for (int i = inner->count; i > slot; --i) {
      inner->keys[i] = std::move(inner->keys[i - 1]);
      inner->children[i + 1] = inner->children[i];
    }
    inner->keys[slot] = key;
    inner->children[slot + 1] = child;
    ++inner->count;
  }

  void WalkMemory(const Node* n, size_t* bytes) const {
    if (n == nullptr) return;
    if (n->is_leaf) {
      const LeafNode* leaf = static_cast<const LeafNode*>(n);
      *bytes += sizeof(LeafNode);
      for (int i = 0; i < leaf->count; ++i)
        *bytes += btree_internal::KeyHeapBytes(leaf->keys[i]);
    } else {
      const InnerNode* inner = static_cast<const InnerNode*>(n);
      *bytes += sizeof(InnerNode);
      for (int i = 0; i < inner->count; ++i)
        *bytes += btree_internal::KeyHeapBytes(inner->keys[i]);
      for (int i = 0; i <= inner->count; ++i) WalkMemory(inner->children[i], bytes);
    }
  }

  void WalkBreakdown(const Node* n, size_t* leaf_bytes, size_t* inner_bytes,
                     size_t* key_heap) const {
    if (n == nullptr) return;
    if (n->is_leaf) {
      const LeafNode* leaf = static_cast<const LeafNode*>(n);
      *leaf_bytes += sizeof(LeafNode);
      for (int i = 0; i < leaf->count; ++i)
        *key_heap += btree_internal::KeyHeapBytes(leaf->keys[i]);
    } else {
      const InnerNode* inner = static_cast<const InnerNode*>(n);
      *inner_bytes += sizeof(InnerNode);
      for (int i = 0; i < inner->count; ++i)
        *key_heap += btree_internal::KeyHeapBytes(inner->keys[i]);
      for (int i = 0; i <= inner->count; ++i)
        WalkBreakdown(inner->children[i], leaf_bytes, inner_bytes, key_heap);
    }
  }

  void Destroy() { DestroyRecurse(root_); }

  void DestroyRecurse(Node* n) {
    if (n == nullptr) return;
    if (n->is_leaf) {
      delete static_cast<LeafNode*>(n);
    } else {
      InnerNode* inner = static_cast<InnerNode*>(n);
      for (int i = 0; i <= inner->count; ++i) DestroyRecurse(inner->children[i]);
      delete inner;
    }
  }

  bool ValidateImpl(std::ostream& os) const;  // check/btree_check.h
  friend struct check::TestAccess;

  Node* root_ = nullptr;
  LeafNode* first_leaf_ = nullptr;
  size_t size_ = 0;
};

}  // namespace met

#endif  // MET_BTREE_BTREE_H_
