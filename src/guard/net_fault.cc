// NetFaultSpec parsing and the global injector. Mirrors io/fault_env.cc so
// the two fault grammars stay recognisably the same dialect.

#include "guard/net_fault.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "guard/clock.h"
#include "guard/metrics.h"

namespace met::guard {

// ---------------------------------------------------------------------------
// NetFaultSpec
// ---------------------------------------------------------------------------

namespace {

bool ParseU64(std::string_view v, uint64_t* out) {
  if (v.empty()) return false;
  std::string buf(v);
  char* end = nullptr;
  errno = 0;
  unsigned long long x = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = x;
  return true;
}

bool ParseProb(std::string_view v, double* out) {
  if (v.empty()) return false;
  std::string buf(v);
  char* end = nullptr;
  errno = 0;
  double x = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (x < 0.0 || x > 1.0) return false;
  *out = x;
  return true;
}

void AppendProb(std::string* out, const char* key, double v) {
  if (v <= 0) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%s=%g", out->empty() ? "" : ",", key, v);
  out->append(buf);
}

}  // namespace

io::Status NetFaultSpec::Parse(std::string_view spec, NetFaultSpec* out) {
  *out = NetFaultSpec();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string_view pair = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return io::Status::InvalidArgument("net fault spec pair missing '=': " +
                                         std::string(pair));
    }
    std::string_view key = pair.substr(0, eq);
    std::string_view value = pair.substr(eq + 1);
    bool ok;
    if (key == "seed") {
      ok = ParseU64(value, &out->seed);
    } else if (key == "stall_ms") {
      ok = ParseU64(value, &out->stall_ms);
    } else if (key == "torn") {
      ok = ParseProb(value, &out->torn);
    } else if (key == "rst") {
      ok = ParseProb(value, &out->rst);
    } else if (key == "stall") {
      ok = ParseProb(value, &out->stall);
    } else if (key == "short") {
      ok = ParseProb(value, &out->short_read);
    } else if (key == "dup") {
      ok = ParseProb(value, &out->dup);
    } else {
      return io::Status::InvalidArgument("unknown net fault spec key: " +
                                         std::string(key));
    }
    if (!ok) {
      return io::Status::InvalidArgument("bad net fault spec value for '" +
                                         std::string(key) +
                                         "': " + std::string(value));
    }
  }
  return io::Status::OK();
}

NetFaultSpec NetFaultSpec::FromEnv() {
  const char* v = std::getenv("MET_NET_FAULT");
  if (v == nullptr || v[0] == '\0') return NetFaultSpec();
  NetFaultSpec spec;
  io::Status s = Parse(v, &spec);
  if (!s.ok()) {
    std::fprintf(stderr, "fatal: bad MET_NET_FAULT: %s\n",
                 s.ToString().c_str());
    std::abort();
  }
  return spec;
}

std::string NetFaultSpec::ToString() const {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seed=%llu",
                static_cast<unsigned long long>(seed));
  out.append(buf);
  AppendProb(&out, "torn", torn);
  AppendProb(&out, "rst", rst);
  AppendProb(&out, "stall", stall);
  if (stall > 0) {
    std::snprintf(buf, sizeof(buf), ",stall_ms=%llu",
                  static_cast<unsigned long long>(stall_ms));
    out.append(buf);
  }
  AppendProb(&out, "short", short_read);
  AppendProb(&out, "dup", dup);
  return out;
}

// ---------------------------------------------------------------------------
// NetFaultInjector
// ---------------------------------------------------------------------------

NetFaultInjector& NetFaultInjector::Global() {
  static NetFaultInjector* inj = [] {
    auto* g = new NetFaultInjector();  // intentionally leaked, like registries
    g->Configure(NetFaultSpec::FromEnv());
    return g;
  }();
  return *inj;
}

void NetFaultInjector::Configure(const NetFaultSpec& spec) {
  sync::MutexLock l(mu_);
  spec_ = spec;
  rng_ = Random(spec.seed);
  counts_ = NetFaultCounts();
  enabled_.store(spec.enabled(), std::memory_order_relaxed);
}

NetFaultInjector::WriteFault NetFaultInjector::RollWrite(size_t n,
                                                         size_t* clamp) {
  *clamp = n;
  if (!enabled()) return WriteFault::kNone;
  sync::MutexLock l(mu_);
  if (n > 1 && Roll(spec_.torn)) {
    ++counts_.torn;
    GuardObsMetrics::Get().net_faults->Increment();
    *clamp = 1 + static_cast<size_t>(rng_.Uniform(n - 1));
    return WriteFault::kTorn;
  }
  if (Roll(spec_.rst)) {
    ++counts_.rst;
    GuardObsMetrics::Get().net_faults->Increment();
    *clamp = 0;
    return WriteFault::kReset;
  }
  return WriteFault::kNone;
}

uint64_t NetFaultInjector::RollStallNs() {
  if (!enabled()) return 0;
  sync::MutexLock l(mu_);
  if (!Roll(spec_.stall)) return 0;
  ++counts_.stall;
  GuardObsMetrics::Get().net_faults->Increment();
  return spec_.stall_ms * kNanosPerMilli;
}

size_t NetFaultInjector::ClampRead(size_t want) {
  if (!enabled() || want <= 1) return want;
  sync::MutexLock l(mu_);
  if (!Roll(spec_.short_read)) return want;
  ++counts_.short_read;
  GuardObsMetrics::Get().net_faults->Increment();
  // Tiny reads (1..16 bytes) maximise partial-frame decoder coverage.
  size_t cap = want < 16 ? want : 16;
  return 1 + static_cast<size_t>(rng_.Uniform(cap));
}

bool NetFaultInjector::RollDuplicate() {
  if (!enabled()) return false;
  sync::MutexLock l(mu_);
  if (!Roll(spec_.dup)) return false;
  ++counts_.dup;
  GuardObsMetrics::Get().net_faults->Increment();
  return true;
}

NetFaultCounts NetFaultInjector::Counts() const {
  sync::MutexLock l(mu_);
  return counts_;
}

NetFaultSpec NetFaultInjector::Spec() const {
  sync::MutexLock l(mu_);
  return spec_;
}

}  // namespace met::guard
