#include "guard/metrics.h"

namespace met::guard {

const GuardObsMetrics& GuardObsMetrics::Get() {
  static const GuardObsMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    GuardObsMetrics x;
    x.shed = reg.GetCounter("met.guard.shed");
    x.shed_cost = reg.GetCounter("met.guard.shed_cost");
    x.deadline_admission = reg.GetCounter("met.guard.deadline_admission");
    x.deadline_exec = reg.GetCounter("met.guard.deadline_exec");
    x.dedup_hits = reg.GetCounter("met.guard.dedup_hits");
    x.net_faults = reg.GetCounter("met.guard.net_faults");
    x.queue_delay_us = reg.GetHistogram("met.guard.queue_delay_us");
    x.overload_level = reg.GetGauge("met.guard.overload_level");
    x.queued_cost = reg.GetGauge("met.guard.queued_cost");
    x.epoch_stall_ms = reg.GetGauge("met.guard.epoch_stall_ms");
    return x;
  }();
  return m;
}

}  // namespace met::guard
