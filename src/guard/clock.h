// Shared monotonic clock for the guard subsystem. Deadlines, queue-delay
// sampling, and retry backoff all need the same absolute steady-clock
// timebase; funnelling them through one helper keeps server and client
// arithmetic directly comparable (both are nanoseconds since an arbitrary
// but fixed process epoch).
#ifndef MET_GUARD_CLOCK_H_
#define MET_GUARD_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace met::guard {

/// Nanoseconds on the steady (monotonic) clock. Never goes backwards;
/// meaningless across processes.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline constexpr uint64_t kNanosPerMilli = 1000 * 1000;

}  // namespace met::guard

#endif  // MET_GUARD_CLOCK_H_
