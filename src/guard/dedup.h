// Server-side idempotency window for at-least-once write retries.
//
// A client that times out on a PUT/DELETE cannot know whether the write
// applied — the network chaos this PR injects makes both outcomes common.
// Retrying blindly is safe for upserts but re-acks a DELETE of a key a
// concurrent writer re-inserted, and it double-counts in any downstream
// accounting. The guard protocol therefore lets writes carry a 64-bit
// idempotency token; each shard remembers the outcome of the last
// `capacity` tokened writes it applied and replays the recorded ack for a
// duplicate instead of re-executing.
//
// The window is a ring + hash map: O(1) insert/lookup, strictly bounded
// memory, oldest entry evicted first. It spans connections (retries
// typically arrive on a *new* connection after the old one died), which is
// why tokens must be globally unique per logical write — clients derive
// them from a per-client id and a sequence number. Token 0 is reserved to
// mean "no token". Retried writes hash to the same shard as the original
// (routing is by key), so a per-shard window needs no cross-shard lookup.
//
// Single-threaded: owned and accessed only by the shard thread.
#ifndef MET_GUARD_DEDUP_H_
#define MET_GUARD_DEDUP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace met::guard {

class DedupWindow {
 public:
  /// capacity 0 disables the window (Find always misses, Insert drops).
  explicit DedupWindow(size_t capacity) : cap_(capacity) {
    ring_.reserve(cap_);
    map_.reserve(cap_);
  }

  /// Outcome recorded for a token: whether the engine applied the write
  /// (the `applied` bool the ack status is derived from).
  const bool* Find(uint64_t token) const {
    if (token == 0 || cap_ == 0) return nullptr;
    auto it = map_.find(token);
    return it == map_.end() ? nullptr : &it->second;
  }

  void Insert(uint64_t token, bool applied) {
    if (token == 0 || cap_ == 0) return;
    auto [it, inserted] = map_.try_emplace(token, applied);
    if (!inserted) {
      it->second = applied;  // re-applied duplicate; keep latest outcome
      return;
    }
    if (ring_.size() < cap_) {
      ring_.push_back(token);
      return;
    }
    map_.erase(ring_[head_]);
    ring_[head_] = token;
    head_ = (head_ + 1) % cap_;
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return cap_; }

 private:
  size_t cap_;
  std::vector<uint64_t> ring_;
  size_t head_ = 0;
  std::unordered_map<uint64_t, bool> map_;
};

}  // namespace met::guard

#endif  // MET_GUARD_DEDUP_H_
