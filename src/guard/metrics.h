// met::guard observability — the `met.guard.*` metric family shared by the
// admission controller, deadline enforcement, dedup window, net-fault
// injector, and the EBR stall watchdog. One lazily-initialised struct of
// stable pointers, same idiom as ServeObsMetrics.
#ifndef MET_GUARD_METRICS_H_
#define MET_GUARD_METRICS_H_

#include "obs/metrics.h"

namespace met::guard {

struct GuardObsMetrics {
  obs::Counter* shed;            // met.guard.shed (requests refused)
  obs::Counter* shed_cost;       // met.guard.shed_cost (cost units refused)
  obs::Counter* deadline_admission;  // met.guard.deadline_admission
  obs::Counter* deadline_exec;       // met.guard.deadline_exec
  obs::Counter* dedup_hits;      // met.guard.dedup_hits (replayed write acks)
  obs::Counter* net_faults;      // met.guard.net_faults (injected socket faults)
  obs::Histogram* queue_delay_us;  // met.guard.queue_delay_us per dequeue
  obs::Gauge* overload_level;    // met.guard.overload_level (0..3)
  obs::Gauge* queued_cost;       // met.guard.queued_cost (last sampled shard)
  obs::Gauge* epoch_stall_ms;    // met.guard.epoch_stall_ms (EBR watchdog)

  static const GuardObsMetrics& Get();
};

}  // namespace met::guard

#endif  // MET_GUARD_METRICS_H_
