// Deterministic network fault injection for the serving path — the socket
// sibling of io::FaultyEnv. The serve/net.cc primitives consult a process-
// global injector on every read and write; when disabled (the default) the
// only cost is one relaxed bool load. When enabled, the injector tears
// frames mid-write, resets connections, stalls reads slow-loris style,
// clamps reads short, and duplicates frame-aligned sends — the failure
// modes a real datacenter network serves daily.
//
// Spec grammar (MET_NET_FAULT env var or NetFaultSpec::Parse):
//   spec     := pair (',' pair)*
//   pair     := key '=' value
//   key      := seed | torn | rst | stall | stall_ms | short | dup
//   seed, stall_ms take integers; the rest take probabilities in [0, 1].
// Example: MET_NET_FAULT="seed=7,torn=0.002,rst=0.001,short=0.05"
//
//   torn     P(a write lands only a random prefix, then the connection is
//            abortively reset) — the peer sees a torn frame followed by RST.
//   rst      P(a write fails with ECONNRESET before any byte lands).
//   stall    P(a read sleeps stall_ms first) — slow-loris delivery.
//   short    P(a read is clamped to a small random byte count), exercising
//            every partial-frame resume path in the decoders.
//   dup      P(a frame-aligned client send is delivered twice), exercising
//            server-side idempotency (guard/dedup.h).
//
// Determinism: one seeded met::Random drives all decisions. A single-
// threaded user (tests, the chaos driver's client loop) replays exactly;
// multi-threaded servers get a deterministic stream consumed in scheduling
// order. Decisions are serialised by a mutex — fault injection is a test
// mode, not a hot path.
#ifndef MET_GUARD_NET_FAULT_H_
#define MET_GUARD_NET_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/sync.h"
#include "io/status.h"

namespace met::guard {

struct NetFaultSpec {
  uint64_t seed = 1;
  double torn = 0;       // P(short write + abortive reset) per write
  double rst = 0;        // P(immediate ECONNRESET) per write
  double stall = 0;      // P(delivery stall) per read
  uint64_t stall_ms = 20;
  double short_read = 0;  // P(clamped read) per read  (key: "short")
  double dup = 0;         // P(duplicate delivery) per frame-aligned send

  /// Parses the comma-separated key=value grammar above. Unknown keys,
  /// malformed numbers, and out-of-range probabilities are InvalidArgument.
  static io::Status Parse(std::string_view spec, NetFaultSpec* out);

  /// Parses $MET_NET_FAULT; returns an all-zero (fault-free) spec when
  /// unset. Aborts on a malformed spec — silently ignoring a typo'd chaos
  /// spec would make a whole torture run vacuous.
  static NetFaultSpec FromEnv();

  bool enabled() const {
    return torn > 0 || rst > 0 || stall > 0 || short_read > 0 || dup > 0;
  }

  std::string ToString() const;
};

/// Injection tallies, for tests asserting determinism and for the chaos
/// driver's end-of-run report.
struct NetFaultCounts {
  uint64_t torn = 0;
  uint64_t rst = 0;
  uint64_t stall = 0;
  uint64_t short_read = 0;
  uint64_t dup = 0;

  uint64_t Total() const { return torn + rst + stall + short_read + dup; }
};

class NetFaultInjector {
 public:
  /// The process-global injector serve/net.cc consults. First use
  /// configures it from $MET_NET_FAULT.
  static NetFaultInjector& Global();

  NetFaultInjector() = default;
  explicit NetFaultInjector(const NetFaultSpec& spec) { Configure(spec); }

  /// (Re)configures spec, RNG, and counts. Tests and the chaos driver call
  /// this on Global(); pass a default-constructed spec to disable.
  void Configure(const NetFaultSpec& spec);

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // ---- decision points (thread-safe) ------------------------------------

  enum class WriteFault : uint8_t {
    kNone,
    kTorn,   // caller sends *clamp out of n bytes, then resets
    kReset,  // caller sends nothing and resets
  };

  /// Rolls the write-side dice for an n-byte send. On kTorn, *clamp is the
  /// prefix length to land (1 <= clamp < n).
  WriteFault RollWrite(size_t n, size_t* clamp);

  /// Read-side stall: nanoseconds to sleep before receiving (0 = none).
  uint64_t RollStallNs();

  /// Read-side clamp: how many bytes the next recv may deliver at most.
  size_t ClampRead(size_t want);

  /// Whether a frame-aligned send should be delivered twice.
  bool RollDuplicate();

  NetFaultCounts Counts() const;
  NetFaultSpec Spec() const;

 private:
  bool Roll(double p) MET_REQUIRES(mu_) {
    return p > 0 && rng_.NextDouble() < p;
  }

  mutable sync::Mutex mu_;
  NetFaultSpec spec_ MET_GUARDED_BY(mu_);
  Random rng_ MET_GUARDED_BY(mu_){1};
  NetFaultCounts counts_ MET_GUARDED_BY(mu_);
  sync::Atomic<bool> enabled_{false};
};

}  // namespace met::guard

#endif  // MET_GUARD_NET_FAULT_H_
