// Cost-aware, CoDel-style admission control for one serving shard.
//
// The old serving-path policy was a bounded request count + kBusy. That
// sheds a 1-key GET and a 1024-row SCAN with equal probability, and it only
// reacts once the queue is *full* — by which point queue delay is already
// the whole latency budget. This controller replaces it with two signals:
//
//   * a **cost budget**: every request is charged an estimated cost in
//     abstract units (GET = 1, PUT/DELETE = 2, SCAN ~ rows/16, MULTIGET =
//     key count); the sum of queued cost is bounded, so one expensive scan
//     displaces many cheap gets instead of counting as "one item";
//
//   * a **queue-delay target** (CoDel-style): the shard thread samples the
//     queueing delay of every dequeued request over a sliding interval. If
//     the *minimum* delay over a full interval stays above the target, the
//     queue has standing badness that draining will not fix, and the
//     overload level escalates; when the minimum falls back under half the
//     target it de-escalates. Higher levels shed progressively cheaper
//     request classes (level 1: heavy scans/multigets, level 2: writes and
//     small multi-ops, level 3: everything but single GETs), so under
//     sustained overload the shard keeps serving the cheapest work it can
//     instead of queueing everything badly.
//
// Shed responses carry a retry-after hint derived from the last measured
// interval delay, so well-behaved clients back off roughly as long as the
// queue actually needs.
//
// Thread model: Admit() / OnEnqueue() may be called from any connection-
// owning thread (atomics only). OnDequeue() must be called only from the
// shard thread that drains the queue — the CoDel interval state is
// deliberately unsynchronised and single-writer.
#ifndef MET_GUARD_ADMISSION_H_
#define MET_GUARD_ADMISSION_H_

#include <cstddef>
#include <cstdint>

#include "common/sync.h"

namespace met::guard {

struct AdmissionOptions {
  /// Upper bound on the summed cost of queued-but-unexecuted requests.
  size_t cost_capacity = 4096;
  /// CoDel target: standing queue delay above this escalates shedding.
  uint64_t delay_target_ns = 5 * 1000 * 1000;  // 5ms
  /// CoDel measurement interval.
  uint64_t interval_ns = 100 * 1000 * 1000;  // 100ms
};

/// Estimated cost units per request class. Exposed so clients of the
/// controller (the server's router, tests, docs) agree on the scale.
inline constexpr uint32_t kCostGet = 1;
inline constexpr uint32_t kCostWrite = 2;
inline uint32_t CostScan(uint32_t limit) { return 1 + limit / 16; }
inline uint32_t CostMultiGet(size_t keys) {
  return keys == 0 ? 1 : static_cast<uint32_t>(keys);
}

class AdmissionController {
 public:
  enum class Decision { kAdmit, kShed };

  explicit AdmissionController(const AdmissionOptions& opts = {})
      : opts_(opts) {}

  /// Admission check from a connection-owning thread. `charge` is the cost
  /// this shard would enqueue (a MULTIGET charges each target shard only
  /// for its own sub-reads); `request_cost` is the whole request's cost,
  /// which is what level-based shedding classifies on. On kShed,
  /// *retry_after_ms (if non-null) is the backoff hint to return.
  Decision Admit(uint32_t charge, uint32_t request_cost,
                 uint32_t* retry_after_ms) {
    int level = level_.load(std::memory_order_relaxed);
    bool shed = false;
    if (level > 0 && request_cost > LevelCostCap(level)) shed = true;
    // Level 3 additionally sheds every other GET: even the cheapest class
    // must lose half its arrival rate or a GET-only flood never drains.
    if (!shed && level >= kMaxLevel &&
        (get_tick_.fetch_add(1, std::memory_order_relaxed) & 1) != 0)
      shed = true;
    if (!shed &&
        queued_cost_.load(std::memory_order_relaxed) + charge >
            opts_.cost_capacity)
      shed = true;
    if (!shed) return Decision::kAdmit;
    if (retry_after_ms != nullptr) *retry_after_ms = RetryAfterMs();
    return Decision::kShed;
  }

  /// Charges an admitted request's cost. Called after Admit() by the same
  /// thread; the gap makes the capacity check approximate by at most one
  /// mailbox hand-off batch, same as the old request-count bound.
  void OnEnqueue(uint32_t charge) {
    queued_cost_.fetch_add(charge, std::memory_order_relaxed);
  }

  /// Releases `charge` and feeds one queue-delay sample to the CoDel state.
  /// Shard thread only.
  void OnDequeue(uint32_t charge, uint64_t delay_ns, uint64_t now_ns) {
    queued_cost_.fetch_sub(charge, std::memory_order_relaxed);
    if (interval_start_ns_ == 0) interval_start_ns_ = now_ns;
    if (delay_ns < interval_min_ns_) interval_min_ns_ = delay_ns;
    if (now_ns - interval_start_ns_ < opts_.interval_ns) return;
    recent_delay_ns_.store(interval_min_ns_, std::memory_order_relaxed);
    int level = level_.load(std::memory_order_relaxed);
    if (interval_min_ns_ > opts_.delay_target_ns) {
      if (level < kMaxLevel) ++level;
    } else if (interval_min_ns_ * 2 < opts_.delay_target_ns) {
      if (level > 0) --level;
    }
    level_.store(level, std::memory_order_relaxed);
    interval_start_ns_ = now_ns;
    interval_min_ns_ = ~uint64_t{0};
  }

  /// Latest full-interval minimum queue delay; the admission-time estimate
  /// used to fail deadlines early. Zero until the first interval completes.
  uint64_t EstimatedDelayNs() const {
    return recent_delay_ns_.load(std::memory_order_relaxed);
  }

  /// Backoff hint for shed responses: roughly twice the standing delay,
  /// clamped to [1ms, 1s] so it is always actionable.
  uint32_t RetryAfterMs() const {
    uint64_t ms = 2 * EstimatedDelayNs() / (1000 * 1000);
    if (ms < 1) ms = 1;
    if (ms > 1000) ms = 1000;
    return static_cast<uint32_t>(ms);
  }

  int overload_level() const {
    return level_.load(std::memory_order_relaxed);
  }
  size_t queued_cost() const {
    return queued_cost_.load(std::memory_order_relaxed);
  }
  const AdmissionOptions& options() const { return opts_; }

  static constexpr int kMaxLevel = 3;

  /// Largest request cost still admitted at `level` (level 0 admits all).
  static uint32_t LevelCostCap(int level) {
    switch (level) {
      case 1: return 16;          // shed heavy scans / wide multigets
      case 2: return kCostGet;    // shed writes and multi-ops too
      case 3: return kCostGet;    // plus every other GET (see Admit)
      default: return ~uint32_t{0};
    }
  }

 private:
  AdmissionOptions opts_;
  sync::Atomic<size_t> queued_cost_{0};
  sync::Atomic<int> level_{0};
  sync::Atomic<uint64_t> recent_delay_ns_{0};
  sync::Atomic<uint64_t> get_tick_{0};
  // CoDel interval state: shard thread only, intentionally unsynchronised.
  uint64_t interval_start_ns_ = 0;
  uint64_t interval_min_ns_ = ~uint64_t{0};
};

}  // namespace met::guard

#endif  // MET_GUARD_ADMISSION_H_
