// Resilient one-shot client for the met::serve wire protocol: a
// serve::Client wrapped in the retry discipline a real application needs
// against a server that sheds load, a network that tears frames, and a
// process that can be kill -9'd mid-request.
//
//   - Every attempt is bounded by a per-attempt receive timeout; an expired
//     wait closes the connection (its pipeline state is unknowable) and
//     retries on a fresh one.
//   - Retries back off exponentially with a cap, and a kShed refusal's
//     retry-after hint overrides the computed delay (the server knows its
//     own standing queue better than the client's guess).
//   - PUT/DELETE retries reuse one idempotency token per logical write, so
//     the server's dedup window collapses at-least-once delivery back to
//     exactly-once application. A write is only ever *indeterminate* when
//     every attempt died without a definitive answer (timeout / reset after
//     the frame may have reached the server) — kShed and kDeadlineExceeded
//     are definitive refusals (the server refuses before applying).
//   - GETs can be hedged: if the primary connection has not answered within
//     hedge_ms, the same read is issued on a second connection and the
//     first answer wins. Reads are idempotent so this is always safe.
//
// Single-threaded, like serve::Client. The chaos torture driver
// (tools/chaos.cc) builds its oracle on the indeterminate/definitive
// distinction above.
#ifndef MET_GUARD_RESILIENT_CLIENT_H_
#define MET_GUARD_RESILIENT_CLIENT_H_

#include <poll.h>
#include <time.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "guard/clock.h"
#include "io/status.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace met::guard {

class ResilientClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    uint32_t timeout_ms = 250;      // per-attempt receive budget
    uint32_t max_retries = 8;       // attempts = 1 + max_retries
    uint32_t backoff_base_ms = 2;   // capped exponential: base << (n-1)
    uint32_t backoff_cap_ms = 200;
    uint32_t deadline_ms = 0;       // attached to every request; 0 = none
    uint32_t hedge_ms = 0;          // hedge GETs after this wait; 0 = off
    uint64_t idem_seed = 1;         // namespaces this client's idem tokens
  };

  struct Stats {
    uint64_t timeouts = 0;            // per-attempt receive expiries
    uint64_t retries = 0;             // attempts beyond the first
    uint64_t reconnects = 0;          // connections re-established
    uint64_t hedges = 0;              // hedged GETs issued
    uint64_t hedge_wins = 0;          // hedge answered before the primary
    uint64_t shed = 0;                // kShed refusals observed
    uint64_t deadline_exceeded = 0;   // kDeadlineExceeded refusals observed
  };

  explicit ResilientClient(Options opts)
      : opts_(std::move(opts)),
        // Token 0 is reserved (means "no token"), so the stream starts at 1
        // within this client's seed-namespaced block.
        next_idem_((opts_.idem_seed << 40) | 1) {
    primary_.SetRecvTimeout(opts_.timeout_ms);
    primary_.set_deadline_ms(opts_.deadline_ms);
    hedge_.SetRecvTimeout(opts_.timeout_ms);
    hedge_.set_deadline_ms(opts_.deadline_ms);
  }

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  void Close() {
    primary_.Close();
    hedge_.Close();
  }

  const Stats& stats() const { return stats_; }

  /// OK means *resp holds a definitive server answer (possibly kShed after
  /// exhausting retries, or kDeadlineExceeded). Non-OK means every attempt
  /// died without one.
  io::Status Get(uint64_t key, serve::Response* resp) {
    io::Status last = io::Status::IoError("never attempted", 0);
    bool saw_shed = false;
    serve::Response shed_resp;
    for (uint32_t attempt = 0; attempt <= opts_.max_retries; ++attempt) {
      if (attempt > 0) {
        ++stats_.retries;
        Backoff(attempt);
      }
      if (io::Status st = EnsureConnected(); !st.ok()) {
        last = st;
        continue;
      }
      uint32_t id = primary_.SendGet(key);
      if (io::Status st = primary_.Flush(); !st.ok()) {
        last = FailAttempt(st);
        continue;
      }
      io::Status st;
      if (opts_.hedge_ms != 0 && opts_.hedge_ms < opts_.timeout_ms)
        st = HedgedRecv(key, id, resp);
      else
        st = primary_.RecvFor(id, resp);
      if (st.ok()) {
        if (Definitive(*resp, &saw_shed, &shed_resp)) return io::Status::OK();
        last = st;  // shed: retry after backoff (hint recorded)
        continue;
      }
      last = FailAttempt(st);
    }
    if (saw_shed) {  // every retry refused: surface the refusal, not an error
      *resp = shed_resp;
      return io::Status::OK();
    }
    return last;
  }

  io::Status Put(uint64_t key, uint64_t value, serve::Response* resp) {
    return Write(serve::OpCode::kPut, key, value, resp);
  }

  io::Status Delete(uint64_t key, serve::Response* resp) {
    return Write(serve::OpCode::kDelete, key, 0, resp);
  }

 private:
  /// Classifies a received response. Returns true when it is a final answer
  /// for the caller; false means kShed (retryable — the hint and response
  /// are recorded for the give-up path).
  bool Definitive(const serve::Response& resp, bool* saw_shed,
                  serve::Response* shed_resp) {
    if (resp.status == serve::RespStatus::kShed) {
      ++stats_.shed;
      retry_after_ms_ = resp.retry_after_ms;
      *saw_shed = true;
      *shed_resp = resp;
      return false;
    }
    if (resp.status == serve::RespStatus::kDeadlineExceeded)
      ++stats_.deadline_exceeded;
    return true;
  }

  io::Status Write(serve::OpCode op, uint64_t key, uint64_t value,
                   serve::Response* resp) {
    // One token for the logical write: every retry replays it, so the
    // server applies at most once no matter how many frames arrive.
    uint64_t token = next_idem_++;
    io::Status last = io::Status::IoError("never attempted", 0);
    bool saw_shed = false;
    serve::Response shed_resp;
    for (uint32_t attempt = 0; attempt <= opts_.max_retries; ++attempt) {
      if (attempt > 0) {
        ++stats_.retries;
        Backoff(attempt);
      }
      if (io::Status st = EnsureConnected(); !st.ok()) {
        last = st;
        continue;
      }
      uint32_t id = op == serve::OpCode::kPut
                        ? primary_.SendPut(key, value, token)
                        : primary_.SendDelete(key, token);
      if (io::Status st = primary_.Flush(); !st.ok()) {
        last = FailAttempt(st);
        continue;
      }
      io::Status st = primary_.RecvFor(id, resp);
      if (st.ok()) {
        if (Definitive(*resp, &saw_shed, &shed_resp)) return io::Status::OK();
        last = st;
        continue;
      }
      last = FailAttempt(st);
    }
    if (saw_shed) {
      *resp = shed_resp;
      return io::Status::OK();
    }
    return last;  // indeterminate: some attempt may have been applied
  }

  /// Books a failed attempt: counts a timeout if that is what it was, and
  /// closes the connection either way — after a receive error the pipeline
  /// state is unknowable, so the next attempt starts fresh.
  io::Status FailAttempt(const io::Status& st) {
    if (serve::Client::IsTimeout(st)) ++stats_.timeouts;
    primary_.Close();
    return st;
  }

  io::Status EnsureConnected() {
    if (primary_.connected()) return io::Status::OK();
    io::Status st = primary_.Connect(opts_.host, opts_.port);
    if (st.ok()) {
      if (ever_connected_) ++stats_.reconnects;
      ever_connected_ = true;
    }
    return st;
  }

  void Backoff(uint32_t attempt) {
    uint32_t shift = attempt > 1 ? attempt - 1 : 0;
    uint64_t ms = static_cast<uint64_t>(opts_.backoff_base_ms) << shift;
    ms = std::min<uint64_t>(ms, opts_.backoff_cap_ms);
    if (retry_after_ms_ != 0) {
      ms = retry_after_ms_;  // the server's hint beats the local guess
      retry_after_ms_ = 0;
    }
    SleepMs(ms);
  }

  static void SleepMs(uint64_t ms) {
    if (ms == 0) return;
    timespec ts;
    ts.tv_sec = static_cast<time_t>(ms / 1000);
    ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
    while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
    }
  }

  /// Waits for GET `pid` on the primary; after hedge_ms with no answer,
  /// issues the same read on the hedge connection and returns whichever
  /// answers first. Gives up (EAGAIN IoError, IsTimeout-true) when the full
  /// per-attempt budget expires with neither answering.
  io::Status HedgedRecv(uint64_t key, uint32_t pid, serve::Response* resp) {
    primary_.SetRecvTimeout(opts_.hedge_ms);
    io::Status st = primary_.RecvFor(pid, resp);
    primary_.SetRecvTimeout(opts_.timeout_ms);
    if (st.ok() || !serve::Client::IsTimeout(st)) return st;

    ++stats_.hedges;
    if (!hedge_.connected()) {
      if (!hedge_.Connect(opts_.host, opts_.port).ok()) {
        // No second path: fall back to waiting out the primary.
        return primary_.RecvFor(pid, resp);
      }
    }
    uint32_t hid = hedge_.SendGet(key);
    if (!hedge_.Flush().ok()) {
      hedge_.Close();
      return primary_.RecvFor(pid, resp);
    }

    uint64_t give_up =
        MonotonicNanos() + uint64_t(opts_.timeout_ms) * kNanosPerMilli;
    for (;;) {
      // Drain anything already buffered on either connection. Answers for
      // other ids (a stale hedge from a previous call) are dropped.
      for (int which = 0; which < 2; ++which) {
        serve::Client& c = which == 0 ? primary_ : hedge_;
        uint32_t want = which == 0 ? pid : hid;
        if (!c.connected()) continue;
        bool have = true;
        while (have) {
          serve::Response r;
          if (!c.TryRecv(&r, &have).ok()) {
            c.Close();
            break;
          }
          if (have && r.id == want) {
            *resp = std::move(r);
            if (which == 1) ++stats_.hedge_wins;
            return io::Status::OK();
          }
        }
      }
      if (!primary_.connected() && !hedge_.connected())
        return io::Status::IoError("hedged get: both connections died",
                                   ECONNRESET);
      uint64_t now = MonotonicNanos();
      if (now >= give_up)
        return io::Status::IoError("hedged get timed out", EAGAIN);
      pollfd fds[2];
      nfds_t n = 0;
      for (serve::Client* c : {&primary_, &hedge_}) {
        if (!c->connected()) continue;
        fds[n].fd = c->fd();
        fds[n].events = POLLIN;
        fds[n].revents = 0;
        ++n;
      }
      int wait_ms = static_cast<int>((give_up - now) / kNanosPerMilli) + 1;
      int rc = poll(fds, n, wait_ms);
      if (rc < 0 && errno != EINTR)
        return io::Status::IoError("poll", errno);
      if (rc <= 0) continue;
      for (nfds_t i = 0; i < n; ++i) {
        if (fds[i].revents == 0) continue;
        serve::Client& c = fds[i].fd == primary_.fd() ? primary_ : hedge_;
        // Poll said readable, so Fill returns without blocking; an error
        // (reset, EOF) kills that connection and the loop handles it.
        if (!c.Fill().ok()) c.Close();
      }
    }
  }

  Options opts_;
  serve::Client primary_;
  serve::Client hedge_;
  Stats stats_;
  uint64_t next_idem_;
  uint32_t retry_after_ms_ = 0;
  bool ever_connected_ = false;
};

}  // namespace met::guard

#endif  // MET_GUARD_RESILIENT_CLIENT_H_
