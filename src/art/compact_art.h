// Compact (static) ART: the Chapter 2 D-to-S result for the Adaptive Radix
// Tree. Because ART's trie shape prevents filling fixed-size nodes, every
// node is custom-sized to its exact content (Compaction rule): a node with n
// children uses Layout 1 (sorted key-byte array + child array of length
// exactly n) when n <= 227, else Layout 3 (a direct-indexed 256-pointer
// array), matching Section 2.2. Path compression stores the full prefix
// inline; single-key subtrees collapse into suffix leaves (lazy expansion).
#ifndef MET_ART_COMPACT_ART_H_
#define MET_ART_COMPACT_ART_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "prof/memory_breakdown.h"

namespace met {

class CompactArt {
 public:
  using Value = uint64_t;

  CompactArt() = default;
  ~CompactArt() { DestroyNode(root_); }

  CompactArt(const CompactArt&) = delete;
  CompactArt& operator=(const CompactArt&) = delete;

  /// Builds from sorted, unique keys with parallel values.
  void Build(const std::vector<std::string>& keys,
             const std::vector<Value>& values);

  /// Unified point lookup (met::ReadOnlyPointIndex surface).
  bool Lookup(std::string_view key, Value* value = nullptr) const;

  [[deprecated("use Lookup()")]] bool Find(std::string_view key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }


  /// Collects up to `n` values (and keys) from the smallest key >= `key`.
  size_t Scan(std::string_view key, size_t n, std::vector<Value>* out,
              std::vector<std::string>* keys_out = nullptr) const;

  /// In-order visit of all entries with reconstructed full keys.
  void VisitAll(const std::function<void(std::string_view, Value)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t MemoryBytes() const { return allocated_bytes_; }
  size_t MemoryUse() const { return MemoryBytes(); }

  /// Component attribution; node_bytes_/leaf_bytes_ are accumulated at the
  /// same allocation sites as allocated_bytes_, so TotalBytes() ==
  /// MemoryBytes() by construction.
  MemoryBreakdown Breakdown() const {
    MemoryBreakdown b("compact_art");
    b.Add("node_buffers", node_bytes_);
    b.Add("suffix_leaves", leaf_bytes_);
    return b;
  }

 private:
  static constexpr int kLayout1Max = 227;  // Section 2.2 threshold

  // Node buffer layout (raw allocation, 8-byte aligned):
  //   Header | prefix bytes | [terminal Value] | layout-specific arrays
  struct Header {
    uint8_t layout;  // 1 or 3
    uint8_t has_terminal;
    uint16_t num_children;
    uint32_t prefix_len;
  };

  struct Leaf {
    Value value;
    uint32_t suffix_len;
    char suffix[1];
  };

  static bool IsLeaf(const void* p) {
    return (reinterpret_cast<uintptr_t>(p) & 1) != 0;
  }
  static const Leaf* AsLeaf(const void* p) {
    return reinterpret_cast<const Leaf*>(reinterpret_cast<uintptr_t>(p) &
                                         ~uintptr_t{1});
  }
  static void* TagLeaf(Leaf* l) {
    return reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(l) | 1);
  }

  // Accessors into a raw node buffer.
  static const char* Prefix(const Header* h) {
    return reinterpret_cast<const char*>(h + 1);
  }
  static const Value* TerminalValue(const Header* h);
  static const unsigned char* Layout1Keys(const Header* h);
  static void* const* Children(const Header* h);

  void* BuildRange(const std::vector<std::string>& keys,
                   const std::vector<Value>& values, size_t lo, size_t hi,
                   size_t depth);
  void* AllocNode(uint8_t layout, bool has_terminal, uint16_t num_children,
                  std::string_view prefix);
  Leaf* AllocLeaf(std::string_view suffix, Value value);
  void DestroyNode(void* p);

  static const void* FindChildPtr(const Header* h, unsigned char byte);

  struct ScanState {
    std::string_view lower;
    size_t limit;
    size_t count = 0;
    std::vector<Value>* out;
    std::vector<std::string>* keys_out;
    std::string path;  // bytes of the current root-to-node path
  };
  static bool ScanNode(const void* p, bool past, ScanState* st);
  static bool EmitEntry(std::string_view suffix, Value value, bool past,
                        ScanState* st);

  static void VisitNode(const void* p, std::string* path,
                        const std::function<void(std::string_view, Value)>& fn);

  void* root_ = nullptr;
  size_t size_ = 0;
  size_t allocated_bytes_ = 0;
  size_t node_bytes_ = 0;
  size_t leaf_bytes_ = 0;
};

}  // namespace met

#endif  // MET_ART_COMPACT_ART_H_
