#include "art/art.h"

#include <algorithm>
#include <new>

namespace met {

// ---------- allocation ----------

Art::Leaf* Art::NewLeaf(std::string_view key, Value value) {
  void* mem = ::operator new(sizeof(Leaf) + key.size());
  Leaf* l = static_cast<Leaf*>(mem);
  l->value = value;
  l->key_len = static_cast<uint32_t>(key.size());
  std::memcpy(l->key_data, key.data(), key.size());
  return l;
}

void Art::FreeLeaf(Leaf* l) { ::operator delete(l); }

Art::Node* Art::NewNode(NodeType type) {
  switch (type) {
    case kNode4: {
      Node4* n = new Node4();
      n->type = kNode4;
      return n;
    }
    case kNode16: {
      Node16* n = new Node16();
      n->type = kNode16;
      return n;
    }
    case kNode48: {
      Node48* n = new Node48();
      n->type = kNode48;
      std::memset(n->child_index, 0xFF, sizeof(n->child_index));
      return n;
    }
    case kNode256:
    default: {
      Node256* n = new Node256();
      n->type = kNode256;
      return n;
    }
  }
}

void Art::FreeNode(Node* n) {
  switch (n->type) {
    case kNode4:
      delete static_cast<Node4*>(n);
      break;
    case kNode16:
      delete static_cast<Node16*>(n);
      break;
    case kNode48:
      delete static_cast<Node48*>(n);
      break;
    case kNode256:
      delete static_cast<Node256*>(n);
      break;
  }
}

void Art::DestroyNode(void* p) {
  if (p == nullptr) return;
  if (IsLeaf(p)) {
    FreeLeaf(AsLeaf(p));
    return;
  }
  Node* n = AsNode(p);
  if (n->terminal != nullptr) FreeLeaf(n->terminal);
  switch (n->type) {
    case kNode4: {
      Node4* n4 = static_cast<Node4*>(n);
      for (int i = 0; i < n->num_children; ++i) DestroyNode(n4->children[i]);
      break;
    }
    case kNode16: {
      Node16* n16 = static_cast<Node16*>(n);
      for (int i = 0; i < n->num_children; ++i) DestroyNode(n16->children[i]);
      break;
    }
    case kNode48: {
      Node48* n48 = static_cast<Node48*>(n);
      for (int i = 0; i < 48; ++i)
        if (n48->children[i] != nullptr) DestroyNode(n48->children[i]);
      break;
    }
    case kNode256: {
      Node256* n256 = static_cast<Node256*>(n);
      for (int i = 0; i < 256; ++i)
        if (n256->children[i] != nullptr) DestroyNode(n256->children[i]);
      break;
    }
  }
  FreeNode(n);
}

// ---------- child lookup / insertion ----------

void** Art::FindChild(Node* n, unsigned char byte) {
  switch (n->type) {
    case kNode4: {
      Node4* n4 = static_cast<Node4*>(n);
      for (int i = 0; i < n->num_children; ++i)
        if (n4->keys[i] == byte) return &n4->children[i];
      return nullptr;
    }
    case kNode16: {
      Node16* n16 = static_cast<Node16*>(n);
      for (int i = 0; i < n->num_children; ++i)
        if (n16->keys[i] == byte) return &n16->children[i];
      return nullptr;
    }
    case kNode48: {
      Node48* n48 = static_cast<Node48*>(n);
      if (n48->child_index[byte] == 0xFF) return nullptr;
      return &n48->children[n48->child_index[byte]];
    }
    case kNode256:
    default: {
      Node256* n256 = static_cast<Node256*>(n);
      if (n256->children[byte] == nullptr) return nullptr;
      return &n256->children[byte];
    }
  }
}

const void* const* Art::FindChild(const Node* n, unsigned char byte) {
  return FindChild(const_cast<Node*>(n), byte);
}

Art::Node* Art::Grow(Node* n) {
  switch (n->type) {
    case kNode4: {
      Node4* old = static_cast<Node4*>(n);
      Node16* nn = static_cast<Node16*>(NewNode(kNode16));
      *static_cast<Node*>(nn) = *static_cast<Node*>(old);
      nn->type = kNode16;
      std::memcpy(nn->keys, old->keys, old->num_children);
      std::memcpy(nn->children, old->children,
                  old->num_children * sizeof(void*));
      delete old;
      return nn;
    }
    case kNode16: {
      Node16* old = static_cast<Node16*>(n);
      Node48* nn = static_cast<Node48*>(NewNode(kNode48));
      NodeType t = nn->type;
      *static_cast<Node*>(nn) = *static_cast<Node*>(old);
      nn->type = t;
      for (int i = 0; i < old->num_children; ++i) {
        nn->child_index[old->keys[i]] = static_cast<unsigned char>(i);
        nn->children[i] = old->children[i];
      }
      delete old;
      return nn;
    }
    case kNode48:
    default: {
      Node48* old = static_cast<Node48*>(n);
      Node256* nn = static_cast<Node256*>(NewNode(kNode256));
      NodeType t = nn->type;
      *static_cast<Node*>(nn) = *static_cast<Node*>(old);
      nn->type = t;
      for (int b = 0; b < 256; ++b)
        if (old->child_index[b] != 0xFF)
          nn->children[b] = old->children[old->child_index[b]];
      delete old;
      return nn;
    }
  }
}

void Art::AddChild(Node** n_ref, unsigned char byte, void* child) {
  Node* n = *n_ref;
  switch (n->type) {
    case kNode4: {
      if (n->num_children == 4) {
        *n_ref = Grow(n);
        AddChild(n_ref, byte, child);
        return;
      }
      Node4* n4 = static_cast<Node4*>(n);
      int pos = 0;
      while (pos < n->num_children && n4->keys[pos] < byte) ++pos;
      for (int i = n->num_children; i > pos; --i) {
        n4->keys[i] = n4->keys[i - 1];
        n4->children[i] = n4->children[i - 1];
      }
      n4->keys[pos] = byte;
      n4->children[pos] = child;
      ++n->num_children;
      return;
    }
    case kNode16: {
      if (n->num_children == 16) {
        *n_ref = Grow(n);
        AddChild(n_ref, byte, child);
        return;
      }
      Node16* n16 = static_cast<Node16*>(n);
      int pos = 0;
      while (pos < n->num_children && n16->keys[pos] < byte) ++pos;
      for (int i = n->num_children; i > pos; --i) {
        n16->keys[i] = n16->keys[i - 1];
        n16->children[i] = n16->children[i - 1];
      }
      n16->keys[pos] = byte;
      n16->children[pos] = child;
      ++n->num_children;
      return;
    }
    case kNode48: {
      if (n->num_children == 48) {
        *n_ref = Grow(n);
        AddChild(n_ref, byte, child);
        return;
      }
      Node48* n48 = static_cast<Node48*>(n);
      int slot = 0;
      while (n48->children[slot] != nullptr) ++slot;  // holes reused after Erase
      n48->children[slot] = child;
      n48->child_index[byte] = static_cast<unsigned char>(slot);
      ++n->num_children;
      return;
    }
    case kNode256: {
      Node256* n256 = static_cast<Node256*>(n);
      n256->children[byte] = child;
      ++n->num_children;
      return;
    }
  }
}

// ---------- prefix handling ----------

const Art::Leaf* Art::AnyLeaf(const void* p) {
  while (!IsLeaf(p)) {
    const Node* n = AsNode(p);
    if (n->terminal != nullptr) return n->terminal;
    switch (n->type) {
      case kNode4:
        p = static_cast<const Node4*>(n)->children[0];
        break;
      case kNode16:
        p = static_cast<const Node16*>(n)->children[0];
        break;
      case kNode48: {
        const Node48* n48 = static_cast<const Node48*>(n);
        for (int b = 0; b < 256; ++b)
          if (n48->child_index[b] != 0xFF) {
            p = n48->children[n48->child_index[b]];
            break;
          }
        break;
      }
      case kNode256: {
        const Node256* n256 = static_cast<const Node256*>(n);
        for (int b = 0; b < 256; ++b)
          if (n256->children[b] != nullptr) {
            p = n256->children[b];
            break;
          }
        break;
      }
    }
  }
  return AsLeaf(p);
}

uint32_t Art::CheckPrefix(const Node* n, std::string_view key, size_t depth) {
  uint32_t cap = static_cast<uint32_t>(
      std::min<size_t>(n->prefix_len, key.size() > depth ? key.size() - depth : 0));
  uint32_t inline_cap = std::min<uint32_t>(cap, kMaxPrefix);
  uint32_t i = 0;
  for (; i < inline_cap; ++i)
    if (static_cast<unsigned char>(key[depth + i]) != n->prefix[i]) return i;
  if (cap > kMaxPrefix) {
    // Verify the tail against a stored key from the subtree.
    const Leaf* leaf = AnyLeaf(n);
    std::string_view lk = leaf->key();
    for (; i < cap; ++i)
      if (key[depth + i] != lk[depth + i]) return i;
  }
  return cap;
}

// ---------- point operations ----------

bool Art::Lookup(std::string_view key, Value* value) const {
  const void* p = root_;
  size_t depth = 0;
  while (p != nullptr) {
    if (IsLeaf(p)) {
      const Leaf* l = AsLeaf(p);
      if (l->key() == key) {
        if (value != nullptr) *value = l->value;
        return true;
      }
      return false;
    }
    const Node* n = AsNode(p);
    if (n->prefix_len > 0) {
      if (CheckPrefix(n, key, depth) < n->prefix_len) return false;
      depth += n->prefix_len;
    }
    if (key.size() == depth) {
      if (n->terminal != nullptr) {
        if (value != nullptr) *value = n->terminal->value;
        return true;
      }
      return false;
    }
    const void* const* child =
        FindChild(n, static_cast<unsigned char>(key[depth]));
    p = child != nullptr ? *child : nullptr;
    ++depth;
  }
  return false;
}

bool Art::Update(std::string_view key, Value value) {
  void* p = root_;
  size_t depth = 0;
  while (p != nullptr) {
    if (IsLeaf(p)) {
      Leaf* l = AsLeaf(p);
      if (l->key() == key) {
        l->value = value;
        return true;
      }
      return false;
    }
    Node* n = AsNode(p);
    if (n->prefix_len > 0) {
      if (CheckPrefix(n, key, depth) < n->prefix_len) return false;
      depth += n->prefix_len;
    }
    if (key.size() == depth) {
      if (n->terminal != nullptr) {
        n->terminal->value = value;
        return true;
      }
      return false;
    }
    void** child = FindChild(n, static_cast<unsigned char>(key[depth]));
    p = child != nullptr ? *child : nullptr;
    ++depth;
  }
  return false;
}

bool Art::InsertImpl(std::string_view key, Value value, bool overwrite) {
  bool inserted = InsertRecurse(&root_, key, 0, value, overwrite);
  if (inserted) ++size_;
  return inserted;
}

bool Art::InsertRecurse(void** ref, std::string_view key, size_t depth,
                        Value value, bool overwrite) {
  void* p = *ref;
  if (p == nullptr) {
    *ref = TagLeaf(NewLeaf(key, value));
    return true;
  }

  if (IsLeaf(p)) {
    Leaf* l = AsLeaf(p);
    std::string_view lkey = l->key();
    if (lkey == key) {
      if (overwrite) l->value = value;
      return false;
    }
    // Lazy expansion undone: split into a Node4 capturing the common prefix.
    size_t max_common = std::min(lkey.size(), key.size()) - depth;
    size_t common = 0;
    while (common < max_common && lkey[depth + common] == key[depth + common])
      ++common;
    Node4* nn = static_cast<Node4*>(NewNode(kNode4));
    nn->prefix_len = static_cast<uint32_t>(common);
    std::memcpy(nn->prefix, key.data() + depth,
                std::min<size_t>(common, kMaxPrefix));
    size_t d2 = depth + common;
    Node* nref = nn;
    if (lkey.size() == d2) {
      nn->terminal = l;
    } else {
      AddChild(&nref, static_cast<unsigned char>(lkey[d2]), TagLeaf(l));
    }
    Leaf* nl = NewLeaf(key, value);
    if (key.size() == d2) {
      nn->terminal = nl;
    } else {
      AddChild(&nref, static_cast<unsigned char>(key[d2]), TagLeaf(nl));
    }
    *ref = nref;
    return true;
  }

  Node* n = AsNode(p);
  if (n->prefix_len > 0) {
    uint32_t match = CheckPrefix(n, key, depth);
    if (match < n->prefix_len) {
      // Split the compressed path at `match`.
      Node4* nn = static_cast<Node4*>(NewNode(kNode4));
      nn->prefix_len = match;
      std::memcpy(nn->prefix, key.data() + depth,
                  std::min<size_t>(match, kMaxPrefix));
      // Determine the old node's branch byte and trim its prefix.
      const Leaf* sample = AnyLeaf(p);
      std::string_view sk = sample->key();
      unsigned char old_byte = static_cast<unsigned char>(sk[depth + match]);
      uint32_t new_len = n->prefix_len - match - 1;
      n->prefix_len = new_len;
      for (uint32_t i = 0; i < std::min<uint32_t>(new_len, kMaxPrefix); ++i)
        n->prefix[i] = static_cast<unsigned char>(sk[depth + match + 1 + i]);
      Node* nref = nn;
      AddChild(&nref, old_byte, n);
      size_t d2 = depth + match;
      Leaf* nl = NewLeaf(key, value);
      if (key.size() == d2) {
        nn->terminal = nl;
      } else {
        AddChild(&nref, static_cast<unsigned char>(key[d2]), TagLeaf(nl));
      }
      *ref = nref;
      return true;
    }
    depth += n->prefix_len;
  }

  if (key.size() == depth) {
    if (n->terminal != nullptr) {
      if (overwrite) n->terminal->value = value;
      return false;
    }
    n->terminal = NewLeaf(key, value);
    return true;
  }

  unsigned char byte = static_cast<unsigned char>(key[depth]);
  void** child = FindChild(n, byte);
  if (child != nullptr)
    return InsertRecurse(child, key, depth + 1, value, overwrite);

  Node* nref = n;
  AddChild(&nref, byte, TagLeaf(NewLeaf(key, value)));
  *ref = nref;
  return true;
}

bool Art::Erase(std::string_view key) {
  bool erased = false;
  root_ = EraseRecurse(root_, key, 0, &erased);
  if (erased) --size_;
  return erased;
}

/// Removes `key` from the subtree at `p`; returns the (possibly replaced)
/// subtree pointer. Nodes whose last entry is removed are freed, so no
/// reachable node is ever empty (AnyLeaf and path splits rely on that).
/// Shrinking node layouts and collapsing single-child paths stay lazy.
void* Art::EraseRecurse(void* p, std::string_view key, size_t depth,
                        bool* erased) {
  if (p == nullptr) return nullptr;
  if (IsLeaf(p)) {
    Leaf* l = AsLeaf(p);
    if (l->key() != key) return p;
    FreeLeaf(l);
    *erased = true;
    return nullptr;
  }
  Node* n = AsNode(p);
  if (n->prefix_len > 0) {
    if (CheckPrefix(n, key, depth) < n->prefix_len) return p;
    depth += n->prefix_len;
  }
  if (key.size() == depth) {
    if (n->terminal == nullptr) return p;
    FreeLeaf(n->terminal);
    n->terminal = nullptr;
    *erased = true;
  } else {
    unsigned char byte = static_cast<unsigned char>(key[depth]);
    void** child = FindChild(n, byte);
    if (child == nullptr) return p;
    void* nc = EraseRecurse(*child, key, depth + 1, erased);
    if (nc == nullptr) {
      RemoveChild(n, byte, child);
    } else {
      *child = nc;
    }
  }
  if (n->num_children == 0 && n->terminal == nullptr) {
    FreeNode(n);
    return nullptr;
  }
  return p;
}

void Art::RemoveChild(Node* n, unsigned char byte, void** child_slot) {
  switch (n->type) {
    case kNode4: {
      Node4* n4 = static_cast<Node4*>(n);
      int pos = static_cast<int>(child_slot - n4->children);
      for (int i = pos; i + 1 < n->num_children; ++i) {
        n4->keys[i] = n4->keys[i + 1];
        n4->children[i] = n4->children[i + 1];
      }
      --n->num_children;
      n4->children[n->num_children] = nullptr;
      break;
    }
    case kNode16: {
      Node16* n16 = static_cast<Node16*>(n);
      int pos = static_cast<int>(child_slot - n16->children);
      for (int i = pos; i + 1 < n->num_children; ++i) {
        n16->keys[i] = n16->keys[i + 1];
        n16->children[i] = n16->children[i + 1];
      }
      --n->num_children;
      n16->children[n->num_children] = nullptr;
      break;
    }
    case kNode48: {
      Node48* n48 = static_cast<Node48*>(n);
      n48->children[n48->child_index[byte]] = nullptr;
      n48->child_index[byte] = 0xFF;
      --n->num_children;
      break;
    }
    case kNode256: {
      Node256* n256 = static_cast<Node256*>(n);
      n256->children[byte] = nullptr;
      --n->num_children;
      break;
    }
  }
}

// ---------- scans ----------

bool Art::EmitLeaf(const Leaf* l, bool past, ScanState* st) {
  if (!past && l->key() < st->lower) return false;
  if (st->count >= st->limit) return true;
  if (st->out != nullptr) st->out->push_back(l->value);
  if (st->keys_out != nullptr) st->keys_out->emplace_back(l->key());
  ++st->count;
  return st->count >= st->limit;
}

bool Art::ScanNode(const void* p, size_t depth, bool past, ScanState* st) {
  if (p == nullptr) return false;
  if (IsLeaf(p)) return EmitLeaf(AsLeaf(p), past, st);

  const Node* n = AsNode(p);
  size_t d2 = depth + n->prefix_len;
  unsigned char descend_byte = 0;
  bool has_descend = false;

  if (!past) {
    // Compare the node's compressed prefix against lower[depth..].
    std::string_view lower = st->lower;
    size_t rem = lower.size() > depth ? lower.size() - depth : 0;
    uint32_t cap = static_cast<uint32_t>(std::min<size_t>(n->prefix_len, rem));
    const Leaf* sample = (n->prefix_len > kMaxPrefix) ? AnyLeaf(p) : nullptr;
    for (uint32_t i = 0; i < cap; ++i) {
      unsigned char pb =
          i < kMaxPrefix ? n->prefix[i]
                         : static_cast<unsigned char>(sample->key()[depth + i]);
      unsigned char lb = static_cast<unsigned char>(lower[depth + i]);
      if (pb > lb) {
        past = true;  // whole subtree sorts after `lower`
        break;
      }
      if (pb < lb) return false;  // whole subtree sorts before `lower`
    }
    if (!past) {
      if (rem <= n->prefix_len) {
        past = true;  // lower is exhausted within this node's path
      } else {
        descend_byte = static_cast<unsigned char>(lower[d2]);
        has_descend = true;
      }
    }
  }

  if (past && n->terminal != nullptr) {
    if (EmitLeaf(n->terminal, true, st)) return true;
  }

  // Visit children in byte order.
  auto visit = [&](unsigned char byte, const void* child) -> bool {
    if (has_descend) {
      if (byte < descend_byte) return false;
      if (byte == descend_byte) return ScanNode(child, d2 + 1, false, st);
      return ScanNode(child, d2 + 1, true, st);
    }
    return ScanNode(child, d2 + 1, past, st);
  };

  switch (n->type) {
    case kNode4: {
      const Node4* n4 = static_cast<const Node4*>(n);
      for (int i = 0; i < n->num_children; ++i)
        if (visit(n4->keys[i], n4->children[i])) return true;
      break;
    }
    case kNode16: {
      const Node16* n16 = static_cast<const Node16*>(n);
      for (int i = 0; i < n->num_children; ++i)
        if (visit(n16->keys[i], n16->children[i])) return true;
      break;
    }
    case kNode48: {
      const Node48* n48 = static_cast<const Node48*>(n);
      for (int b = 0; b < 256; ++b)
        if (n48->child_index[b] != 0xFF)
          if (visit(static_cast<unsigned char>(b),
                    n48->children[n48->child_index[b]]))
            return true;
      break;
    }
    case kNode256: {
      const Node256* n256 = static_cast<const Node256*>(n);
      for (int b = 0; b < 256; ++b)
        if (n256->children[b] != nullptr)
          if (visit(static_cast<unsigned char>(b), n256->children[b])) return true;
      break;
    }
  }
  return false;
}

size_t Art::Scan(std::string_view key, size_t n, std::vector<Value>* out,
                 std::vector<std::string>* keys_out) const {
  ScanState st{key, n, 0, out, keys_out};
  ScanNode(root_, 0, false, &st);
  return st.count;
}

void Art::VisitAll(
    const std::function<void(std::string_view, Value)>& fn) const {
  VisitNode(root_, fn);
}

void Art::VisitNode(const void* p,
                    const std::function<void(std::string_view, Value)>& fn) {
  if (p == nullptr) return;
  if (IsLeaf(p)) {
    const Leaf* l = AsLeaf(p);
    fn(l->key(), l->value);
    return;
  }
  const Node* n = AsNode(p);
  if (n->terminal != nullptr) fn(n->terminal->key(), n->terminal->value);
  switch (n->type) {
    case kNode4: {
      const Node4* n4 = static_cast<const Node4*>(n);
      for (int i = 0; i < n->num_children; ++i) VisitNode(n4->children[i], fn);
      break;
    }
    case kNode16: {
      const Node16* n16 = static_cast<const Node16*>(n);
      for (int i = 0; i < n->num_children; ++i) VisitNode(n16->children[i], fn);
      break;
    }
    case kNode48: {
      const Node48* n48 = static_cast<const Node48*>(n);
      for (int b = 0; b < 256; ++b)
        if (n48->child_index[b] != 0xFF)
          VisitNode(n48->children[n48->child_index[b]], fn);
      break;
    }
    case kNode256: {
      const Node256* n256 = static_cast<const Node256*>(n);
      for (int b = 0; b < 256; ++b)
        if (n256->children[b] != nullptr) VisitNode(n256->children[b], fn);
      break;
    }
  }
}

// ---------- statistics ----------

namespace {

struct ArtStats {
  size_t bytes = 0;
  size_t slots = 0;
  size_t used = 0;
  // Per-layout attribution; the four node categories plus leaves sum to
  // `bytes` (Breakdown() relies on this).
  size_t node4_bytes = 0;
  size_t node16_bytes = 0;
  size_t node48_bytes = 0;
  size_t node256_bytes = 0;
  size_t leaf_bytes = 0;
};

}  // namespace

void Art::StatNode(const void* p, void* stats_void) {
  if (p == nullptr) return;
  ArtStats* stats = static_cast<ArtStats*>(stats_void);
  if (IsLeaf(p)) {
    const Leaf* l = AsLeaf(p);
    stats->bytes += sizeof(Leaf) + l->key_len;
    stats->leaf_bytes += sizeof(Leaf) + l->key_len;
    return;
  }
  const Node* n = AsNode(p);
  if (n->terminal != nullptr) {
    stats->bytes += sizeof(Leaf) + n->terminal->key_len;
    stats->leaf_bytes += sizeof(Leaf) + n->terminal->key_len;
  }
  stats->used += n->num_children;
  switch (n->type) {
    case kNode4: {
      stats->bytes += sizeof(Node4);
      stats->node4_bytes += sizeof(Node4);
      stats->slots += 4;
      const Node4* n4 = static_cast<const Node4*>(n);
      for (int i = 0; i < n->num_children; ++i) StatNode(n4->children[i], stats);
      break;
    }
    case kNode16: {
      stats->bytes += sizeof(Node16);
      stats->node16_bytes += sizeof(Node16);
      stats->slots += 16;
      const Node16* n16 = static_cast<const Node16*>(n);
      for (int i = 0; i < n->num_children; ++i) StatNode(n16->children[i], stats);
      break;
    }
    case kNode48: {
      stats->bytes += sizeof(Node48);
      stats->node48_bytes += sizeof(Node48);
      stats->slots += 48;
      const Node48* n48 = static_cast<const Node48*>(n);
      for (int b = 0; b < 256; ++b)
        if (n48->child_index[b] != 0xFF)
          StatNode(n48->children[n48->child_index[b]], stats);
      break;
    }
    case kNode256: {
      stats->bytes += sizeof(Node256);
      stats->node256_bytes += sizeof(Node256);
      stats->slots += 256;
      const Node256* n256 = static_cast<const Node256*>(n);
      for (int b = 0; b < 256; ++b)
        if (n256->children[b] != nullptr) StatNode(n256->children[b], stats);
      break;
    }
  }
}

size_t Art::MemoryBytes() const {
  ArtStats stats;
  StatNode(root_, &stats);
  return stats.bytes;
}

MemoryBreakdown Art::Breakdown() const {
  ArtStats stats;
  StatNode(root_, &stats);
  MemoryBreakdown b("art");
  b.Add("node4", stats.node4_bytes);
  b.Add("node16", stats.node16_bytes);
  b.Add("node48", stats.node48_bytes);
  b.Add("node256", stats.node256_bytes);
  b.Add("leaves", stats.leaf_bytes);
  return b;
}

double Art::NodeOccupancy() const {
  ArtStats stats;
  StatNode(root_, &stats);
  return stats.slots == 0 ? 0.0
                          : static_cast<double>(stats.used) / stats.slots;
}

}  // namespace met
