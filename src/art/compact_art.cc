#include "art/compact_art.h"

#include <cstring>
#include <new>

#include "common/assert.h"
#include "common/bits.h"

namespace met {

// ---------- buffer layout ----------
//
// Header | prefix[prefix_len] | pad to 8 | [Value terminal] |
//   layout 1: keys[n] | pad to 8 | void* children[n]
//   layout 3: void* children[256]

namespace {

size_t TerminalOffset(uint32_t prefix_len) {
  return RoundUp(sizeof(CompactArt::Value) * 0 + 8 /*header*/ + prefix_len, 8);
}

}  // namespace

const CompactArt::Value* CompactArt::TerminalValue(const Header* h) {
  const char* base = reinterpret_cast<const char*>(h);
  return reinterpret_cast<const Value*>(base + TerminalOffset(h->prefix_len));
}

const unsigned char* CompactArt::Layout1Keys(const Header* h) {
  const char* base = reinterpret_cast<const char*>(h);
  size_t off = TerminalOffset(h->prefix_len) + (h->has_terminal ? sizeof(Value) : 0);
  return reinterpret_cast<const unsigned char*>(base + off);
}

void* const* CompactArt::Children(const Header* h) {
  const char* base = reinterpret_cast<const char*>(h);
  size_t off = TerminalOffset(h->prefix_len) + (h->has_terminal ? sizeof(Value) : 0);
  if (h->layout == 1) off = RoundUp(off + h->num_children, 8);
  return reinterpret_cast<void* const*>(base + off);
}

void* CompactArt::AllocNode(uint8_t layout, bool has_terminal,
                            uint16_t num_children, std::string_view prefix) {
  size_t off = TerminalOffset(static_cast<uint32_t>(prefix.size())) +
               (has_terminal ? sizeof(Value) : 0);
  size_t bytes;
  if (layout == 1) {
    bytes = RoundUp(off + num_children, 8) + num_children * sizeof(void*);
  } else {
    bytes = off + 256 * sizeof(void*);
  }
  void* mem = ::operator new(bytes);
  std::memset(mem, 0, bytes);
  Header* h = static_cast<Header*>(mem);
  h->layout = layout;
  h->has_terminal = has_terminal;
  h->num_children = num_children;
  h->prefix_len = static_cast<uint32_t>(prefix.size());
  std::memcpy(const_cast<char*>(Prefix(h)), prefix.data(), prefix.size());
  allocated_bytes_ += bytes;
  node_bytes_ += bytes;
  return mem;
}

CompactArt::Leaf* CompactArt::AllocLeaf(std::string_view suffix, Value value) {
  size_t bytes = sizeof(Leaf) + suffix.size();
  void* mem = ::operator new(bytes);
  Leaf* l = static_cast<Leaf*>(mem);
  l->value = value;
  l->suffix_len = static_cast<uint32_t>(suffix.size());
  std::memcpy(l->suffix, suffix.data(), suffix.size());
  allocated_bytes_ += bytes;
  leaf_bytes_ += bytes;
  return l;
}

void CompactArt::DestroyNode(void* p) {
  if (p == nullptr) return;
  if (IsLeaf(p)) {
    ::operator delete(const_cast<Leaf*>(AsLeaf(p)));
    return;
  }
  Header* h = static_cast<Header*>(p);
  void* const* children = Children(h);
  if (h->layout == 1) {
    for (int i = 0; i < h->num_children; ++i) DestroyNode(children[i]);
  } else {
    for (int b = 0; b < 256; ++b)
      if (children[b] != nullptr) DestroyNode(children[b]);
  }
  ::operator delete(p);
}

// ---------- build ----------

void CompactArt::Build(const std::vector<std::string>& keys,
                       const std::vector<Value>& values) {
  MET_ASSERT(keys.size() == values.size());
  DestroyNode(root_);
  root_ = nullptr;
  allocated_bytes_ = 0;
  node_bytes_ = 0;
  leaf_bytes_ = 0;
  size_ = keys.size();
  if (!keys.empty()) root_ = BuildRange(keys, values, 0, keys.size(), 0);
}

void* CompactArt::BuildRange(const std::vector<std::string>& keys,
                             const std::vector<Value>& values, size_t lo,
                             size_t hi, size_t depth) {
  if (hi - lo == 1) {
    std::string_view k = keys[lo];
    return TagLeaf(AllocLeaf(k.substr(depth), values[lo]));
  }
  // Common prefix of a sorted range equals the common prefix of its
  // first and last keys.
  std::string_view first = keys[lo], last = keys[hi - 1];
  size_t common = 0;
  size_t max_common = std::min(first.size(), last.size()) - depth;
  while (common < max_common && first[depth + common] == last[depth + common])
    ++common;
  size_t d2 = depth + common;

  bool has_terminal = first.size() == d2;
  size_t child_begin = lo + (has_terminal ? 1 : 0);

  // Group the remaining keys by their byte at d2.
  struct Group {
    unsigned char byte;
    size_t lo, hi;
  };
  std::vector<Group> groups;
  size_t i = child_begin;
  while (i < hi) {
    unsigned char b = static_cast<unsigned char>(keys[i][d2]);
    size_t j = i + 1;
    while (j < hi && static_cast<unsigned char>(keys[j][d2]) == b) ++j;
    groups.push_back({b, i, j});
    i = j;
  }

  uint8_t layout = groups.size() <= kLayout1Max ? 1 : 3;
  void* mem = AllocNode(layout, has_terminal,
                        static_cast<uint16_t>(groups.size()),
                        first.substr(depth, common));
  Header* h = static_cast<Header*>(mem);
  if (has_terminal)
    *const_cast<Value*>(TerminalValue(h)) = values[lo];

  void** children = const_cast<void**>(Children(h));
  unsigned char* kbytes = const_cast<unsigned char*>(Layout1Keys(h));
  for (size_t g = 0; g < groups.size(); ++g) {
    void* child = BuildRange(keys, values, groups[g].lo, groups[g].hi, d2 + 1);
    if (layout == 1) {
      kbytes[g] = groups[g].byte;
      children[g] = child;
    } else {
      children[groups[g].byte] = child;
    }
  }
  return mem;
}

// ---------- lookup ----------

const void* CompactArt::FindChildPtr(const Header* h, unsigned char byte) {
  void* const* children = Children(h);
  if (h->layout == 3) return children[byte];
  const unsigned char* kbytes = Layout1Keys(h);
  int lo = 0, hi = h->num_children;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (kbytes[mid] < byte)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo < h->num_children && kbytes[lo] == byte) return children[lo];
  return nullptr;
}

bool CompactArt::Lookup(std::string_view key, Value* value) const {
  const void* p = root_;
  size_t depth = 0;
  while (p != nullptr) {
    if (IsLeaf(p)) {
      const Leaf* l = AsLeaf(p);
      if (key.size() - depth == l->suffix_len &&
          std::memcmp(key.data() + depth, l->suffix, l->suffix_len) == 0) {
        if (value != nullptr) *value = l->value;
        return true;
      }
      return false;
    }
    const Header* h = static_cast<const Header*>(p);
    if (h->prefix_len > 0) {
      if (key.size() - depth < h->prefix_len) return false;
      if (std::memcmp(key.data() + depth, Prefix(h), h->prefix_len) != 0)
        return false;
      depth += h->prefix_len;
    }
    if (key.size() == depth) {
      if (!h->has_terminal) return false;
      if (value != nullptr) *value = *TerminalValue(h);
      return true;
    }
    p = FindChildPtr(h, static_cast<unsigned char>(key[depth]));
    ++depth;
  }
  return false;
}

// ---------- scans ----------

bool CompactArt::EmitEntry(std::string_view suffix, Value value, bool past,
                           ScanState* st) {
  if (!past) {
    // path + suffix vs lower: path == lower[0..path.size) by invariant.
    std::string_view rest = st->lower.size() > st->path.size()
                                ? st->lower.substr(st->path.size())
                                : std::string_view{};
    if (suffix < rest) return false;
  }
  if (st->count >= st->limit) return true;
  if (st->out != nullptr) st->out->push_back(value);
  if (st->keys_out != nullptr) {
    std::string full = st->path;
    full.append(suffix);
    st->keys_out->push_back(std::move(full));
  }
  ++st->count;
  return st->count >= st->limit;
}

bool CompactArt::ScanNode(const void* p, bool past, ScanState* st) {
  if (p == nullptr) return false;
  if (IsLeaf(p)) {
    const Leaf* l = AsLeaf(p);
    return EmitEntry({l->suffix, l->suffix_len}, l->value, past, st);
  }
  const Header* h = static_cast<const Header*>(p);
  size_t depth = st->path.size();
  std::string_view prefix(Prefix(h), h->prefix_len);

  unsigned char descend_byte = 0;
  bool has_descend = false;
  if (!past) {
    std::string_view lower = st->lower;
    size_t rem = lower.size() > depth ? lower.size() - depth : 0;
    size_t cap = std::min<size_t>(h->prefix_len, rem);
    int cmp = std::memcmp(prefix.data(), lower.data() + depth, cap);
    if (cmp > 0) {
      past = true;
    } else if (cmp < 0) {
      return false;
    } else if (rem <= h->prefix_len) {
      past = true;  // lower exhausted within the path
    } else {
      descend_byte = static_cast<unsigned char>(lower[depth + h->prefix_len]);
      has_descend = true;
    }
  }

  st->path.append(prefix);
  bool stop = false;
  if (past && h->has_terminal) stop = EmitEntry({}, *TerminalValue(h), true, st);

  auto visit = [&](unsigned char byte, const void* child) -> bool {
    if (has_descend && byte < descend_byte) return false;
    st->path.push_back(static_cast<char>(byte));
    bool child_past = past || (has_descend && byte > descend_byte);
    bool s = ScanNode(child, child_past, st);
    st->path.pop_back();
    return s;
  };

  void* const* children = Children(h);
  if (!stop) {
    if (h->layout == 1) {
      const unsigned char* kbytes = Layout1Keys(h);
      for (int i = 0; i < h->num_children && !stop; ++i)
        stop = visit(kbytes[i], children[i]);
    } else {
      for (int b = 0; b < 256 && !stop; ++b)
        if (children[b] != nullptr)
          stop = visit(static_cast<unsigned char>(b), children[b]);
    }
  }
  st->path.resize(depth);
  return stop;
}

size_t CompactArt::Scan(std::string_view key, size_t n, std::vector<Value>* out,
                        std::vector<std::string>* keys_out) const {
  ScanState st{key, n, 0, out, keys_out, std::string()};
  ScanNode(root_, false, &st);
  return st.count;
}

void CompactArt::VisitNode(
    const void* p, std::string* path,
    const std::function<void(std::string_view, Value)>& fn) {
  if (p == nullptr) return;
  if (IsLeaf(p)) {
    const Leaf* l = AsLeaf(p);
    size_t n = path->size();
    path->append(l->suffix, l->suffix_len);
    fn(*path, l->value);
    path->resize(n);
    return;
  }
  const Header* h = static_cast<const Header*>(p);
  size_t n = path->size();
  path->append(Prefix(h), h->prefix_len);
  if (h->has_terminal) fn(*path, *TerminalValue(h));
  void* const* children = Children(h);
  if (h->layout == 1) {
    const unsigned char* kbytes = Layout1Keys(h);
    for (int i = 0; i < h->num_children; ++i) {
      path->push_back(static_cast<char>(kbytes[i]));
      VisitNode(children[i], path, fn);
      path->pop_back();
    }
  } else {
    for (int b = 0; b < 256; ++b)
      if (children[b] != nullptr) {
        path->push_back(static_cast<char>(b));
        VisitNode(children[b], path, fn);
        path->pop_back();
      }
  }
  path->resize(n);
}

void CompactArt::VisitAll(
    const std::function<void(std::string_view, Value)>& fn) const {
  std::string path;
  VisitNode(root_, &path, fn);
}

}  // namespace met
