// Adaptive Radix Tree (Leis et al., ICDE'13), the thesis's trie baseline
// (Section 2.1). 256-way radix tree over arbitrary byte-string keys with
// four adaptive node layouts (Node4/16/48/256), path compression (hybrid:
// up to kMaxPrefix bytes inline, longer prefixes verified against a leaf)
// and lazy expansion (single-key subtrees stored as leaves).
//
// Keys that are proper prefixes of other keys are supported by giving every
// internal node an optional terminal leaf ("the path to this node is itself
// a stored key"), mirroring FST's IsPrefixKey bit.
#ifndef MET_ART_ART_H_
#define MET_ART_ART_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "check/fwd.h"
#include "common/assert.h"
#include "prof/memory_breakdown.h"

namespace met {

class Art {
 public:
  using Value = uint64_t;

  Art() = default;
  ~Art() { DestroyNode(root_); }

  Art(const Art&) = delete;
  Art& operator=(const Art&) = delete;

  /// Inserts; returns false (tree unchanged) if the key exists.
  bool Insert(std::string_view key, Value value) {
    return InsertImpl(key, value, /*overwrite=*/false);
  }

  void InsertOrAssign(std::string_view key, Value value) {
    InsertImpl(key, value, /*overwrite=*/true);
  }

  /// Unified point lookup (met::RangeIndex surface).
  bool Lookup(std::string_view key, Value* value = nullptr) const;

  [[deprecated("use Lookup()")]] bool Find(std::string_view key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }


  /// Overwrites an existing key's value; false if absent.
  bool Update(std::string_view key, Value value);

  /// Removes a key (node layouts are not shrunk). False if absent.
  bool Erase(std::string_view key);

  /// Collects up to `n` values (and keys, if `keys_out` != nullptr) starting
  /// at the smallest key >= `key`, in key order. Returns the count.
  size_t Scan(std::string_view key, size_t n, std::vector<Value>* out,
              std::vector<std::string>* keys_out = nullptr) const;

  /// In-order visit of all entries (used to stream sorted entries out for
  /// merging into a compact structure).
  void VisitAll(const std::function<void(std::string_view, Value)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    DestroyNode(root_);
    root_ = nullptr;
    size_ = 0;
  }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const;

  /// Per-node-layout attribution; TotalBytes() == MemoryBytes() (same walk).
  MemoryBreakdown Breakdown() const;

  /// Fraction of allocated child slots in use (Section 2.2 reports ~51%
  /// for 64-bit random integer keys).
  double NodeOccupancy() const;

  /// Verifies node-type bounds, in-node label ordering, Node48 index
  /// bijection, path-compression prefix consistency, and leaf count.
  /// No-op unless MET_CHECK_ENABLED (impl in check/art_check.cc).
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return CheckValidate(os);
#else
    (void)os;
    return true;
#endif
  }

 private:
  bool CheckValidate(std::ostream& os) const;  // check/art_check.cc
  friend struct check::TestAccess;

  static constexpr int kMaxPrefix = 10;

  enum NodeType : uint8_t { kNode4, kNode16, kNode48, kNode256 };

  struct Leaf {
    Value value;
    uint32_t key_len;
    char key_data[1];  // key_len bytes

    std::string_view key() const { return {key_data, key_len}; }
  };

  struct Node {
    NodeType type;
    uint16_t num_children = 0;
    uint32_t prefix_len = 0;                 // full length (may exceed inline)
    unsigned char prefix[kMaxPrefix] = {0};  // first min(prefix_len, 10) bytes
    Leaf* terminal = nullptr;  // key ending exactly at this node, if any
  };

  struct Node4 : Node {
    unsigned char keys[4];
    void* children[4] = {nullptr, nullptr, nullptr, nullptr};
  };

  struct Node16 : Node {
    unsigned char keys[16];
    void* children[16] = {};
  };

  struct Node48 : Node {
    unsigned char child_index[256];  // 0xFF = empty
    void* children[48] = {};
  };

  struct Node256 : Node {
    void* children[256] = {};
  };

  // --- tagged pointers: LSB set = Leaf* ---
  static bool IsLeaf(const void* p) {
    return (reinterpret_cast<uintptr_t>(p) & 1) != 0;
  }
  static Leaf* AsLeaf(void* p) {
    return reinterpret_cast<Leaf*>(reinterpret_cast<uintptr_t>(p) & ~uintptr_t{1});
  }
  static const Leaf* AsLeaf(const void* p) {
    return reinterpret_cast<const Leaf*>(reinterpret_cast<uintptr_t>(p) &
                                         ~uintptr_t{1});
  }
  static void* TagLeaf(Leaf* l) {
    return reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(l) | 1);
  }
  static Node* AsNode(void* p) { return static_cast<Node*>(p); }
  static const Node* AsNode(const void* p) { return static_cast<const Node*>(p); }

  static Leaf* NewLeaf(std::string_view key, Value value);
  static void FreeLeaf(Leaf* l);
  static Node* NewNode(NodeType type);
  static void FreeNode(Node* n);
  void DestroyNode(void* p);

  static void** FindChild(Node* n, unsigned char byte);
  static const void* const* FindChild(const Node* n, unsigned char byte);
  static void AddChild(Node** n_ref, unsigned char byte, void* child);
  static void RemoveChild(Node* n, unsigned char byte, void** child_slot);
  static Node* Grow(Node* n);
  static void VisitNode(const void* p,
                        const std::function<void(std::string_view, Value)>& fn);
  static void StatNode(const void* p, void* stats_void);

  /// Compares key[depth..] with the node's compressed prefix. Returns the
  /// number of matching bytes; uses `any_leaf` for bytes beyond the inline
  /// prefix window.
  static uint32_t CheckPrefix(const Node* n, std::string_view key, size_t depth);
  static const Leaf* AnyLeaf(const void* p);

  bool InsertImpl(std::string_view key, Value value, bool overwrite);
  void* EraseRecurse(void* p, std::string_view key, size_t depth, bool* erased);
  bool InsertRecurse(void** ref, std::string_view key, size_t depth, Value value,
                     bool overwrite);

  struct ScanState {
    std::string_view lower;
    size_t limit;
    size_t count = 0;
    std::vector<Value>* out;
    std::vector<std::string>* keys_out;
  };
  // Returns true when the limit has been reached.
  static bool ScanNode(const void* p, size_t depth, bool past, ScanState* st);
  static bool EmitLeaf(const Leaf* l, bool past, ScanState* st);

  void* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace met

#endif  // MET_ART_ART_H_
