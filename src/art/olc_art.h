// Concurrent ART with optimistic lock coupling (common/olc.h), in the style
// of Leis et al., "The ART of Practical Synchronization" (DaMoN'16).
//
// Structure mirrors met::Art (Node4/16/48/256, tagged leaf pointers,
// per-node terminal leaf for prefix keys) with three deliberate deviations
// that make the concurrent protocol tractable:
//
//   1. The compressed prefix is always fully inline (prefix_len <=
//      kMaxPrefix). Longer common prefixes become chains of Node4s, so no
//      path ever needs the sequential tree's AnyLeaf probe — which would
//      read an arbitrary leaf with no version protecting it.
//   2. Erase never unlinks or shrinks interior nodes; empty and underfull
//      nodes are tolerated (reclaimed wholesale by merges in the hybrid).
//      Only growth (Node4->16->48->256) replaces a node, retiring the old
//      one through the epoch domain.
//   3. Value updates are in-place atomic exchanges on the leaf. A racing
//      same-key erase can lose such an update (last-writer-wins); under
//      per-key serialization — which every in-tree caller provides — all
//      outcomes and the size counter are exact.
//
// Synchronization: every node carries an olc::VersionLock. Readers descend
// optimistically, validating the version after each decision; writers
// upgrade the one or two node locks they mutate under. All optimistically
// read payload fields are std::atomic (relaxed/acquire) so TSan sees the
// protocol. Replaced nodes and erased leaves are retired to the
// hybrid::EpochDomain; concurrent readers must therefore hold an epoch pin
// (hybrid::EpochGuard on epoch()) whenever writers may run — the EpochToken
// overloads make that contract part of the signature.
#ifndef MET_ART_OLC_ART_H_
#define MET_ART_OLC_ART_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/index_api.h"
#include "common/olc.h"
#include "hybrid/epoch.h"
#include "prof/memory_breakdown.h"

namespace met {

class OlcArt {
 public:
  using Key = std::string;
  using Value = uint64_t;

  /// Passing a domain shares reclamation with the owner (the OLC hybrid
  /// passes its own so one guard covers snapshot and nodes); without one the
  /// tree owns a private domain.
  explicit OlcArt(hybrid::EpochDomain* domain = nullptr,
                  int restart_budget = olc::kDefaultRestartBudget)
      : restart_budget_(restart_budget) {
    if (domain == nullptr) {
      owned_domain_ = std::make_unique<hybrid::EpochDomain>();
      domain = owned_domain_.get();
    }
    epoch_ = domain;
  }

  ~OlcArt() { DestroyRec(root_.load(std::memory_order_relaxed)); }

  OlcArt(const OlcArt&) = delete;
  OlcArt& operator=(const OlcArt&) = delete;

  /// The reclamation domain retired nodes go to. Concurrent readers pin it.
  hybrid::EpochDomain& epoch() const { return *epoch_; }

  // --- native outcome-returning operations ---

  /// Insert-or-assign. kInserted if the key was absent, else kUpdated with
  /// the old value in *prev.
  MutateOutcome Upsert(std::string_view key, Value value,
                       Value* prev = nullptr) {
    return MutateLoop(key, value, Mode::kUpsert, prev);
  }

  /// Unique insert: kExists (tree unchanged) if the key is present.
  MutateOutcome InsertUnique(std::string_view key, Value value) {
    return MutateLoop(key, value, Mode::kUnique, nullptr);
  }

  /// Overwrite-if-present: kNotFound (tree unchanged) if absent.
  MutateOutcome UpdateIfPresent(std::string_view key, Value value,
                                Value* prev = nullptr) {
    return MutateLoop(key, value, Mode::kUpdateOnly, prev);
  }

  /// Point delete: kRemoved with the old value in *prev, or kNotFound.
  MutateOutcome Remove(std::string_view key, Value* prev = nullptr) {
    olc::RestartBudget budget(restart_budget_);
    while (budget.Next()) {
      bool restart = false;
      MutateOutcome o = EraseAttempt(key, prev, restart);
      if (!restart) return o;
    }
    return MutateOutcome::kRetry;
  }

  // --- ConcurrentPointIndex surface (token witnesses the epoch pin) ---

  MutateOutcome Insert(std::string_view key, Value value, EpochToken) {
    return InsertUnique(key, value);
  }
  MutateOutcome Update(std::string_view key, Value value, EpochToken) {
    return UpdateIfPresent(key, value);
  }
  MutateOutcome Remove(std::string_view key, EpochToken) {
    return Remove(key, static_cast<Value*>(nullptr));
  }
  bool Lookup(std::string_view key, Value* value, EpochToken) const {
    return Lookup(key, value);
  }

  // --- classic bool surface (retries kRetry internally; single-threaded
  //     callers and the conformance suite use these) ---

  bool Insert(std::string_view key, Value value) {
    return LoopUntilSettled([&] { return InsertUnique(key, value); }) ==
           MutateOutcome::kInserted;
  }

  void InsertOrAssign(std::string_view key, Value value) {
    LoopUntilSettled([&] { return Upsert(key, value); });
  }

  bool Update(std::string_view key, Value value) {
    return LoopUntilSettled([&] { return UpdateIfPresent(key, value); }) ==
           MutateOutcome::kUpdated;
  }

  bool Erase(std::string_view key) {
    return LoopUntilSettled([&] { return Remove(key); }) ==
           MutateOutcome::kRemoved;
  }

  /// Unified point lookup; loops internally on version conflicts (reads
  /// cannot livelock writers, so no budget applies).
  bool Lookup(std::string_view key, Value* value = nullptr) const {
    for (;;) {
      bool restart = false;
      bool found = LookupAttempt(key, value, restart);
      if (!restart) return found;
      std::this_thread::yield();
    }
  }

  [[deprecated("use Lookup()")]] bool Find(std::string_view key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }

  /// Budgeted lookup: nullopt when the restart budget is exhausted.
  std::optional<bool> TryLookup(std::string_view key,
                                Value* value = nullptr) const {
    olc::RestartBudget budget(restart_budget_);
    while (budget.Next()) {
      bool restart = false;
      bool found = LookupAttempt(key, value, restart);
      if (!restart) return found;
    }
    return std::nullopt;
  }

  /// Ordered scan from lower_bound(from): appends up to `n` (key, value)
  /// pairs to *out (cleared first) and returns the count. Restarts resume
  /// after the last emitted key, so results are a valid snapshot-union under
  /// concurrency and exact when quiescent (the merge path's use).
  size_t ScanPairs(const std::string& from, size_t n,
                   std::vector<std::pair<std::string, Value>>* out) const {
    out->clear();
    if (n == 0) return 0;
    std::string lower = from;
    bool exclusive = false;
    for (;;) {
      ScanState st{lower, exclusive, n, out};
      bool restart = false;
      bool r = false;
      uint64_t rv = root_lock_.ReadLockOrRestart(r);
      if (!r) {
        void* p = root_.load(std::memory_order_acquire);
        root_lock_.CheckOrRestart(rv, r);
        if (!r) ScanRec(p, 0, false, st, restart);
      }
      if (!r && !restart) return out->size();
      if (!out->empty()) {
        lower = out->back().first;
        exclusive = true;
      }
      std::this_thread::yield();
    }
  }

  /// met::RangeIndex-style scan (values, optionally keys).
  size_t Scan(std::string_view key, size_t n, std::vector<Value>* out,
              std::vector<std::string>* keys_out = nullptr) const {
    std::vector<std::pair<std::string, Value>> pairs;
    ScanPairs(std::string(key), n, &pairs);
    for (auto& [k, v] : pairs) {
      out->push_back(v);
      if (keys_out) keys_out->push_back(std::move(k));
    }
    return pairs.size();
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    return node4_.load(std::memory_order_relaxed) * sizeof(Node4) +
           node16_.load(std::memory_order_relaxed) * sizeof(Node16) +
           node48_.load(std::memory_order_relaxed) * sizeof(Node48) +
           node256_.load(std::memory_order_relaxed) * sizeof(Node256) +
           leaf_bytes_.load(std::memory_order_relaxed);
  }

  /// Per-layout attribution; TotalBytes() == MemoryBytes() (same counters).
  /// Counters are decremented when a node is retired, not when it is freed,
  /// so epoch-pending garbage is not attributed to the tree.
  MemoryBreakdown Breakdown() const {
    MemoryBreakdown b("olc_art");
    b.Add("node4", node4_.load(std::memory_order_relaxed) * sizeof(Node4));
    b.Add("node16", node16_.load(std::memory_order_relaxed) * sizeof(Node16));
    b.Add("node48", node48_.load(std::memory_order_relaxed) * sizeof(Node48));
    b.Add("node256",
          node256_.load(std::memory_order_relaxed) * sizeof(Node256));
    b.Add("leaves", leaf_bytes_.load(std::memory_order_relaxed));
    return b;
  }

  /// Quiescent-only reset (no concurrent operations, like the destructor).
  void Clear() {
    DestroyRec(root_.exchange(nullptr, std::memory_order_relaxed));
    size_.store(0, std::memory_order_relaxed);
    node4_.store(0, std::memory_order_relaxed);
    node16_.store(0, std::memory_order_relaxed);
    node48_.store(0, std::memory_order_relaxed);
    node256_.store(0, std::memory_order_relaxed);
    leaf_count_.store(0, std::memory_order_relaxed);
    leaf_bytes_.store(0, std::memory_order_relaxed);
  }

  /// Structural invariants (quiescent-only): version words unlocked, inline
  /// prefix bounds, in-node label order, Node48 bijection, leaf keys
  /// consistent with their path, leaf count == size().
  bool Validate(std::ostream& os) const {
    std::string path;
    size_t leaves = 0;
    if (!ValidateRec(root_.load(std::memory_order_relaxed), path, &leaves, os))
      return false;
    if (leaves != size()) {
      os << "olc_art: leaf count " << leaves << " != size " << size() << "\n";
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxPrefix = 10;

  enum NodeType : uint8_t { kNode4, kNode16, kNode48, kNode256 };
  enum class Mode : uint8_t { kUpsert, kUnique, kUpdateOnly };

  struct Leaf {
    std::atomic<Value> value;
    uint32_t key_len;
    char key_data[1];  // key_len bytes, immutable after publication

    std::string_view key() const { return {key_data, key_len}; }
  };

  struct Node {
    olc::VersionLock lock;
    const NodeType type;
    std::atomic<uint16_t> num_children{0};
    std::atomic<uint32_t> prefix_len{0};  // always <= kMaxPrefix
    std::atomic<unsigned char> prefix[kMaxPrefix] = {};
    std::atomic<Leaf*> terminal{nullptr};  // key ending exactly here

    explicit Node(NodeType t) : type(t) {}
  };

  struct Node4 : Node {
    std::atomic<unsigned char> keys[4] = {};
    std::atomic<void*> children[4] = {};
    Node4() : Node(kNode4) {}
  };

  struct Node16 : Node {
    std::atomic<unsigned char> keys[16] = {};
    std::atomic<void*> children[16] = {};
    Node16() : Node(kNode16) {}
  };

  struct Node48 : Node {
    std::atomic<uint8_t> child_index[256];  // 0xFF = empty
    std::atomic<void*> children[48] = {};
    Node48() : Node(kNode48) {
      for (auto& c : child_index) c.store(0xFF, std::memory_order_relaxed);
    }
  };

  struct Node256 : Node {
    std::atomic<void*> children[256] = {};
    Node256() : Node(kNode256) {}
  };

  // --- tagged pointers: LSB set = Leaf* (same idiom as met::Art) ---
  static bool IsLeaf(const void* p) {
    return (reinterpret_cast<uintptr_t>(p) & 1) != 0;
  }
  static Leaf* AsLeaf(void* p) {
    return reinterpret_cast<Leaf*>(reinterpret_cast<uintptr_t>(p) &
                                   ~uintptr_t{1});
  }
  static void* TagLeaf(Leaf* l) {
    return reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(l) | 1);
  }
  static Node* AsNode(void* p) { return static_cast<Node*>(p); }

  static size_t LeafBytes(const Leaf* l) {
    return sizeof(Leaf) + l->key_len;
  }

  Leaf* NewLeaf(std::string_view key, Value value) {
    void* mem = ::operator new(sizeof(Leaf) + key.size());
    Leaf* l = new (mem) Leaf;
    l->value.store(value, std::memory_order_relaxed);
    l->key_len = static_cast<uint32_t>(key.size());
    std::memcpy(l->key_data, key.data(), key.size());
    leaf_count_.fetch_add(1, std::memory_order_relaxed);
    leaf_bytes_.fetch_add(LeafBytes(l), std::memory_order_relaxed);
    return l;
  }

  static void FreeLeaf(Leaf* l) { ::operator delete(l); }

  Node4* NewNode4() {
    node4_.fetch_add(1, std::memory_order_relaxed);
    return new Node4();
  }
  Node16* NewNode16() {
    node16_.fetch_add(1, std::memory_order_relaxed);
    return new Node16();
  }
  Node48* NewNode48() {
    node48_.fetch_add(1, std::memory_order_relaxed);
    return new Node48();
  }
  Node256* NewNode256() {
    node256_.fetch_add(1, std::memory_order_relaxed);
    return new Node256();
  }

  static void FreeNode(Node* n) {
    switch (n->type) {
      case kNode4: delete static_cast<Node4*>(n); break;
      case kNode16: delete static_cast<Node16*>(n); break;
      case kNode48: delete static_cast<Node48*>(n); break;
      case kNode256: delete static_cast<Node256*>(n); break;
    }
  }

  void RetireLeaf(Leaf* l) {
    leaf_count_.fetch_sub(1, std::memory_order_relaxed);
    leaf_bytes_.fetch_sub(LeafBytes(l), std::memory_order_relaxed);
    epoch_->Retire([l] { FreeLeaf(l); });
  }

  void RetireNode(Node* n) {
    switch (n->type) {
      case kNode4: node4_.fetch_sub(1, std::memory_order_relaxed); break;
      case kNode16: node16_.fetch_sub(1, std::memory_order_relaxed); break;
      case kNode48: node48_.fetch_sub(1, std::memory_order_relaxed); break;
      case kNode256: node256_.fetch_sub(1, std::memory_order_relaxed); break;
    }
    epoch_->Retire([n] { FreeNode(n); });
  }

  // --- in-node helpers (callers hold the node lock or the node is
  //     unpublished; readers go through FindChildSlot + version validation) ---

  static uint32_t LoadPrefix(const Node* n, unsigned char* buf) {
    uint32_t plen = n->prefix_len.load(std::memory_order_relaxed);
    if (plen > kMaxPrefix) plen = kMaxPrefix;  // racy-read clamp
    for (uint32_t i = 0; i < plen; ++i)
      buf[i] = n->prefix[i].load(std::memory_order_relaxed);
    return plen;
  }

  static uint32_t MatchLen(const unsigned char* pbuf, uint32_t plen,
                           std::string_view key, size_t depth) {
    uint32_t m = 0;
    while (m < plen && depth + m < key.size() &&
           pbuf[m] == static_cast<unsigned char>(key[depth + m]))
      ++m;
    return m;
  }

  template <typename NodeT>
  static std::atomic<void*>* FindSorted(NodeT* n, unsigned char byte) {
    uint16_t count = n->num_children.load(std::memory_order_relaxed);
    constexpr uint16_t kCap = sizeof(n->keys) / sizeof(n->keys[0]);
    if (count > kCap) count = kCap;  // racy-read clamp
    for (uint16_t i = 0; i < count; ++i)
      if (n->keys[i].load(std::memory_order_relaxed) == byte)
        return &n->children[i];
    return nullptr;
  }

  /// Slot holding `byte`'s child, or nullptr if absent. Decisions based on
  /// the result must be version-validated before being trusted.
  static std::atomic<void*>* FindChildSlot(Node* n, unsigned char byte) {
    switch (n->type) {
      case kNode4: return FindSorted(static_cast<Node4*>(n), byte);
      case kNode16: return FindSorted(static_cast<Node16*>(n), byte);
      case kNode48: {
        auto* m = static_cast<Node48*>(n);
        uint8_t idx = m->child_index[byte].load(std::memory_order_relaxed);
        return idx == 0xFF ? nullptr : &m->children[idx];
      }
      case kNode256: {
        auto* m = static_cast<Node256*>(n);
        return m->children[byte].load(std::memory_order_relaxed) != nullptr
                   ? &m->children[byte]
                   : nullptr;
      }
    }
    return nullptr;
  }

  static bool IsFull(const Node* n) {
    uint16_t c = n->num_children.load(std::memory_order_relaxed);
    switch (n->type) {
      case kNode4: return c >= 4;
      case kNode16: return c >= 16;
      case kNode48: return c >= 48;
      case kNode256: return false;
    }
    return false;
  }

  template <typename NodeT>
  static void InsertSortedLocked(NodeT* n, unsigned char byte, void* child) {
    uint16_t count = n->num_children.load(std::memory_order_relaxed);
    uint16_t pos = 0;
    while (pos < count &&
           n->keys[pos].load(std::memory_order_relaxed) < byte)
      ++pos;
    for (uint16_t i = count; i > pos; --i) {
      n->keys[i].store(n->keys[i - 1].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      n->children[i].store(n->children[i - 1].load(std::memory_order_relaxed),
                           std::memory_order_release);
    }
    n->keys[pos].store(byte, std::memory_order_relaxed);
    n->children[pos].store(child, std::memory_order_release);
    n->num_children.store(count + 1, std::memory_order_release);
  }

  static void AddChildLocked(Node* n, unsigned char byte, void* child) {
    switch (n->type) {
      case kNode4:
        InsertSortedLocked(static_cast<Node4*>(n), byte, child);
        break;
      case kNode16:
        InsertSortedLocked(static_cast<Node16*>(n), byte, child);
        break;
      case kNode48: {
        auto* m = static_cast<Node48*>(n);
        uint8_t i = 0;
        while (m->children[i].load(std::memory_order_relaxed) != nullptr) ++i;
        m->children[i].store(child, std::memory_order_release);
        m->child_index[byte].store(i, std::memory_order_release);
        m->num_children.fetch_add(1, std::memory_order_release);
        break;
      }
      case kNode256: {
        auto* m = static_cast<Node256*>(n);
        m->children[byte].store(child, std::memory_order_release);
        m->num_children.fetch_add(1, std::memory_order_release);
        break;
      }
    }
  }

  template <typename NodeT>
  static void RemoveSortedLocked(NodeT* n, unsigned char byte) {
    uint16_t count = n->num_children.load(std::memory_order_relaxed);
    uint16_t pos = 0;
    while (pos < count &&
           n->keys[pos].load(std::memory_order_relaxed) != byte)
      ++pos;
    MET_DCHECK(pos < count, "RemoveChildLocked: byte not present");
    for (uint16_t i = pos; i + 1 < count; ++i) {
      n->keys[i].store(n->keys[i + 1].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      n->children[i].store(n->children[i + 1].load(std::memory_order_relaxed),
                           std::memory_order_release);
    }
    n->children[count - 1].store(nullptr, std::memory_order_release);
    n->num_children.store(count - 1, std::memory_order_release);
  }

  static void RemoveChildLocked(Node* n, unsigned char byte) {
    switch (n->type) {
      case kNode4:
        RemoveSortedLocked(static_cast<Node4*>(n), byte);
        break;
      case kNode16:
        RemoveSortedLocked(static_cast<Node16*>(n), byte);
        break;
      case kNode48: {
        auto* m = static_cast<Node48*>(n);
        uint8_t idx = m->child_index[byte].load(std::memory_order_relaxed);
        MET_DCHECK(idx != 0xFF, "RemoveChildLocked: byte not present");
        m->child_index[byte].store(0xFF, std::memory_order_release);
        m->children[idx].store(nullptr, std::memory_order_release);
        m->num_children.fetch_sub(1, std::memory_order_release);
        break;
      }
      case kNode256: {
        auto* m = static_cast<Node256*>(n);
        m->children[byte].store(nullptr, std::memory_order_release);
        m->num_children.fetch_sub(1, std::memory_order_release);
        break;
      }
    }
  }

  static void CopyHeaderLocked(Node* dst, const Node* src) {
    dst->num_children.store(src->num_children.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    uint32_t plen = src->prefix_len.load(std::memory_order_relaxed);
    dst->prefix_len.store(plen, std::memory_order_relaxed);
    for (uint32_t i = 0; i < plen && i < kMaxPrefix; ++i)
      dst->prefix[i].store(src->prefix[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    dst->terminal.store(src->terminal.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }

  /// Copies a full node into the next-larger layout. Caller holds `n`'s
  /// write lock; the copy is unpublished until the parent slot is stored.
  Node* GrowCopyLocked(Node* n) {
    switch (n->type) {
      case kNode4: {
        auto* src = static_cast<Node4*>(n);
        Node16* dst = NewNode16();
        CopyHeaderLocked(dst, src);
        for (int i = 0; i < 4; ++i) {
          dst->keys[i].store(src->keys[i].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
          dst->children[i].store(
              src->children[i].load(std::memory_order_relaxed),
              std::memory_order_relaxed);
        }
        return dst;
      }
      case kNode16: {
        auto* src = static_cast<Node16*>(n);
        Node48* dst = NewNode48();
        CopyHeaderLocked(dst, src);
        for (int i = 0; i < 16; ++i) {
          dst->children[i].store(
              src->children[i].load(std::memory_order_relaxed),
              std::memory_order_relaxed);
          dst->child_index[src->keys[i].load(std::memory_order_relaxed)].store(
              static_cast<uint8_t>(i), std::memory_order_relaxed);
        }
        return dst;
      }
      case kNode48: {
        auto* src = static_cast<Node48*>(n);
        Node256* dst = NewNode256();
        CopyHeaderLocked(dst, src);
        for (int b = 0; b < 256; ++b) {
          uint8_t idx = src->child_index[b].load(std::memory_order_relaxed);
          if (idx != 0xFF)
            dst->children[b].store(
                src->children[idx].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        return dst;
      }
      case kNode256: break;  // never full
    }
    MET_DCHECK(false, "GrowCopyLocked on Node256");
    return nullptr;
  }

  /// Drops the first `drop` prefix bytes (prefix split). Caller holds the
  /// node's write lock.
  static void TrimPrefixLocked(Node* n, uint32_t drop) {
    uint32_t plen = n->prefix_len.load(std::memory_order_relaxed);
    MET_DCHECK(drop <= plen, "TrimPrefixLocked: drop beyond prefix");
    uint32_t nlen = plen - drop;
    for (uint32_t i = 0; i < nlen; ++i)
      n->prefix[i].store(n->prefix[i + drop].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    n->prefix_len.store(nlen, std::memory_order_release);
  }

  /// Resolves a leaf/leaf collision at `depth` into a (chain of) Node4(s):
  /// each level consumes up to kMaxPrefix common bytes inline plus one
  /// branch byte. Keys are distinct and agree on [0, depth). The result is
  /// unpublished; the caller stores it into the locked parent slot.
  void* BuildSplit(Leaf* existing, std::string_view key, Value value,
                   size_t depth) {
    std::string_view ek = existing->key();
    size_t cap = ek.size() < key.size() ? ek.size() : key.size();
    size_t i = depth;
    while (i < cap && ek[i] == key[i]) ++i;
    size_t common = i - depth;

    Node4* nn = NewNode4();
    if (common > kMaxPrefix) {
      nn->prefix_len.store(kMaxPrefix, std::memory_order_relaxed);
      for (int j = 0; j < kMaxPrefix; ++j)
        nn->prefix[j].store(static_cast<unsigned char>(key[depth + j]),
                            std::memory_order_relaxed);
      unsigned char b = static_cast<unsigned char>(key[depth + kMaxPrefix]);
      AddChildLocked(nn, b,
                     BuildSplit(existing, key, value, depth + kMaxPrefix + 1));
      return nn;
    }

    nn->prefix_len.store(static_cast<uint32_t>(common),
                         std::memory_order_relaxed);
    for (size_t j = 0; j < common; ++j)
      nn->prefix[j].store(static_cast<unsigned char>(key[depth + j]),
                          std::memory_order_relaxed);
    size_t d2 = depth + common;
    if (ek.size() == d2)
      nn->terminal.store(existing, std::memory_order_relaxed);
    else
      AddChildLocked(nn, static_cast<unsigned char>(ek[d2]),
                     TagLeaf(existing));
    Leaf* l = NewLeaf(key, value);
    if (key.size() == d2)
      nn->terminal.store(l, std::memory_order_relaxed);
    else
      AddChildLocked(nn, static_cast<unsigned char>(key[d2]), TagLeaf(l));
    return nn;
  }

  // --- the OLC descent ---

  template <typename F>
  static MutateOutcome LoopUntilSettled(F&& f) {
    for (;;) {
      MutateOutcome o = f();
      if (o != MutateOutcome::kRetry) return o;
      std::this_thread::yield();
    }
  }

  MutateOutcome MutateLoop(std::string_view key, Value value, Mode mode,
                           Value* prev) {
    olc::RestartBudget budget(restart_budget_);
    while (budget.Next()) {
      bool restart = false;
      MutateOutcome o = MutateAttempt(key, value, mode, prev, restart);
      if (!restart) return o;
    }
    return MutateOutcome::kRetry;
  }

  MutateOutcome MutateAttempt(std::string_view key, Value value, Mode mode,
                              Value* prev, bool& restart) {
    bool r = false;
    olc::VersionLock* plock = &root_lock_;
    uint64_t pv = plock->ReadLockOrRestart(r);
    if (r) {
      restart = true;
      return MutateOutcome::kRetry;
    }
    std::atomic<void*>* slot = &root_;
    size_t depth = 0;

    for (;;) {
      void* p = slot->load(std::memory_order_acquire);
      plock->CheckOrRestart(pv, r);
      if (r) break;

      if (p == nullptr) {
        // Interior slots are never null in a validated state, so this is
        // the empty-root claim.
        if (mode == Mode::kUpdateOnly) return MutateOutcome::kNotFound;
        plock->UpgradeToWriteLockOrRestart(pv, r);
        if (r) break;
        slot->store(TagLeaf(NewLeaf(key, value)), std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        plock->WriteUnlock();
        return MutateOutcome::kInserted;
      }

      if (IsLeaf(p)) {
        Leaf* l = AsLeaf(p);
        if (l->key() == key) {
          if (mode == Mode::kUnique) return MutateOutcome::kExists;
          Value old = l->value.exchange(value, std::memory_order_acq_rel);
          if (prev) *prev = old;
          return MutateOutcome::kUpdated;
        }
        if (mode == Mode::kUpdateOnly) return MutateOutcome::kNotFound;
        plock->UpgradeToWriteLockOrRestart(pv, r);
        if (r) break;
        slot->store(BuildSplit(l, key, value, depth),
                    std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        plock->WriteUnlock();
        return MutateOutcome::kInserted;
      }

      Node* n = AsNode(p);
      uint64_t v = n->lock.ReadLockOrRestart(r);
      if (r) break;
      plock->ReadUnlockOrRestart(pv, r);  // slot still pointed here
      if (r) break;

      unsigned char pbuf[kMaxPrefix];
      uint32_t plen = LoadPrefix(n, pbuf);
      n->lock.CheckOrRestart(v, r);
      if (r) break;
      uint32_t match = MatchLen(pbuf, plen, key, depth);

      if (match < plen) {
        // Prefix mismatch (or key ends inside the prefix): split the
        // compressed path — parent slot gets a new Node4 with the common
        // bytes; n keeps the tail past the diverging byte.
        if (mode == Mode::kUpdateOnly) return MutateOutcome::kNotFound;
        plock->UpgradeToWriteLockOrRestart(pv, r);
        if (r) break;
        n->lock.UpgradeToWriteLockOrRestart(v, r);
        if (r) {
          plock->WriteUnlock();
          break;
        }
        Node4* nn = NewNode4();
        nn->prefix_len.store(match, std::memory_order_relaxed);
        for (uint32_t j = 0; j < match; ++j)
          nn->prefix[j].store(pbuf[j], std::memory_order_relaxed);
        unsigned char old_byte = pbuf[match];
        TrimPrefixLocked(n, match + 1);
        AddChildLocked(nn, old_byte, n);
        if (depth + match == key.size())
          nn->terminal.store(NewLeaf(key, value), std::memory_order_relaxed);
        else
          AddChildLocked(nn,
                         static_cast<unsigned char>(key[depth + match]),
                         TagLeaf(NewLeaf(key, value)));
        slot->store(nn, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        n->lock.WriteUnlock();
        plock->WriteUnlock();
        return MutateOutcome::kInserted;
      }

      depth += plen;

      if (depth == key.size()) {
        Leaf* t = n->terminal.load(std::memory_order_acquire);
        n->lock.CheckOrRestart(v, r);
        if (r) break;
        if (t != nullptr) {
          if (mode == Mode::kUnique) return MutateOutcome::kExists;
          Value old = t->value.exchange(value, std::memory_order_acq_rel);
          if (prev) *prev = old;
          return MutateOutcome::kUpdated;
        }
        if (mode == Mode::kUpdateOnly) return MutateOutcome::kNotFound;
        n->lock.UpgradeToWriteLockOrRestart(v, r);
        if (r) break;
        n->terminal.store(NewLeaf(key, value), std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        n->lock.WriteUnlock();
        return MutateOutcome::kInserted;
      }

      unsigned char byte = static_cast<unsigned char>(key[depth]);
      std::atomic<void*>* child = FindChildSlot(n, byte);
      n->lock.CheckOrRestart(v, r);
      if (r) break;

      if (child == nullptr) {
        if (mode == Mode::kUpdateOnly) return MutateOutcome::kNotFound;
        if (IsFull(n)) {
          // Grow: replace n with the next layout under both locks, retire n.
          plock->UpgradeToWriteLockOrRestart(pv, r);
          if (r) break;
          n->lock.UpgradeToWriteLockOrRestart(v, r);
          if (r) {
            plock->WriteUnlock();
            break;
          }
          Node* big = GrowCopyLocked(n);
          AddChildLocked(big, byte, TagLeaf(NewLeaf(key, value)));
          slot->store(big, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          n->lock.WriteUnlockObsolete();
          RetireNode(n);
          plock->WriteUnlock();
          return MutateOutcome::kInserted;
        }
        n->lock.UpgradeToWriteLockOrRestart(v, r);
        if (r) break;
        AddChildLocked(n, byte, TagLeaf(NewLeaf(key, value)));
        size_.fetch_add(1, std::memory_order_relaxed);
        n->lock.WriteUnlock();
        return MutateOutcome::kInserted;
      }

      plock = &n->lock;
      pv = v;
      slot = child;
      depth += 1;
    }

    restart = true;
    return MutateOutcome::kRetry;
  }

  MutateOutcome EraseAttempt(std::string_view key, Value* prev,
                             bool& restart) {
    bool r = false;
    olc::VersionLock* plock = &root_lock_;
    uint64_t pv = plock->ReadLockOrRestart(r);
    if (r) {
      restart = true;
      return MutateOutcome::kRetry;
    }
    std::atomic<void*>* slot = &root_;
    Node* pnode = nullptr;
    unsigned char pbyte = 0;
    size_t depth = 0;

    for (;;) {
      void* p = slot->load(std::memory_order_acquire);
      plock->CheckOrRestart(pv, r);
      if (r) break;
      if (p == nullptr) return MutateOutcome::kNotFound;

      if (IsLeaf(p)) {
        Leaf* l = AsLeaf(p);
        if (l->key() != key) return MutateOutcome::kNotFound;
        plock->UpgradeToWriteLockOrRestart(pv, r);
        if (r) break;
        if (pnode != nullptr)
          RemoveChildLocked(pnode, pbyte);
        else
          root_.store(nullptr, std::memory_order_release);
        if (prev) *prev = l->value.load(std::memory_order_relaxed);
        RetireLeaf(l);
        size_.fetch_sub(1, std::memory_order_relaxed);
        plock->WriteUnlock();
        return MutateOutcome::kRemoved;
      }

      Node* n = AsNode(p);
      uint64_t v = n->lock.ReadLockOrRestart(r);
      if (r) break;
      plock->ReadUnlockOrRestart(pv, r);
      if (r) break;

      unsigned char pbuf[kMaxPrefix];
      uint32_t plen = LoadPrefix(n, pbuf);
      n->lock.CheckOrRestart(v, r);
      if (r) break;
      if (MatchLen(pbuf, plen, key, depth) < plen)
        return MutateOutcome::kNotFound;
      depth += plen;

      if (depth == key.size()) {
        Leaf* t = n->terminal.load(std::memory_order_acquire);
        n->lock.CheckOrRestart(v, r);
        if (r) break;
        if (t == nullptr) return MutateOutcome::kNotFound;
        n->lock.UpgradeToWriteLockOrRestart(v, r);
        if (r) break;
        n->terminal.store(nullptr, std::memory_order_release);
        if (prev) *prev = t->value.load(std::memory_order_relaxed);
        RetireLeaf(t);
        size_.fetch_sub(1, std::memory_order_relaxed);
        n->lock.WriteUnlock();
        return MutateOutcome::kRemoved;
      }

      unsigned char byte = static_cast<unsigned char>(key[depth]);
      std::atomic<void*>* child = FindChildSlot(n, byte);
      n->lock.CheckOrRestart(v, r);
      if (r) break;
      if (child == nullptr) return MutateOutcome::kNotFound;

      plock = &n->lock;
      pv = v;
      pnode = n;
      pbyte = byte;
      slot = child;
      depth += 1;
    }

    restart = true;
    return MutateOutcome::kRetry;
  }

  bool LookupAttempt(std::string_view key, Value* value,
                     bool& restart) const {
    bool r = false;
    const olc::VersionLock* plock = &root_lock_;
    uint64_t pv = plock->ReadLockOrRestart(r);
    if (r) {
      restart = true;
      return false;
    }
    const std::atomic<void*>* slot = &root_;
    size_t depth = 0;

    for (;;) {
      void* p = slot->load(std::memory_order_acquire);
      plock->CheckOrRestart(pv, r);
      if (r) break;
      if (p == nullptr) return false;

      if (IsLeaf(p)) {
        const Leaf* l = AsLeaf(p);
        if (l->key() != key) return false;
        if (value) *value = l->value.load(std::memory_order_acquire);
        return true;
      }

      Node* n = AsNode(p);
      uint64_t v = n->lock.ReadLockOrRestart(r);
      if (r) break;
      plock->ReadUnlockOrRestart(pv, r);
      if (r) break;

      unsigned char pbuf[kMaxPrefix];
      uint32_t plen = LoadPrefix(n, pbuf);
      n->lock.CheckOrRestart(v, r);
      if (r) break;
      if (MatchLen(pbuf, plen, key, depth) < plen) return false;
      depth += plen;

      if (depth == key.size()) {
        const Leaf* t = n->terminal.load(std::memory_order_acquire);
        n->lock.CheckOrRestart(v, r);
        if (r) break;
        if (t == nullptr) return false;
        if (value) *value = t->value.load(std::memory_order_acquire);
        return true;
      }

      std::atomic<void*>* child =
          FindChildSlot(n, static_cast<unsigned char>(key[depth]));
      n->lock.CheckOrRestart(v, r);
      if (r) break;
      if (child == nullptr) return false;

      plock = &n->lock;
      pv = v;
      slot = child;
      depth += 1;
    }

    restart = true;
    return false;
  }

  // --- scan ---

  struct ScanState {
    std::string_view lower;
    bool exclusive;  // skip a key equal to lower (restart resume)
    size_t limit;
    std::vector<std::pair<std::string, Value>>* out;
  };

  static bool EmitLeaf(const Leaf* l, bool past, ScanState& st) {
    std::string_view k = l->key();
    if (!past && (k < st.lower || (st.exclusive && k == st.lower)))
      return false;
    st.out->emplace_back(std::string(k),
                         l->value.load(std::memory_order_acquire));
    return st.out->size() >= st.limit;
  }

  /// Snapshots the child list (sorted by byte) under the caller's pending
  /// version validation.
  static void CollectChildren(Node* n, unsigned char* bytes, void** kids,
                              int* nkids) {
    int c = 0;
    switch (n->type) {
      case kNode4:
      case kNode16: {
        uint16_t count = n->num_children.load(std::memory_order_relaxed);
        uint16_t cap = n->type == kNode4 ? 4 : 16;
        if (count > cap) count = cap;
        for (uint16_t i = 0; i < count; ++i) {
          unsigned char b;
          void* kid;
          if (n->type == kNode4) {
            auto* m = static_cast<Node4*>(n);
            b = m->keys[i].load(std::memory_order_relaxed);
            kid = m->children[i].load(std::memory_order_acquire);
          } else {
            auto* m = static_cast<Node16*>(n);
            b = m->keys[i].load(std::memory_order_relaxed);
            kid = m->children[i].load(std::memory_order_acquire);
          }
          if (kid != nullptr) {
            bytes[c] = b;
            kids[c++] = kid;
          }
        }
        break;
      }
      case kNode48: {
        auto* m = static_cast<Node48*>(n);
        for (int b = 0; b < 256; ++b) {
          uint8_t idx = m->child_index[b].load(std::memory_order_relaxed);
          if (idx == 0xFF) continue;
          void* kid = m->children[idx].load(std::memory_order_acquire);
          if (kid != nullptr) {
            bytes[c] = static_cast<unsigned char>(b);
            kids[c++] = kid;
          }
        }
        break;
      }
      case kNode256: {
        auto* m = static_cast<Node256*>(n);
        for (int b = 0; b < 256; ++b) {
          void* kid = m->children[b].load(std::memory_order_acquire);
          if (kid != nullptr) {
            bytes[c] = static_cast<unsigned char>(b);
            kids[c++] = kid;
          }
        }
        break;
      }
    }
    *nkids = c;
  }

  /// Returns true when done (limit reached or restart). `past` means the
  /// whole subtree is known > lower.
  static bool ScanRec(void* p, size_t depth, bool past, ScanState& st,
                      bool& restart) {
    if (p == nullptr) return false;
    if (IsLeaf(p)) return EmitLeaf(AsLeaf(p), past, st);

    Node* n = AsNode(p);
    bool r = false;
    uint64_t v = n->lock.ReadLockOrRestart(r);
    if (r) {
      restart = true;
      return true;
    }
    unsigned char pbuf[kMaxPrefix];
    uint32_t plen = LoadPrefix(n, pbuf);
    Leaf* terminal = n->terminal.load(std::memory_order_acquire);
    unsigned char bytes[256];
    void* kids[256];
    int nkids = 0;
    CollectChildren(n, bytes, kids, &nkids);
    n->lock.CheckOrRestart(v, r);
    if (r) {
      restart = true;
      return true;
    }

    if (!past) {
      for (uint32_t i = 0; i < plen; ++i) {
        if (depth + i >= st.lower.size()) {
          past = true;
          break;
        }
        unsigned char lb = static_cast<unsigned char>(st.lower[depth + i]);
        if (pbuf[i] > lb) {
          past = true;
          break;
        }
        if (pbuf[i] < lb) return false;  // subtree entirely below lower
      }
    }
    size_t ndepth = depth + plen;

    if (terminal != nullptr && EmitLeaf(terminal, past, st)) return true;

    int descend = -1;
    if (!past) {
      if (ndepth >= st.lower.size())
        past = true;  // path consumed lower: all children sort after it
      else
        descend = static_cast<unsigned char>(st.lower[ndepth]);
    }
    for (int i = 0; i < nkids; ++i) {
      int b = bytes[i];
      if (!past && b < descend) continue;
      bool child_past = past || b > descend;
      if (ScanRec(kids[i], ndepth + 1, child_past, st, restart)) return true;
    }
    return false;
  }

  // --- teardown / validation (quiescent-only) ---

  void DestroyRec(void* p) {
    if (p == nullptr) return;
    if (IsLeaf(p)) {
      FreeLeaf(AsLeaf(p));
      return;
    }
    Node* n = AsNode(p);
    unsigned char bytes[256];
    void* kids[256];
    int nkids = 0;
    CollectChildren(n, bytes, kids, &nkids);
    for (int i = 0; i < nkids; ++i) DestroyRec(kids[i]);
    Leaf* t = n->terminal.load(std::memory_order_relaxed);
    if (t != nullptr) FreeLeaf(t);
    FreeNode(n);
  }

  bool ValidateRec(void* p, std::string& path, size_t* leaves,
                   std::ostream& os) const {
    if (p == nullptr) return true;
    if (IsLeaf(p)) {
      const Leaf* l = AsLeaf(p);
      ++*leaves;
      std::string_view k = l->key();
      if (k.size() < path.size() ||
          std::string_view(k).substr(0, path.size()) != path) {
        os << "olc_art: leaf key inconsistent with path\n";
        return false;
      }
      return true;
    }
    Node* n = AsNode(p);
    uint64_t w = n->lock.Peek();
    if (olc::VersionLock::IsLocked(w) || olc::VersionLock::IsObsolete(w)) {
      os << "olc_art: reachable node locked/obsolete during validation\n";
      return false;
    }
    uint32_t plen = n->prefix_len.load(std::memory_order_relaxed);
    if (plen > kMaxPrefix) {
      os << "olc_art: prefix_len " << plen << " > kMaxPrefix\n";
      return false;
    }
    size_t mark = path.size();
    for (uint32_t i = 0; i < plen; ++i)
      path.push_back(static_cast<char>(
          n->prefix[i].load(std::memory_order_relaxed)));
    Leaf* t = n->terminal.load(std::memory_order_relaxed);
    if (t != nullptr) {
      ++*leaves;
      if (t->key() != path) {
        os << "olc_art: terminal key != node path\n";
        return false;
      }
    }
    if (n->type == kNode48) {
      auto* m = static_cast<Node48*>(n);
      bool used[48] = {};
      int indexed = 0;
      for (int b = 0; b < 256; ++b) {
        uint8_t idx = m->child_index[b].load(std::memory_order_relaxed);
        if (idx == 0xFF) continue;
        if (idx >= 48 ||
            m->children[idx].load(std::memory_order_relaxed) == nullptr ||
            used[idx]) {
          os << "olc_art: Node48 index bijection violated\n";
          return false;
        }
        used[idx] = true;
        ++indexed;
      }
      int occupied = 0;
      for (int i = 0; i < 48; ++i)
        if (m->children[i].load(std::memory_order_relaxed) != nullptr)
          ++occupied;
      if (indexed != occupied ||
          indexed != n->num_children.load(std::memory_order_relaxed)) {
        os << "olc_art: Node48 child count mismatch\n";
        return false;
      }
    }
    unsigned char bytes[256];
    void* kids[256];
    int nkids = 0;
    CollectChildren(n, bytes, kids, &nkids);
    if ((n->type == kNode4 || n->type == kNode16 || n->type == kNode256) &&
        nkids != n->num_children.load(std::memory_order_relaxed)) {
      os << "olc_art: child count mismatch\n";
      return false;
    }
    for (int i = 1; i < nkids; ++i) {
      if (bytes[i - 1] >= bytes[i]) {
        os << "olc_art: child bytes out of order\n";
        return false;
      }
    }
    for (int i = 0; i < nkids; ++i) {
      path.push_back(static_cast<char>(bytes[i]));
      if (!ValidateRec(kids[i], path, leaves, os)) return false;
      path.pop_back();
    }
    path.resize(mark);
    return true;
  }

  olc::VersionLock root_lock_;  // guards the root slot like a node lock
  std::atomic<void*> root_{nullptr};

  std::atomic<size_t> size_{0};
  std::atomic<size_t> node4_{0};
  std::atomic<size_t> node16_{0};
  std::atomic<size_t> node48_{0};
  std::atomic<size_t> node256_{0};
  std::atomic<size_t> leaf_count_{0};
  std::atomic<size_t> leaf_bytes_{0};

  hybrid::EpochDomain* epoch_ = nullptr;
  std::unique_ptr<hybrid::EpochDomain> owned_domain_;
  int restart_budget_;
};

static_assert(ConcurrentPointIndex<OlcArt, std::string>);
static_assert(ConcurrentPointIndex<OlcArt, std::string_view>);
static_assert(MutablePointIndex<OlcArt, std::string_view>);
static_assert(HasMemoryBreakdown<OlcArt>);

}  // namespace met

#endif  // MET_ART_OLC_ART_H_
