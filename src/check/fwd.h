// Forward declarations for the met::check correctness-tooling layer, safe to
// include from any structure header. The friend declaration below is what
// lets the mutation tests (tests/check_mutation_test.cc) corrupt internal
// state to prove the validators detect it; see check/test_access.h.
#ifndef MET_CHECK_FWD_H_
#define MET_CHECK_FWD_H_

namespace met {
namespace check {

struct TestAccess;

}  // namespace check
}  // namespace met

#endif  // MET_CHECK_FWD_H_
