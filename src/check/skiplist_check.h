// met::check validator for the paged skip list (skiplist/skiplist.h).
//
// Checked invariants:
//  * tower heights in [1, kMaxHeight]; head is full height;
//  * level-0 tower keys strictly increasing;
//  * level monotonicity: the chain at level l is exactly the subsequence of
//    the level-0 chain whose towers have height > l (each forward pointer
//    skips only shorter towers);
//  * page chain: every tower owns a page, pages linked in tower order;
//  * separator validity: every key in tower t's page lies in
//    [t.key, next_tower.key) (head's page holds keys below the first tower);
//  * per-page slot counts in [0, PageSlots] (0 is legal after lazy erase),
//    keys strictly sorted within and across pages;
//  * size() equals the total entry count.
#ifndef MET_CHECK_SKIPLIST_CHECK_H_
#define MET_CHECK_SKIPLIST_CHECK_H_

#include <vector>

#include "check/check.h"
#include "skiplist/skiplist.h"

namespace met {

template <typename Key, typename Value, int PageSlots>
bool SkipList<Key, Value, PageSlots>::ValidateImpl(std::ostream& os) const {
  check::Reporter rep(os, "SkipList");

  MET_CHECK_THAT(rep, head_ != nullptr, "missing head tower");
  if (head_ == nullptr) return rep.ok();
  MET_CHECK_THAT(rep, head_->height == kMaxHeight,
                 "head tower height " << head_->height);

  // Collect the level-0 tower sequence (head first).
  std::vector<const Tower*> towers;
  for (const Tower* t = head_; t != nullptr; t = t->next[0]) {
    towers.push_back(t);
    if (t != head_) {
      MET_CHECK_THAT(rep, t->height >= 1 && t->height <= kMaxHeight,
                     "tower height " << t->height << " out of range");
    }
  }
  // The head key is an implicit minus-infinity sentinel; real separators
  // start at towers[1].
  for (size_t i = 2; i < towers.size(); ++i) {
    MET_CHECK_THAT(rep, towers[i - 1]->key < towers[i]->key,
                   "tower keys out of order at tower " << i << ": "
                       << check::KeyToDebugString(towers[i - 1]->key) << " !< "
                       << check::KeyToDebugString(towers[i]->key));
  }

  // Level monotonicity: next[l] must point at the next tower whose height
  // exceeds l, for every tower and level.
  for (size_t i = 0; i < towers.size(); ++i) {
    const Tower* t = towers[i];
    int h = t == head_ ? kMaxHeight : t->height;
    for (int l = 1; l < h; ++l) {
      const Tower* expect = nullptr;
      for (size_t j = i + 1; j < towers.size(); ++j) {
        if (towers[j]->height > l) {
          expect = towers[j];
          break;
        }
      }
      MET_CHECK_THAT(rep, t->next[l] == expect,
                     "level " << l << " pointer of tower " << i
                              << " skips or rewires the chain");
    }
  }

  // Page chain and separators.
  size_t entries = 0;
  const Key* prev_key = nullptr;
  for (size_t i = 0; i < towers.size(); ++i) {
    const Tower* t = towers[i];
    const Page* page = t->page;
    if (page == nullptr) {
      MET_CHECK_THAT(rep, t == head_ && towers.size() == 1 && size_ == 0,
                     "tower " << i << " owns no page");
      continue;
    }
    const Page* next_page =
        i + 1 < towers.size() ? towers[i + 1]->page : nullptr;
    MET_CHECK_THAT(rep, page->next == next_page,
                   "page chain diverges from tower order at tower " << i);
    MET_CHECK_THAT(rep, page->count >= 0 && page->count <= PageSlots,
                   "page count " << page->count << " out of range at tower "
                                 << i);
    for (int s = 0; s < page->count; ++s) {
      const Key& k = page->keys[s];
      if (prev_key != nullptr) {
        MET_CHECK_THAT(rep, *prev_key < k,
                       "entries out of order at tower " << i << " slot " << s
                           << ": " << check::KeyToDebugString(*prev_key)
                           << " !< " << check::KeyToDebugString(k));
      }
      prev_key = &k;
      if (t != head_) {
        MET_CHECK_THAT(rep, !(k < t->key),
                       "key " << check::KeyToDebugString(k)
                              << " below its tower separator "
                              << check::KeyToDebugString(t->key));
      }
      if (i + 1 < towers.size()) {
        MET_CHECK_THAT(rep, k < towers[i + 1]->key,
                       "key " << check::KeyToDebugString(k)
                              << " not below next tower separator "
                              << check::KeyToDebugString(towers[i + 1]->key));
      }
    }
    entries += static_cast<size_t>(page->count);
  }
  MET_CHECK_THAT(rep, entries == size_,
                 "size() == " << size_ << " but pages hold " << entries);
  return rep.ok();
}

}  // namespace met

#endif  // MET_CHECK_SKIPLIST_CHECK_H_
