// met::check validator for the Adaptive Radix Tree (art/art.h).
//
// Checked invariants:
//  * node-type bounds: num_children within each layout's capacity and equal
//    to the number of live child slots;
//  * Node4/Node16 label arrays strictly sorted with non-null children;
//  * Node48 child_index bijection: exactly num_children bytes map to
//    distinct slots < 48, each holding a non-null child, and no orphan
//    child slots;
//  * no reachable empty node (EraseRecurse frees them);
//  * path-compression consistency: a node's inline prefix matches the
//    corresponding bytes of every leaf beneath it (checked per-leaf via the
//    accumulated path, covering the beyond-inline tail too);
//  * terminal leaves end exactly at their node's path; ordinary leaves
//    extend it;
//  * leaves enumerate in strictly increasing key order and their count
//    equals size().
#include <cstddef>
#include <string>
#include <vector>

#include "art/art.h"
#include "check/check.h"

namespace met {

namespace {

struct ArtCheckState {
  check::Reporter* rep = nullptr;
  size_t leaf_count = 0;
  bool have_prev = false;
  std::string prev_key;

  void VisitLeafKey(std::string_view key) {
    ++leaf_count;
    if (have_prev) {
      MET_CHECK_THAT(*rep, std::string_view(prev_key) < key,
                     "leaf keys out of order: "
                         << check::KeyToDebugString(prev_key) << " !< "
                         << check::KeyToDebugString(std::string(key)));
    }
    prev_key.assign(key);
    have_prev = true;
  }
};

}  // namespace

bool Art::CheckValidate(std::ostream& os) const {
  check::Reporter rep(os, "Art");
  ArtCheckState st;
  st.rep = &rep;

  // `path` is the exact byte string spelled by branch bytes plus inline
  // prefix bytes; bytes beyond the inline prefix window are unknown at
  // descent time and recorded as wildcards in `known` (leaf keys are still
  // compared against every known byte).
  struct Walker {
    const Art* art;
    check::Reporter& rep;
    ArtCheckState& st;
    std::string path;
    std::vector<bool> known;

    void CheckLeaf(const Leaf* l, bool terminal) {
      std::string_view key = l->key();
      if (terminal) {
        MET_CHECK_THAT(rep, key.size() == path.size(),
                       "terminal leaf length " << key.size()
                           << " != node depth " << path.size() << " for "
                           << check::KeyToDebugString(std::string(key)));
      } else {
        MET_CHECK_THAT(rep, key.size() >= path.size(),
                       "leaf key shorter than its path: "
                           << check::KeyToDebugString(std::string(key)));
      }
      size_t n = std::min(key.size(), path.size());
      for (size_t i = 0; i < n; ++i) {
        if (!known[i]) continue;
        MET_CHECK_THAT(
            rep, static_cast<unsigned char>(key[i]) ==
                     static_cast<unsigned char>(path[i]),
            "leaf key byte " << i << " disagrees with its path (prefix "
                             << "corruption) in "
                             << check::KeyToDebugString(std::string(key)));
      }
      st.VisitLeafKey(key);
    }

    void Descend(const void* p) {
      if (IsLeaf(p)) {
        CheckLeaf(AsLeaf(p), /*terminal=*/false);
        return;
      }
      const Node* n = AsNode(p);
      size_t base = path.size();

      // Consume the compressed prefix: inline bytes are known, the tail
      // beyond kMaxPrefix is wildcard.
      for (uint32_t i = 0; i < n->prefix_len; ++i) {
        bool inline_byte = i < static_cast<uint32_t>(kMaxPrefix);
        path.push_back(inline_byte ? static_cast<char>(n->prefix[i]) : '\0');
        known.push_back(inline_byte);
      }

      size_t live = 0;
      switch (n->type) {
        case kNode4:
        case kNode16: {
          int cap = n->type == kNode4 ? 4 : 16;
          MET_CHECK_THAT(rep, n->num_children <= cap,
                         "node holds " << n->num_children << " children, cap "
                                       << cap);
          const unsigned char* keys;
          void* const* children;
          if (n->type == kNode4) {
            const Node4* n4 = static_cast<const Node4*>(n);
            keys = n4->keys;
            children = n4->children;
          } else {
            const Node16* n16 = static_cast<const Node16*>(n);
            keys = n16->keys;
            children = n16->children;
          }
          int count = std::min<int>(n->num_children, cap);
          for (int i = 0; i < count; ++i) {
            if (i > 0) {
              MET_CHECK_THAT(rep, keys[i - 1] < keys[i],
                             "node labels out of order at slot " << i);
            }
            MET_CHECK_THAT(rep, children[i] != nullptr,
                           "null child at sorted slot " << i);
            ++live;
          }
          if (n->terminal != nullptr) CheckLeaf(n->terminal, /*terminal=*/true);
          for (int i = 0; i < count; ++i) {
            if (children[i] == nullptr) continue;
            path.push_back(static_cast<char>(keys[i]));
            known.push_back(true);
            Descend(children[i]);
            path.pop_back();
            known.pop_back();
          }
          break;
        }
        case kNode48: {
          const Node48* n48 = static_cast<const Node48*>(n);
          MET_CHECK_THAT(rep, n->num_children <= 48,
                         "Node48 holds " << n->num_children << " children");
          bool slot_used[48] = {};
          for (int b = 0; b < 256; ++b) {
            unsigned char s = n48->child_index[b];
            if (s == 0xFF) continue;
            ++live;
            MET_CHECK_THAT(rep, s < 48,
                           "child_index[" << b << "] = " << int{s} << " >= 48");
            if (s >= 48) continue;
            MET_CHECK_THAT(rep, !slot_used[s],
                           "two labels share Node48 slot " << int{s});
            slot_used[s] = true;
            MET_CHECK_THAT(rep, n48->children[s] != nullptr,
                           "label " << b << " maps to empty Node48 slot "
                                    << int{s});
          }
          size_t occupied = 0;
          for (int s = 0; s < 48; ++s)
            if (n48->children[s] != nullptr) ++occupied;
          MET_CHECK_THAT(rep, occupied == live,
                         occupied << " occupied Node48 slots but " << live
                                  << " mapped labels (orphan children)");
          if (n->terminal != nullptr) CheckLeaf(n->terminal, /*terminal=*/true);
          for (int b = 0; b < 256; ++b) {
            unsigned char s = n48->child_index[b];
            if (s == 0xFF || s >= 48 || n48->children[s] == nullptr) continue;
            path.push_back(static_cast<char>(b));
            known.push_back(true);
            Descend(n48->children[s]);
            path.pop_back();
            known.pop_back();
          }
          break;
        }
        case kNode256: {
          const Node256* n256 = static_cast<const Node256*>(n);
          for (int b = 0; b < 256; ++b)
            if (n256->children[b] != nullptr) ++live;
          if (n->terminal != nullptr) CheckLeaf(n->terminal, /*terminal=*/true);
          for (int b = 0; b < 256; ++b) {
            if (n256->children[b] == nullptr) continue;
            path.push_back(static_cast<char>(b));
            known.push_back(true);
            Descend(n256->children[b]);
            path.pop_back();
            known.pop_back();
          }
          break;
        }
      }
      MET_CHECK_THAT(rep, live == n->num_children,
                     "num_children == " << n->num_children << " but " << live
                                        << " live children found");
      MET_CHECK_THAT(rep, live > 0 || n->terminal != nullptr,
                     "reachable empty node (should have been freed)");
      path.resize(base);
      known.resize(base);
    }
  } walker{this, rep, st, {}, {}};

  if (root_ != nullptr) walker.Descend(root_);
  MET_CHECK_THAT(rep, st.leaf_count == size_,
                 "size() == " << size_ << " but " << st.leaf_count
                              << " leaves reachable");
  return rep.ok();
}

}  // namespace met
