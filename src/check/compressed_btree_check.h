// met::check validator for the Compressed (static) B+tree
// (btree/compressed_btree.h).
//
// Checked invariants:
//  * page directory: one first-key per page, strictly sorted;
//  * every page inflates cleanly to exactly raw_size bytes (zlib round
//    trip) and re-serializing the decoded entries reproduces those bytes;
//  * per-page entries strictly sorted, first entry matches the directory
//    key, cross-page ordering holds;
//  * page entry counts sum to size().
#ifndef MET_CHECK_COMPRESSED_BTREE_CHECK_H_
#define MET_CHECK_COMPRESSED_BTREE_CHECK_H_

#include <string>
#include <vector>

#include "btree/compressed_btree.h"
#include "check/check.h"

namespace met {

template <typename Key, typename Value, int PageEntries>
bool CompressedBTree<Key, Value, PageEntries>::ValidateImpl(
    std::ostream& os) const {
  check::Reporter rep(os, "CompressedBTree");

  MET_CHECK_THAT(rep, first_keys_.size() == pages_.size(),
                 first_keys_.size() << " directory keys for " << pages_.size()
                                    << " pages");
  for (size_t p = 1; p < first_keys_.size(); ++p) {
    MET_CHECK_THAT(rep, first_keys_[p - 1] < first_keys_[p],
                   "page directory out of order at page " << p);
  }

  size_t entries_total = 0;
  bool have_prev = false;
  Key prev_key{};
  for (size_t p = 0; p < pages_.size(); ++p) {
    const Page& page = pages_[p];
    std::string raw;
    if (!compressed_internal::TryInflate(page.blob, page.raw_size, &raw)) {
      MET_CHECK_THAT(rep, false, "page " << p << " fails zlib round trip");
      continue;  // cannot decode further invariants from this page
    }
    std::vector<Entry> entries = DeserializePage(raw, page.count);
    MET_CHECK_THAT(rep, SerializePage(entries.data(), entries.size()) == raw,
                   "page " << p << " re-serialization mismatch");
    MET_CHECK_THAT(rep, entries.size() == page.count,
                   "page " << p << " decoded " << entries.size()
                           << " entries, header says " << page.count);
    MET_CHECK_THAT(rep, !entries.empty(), "page " << p << " is empty");
    entries_total += entries.size();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (have_prev) {
        MET_CHECK_THAT(rep, prev_key < entries[i].key,
                       "entries out of order at page " << p << " slot " << i
                           << ": " << check::KeyToDebugString(prev_key)
                           << " !< "
                           << check::KeyToDebugString(entries[i].key));
      }
      prev_key = entries[i].key;
      have_prev = true;
    }
    if (!entries.empty() && p < first_keys_.size()) {
      MET_CHECK_THAT(rep, entries[0].key == first_keys_[p],
                     "page " << p << " first entry "
                             << check::KeyToDebugString(entries[0].key)
                             << " != directory key "
                             << check::KeyToDebugString(first_keys_[p]));
    }
  }
  MET_CHECK_THAT(rep, entries_total == size_,
                 "size() == " << size_ << " but pages hold " << entries_total);
  return rep.ok();
}

}  // namespace met

#endif  // MET_CHECK_COMPRESSED_BTREE_CHECK_H_
