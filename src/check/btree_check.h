// met::check validator for the dynamic B+tree (btree/btree.h).
//
// Checked invariants:
//  * node counts: inner nodes hold 1..kInnerSlots separators, leaves hold
//    0..kLeafSlots entries (0 is legal: deletion is lazy, no rebalancing);
//  * keys strictly increasing within every node;
//  * separator bounds: child i of an inner node only holds keys in
//    [keys[i-1], keys[i]) — the ranges FindUpper() routes into;
//  * all leaves at the same depth;
//  * the leaf chain (first_leaf_ / leaf->next) visits exactly the leaves of
//    the in-order tree walk, in order, terminated by nullptr;
//  * size() equals the total number of leaf entries.
#ifndef MET_CHECK_BTREE_CHECK_H_
#define MET_CHECK_BTREE_CHECK_H_

#include <vector>

#include "btree/btree.h"
#include "check/check.h"

namespace met {

template <typename Key, typename Value, int NodeBytes>
bool BTree<Key, Value, NodeBytes>::ValidateImpl(std::ostream& os) const {
  check::Reporter rep(os, "BTree");

  if (root_ == nullptr) {
    MET_CHECK_THAT(rep, first_leaf_ == nullptr, "empty tree has a first leaf");
    MET_CHECK_THAT(rep, size_ == 0, "empty tree reports size " << size_);
    return rep.ok();
  }

  std::vector<const LeafNode*> leaves;  // in-order tree walk
  size_t entries = 0;
  int leaf_depth = -1;

  // Recursive walk with half-open routing bounds ([lo, hi); null = open).
  struct Walker {
    check::Reporter& rep;
    std::vector<const LeafNode*>& leaves;
    size_t& entries;
    int& leaf_depth;

    void Walk(const Node* n, const Key* lo, const Key* hi, int depth) {
      MET_CHECK_THAT(rep, n->count >= 0, "negative count at depth " << depth);
      if (n->is_leaf) {
        const LeafNode* leaf = static_cast<const LeafNode*>(n);
        MET_CHECK_THAT(rep, leaf->count <= kLeafSlots,
                       "leaf count " << leaf->count << " > " << kLeafSlots);
        if (leaf_depth < 0) leaf_depth = depth;
        MET_CHECK_THAT(rep, depth == leaf_depth,
                       "leaf at depth " << depth << ", expected " << leaf_depth);
        CheckKeys(leaf->keys, leaf->count, lo, hi, "leaf");
        leaves.push_back(leaf);
        entries += static_cast<size_t>(leaf->count);
        return;
      }
      const InnerNode* inner = static_cast<const InnerNode*>(n);
      MET_CHECK_THAT(rep, inner->count >= 1, "inner node with no separator");
      MET_CHECK_THAT(rep, inner->count <= kInnerSlots,
                     "inner count " << inner->count << " > " << kInnerSlots);
      CheckKeys(inner->keys, inner->count, lo, hi, "inner");
      for (int i = 0; i <= inner->count; ++i) {
        MET_CHECK_THAT(rep, inner->children[i] != nullptr,
                       "null child " << i << " at depth " << depth);
        if (inner->children[i] == nullptr) continue;
        const Key* clo = i == 0 ? lo : &inner->keys[i - 1];
        const Key* chi = i == inner->count ? hi : &inner->keys[i];
        Walk(inner->children[i], clo, chi, depth + 1);
      }
    }

    void CheckKeys(const Key* keys, int count, const Key* lo, const Key* hi,
                   const char* kind) {
      for (int i = 0; i < count; ++i) {
        if (i > 0) {
          MET_CHECK_THAT(rep, keys[i - 1] < keys[i],
                         kind << " keys out of order at slot " << i << ": "
                              << check::KeyToDebugString(keys[i - 1])
                              << " !< " << check::KeyToDebugString(keys[i]));
        }
        MET_CHECK_THAT(rep, lo == nullptr || !(keys[i] < *lo),
                       kind << " key " << check::KeyToDebugString(keys[i])
                            << " below separator lower bound");
        MET_CHECK_THAT(rep, hi == nullptr || keys[i] < *hi,
                       kind << " key " << check::KeyToDebugString(keys[i])
                            << " not below separator upper bound");
      }
    }
  } walker{rep, leaves, entries, leaf_depth};
  walker.Walk(root_, nullptr, nullptr, 0);

  MET_CHECK_THAT(rep, entries == size_,
                 "size() == " << size_ << " but leaves hold " << entries);

  // Leaf chain must mirror the in-order walk exactly.
  MET_CHECK_THAT(rep, first_leaf_ == (leaves.empty() ? nullptr : leaves[0]),
                 "first_leaf_ does not point at the leftmost leaf");
  const LeafNode* chain = first_leaf_;
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (chain != leaves[i]) {
      MET_CHECK_THAT(rep, false, "leaf chain diverges from tree order at leaf "
                                     << i << " of " << leaves.size());
      return rep.ok();
    }
    chain = chain->next;
  }
  MET_CHECK_THAT(rep, chain == nullptr, "leaf chain continues past last leaf");
  return rep.ok();
}

}  // namespace met

#endif  // MET_CHECK_BTREE_CHECK_H_
