// met::check validator for the Compact (static) B+tree
// (btree/compact_btree.h).
//
// Checked invariants:
//  * leaf entries strictly sorted and unique (the sorted-array contract the
//    implicit-level descent relies on);
//  * BlobStore offsets monotone and bounded by the blob (string keys);
//  * the implicit separator levels match a from-scratch recomputation:
//    levels_[l][g] must hold the entry index of group g's first key, with the
//    exact group/level shape BuildLevels() produces;
//  * the top level has at most Fanout groups.
#ifndef MET_CHECK_COMPACT_BTREE_CHECK_H_
#define MET_CHECK_COMPACT_BTREE_CHECK_H_

#include <vector>

#include "btree/compact_btree.h"
#include "check/check.h"

namespace met {

template <typename Key, typename Value, int Fanout>
bool CompactBTree<Key, Value, Fanout>::ValidateImpl(std::ostream& os) const {
  check::Reporter rep(os, "CompactBTree");

  std::string store_detail;
  MET_CHECK_THAT(rep, store_.StoreConsistent(&store_detail), store_detail);

  for (size_t i = 1; i < store_.size(); ++i) {
    // KeyView comparisons (const Key& or string_view) both order correctly.
    MET_CHECK_THAT(rep, store_.KeyAt(i - 1) < store_.KeyAt(i),
                   "entries out of order at " << i << ": "
                       << check::KeyToDebugString(Key(store_.KeyAt(i - 1)))
                       << " !< "
                       << check::KeyToDebugString(Key(store_.KeyAt(i))));
  }

  // Recompute the implicit levels and compare shape and content.
  std::vector<std::vector<uint32_t>> expected;
  size_t prev_size = store_.size();
  while (prev_size > static_cast<size_t>(Fanout)) {
    std::vector<uint32_t> level;
    size_t groups = (prev_size + Fanout - 1) / Fanout;
    level.reserve(groups);
    for (size_t g = 0; g < groups; ++g) {
      size_t child = g * Fanout;
      level.push_back(expected.empty() ? static_cast<uint32_t>(child)
                                       : expected.back()[child]);
    }
    expected.push_back(std::move(level));
    prev_size = groups;
  }

  MET_CHECK_THAT(rep, levels_.size() == expected.size(),
                 "have " << levels_.size() << " separator levels, expected "
                         << expected.size() << " for " << store_.size()
                         << " entries");
  for (size_t l = 0; l < levels_.size() && l < expected.size(); ++l) {
    MET_CHECK_THAT(rep, levels_[l].size() == expected[l].size(),
                   "level " << l << " has " << levels_[l].size()
                            << " separators, expected " << expected[l].size());
    size_t n = std::min(levels_[l].size(), expected[l].size());
    for (size_t g = 0; g < n; ++g) {
      MET_CHECK_THAT(rep, levels_[l][g] == expected[l][g],
                     "level " << l << " group " << g << " points at entry "
                              << levels_[l][g] << ", expected "
                              << expected[l][g]);
    }
  }
  if (!levels_.empty()) {
    MET_CHECK_THAT(rep, levels_.back().size() <= static_cast<size_t>(Fanout),
                   "top level has " << levels_.back().size() << " groups");
  }
  return rep.ok();
}

}  // namespace met

#endif  // MET_CHECK_COMPACT_BTREE_CHECK_H_
