// Corruption injectors for the validator mutation tests
// (tests/check_mutation_test.cc). TestAccess is a friend of every structure
// (declared via check/fwd.h), so these helpers can damage internal state in
// targeted ways; the tests then assert that Validate() reports the damage.
//
// Everything is a template over the structure type, so this header needs no
// structure includes — the test TU includes the structures it corrupts.
//
// The injected states are unsafe to *operate on* (lookups may return wrong
// results); tests only call Validate() afterwards, plus the destructor, and
// every injector keeps destructors safe (no dangling pointers, no freed
// memory — only counters, orderings, and encodings are damaged).
#ifndef MET_CHECK_TEST_ACCESS_H_
#define MET_CHECK_TEST_ACCESS_H_

#include <cstddef>
#include <utility>

namespace met {
namespace check {

struct TestAccess {
  // --- shared: any structure carrying a size_ member -------------------
  template <typename T>
  static void BumpSize(T* t) {
    ++t->size_;
  }

  // --- BTree -----------------------------------------------------------
  /// Swaps the first two keys of the first leaf (requires count >= 2).
  template <typename BT>
  static void SwapFirstLeafKeys(BT* t) {
    auto* leaf = t->first_leaf_;
    std::swap(leaf->keys[0], leaf->keys[1]);
  }

  // --- SkipList --------------------------------------------------------
  /// Swaps the first two keys of the first page (requires count >= 2).
  template <typename SL>
  static void SwapFirstPageKeys(SL* t) {
    auto* page = t->head_->page;
    std::swap(page->keys[0], page->keys[1]);
  }

  /// Replaces the first real tower's separator key with `key`. Passing a
  /// key above the tower's page contents breaks both the tower-key ordering
  /// and the separator-bound invariants.
  template <typename SL, typename K>
  static void SetFirstTowerKey(SL* t, const K& key) {
    t->head_->next[0]->key = key;
  }

  // --- ART -------------------------------------------------------------
  /// Flips the first byte of some reachable leaf's stored key so it no
  /// longer agrees with the path (branch label or compressed prefix) that
  /// leads to it.
  template <typename ArtT>
  static void FlipArtLeafByte(ArtT* t) {
    auto* leaf = const_cast<typename ArtT::Leaf*>(ArtT::AnyLeaf(t->root_));
    leaf->key_data[0] = static_cast<char>(leaf->key_data[0] ^ 0x01);
  }

  // --- Masstree --------------------------------------------------------
  /// Swaps the first two keyslices in the root layer's B+tree leaf
  /// (requires >= 2 entries in that leaf). Detected via the nested
  /// per-layer B+tree validation and the global key-order walk.
  template <typename MT>
  static void SwapMasstreeRootSlices(MT* t) {
    auto* leaf = t->root_->tree.first_leaf_;
    std::swap(leaf->keys[0], leaf->keys[1]);
  }

  // --- CompactBTree (string keys / BlobStore) --------------------------
  /// Overwrites the first key byte in the blob with 0xFF, breaking the
  /// sorted-unique leaf order (requires >= 2 ASCII keys).
  template <typename CT>
  static void CorruptCompactFirstKey(CT* t) {
    t->store_.blob_[0] = '\xff';
  }

  /// Grows the final key offset past the blob end.
  template <typename CT>
  static void CorruptCompactOffsets(CT* t) {
    ++t->store_.offsets_.back();
  }

  // --- CompressedBTree -------------------------------------------------
  /// Damages one byte in the middle of the first page's deflate stream.
  template <typename ZT>
  static void CorruptCompressedBlob(ZT* t) {
    auto& blob = t->pages_[0].blob;
    blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] + 1);
  }

  /// Points the first directory key at a key that is not the page's first
  /// entry.
  template <typename ZT>
  static void CorruptCompressedDirectory(ZT* t) {
    t->first_keys_[0] += "\x7f";
  }

  // --- FST -------------------------------------------------------------
  /// Drops the last value slot (value column no longer matches leaves).
  template <typename F>
  static void DropFstValue(F* t) {
    t->values_.pop_back();
  }

  /// Flips the first S-HasChild bit without rebuilding rank support,
  /// breaking the child bijection and the rank cross-checks. Returns false
  /// if the trie has no sparse levels to corrupt.
  template <typename F>
  static bool FlipFstHasChildBit(F* t) {
    if (t->s_has_child_.empty()) return false;
    if (t->s_has_child_.Get(0))
      t->s_has_child_.Clear(0);
    else
      t->s_has_child_.Set(0);
    return true;
  }

  // --- SuRF ------------------------------------------------------------
  /// Drops the last packed suffix word (requires suffix bits configured).
  template <typename S>
  static void DropSurfSuffixWord(S* t) {
    t->suffix_words_.pop_back();
  }

  /// Pushes the depth statistic outside [0, height].
  template <typename S>
  static void CorruptSurfDepth(S* t) {
    t->avg_leaf_depth_ = -1.0;
  }

  // --- LSM -------------------------------------------------------------
  /// Shifts the first table's first block offset (fence index no longer
  /// starts at 0 / covers the file). Requires at least one flushed table.
  template <typename L>
  static void CorruptLsmFence(L* t) {
    FirstTable(t)->block_offset[0] += 1;
  }

  /// Zeroes the first table's entry count.
  template <typename L>
  static void ZeroLsmEntryCount(L* t) {
    FirstTable(t)->num_entries = 0;
  }

 private:
  template <typename L>
  static auto* FirstTable(L* t) {
    for (auto& level : t->levels_)
      if (!level.empty()) return level.front().get();
    return static_cast<decltype(t->levels_.front().front().get())>(nullptr);
  }
};

}  // namespace check
}  // namespace met

#endif  // MET_CHECK_TEST_ACCESS_H_
