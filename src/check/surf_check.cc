// met::check validator for the Succinct Range Filter (surf/surf.h).
//
// Checked invariants:
//  * the underlying truncated FST passes its own validator and stores no
//    value array (SuRF keeps per-leaf suffixes instead);
//  * suffix-array sizing: ceil(num_keys * suffix_bits / 64) packed words,
//    none when no suffix bits are configured, and every stored suffix fits
//    in its configured width;
//  * avg_leaf_depth_ lies in [0, height];
//  * one-sided-error round trip on the stored keys (the original keys are
//    gone, so this probes the trie side, not the suffix side): for every
//    stored truncated key k, MoveToNext(k) returns exactly k without the
//    prefix false-positive flag, and Count(k, k) >= 1.
//
// This TU defines MET_CHECK so the nested Fst::Validate() stays live
// regardless of the build type of the rest of the library.
#ifndef MET_CHECK
#define MET_CHECK 1
#endif

#include <string>

#include "check/check.h"
#include "surf/surf.h"

namespace met {

bool Surf::CheckValidate(std::ostream& os) const {
  check::Reporter rep(os, "Surf");

  bool fst_ok = fst_.Validate(os);
  MET_CHECK_THAT(rep, fst_ok, "underlying FST encoding inconsistent");

  uint32_t bits = SuffixBitsTotal();
  size_t expect_words =
      bits == 0 ? 0 : (fst_.num_leaves() * bits + 63) / 64;
  MET_CHECK_THAT(rep, suffix_words_.size() == expect_words,
                 suffix_words_.size() << " suffix words for "
                     << fst_.num_leaves() << " leaves at " << bits
                     << " bits/key (expected " << expect_words << ")");
  MET_CHECK_THAT(rep, bits <= 64, "suffix width " << bits << " bits");
  if (bits > 0 && bits < 64 && suffix_words_.size() == expect_words) {
    for (size_t id = 0; id < fst_.num_leaves(); ++id) {
      uint64_t suffix = StoredSuffix(static_cast<uint32_t>(id));
      if (suffix >> bits != 0) {
        MET_CHECK_THAT(rep, false,
                       "leaf " << id << " suffix overflows its " << bits
                               << "-bit slot");
        break;
      }
    }
  }

  MET_CHECK_THAT(rep,
                 avg_leaf_depth_ >= 0 &&
                     avg_leaf_depth_ <= static_cast<double>(fst_.height()),
                 "average leaf depth " << avg_leaf_depth_
                                       << " outside [0, height == "
                                       << fst_.height() << "]");

  // Functional round trip over the stored keys; skip if the trie itself is
  // broken (iteration may not terminate).
  if (!fst_ok) return false;

  size_t walked = 0;
  for (Fst::Iterator it = fst_.Begin();
       it.Valid() && walked <= fst_.num_leaves(); it.Next(), ++walked) {
    const std::string& k = it.key();
    SeekResult seek = MoveToNext(k);
    MET_CHECK_THAT(rep, seek.found && seek.key == k && !seek.fp_flag,
                   "MoveToNext(" << check::KeyToDebugString(k)
                       << ") returns "
                       << (seek.found ? check::KeyToDebugString(seek.key)
                                      : std::string("<none>"))
                       << (seek.fp_flag ? " with fp_flag" : ""));
    MET_CHECK_THAT(rep, Count(k, k) >= 1,
                   "Count misses stored key " << check::KeyToDebugString(k));
  }
  return rep.ok();
}

}  // namespace met
