// met::check validator for the mini LSM engine (lsm/lsm.h).
//
// Metadata-only (no block I/O, so it is cheap and const): verifies the
// invariants the Get/Seek/Count paths navigate by.
//
// Checked invariants:
//  * per table: min_key <= max_key, a non-empty fence index with equally
//    sized key/offset/length columns, block first-keys strictly increasing
//    and bracketed by [min_key, max_key], offsets starting at 0 and each
//    block payload + its 4-byte CRC trailer ending where the next begins
//    (the last at data_bytes), at least one entry, an open file handle, a
//    quarantine set naming only real blocks, and a filter matching the
//    configured type (tables rebuilt over corrupt blocks run unfiltered);
//  * level 0: tables may overlap (newest last) — only per-table checks;
//  * levels >= 1: tables sorted by min_key and pairwise disjoint
//    (prev.max_key < next.min_key);
//  * per-level compaction cursors sized to the level list.
//
// This TU defines MET_CHECK so the nested Surf::Validate() calls on real
// SuRF filters stay live regardless of the build type of the library.
#ifndef MET_CHECK
#define MET_CHECK 1
#endif

#include <string>

#include "check/check.h"
#include "lsm/lsm.h"

namespace met {

bool LsmTree::CheckValidate(std::ostream& os) const {
  check::Reporter rep(os, "LsmTree");

  auto check_table = [&](const SsTable& t, size_t level, size_t idx) {
    std::ostringstream tag_stream;
    tag_stream << "L" << level << " table " << idx << " (id " << t.id << ")";
    std::string tag = tag_stream.str();

    MET_CHECK_THAT(rep, !(t.max_key < t.min_key),
                   tag << " min_key " << check::KeyToDebugString(t.min_key)
                       << " > max_key " << check::KeyToDebugString(t.max_key));
    MET_CHECK_THAT(rep, t.num_entries > 0, tag << " holds no entries");
    if (!crashed_) {
      MET_CHECK_THAT(rep, t.file != nullptr, tag << " has no open file");
    }

    size_t blocks = t.block_first_key.size();
    MET_CHECK_THAT(rep,
                   blocks > 0 && t.block_offset.size() == blocks &&
                       t.block_length.size() == blocks,
                   tag << " fence index columns " << blocks << "/"
                       << t.block_offset.size() << "/"
                       << t.block_length.size());
    if (blocks > 0 && t.block_offset.size() == blocks &&
        t.block_length.size() == blocks) {
      MET_CHECK_THAT(rep, t.block_offset[0] == 0,
                     tag << " first block at offset " << t.block_offset[0]);
      uint64_t expect_off = 0;
      for (size_t b = 0; b < blocks; ++b) {
        if (b > 0) {
          MET_CHECK_THAT(rep,
                         t.block_first_key[b - 1] < t.block_first_key[b],
                         tag << " fence keys out of order at block " << b);
        }
        MET_CHECK_THAT(rep, t.block_offset[b] == expect_off,
                       tag << " block " << b << " at offset "
                           << t.block_offset[b] << ", expected "
                           << expect_off);
        // Each on-disk block is payload plus a 4-byte CRC32C trailer.
        expect_off = t.block_offset[b] + t.block_length[b] + 4;
      }
      MET_CHECK_THAT(rep, expect_off == t.data_bytes,
                     tag << " blocks cover " << expect_off << " of "
                         << t.data_bytes << " data bytes");
      MET_CHECK_THAT(rep, t.data_bytes < t.file_bytes,
                     tag << " data region " << t.data_bytes
                         << " leaves no room for footer/trailer in "
                         << t.file_bytes << " file bytes");
      MET_CHECK_THAT(rep, t.block_first_key.front() == t.min_key,
                     tag << " min_key != first fence key");
      MET_CHECK_THAT(rep, !(t.max_key < t.block_first_key.back()),
                     tag << " last fence key above max_key");
      MET_CHECK_THAT(rep,
                     t.quarantined.empty() || *t.quarantined.rbegin() < blocks,
                     tag << " quarantines block " << *t.quarantined.rbegin()
                         << " of " << blocks);
    }

    // A table recovered over corrupt blocks legitimately runs unfiltered (a
    // rebuilt filter would miss the quarantined keys => false negatives), so
    // the filter-type check only binds when the filter exists.
    switch (options_.filter) {
      case LsmFilterType::kNone:
        MET_CHECK_THAT(rep, t.bloom == nullptr && t.surf == nullptr,
                       tag << " carries a filter with filtering disabled");
        break;
      case LsmFilterType::kBloom:
        MET_CHECK_THAT(rep, t.surf == nullptr,
                       tag << " carries a SuRF in Bloom mode");
        break;
      case LsmFilterType::kSurfHash:
      case LsmFilterType::kSurfReal:
        MET_CHECK_THAT(rep, t.bloom == nullptr,
                       tag << " carries a Bloom in SuRF mode");
        if (t.surf != nullptr) {
          MET_CHECK_THAT(rep, t.surf->Validate(rep.os()),
                         tag << " SuRF filter inconsistent");
        }
        break;
    }
  };

  for (size_t l = 0; l < levels_.size(); ++l) {
    const auto& level = levels_[l];
    for (size_t i = 0; i < level.size(); ++i) {
      check_table(*level[i], l, i);
      if (l >= 1 && i > 0) {
        MET_CHECK_THAT(rep, level[i - 1]->max_key < level[i]->min_key,
                       "L" << l << " tables " << i - 1 << " and " << i
                           << " overlap: "
                           << check::KeyToDebugString(level[i - 1]->max_key)
                           << " !< "
                           << check::KeyToDebugString(level[i]->min_key));
      }
    }
  }
  MET_CHECK_THAT(rep, compact_cursor_.size() <= levels_.size(),
                 compact_cursor_.size() << " compaction cursors for "
                                        << levels_.size()
                                        << " levels (cursors grow lazily)");
  MET_CHECK_THAT(rep, NumTables() <= options_.max_open_files,
                 NumTables() << " open table files exceed the "
                             << options_.max_open_files << " budget");
  return rep.ok();
}

}  // namespace met
