// Interleaved multi-writer schedule harness for the OLC structures (OlcArt,
// OlcBTree) and the OLC hybrid index — the concurrent counterpart of the
// single-threaded differential harness in check/differential.h.
//
// Writers run over *disjoint* per-writer keyspaces, so even though the
// schedule interleaves freely at the node level (shared paths, splits,
// restarts), every writer's own operations are serialized per key and the
// structure's per-key linearizability contract makes each outcome exact:
// the writer checks every MutateOutcome and every read-back value against
// its private oracle map, operation by operation. Readers and scanners run
// concurrently over the full keyspace to keep optimistic descents, version
// validation and (for OlcArt) epoch reclamation under fire; their results
// are racy by construction and only exercised, not asserted.
//
// The harness goes through the unified mutation dispatchers
// (IndexInsert/IndexUpdate/IndexRemove, common/index_api.h), so the same
// schedule drives bool-idiom and outcome-native structures identically —
// this is also what pins the dispatcher mapping under real concurrency.
//
// Used by tests/olc_test.cc and tests/property_test.cc (fixed seeds, CI,
// TSan) and tools/fuzz_ops.cc (rolling seeds, nightly). Deterministic in
// (config, key function) *per writer thread*; cross-thread interleaving is
// whatever the scheduler produces, which is the point.
//
// When built with MET_CHECK=1, the including TU must also include
// check/concurrent_hybrid_check.h if Index::Validate reaches an
// EpochDomain (the OLC hybrid and OlcArt do).
#ifndef MET_CHECK_OLC_SCHEDULE_H_
#define MET_CHECK_OLC_SCHEDULE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/index_api.h"
#include "hybrid/epoch.h"

namespace met {
namespace check {

struct OlcScheduleConfig {
  int writers = 4;
  int readers = 2;
  int ops_per_writer = 8000;
  int keys_per_writer = 1500;  // per-writer keyspace size (collisions drive
                               // update/remove hits)
  uint64_t seed = 0x01c5eed;
};

struct OlcScheduleResult {
  bool ok = true;
  std::string message;  // first failure, with writer id and op index
};

namespace internal {

/// Runs fn under an epoch pin when the structure exposes its domain
/// (OlcArt: reclamation safety; OlcBTree and the hybrid pin internally or
/// not at all).
template <typename Index, typename Fn>
decltype(auto) WithPin(Index& index, Fn&& fn) {
  if constexpr (requires { index.epoch(); }) {
    hybrid::EpochGuard g(index.epoch());
    return fn();
  } else {
    return fn();
  }
}

template <typename Key>
std::string KeyRepr(const Key& k) {
  if constexpr (std::is_convertible_v<Key, std::string>) {
    return std::string(k);
  } else {
    return std::to_string(static_cast<uint64_t>(k));
  }
}

}  // namespace internal

/// Drives `cfg.writers` writer threads (exact per-op outcome assertions
/// against per-writer oracles) plus `cfg.readers` reader/scanner threads
/// against *index, then verifies the final state single-threaded: size,
/// every surviving key's value, and Validate() where available.
/// `key_of(writer, i)` maps a writer id and a per-writer key index to a
/// key; ranges for distinct writers must be disjoint.
template <typename Index, typename KeyFn>
OlcScheduleResult RunOlcSchedule(Index* index, const OlcScheduleConfig& cfg,
                                 KeyFn key_of) {
  using Key = std::decay_t<decltype(key_of(0, 0))>;
  using Value = uint64_t;

  std::vector<std::map<Key, Value>> finals(cfg.writers);
  std::vector<std::string> errors(cfg.writers);  // one slot per writer
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(cfg.writers + cfg.readers));

  for (int t = 0; t < cfg.writers; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(cfg.seed + 0x9e3779b97f4a7c15ull *
                                         static_cast<uint64_t>(t + 1));
      std::map<Key, Value>& oracle = finals[t];
      auto fail = [&](int i, const char* op, const Key& k, MutateOutcome got,
                      const char* want) {
        std::ostringstream os;
        os << "writer " << t << " op " << i << " " << op << "("
           << internal::KeyRepr(k) << "): got " << MutateOutcomeName(got)
           << ", want " << want;
        errors[t] = os.str();
      };
      for (int i = 0; i < cfg.ops_per_writer && errors[t].empty(); ++i) {
        Key k = key_of(t, static_cast<int>(rng() %
                                           static_cast<uint64_t>(
                                               cfg.keys_per_writer)));
        Value v = rng() >> 1;  // headroom below any tombstone encoding
        switch (rng() % 8) {
          case 0:
          case 1:
          case 2: {  // unique insert
            MutateOutcome o = internal::WithPin(
                *index, [&] { return IndexInsert(*index, k, v); });
            bool present = oracle.count(k) != 0;
            if (o != (present ? MutateOutcome::kExists
                              : MutateOutcome::kInserted)) {
              fail(i, "Insert", k, o, present ? "exists" : "inserted");
              break;
            }
            if (!present) oracle.emplace(k, v);
            break;
          }
          case 3: {  // update-if-present
            MutateOutcome o = internal::WithPin(
                *index, [&] { return IndexUpdate(*index, k, v); });
            auto it = oracle.find(k);
            if (it == oracle.end()) {
              if (o != MutateOutcome::kNotFound)
                fail(i, "Update", k, o, "not_found");
            } else if (o != MutateOutcome::kUpdated) {
              fail(i, "Update", k, o, "updated");
            } else {
              it->second = v;
            }
            break;
          }
          case 4:
          case 5: {  // remove
            MutateOutcome o = internal::WithPin(*index, [&] {
              return IndexRemove<Index, Key, Value>(*index, k);
            });
            auto it = oracle.find(k);
            if (it == oracle.end()) {
              if (o != MutateOutcome::kNotFound)
                fail(i, "Remove", k, o, "not_found");
            } else if (o != MutateOutcome::kRemoved) {
              fail(i, "Remove", k, o, "removed");
            } else {
              oracle.erase(it);
            }
            break;
          }
          default: {  // read-your-writes point lookup
            Value got = 0;
            bool found = internal::WithPin(
                *index, [&] { return index->Lookup(k, &got); });
            auto it = oracle.find(k);
            if (found != (it != oracle.end()) ||
                (found && got != it->second)) {
              std::ostringstream os;
              os << "writer " << t << " op " << i << " Lookup("
                 << internal::KeyRepr(k) << "): found=" << found
                 << " value=" << got << " vs oracle "
                 << (it != oracle.end() ? internal::KeyRepr(it->second)
                                        : std::string("absent"));
              errors[t] = os.str();
            }
            break;
          }
        }
      }
    });
  }

  for (int r = 0; r < cfg.readers; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(cfg.seed ^ (0xabcdefull + static_cast<uint64_t>(r)));
      std::vector<Value> vals;
      while (!stop.load(std::memory_order_acquire)) {
        Key k = key_of(static_cast<int>(rng() %
                                        static_cast<uint64_t>(cfg.writers)),
                       static_cast<int>(rng() % static_cast<uint64_t>(
                                                    cfg.keys_per_writer)));
        internal::WithPin(*index, [&] {
          if (rng() % 8 == 0) {
            vals.clear();
            index->Scan(k, 64, &vals);
          } else {
            Value got = 0;
            index->Lookup(k, &got);
          }
          return 0;
        });
        if constexpr (requires { index->epoch(); }) {
          if (rng() % 64 == 0) index->epoch().TryReclaim();
        }
      }
    });
  }

  for (int t = 0; t < cfg.writers; ++t) threads[static_cast<size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = static_cast<size_t>(cfg.writers); t < threads.size(); ++t)
    threads[t].join();

  OlcScheduleResult result;
  for (const std::string& e : errors) {
    if (!e.empty()) {
      result.ok = false;
      result.message = e;
      return result;
    }
  }

  // Single-threaded epilogue: exact global state.
  if constexpr (requires { index->WaitForMergeIdle(); })
    index->WaitForMergeIdle();
  size_t want = 0;
  for (const auto& f : finals) want += f.size();
  if (index->size() != want) {
    result.ok = false;
    std::ostringstream os;
    os << "final size " << index->size() << " != oracle union " << want;
    result.message = os.str();
    return result;
  }
  for (const auto& f : finals) {
    for (const auto& [k, v] : f) {
      Value got = 0;
      bool found = index->Lookup(k, &got);
      if (!found || got != v) {
        result.ok = false;
        std::ostringstream os;
        os << "final Lookup(" << internal::KeyRepr(k) << "): found=" << found
           << " value=" << got << ", want " << v;
        result.message = os.str();
        return result;
      }
    }
  }
  if constexpr (requires(const Index& ci, std::ostream& os) {
                  { ci.Validate(os) } -> std::convertible_to<bool>;
                }) {
    std::ostringstream os;
    if (!index->Validate(os)) {
      result.ok = false;
      result.message = "Validate failed: " + os.str();
      return result;
    }
  }
  return result;
}

}  // namespace check
}  // namespace met

#endif  // MET_CHECK_OLC_SCHEDULE_H_
