// met::check — structural invariant validation (the correctness counterpart
// of met::obs). Every search structure exposes
//
//     bool Validate(std::ostream& os) const;
//
// which walks the structure and verifies the invariants its query algorithms
// rely on (key ordering, rank/select consistency, pointer linkage, ...),
// writing one line per violation to `os` and returning whether the structure
// is consistent. The walk is exhaustive — O(n) or worse — so Validate()
// compiles to a no-op returning true unless MET_CHECK_ENABLED (a Debug build
// or -DMET_CHECK=1; see common/assert.h). Release builds pay nothing.
//
// Validators for template structures are implemented out-of-class in the
// check/*_check.h headers; include those (or this umbrella's per-structure
// headers directly) in any TU that calls Validate() with checks enabled.
#ifndef MET_CHECK_CHECK_H_
#define MET_CHECK_CHECK_H_

#include <cstddef>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/assert.h"

namespace met {
namespace check {

/// Collects invariant violations for one structure instance. Prints at most
/// `kMaxReported` lines (corruption tends to cascade; the first few failures
/// are the informative ones) but counts all of them.
class Reporter {
 public:
  Reporter(std::ostream& os, std::string_view structure)
      : os_(os), structure_(structure) {}

  void Fail(std::string_view invariant, std::string_view detail) {
    ++failures_;
    if (failures_ > kMaxReported) return;
    os_ << "[met::check] " << structure_ << ": FAIL " << invariant;
    if (!detail.empty()) os_ << " — " << detail;
    os_ << "\n";
    if (failures_ == kMaxReported)
      os_ << "[met::check] " << structure_ << ": (further failures elided)\n";
  }

  bool ok() const { return failures_ == 0; }
  size_t failures() const { return failures_; }
  std::ostream& os() { return os_; }

 private:
  static constexpr size_t kMaxReported = 16;

  std::ostream& os_;
  std::string structure_;
  size_t failures_ = 0;
};

/// Renders a key of arbitrary type for failure messages.
template <typename K>
std::string KeyToDebugString(const K& key) {
  if constexpr (std::is_arithmetic_v<K>) {
    return std::to_string(key);
  } else if constexpr (std::is_convertible_v<const K&, std::string_view>) {
    std::string out = "\"";
    for (char c : std::string_view(key)) {
      if (c >= 0x20 && c < 0x7F) {
        out.push_back(c);
      } else {
        static const char kHex[] = "0123456789abcdef";
        unsigned char u = static_cast<unsigned char>(c);
        out += "\\x";
        out.push_back(kHex[u >> 4]);
        out.push_back(kHex[u & 0xF]);
      }
    }
    out.push_back('"');
    return out;
  } else {
    return "<key>";
  }
}

}  // namespace check
}  // namespace met

/// Verifies `cond` inside a ValidateImpl body. `detail` is a stream
/// expression (e.g. `"slot " << i << " key " << k`), evaluated only on
/// failure.
#define MET_CHECK_THAT(rep, cond, detail)          \
  do {                                             \
    if (!(cond)) {                                 \
      std::ostringstream met_check_detail_;        \
      met_check_detail_ << detail; /* NOLINT */    \
      (rep).Fail(#cond, met_check_detail_.str());  \
    }                                              \
  } while (0)

#endif  // MET_CHECK_CHECK_H_
