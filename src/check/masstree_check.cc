// met::check validator for the simplified Masstree (masstree/masstree.h).
//
// Checked invariants:
//  * each layer's B+tree of (keyslice, lenx) entries is itself valid;
//  * lenx in [0, 9]; terminal classes (lenx <= 8) carry kValue links with
//    the slice zero-padded beyond lenx; lenx == 9 carries kSuffix or kChild;
//  * keybag placement: kSuffix records are non-null with a non-empty suffix
//    (an 8-byte remainder would have terminated in the slice);
//  * child layers are non-null and hold only non-empty remainders
//    (lenx >= 1); empty child trees are legal after lazy erase;
//  * reconstructed full keys are strictly increasing across the whole trie
//    (keyslice order must agree with lexicographic byte order);
//  * the number of reachable values equals size().
//
// This TU defines MET_CHECK so the nested per-layer BTree::Validate() calls
// stay live regardless of the build type of the rest of the library.
#ifndef MET_CHECK
#define MET_CHECK 1
#endif

#include <string>

#include "check/btree_check.h"
#include "check/check.h"
#include "masstree/masstree.h"

namespace met {

bool Masstree::CheckValidate(std::ostream& os) const {
  check::Reporter rep(os, "Masstree");

  struct Walker {
    check::Reporter& rep;
    std::string path;
    size_t values = 0;
    bool have_prev = false;
    std::string prev_key;

    void VisitKey(const std::string& key) {
      ++values;
      if (have_prev) {
        MET_CHECK_THAT(rep, prev_key < key,
                       "keys out of order: " << check::KeyToDebugString(prev_key)
                           << " !< " << check::KeyToDebugString(key));
      }
      prev_key = key;
      have_prev = true;
    }

    void Descend(const Layer* layer, int depth) {
      if (layer == nullptr) return;
      MET_CHECK_THAT(rep, layer->tree.Validate(rep.os()),
                     "layer B+tree inconsistent at depth " << depth);
      for (auto it = layer->tree.Begin(); it.Valid(); it.Next()) {
        const MtKey& mk = it.key();
        const Link& link = it.value();
        MET_CHECK_THAT(rep, mk.lenx <= 9,
                       "length class " << int{mk.lenx} << " out of range");
        if (depth > 0) {
          MET_CHECK_THAT(rep, mk.lenx >= 1,
                         "empty remainder in a child layer (depth " << depth
                                                                    << ")");
        }
        size_t base = path.size();
        masstree_internal::AppendSlice(mk.slice, mk.lenx <= 8 ? mk.lenx : 8,
                                       &path);
        if (mk.lenx <= 8) {
          if (mk.lenx < 8) {
            uint64_t pad = mk.slice & (~0ull >> (8 * mk.lenx));
            MET_CHECK_THAT(rep, pad == 0,
                           "slice of length-class " << int{mk.lenx}
                               << " not zero padded for "
                               << check::KeyToDebugString(path));
          }
          MET_CHECK_THAT(rep, link.kind == Link::kValue,
                         "terminal length-class links kind " << int{link.kind}
                             << " at " << check::KeyToDebugString(path));
          if (link.kind == Link::kValue) VisitKey(path);
        } else {
          switch (link.kind) {
            case Link::kValue:
              MET_CHECK_THAT(rep, false,
                             "extended length-class holds an inline value at "
                                 << check::KeyToDebugString(path));
              break;
            case Link::kSuffix: {
              MET_CHECK_THAT(rep, link.suffix != nullptr,
                             "null keybag record at "
                                 << check::KeyToDebugString(path));
              if (link.suffix == nullptr) break;
              MET_CHECK_THAT(rep, !link.suffix->suffix.empty(),
                             "empty keybag suffix at "
                                 << check::KeyToDebugString(path)
                                 << " (should be length-class 8)");
              size_t b2 = path.size();
              path.append(link.suffix->suffix);
              VisitKey(path);
              path.resize(b2);
              break;
            }
            case Link::kChild:
              MET_CHECK_THAT(rep, link.child != nullptr,
                             "null child layer at "
                                 << check::KeyToDebugString(path));
              Descend(link.child, depth + 1);
              break;
          }
        }
        path.resize(base);
      }
    }
  } walker{rep, {}, 0, false, {}};

  walker.Descend(root_, 0);
  MET_CHECK_THAT(rep, walker.values == size_,
                 "size() == " << size_ << " but " << walker.values
                              << " values reachable");
  return rep.ok();
}

}  // namespace met
