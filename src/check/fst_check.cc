// met::check validator for the Fast Succinct Trie (fst/fst.h).
//
// Checked invariants, in dependency order:
//  * size accounting: 256-bit D-Labels/D-HasChild and 1-bit D-IsPrefixKey
//    per dense node; one S-HasChild/S-LOUDS bit per sparse label; 16-byte
//    SIMD slack on the label bytes; level_node_start_ layout with its two
//    sentinels;
//  * D-HasChild ⊆ D-Labels (a branch cannot exist without its label);
//  * child bijection: every node except the root is the target of exactly
//    one has-child bit, so dense_child_count_ + popcount(S-HasChild) ==
//    num_nodes() - 1, and popcount(S-LOUDS) equals the sparse node count;
//  * leaf accounting: dense_value_count_ == terminating dense branches +
//    prefix-key bits; num_leaves() adds the sparse labels without has-child;
//    num_leaves() == num_keys() (each key terminates exactly once); the
//    value array matches when stored;
//  * sparse node shape: S-LOUDS set at position 0, every node's labels
//    strictly increasing, a 0xFF prefix-key marker only at the start of a
//    node of size >= 2 and never with has-child;
//  * rank/select consistency: the active rank structure (fast LUT or Poppy
//    baseline, per config) agrees with a naive cumulative popcount at every
//    position of all five bit sequences, and SelectLouds is the inverse of
//    rank over S-LOUDS at every sparse node;
//  * full ordered walk (skipped if the structural checks above failed, since
//    iterating a corrupt encoding may not terminate): leaf paths strictly
//    increasing, leaf ids a permutation of [0, num_leaves()), and
//    Lookup(path) returning the same leaf id and prefix-leaf flag;
//  * in kFullKey mode, CountRange over the full key span == num_leaves().
#include <string>
#include <vector>

#include "check/check.h"
#include "fst/fst.h"

namespace met {

bool Fst::CheckValidate(std::ostream& os) const {
  check::Reporter rep(os, "Fst");

  // ---- Size accounting ----
  MET_CHECK_THAT(rep, d_labels_.size() == dense_node_count_ * 256,
                 "D-Labels holds " << d_labels_.size() << " bits for "
                                   << dense_node_count_ << " dense nodes");
  MET_CHECK_THAT(rep, d_has_child_.size() == dense_node_count_ * 256,
                 "D-HasChild holds " << d_has_child_.size() << " bits for "
                                     << dense_node_count_ << " dense nodes");
  MET_CHECK_THAT(rep, d_is_prefix_.size() == dense_node_count_,
                 "D-IsPrefixKey holds " << d_is_prefix_.size() << " bits for "
                                        << dense_node_count_
                                        << " dense nodes");
  MET_CHECK_THAT(rep, s_has_child_.size() == num_s_labels_,
                 "S-HasChild holds " << s_has_child_.size() << " bits for "
                                     << num_s_labels_ << " labels");
  MET_CHECK_THAT(rep, s_louds_.size() == num_s_labels_,
                 "S-LOUDS holds " << s_louds_.size() << " bits for "
                                  << num_s_labels_ << " labels");
  MET_CHECK_THAT(rep, s_labels_.size() >= num_s_labels_ + 16,
                 "missing SIMD slack: " << s_labels_.size() << " bytes for "
                                        << num_s_labels_ << " labels");
  MET_CHECK_THAT(rep, num_nodes_ >= dense_node_count_,
                 num_nodes_ << " nodes but " << dense_node_count_ << " dense");

  if (!(num_nodes_ == 0 && level_node_start_.empty())) {
    MET_CHECK_THAT(rep, level_node_start_.size() == height_ + 2,
                   "level_node_start_ has " << level_node_start_.size()
                       << " entries for height " << height_);
    if (level_node_start_.size() == height_ + 2) {
      MET_CHECK_THAT(rep, level_node_start_[0] == 0,
                     "first level starts at node "
                         << level_node_start_[0]);
      for (size_t l = 1; l < level_node_start_.size(); ++l) {
        MET_CHECK_THAT(rep,
                       level_node_start_[l - 1] <= level_node_start_[l],
                       "level_node_start_ decreases at level " << l);
      }
      MET_CHECK_THAT(rep,
                     level_node_start_[height_] == num_nodes_ &&
                         level_node_start_[height_ + 1] == num_nodes_,
                     "sentinels hold " << level_node_start_[height_] << "/"
                         << level_node_start_[height_ + 1] << ", expected "
                         << num_nodes_);
    }
  }

  // ---- Bit-sequence relations ----
  size_t d_labels_ones = d_labels_.CountOnes();
  size_t d_has_child_ones = d_has_child_.CountOnes();
  size_t d_prefix_ones = d_is_prefix_.CountOnes();
  size_t s_has_child_ones = s_has_child_.CountOnes();
  size_t s_louds_ones = s_louds_.CountOnes();
  size_t sparse_nodes = num_nodes_ - dense_node_count_;

  for (size_t i = 0; i < d_has_child_.size(); ++i) {
    if (d_has_child_.Get(i) && !d_labels_.Get(i)) {
      MET_CHECK_THAT(rep, false,
                     "D-HasChild bit " << i << " set without its D-Label");
      break;  // one report is enough; the relation is checked bit by bit
    }
  }

  MET_CHECK_THAT(rep, dense_child_count_ == d_has_child_ones,
                 "dense_child_count_ == " << dense_child_count_
                     << " but D-HasChild has " << d_has_child_ones
                     << " set bits");
  MET_CHECK_THAT(rep, s_louds_ones == sparse_nodes,
                 "S-LOUDS has " << s_louds_ones << " set bits for "
                                << sparse_nodes << " sparse nodes");
  if (num_nodes_ > 0) {
    MET_CHECK_THAT(rep,
                   dense_child_count_ + s_has_child_ones == num_nodes_ - 1,
                   "child bijection broken: " << dense_child_count_ << " + "
                       << s_has_child_ones << " has-child bits for "
                       << num_nodes_ << " nodes");
  }
  MET_CHECK_THAT(rep,
                 dense_value_count_ ==
                     d_labels_ones - d_has_child_ones + d_prefix_ones,
                 "dense_value_count_ == " << dense_value_count_
                     << " but terminating branches + markers == "
                     << (d_labels_ones - d_has_child_ones + d_prefix_ones));
  MET_CHECK_THAT(rep,
                 num_leaves_ ==
                     dense_value_count_ + (num_s_labels_ - s_has_child_ones),
                 "num_leaves() == " << num_leaves_ << " but encoding holds "
                     << dense_value_count_ +
                            (num_s_labels_ - s_has_child_ones));
  MET_CHECK_THAT(rep, num_leaves_ == num_keys_,
                 num_leaves_ << " leaves for " << num_keys_
                             << " keys (each key must terminate once)");
  if (config_.store_values) {
    MET_CHECK_THAT(rep, values_.size() == num_leaves_ || values_.empty(),
                   values_.size() << " values for " << num_leaves_
                                  << " leaves");
  } else {
    MET_CHECK_THAT(rep, values_.empty(),
                   values_.size() << " values stored with store_values off");
  }

  // ---- Sparse node shape: LOUDS boundaries, ordering, 0xFF markers ----
  if (num_s_labels_ > 0) {
    MET_CHECK_THAT(rep, s_louds_.Get(0),
                   "first sparse label does not start a node");
  }
  for (size_t start = 0; start < num_s_labels_;) {
    size_t end = start + 1;
    while (end < num_s_labels_ && !s_louds_.Get(end)) ++end;
    bool marker = s_labels_[start] == 0xFF && end - start >= 2;
    if (marker) {
      MET_CHECK_THAT(rep, !s_has_child_.Get(start),
                     "0xFF prefix marker at " << start
                                              << " carries a has-child bit");
    }
    for (size_t i = start + (marker ? 2 : 1); i < end; ++i) {
      MET_CHECK_THAT(rep, s_labels_[i - 1] < s_labels_[i],
                     "sparse labels out of order in node [" << start << ", "
                         << end << ") at " << i);
    }
    start = end;
  }

  // ---- Rank consistency: active structure vs naive cumulative count ----
  struct RankProbe {
    const char* name;
    const BitVector* bits;
    size_t (*rank)(const Fst*, size_t);
  };
  const RankProbe probes[] = {
      {"D-Labels", &d_labels_,
       [](const Fst* f, size_t p) { return f->DenseRankLabels(p); }},
      {"D-HasChild", &d_has_child_,
       [](const Fst* f, size_t p) { return f->DenseRankHasChild(p); }},
      {"D-IsPrefixKey", &d_is_prefix_,
       [](const Fst* f, size_t p) {
         return f->RankD(f->d_is_prefix_rank_, f->d_is_prefix_poppy_, p);
       }},
      {"S-HasChild", &s_has_child_,
       [](const Fst* f, size_t p) { return f->SparseRankHasChild(p); }},
      {"S-LOUDS", &s_louds_,
       [](const Fst* f, size_t p) {
         return f->RankD(f->s_louds_rank_, f->s_louds_poppy_, p);
       }},
  };
  for (const RankProbe& probe : probes) {
    size_t cum = 0;
    for (size_t pos = 0; pos < probe.bits->size(); ++pos) {
      if (probe.bits->Get(pos)) ++cum;
      size_t got = probe.rank(this, pos);
      if (got != cum) {
        MET_CHECK_THAT(rep, false,
                       probe.name << " rank1(" << pos << ") == " << got
                                  << ", naive count == " << cum);
        break;  // a broken LUT would flood the report
      }
    }
  }

  // ---- Select inverse over S-LOUDS ----
  {
    size_t cum = 0, node = 0;
    for (size_t pos = 0; pos < num_s_labels_ && node < sparse_nodes; ++pos) {
      if (!s_louds_.Get(pos)) continue;
      ++cum;
      size_t got = SelectLouds(cum);
      if (got != pos) {
        MET_CHECK_THAT(rep, false,
                       "SelectLouds(" << cum << ") == " << got
                                      << ", node actually starts at " << pos);
        break;
      }
      ++node;
    }
  }

  // ---- Ordered walk + Lookup round trip ----
  // Iterating relies on every invariant above; a corrupt encoding can send
  // the cursors in circles, so bail out if anything already failed.
  if (!rep.ok()) return false;

  std::vector<bool> seen(num_leaves_, false);
  size_t walked = 0;
  std::string prev_key;
  bool have_prev = false;
  std::string last_key;
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    if (++walked > num_leaves_) {
      MET_CHECK_THAT(rep, false,
                     "iterator yields more than num_leaves() == "
                         << num_leaves_ << " leaves");
      break;
    }
    uint32_t id = it.leaf_id();
    MET_CHECK_THAT(rep, id < num_leaves_, "leaf id " << id << " out of range");
    if (id < num_leaves_) {
      MET_CHECK_THAT(rep, !seen[id], "leaf id " << id << " visited twice");
      seen[id] = true;
    }
    if (have_prev) {
      MET_CHECK_THAT(rep, prev_key < it.key(),
                     "leaf paths out of order: "
                         << check::KeyToDebugString(prev_key) << " !< "
                         << check::KeyToDebugString(it.key()));
    }
    prev_key = it.key();
    have_prev = true;
    last_key = it.key();

    PathResult res = LookupPath(it.key());
    MET_CHECK_THAT(rep, res.found,
                   "Lookup misses stored path "
                       << check::KeyToDebugString(it.key()));
    if (res.found) {
      MET_CHECK_THAT(rep, res.leaf_id == id,
                     "Lookup(" << check::KeyToDebugString(it.key())
                               << ") resolves leaf " << res.leaf_id
                               << ", iterator is at leaf " << id);
      MET_CHECK_THAT(rep, res.is_prefix_leaf == it.IsPrefixLeaf(),
                     "prefix-leaf flag mismatch at "
                         << check::KeyToDebugString(it.key()));
    }
  }
  MET_CHECK_THAT(rep, walked == num_leaves_,
                 "iterator yields " << walked << " of " << num_leaves_
                                    << " leaves");

  if (config_.mode == FstConfig::Mode::kFullKey && num_leaves_ > 0 &&
      walked == num_leaves_) {
    uint64_t count = CountRange(std::string(), last_key + '\x00');
    MET_CHECK_THAT(rep, count == num_leaves_,
                   "CountRange over the full span == " << count << ", not "
                                                       << num_leaves_);
  }
  return rep.ok();
}

}  // namespace met
