// Validators for the concurrent hybrid index and its epoch-reclamation
// domain (see src/hybrid/concurrent_hybrid.h and DESIGN.md, "Concurrent
// hybrid index"). Include this header in any TU that calls Validate() on
// these types with MET_CHECK_ENABLED.
//
// ConcurrentHybridIndex::ValidateImpl requires external quiescence: call
// WaitForMergeIdle() first and run no concurrent writers (the differential
// harness satisfies both by construction).
#ifndef MET_CHECK_CONCURRENT_HYBRID_CHECK_H_
#define MET_CHECK_CONCURRENT_HYBRID_CHECK_H_

#include <algorithm>
#include <map>
#include <ostream>
#include <utility>
#include <vector>

#include "check/check.h"
#include "hybrid/concurrent_hybrid.h"
#include "hybrid/epoch.h"
#include "hybrid/merge_core.h"

namespace met {
namespace hybrid {

/// Epoch state machine: pins never run ahead of the global epoch, retired
/// tags were all drawn from it (unique, strictly below the current value).
inline bool EpochDomain::ValidateImpl(std::ostream& os) const {
  check::Reporter rep(os, "EpochDomain");
  uint64_t global = GlobalEpoch();
  for (size_t i = 0; i < kSlots; ++i) {
    uint64_t v = slots_[i].epoch.load(std::memory_order_seq_cst);
    MET_CHECK_THAT(rep, v == kFree || v <= global,
                   "slot " << i << " pinned at " << v << ", global " << global);
  }
  {
    sync::MutexLock l(mu_);
    std::vector<uint64_t> tags;
    tags.reserve(retired_.size());
    for (const auto& r : retired_) tags.push_back(r.tag);
    std::sort(tags.begin(), tags.end());
    for (size_t i = 0; i < tags.size(); ++i) {
      MET_CHECK_THAT(rep, tags[i] < global,
                     "retired tag " << tags[i] << " >= global " << global);
      MET_CHECK_THAT(rep, i == 0 || tags[i] != tags[i - 1],
                     "duplicate retired tag " << tags[i]);
    }
  }
  return rep.ok();
}

}  // namespace hybrid

/// Snapshot/merge state machine, tombstone discipline and size accounting.
template <typename Key, typename DynamicStage, typename StaticStage>
bool ConcurrentHybridIndex<Key, DynamicStage, StaticStage>::ValidateImpl(
    std::ostream& os) const {
  check::Reporter rep(os, "ConcurrentHybridIndex");
  if (!epoch_.Validate(os)) rep.Fail("epoch domain invariants", "");

  const Snapshot* s = snapshot_.load(std::memory_order_seq_cst);
  bool inflight = merge_inflight_.load(std::memory_order_relaxed);
  MET_CHECK_THAT(rep, s != nullptr, "");
  MET_CHECK_THAT(rep, s->stat != nullptr, "version " << s->version);
  MET_CHECK_THAT(rep, inflight == (s->frozen != nullptr),
                 "inflight " << inflight << ", version " << s->version);
  HybridMergeStats st = merge_stats();
  MET_CHECK_THAT(rep,
                 s->version == 2 * st.merge_count + (inflight ? 1 : 0),
                 "version " << s->version << ", merges " << st.merge_count);

  // Stage contents: each stage sorted strictly ascending; tombstones only
  // where they shadow a live entry below; logical live count == size().
  auto collect = [](const auto& stage, std::vector<std::pair<Key, Value>>* out) {
    stage.ScanPairs(hybrid::MinKey<Key>(), stage.size(), out);
  };
  auto sorted = [&rep](const char* name,
                       const std::vector<std::pair<Key, Value>>& pairs) {
    for (size_t i = 1; i < pairs.size(); ++i)
      MET_CHECK_THAT(rep, pairs[i - 1].first < pairs[i].first,
                     name << " not strictly sorted at position " << i << " ("
                          << check::KeyToDebugString(pairs[i].first) << ")");
  };
  std::vector<std::pair<Key, Value>> act, fro, sta;
  collect(*active_, &act);
  if (s->frozen != nullptr) collect(*s->frozen, &fro);
  collect(*s->stat, &sta);
  sorted("active", act);
  sorted("frozen", fro);
  sorted("static", sta);
  for (const auto& p : sta)
    MET_CHECK_THAT(rep, p.second != kTombstone,
                   "tombstone in static stage for key "
                       << check::KeyToDebugString(p.first));

  std::map<Key, Value> below;  // frozen over static
  for (const auto& p : sta) below[p.first] = p.second;
  for (const auto& p : fro) {
    if (p.second == kTombstone) {
      MET_CHECK_THAT(rep, below.count(p.first) > 0,
                     "frozen tombstone shadows nothing: "
                         << check::KeyToDebugString(p.first));
    }
    below[p.first] = p.second;
  }
  std::map<Key, Value> merged = below;  // active over (frozen over static)
  for (const auto& p : act) {
    if (p.second == kTombstone) {
      auto it = below.find(p.first);
      MET_CHECK_THAT(rep, it != below.end() && it->second != kTombstone,
                     "active tombstone shadows nothing: "
                         << check::KeyToDebugString(p.first));
    }
    merged[p.first] = p.second;
  }
  size_t live = 0;
  for (const auto& [k, v] : merged) {
    (void)k;
    if (v != kTombstone) ++live;
  }
  MET_CHECK_THAT(rep, live == size(),
                 "merged live count " << live << ", size() " << size());
  return rep.ok();
}

}  // namespace met

#endif  // MET_CHECK_CONCURRENT_HYBRID_CHECK_H_
