// met::check differential fuzz harness: replays deterministic random
// operation sequences through an index and a trusted oracle (std::map /
// sorted vector) simultaneously, comparing every return value, checking the
// structure's Validate() and its full ordered contents at checkpoints.
//
// The harness is shared by tests/property_test.cc (fixed seeds, CI) and
// tools/fuzz_ops.cc (rolling seeds, nightly; failing sequences are shrunk
// with MinimizeOps and printed as a replayable repro).
//
// Everything is deterministic in (seed, key set): a failure report of
// "structure X, keys Y, seed Z" replays exactly.
#ifndef MET_CHECK_DIFFERENTIAL_H_
#define MET_CHECK_DIFFERENTIAL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/index_api.h"
#include "common/random.h"
#include "keys/keygen.h"

namespace met {
namespace check {

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

struct DiffOp {
  enum Kind : uint8_t {
    kInsert,          // Insert (fails on duplicate)
    kInsertOrAssign,  // upsert
    kErase,
    kFind,
    kUpdate,  // assign only if present
    kScan,    // ordered scan of scan_len values from lower_bound(key)
    kNumKinds,
  };

  Kind kind;
  uint32_t key_index;  // into the key universe (mod size)
  uint32_t scan_len;
  uint64_t value;
};

inline const char* DiffOpName(DiffOp::Kind k) {
  switch (k) {
    case DiffOp::kInsert: return "insert";
    case DiffOp::kInsertOrAssign: return "insert_or_assign";
    case DiffOp::kErase: return "erase";
    case DiffOp::kFind: return "find";
    case DiffOp::kUpdate: return "update";
    case DiffOp::kScan: return "scan";
    default: return "?";
  }
}

/// Deterministic op sequence: a read/write mix over `num_keys` keys. Values
/// are 48-bit so reserved sentinels (e.g. HybridIndex's kTombstone) never
/// collide with a stored value.
inline std::vector<DiffOp> GenOps(uint64_t seed, size_t n, size_t num_keys) {
  Random rng(seed);
  std::vector<DiffOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t r = rng.Uniform(100);
    DiffOp::Kind kind;
    if (r < 30) kind = DiffOp::kInsert;
    else if (r < 40) kind = DiffOp::kInsertOrAssign;
    else if (r < 55) kind = DiffOp::kErase;
    else if (r < 75) kind = DiffOp::kFind;
    else if (r < 85) kind = DiffOp::kUpdate;
    else kind = DiffOp::kScan;
    ops.push_back({kind, static_cast<uint32_t>(rng.Uniform(num_keys)),
                   static_cast<uint32_t>(1 + rng.Uniform(64)),
                   rng.Next() & 0xFFFFFFFFFFFFull});
  }
  return ops;
}

/// Mixed key universe: emails + URLs (shared prefixes, varied lengths) +
/// 8-byte big-endian integers, deduplicated. Deterministic in `seed`.
inline std::vector<std::string> DiffKeys(size_t n, uint64_t seed) {
  std::vector<std::string> keys = GenEmails(n / 3 + 1, seed);
  std::vector<std::string> urls = GenUrls(n / 3 + 1, seed + 1);
  std::vector<std::string> ints =
      ToStringKeys(GenRandomInts(n - 2 * (n / 3), seed + 2));
  keys.insert(keys.end(), urls.begin(), urls.end());
  keys.insert(keys.end(), ints.begin(), ints.end());
  SortUnique(&keys);
  return keys;
}

struct DiffOptions {
  /// Validate() + full-content comparison cadence (always runs once at end).
  size_t check_every = 8192;
};

struct DiffResult {
  bool ok = true;
  size_t failed_op = static_cast<size_t>(-1);
  std::string message;

  explicit operator bool() const { return ok; }
};

/// Renders a failing sequence as one op per line for repro reports.
inline std::string OpsToString(const std::vector<DiffOp>& ops,
                               const std::vector<std::string>& keys) {
  std::ostringstream os;
  for (size_t i = 0; i < ops.size(); ++i) {
    const DiffOp& op = ops[i];
    os << "  [" << i << "] " << DiffOpName(op.kind) << " key#"
       << op.key_index % keys.size();
    if (op.kind == DiffOp::kScan) os << " len=" << op.scan_len;
    else if (op.kind != DiffOp::kErase && op.kind != DiffOp::kFind)
      os << " value=" << op.value;
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Validate() detection (not every index exposes one; HybridIndex composes
// stage validators through an adapter in the caller instead)
// ---------------------------------------------------------------------------

template <typename T, typename = void>
struct HasValidate : std::false_type {};
template <typename T>
struct HasValidate<T, std::void_t<decltype(std::declval<const T&>().Validate(
                          std::declval<std::ostream&>()))>> : std::true_type {
};

template <typename T>
bool ValidateIfAvailable(const T& t, std::ostream& os) {
  if constexpr (HasValidate<T>::value) {
    return t.Validate(os);
  } else {
    (void)t;
    (void)os;
    return true;
  }
}

// ---------------------------------------------------------------------------
// Dynamic structures (BTree / SkipList / Art / Masstree / HybridIndex):
// uniform Insert / InsertOrAssign / Lookup / Update / Erase / Scan / size API.
// ---------------------------------------------------------------------------

/// Validate() + exhaustive comparison: every oracle entry findable with the
/// right value, sizes equal, and a full ordered scan returning the oracle's
/// values in oracle order.
template <typename Index>
std::string DynamicCheckpoint(Index& index,
                              const std::map<std::string, uint64_t>& oracle) {
  std::ostringstream verr;
  if (!ValidateIfAvailable(index, verr))
    return "Validate() failed:\n" + verr.str();
  if (index.size() != oracle.size()) {
    std::ostringstream os;
    os << "size() == " << index.size() << ", oracle holds " << oracle.size();
    return os.str();
  }
  for (const auto& [k, v] : oracle) {
    uint64_t got = 0;
    if (!index.Lookup(k, &got)) return "Find misses oracle key " + k;
    if (got != v) {
      std::ostringstream os;
      os << "Find(" << k << ") == " << got << ", oracle holds " << v;
      return os.str();
    }
  }
  std::vector<uint64_t> got_vals;
  index.Scan(std::string(), oracle.size() + 1, &got_vals);
  if (got_vals.size() != oracle.size())
    return "full scan yields " + std::to_string(got_vals.size()) +
           " values, oracle holds " + std::to_string(oracle.size());
  size_t i = 0;
  for (const auto& [k, v] : oracle) {
    if (got_vals[i] != v) {
      std::ostringstream os;
      os << "full scan value [" << i << "] == " << got_vals[i]
         << ", oracle (key " << k << ") holds " << v;
      return os.str();
    }
    ++i;
  }
  return std::string();
}

template <typename Index>
DiffResult RunDynamicOps(Index& index, const std::vector<std::string>& keys,
                         const std::vector<DiffOp>& ops,
                         const DiffOptions& opt = {}) {
  DiffResult res;
  std::map<std::string, uint64_t> oracle;
  auto fail = [&](size_t i, std::string msg) {
    res.ok = false;
    res.failed_op = i;
    res.message = std::move(msg);
  };
  auto mismatch = [&](size_t i, const DiffOp& op, const std::string& k,
                      bool got, bool want) {
    std::ostringstream os;
    os << DiffOpName(op.kind) << "(" << k << ") returned " << got
       << ", oracle says " << want;
    fail(i, os.str());
  };

  for (size_t i = 0; i < ops.size() && res.ok; ++i) {
    const DiffOp& op = ops[i];
    const std::string& k = keys[op.key_index % keys.size()];
    switch (op.kind) {
      case DiffOp::kInsert: {
        bool got = index.Insert(k, op.value);
        bool want = oracle.emplace(k, op.value).second;
        if (got != want) mismatch(i, op, k, got, want);
        break;
      }
      case DiffOp::kInsertOrAssign:
        index.InsertOrAssign(k, op.value);
        oracle[k] = op.value;
        break;
      case DiffOp::kErase: {
        bool got = index.Erase(k);
        bool want = oracle.erase(k) > 0;
        if (got != want) mismatch(i, op, k, got, want);
        break;
      }
      case DiffOp::kFind: {
        uint64_t got_v = 0;
        bool got = index.Lookup(k, &got_v);
        auto it = oracle.find(k);
        bool want = it != oracle.end();
        if (got != want) {
          mismatch(i, op, k, got, want);
        } else if (got && got_v != it->second) {
          std::ostringstream os;
          os << "find(" << k << ") == " << got_v << ", oracle holds "
             << it->second;
          fail(i, os.str());
        }
        break;
      }
      case DiffOp::kUpdate: {
        bool got = index.Update(k, op.value);
        auto it = oracle.find(k);
        bool want = it != oracle.end();
        if (want) it->second = op.value;
        if (got != want) mismatch(i, op, k, got, want);
        break;
      }
      case DiffOp::kScan: {
        std::vector<uint64_t> got_vals;
        index.Scan(k, op.scan_len, &got_vals);
        std::vector<uint64_t> want_vals;
        for (auto it = oracle.lower_bound(k);
             it != oracle.end() && want_vals.size() < op.scan_len; ++it)
          want_vals.push_back(it->second);
        if (got_vals != want_vals) {
          std::ostringstream os;
          os << "scan(" << k << ", " << op.scan_len << ") yields "
             << got_vals.size() << " values, oracle says "
             << want_vals.size();
          if (got_vals.size() == want_vals.size()) os << " (values differ)";
          fail(i, os.str());
        }
        break;
      }
      default:
        break;
    }
    if (res.ok && index.size() != oracle.size()) {
      std::ostringstream os;
      os << "size() == " << index.size() << " after "
         << DiffOpName(op.kind) << ", oracle holds " << oracle.size();
      fail(i, os.str());
    }
    if (res.ok &&
        ((i + 1) % opt.check_every == 0 || i + 1 == ops.size())) {
      std::string err = DynamicCheckpoint(index, oracle);
      if (!err.empty()) fail(i, "checkpoint: " + err);
    }
  }
  return res;
}

/// Gives a HybridIndex instantiation the harness API plus a Validate()
/// composed of the two stage validators, so every automatic merge is
/// followed by a structural check of both stages at the next checkpoint.
/// Uses dependent names only — callers provide the hybrid type and config.
template <typename Hybrid>
class HybridDiffAdapter {
 public:
  template <typename Config>
  explicit HybridDiffAdapter(const Config& cfg) : index_(cfg) {}

  bool Insert(const std::string& k, uint64_t v) { return index_.Insert(k, v); }
  void InsertOrAssign(const std::string& k, uint64_t v) {
    // HybridIndex has no native upsert (the uniqueness check spans both
    // stages); Insert-else-Update is equivalent for a unique index.
    if (!index_.Insert(k, v)) index_.Update(k, v);
  }
  bool Lookup(const std::string& k, uint64_t* v) const {
    return index_.Lookup(k, v);
  }
  bool Update(const std::string& k, uint64_t v) { return index_.Update(k, v); }
  bool Erase(const std::string& k) { return index_.Erase(k); }
  size_t Scan(const std::string& k, size_t n,
              std::vector<uint64_t>* out) const {
    return index_.Scan(k, n, out);
  }
  size_t size() const { return index_.size(); }

  bool Validate(std::ostream& os) const {
    bool ok = ValidateIfAvailable(index_.dynamic_stage().tree(), os);
    if (!ValidateIfAvailable(index_.static_stage(), os)) ok = false;
    return ok;
  }

 private:
  mutable Hybrid index_;  // stage accessors are non-const
};

/// Same harness API for a ConcurrentHybridIndex instantiation, driven
/// single-threaded so results stay deterministic: background merges may run
/// between ops, but Validate() quiesces them (WaitForMergeIdle) before
/// running the index's own snapshot/epoch validator plus the static stage's
/// structural validator. Uses dependent names only, like HybridDiffAdapter.
template <typename Concurrent>
class ConcurrentHybridDiffAdapter {
 public:
  template <typename Config>
  explicit ConcurrentHybridDiffAdapter(const Config& cfg) : index_(cfg) {}

  bool Insert(const std::string& k, uint64_t v) { return index_.Insert(k, v); }
  void InsertOrAssign(const std::string& k, uint64_t v) {
    if (!index_.Insert(k, v)) index_.Update(k, v);
  }
  bool Lookup(const std::string& k, uint64_t* v) const {
    return index_.Lookup(k, v);
  }
  bool Update(const std::string& k, uint64_t v) { return index_.Update(k, v); }
  bool Erase(const std::string& k) { return index_.Erase(k); }
  size_t Scan(const std::string& k, size_t n,
              std::vector<uint64_t>* out) const {
    return index_.Scan(k, n, out);
  }
  size_t size() const { return index_.size(); }

  bool Validate(std::ostream& os) const {
    index_.WaitForMergeIdle();
    bool ok = index_.Validate(os);
    auto stat = index_.StaticStageSnapshot();
    if (stat != nullptr && !ValidateIfAvailable(*stat, os)) ok = false;
    return ok;
  }

 private:
  Concurrent index_;
};

/// Harness API over an outcome-native concurrent index (the OLC hybrid):
/// mutations return MutateOutcome, which the adapter maps back onto the
/// harness's bool idiom. Driven single-threaded there is no lock contention,
/// so a kRetry (restart budget exhausted) can only mean a protocol bug —
/// the adapter surfaces it as a divergence instead of masking it with a
/// retry loop. Validate() quiesces background merges first, then runs the
/// snapshot/epoch validator plus the static stage's structural validator.
template <typename Concurrent>
class OutcomeHybridDiffAdapter {
 public:
  template <typename Config>
  explicit OutcomeHybridDiffAdapter(const Config& cfg) : index_(cfg) {}

  bool Insert(const std::string& k, uint64_t v) {
    return index_.Insert(k, v) == MutateOutcome::kInserted;
  }
  void InsertOrAssign(const std::string& k, uint64_t v) {
    if (index_.Update(k, v) != MutateOutcome::kUpdated) index_.Insert(k, v);
  }
  bool Lookup(const std::string& k, uint64_t* v) const {
    return index_.Lookup(k, v);
  }
  bool Update(const std::string& k, uint64_t v) {
    return index_.Update(k, v) == MutateOutcome::kUpdated;
  }
  bool Erase(const std::string& k) {
    return index_.Remove(k) == MutateOutcome::kRemoved;
  }
  size_t Scan(const std::string& k, size_t n,
              std::vector<uint64_t>* out) const {
    return index_.Scan(k, n, out);
  }
  size_t size() const { return index_.size(); }

  bool Validate(std::ostream& os) const {
    index_.WaitForMergeIdle();
    bool ok = index_.Validate(os);
    auto stat = index_.StaticStageSnapshot();
    if (stat != nullptr && !ValidateIfAvailable(*stat, os)) ok = false;
    return ok;
  }

 private:
  Concurrent index_;
};

// ---------------------------------------------------------------------------
// Static merge structures (CompactBTree / CompressedBTree / CompactSkipList):
// ops are batched into sorted MergeEntry runs (erase => tombstone); reads are
// checked against the already-merged state.
// ---------------------------------------------------------------------------

template <typename StaticTree>
DiffResult RunStaticMergeOps(StaticTree& tree,
                             const std::vector<std::string>& keys,
                             const std::vector<DiffOp>& ops,
                             size_t batch_ops = 2048) {
  using Entry = typename StaticTree::Entry;
  DiffResult res;
  std::map<std::string, uint64_t> merged;  // state the tree has absorbed
  std::map<std::string, Entry> pending;    // next MergeApply batch, last wins
  auto fail = [&](size_t i, std::string msg) {
    res.ok = false;
    res.failed_op = i;
    res.message = std::move(msg);
  };

  auto flush = [&](size_t i) {
    if (pending.empty()) return;
    std::vector<Entry> updates;
    updates.reserve(pending.size());
    for (const auto& kv : pending) updates.push_back(kv.second);
    tree.MergeApply(updates);
    for (const auto& kv : pending) {
      if (kv.second.deleted) merged.erase(kv.first);
      else merged[kv.first] = kv.second.value;
    }
    pending.clear();

    std::ostringstream verr;
    if (!ValidateIfAvailable(tree, verr)) {
      fail(i, "Validate() failed after merge:\n" + verr.str());
      return;
    }
    if (tree.size() != merged.size()) {
      std::ostringstream os;
      os << "size() == " << tree.size() << " after merge, oracle holds "
         << merged.size();
      fail(i, os.str());
      return;
    }
    for (const auto& [k, v] : merged) {
      uint64_t got = 0;
      if (!tree.Lookup(k, &got) || got != v) {
        fail(i, "post-merge Find mismatch on key " + k);
        return;
      }
    }
    std::vector<uint64_t> got_vals;
    tree.Scan(std::string(), merged.size() + 1, &got_vals);
    std::vector<uint64_t> want_vals;
    for (const auto& kv : merged) want_vals.push_back(kv.second);
    if (got_vals != want_vals) fail(i, "post-merge full scan diverges");
  };

  for (size_t i = 0; i < ops.size() && res.ok; ++i) {
    const DiffOp& op = ops[i];
    const std::string& k = keys[op.key_index % keys.size()];
    switch (op.kind) {
      case DiffOp::kInsert:
      case DiffOp::kInsertOrAssign:
      case DiffOp::kUpdate:
        pending[k] = Entry{k, op.value, false};
        break;
      case DiffOp::kErase:
        pending[k] = Entry{k, 0, true};
        break;
      case DiffOp::kFind: {
        uint64_t got_v = 0;
        bool got = tree.Lookup(k, &got_v);
        auto it = merged.find(k);
        bool want = it != merged.end();
        if (got != want || (got && got_v != it->second)) {
          std::ostringstream os;
          os << "find(" << k << ") == " << got << "/" << got_v
             << ", merged oracle says " << want;
          fail(i, os.str());
        }
        break;
      }
      case DiffOp::kScan: {
        std::vector<uint64_t> got_vals;
        tree.Scan(k, op.scan_len, &got_vals);
        std::vector<uint64_t> want_vals;
        for (auto it = merged.lower_bound(k);
             it != merged.end() && want_vals.size() < op.scan_len; ++it)
          want_vals.push_back(it->second);
        if (got_vals != want_vals) {
          std::ostringstream os;
          os << "scan(" << k << ", " << op.scan_len << ") diverges from the "
             << "merged oracle";
          fail(i, os.str());
        }
        break;
      }
      default:
        break;
    }
    if (res.ok && ((i + 1) % batch_ops == 0 || i + 1 == ops.size())) flush(i);
  }
  return res;
}

// ---------------------------------------------------------------------------
// ddmin-lite sequence minimization
// ---------------------------------------------------------------------------

/// Shrinks a failing op sequence by removing chunks (halving granularity)
/// while `still_fails` keeps returning true. `max_runs` bounds the replay
/// count, so minimization cost stays proportional to sequence length.
inline std::vector<DiffOp> MinimizeOps(
    std::vector<DiffOp> ops,
    const std::function<bool(const std::vector<DiffOp>&)>& still_fails,
    size_t max_runs = 768) {
  size_t runs = 0;
  bool progress = true;
  while (progress && ops.size() > 1 && runs < max_runs) {
    progress = false;
    for (size_t chunk = std::max<size_t>(1, ops.size() / 2);
         runs < max_runs; chunk /= 2) {
      for (size_t start = 0; start < ops.size() && runs < max_runs;) {
        std::vector<DiffOp> cand;
        cand.reserve(ops.size() - chunk);
        cand.insert(cand.end(), ops.begin(), ops.begin() + start);
        if (start + chunk < ops.size())
          cand.insert(cand.end(), ops.begin() + start + chunk, ops.end());
        ++runs;
        if (!cand.empty() && still_fails(cand)) {
          ops = std::move(cand);
          progress = true;
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return ops;
}

}  // namespace check
}  // namespace met

#endif  // MET_CHECK_DIFFERENTIAL_H_
