// Synthetic key datasets used across the evaluation chapters.
//
// Real email/URL/wiki corpora from the thesis are not redistributable, so we
// generate synthetic equivalents that preserve the properties the experiments
// depend on: shared prefixes (host-reversed emails/URLs), skewed byte
// distributions, and realistic length distributions. See DESIGN.md
// ("Documented substitutions").
#ifndef MET_KEYS_KEYGEN_H_
#define MET_KEYS_KEYGEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace met {

/// Converts a uint64 to an 8-byte big-endian string whose lexicographic order
/// matches integer order (the standard trick for storing ints in tries).
std::string Uint64ToKey(uint64_t v);

/// Inverse of Uint64ToKey.
uint64_t KeyToUint64(const std::string& key);

/// `n` distinct pseudo-random 64-bit integers (deterministic in `seed`).
std::vector<uint64_t> GenRandomInts(size_t n, uint64_t seed = 7);

/// 0, 1, 2, ... n-1.
std::vector<uint64_t> GenMonoIncInts(size_t n);

/// `n` distinct host-reversed synthetic email addresses
/// (e.g. "com.gmail@john.smith42"), average length ~22-30 bytes.
std::vector<std::string> GenEmails(size_t n, uint64_t seed = 11);

/// `n` distinct host-reversed synthetic URLs with deep shared prefixes.
std::vector<std::string> GenUrls(size_t n, uint64_t seed = 13);

/// `n` distinct synthetic dictionary words with Zipfian letter patterns
/// (stand-in for the thesis's "wiki" term dataset).
std::vector<std::string> GenWords(size_t n, uint64_t seed = 17);

/// The Section 4.5 adversarial dataset: pairs of 64-char keys sharing a
/// 5-char enumerated prefix plus a 58-char random run, differing only in the
/// final byte. `n` is rounded down to an even count.
std::vector<std::string> GenWorstCaseKeys(size_t n, uint64_t seed = 19);

/// Sorts, deduplicates.
void SortUnique(std::vector<std::string>* keys);
void SortUnique(std::vector<uint64_t>* keys);

/// Converts an integer dataset to big-endian string keys.
std::vector<std::string> ToStringKeys(const std::vector<uint64_t>& ints);

}  // namespace met

#endif  // MET_KEYS_KEYGEN_H_
