#include "keys/keygen.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/random.h"

namespace met {

std::string Uint64ToKey(uint64_t v) {
  std::string key(8, '\0');
  for (int i = 0; i < 8; ++i) key[i] = static_cast<char>((v >> (56 - 8 * i)) & 0xFF);
  return key;
}

uint64_t KeyToUint64(const std::string& key) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < key.size(); ++i)
    v |= static_cast<uint64_t>(static_cast<unsigned char>(key[i])) << (56 - 8 * i);
  return v;
}

std::vector<uint64_t> GenRandomInts(size_t n, uint64_t seed) {
  // MixHash64 is a bijection on 64-bit ints, so distinct inputs yield
  // distinct pseudo-random outputs with no dedup pass needed.
  std::vector<uint64_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = MixHash64(i + seed * 0x9E3779B97F4A7C15ULL);
  return out;
}

std::vector<uint64_t> GenMonoIncInts(size_t n) {
  std::vector<uint64_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

namespace {

const char* const kDomains[] = {
    "com.gmail",   "com.yahoo",    "com.hotmail", "com.outlook", "com.aol",
    "com.icloud",  "com.mail",     "com.zoho",    "com.gmx",     "com.yandex",
    "org.acm",     "org.ieee",     "org.wikipedia", "org.apache", "org.gnu",
    "edu.cmu.cs",  "edu.mit",      "edu.stanford", "edu.berkeley", "edu.washington",
    "net.comcast", "net.verizon",  "net.att",     "co.uk.bbc",   "de.web",
    "cn.qq",       "cn.163",       "jp.docomo",   "fr.orange",   "ru.mail"};

const char* const kFirstNames[] = {
    "james", "mary",  "john",   "patricia", "robert", "jennifer", "michael",
    "linda", "david", "barbara", "william", "susan",  "richard",  "jessica",
    "joseph", "sarah", "thomas", "karen",   "chris",  "nancy",    "daniel",
    "lisa",  "paul",  "betty",  "mark",     "helen",  "donald",   "sandra",
    "george", "donna", "ken",   "carol",    "steve",  "ruth",     "ed",
    "sharon", "brian", "laura", "ron",      "emma"};

const char* const kLastNames[] = {
    "smith",  "johnson", "williams", "brown",  "jones",    "garcia",
    "miller", "davis",   "rodriguez", "martinez", "hernandez", "lopez",
    "wilson", "anderson", "thomas",  "taylor", "moore",    "jackson",
    "martin", "lee",     "thompson", "white",  "harris",   "clark",
    "lewis",  "robinson", "walker",  "young",  "allen",    "king",
    "wright", "scott",   "green",   "baker",  "adams",    "nelson",
    "hill",   "campbell", "mitchell", "zhang"};

const char* const kPathWords[] = {
    "index",  "article", "news",  "blog",   "user",   "profile", "search",
    "query",  "view",    "edit",  "item",   "product", "category", "list",
    "page",   "doc",     "api",   "static", "image",  "video",   "archive",
    "2018",   "2019",    "2020",  "tag",    "wiki",   "help",    "about"};

const char* const kSyllables[] = {"an", "ba", "con", "de",  "el",  "for", "ga",
                                  "hi", "in", "ju",  "ka",  "lo",  "ma",  "ne",
                                  "o",  "pre", "qua", "re", "sta", "ti",  "un",
                                  "ver", "wa", "ex",  "yo",  "zu",  "tra", "ment",
                                  "tion", "ly", "er",  "ing", "ous", "al"};

template <typename Gen>
std::vector<std::string> GenDistinct(size_t n, uint64_t seed, Gen gen) {
  std::vector<std::string> out;
  out.reserve(n);
  std::unordered_set<std::string> seen;
  seen.reserve(n * 2);
  Random rng(seed);
  ZipfGenerator zipf(1u << 16, 0.9, seed + 1);
  size_t attempts = 0;
  while (out.size() < n && attempts < n * 100) {
    ++attempts;
    std::string k = gen(rng, zipf);
    if (seen.insert(k).second) out.push_back(std::move(k));
  }
  return out;
}

}  // namespace

std::vector<std::string> GenEmails(size_t n, uint64_t seed) {
  return GenDistinct(n, seed, [](Random& rng, ZipfGenerator& zipf) {
    // Skewed domain popularity: a few domains dominate, as in real corpora.
    size_t d = zipf.Next() % (sizeof(kDomains) / sizeof(kDomains[0]));
    size_t f = rng.Uniform(sizeof(kFirstNames) / sizeof(kFirstNames[0]));
    size_t l = rng.Uniform(sizeof(kLastNames) / sizeof(kLastNames[0]));
    std::string k = std::string(kDomains[d]) + "@" + kFirstNames[f];
    // Append piecewise (no operator+ temporaries): gcc 12 -O3 emits a bogus
    // -Wrestrict for append-of-fresh-concatenation (PR 105651), and the met
    // library builds with -Werror.
    switch (rng.Uniform(4)) {
      case 0: k += '.'; k += kLastNames[l]; break;
      case 1: k += '_'; k += kLastNames[l]; break;
      case 2: k += kLastNames[l]; break;
      default: break;
    }
    if (rng.Uniform(2)) k += std::to_string(rng.Uniform(1000));
    return k;
  });
}

std::vector<std::string> GenUrls(size_t n, uint64_t seed) {
  return GenDistinct(n, seed, [](Random& rng, ZipfGenerator& zipf) {
    size_t d = zipf.Next() % (sizeof(kDomains) / sizeof(kDomains[0]));
    std::string k = std::string(kDomains[d]);
    size_t depth = 1 + rng.Uniform(4);
    for (size_t i = 0; i < depth; ++i) {
      size_t p = zipf.Next() % (sizeof(kPathWords) / sizeof(kPathWords[0]));
      k += '/';  // piecewise appends dodge the gcc 12 -Wrestrict false alarm
      k += kPathWords[p];
    }
    if (rng.Uniform(3) == 0) {
      k += "?id=";
      k += std::to_string(rng.Uniform(100000));
    } else {
      k += '/';
      k += std::to_string(rng.Uniform(100000));
    }
    return k;
  });
}

std::vector<std::string> GenWords(size_t n, uint64_t seed) {
  return GenDistinct(n, seed, [](Random& rng, ZipfGenerator& zipf) {
    size_t len = 2 + rng.Uniform(4);
    std::string k;
    for (size_t i = 0; i < len; ++i) {
      size_t s = zipf.Next() % (sizeof(kSyllables) / sizeof(kSyllables[0]));
      k += kSyllables[s];
    }
    return k;
  });
}

std::vector<std::string> GenWorstCaseKeys(size_t n, uint64_t seed) {
  std::vector<std::string> out;
  out.reserve(n);
  Random rng(seed);
  size_t pairs = n / 2;
  for (size_t p = 0; p < pairs; ++p) {
    // 5-char prefix enumerating lower-case combinations.
    std::string prefix(5, 'a');
    size_t v = p;
    for (int i = 4; i >= 0; --i) {
      prefix[i] = static_cast<char>('a' + v % 26);
      v /= 26;
    }
    std::string middle(58, 'a');
    for (auto& c : middle) c = static_cast<char>('a' + rng.Uniform(26));
    out.push_back(prefix + middle + "a");
    out.push_back(prefix + middle + "b");
  }
  return out;
}

void SortUnique(std::vector<std::string>* keys) {
  std::sort(keys->begin(), keys->end());
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
}

void SortUnique(std::vector<uint64_t>* keys) {
  std::sort(keys->begin(), keys->end());
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
}

std::vector<std::string> ToStringKeys(const std::vector<uint64_t>& ints) {
  std::vector<std::string> out;
  out.reserve(ints.size());
  for (uint64_t v : ints) out.push_back(Uint64ToKey(v));
  return out;
}

}  // namespace met
