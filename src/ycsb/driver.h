// Sharded multi-threaded YCSB serving driver for the concurrent hybrid
// index (thesis Section 5.3 serving experiments). Keys are hash-partitioned
// across independent index shards so writer threads contend only on their
// key's shard; every per-operation latency is split by whether any shard had
// a background merge in flight (obs::StallSplit), which is how
// bench_merge_pause attributes tail latency to merges.
#ifndef MET_YCSB_DRIVER_H_
#define MET_YCSB_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/timer.h"
#include "obs/stall.h"
#include "ycsb/workload.h"

namespace met {
namespace ycsb {

/// Hash-partitions a keyspace over `num_shards` independent index instances.
/// Point operations route to the owning shard. Scan is served from the start
/// key's shard only — with hash partitioning a global scan would have to
/// merge all shards, so scans here measure per-shard scan cost, not global
/// range queries (documented limitation; the single-shard configuration
/// still exercises the full merged-scan path).
template <typename Index, typename Key>
class ShardedIndex {
 public:
  using Value = typename Index::Value;

  template <typename Config>
  ShardedIndex(size_t num_shards, const Config& config) {
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i)
      shards_.push_back(std::make_unique<Index>(config));
  }

  size_t ShardOf(const Key& key) const {
    uint64_t h;
    if constexpr (std::is_same_v<Key, std::string>) {
      h = MurmurHash64(std::string_view(key));
    } else {
      h = MixHash64(static_cast<uint64_t>(key));
    }
    return h % shards_.size();
  }

  bool Insert(const Key& key, Value value) {
    return shards_[ShardOf(key)]->Insert(key, value);
  }
  bool Find(const Key& key, Value* value = nullptr) const {
    return shards_[ShardOf(key)]->Find(key, value);
  }
  bool Update(const Key& key, Value value) {
    return shards_[ShardOf(key)]->Update(key, value);
  }
  bool Erase(const Key& key) { return shards_[ShardOf(key)]->Erase(key); }
  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    return shards_[ShardOf(key)]->Scan(key, n, out);
  }

  bool AnyMergeInFlight() const {
    for (const auto& s : shards_)
      if (s->MergeInFlight()) return true;
    return false;
  }
  void WaitForMergeIdle() const {
    for (const auto& s : shards_) s->WaitForMergeIdle();
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& s : shards_) n += s->size();
    return n;
  }
  size_t MemoryBytes() const {
    size_t n = 0;
    for (const auto& s : shards_) n += s->MemoryBytes();
    return n;
  }

  size_t num_shards() const { return shards_.size(); }
  Index& shard(size_t i) { return *shards_[i]; }
  const Index& shard(size_t i) const { return *shards_[i]; }

 private:
  std::vector<std::unique_ptr<Index>> shards_;
};

struct YcsbRunResult {
  size_t reads = 0;
  size_t updates = 0;
  size_t inserts = 0;
  size_t scans = 0;
  size_t read_hits = 0;
  size_t scanned_values = 0;
  double seconds = 0.0;

  size_t TotalOps() const { return reads + updates + inserts + scans; }
  double Mops() const {
    return seconds > 0.0 ? TotalOps() / seconds / 1e6 : 0.0;
  }
};

/// Runs `ops_per_thread` YCSB requests on each of `num_threads` threads
/// against a sharded index preloaded with keys [0, num_keys). `key_of` maps
/// a dataset index to a Key. Each thread generates its own request stream
/// (seed offset by thread id) and remaps insert indices into a
/// thread-disjoint range above `num_keys`, so concurrent inserts never
/// collide on a key. Per-operation latencies go to `stalls` (may be null),
/// attributed to the merge phase observed when the operation started.
template <typename Index, typename Key, typename KeyFn>
YcsbRunResult RunYcsb(ShardedIndex<Index, Key>* index, const YcsbSpec& spec,
                      size_t num_keys, size_t ops_per_thread,
                      size_t num_threads, KeyFn key_of,
                      obs::StallSplit* stalls = nullptr) {
  using Value = typename Index::Value;
  std::vector<YcsbRunResult> partial(num_threads);
  auto worker = [&](size_t t) {
    YcsbSpec thread_spec = spec;
    thread_spec.seed = spec.seed + 0x9e3779b9u * (t + 1);
    std::vector<YcsbRequest> reqs =
        GenYcsbRequests(num_keys, ops_per_thread, thread_spec);
    YcsbRunResult& r = partial[t];
    std::vector<Value> scan_out;
    met::Timer run_timer;
    for (const YcsbRequest& req : reqs) {
      uint64_t idx = req.key_index;
      if (req.op == YcsbOp::kInsert)  // thread-disjoint insert keyspace
        idx = num_keys + t * ops_per_thread + (idx - num_keys);
      Key key = key_of(idx);
      bool merging = stalls != nullptr && index->AnyMergeInFlight();
      met::Timer op_timer;
      switch (req.op) {
        case YcsbOp::kRead: {
          Value v;
          if (index->Find(key, &v)) ++r.read_hits;
          ++r.reads;
          break;
        }
        case YcsbOp::kUpdate:
          if (!index->Update(key, idx + 1)) index->Insert(key, idx + 1);
          ++r.updates;
          break;
        case YcsbOp::kInsert:
          index->Insert(key, idx + 1);
          ++r.inserts;
          break;
        case YcsbOp::kScan:
          scan_out.clear();
          r.scanned_values += index->Scan(key, req.scan_length, &scan_out);
          ++r.scans;
          break;
      }
      if (stalls != nullptr) {
        bool is_read = req.op == YcsbOp::kRead || req.op == YcsbOp::kScan;
        stalls->Record(is_read, merging, op_timer.ElapsedNanos());
      }
    }
    r.seconds = run_timer.ElapsedSeconds();
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();

  YcsbRunResult total;
  for (const auto& r : partial) {
    total.reads += r.reads;
    total.updates += r.updates;
    total.inserts += r.inserts;
    total.scans += r.scans;
    total.read_hits += r.read_hits;
    total.scanned_values += r.scanned_values;
    if (r.seconds > total.seconds) total.seconds = r.seconds;  // wall clock
  }
  return total;
}

}  // namespace ycsb
}  // namespace met

#endif  // MET_YCSB_DRIVER_H_
