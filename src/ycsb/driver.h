// Sharded multi-threaded YCSB serving driver for the concurrent hybrid
// index (thesis Section 5.3 serving experiments). Keys are hash-partitioned
// across independent index shards so writer threads contend only on their
// key's shard; every per-operation latency is split by whether any shard had
// a background merge in flight (obs::StallSplit), which is how
// bench_merge_pause attributes tail latency to merges.
#ifndef MET_YCSB_DRIVER_H_
#define MET_YCSB_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/hash.h"
#include "common/index_api.h"
#include "common/timer.h"
#include "obs/stall.h"
#include "ycsb/workload.h"

namespace met {
namespace ycsb {

/// Hash-partitions a keyspace over `num_shards` independent index instances.
/// Point operations route to the owning shard. Scan is served from the start
/// key's shard only — with hash partitioning a global scan would have to
/// merge all shards, so scans here measure per-shard scan cost, not global
/// range queries (documented limitation; the single-shard configuration
/// still exercises the full merged-scan path).
template <typename Index, typename Key>
class ShardedIndex {
 public:
  using Value = typename Index::Value;

  template <typename Config>
  ShardedIndex(size_t num_shards, const Config& config) {
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i)
      shards_.push_back(std::make_unique<Index>(config));
  }

  size_t ShardOf(const Key& key) const {
    uint64_t h;
    if constexpr (std::is_same_v<Key, std::string>) {
      h = MurmurHash64(std::string_view(key));
    } else {
      h = MixHash64(static_cast<uint64_t>(key));
    }
    return h % shards_.size();
  }

  // Mutations go through the unified outcome dispatchers so a shard can be
  // either a classic bool-idiom index or an outcome-native OLC structure;
  // callers branch on MutateOutcome (kRetry only ever comes from the
  // latter).
  MutateOutcome Insert(const Key& key, Value value) {
    return IndexInsert(*shards_[ShardOf(key)], key, value);
  }
  bool Lookup(const Key& key, Value* value = nullptr) const {
    return shards_[ShardOf(key)]->Lookup(key, value);
  }
  MutateOutcome Update(const Key& key, Value value) {
    return IndexUpdate(*shards_[ShardOf(key)], key, value);
  }
  MutateOutcome Remove(const Key& key) {
    return IndexRemove<Index, Key, Value>(*shards_[ShardOf(key)], key);
  }
  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    return shards_[ShardOf(key)]->Scan(key, n, out);
  }

  /// Batched point lookups (met::batch): keys are bucketed by owning shard
  /// with a counting sort, each shard's contiguous group runs through the
  /// unified met::LookupBatch (native interleaved kernel when the index has
  /// one, scalar fallback otherwise), and results scatter back to request
  /// order. out[i] matches Lookup(keys[i]) exactly.
  void LookupBatch(const Key* keys, size_t n, LookupResult* out) const {
    const size_t ns = shards_.size();
    std::vector<uint32_t> shard_of(n);
    std::vector<uint32_t> offset(ns + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      shard_of[i] = static_cast<uint32_t>(ShardOf(keys[i]));
      ++offset[shard_of[i] + 1];
    }
    for (size_t s = 0; s < ns; ++s) offset[s + 1] += offset[s];
    std::vector<Key> grouped(n);
    std::vector<uint32_t> orig(n);
    std::vector<uint32_t> cursor(offset.begin(), offset.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      uint32_t p = cursor[shard_of[i]]++;
      grouped[p] = keys[i];
      orig[p] = static_cast<uint32_t>(i);
    }
    std::vector<LookupResult> gout(n);
    for (size_t s = 0; s < ns; ++s) {
      size_t cnt = offset[s + 1] - offset[s];
      if (cnt > 0)
        met::LookupBatch(*shards_[s], grouped.data() + offset[s], cnt,
                         gout.data() + offset[s]);
    }
    for (size_t p = 0; p < n; ++p) out[orig[p]] = gout[p];
  }

  bool AnyMergeInFlight() const {
    for (const auto& s : shards_)
      if (s->MergeInFlight()) return true;
    return false;
  }
  void WaitForMergeIdle() const {
    for (const auto& s : shards_) s->WaitForMergeIdle();
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& s : shards_) n += s->size();
    return n;
  }
  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    size_t n = 0;
    for (const auto& s : shards_) n += s->MemoryBytes();
    return n;
  }

  size_t num_shards() const { return shards_.size(); }
  Index& shard(size_t i) { return *shards_[i]; }
  const Index& shard(size_t i) const { return *shards_[i]; }

 private:
  std::vector<std::unique_ptr<Index>> shards_;
};

struct YcsbRunResult {
  size_t reads = 0;
  size_t updates = 0;
  size_t inserts = 0;
  size_t scans = 0;
  size_t read_hits = 0;
  size_t scanned_values = 0;
  double seconds = 0.0;

  size_t TotalOps() const { return reads + updates + inserts + scans; }
  double Mops() const {
    return seconds > 0.0 ? TotalOps() / seconds / 1e6 : 0.0;
  }
};

/// Runs `ops_per_thread` YCSB requests on each of `num_threads` threads
/// against a sharded index preloaded with keys [0, num_keys). `key_of` maps
/// a dataset index to a Key. Each thread generates its own request stream
/// (seed offset by thread id) and remaps insert indices into a
/// thread-disjoint range above `num_keys`, so concurrent inserts never
/// collide on a key. Per-operation latencies go to `stalls` (may be null),
/// attributed to the merge phase observed when the operation started.
///
/// `read_batch` > 1 turns on the met::batch read pipeline: consecutive kRead
/// requests accumulate (up to that many) and execute as one
/// ShardedIndex::LookupBatch. Any write or scan flushes the pending batch
/// first, so each thread still observes its own writes in order. Batched
/// reads report the amortized per-op latency to `stalls`. Requires a
/// uint64_t-valued index (the unified LookupResult type); other value types
/// silently run scalar.
template <typename Index, typename Key, typename KeyFn>
YcsbRunResult RunYcsb(ShardedIndex<Index, Key>* index, const YcsbSpec& spec,
                      size_t num_keys, size_t ops_per_thread,
                      size_t num_threads, KeyFn key_of,
                      obs::StallSplit* stalls = nullptr,
                      size_t read_batch = 1) {
  using Value = typename Index::Value;
  constexpr bool kCanBatch = std::is_same_v<Value, uint64_t>;
  std::vector<YcsbRunResult> partial(num_threads);
  auto worker = [&](size_t t) {
    YcsbSpec thread_spec = spec;
    thread_spec.seed = spec.seed + 0x9e3779b9u * (t + 1);
    std::vector<YcsbRequest> reqs =
        GenYcsbRequests(num_keys, ops_per_thread, thread_spec);
    YcsbRunResult& r = partial[t];
    std::vector<Value> scan_out;

    std::vector<Key> read_buf;
    std::vector<LookupResult> read_out;
    if (kCanBatch && read_batch > 1) {
      read_buf.reserve(read_batch);
      read_out.resize(read_batch);
    }
    auto flush_reads = [&]() {
      if constexpr (kCanBatch) {
        if (read_buf.empty()) return;
        bool merging_at_start = stalls != nullptr && index->AnyMergeInFlight();
        met::Timer batch_timer;
        index->LookupBatch(read_buf.data(), read_buf.size(), read_out.data());
        uint64_t batch_nanos = batch_timer.ElapsedNanos();
        for (size_t i = 0; i < read_buf.size(); ++i)
          if (read_out[i].found) ++r.read_hits;
        r.reads += read_buf.size();
        if (stalls != nullptr) {
          // Re-sample the merge flag at record time: a batch overlaps a
          // merge when one was in flight at its start *or* its completion
          // (a merge can start or finish mid-batch). Sampling only before
          // the batch misattributed merge-overlapped executions to the
          // idle baseline and vice versa, polluting exactly the idle-vs-
          // merge tail split this histogram exists to expose. RecordBatch
          // distributes the remainder so no nanoseconds are truncated away
          // and intra-batch samples are not byte-identical.
          bool merging = merging_at_start || index->AnyMergeInFlight();
          stalls->RecordBatch(true, merging, batch_nanos, read_buf.size());
        }
        read_buf.clear();
      }
    };

    met::Timer run_timer;
    for (const YcsbRequest& req : reqs) {
      uint64_t idx = req.key_index;
      if (req.op == YcsbOp::kInsert) {  // thread-disjoint insert keyspace
        // key_index is 64-bit end to end (workload.h); the generator hands
        // inserts indices >= num_keys, so the remap below cannot underflow
        // and the per-thread ranges [num_keys + t*ops, num_keys + (t+1)*ops)
        // stay disjoint for any run length that fits in memory.
        MET_DCHECK(idx >= num_keys);
        idx = num_keys + t * ops_per_thread + (idx - num_keys);
      }
      Key key = key_of(idx);
      if (kCanBatch && read_batch > 1) {
        if (req.op == YcsbOp::kRead) {
          read_buf.push_back(key);
          if (read_buf.size() >= read_batch) flush_reads();
          continue;
        }
        flush_reads();  // writes/scans must see all queued reads retired
      }
      bool merging = stalls != nullptr && index->AnyMergeInFlight();
      met::Timer op_timer;
      switch (req.op) {
        case YcsbOp::kRead: {
          Value v;
          if (index->Lookup(key, &v)) ++r.read_hits;
          ++r.reads;
          break;
        }
        case YcsbOp::kUpdate:
          // Upsert-on-miss, but only on a definitive miss: kRetry means an
          // exhausted restart budget with no state change, and blind-
          // inserting there would double a live key.
          if (index->Update(key, idx + 1) == MutateOutcome::kNotFound)
            index->Insert(key, idx + 1);
          ++r.updates;
          break;
        case YcsbOp::kInsert:
          index->Insert(key, idx + 1);
          ++r.inserts;
          break;
        case YcsbOp::kScan:
          scan_out.clear();
          r.scanned_values += index->Scan(key, req.scan_length, &scan_out);
          ++r.scans;
          break;
      }
      if (stalls != nullptr) {
        bool is_read = req.op == YcsbOp::kRead || req.op == YcsbOp::kScan;
        stalls->Record(is_read, merging, op_timer.ElapsedNanos());
      }
    }
    flush_reads();
    r.seconds = run_timer.ElapsedSeconds();
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();

  YcsbRunResult total;
  for (const auto& r : partial) {
    total.reads += r.reads;
    total.updates += r.updates;
    total.inserts += r.inserts;
    total.scans += r.scans;
    total.read_hits += r.read_hits;
    total.scanned_values += r.scanned_values;
    if (r.seconds > total.seconds) total.seconds = r.seconds;  // wall clock
  }
  return total;
}

}  // namespace ycsb
}  // namespace met

#endif  // MET_YCSB_DRIVER_H_
