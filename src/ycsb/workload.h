// YCSB-style workload generation (workloads A, C, E plus the insert-only
// load phase), with Zipfian or uniform key-access distributions, mirroring
// the microbenchmark setup used throughout the thesis (Sections 2.5, 3.7,
// 4.3, 5.3).
#ifndef MET_YCSB_WORKLOAD_H_
#define MET_YCSB_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "common/random.h"

namespace met {

enum class YcsbOp : uint8_t { kRead, kUpdate, kInsert, kScan };

struct YcsbRequest {
  YcsbOp op;
  // 64-bit: a 32-bit index silently wrapped once num_keys + #inserts crossed
  // 4 billion (long insert-heavy runs, or large preloaded datasets), after
  // which the driver's thread-disjoint insert remap collided thread
  // keyspaces. Pinned by YcsbWorkloadTest.InsertIndicesSurviveFourBillion.
  uint64_t key_index;  // index into the dataset's key array
  uint16_t scan_length;
};

struct YcsbSpec {
  double read_fraction = 1.0;
  double update_fraction = 0.0;
  double scan_fraction = 0.0;
  // insert fraction = remainder
  bool zipfian = true;
  uint16_t max_scan_length = 100;
  uint64_t seed = 42;

  static YcsbSpec WorkloadA() { return {0.5, 0.5, 0.0, true, 100, 42}; }
  static YcsbSpec WorkloadC() { return {1.0, 0.0, 0.0, true, 100, 42}; }
  static YcsbSpec WorkloadE() { return {0.0, 0.0, 0.95, true, 100, 42}; }
};

/// Streaming request generator: one request per Next() call, no
/// materialized request vector — the network load generator draws from this
/// at send time. Deterministic for a given (num_keys, spec).
class YcsbRequestStream {
 public:
  YcsbRequestStream(size_t num_keys, const YcsbSpec& spec)
      : spec_(spec),
        num_keys_(num_keys),
        rng_(spec.seed),
        next_insert_(num_keys) {
    MET_ASSERT(num_keys > 0);
    // The Zipf sampler's zeta-series constructor is O(num_keys); build it
    // only when the spec actually draws Zipfian keys.
    if (spec_.zipfian)
      zipf_ = std::make_unique<ZipfGenerator>(num_keys, 0.99, spec.seed + 1);
  }

  YcsbRequest Next() {
    double p = rng_.NextDouble();
    YcsbRequest r{};
    uint64_t existing =
        spec_.zipfian ? zipf_->NextScrambled() : rng_.Uniform(num_keys_);
    if (p < spec_.read_fraction) {
      r = {YcsbOp::kRead, existing, 0};
    } else if (p < spec_.read_fraction + spec_.update_fraction) {
      r = {YcsbOp::kUpdate, existing, 0};
    } else if (p <
               spec_.read_fraction + spec_.update_fraction + spec_.scan_fraction) {
      uint16_t len = static_cast<uint16_t>(1 + rng_.Uniform(spec_.max_scan_length));
      r = {YcsbOp::kScan, existing, len};
    } else {
      r = {YcsbOp::kInsert, next_insert_++, 0};
    }
    return r;
  }

  /// First dataset index the next kInsert request will use.
  uint64_t next_insert_index() const { return next_insert_; }

 private:
  YcsbSpec spec_;
  uint64_t num_keys_;
  Random rng_;
  std::unique_ptr<ZipfGenerator> zipf_;  // null when spec_.zipfian is false
  uint64_t next_insert_;
};

/// Generates `num_ops` requests over a dataset of `num_keys` keys.
/// Reads/updates/scans pick existing key indices (Zipf-skewed if configured);
/// inserts pick indices in [num_keys, num_keys + #inserts) so callers can
/// reserve extra keys for insertion.
inline std::vector<YcsbRequest> GenYcsbRequests(size_t num_keys, size_t num_ops,
                                                const YcsbSpec& spec) {
  std::vector<YcsbRequest> reqs;
  reqs.reserve(num_ops);
  YcsbRequestStream stream(num_keys, spec);
  for (size_t i = 0; i < num_ops; ++i) reqs.push_back(stream.Next());
  return reqs;
}

}  // namespace met

#endif  // MET_YCSB_WORKLOAD_H_
