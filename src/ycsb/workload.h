// YCSB-style workload generation (workloads A, C, E plus the insert-only
// load phase), with Zipfian or uniform key-access distributions, mirroring
// the microbenchmark setup used throughout the thesis (Sections 2.5, 3.7,
// 4.3, 5.3).
#ifndef MET_YCSB_WORKLOAD_H_
#define MET_YCSB_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace met {

enum class YcsbOp : uint8_t { kRead, kUpdate, kInsert, kScan };

struct YcsbRequest {
  YcsbOp op;
  uint32_t key_index;  // index into the dataset's key array
  uint16_t scan_length;
};

struct YcsbSpec {
  double read_fraction = 1.0;
  double update_fraction = 0.0;
  double scan_fraction = 0.0;
  // insert fraction = remainder
  bool zipfian = true;
  uint16_t max_scan_length = 100;
  uint64_t seed = 42;

  static YcsbSpec WorkloadA() { return {0.5, 0.5, 0.0, true, 100, 42}; }
  static YcsbSpec WorkloadC() { return {1.0, 0.0, 0.0, true, 100, 42}; }
  static YcsbSpec WorkloadE() { return {0.0, 0.0, 0.95, true, 100, 42}; }
};

/// Generates `num_ops` requests over a dataset of `num_keys` keys.
/// Reads/updates/scans pick existing key indices (Zipf-skewed if configured);
/// inserts pick indices in [num_keys, num_keys + #inserts) so callers can
/// reserve extra keys for insertion.
inline std::vector<YcsbRequest> GenYcsbRequests(size_t num_keys, size_t num_ops,
                                                const YcsbSpec& spec) {
  std::vector<YcsbRequest> reqs;
  reqs.reserve(num_ops);
  Random rng(spec.seed);
  ZipfGenerator zipf(num_keys, 0.99, spec.seed + 1);
  uint32_t next_insert = static_cast<uint32_t>(num_keys);
  for (size_t i = 0; i < num_ops; ++i) {
    double p = rng.NextDouble();
    YcsbRequest r{};
    uint32_t existing =
        spec.zipfian ? static_cast<uint32_t>(zipf.NextScrambled())
                     : static_cast<uint32_t>(rng.Uniform(num_keys));
    if (p < spec.read_fraction) {
      r = {YcsbOp::kRead, existing, 0};
    } else if (p < spec.read_fraction + spec.update_fraction) {
      r = {YcsbOp::kUpdate, existing, 0};
    } else if (p < spec.read_fraction + spec.update_fraction + spec.scan_fraction) {
      uint16_t len = static_cast<uint16_t>(1 + rng.Uniform(spec.max_scan_length));
      r = {YcsbOp::kScan, existing, len};
    } else {
      r = {YcsbOp::kInsert, next_insert++, 0};
    }
    reqs.push_back(r);
  }
  return reqs;
}

}  // namespace met

#endif  // MET_YCSB_WORKLOAD_H_
