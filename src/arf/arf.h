// Adaptive Range Filter (Alexiou, Kossmann, Larson — "ARF", VLDB'13), the
// Table 4.1 baseline. A binary tree over the 64-bit integer key space whose
// leaves record "may contain keys" bits. It is built in three steps, as in
// Section 4.3.5: (1) grow a perfect tree from the data (leaves hold 0/1
// keys), (2) train on sample range queries to learn which regions queries
// touch, (3) trim bottom-up to a space budget, preferring to merge leaves
// that training touched least.
#ifndef MET_ARF_ARF_H_
#define MET_ARF_ARF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace met {

class Arf {
 public:
  Arf() = default;
  ~Arf();

  Arf(const Arf&) = delete;
  Arf& operator=(const Arf&) = delete;

  /// Grows the perfect tree over the (sorted, unique) keys.
  void Build(const std::vector<uint64_t>& keys);

  /// Records a training range query (inclusive bounds): increments usage
  /// counters on every leaf the query overlaps.
  void Train(uint64_t lo, uint64_t hi);

  /// Shrinks the tree until the encoded size fits `budget_bits`, merging
  /// least-trained sibling leaves first.
  void TrimToBits(size_t budget_bits);

  /// Range membership test on [lo, hi]; false guarantees empty.
  bool MayContainRange(uint64_t lo, uint64_t hi) const;

  /// Encoded size: breadth-first shape bit per node + occupancy bit per leaf
  /// (the bit-sequence encoding of the original paper).
  size_t EncodedBits() const;

  size_t NumNodes() const { return num_nodes_; }
  size_t NumLeaves() const { return num_leaves_; }

  /// Peak build-time node memory (the paper's 26 GB pain point, scaled).
  size_t BuildMemoryBytes() const { return peak_nodes_ * sizeof(Node); }

 private:
  struct Node {
    Node* left = nullptr;
    Node* right = nullptr;
    bool occupied = false;   // leaves only
    uint32_t train_hits = 0; // leaves only
  };

  Node* BuildRange(const std::vector<uint64_t>& keys, size_t lo, size_t hi,
                   int depth);
  void Destroy(Node* n);
  void TrainNode(Node* n, uint64_t node_lo, uint64_t node_hi, uint64_t lo,
                 uint64_t hi);
  bool QueryNode(const Node* n, uint64_t node_lo, uint64_t node_hi,
                 uint64_t lo, uint64_t hi) const;
  void CollectCollapsible(Node* n, std::vector<Node*>* out);

  Node* root_ = nullptr;
  size_t num_nodes_ = 0;
  size_t num_leaves_ = 0;
  size_t peak_nodes_ = 0;
};

}  // namespace met

#endif  // MET_ARF_ARF_H_
