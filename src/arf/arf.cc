#include "arf/arf.h"

#include <algorithm>
#include <queue>

namespace met {

Arf::~Arf() { Destroy(root_); }

void Arf::Destroy(Node* n) {
  if (n == nullptr) return;
  Destroy(n->left);
  Destroy(n->right);
  delete n;
}

Arf::Node* Arf::BuildRange(const std::vector<uint64_t>& keys, size_t lo,
                           size_t hi, int depth) {
  Node* n = new Node();
  ++num_nodes_;
  // The "perfect" tree splits all the way to single-point leaves — the
  // source of ARF's enormous build-time memory (Table 4.1).
  if (lo == hi || depth >= 64) {
    n->occupied = hi > lo;
    ++num_leaves_;
    return n;
  }
  // Split the key-space range in half: bit (63 - depth) decides the side.
  uint64_t bit = uint64_t{1} << (63 - depth);
  // First key with the split bit set.
  size_t mid = std::lower_bound(keys.begin() + lo, keys.begin() + hi, 0ull,
                                [&](uint64_t k, uint64_t) {
                                  return (k & bit) == 0;
                                }) -
               keys.begin();
  if (mid == lo || mid == hi) {
    // All keys on one side: still split so the empty half is precise.
    Node* child = BuildRange(keys, lo, hi, depth + 1);
    Node* empty = new Node();
    ++num_nodes_;
    ++num_leaves_;
    empty->occupied = false;
    if (mid == hi) {  // keys all in left half
      n->left = child;
      n->right = empty;
    } else {
      n->left = empty;
      n->right = child;
    }
    return n;
  }
  n->left = BuildRange(keys, lo, mid, depth + 1);
  n->right = BuildRange(keys, mid, hi, depth + 1);
  return n;
}

void Arf::Build(const std::vector<uint64_t>& keys) {
  Destroy(root_);
  num_nodes_ = num_leaves_ = 0;
  root_ = BuildRange(keys, 0, keys.size(), 0);
  peak_nodes_ = num_nodes_;
}

void Arf::TrainNode(Node* n, uint64_t node_lo, uint64_t node_hi, uint64_t lo,
                    uint64_t hi) {
  if (n == nullptr || lo > node_hi || hi < node_lo) return;
  if (n->left == nullptr) {
    if (n->train_hits < ~0u) ++n->train_hits;
    return;
  }
  uint64_t mid = node_lo + (node_hi - node_lo) / 2;
  TrainNode(n->left, node_lo, mid, lo, hi);
  TrainNode(n->right, mid + 1, node_hi, lo, hi);
}

void Arf::Train(uint64_t lo, uint64_t hi) {
  TrainNode(root_, 0, ~0ull, lo, hi);
}

void Arf::CollectCollapsible(Node* n, std::vector<Node*>* out) {
  if (n == nullptr || n->left == nullptr) return;
  if (n->left->left == nullptr && n->right->left == nullptr) {
    out->push_back(n);
    return;
  }
  CollectCollapsible(n->left, out);
  CollectCollapsible(n->right, out);
}

void Arf::TrimToBits(size_t budget_bits) {
  // Repeatedly merge the collapsible pair (both children are leaves) whose
  // combined training usage is smallest — losing precision where queries
  // rarely look. A merge replaces two leaves with one: -2 nodes, -1 leaf.
  auto cost = [](Node* n) {
    // Merging an occupied with an unoccupied leaf creates false positives;
    // weight by how often training touched the unoccupied side.
    uint32_t c = 0;
    if (n->left->occupied != n->right->occupied)
      c = n->left->occupied ? n->right->train_hits : n->left->train_hits;
    return c;
  };
  auto cmp = [&](Node* a, Node* b) { return cost(a) > cost(b); };
  std::vector<Node*> heap;
  CollectCollapsible(root_, &heap);
  std::make_heap(heap.begin(), heap.end(), cmp);

  while (EncodedBits() > budget_bits && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    Node* n = heap.back();
    heap.pop_back();
    if (n->left == nullptr || n->left->left != nullptr ||
        n->right->left != nullptr)
      continue;  // stale entry
    n->occupied = n->left->occupied || n->right->occupied;
    n->train_hits = n->left->train_hits + n->right->train_hits;
    delete n->left;
    delete n->right;
    n->left = n->right = nullptr;
    num_nodes_ -= 2;
    num_leaves_ -= 1;
    // The parent may now be collapsible; rather than tracking parents,
    // periodically re-collect (amortized fine at bench scale).
    if (heap.empty() && EncodedBits() > budget_bits) {
      CollectCollapsible(root_, &heap);
      std::make_heap(heap.begin(), heap.end(), cmp);
      if (heap.empty()) break;
    }
  }
}

bool Arf::QueryNode(const Node* n, uint64_t node_lo, uint64_t node_hi,
                    uint64_t lo, uint64_t hi) const {
  if (n == nullptr || lo > node_hi || hi < node_lo) return false;
  if (n->left == nullptr) return n->occupied;
  uint64_t mid = node_lo + (node_hi - node_lo) / 2;
  return QueryNode(n->left, node_lo, mid, lo, hi) ||
         QueryNode(n->right, mid + 1, node_hi, lo, hi);
}

bool Arf::MayContainRange(uint64_t lo, uint64_t hi) const {
  return QueryNode(root_, 0, ~0ull, lo, hi);
}

size_t Arf::EncodedBits() const { return num_nodes_ + num_leaves_; }

}  // namespace met
