// Paged skip list in the spirit of the paged-deterministic skip list the
// thesis uses (Section 2.1): entries live in B+tree-like pages at the bottom
// level; each page owns a tower of forward pointers whose height is drawn
// from a deterministic (seeded) geometric distribution, so searches descend
// a skip-list index but land on packed pages.
#ifndef MET_SKIPLIST_SKIPLIST_H_
#define MET_SKIPLIST_SKIPLIST_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "btree/btree.h"  // for btree_internal::KeyHeapBytes
#include "check/fwd.h"
#include "common/assert.h"
#include "common/random.h"
#include "prof/memory_breakdown.h"

namespace met {

template <typename Key, typename Value = uint64_t, int PageSlots = 30>
class SkipList {
 private:
  struct Page;
  struct Tower;

 public:
  static constexpr int kMaxHeight = 16;

  SkipList() : rng_(0x5ca1ab1e) {
    // The head tower acts as the sentinel owner of the first page (an
    // implicit minus-infinity separator), so no tower key can become a
    // stale upper bound when smaller keys arrive later.
    head_ = NewTower(Key{}, nullptr, kMaxHeight);
  }

  ~SkipList() {
    Tower* t = head_;
    while (t != nullptr) {
      Tower* next = t->next[0];
      delete t->page;
      FreeTower(t);
      t = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  bool Insert(const Key& key, const Value& value) {
    return InsertImpl(key, value, /*overwrite=*/false);
  }

  void InsertOrAssign(const Key& key, const Value& value) {
    InsertImpl(key, value, /*overwrite=*/true);
  }

  /// Unified point lookup (met::RangeIndex surface).
  bool Lookup(const Key& key, Value* value = nullptr) const {
    const Page* page = FindPage(key);
    if (page == nullptr) return false;
    int slot = FindLower(page, key);
    if (slot >= page->count || page->keys[slot] != key) return false;
    if (value != nullptr) *value = page->values[slot];
    return true;
  }

  [[deprecated("use Lookup()")]] bool Find(const Key& key,
                                           Value* value = nullptr) const {
    return Lookup(key, value);
  }

  bool Update(const Key& key, const Value& value) {
    Page* page = const_cast<Page*>(FindPage(key));
    if (page == nullptr) return false;
    int slot = FindLower(page, key);
    if (slot >= page->count || page->keys[slot] != key) return false;
    page->values[slot] = value;
    return true;
  }

  bool Erase(const Key& key) {
    Page* page = const_cast<Page*>(FindPage(key));
    if (page == nullptr) return false;
    int slot = FindLower(page, key);
    if (slot >= page->count || page->keys[slot] != key) return false;
    for (int i = slot; i + 1 < page->count; ++i) {
      page->keys[i] = std::move(page->keys[i + 1]);
      page->values[i] = page->values[i + 1];
    }
    --page->count;
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    Tower* t = head_->next[0];
    while (t != nullptr) {
      Tower* next = t->next[0];
      delete t->page;
      FreeTower(t);
      t = next;
    }
    delete head_->page;
    head_->page = nullptr;
    for (int i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
    size_ = 0;
  }

  class Iterator {
   public:
    Iterator() = default;
    Iterator(const void* page, int slot)
        : page_(static_cast<const Page*>(page)), slot_(slot) {
      SkipEmpty();
    }

    bool Valid() const { return page_ != nullptr && slot_ < page_->count; }
    const Key& key() const { return page_->keys[slot_]; }
    const Value& value() const { return page_->values[slot_]; }

    void Next() {
      if (!Valid()) return;
      ++slot_;
      SkipEmpty();
    }

   private:
    void SkipEmpty() {
      while (page_ != nullptr && slot_ >= page_->count) {
        page_ = page_->next;
        slot_ = 0;
      }
    }

    const Page* page_ = nullptr;
    int slot_ = 0;
  };

  Iterator Begin() const { return Iterator(head_->page, 0); }

  Iterator LowerBound(const Key& key) const {
    const Page* page = FindPage(key);
    if (page == nullptr) return Iterator(head_->page, 0);
    int slot = FindLower(page, key);
    return Iterator(page, slot);
  }

  size_t Scan(const Key& key, size_t n, std::vector<Value>* out) const {
    size_t cnt = 0;
    for (Iterator it = LowerBound(key); it.Valid() && cnt < n; it.Next(), ++cnt)
      if (out != nullptr) out->push_back(it.value());
    return cnt;
  }

  size_t MemoryUse() const { return MemoryBytes(); }
  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const Tower* t = head_; t != nullptr; t = t->next[0]) {
      bytes += sizeof(Tower) + (t->height - 1) * sizeof(Tower*);
      if (t->page != nullptr) {
        bytes += sizeof(Page);
        for (int i = 0; i < t->page->count; ++i)
          bytes += btree_internal::KeyHeapBytes(t->page->keys[i]);
      }
    }
    return bytes;
  }

  /// Component attribution; TotalBytes() == MemoryBytes() (same walk).
  MemoryBreakdown Breakdown() const {
    size_t tower_bytes = 0, page_bytes = 0, key_heap = 0;
    for (const Tower* t = head_; t != nullptr; t = t->next[0]) {
      tower_bytes += sizeof(Tower) + (t->height - 1) * sizeof(Tower*);
      if (t->page != nullptr) {
        page_bytes += sizeof(Page);
        for (int i = 0; i < t->page->count; ++i)
          key_heap += btree_internal::KeyHeapBytes(t->page->keys[i]);
      }
    }
    MemoryBreakdown b("skiplist");
    b.Add("towers", tower_bytes);
    b.Add("pages", page_bytes);
    b.Add("key_heap", key_heap);
    return b;
  }

  /// Verifies tower ordering per level, level monotonicity, page-chain
  /// linkage, and counts. No-op unless MET_CHECK_ENABLED; see
  /// check/skiplist_check.h.
  bool Validate(std::ostream& os) const {
#if MET_CHECK_ENABLED
    return ValidateImpl(os);
#else
    (void)os;
    return true;
#endif
  }

  double PageOccupancy() const {
    size_t slots = 0, used = 0;
    for (const Page* p = head_->page; p != nullptr; p = p->next) {
      slots += PageSlots;
      used += p->count;
    }
    return slots == 0 ? 0.0 : static_cast<double>(used) / slots;
  }

 private:
  struct Page {
    int16_t count = 0;
    Page* next = nullptr;
    Key keys[PageSlots];
    Value values[PageSlots];
  };

  // Variable-height skip node; next[] is over-allocated to `height` entries.
  struct Tower {
    Key key;  // first key of `page` at creation time (a valid separator)
    Page* page;
    int height;
    Tower* next[1];  // actually `height` entries
  };

  Tower* NewTower(const Key& key, Page* page, int height) {
    void* mem = ::operator new(sizeof(Tower) + (height - 1) * sizeof(Tower*));
    Tower* t = new (mem) Tower{key, page, height, {nullptr}};
    for (int i = 0; i < height; ++i) t->next[i] = nullptr;
    return t;
  }

  void FreeTower(Tower* t) {
    t->~Tower();
    ::operator delete(t);
  }

  int RandomHeight() {
    int h = 1;
    // Promotion probability 1/4 approximates a fanout-4 index over pages.
    while (h < kMaxHeight && rng_.Uniform(4) == 0) ++h;
    return h;
  }

  static int FindLower(const Page* page, const Key& key) {
    return static_cast<int>(
        std::lower_bound(page->keys, page->keys + page->count, key) - page->keys);
  }

  /// The page that may contain `key`: the page of the last tower whose
  /// separator key is <= key (or the first page if key precedes everything).
  const Page* FindPage(const Key& key) const {
    const Tower* t = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (t->next[level] != nullptr && t->next[level]->key <= key)
        t = t->next[level];
    }
    return t->page;
  }

  /// Same search but records the rightmost tower visited per level.
  Tower* FindPageTrack(const Key& key, Tower* preds[kMaxHeight]) {
    Tower* t = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (t->next[level] != nullptr && t->next[level]->key <= key)
        t = t->next[level];
      preds[level] = t;
    }
    return t;
  }

  bool InsertImpl(const Key& key, const Value& value, bool overwrite) {
    Tower* preds[kMaxHeight];
    Tower* t = FindPageTrack(key, preds);
    Page* page = t->page;

    if (page == nullptr) {  // empty list: attach the first page to the head
      page = new Page();
      page->keys[0] = key;
      page->values[0] = value;
      page->count = 1;
      head_->page = page;
      ++size_;
      return true;
    }

    int slot = FindLower(page, key);
    if (slot < page->count && page->keys[slot] == key) {
      if (overwrite) page->values[slot] = value;
      return false;
    }

    if (page->count == PageSlots) {
      // Split: move the upper half into a new page with its own tower.
      Page* right = new Page();
      int mid = PageSlots / 2;
      right->count = static_cast<int16_t>(PageSlots - mid);
      for (int i = 0; i < right->count; ++i) {
        right->keys[i] = std::move(page->keys[mid + i]);
        right->values[i] = page->values[mid + i];
      }
      page->count = static_cast<int16_t>(mid);
      right->next = page->next;
      page->next = right;

      int h = RandomHeight();
      Tower* nt = NewTower(right->keys[0], right, h);
      for (int i = 0; i < h; ++i) {
        nt->next[i] = preds[i]->next[i];
        preds[i]->next[i] = nt;
      }
      Page* target = (key < right->keys[0]) ? page : right;
      int s = FindLower(target, key);
      for (int i = target->count; i > s; --i) {
        target->keys[i] = std::move(target->keys[i - 1]);
        target->values[i] = target->values[i - 1];
      }
      target->keys[s] = key;
      target->values[s] = value;
      ++target->count;
    } else {
      for (int i = page->count; i > slot; --i) {
        page->keys[i] = std::move(page->keys[i - 1]);
        page->values[i] = page->values[i - 1];
      }
      page->keys[slot] = key;
      page->values[slot] = value;
      ++page->count;
    }
    ++size_;
    return true;
  }

  bool ValidateImpl(std::ostream& os) const;  // check/skiplist_check.h
  friend struct check::TestAccess;

  Tower* head_;
  size_t size_ = 0;
  Random rng_;
};

}  // namespace met

#endif  // MET_SKIPLIST_SKIPLIST_H_
