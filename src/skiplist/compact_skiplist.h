// Compact (static) Skip List.
//
// Applying the Compaction and Structural-Reduction rules to the
// paged-deterministic skip list yields the same flattened design as the
// Compact B+tree (Figure 2.3 of the thesis shows the two converge): the
// bottom level becomes one contiguous 100%-full sorted array and the express
// levels become implicit separator arrays with computed child locations.
// We therefore instantiate the shared implementation rather than duplicating
// it; the skip-list flavor keeps a smaller "page" span, mirroring the
// original structure's shorter towers.
#ifndef MET_SKIPLIST_COMPACT_SKIPLIST_H_
#define MET_SKIPLIST_COMPACT_SKIPLIST_H_

#include "btree/compact_btree.h"

namespace met {

template <typename Key, typename Value = uint64_t>
using CompactSkipList = CompactBTree<Key, Value, 16>;

}  // namespace met

#endif  // MET_SKIPLIST_COMPACT_SKIPLIST_H_
