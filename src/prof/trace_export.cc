#include "prof/trace_export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/obs.h"

namespace met::prof {

void ChromeTraceJson(std::string* out) {
  auto spans = obs::TraceLog::Global().Snapshot();
  out->append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  char buf[160];
  for (const auto& s : spans) {
    if (s.name == nullptr) continue;
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"name\":\"");
    obs::MetricsRegistry::AppendJsonEscaped(out, s.name);
    // trace_event timestamps are microseconds (doubles); sub-microsecond
    // durations keep their fraction.
    double ts_us = static_cast<double>(s.start_nanos) / 1e3;
    double dur_us = static_cast<double>(s.duration_nanos) / 1e3;
    if (s.duration_nanos == 0) {
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,"
                    "\"tid\":%u}",
                    ts_us, s.tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                    "\"tid\":%u}",
                    ts_us, dur_us, s.tid);
    }
    out->append(buf);
  }
  out->append("]}\n");
}

bool WriteChromeTrace(const std::string& path) {
  std::string json;
  ChromeTraceJson(&json);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "prof: cannot write trace to %s\n", path.c_str());
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

const std::string& TraceOutPath() {
  static const std::string path = [] {
    const char* v = std::getenv("MET_TRACE_OUT");
    return std::string(v == nullptr ? "" : v);
  }();
  return path;
}

void InstallTraceExporter() {
#if !defined(MET_OBS_DISABLED)
  static std::once_flag once;
  std::call_once(once, [] {
    if (TraceOutPath().empty()) return;
    size_t cap = 1u << 16;
    if (const char* c = std::getenv("MET_TRACE_CAP"); c != nullptr) {
      long v = std::atol(c);
      if (v > 0) cap = static_cast<size_t>(v);
    }
    obs::TraceLog::Global().SetCapacity(cap);
    std::atexit([] { WriteChromeTrace(TraceOutPath()); });
  });
#endif
}

}  // namespace met::prof
