// met.mem.* gauges: process RSS/VM sampled from /proc/self/statm, live heap
// bytes from the met::prof heap hook (when linked), and the logical index
// bytes the currently-benched structures report. Comparing the three shows
// how much of the process footprint the indexes account for versus
// allocator overhead and everything else.
//
// RSS sampling registers an obs collector, so every metrics dump (text,
// JSON, met.bench.v1) refreshes the gauges without any hot-path cost.
#ifndef MET_PROF_MEM_STATS_H_
#define MET_PROF_MEM_STATS_H_

#include <cstddef>
#include <cstdint>

namespace met::prof {

struct ProcMemInfo {
  uint64_t vm_bytes = 0;   // virtual size
  uint64_t rss_bytes = 0;  // resident set
  bool valid = false;      // /proc/self/statm readable
};

/// One read of /proc/self/statm (invalid on non-Linux or failure).
ProcMemInfo ReadProcMem();

/// Updates the met.mem.rss_bytes / met.mem.vm_bytes / met.mem.heap_live_bytes
/// gauges from the current process state. Returns what it sampled.
ProcMemInfo SampleMemGauges();

/// Registers the obs collector that calls SampleMemGauges() on every dump.
/// Idempotent; called from bench_util.h so all benches report met.mem.*.
void InstallMemCollector();

/// Sets the met.mem.logical_index_bytes gauge: the byte total the structures
/// under test attribute to themselves (MemoryBreakdown totals). Benches call
/// this after builds so RSS can be compared against logical bytes.
void SetLogicalIndexBytes(size_t bytes);

/// Adds to the logical-bytes gauge (multi-structure benches accumulate).
void AddLogicalIndexBytes(int64_t delta);

}  // namespace met::prof

#endif  // MET_PROF_MEM_STATS_H_
