// met::prof hardware-counter profiling over perf_event_open(2).
//
// PerfCounterSet opens one event group — cycles, instructions, LLC misses,
// dTLB load misses, branch mispredicts — restricted to this process, and
// reads all five with a single read(2). PerfScope is the RAII wrapper:
// construct to start, Stop()/destruct to capture the delta.
//
// Degradation is first-class, not an error path: containers and locked-down
// CI runners reject the syscall (EACCES under perf_event_paranoid >= 3,
// ENOSYS under seccomp), and individual events can be unavailable on a
// given machine (no LLC event under some hypervisors). available() reports
// what actually opened; readings carry a per-event valid mask; everything
// still runs and reports zeros when nothing opened. The fallback test in
// tests/prof_test.cc runs with counters forcibly unavailable.
#ifndef MET_PROF_PERF_COUNTERS_H_
#define MET_PROF_PERF_COUNTERS_H_

#include <cstddef>
#include <cstdint>

namespace met::prof {

/// Delta of the five tracked events over a measured region. `valid` bits
/// (kCycles..kBranchMisses order) say which events were actually counted.
struct PerfReading {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t dtlb_misses = 0;
  uint64_t branch_misses = 0;
  uint32_t valid = 0;

  enum Event : uint32_t {
    kCycles = 1u << 0,
    kInstructions = 1u << 1,
    kLlcMisses = 1u << 2,
    kDtlbMisses = 1u << 3,
    kBranchMisses = 1u << 4,
  };

  bool has(Event e) const { return (valid & e) != 0; }
  bool any() const { return valid != 0; }

  PerfReading& operator-=(const PerfReading& o) {
    cycles -= o.cycles;
    instructions -= o.instructions;
    llc_misses -= o.llc_misses;
    dtlb_misses -= o.dtlb_misses;
    branch_misses -= o.branch_misses;
    return *this;
  }
};

/// An opened perf event group (or the graceful no-op when unavailable).
/// Not thread-safe; counts the calling process on any CPU.
class PerfCounterSet {
 public:
  PerfCounterSet();
  ~PerfCounterSet();

  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  /// True when at least one event opened.
  bool available() const { return num_open_ > 0; }

  void Enable();
  void Disable();
  void Reset();

  /// Current cumulative counts (zeros with valid == 0 when unavailable).
  PerfReading Read() const;

  /// Process-wide kill switch for tests and noisy environments: when the
  /// MET_NO_PERF environment variable is set, every PerfCounterSet behaves
  /// as if perf_event_open failed.
  static bool Disabled();

 private:
  static constexpr int kNumEvents = 5;
  int fds_[kNumEvents];
  uint64_t ids_[kNumEvents];
  int group_fd_ = -1;
  int num_open_ = 0;
};

/// RAII measurement: counters run from construction until Stop() (or
/// destruction). Use one scope per measured region; reuse the underlying
/// set via the two-arg form to amortize the open cost across regions.
class PerfScope {
 public:
  /// Owns a private PerfCounterSet.
  PerfScope();

  /// Borrows `set` (must outlive the scope); resets and enables it.
  explicit PerfScope(PerfCounterSet* set);

  ~PerfScope();

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  /// Stops counting and returns the delta since construction. Idempotent:
  /// later calls return the same reading.
  const PerfReading& Stop();

  bool available() const { return set_->available(); }

 private:
  PerfCounterSet owned_;
  PerfCounterSet* set_;
  PerfReading reading_;
  bool stopped_ = false;
};

}  // namespace met::prof

#endif  // MET_PROF_PERF_COUNTERS_H_
