// met::prof allocation tracking: the ground truth that MemoryBreakdown
// totals are cross-checked against.
//
// Two levels:
//
//   * TrackingAllocator<T> — a std-compatible allocator charging every
//     allocate/deallocate to an AllocStats instance. For targeted
//     accounting of individual containers in tests.
//
//   * Process heap counters — live/peak/total bytes across *all* operator
//     new/delete traffic. The counters live in libmet (heap_stats.cc) and
//     are always readable, but only move when the optional `met_heap_hook`
//     object library (prof/heap_hook.cc, which replaces the global operator
//     new/delete) is linked into the binary. HeapHookActive() reports
//     whether the hook is present. HeapScope snapshots live bytes around a
//     build so tests can compare "bytes the structure claims" against
//     "bytes the heap actually grew".
#ifndef MET_PROF_TRACKING_ALLOC_H_
#define MET_PROF_TRACKING_ALLOC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace met::prof {

/// Byte/call counters shared by one or more TrackingAllocator instances.
/// All updates are relaxed atomics; safe to share across threads.
struct AllocStats {
  std::atomic<int64_t> live_bytes{0};
  std::atomic<uint64_t> total_bytes{0};
  std::atomic<uint64_t> allocs{0};
  std::atomic<uint64_t> frees{0};
  std::atomic<int64_t> peak_bytes{0};

  void OnAlloc(size_t bytes) {
    int64_t live =
        live_bytes.fetch_add(static_cast<int64_t>(bytes),
                             std::memory_order_relaxed) +
        static_cast<int64_t>(bytes);
    total_bytes.fetch_add(bytes, std::memory_order_relaxed);
    allocs.fetch_add(1, std::memory_order_relaxed);
    int64_t peak = peak_bytes.load(std::memory_order_relaxed);
    while (live > peak &&
           !peak_bytes.compare_exchange_weak(peak, live,
                                             std::memory_order_relaxed)) {
    }
  }

  void OnFree(size_t bytes) {
    live_bytes.fetch_sub(static_cast<int64_t>(bytes),
                         std::memory_order_relaxed);
    frees.fetch_add(1, std::memory_order_relaxed);
  }

  void Reset() {
    live_bytes.store(0, std::memory_order_relaxed);
    total_bytes.store(0, std::memory_order_relaxed);
    allocs.store(0, std::memory_order_relaxed);
    frees.store(0, std::memory_order_relaxed);
    peak_bytes.store(0, std::memory_order_relaxed);
  }
};

/// std-allocator adapter over AllocStats. The stats object must outlive
/// every container using the allocator.
template <typename T>
class TrackingAllocator {
 public:
  using value_type = T;

  explicit TrackingAllocator(AllocStats* stats) : stats_(stats) {}

  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>& other)  // NOLINT(runtime/explicit)
      : stats_(other.stats()) {}

  T* allocate(size_t n) {
    size_t bytes = n * sizeof(T);
    stats_->OnAlloc(bytes);
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, size_t n) {
    stats_->OnFree(n * sizeof(T));
    ::operator delete(p);
  }

  AllocStats* stats() const { return stats_; }

  friend bool operator==(const TrackingAllocator& a,
                         const TrackingAllocator& b) {
    return a.stats_ == b.stats_;
  }

 private:
  AllocStats* stats_;
};

// ---- process-wide heap counters (fed by prof/heap_hook.cc when linked) ----

/// Heap bytes currently live (allocated minus freed through operator
/// new/delete). Zero when the hook is not linked.
int64_t HeapLiveBytes();

/// Cumulative bytes ever allocated through operator new. Zero without hook.
uint64_t HeapTotalBytes();

/// Number of operator-new calls observed. Zero without hook.
uint64_t HeapAllocCalls();

/// True when the met_heap_hook object library replaced operator new/delete
/// in this binary.
bool HeapHookActive();

/// RAII delta of live heap bytes: construct before building a structure,
/// call LiveDelta() after — the result is how much the heap actually grew.
/// Meaningful only when HeapHookActive().
class HeapScope {
 public:
  HeapScope() : start_live_(HeapLiveBytes()) {}

  int64_t LiveDelta() const { return HeapLiveBytes() - start_live_; }

 private:
  int64_t start_live_;
};

namespace internal {
// Defined in heap_stats.cc (always in libmet); heap_hook.cc updates them.
extern AllocStats g_heap_stats;
extern std::atomic<bool> g_heap_hook_active;
}  // namespace internal

}  // namespace met::prof

#endif  // MET_PROF_TRACKING_ALLOC_H_
