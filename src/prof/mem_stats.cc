#include "prof/mem_stats.h"

#include <cstdio>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/obs.h"
#include "prof/tracking_alloc.h"

namespace met::prof {

ProcMemInfo ReadProcMem() {
  ProcMemInfo info;
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return info;
  unsigned long long vm_pages = 0, rss_pages = 0;
  int n = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (n != 2) return info;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  info.vm_bytes = vm_pages * static_cast<uint64_t>(page);
  info.rss_bytes = rss_pages * static_cast<uint64_t>(page);
  info.valid = true;
#endif
  return info;
}

ProcMemInfo SampleMemGauges() {
  ProcMemInfo info = ReadProcMem();
#if !defined(MET_OBS_DISABLED)
  auto& reg = obs::MetricsRegistry::Global();
  if (info.valid) {
    reg.GetGauge("met.mem.rss_bytes")->Set(static_cast<int64_t>(info.rss_bytes));
    reg.GetGauge("met.mem.vm_bytes")->Set(static_cast<int64_t>(info.vm_bytes));
  }
  if (HeapHookActive())
    reg.GetGauge("met.mem.heap_live_bytes")->Set(HeapLiveBytes());
#endif
  return info;
}

void InstallMemCollector() {
#if !defined(MET_OBS_DISABLED)
  static std::once_flag once;
  std::call_once(once, [] {
    obs::MetricsRegistry::Global().AddCollector([] { SampleMemGauges(); });
  });
#endif
}

void SetLogicalIndexBytes(size_t bytes) {
  obs::MetricsRegistry::Global()
      .GetGauge("met.mem.logical_index_bytes")
      ->Set(static_cast<int64_t>(bytes));
}

void AddLogicalIndexBytes(int64_t delta) {
  obs::MetricsRegistry::Global()
      .GetGauge("met.mem.logical_index_bytes")
      ->Add(delta);
}

}  // namespace met::prof
