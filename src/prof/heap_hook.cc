// Global operator new/delete replacement feeding the met::prof process-heap
// counters (tracking_alloc.h). Compiled to an empty TU unless
// MET_PROF_HEAP_HOOK is defined — only the `met_heap_hook` OBJECT library
// sets it, so binaries opt in by linking that target and everything else
// keeps the default allocator path untouched.
//
// Accounting uses malloc_usable_size so allocate and free charge the same
// (actual) block size without a size header; ASan/TSan intercept both
// malloc and malloc_usable_size, so the hook stays sanitizer-clean.
#ifdef MET_PROF_HEAP_HOOK

#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <malloc.h>
#define MET_PROF_USABLE_SIZE(p) malloc_usable_size(p)
#else
#define MET_PROF_USABLE_SIZE(p) 0
#endif

#include "prof/tracking_alloc.h"

namespace {

struct HookMarker {
  HookMarker() {
    met::prof::internal::g_heap_hook_active.store(true,
                                                 std::memory_order_relaxed);
  }
};
HookMarker g_hook_marker;

void* AllocOrThrow(size_t size, size_t align) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = align <= alignof(std::max_align_t)
                  ? std::malloc(size)
                  : std::aligned_alloc(align, (size + align - 1) / align * align);
    if (p != nullptr) {
      size_t usable = MET_PROF_USABLE_SIZE(p);
      met::prof::internal::g_heap_stats.OnAlloc(usable != 0 ? usable : size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* AllocNoThrow(size_t size, size_t align) noexcept {
  try {
    return AllocOrThrow(size, align);
  } catch (...) {
    return nullptr;
  }
}

void Release(void* p) noexcept {
  if (p == nullptr) return;
  size_t usable = MET_PROF_USABLE_SIZE(p);
  met::prof::internal::g_heap_stats.OnFree(usable);
  std::free(p);
}

}  // namespace

void* operator new(size_t size) { return AllocOrThrow(size, 0); }
void* operator new[](size_t size) { return AllocOrThrow(size, 0); }
void* operator new(size_t size, std::align_val_t align) {
  return AllocOrThrow(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return AllocOrThrow(size, static_cast<size_t>(align));
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return AllocNoThrow(size, 0);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return AllocNoThrow(size, 0);
}
void* operator new(size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return AllocNoThrow(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return AllocNoThrow(size, static_cast<size_t>(align));
}

void operator delete(void* p) noexcept { Release(p); }
void operator delete[](void* p) noexcept { Release(p); }
void operator delete(void* p, size_t) noexcept { Release(p); }
void operator delete[](void* p, size_t) noexcept { Release(p); }
void operator delete(void* p, std::align_val_t) noexcept { Release(p); }
void operator delete[](void* p, std::align_val_t) noexcept { Release(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept { Release(p); }
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  Release(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { Release(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { Release(p); }

#endif  // MET_PROF_HEAP_HOOK
