// Process-heap counter storage for met::prof (see tracking_alloc.h).
// Always part of libmet so readers link everywhere; the counters only move
// when prof/heap_hook.cc (the met_heap_hook object library) is also linked.
#include "prof/tracking_alloc.h"

namespace met::prof {
namespace internal {

AllocStats g_heap_stats;
std::atomic<bool> g_heap_hook_active{false};

}  // namespace internal

int64_t HeapLiveBytes() {
  return internal::g_heap_stats.live_bytes.load(std::memory_order_relaxed);
}

uint64_t HeapTotalBytes() {
  return internal::g_heap_stats.total_bytes.load(std::memory_order_relaxed);
}

uint64_t HeapAllocCalls() {
  return internal::g_heap_stats.allocs.load(std::memory_order_relaxed);
}

bool HeapHookActive() {
  return internal::g_heap_hook_active.load(std::memory_order_relaxed);
}

}  // namespace met::prof
