// Umbrella header for met::prof — memory attribution, heap/RSS gauges,
// hardware performance counters, and Chrome-trace export layered on
// met::obs.
//
// Including this header from a binary's TU also arms the MET_TRACE_OUT
// exporter (see trace_export.h); bench_util.h includes it so every bench
// binary supports trace export with no per-bench code.
#ifndef MET_PROF_PROF_H_
#define MET_PROF_PROF_H_

#include "prof/mem_stats.h"         // IWYU pragma: export
#include "prof/memory_breakdown.h"  // IWYU pragma: export
#include "prof/perf_counters.h"     // IWYU pragma: export
#include "prof/trace_export.h"      // IWYU pragma: export
#include "prof/tracking_alloc.h"    // IWYU pragma: export

#endif  // MET_PROF_PROF_H_
