// met::prof memory attribution: a named tree of byte counts.
//
// Every structure answers "where do my bytes live?" with a MemoryBreakdown —
// a component tree (LOUDS bitvectors vs rank LUTs vs suffix arrays vs node
// headers, nested arbitrarily deep) whose TotalBytes() equals the
// structure's flat MemoryBytes() exactly (asserted per structure in
// tests/prof_test.cc). The shape follows SDSL's write_structure space trees:
// inner nodes may carry self_bytes for storage not attributed to any child.
//
// Conventions:
//   * Component names are lowercase dotted-path-safe tokens ("rank_lut",
//     "leaf_nodes"); Flatten() joins them with '.' into metric-style paths.
//   * Breakdown() is a cold-path accessor (it allocates); callers cache the
//     result, never sample it per operation.
#ifndef MET_PROF_MEMORY_BREAKDOWN_H_
#define MET_PROF_MEMORY_BREAKDOWN_H_

#include <cstddef>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace met {

class MemoryBreakdown {
 public:
  MemoryBreakdown() = default;
  explicit MemoryBreakdown(std::string name, size_t self_bytes = 0)
      : name_(std::move(name)), self_bytes_(self_bytes) {}

  const std::string& name() const { return name_; }
  size_t self_bytes() const { return self_bytes_; }
  const std::vector<MemoryBreakdown>& children() const { return children_; }

  void set_name(std::string name) { name_ = std::move(name); }
  void set_self_bytes(size_t bytes) { self_bytes_ = bytes; }
  void add_self_bytes(size_t bytes) { self_bytes_ += bytes; }

  /// Appends a leaf component. Returns a reference for optional nesting.
  MemoryBreakdown& Add(std::string name, size_t bytes = 0) {
    children_.emplace_back(std::move(name), bytes);
    return children_.back();
  }

  /// Appends an already-built subtree (a member structure's own breakdown,
  /// re-rooted under `name`).
  MemoryBreakdown& AddChild(std::string name, MemoryBreakdown child) {
    child.name_ = std::move(name);
    children_.push_back(std::move(child));
    return children_.back();
  }

  /// Self bytes plus all descendants.
  size_t TotalBytes() const {
    size_t total = self_bytes_;
    for (const auto& c : children_) total += c.TotalBytes();
    return total;
  }

  /// Child by name (one level); nullptr when absent.
  const MemoryBreakdown* Find(std::string_view name) const {
    for (const auto& c : children_)
      if (c.name_ == name) return &c;
    return nullptr;
  }

  /// Depth-first (path, bytes) pairs, parents before children. Parent rows
  /// report TotalBytes of their subtree, so "fst" and "fst.values" can both
  /// be charted without double counting inside one level.
  std::vector<std::pair<std::string, size_t>> Flatten() const {
    std::vector<std::pair<std::string, size_t>> out;
    FlattenInto(name_, &out);
    return out;
  }

  /// Human-readable indented tree with percent-of-total per component.
  std::string ToString() const {
    std::string out;
    double total = static_cast<double>(TotalBytes());
    AppendText(&out, 0, total <= 0 ? 1.0 : total);
    return out;
  }

  /// Appends {"name":...,"bytes":total,"self_bytes":...,"children":[...]}.
  void AppendJson(std::string* out) const {
    out->append("{\"name\":\"");
    AppendEscaped(out, name_);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\",\"bytes\":%zu,\"self_bytes\":%zu,",
                  TotalBytes(), self_bytes_);
    out->append(buf);
    out->append("\"children\":[");
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i != 0) out->push_back(',');
      children_[i].AppendJson(out);
    }
    out->append("]}");
  }

 private:
  static void AppendEscaped(std::string* out, const std::string& s) {
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out->push_back('\\');
      out->push_back(ch);
    }
  }

  void FlattenInto(const std::string& prefix,
                   std::vector<std::pair<std::string, size_t>>* out) const {
    out->emplace_back(prefix.empty() ? name_ : prefix, TotalBytes());
    for (const auto& c : children_) {
      std::string path = prefix.empty() ? c.name_ : prefix + "." + c.name_;
      c.FlattenInto(path, out);
    }
  }

  void AppendText(std::string* out, int depth, double total) const {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%*s%-*s %12zu B  %5.1f%%\n", depth * 2,
                  "", 28 - depth * 2, name_.c_str(), TotalBytes(),
                  100.0 * static_cast<double>(TotalBytes()) / total);
    out->append(buf);
    for (const auto& c : children_) c.AppendText(out, depth + 1, total);
  }

  std::string name_;
  size_t self_bytes_ = 0;
  std::vector<MemoryBreakdown> children_;
};

}  // namespace met

#endif  // MET_PROF_MEMORY_BREAKDOWN_H_
