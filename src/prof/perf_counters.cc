#include "prof/perf_counters.h"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace met::prof {

#if defined(__linux__)

namespace {

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

// Order matches the PerfReading::Event bits and the PerfReading fields.
constexpr EventSpec kEvents[5] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

int PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                  unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

}  // namespace

bool PerfCounterSet::Disabled() {
  static const bool disabled = [] {
    const char* v = std::getenv("MET_NO_PERF");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return disabled;
}

PerfCounterSet::PerfCounterSet() {
  for (int i = 0; i < kNumEvents; ++i) {
    fds_[i] = -1;
    ids_[i] = 0;
  }
  if (Disabled()) return;
  for (int i = 0; i < kNumEvents; ++i) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = kEvents[i].type;
    attr.config = kEvents[i].config;
    attr.disabled = (group_fd_ == -1) ? 1 : 0;  // group leader starts stopped
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
    int fd = PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, group_fd_,
                           PERF_FLAG_FD_CLOEXEC);
    if (fd < 0) continue;  // event not supported here; keep the rest
    fds_[i] = fd;
    if (group_fd_ == -1) group_fd_ = fd;
    if (ioctl(fd, PERF_EVENT_IOC_ID, &ids_[i]) != 0) ids_[i] = 0;
    ++num_open_;
  }
  if (group_fd_ != -1) {
    ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
}

PerfCounterSet::~PerfCounterSet() {
  for (int i = 0; i < kNumEvents; ++i)
    if (fds_[i] >= 0) close(fds_[i]);
}

void PerfCounterSet::Enable() {
  if (group_fd_ != -1)
    ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfCounterSet::Disable() {
  if (group_fd_ != -1)
    ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

void PerfCounterSet::Reset() {
  if (group_fd_ != -1)
    ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
}

PerfReading PerfCounterSet::Read() const {
  PerfReading r;
  if (group_fd_ == -1) return r;

  // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout:
  //   u64 nr; { u64 value; u64 id; } cnt[nr];
  uint64_t buf[1 + 2 * kNumEvents];
  ssize_t want = static_cast<ssize_t>(sizeof(uint64_t) * (1 + 2 * num_open_));
  ssize_t got = read(group_fd_, buf, sizeof(buf));
  if (got < want) return r;

  uint64_t nr = buf[0];
  for (uint64_t c = 0; c < nr && c < static_cast<uint64_t>(kNumEvents); ++c) {
    uint64_t value = buf[1 + 2 * c];
    uint64_t id = buf[2 + 2 * c];
    for (int i = 0; i < kNumEvents; ++i) {
      if (fds_[i] < 0 || ids_[i] != id) continue;
      switch (i) {
        case 0: r.cycles = value; r.valid |= PerfReading::kCycles; break;
        case 1:
          r.instructions = value;
          r.valid |= PerfReading::kInstructions;
          break;
        case 2: r.llc_misses = value; r.valid |= PerfReading::kLlcMisses; break;
        case 3:
          r.dtlb_misses = value;
          r.valid |= PerfReading::kDtlbMisses;
          break;
        case 4:
          r.branch_misses = value;
          r.valid |= PerfReading::kBranchMisses;
          break;
      }
      break;
    }
  }
  return r;
}

#else  // !__linux__

bool PerfCounterSet::Disabled() { return true; }

PerfCounterSet::PerfCounterSet() {
  for (int i = 0; i < kNumEvents; ++i) {
    fds_[i] = -1;
    ids_[i] = 0;
  }
}

PerfCounterSet::~PerfCounterSet() = default;
void PerfCounterSet::Enable() {}
void PerfCounterSet::Disable() {}
void PerfCounterSet::Reset() {}
PerfReading PerfCounterSet::Read() const { return {}; }

#endif  // __linux__

PerfScope::PerfScope() : set_(&owned_) {
  set_->Reset();
  set_->Enable();
}

PerfScope::PerfScope(PerfCounterSet* set) : set_(set) {
  set_->Reset();
  set_->Enable();
}

PerfScope::~PerfScope() { Stop(); }

const PerfReading& PerfScope::Stop() {
  if (!stopped_) {
    set_->Disable();
    reading_ = set_->Read();
    stopped_ = true;
  }
  return reading_;
}

}  // namespace met::prof
