// Chrome/Perfetto trace-event export for the met::obs span ring.
//
// WriteChromeTrace() renders TraceLog::Global()'s retained spans as a
// trace_event JSON document ("X" complete events, microsecond timestamps,
// one track per met thread id) that loads directly in ui.perfetto.dev or
// chrome://tracing. Zero-duration TraceEvent() marks become instant ("i")
// events.
//
// Automatic mode: setting MET_TRACE_OUT=<path> makes any binary that links
// libmet and includes prof/prof.h (every bench via bench_util.h) grow the
// trace ring at startup and dump the trace at exit — no code changes in the
// instrumented binary.
#ifndef MET_PROF_TRACE_EXPORT_H_
#define MET_PROF_TRACE_EXPORT_H_

#include <string>

namespace met::prof {

/// Renders the global TraceLog as trace_event JSON into `*out`.
void ChromeTraceJson(std::string* out);

/// Writes ChromeTraceJson() to `path`. Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path);

/// Path from MET_TRACE_OUT, or empty when unset. Cached after first call.
const std::string& TraceOutPath();

/// When MET_TRACE_OUT is set: grows the span ring (so long runs keep every
/// span; capacity override via MET_TRACE_CAP) and installs an atexit hook
/// writing the trace. Idempotent. Called from prof.h static init.
void InstallTraceExporter();

namespace internal {
struct TraceExportInstaller {
  TraceExportInstaller() { InstallTraceExporter(); }
};
// One per program: any TU including this header arms the exporter.
inline TraceExportInstaller g_trace_export_installer;
}  // namespace internal

}  // namespace met::prof

#endif  // MET_PROF_TRACE_EXPORT_H_
