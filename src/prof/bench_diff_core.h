// Comparison engine for met.bench.v1 JSON reports (tools/bench_diff).
//
// Rows are identified by (section title, concatenation of the row's string
// fields) — e.g. ("Figure 2.5", "structure=FST|variant=fast-rank|ds=email").
// Numeric fields of matching rows are compared with a relative-change noise
// threshold. Whether a change is a regression depends on the metric's
// direction, inferred from its name: throughput-ish names (mops, qps,
// speedup) are higher-better; time/space/miss names (ns, bytes, *_miss, ...)
// are lower-better. Metrics whose direction cannot be inferred are reported
// as informational only.
//
// Header-only so prof_test can unit-test the diff logic without spawning the
// tool binary.
#ifndef MET_PROF_BENCH_DIFF_CORE_H_
#define MET_PROF_BENCH_DIFF_CORE_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "prof/json_min.h"

namespace met::prof {

enum class MetricDirection { kHigherBetter, kLowerBetter, kUnknown };

/// Infers better-direction from a metric key name.
inline MetricDirection InferDirection(std::string_view key) {
  auto contains = [&](std::string_view needle) {
    return key.find(needle) != std::string_view::npos;
  };
  auto ends_with = [&](std::string_view suffix) {
    return key.size() >= suffix.size() &&
           key.substr(key.size() - suffix.size()) == suffix;
  };
  // Higher is better: throughput and speedup ratios.
  if (contains("mops") || contains("qps") || contains("speedup") ||
      contains("throughput") || contains("hit_rate") || contains("ipc"))
    return MetricDirection::kHigherBetter;
  // Lower is better: latency, space, and hardware-event costs.
  if (ends_with("_ns") || ends_with("_us") || ends_with("_ms") ||
      contains("ns_per") || contains("latency") || contains("bytes") ||
      contains("miss") || contains("cycles") || contains("fpr") ||
      contains("pause") || contains("stall"))
    return MetricDirection::kLowerBetter;
  return MetricDirection::kUnknown;
}

struct BenchRow {
  std::string section;
  std::string id;  // string fields joined as k=v|k=v
  std::map<std::string, double> metrics;
};

/// Flattens a met.bench.v1 document into rows. Returns false (with *error)
/// when the text is not parseable or not a bench report.
inline bool LoadBenchRows(std::string_view json_text,
                          std::vector<BenchRow>* out, std::string* error) {
  JsonValue doc;
  if (!JsonParser::Parse(json_text, &doc, error)) return false;
  if (doc.GetString("schema") != "met.bench.v1") {
    if (error != nullptr) *error = "not a met.bench.v1 document";
    return false;
  }
  const JsonValue* sections = doc.Get("sections");
  if (sections == nullptr || !sections->is_array()) {
    if (error != nullptr) *error = "missing sections array";
    return false;
  }
  for (const auto& sec : sections->array()) {
    std::string title = sec.GetString("title", "(default)");
    const JsonValue* rows = sec.Get("rows");
    if (rows == nullptr || !rows->is_array()) continue;
    for (const auto& row : rows->array()) {
      if (!row.is_object()) continue;
      BenchRow br;
      br.section = title;
      for (const auto& [key, value] : row.object()) {
        if (value.is_number())
          br.metrics[key] = value.number();
        else if (value.is_string()) {
          if (!br.id.empty()) br.id.push_back('|');
          br.id += key + "=" + value.str();
        }
      }
      out->push_back(std::move(br));
    }
  }
  return true;
}

struct DiffEntry {
  enum class Kind { kRegression, kImprovement, kNeutral, kRowAdded, kRowRemoved };
  Kind kind;
  std::string section;
  std::string row_id;
  std::string metric;
  double base = 0;
  double current = 0;
  double rel_change = 0;  // (current - base) / |base|
};

struct DiffOptions {
  double threshold = 0.10;  // relative change below this is noise
  bool include_neutral = false;
};

struct DiffResult {
  std::vector<DiffEntry> entries;
  int regressions = 0;
  int improvements = 0;
  int compared_metrics = 0;
};

/// Compares `base` vs `current` row sets.
inline DiffResult DiffBenchRows(const std::vector<BenchRow>& base,
                                const std::vector<BenchRow>& current,
                                const DiffOptions& opts) {
  DiffResult result;
  auto key_of = [](const BenchRow& r) { return r.section + "\x1f" + r.id; };
  std::map<std::string, const BenchRow*> base_by_key, cur_by_key;
  for (const auto& r : base) base_by_key.emplace(key_of(r), &r);
  for (const auto& r : current) cur_by_key.emplace(key_of(r), &r);

  for (const auto& [key, brow] : base_by_key) {
    auto it = cur_by_key.find(key);
    if (it == cur_by_key.end()) {
      result.entries.push_back({DiffEntry::Kind::kRowRemoved, brow->section,
                                brow->id, "", 0, 0, 0});
      continue;
    }
    const BenchRow* crow = it->second;
    for (const auto& [metric, bval] : brow->metrics) {
      auto mit = crow->metrics.find(metric);
      if (mit == crow->metrics.end()) continue;
      double cval = mit->second;
      ++result.compared_metrics;
      double denom = std::fabs(bval);
      double rel = denom > 0 ? (cval - bval) / denom
                             : (cval == bval ? 0.0 : 1.0);
      DiffEntry e{DiffEntry::Kind::kNeutral, brow->section, brow->id,
                  metric,   bval,            cval,          rel};
      MetricDirection dir = InferDirection(metric);
      bool significant = std::fabs(rel) >= opts.threshold;
      if (significant && dir != MetricDirection::kUnknown) {
        bool worse = (dir == MetricDirection::kHigherBetter) ? rel < 0 : rel > 0;
        e.kind = worse ? DiffEntry::Kind::kRegression
                       : DiffEntry::Kind::kImprovement;
        if (worse)
          ++result.regressions;
        else
          ++result.improvements;
      }
      if (e.kind != DiffEntry::Kind::kNeutral || opts.include_neutral)
        result.entries.push_back(std::move(e));
    }
  }
  for (const auto& [key, crow] : cur_by_key) {
    if (base_by_key.count(key) == 0)
      result.entries.push_back({DiffEntry::Kind::kRowAdded, crow->section,
                                crow->id, "", 0, 0, 0});
  }
  return result;
}

/// Human-readable report, one line per entry.
inline void PrintDiff(const DiffResult& result, FILE* f) {
  for (const auto& e : result.entries) {
    const char* tag = nullptr;
    switch (e.kind) {
      case DiffEntry::Kind::kRegression: tag = "REGRESSION "; break;
      case DiffEntry::Kind::kImprovement: tag = "improvement"; break;
      case DiffEntry::Kind::kNeutral: tag = "  ~        "; break;
      case DiffEntry::Kind::kRowAdded: tag = "row added  "; break;
      case DiffEntry::Kind::kRowRemoved: tag = "row removed"; break;
    }
    if (e.kind == DiffEntry::Kind::kRowAdded ||
        e.kind == DiffEntry::Kind::kRowRemoved) {
      std::fprintf(f, "%s  [%s] %s\n", tag, e.section.c_str(),
                   e.row_id.c_str());
    } else {
      std::fprintf(f, "%s  [%s] %s  %s: %.6g -> %.6g (%+.1f%%)\n", tag,
                   e.section.c_str(), e.row_id.c_str(), e.metric.c_str(),
                   e.base, e.current, e.rel_change * 100.0);
    }
  }
  std::fprintf(f,
               "bench_diff: %d metrics compared, %d regressions, "
               "%d improvements\n",
               result.compared_metrics, result.regressions,
               result.improvements);
}

}  // namespace met::prof

#endif  // MET_PROF_BENCH_DIFF_CORE_H_
